/**
 * @file
 * Tests for the transaction flight recorder and post-mortem
 * forensics: the starvation-grant post-mortem must name the actual
 * killer chain (every DAG node cross-checked against the traced
 * TxAbort / ConflictEdge events of the same run), wasted-tick totals
 * must reconcile exactly with the cycle profiler, ring overflow must
 * be counted without losing totals, and forensics must never perturb
 * simulated timing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include "harness/system.hh"
#include "sim/flightrec.hh"
#include "sim/profile.hh"
#include "sim/trace.hh"
#include "sim_test_util.hh"
#include "tx/tx_manager.hh"

namespace ptm
{
namespace
{

using test::quietParams;
using test::tx;

constexpr Addr kBase = 0x40000;

/** Contention preset: one shared counter hammered by every thread,
 *  with the retry budget low enough that the starvation token fires. */
SystemParams
contendedParams()
{
    SystemParams prm = quietParams(TmKind::SelectPtm);
    prm.contention.randomBackoff = true;
    prm.contention.watchdogThreshold = 3;
    prm.contention.retryBudget = 3;
    return prm;
}

void
addCounterThreads(System &sys, ProcId p, unsigned threads,
                  unsigned iters)
{
    for (unsigned t = 0; t < threads; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < iters; ++i) {
            steps.push_back(tx([](MemCtx m) -> TxCoro {
                std::uint64_t v = co_await m.load(kBase);
                co_await m.compute(300);
                co_await m.store(kBase, std::uint32_t(v + 1));
            }));
        }
        sys.addThread(p, std::move(steps));
    }
}

/**
 * The killer chain a starvation-grant post-mortem reports must be the
 * chain that actually happened: every non-terminal DAG node matches a
 * traced TxAbort event (same tx, tick, and cause), every conflict
 * edge matches a traced ConflictEdge (same winner, loser, and tick),
 * and the edge structure walks strictly back in time.
 */
TEST(FlightRecorder, StarvationGrantPostmortemMatchesTrace)
{
    SystemParams prm = contendedParams();
    prm.forensics.postmortemPath = "stderr"; // arms capture
    prm.trace.path = "unused"; // configures the tracer; nothing writes
    System sys(prm);
    ASSERT_NE(sys.flightrec(), nullptr);
    ASSERT_TRUE(sys.flightrec()->armed());
    // Keep the reports; skip the System's stderr emission.
    sys.flightrec()->onReport = nullptr;

    ProcId p = sys.createProcess();
    constexpr unsigned kThreads = 4, kIters = 20;
    addCounterThreads(sys, p, kThreads, kIters);
    sys.run();

    EXPECT_EQ(sys.readWord32(p, kBase), kThreads * kIters);
    ASSERT_GT(sys.txmgr().starvationGrants.value(), 0u);

    // Index the run's traced abort and conflict events. The
    // cross-check is only sound if the ring kept everything.
    ASSERT_EQ(sys.tracer().dropped(), 0u);
    std::set<std::tuple<TxId, Tick, std::uint64_t>> aborts;
    std::set<std::tuple<TxId, TxId, Tick>> edges;
    for (const TraceEvent &ev : sys.tracer().snapshot()) {
        if (ev.type == TraceEventType::TxAbort)
            aborts.insert({ev.tx, ev.tick, ev.a0});
        else if (ev.type == TraceEventType::ConflictEdge)
            edges.insert({ev.tx, ev.tx2, ev.tick});
    }

    const auto &reports = sys.flightrec()->reports();
    ASSERT_FALSE(reports.empty());
    unsigned grants = 0, chained = 0;
    for (const PostmortemReport &r : reports) {
        if (r.trigger != PostmortemTrigger::StarvationGrant)
            continue;
        ++grants;
        ASSERT_FALSE(r.nodes.empty());
        // The subject's own aborts lead the node list.
        EXPECT_EQ(r.nodes[0].tx, r.subject);
        EXPECT_EQ(r.nodes[0].generation, 0u);

        for (const PostmortemNode &n : r.nodes) {
            if (n.tick == 0)
                continue; // terminal: no recorded abort
            EXPECT_TRUE(aborts.count(
                {n.tx, n.tick, std::uint64_t(n.cause)}))
                << "node tx " << n.tx << " @ " << n.tick
                << " names an abort the trace never saw";
            if (n.winner != invalidTxId &&
                AbortReason(n.cause) == AbortReason::ConflictLost) {
                EXPECT_TRUE(edges.count({n.winner, n.tx, n.tick}))
                    << "winner tx " << n.winner << " over tx " << n.tx
                    << " @ " << n.tick
                    << " names an edge the trace never saw";
            }
        }
        for (const PostmortemEdge &e : r.edges) {
            ASSERT_LT(e.from, r.nodes.size());
            ASSERT_LT(e.to, r.nodes.size());
            const PostmortemNode &from = r.nodes[e.from];
            const PostmortemNode &to = r.nodes[e.to];
            // An edge is exactly "my killer's previous abort".
            EXPECT_EQ(from.winner, to.tx);
            if (to.tick != 0) {
                EXPECT_LT(to.tick, from.tick);
            }
        }
        if (!r.edges.empty())
            ++chained;

        // Involved records ride along, sorted by id, subject included.
        bool subject_seen = false;
        for (std::size_t i = 0; i < r.records.size(); ++i) {
            if (i > 0) {
                EXPECT_LT(r.records[i - 1].id, r.records[i].id);
            }
            if (r.records[i].id == r.subject) {
                subject_seen = true;
                EXPECT_GT(r.records[i].abortCount, 0u);
            }
        }
        EXPECT_TRUE(subject_seen);
    }
    EXPECT_GT(grants, 0u);
    EXPECT_GT(chained, 0u) << "no grant post-mortem had a killer chain";
}

/**
 * The recorder's wasted-tick total must equal the profiler's
 * TxWasted bucket summed over cores — exactly, not approximately.
 */
TEST(FlightRecorder, WastedTicksReconcileWithProfiler)
{
    SystemParams prm = contendedParams();
    prm.profile.enabled = true;
    System sys(prm);
    ASSERT_NE(sys.flightrec(), nullptr);
    EXPECT_FALSE(sys.flightrec()->armed());

    ProcId p = sys.createProcess();
    addCounterThreads(sys, p, 4, 20);
    sys.run();

    ProfSnapshot ps = sys.profiler().snapshot();
    std::uint64_t wasted = 0;
    for (const auto &core : ps.cores)
        wasted += core[std::size_t(ProfBucket::TxWasted)];
    ASSERT_GT(wasted, 0u) << "the contended run aborted nothing";

    ForensicsSnapshot fs = sys.flightrec()->snapshot();
    EXPECT_EQ(fs.wastedTicksTotal, wasted);
    EXPECT_FALSE(fs.armed);
    EXPECT_EQ(fs.postmortems, 0u);
    EXPECT_FALSE(fs.topKillers.empty());
}

/**
 * A tiny ring must overflow on this workload; the drops are counted
 * and the evicted records' wasted ticks still land in the total, so
 * reconciliation survives truncation.
 */
TEST(FlightRecorder, RingDropsCountedWithoutLosingTotals)
{
    SystemParams prm = contendedParams();
    prm.profile.enabled = true;
    prm.forensics.depth = 4;
    System sys(prm);
    ASSERT_NE(sys.flightrec(), nullptr);

    ProcId p = sys.createProcess();
    addCounterThreads(sys, p, 4, 20);
    sys.run();

    ForensicsSnapshot fs = sys.flightrec()->snapshot();
    EXPECT_GT(fs.droppedRecords, 0u);
    EXPECT_GT(fs.droppedWastedTicks, 0u);

    ProfSnapshot ps = sys.profiler().snapshot();
    std::uint64_t wasted = 0;
    for (const auto &core : ps.cores)
        wasted += core[std::size_t(ProfBucket::TxWasted)];
    EXPECT_EQ(fs.wastedTicksTotal, wasted);
}

Tick
contendedRunCycles(unsigned depth, bool arm, RunStats &out)
{
    SystemParams prm = contendedParams();
    prm.forensics.depth = depth;
    if (arm)
        prm.forensics.postmortemPath = "stderr";
    System sys(prm);
    if (sys.flightrec())
        sys.flightrec()->onReport = nullptr;
    ProcId p = sys.createProcess();
    addCounterThreads(sys, p, 4, 20);
    Tick end = sys.run();
    out = sys.stats();
    return end;
}

/** The recorder is a pure observer: the same seed must be
 *  bit-identical with forensics armed, default, or removed. */
TEST(FlightRecorder, SameSeedIdenticalAcrossForensicsModes)
{
    RunStats off, def, armed;
    Tick c_off = contendedRunCycles(0, false, off);
    Tick c_def = contendedRunCycles(256, false, def);
    Tick c_armed = contendedRunCycles(256, true, armed);
    EXPECT_EQ(c_off, c_def);
    EXPECT_EQ(c_off, c_armed);
    EXPECT_EQ(off.commits, armed.commits);
    EXPECT_EQ(off.aborts, armed.aborts);
    EXPECT_EQ(off.memOps, armed.memOps);
    EXPECT_EQ(def.aborts, armed.aborts);
}

} // namespace
} // namespace ptm
