/**
 * @file
 * Unit tests for the cache substrate: MOESI helpers, CacheLine mark
 * management, the set-associative array with LRU replacement, the L1
 * filter, and the TLB.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/tlb.hh"

namespace ptm
{
namespace
{

TEST(Moesi, StatePredicates)
{
    EXPECT_TRUE(moesiDirty(Moesi::M));
    EXPECT_TRUE(moesiDirty(Moesi::O));
    EXPECT_FALSE(moesiDirty(Moesi::E));
    EXPECT_FALSE(moesiDirty(Moesi::S));
    EXPECT_TRUE(moesiWritable(Moesi::M));
    EXPECT_TRUE(moesiWritable(Moesi::E));
    EXPECT_FALSE(moesiWritable(Moesi::O));
    EXPECT_FALSE(moesiWritable(Moesi::S));
}

TEST(CacheLine, MarkLifecycle)
{
    CacheLine l;
    EXPECT_FALSE(l.transactional());
    TxMark &m = l.mark(7);
    m.readWords = 0x00f0;
    l.mark(7).writeWords = 0x0001;
    EXPECT_TRUE(l.transactional());
    EXPECT_EQ(l.marks.size(), 1u); // same tx reuses its mark
    l.mark(9).writeWords = 0x0002;
    EXPECT_EQ(l.marks.size(), 2u);
    EXPECT_EQ(l.writeMask(), 0x0003);
    EXPECT_EQ(l.writerCount(), 2u);
    l.removeMark(7);
    EXPECT_EQ(l.marks.size(), 1u);
    EXPECT_EQ(l.findMark(7), nullptr);
    EXPECT_NE(l.findMark(9), nullptr);
    l.invalidate();
    EXPECT_FALSE(l.valid());
    EXPECT_FALSE(l.transactional());
}

TEST(CacheLine, WordAccessors)
{
    CacheLine l;
    l.writeWord32(12, 0xdeadbeef);
    EXPECT_EQ(l.readWord32(12), 0xdeadbeefu);
    EXPECT_EQ(l.readWord32(8), 0u);
}

TEST(CacheArray, FindAndVictimLru)
{
    // 8 lines, 2-way: 4 sets. Addresses with equal set bits collide.
    CacheArray c(8 * blockBytes, 2);
    EXPECT_EQ(c.numSets(), 4u);

    Addr a0 = 0 * blockBytes;          // set 0
    Addr a1 = 4 * blockBytes;          // set 0
    Addr a2 = 8 * blockBytes;          // set 0

    CacheLine &l0 = c.victim(a0);
    l0.addr = a0;
    l0.state = Moesi::E;
    c.touch(l0);
    CacheLine &l1 = c.victim(a1);
    l1.addr = a1;
    l1.state = Moesi::E;
    c.touch(l1);

    EXPECT_EQ(c.find(a0), &l0);
    EXPECT_EQ(c.find(a1), &l1);
    EXPECT_EQ(c.find(a2), nullptr);

    // Touch a0 so a1 is LRU; the next victim in set 0 must be a1.
    c.touch(*c.find(a0));
    CacheLine &v = c.victim(a2);
    EXPECT_EQ(&v, &l1);
}

TEST(CacheArray, ForEachValidSkipsInvalid)
{
    CacheArray c(8 * blockBytes, 2);
    CacheLine &l = c.victim(0);
    l.addr = 0;
    l.state = Moesi::S;
    unsigned n = 0;
    c.forEachValid([&](CacheLine &) { ++n; });
    EXPECT_EQ(n, 1u);
    l.invalidate();
    n = 0;
    c.forEachValid([&](CacheLine &) { ++n; });
    EXPECT_EQ(n, 0u);
}

TEST(L1Filter, InsertFindInvalidate)
{
    L1Filter f(8 * blockBytes, 1);
    Addr a = 3 * blockBytes;
    EXPECT_EQ(f.find(a), nullptr);
    L1Filter::Entry &e = f.insert(a);
    e.writable = true;
    EXPECT_NE(f.find(a), nullptr);
    f.downgrade(a);
    EXPECT_FALSE(f.find(a)->writable);
    f.invalidate(a);
    EXPECT_EQ(f.find(a), nullptr);
}

TEST(L1Filter, DirectMappedConflictEvicts)
{
    L1Filter f(8 * blockBytes, 1);
    Addr a = 2 * blockBytes;
    Addr b = a + 8 * blockBytes; // same set, direct mapped
    f.insert(a);
    f.insert(b);
    EXPECT_EQ(f.find(a), nullptr);
    EXPECT_NE(f.find(b), nullptr);
}

TEST(Tlb, HitMissAndLru)
{
    Tlb t(2);
    EXPECT_EQ(t.lookup(0, 10), invalidPage);
    t.insert(0, 10, 100);
    t.insert(0, 11, 101);
    EXPECT_EQ(t.lookup(0, 10), 100u);
    EXPECT_EQ(t.lookup(0, 11), 101u);
    // 10 was used less recently than 11? lookup(10) then lookup(11):
    // 10 older -> inserting a third entry evicts 10.
    t.lookup(0, 11);
    t.insert(0, 12, 102);
    EXPECT_EQ(t.lookup(0, 12), 102u);
    EXPECT_EQ(t.lookup(0, 10), invalidPage);
    EXPECT_EQ(t.misses.value(), 2u);
    EXPECT_EQ(t.hits.value(), 4u);
}

TEST(Tlb, ProcessTagged)
{
    Tlb t(4);
    t.insert(0, 10, 100);
    t.insert(1, 10, 200);
    EXPECT_EQ(t.lookup(0, 10), 100u);
    EXPECT_EQ(t.lookup(1, 10), 200u);
    t.flushProc(0);
    EXPECT_EQ(t.lookup(0, 10), invalidPage);
    EXPECT_EQ(t.lookup(1, 10), 200u);
}

TEST(Tlb, Shootdown)
{
    Tlb t(4);
    t.insert(0, 10, 100);
    t.invalidate(0, 10);
    EXPECT_EQ(t.lookup(0, 10), invalidPage);
}

} // namespace
} // namespace ptm
