/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering and
 * cancellation, bit vectors, RNG determinism, timing resources, and
 * statistics.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "mem/timing.hh"
#include "sim/bitvec.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ptm
{
namespace
{

TEST(EventQueue, ExecutesInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, EventPriority::Cpu, [&] { order.push_back(3); });
    eq.schedule(10, EventPriority::Cpu, [&] { order.push_back(1); });
    eq.schedule(20, EventPriority::Cpu, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, EventPriority::Cpu, [&] { order.push_back(2); });
    eq.schedule(5, EventPriority::Memory, [&] { order.push_back(1); });
    eq.schedule(5, EventPriority::Cpu, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelledEventDoesNotRun)
{
    EventQueue eq;
    bool ran = false;
    auto h = eq.schedule(10, EventPriority::Cpu, [&] { ran = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            eq.scheduleIn(7, EventPriority::Cpu, chain);
    };
    eq.schedule(0, EventPriority::Cpu, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.curTick(), 28u);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    bool late = false;
    eq.schedule(100, EventPriority::Cpu, [&] { late = true; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_FALSE(late);
    EXPECT_EQ(eq.curTick(), 50u);
    EXPECT_TRUE(eq.run());
    EXPECT_TRUE(late);
}

TEST(EventQueue, SlabRecyclesSlotsInSteadyState)
{
    // A self-rescheduling chain must reuse one slab slot instead of
    // growing: the steady-state event loop performs no per-event
    // allocation.
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 1000)
            eq.scheduleIn(1, EventPriority::Cpu, chain);
    };
    eq.schedule(0, EventPriority::Cpu, chain);
    eq.run();
    EXPECT_EQ(count, 1000);
    EXPECT_EQ(eq.slabSlots(), 1u);
    EXPECT_EQ(eq.freeSlots(), 1u);

    // Bursts grow the slab to the in-flight high-water mark, then every
    // slot returns to the freelist and later bursts re-use them.
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 64; ++i)
            eq.scheduleIn(Tick(1 + i), EventPriority::Cpu, [] {});
        eq.run();
        EXPECT_EQ(eq.slabSlots(), 64u);
        EXPECT_EQ(eq.freeSlots(), 64u);
    }
}

TEST(EventQueue, CancelledSlotIsRecycled)
{
    EventQueue eq;
    bool ran = false;
    auto h = eq.schedule(10, EventPriority::Cpu, [&] { ran = true; });
    EXPECT_EQ(eq.freeSlots(), 0u);
    h.cancel();
    EXPECT_EQ(eq.freeSlots(), 1u);
    // The recycled slot serves the next event; the stale heap ref of
    // the cancelled one must not fire it twice.
    int runs = 0;
    eq.schedule(20, EventPriority::Cpu, [&] { ++runs; });
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(eq.slabSlots(), 1u);
}

TEST(EventQueue, HandleGoesStaleAfterExecution)
{
    EventQueue eq;
    auto h = eq.schedule(5, EventPriority::Cpu, [] {});
    EXPECT_TRUE(h.pending());
    eq.run();
    EXPECT_FALSE(h.pending());
    h.cancel(); // stale cancel is a no-op...
    // ...and must not kill an event that reuses the slot.
    bool ran = false;
    eq.schedule(10, EventPriority::Cpu, [&] { ran = true; });
    h.cancel();
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventFn, CommonCapturesStayInline)
{
    // The simulator's typical captures — a component pointer plus a
    // few ids/ticks — must use the inline buffer (no heap).
    struct Small
    {
        void *self;
        Tick when;
        std::uint64_t id;
        void operator()() const {}
    };
    static_assert(EventFn::storesInline<Small>());

    // The memory-grant shape: this + 40-byte access + std::function +
    // tick.
    struct GrantShape
    {
        void *self;
        unsigned char access[40];
        std::function<void(Tick)> cb;
        Tick grant;
        void operator()() const {}
    };
    static_assert(EventFn::storesInline<GrantShape>());

    // Oversized callables still work through the heap fallback.
    struct Big
    {
        unsigned char payload[256];
        int *hits;
        void operator()() const { ++*hits; }
    };
    static_assert(!EventFn::storesInline<Big>());
    int hits = 0;
    Big big{};
    big.hits = &hits;
    EventFn fn(big);
    fn();
    EXPECT_EQ(hits, 1);
    EventFn moved(std::move(fn));
    moved();
    EXPECT_EQ(hits, 2);
}

TEST(BitVec, SetTestClearToggle)
{
    BitVec v(100);
    EXPECT_TRUE(v.none());
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(99);
    EXPECT_EQ(v.count(), 4u);
    EXPECT_TRUE(v.test(63));
    EXPECT_TRUE(v.test(64));
    v.clear(63);
    EXPECT_FALSE(v.test(63));
    v.toggle(64);
    EXPECT_FALSE(v.test(64));
    v.toggle(64);
    EXPECT_TRUE(v.test(64));
    EXPECT_EQ(v.count(), 3u);
}

TEST(BitVec, BulkOps)
{
    BitVec a(128), b(128);
    a.set(1);
    a.set(100);
    b.set(100);
    b.set(2);
    EXPECT_TRUE(a.intersects(b));
    BitVec c = a;
    c |= b;
    EXPECT_EQ(c.count(), 3u);
    c.andNot(b);
    EXPECT_EQ(c.count(), 1u);
    EXPECT_TRUE(c.test(1));
    b.clear(100);
    EXPECT_FALSE(a.intersects(b));
}

TEST(BitVec, ForEachSetVisitsExactlySetBits)
{
    BitVec v(70);
    v.set(3);
    v.set(64);
    v.set(69);
    std::vector<unsigned> seen;
    v.forEachSet([&](unsigned i) { seen.push_back(i); });
    EXPECT_EQ(seen, (std::vector<unsigned>{3, 64, 69}));
}

TEST(Pcg32, DeterministicAcrossInstances)
{
    Pcg32 a(42, 7), b(42, 7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Pcg32, BelowStaysInRange)
{
    Pcg32 r(123);
    for (int i = 0; i < 10000; ++i) {
        std::uint32_t v = r.below(17);
        ASSERT_LT(v, 17u);
    }
}

TEST(BusModel, FifoQueueing)
{
    BusModel bus(20);
    EXPECT_EQ(bus.reserve(0x40, 0), 0u);
    EXPECT_EQ(bus.reserve(0x80, 0), 20u); // one bank: queued behind
    EXPECT_EQ(bus.reserve(0x40, 100), 100u);
    EXPECT_EQ(bus.reserve(0xc0, 105), 120u);
    EXPECT_EQ(bus.transactions(), 4u);
}

TEST(DramModel, PipelinesUpToThreeRequests)
{
    DramModel dram(200, 3);
    // Three requests at t=0 complete together at 200.
    EXPECT_EQ(dram.access(0), 200u);
    EXPECT_EQ(dram.access(0), 200u);
    EXPECT_EQ(dram.access(0), 200u);
    // The fourth waits for a slot.
    EXPECT_EQ(dram.access(0), 400u);
}

TEST(DramModel, BurstUsesPipeline)
{
    DramModel dram(200, 3);
    // 6 accesses: 2 rounds of 3 -> 400 cycles total.
    EXPECT_EQ(dram.accessBurst(0, 6), 400u);
}

TEST(TimeWeighted, ComputesTimeAverage)
{
    TimeWeighted tw;
    tw.set(0, 2.0);
    tw.set(10, 4.0);   // 2.0 held for 10
    tw.finish(30);     // 4.0 held for 20
    EXPECT_DOUBLE_EQ(tw.mean(), (2.0 * 10 + 4.0 * 20) / 30.0);
}

TEST(Stats, GroupDumpAndLookup)
{
    Counter c;
    c += 5;
    StatGroup g("mem");
    g.addCounter("misses", &c);
    EXPECT_EQ(g.counterValue("misses"), 5u);
    EXPECT_EQ(g.counterValue("absent"), 0u);
}

} // namespace
} // namespace ptm
