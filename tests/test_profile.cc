/**
 * @file
 * Unit tests for the cycle-accounting profiler (sim/profile) and the
 * event queue's executed-event / host-profile accounting: synthetic
 * phase-machine sequences under a manual clock, the pending-pot
 * commit/abort retirement, nested PhaseGuard scopes, exactness
 * (bucket sums == elapsed ticks) on a real profiled workload run, and
 * the per-priority executed-event counters.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sim/event_queue.hh"
#include "sim/profile.hh"

namespace ptm
{
namespace
{

std::uint64_t
bucket(const ProfSnapshot &s, unsigned core, ProfBucket b)
{
    return s.cores.at(core)[unsigned(b)];
}

/** A profiler driven by a test-owned manual clock. */
struct ManualProfiler
{
    Tick now = 0;
    CycleProfiler prof;

    explicit ManualProfiler(unsigned cores)
    {
        prof.setClock([this] { return now; });
        prof.configure(cores);
    }
};

TEST(CycleProfiler, SetAccruesIntoOutgoingPhase)
{
    ManualProfiler m(1);
    m.now = 100;
    m.prof.set(0, ProfBucket::NonTx); // [0,100) was Idle
    m.now = 250;
    m.prof.set(0, ProfBucket::Barrier); // [100,250) was NonTx
    m.prof.finish(300);                 // [250,300) was Barrier

    ProfSnapshot s = m.prof.snapshot();
    EXPECT_EQ(bucket(s, 0, ProfBucket::Idle), 100u);
    EXPECT_EQ(bucket(s, 0, ProfBucket::NonTx), 150u);
    EXPECT_EQ(bucket(s, 0, ProfBucket::Barrier), 50u);
    EXPECT_EQ(s.coreTotal(0), 300u);
    EXPECT_EQ(s.elapsed, 300u);
}

TEST(CycleProfiler, PushPopNestsAndRestores)
{
    ManualProfiler m(1);
    m.prof.set(0, ProfBucket::NonTx);
    m.now = 10;
    m.prof.push(0, ProfBucket::StallL2); // NonTx += 10
    m.now = 35;
    m.prof.pop(0); // StallL2 += 25, back to NonTx
    m.prof.finish(50);

    ProfSnapshot s = m.prof.snapshot();
    EXPECT_EQ(bucket(s, 0, ProfBucket::NonTx), 25u);
    EXPECT_EQ(bucket(s, 0, ProfBucket::StallL2), 25u);
    EXPECT_EQ(s.coreTotal(0), 50u);
}

TEST(CycleProfiler, NestedGuardsUnwindInOrder)
{
    ManualProfiler m(1);
    m.prof.set(0, ProfBucket::NonTx);
    {
        PhaseGuard outer(m.prof, 0, ProfBucket::StallMem);
        m.now = 40;
        {
            PhaseGuard inner(m.prof, 0, ProfBucket::StallXlat);
            m.now = 70;
        } // StallXlat += 30
        m.now = 100;
    } // StallMem += 40 + 30
    m.prof.finish(120);

    ProfSnapshot s = m.prof.snapshot();
    EXPECT_EQ(bucket(s, 0, ProfBucket::StallXlat), 30u);
    EXPECT_EQ(bucket(s, 0, ProfBucket::StallMem), 70u);
    EXPECT_EQ(bucket(s, 0, ProfBucket::NonTx), 20u);
    EXPECT_EQ(s.coreTotal(0), 120u);
}

TEST(CycleProfiler, PendingPotRetiresOnOutcome)
{
    ManualProfiler m(1);
    m.prof.txWork(0); // in-tx execution: pot, not a bucket
    m.now = 80;
    m.prof.resolveTx(0, true); // committed: pot -> TxUseful
    m.prof.set(0, ProfBucket::NonTx);
    m.now = 90;
    m.prof.txWork(0);
    m.now = 140;
    m.prof.resolveTx(0, false); // aborted: pot -> TxWasted
    m.prof.set(0, ProfBucket::Idle);
    m.prof.finish(150);

    ProfSnapshot s = m.prof.snapshot();
    EXPECT_EQ(bucket(s, 0, ProfBucket::TxUseful), 80u);
    EXPECT_EQ(bucket(s, 0, ProfBucket::TxWasted), 50u);
    EXPECT_EQ(bucket(s, 0, ProfBucket::NonTx), 10u);
    EXPECT_EQ(bucket(s, 0, ProfBucket::Idle), 10u);
    EXPECT_EQ(s.coreTotal(0), 150u);
}

TEST(CycleProfiler, FinishRetiresLeftoverPendingAsWasted)
{
    ManualProfiler m(1);
    m.prof.txWork(0);
    m.prof.finish(60); // tick-limit end: attempt never resolved

    ProfSnapshot s = m.prof.snapshot();
    EXPECT_EQ(bucket(s, 0, ProfBucket::TxWasted), 60u);
    EXPECT_EQ(s.coreTotal(0), 60u);
}

TEST(CycleProfiler, CollapseAbandonsNestedPhases)
{
    ManualProfiler m(1);
    m.prof.set(0, ProfBucket::NonTx);
    m.prof.push(0, ProfBucket::StallMem);
    m.prof.push(0, ProfBucket::StallXlat);
    m.now = 30;
    // Abort path: the scheduled pops are abandoned wholesale.
    m.prof.collapse(0, ProfBucket::TxAbort);
    m.now = 50;
    m.prof.set(0, ProfBucket::Idle);
    m.prof.finish(50);

    ProfSnapshot s = m.prof.snapshot();
    EXPECT_EQ(bucket(s, 0, ProfBucket::StallXlat), 30u);
    EXPECT_EQ(bucket(s, 0, ProfBucket::TxAbort), 20u);
    EXPECT_EQ(s.coreTotal(0), 50u);
}

TEST(CycleProfiler, CoresAccountIndependently)
{
    ManualProfiler m(2);
    m.now = 40;
    m.prof.set(0, ProfBucket::NonTx); // core 1 untouched: stays Idle
    m.prof.finish(100);

    ProfSnapshot s = m.prof.snapshot();
    EXPECT_EQ(bucket(s, 0, ProfBucket::Idle), 40u);
    EXPECT_EQ(bucket(s, 0, ProfBucket::NonTx), 60u);
    EXPECT_EQ(bucket(s, 1, ProfBucket::Idle), 100u);
    EXPECT_EQ(s.coreTotal(0), 100u);
    EXPECT_EQ(s.coreTotal(1), 100u);
    EXPECT_EQ(s.bucketTotal(ProfBucket::Idle), 140u);
}

TEST(CycleProfiler, DisabledProfilerRecordsNothing)
{
    CycleProfiler prof; // never configured
    EXPECT_FALSE(prof.active());
    prof.set(0, ProfBucket::NonTx); // must all be single-branch no-ops
    prof.push(0, ProfBucket::StallMem);
    prof.pop(0);
    prof.charge(ProfCharge::MetaLookup, 1000);
    prof.finish(500);

    ProfSnapshot s = prof.snapshot();
    EXPECT_FALSE(s.enabled);
    EXPECT_TRUE(s.cores.empty());
    EXPECT_EQ(s.charges[unsigned(ProfCharge::MetaLookup)], 0u);
    EXPECT_FALSE(CycleProfiler::nil().active());
}

TEST(CycleProfiler, ChargesAccumulateIndependently)
{
    ManualProfiler m(1);
    m.prof.charge(ProfCharge::MetaLookup, 30);
    m.prof.charge(ProfCharge::MetaLookup, 12);
    m.prof.charge(ProfCharge::SwapIo, 7);
    m.prof.finish(0);

    ProfSnapshot s = m.prof.snapshot();
    EXPECT_EQ(s.charges[unsigned(ProfCharge::MetaLookup)], 42u);
    EXPECT_EQ(s.charges[unsigned(ProfCharge::SwapIo)], 7u);
    EXPECT_EQ(s.charges[unsigned(ProfCharge::PageFault)], 0u);
}

// The whole-point property on a real run: every tick of every core is
// attributed to exactly one bucket, so per-core sums equal the run's
// elapsed ticks exactly.
TEST(CycleProfiler, RealRunBucketsSumToElapsed)
{
    SystemParams prm;
    prm.tmKind = TmKind::SelectPtm;
    prm.profile.enabled = true;
    ExperimentResult r = runWorkload("fft", prm, 0, 2);

    ASSERT_TRUE(r.verified);
    ASSERT_TRUE(r.profile.enabled);
    ASSERT_GE(r.profile.cores.size(), 2u);
    EXPECT_GT(r.profile.elapsed, 0u);
    for (unsigned c = 0; c < r.profile.cores.size(); ++c)
        EXPECT_EQ(r.profile.coreTotal(c), r.profile.elapsed)
            << "core " << c << " buckets do not sum to elapsed";
    // The fault/swap path ran (fft at scale 0 still pages memory in),
    // and a committed-work overlay was recorded.
    EXPECT_GT(
        r.profile.charges[unsigned(ProfCharge::CommittedTxTicks)], 0u);
}

TEST(EventQueue, PerPriorityExecutedCounts)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, EventPriority::Cpu, [&] { ++ran; });
    eq.schedule(10, EventPriority::Cpu, [&] { ++ran; });
    eq.schedule(20, EventPriority::Memory, [&] { ++ran; });
    auto dead = eq.schedule(30, EventPriority::Os, [&] { ++ran; });
    dead.cancel(); // tombstoned events must not count as executed
    ASSERT_TRUE(eq.run());

    EXPECT_EQ(ran, 3);
    EXPECT_EQ(eq.scheduledEvents(), 4u);
    EXPECT_EQ(eq.executedEvents(EventPriority::Cpu), 2u);
    EXPECT_EQ(eq.executedEvents(EventPriority::Memory), 1u);
    EXPECT_EQ(eq.executedEvents(EventPriority::Os), 0u);
    EXPECT_EQ(eq.executedEvents(), 3u);
}

TEST(EventQueue, HostProfileCountsPerSite)
{
    EventQueue eq;
    eq.enableHostProfile(1); // sample every event
    std::uint16_t site = eq.siteId("test.site");
    EXPECT_EQ(site, eq.siteId("test.site")) << "ids must be interned";
    for (int i = 0; i < 5; ++i)
        eq.scheduleIn(Tick(i), EventPriority::Cpu, [] {}, site);
    eq.scheduleIn(1, EventPriority::Memory, [] {}); // default site
    ASSERT_TRUE(eq.run());

    HostProfile h = eq.hostProfile();
    ASSERT_TRUE(h.enabled);
    EXPECT_EQ(h.sampleInterval, 1u);
    std::uint64_t site_events = 0, mem_events = 0;
    for (const auto &s : h.sites) {
        if (s.name == "test.site") {
            site_events = s.events;
            EXPECT_EQ(s.sampled, s.events);
        }
        if (s.name == "memory")
            mem_events = s.events;
    }
    EXPECT_EQ(site_events, 5u);
    EXPECT_EQ(mem_events, 1u);
}

} // namespace
} // namespace ptm
