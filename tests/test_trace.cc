/**
 * @file
 * Unit tests for the event tracer (sim/trace) and its sinks
 * (harness/trace_io): ring-buffer wraparound, category filtering,
 * lazy payload suppression, watchpoint address matching, tick order
 * of real captures, and Chrome-export slice balance.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>

#include "harness/experiment.hh"
#include "harness/stats_io.hh"
#include "harness/trace_io.hh"
#include "sim/trace.hh"

namespace ptm
{
namespace
{

TEST(TracerTest, InactiveByDefault)
{
    Tracer t;
    EXPECT_FALSE(t.active());
    t.record(TraceEventType::TxBegin, 0, 0, 1);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_TRUE(t.snapshot().empty());
}

TEST(TracerTest, NilIsNeverEnabled)
{
    Tracer &n = Tracer::nil();
    EXPECT_FALSE(n.active());
    for (unsigned c = 0; c < 8; ++c)
        EXPECT_FALSE(n.enabled(TraceCat(1u << c)));
}

TEST(TracerTest, RingKeepsNewestAndCountsDrops)
{
    Tracer t;
    t.configure(traceCatAll, 8);
    for (Tick i = 0; i < 20; ++i)
        t.recordAt(i, TraceEventType::Writeback, 0, 0, invalidTxId,
                   invalidTxId, i);
    EXPECT_EQ(t.recorded(), 20u);
    EXPECT_EQ(t.dropped(), 12u);
    std::vector<TraceEvent> ev = t.snapshot();
    ASSERT_EQ(ev.size(), 8u);
    // Oldest first, and only the newest 8 events survive.
    for (std::size_t i = 0; i < ev.size(); ++i) {
        EXPECT_EQ(ev[i].tick, Tick(12 + i));
        EXPECT_EQ(ev[i].a0, 12 + i);
    }
}

TEST(TracerTest, CategoryMaskFilters)
{
    Tracer t;
    t.configure(traceCatMask(TraceCat::Tx), 64);
    EXPECT_TRUE(t.enabled(TraceCat::Tx));
    EXPECT_FALSE(t.enabled(TraceCat::Cache));
    t.record(TraceEventType::TxBegin, 0, 0, 1);
    t.record(TraceEventType::Writeback); // cache: filtered
    t.record(TraceEventType::CtxSwitch); // os: filtered
    EXPECT_EQ(t.recorded(), 1u);
    ASSERT_EQ(t.snapshot().size(), 1u);
    EXPECT_EQ(t.snapshot()[0].type, TraceEventType::TxBegin);
}

TEST(TracerTest, LazyRecordSkipsPayloadWhenDisabled)
{
    Tracer t;
    t.configure(traceCatMask(TraceCat::Tx), 64);
    unsigned built = 0;
    auto build = [&built] {
        ++built;
        TraceEvent e;
        e.type = TraceEventType::Watchpoint;
        return e;
    };
    t.lazyRecord(TraceCat::Watch, build);
    EXPECT_EQ(built, 0u); // disabled category: payload never built
    t.lazyRecord(TraceCat::Tx, build);
    EXPECT_EQ(built, 1u);
    EXPECT_EQ(t.recorded(), 1u);
}

TEST(TracerTest, ClockStampsRecords)
{
    Tracer t;
    t.configure(traceCatAll, 8);
    Tick now = 42;
    t.setClock([&now] { return now; });
    t.record(TraceEventType::TxBegin, 0, 0, 1);
    now = 99;
    t.record(TraceEventType::TxCommit, 0, 0, 1);
    auto ev = t.snapshot();
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_EQ(ev[0].tick, 42u);
    EXPECT_EQ(ev[1].tick, 99u);
}

TEST(TracerTest, WatchAddrMatchesBlockAndWord)
{
    Tracer t;
    t.setWatchAddr(0x1234);
    EXPECT_TRUE(t.watchingBlock(blockAlign(0x1234)));
    EXPECT_FALSE(t.watchingBlock(blockAlign(0x1234) + blockBytes));
    EXPECT_TRUE(t.watchingWord(wordAlign(0x1234)));
    EXPECT_FALSE(t.watchingWord(wordAlign(0x1234) + wordBytes));
    Tracer off;
    EXPECT_FALSE(off.watchingBlock(blockAlign(0x1234)));
}

TEST(TracerTest, SeriesInterning)
{
    Tracer t;
    EXPECT_EQ(t.sampleSeries("tx.commits"), 0u);
    EXPECT_EQ(t.sampleSeries("tx.aborts"), 1u);
    EXPECT_EQ(t.sampleSeries("tx.commits"), 0u); // idempotent
    ASSERT_EQ(t.seriesNames().size(), 2u);
    EXPECT_EQ(t.seriesNames()[0], "tx.commits");
}

TEST(TraceCategoriesParse, ListsAndAll)
{
    std::uint32_t mask = 0;
    ASSERT_TRUE(parseTraceCategories("all", mask));
    EXPECT_EQ(mask, traceCatAll);
    ASSERT_TRUE(parseTraceCategories("tx,conflict", mask));
    EXPECT_EQ(mask, traceCatMask(TraceCat::Tx) |
                        traceCatMask(TraceCat::Conflict));
    EXPECT_FALSE(parseTraceCategories("tx,bogus", mask));
}

/** Run a small traced workload and capture its events. */
TraceCapture
tracedRun(std::uint32_t categories)
{
    SystemParams prm;
    prm.tmKind = TmKind::SelectPtm;
    prm.trace.path = "unused"; // non-empty enables wiring
    prm.trace.categories = categories;
    ExperimentResult r = runWorkload("fft", prm, 0, 4);
    EXPECT_TRUE(r.verified);
    return r.trace;
}

TEST(TraceIntegration, TicksNondecreasingPerCore)
{
    TraceCapture cap = tracedRun(traceCatAll);
    ASSERT_FALSE(cap.events.empty());
    std::map<std::uint32_t, Tick> last;
    for (const TraceEvent &e : cap.events) {
        auto it = last.find(e.core);
        if (it != last.end()) {
            EXPECT_GE(e.tick, it->second)
                << "tick went backwards on core " << e.core;
        }
        last[e.core] = e.tick;
    }
    // The whole ring is globally tick-ordered too: events are pushed
    // from a single discrete-event loop.
    for (std::size_t i = 1; i < cap.events.size(); ++i)
        EXPECT_GE(cap.events[i].tick, cap.events[i - 1].tick);
}

TEST(TraceIntegration, LifecycleEventsComeInPairs)
{
    TraceCapture cap = tracedRun(traceCatMask(TraceCat::Tx));
    std::uint64_t begins = 0, restarts = 0, commits = 0, aborts = 0;
    for (const TraceEvent &e : cap.events) {
        switch (e.type) {
          case TraceEventType::TxBegin: ++begins; break;
          case TraceEventType::TxRestart: ++restarts; break;
          case TraceEventType::TxCommit: ++commits; break;
          case TraceEventType::TxAbort: ++aborts; break;
          default:
            ADD_FAILURE() << "non-tx event leaked through the mask";
        }
    }
    EXPECT_GT(begins, 0u);
    // Nothing rotated out of the ring in a tiny run, so every attempt
    // (begin or restart) has exactly one closing commit or abort.
    EXPECT_EQ(cap.dropped, 0u);
    EXPECT_EQ(begins + restarts, commits + aborts);
    EXPECT_EQ(aborts, restarts); // every abort is retried
}

TEST(TraceIntegration, JsonlRoundTripsThroughMiniJson)
{
    TraceCapture cap = tracedRun(traceCatAll);
    std::ostringstream os;
    emitTraceJsonl(os, {cap});
    std::istringstream is(os.str());
    std::string line;
    std::size_t events = 0;
    for (unsigned n = 1; std::getline(is, line); ++n) {
        minijson::Value v;
        std::string err;
        ASSERT_TRUE(minijson::parse(line, v, &err))
            << "line " << n << ": " << err;
        if (n == 1)
            EXPECT_EQ(v.get("schema")->str, "ptm-trace-v1");
        else if (v.get("type")->str == "ev")
            ++events;
    }
    EXPECT_EQ(events, cap.events.size());
}

TEST(TraceIntegration, ChromeSlicesBalance)
{
    TraceCapture cap = tracedRun(traceCatAll);
    std::ostringstream os;
    emitTraceChrome(os, {cap});

    minijson::Value v;
    std::string err;
    ASSERT_TRUE(minijson::parse(os.str(), v, &err)) << err;
    const minijson::Value *events = v.get("traceEvents");
    ASSERT_NE(events, nullptr);

    std::uint64_t begins = 0, ends = 0, starts = 0, finishes = 0;
    std::map<std::pair<double, double>, std::int64_t> depth;
    double last_ts = -1;
    for (const minijson::Value &e : events->array) {
        const std::string &ph = e.get("ph")->str;
        if (ph != "M") {
            double ts = e.get("ts")->number;
            EXPECT_GE(ts, last_ts) << "events not sorted by ts";
            last_ts = ts;
        }
        std::pair<double, double> track{
            e.get("pid") ? e.get("pid")->number : 0,
            e.get("tid") ? e.get("tid")->number : 0};
        if (ph == "B") {
            ++begins;
            ++depth[track];
        } else if (ph == "E") {
            ++ends;
            ASSERT_GT(depth[track], 0)
                << "E without an open B on its track";
            --depth[track];
        } else if (ph == "s") {
            ++starts;
        } else if (ph == "f") {
            ++finishes;
        }
    }
    EXPECT_GT(begins, 0u);
    EXPECT_EQ(begins, ends);
    EXPECT_EQ(starts, finishes);
    for (const auto &[track, d] : depth)
        EXPECT_EQ(d, 0) << "track left slices open";
}

TEST(TraceIntegration, WriteTraceToFileAndStdoutError)
{
    TraceCapture cap = tracedRun(traceCatMask(TraceCat::Tx));
    std::string path = ::testing::TempDir() + "trace_rt.jsonl";
    std::string err;
    ASSERT_TRUE(writeTrace(path, TraceFormat::Jsonl, {cap}, &err))
        << err;
    std::ifstream f(path);
    std::string first;
    ASSERT_TRUE(std::getline(f, first));
    EXPECT_NE(first.find("ptm-trace-v1"), std::string::npos);

    EXPECT_FALSE(writeTrace("/nonexistent-dir/x.json",
                            TraceFormat::Jsonl, {cap}, &err));
    EXPECT_FALSE(err.empty());
}

} // namespace
} // namespace ptm
