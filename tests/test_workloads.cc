/**
 * @file
 * Workload correctness across synchronization modes and TM backends:
 * every kernel, at test scale, must produce the bit-exact host
 * reference result under serial, locks, and each transactional
 * system (Select-PTM, Copy-PTM, VTM, VC-VTM).
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/experiment.hh"
#include "sim_test_util.hh"

namespace ptm
{
namespace
{

using namespace ptm::test;

using WorkloadCase = std::tuple<std::string, TmKind>;

class WorkloadTest : public ::testing::TestWithParam<WorkloadCase>
{};

TEST_P(WorkloadTest, ProducesReferenceResult)
{
    const auto &[name, kind] = GetParam();
    SystemParams prm = quietParams(kind);
    ExperimentResult r =
        runWorkload(name, prm, /*scale=*/0, /*threads=*/4);
    EXPECT_TRUE(r.verified) << name << " on " << tmKindName(kind);
    EXPECT_FALSE(r.stats.hitTickLimit);
    if (syncModeFor(kind) == SyncMode::Tx) {
        EXPECT_GT(r.stats.commits, 0u);
    }
}

std::vector<WorkloadCase>
allCases()
{
    std::vector<WorkloadCase> cases;
    for (const auto &w : workloadNames())
        for (TmKind k :
             {TmKind::Serial, TmKind::Locks, TmKind::SelectPtm,
              TmKind::CopyPtm, TmKind::Vtm, TmKind::VcVtm})
            cases.emplace_back(w, k);
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<WorkloadCase> &info)
{
    std::string label = std::get<0>(info.param);
    label += "_";
    for (char c : std::string(tmKindName(std::get<1>(info.param))))
        if (c != '-')
            label += c;
    return label;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, WorkloadTest,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(Workloads, OceanUsesOrderedTransactions)
{
    // Ocean's Tx mode runs its band sweeps as ordered transactions
    // (red before black within an iteration, no colour barrier); the
    // result must still match the sequential reference exactly.
    SystemParams prm = quietParams(TmKind::SelectPtm);
    ExperimentResult r = runWorkload("ocean", prm, 0, 4);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.commits, 0u);
}

TEST(Workloads, RadixBlockGranularityAborts)
{
    // Scattered permutation writes share blocks: block-granularity
    // conflict detection must see (false) conflicts.
    SystemParams prm = quietParams(TmKind::SelectPtm);
    ExperimentResult r = runWorkload("radix", prm, 0, 4);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.aborts, 0u);
}

TEST(Workloads, WaterIsCacheResident)
{
    SystemParams prm = quietParams(TmKind::SelectPtm);
    ExperimentResult r = runWorkload("water", prm, 0, 4);
    EXPECT_TRUE(r.verified);
    // Rare evictions: the defining property of water in Table 1
    // (at this scale it fits the caches entirely).
    EXPECT_TRUE(r.stats.evictions == 0 || r.stats.mopPerEvict() > 50.0);
}

} // namespace
} // namespace ptm
