/**
 * @file
 * Randomized directed tester (in the spirit of gem5's Ruby random
 * tester): generates random transactional programs over a mix of
 * shared and private regions, runs them on every TM backend and
 * conflict granularity, and checks two properties:
 *
 *  1. Atomicity of commutative updates: shared cells receive wrapping
 *     add/xor-style updates inside transactions, so the final value is
 *     order-independent and exactly predictable.
 *  2. Backend functional equivalence: every backend must produce the
 *     same committed memory image for the same seed.
 *
 * Parameterized over (seed x backend x granularity) via TEST_P.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <tuple>

#include "sim_test_util.hh"

namespace ptm
{
namespace
{

using namespace ptm::test;

constexpr Addr kShared = 0x100000;
constexpr Addr kPrivate = 0x800000;
constexpr unsigned kSharedCells = 24;
constexpr unsigned kThreads = 4;

struct RandomPlan
{
    /** Per thread, per transaction: list of (cell, addend) updates
     *  plus private-block scribbles. */
    struct Txn
    {
        std::vector<std::pair<unsigned, std::uint32_t>> updates;
        unsigned privateBlocks;
        Tick thinkCycles;
    };
    std::vector<std::vector<Txn>> perThread;
    std::vector<std::uint32_t> expected;
};

RandomPlan
makePlan(std::uint64_t seed)
{
    Pcg32 rng(seed, 0xbeef);
    RandomPlan plan;
    plan.expected.assign(kSharedCells, 0);
    plan.perThread.resize(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        unsigned ntx = 6 + rng.below(8);
        for (unsigned i = 0; i < ntx; ++i) {
            RandomPlan::Txn txn;
            unsigned nup = 1 + rng.below(5);
            for (unsigned u = 0; u < nup; ++u) {
                unsigned cell = rng.below(kSharedCells);
                std::uint32_t add = rng.next() | 1;
                txn.updates.emplace_back(cell, add);
                plan.expected[cell] += add;
            }
            txn.privateBlocks = rng.below(30);
            txn.thinkCycles = rng.below(60);
            plan.perThread[t].push_back(std::move(txn));
        }
    }
    return plan;
}

/** Run the plan on a backend; return the final shared-cell values. */
std::vector<std::uint32_t>
runPlan(const RandomPlan &plan, TmKind kind, Granularity gran,
        std::uint64_t seed)
{
    SystemParams prm = tinyCacheParams(kind); // tiny: overflow common
    prm.granularity = gran;
    prm.seed = seed;
    prm.osQuantum = 40 * 1000; // context switches in the mix
    System sys(prm);
    ProcId p = sys.createProcess();

    for (unsigned t = 0; t < kThreads; ++t) {
        std::vector<Step> steps;
        for (const auto &txn : plan.perThread[t]) {
            TxStep s;
            s.body = [&txn, t](MemCtx m) -> TxCoro {
                for (auto [cell, add] : txn.updates) {
                    Addr a = kShared + cell * 8;
                    std::uint64_t v = co_await m.load(a);
                    if (txn.thinkCycles)
                        co_await m.compute(txn.thinkCycles);
                    co_await m.store(a, std::uint32_t(v) + add);
                }
                for (unsigned b = 0; b < txn.privateBlocks; ++b)
                    co_await m.store(kPrivate + t * 0x40000 +
                                         Addr(b) * blockBytes,
                                     b);
            };
            steps.push_back(std::move(s));
        }
        sys.addThread(p, std::move(steps));
    }
    sys.run();
    std::vector<std::uint32_t> out(kSharedCells);
    for (unsigned c = 0; c < kSharedCells; ++c)
        out[c] = sys.readWord32(p, kShared + c * 8);
    return out;
}

using Param = std::tuple<std::uint64_t, TmKind, Granularity>;

class RandomTester : public ::testing::TestWithParam<Param>
{};

TEST_P(RandomTester, CommutativeUpdatesAreExact)
{
    auto [seed, kind, gran] = GetParam();
    RandomPlan plan = makePlan(seed);
    std::vector<std::uint32_t> got = runPlan(plan, kind, gran, seed);
    for (unsigned c = 0; c < kSharedCells; ++c)
        ASSERT_EQ(got[c], plan.expected[c])
            << "cell " << c << " wrong: seed " << seed << ", backend "
            << tmKindName(kind) << ", granularity "
            << granularityName(gran) << "\nreplay just this seed with "
            << "PTM_TEST_SEED=" << seed
            << " ./ptm_tests --gtest_filter='Fuzz/*'";
}

/**
 * Seeds for the fuzz sweep. PTM_TEST_SEED (a comma-separated list,
 * any strtoull base) overrides the built-in set, so a seed that a
 * longer external sweep found can be replayed in isolation.
 */
std::vector<std::uint64_t>
fuzzSeeds()
{
    if (const char *env = std::getenv("PTM_TEST_SEED")) {
        std::vector<std::uint64_t> seeds;
        std::stringstream ss(env);
        std::string item;
        while (std::getline(ss, item, ','))
            if (!item.empty())
                seeds.push_back(
                    std::strtoull(item.c_str(), nullptr, 0));
        if (!seeds.empty())
            return seeds;
    }
    return {11, 23, 57, 91};
}

std::vector<Param>
randomCases()
{
    std::vector<Param> cases;
    for (std::uint64_t seed : fuzzSeeds()) {
        for (TmKind k : {TmKind::SelectPtm, TmKind::CopyPtm,
                         TmKind::Vtm, TmKind::VcVtm})
            cases.emplace_back(seed, k, Granularity::Block);
        cases.emplace_back(seed, TmKind::SelectPtm,
                           Granularity::WordCache);
        cases.emplace_back(seed, TmKind::SelectPtm,
                           Granularity::WordCacheMem);
    }
    return cases;
}

std::string
randomCaseName(const ::testing::TestParamInfo<Param> &info)
{
    auto [seed, kind, gran] = info.param;
    std::string s = "seed" + std::to_string(seed) + "_";
    for (char c : std::string(tmKindName(kind)))
        if (c != '-')
            s += c;
    if (gran == Granularity::WordCache)
        s += "_wdcache";
    else if (gran == Granularity::WordCacheMem)
        s += "_wdmem";
    return s;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomTester,
                         ::testing::ValuesIn(randomCases()),
                         randomCaseName);

TEST(RandomTester, BackendsAgreeOnFinalMemory)
{
    RandomPlan plan = makePlan(1234);
    auto ref =
        runPlan(plan, TmKind::SelectPtm, Granularity::Block, 1234);
    for (TmKind k : {TmKind::CopyPtm, TmKind::Vtm, TmKind::VcVtm}) {
        auto got = runPlan(plan, k, Granularity::Block, 1234);
        EXPECT_EQ(got, ref)
            << "backend " << tmKindName(k)
            << " diverged from Sel-PTM for seed 1234; replay with "
            << "PTM_TEST_SEED=1234";
    }
}

} // namespace
} // namespace ptm
