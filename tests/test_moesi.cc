/**
 * @file
 * Direct MOESI protocol tests: the MemSystem is driven with raw
 * accesses (no cores) and the line states, data movement, cache-to-
 * cache transfers and write-backs are checked transition by
 * transition.
 */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"
#include "sim_test_util.hh"

namespace ptm
{
namespace
{

/** Harness: drive MemSystem::request synchronously via eq.run(). */
class MoesiTest : public ::testing::Test
{
  protected:
    MoesiTest()
        : params(makeParams()), mem(params, eq, phys, txmgr)
    {
        // Wire the flash commit/abort hooks exactly as System does.
        txmgr.onLogicalCommit = [this](TxId t) {
            mem.commitClearTx(t);
        };
        txmgr.onLogicalAbort = [this](TxId t) {
            mem.abortInvalidate(t);
        };
    }

    static SystemParams
    makeParams()
    {
        SystemParams p;
        p.numCores = 4;
        return p;
    }

    /** Issue an access and run events to completion. */
    AccessResult
    go(CoreId core, bool write, Addr paddr, std::uint32_t val = 0,
       TxId tx = invalidTxId)
    {
        Access a;
        a.core = core;
        a.tx = tx;
        a.isWrite = write;
        a.paddr = paddr;
        a.storeValue = val;
        if (auto hit = mem.trySync(a))
            return hit->second;
        AccessResult out;
        bool done = false;
        mem.request(a, [&](Tick, AccessResult r) {
            out = r;
            done = true;
        });
        eq.run();
        EXPECT_TRUE(done);
        return out;
    }

    Moesi
    stateOf(CoreId c, Addr paddr)
    {
        CacheLine *l = mem.l2(c).find(blockAlign(paddr));
        return l ? l->state : Moesi::I;
    }

    SystemParams params;
    EventQueue eq;
    PhysMem phys;
    TxManager txmgr;
    MemSystem mem;
};

constexpr Addr A = 0x10000;

TEST_F(MoesiTest, ColdReadTakesExclusive)
{
    phys.writeWord32(A, 77);
    EXPECT_EQ(go(0, false, A).value, 77u);
    EXPECT_EQ(stateOf(0, A), Moesi::E);
}

TEST_F(MoesiTest, SecondReaderDegradesToShared)
{
    go(0, false, A);
    go(1, false, A);
    EXPECT_EQ(stateOf(0, A), Moesi::S);
    EXPECT_EQ(stateOf(1, A), Moesi::S);
}

TEST_F(MoesiTest, SilentUpgradeFromExclusive)
{
    go(0, false, A);
    ASSERT_EQ(stateOf(0, A), Moesi::E);
    std::uint64_t bus_before = mem.bus().transactions();
    EXPECT_EQ(go(0, true, A, 123).value, 123u);
    EXPECT_EQ(stateOf(0, A), Moesi::M);
    EXPECT_EQ(mem.bus().transactions(), bus_before)
        << "E->M must be a silent transition";
}

TEST_F(MoesiTest, DirtyOwnerSuppliesAndKeepsOwnership)
{
    go(0, true, A, 99);
    ASSERT_EQ(stateOf(0, A), Moesi::M);
    std::uint64_t dram_before = mem.dram().accesses();
    EXPECT_EQ(go(1, false, A).value, 99u)
        << "reader must see the dirty value";
    EXPECT_EQ(stateOf(0, A), Moesi::O) << "owner keeps the dirty line";
    EXPECT_EQ(stateOf(1, A), Moesi::S);
    EXPECT_EQ(mem.dram().accesses(), dram_before)
        << "cache-to-cache transfer, no memory fetch";
}

TEST_F(MoesiTest, WriteInvalidatesAllOtherCopies)
{
    go(0, false, A);
    go(1, false, A);
    go(2, false, A);
    go(3, true, A, 5);
    EXPECT_EQ(stateOf(0, A), Moesi::I);
    EXPECT_EQ(stateOf(1, A), Moesi::I);
    EXPECT_EQ(stateOf(2, A), Moesi::I);
    EXPECT_EQ(stateOf(3, A), Moesi::M);
    EXPECT_EQ(go(1, false, A).value, 5u);
}

TEST_F(MoesiTest, UpgradeFromSharedInvalidatesPeers)
{
    go(0, true, A, 7); // M at core 0
    go(1, false, A);   // core0 -> O, core1 S
    go(1, true, A, 8); // upgrade: core0 invalidated
    EXPECT_EQ(stateOf(0, A), Moesi::I);
    EXPECT_EQ(stateOf(1, A), Moesi::M);
    EXPECT_EQ(go(2, false, A).value, 8u);
}

TEST_F(MoesiTest, EvictionWritesBackDirtyData)
{
    // Fill one set of the 4-way L2 with 5 conflicting dirty blocks:
    // the first gets evicted and its data must survive in memory.
    Addr stride = Addr(mem.l2(0).numSets()) * blockBytes;
    for (unsigned i = 0; i < 5; ++i)
        go(0, true, A + i * stride, 1000 + i);
    EXPECT_EQ(mem.l2(0).find(blockAlign(A)), nullptr)
        << "LRU eviction of the first block";
    EXPECT_EQ(phys.readWord32(A), 1000u);
    EXPECT_EQ(go(1, false, A).value, 1000u);
}

TEST_F(MoesiTest, L1BackInvalidationKeepsInclusion)
{
    go(0, false, A);
    EXPECT_NE(mem.l1(0).find(blockAlign(A)), nullptr);
    go(1, true, A, 3);
    EXPECT_EQ(mem.l1(0).find(blockAlign(A)), nullptr)
        << "snoop invalidation must reach the L1 filter";
}

TEST_F(MoesiTest, L1DowngradeOnRemoteRead)
{
    go(0, true, A, 9); // M, L1 writable
    ASSERT_TRUE(mem.l1(0).find(blockAlign(A))->writable);
    go(1, false, A); // M -> O
    L1Filter::Entry *e = mem.l1(0).find(blockAlign(A));
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->writable)
        << "O state must not permit silent stores";
}

TEST_F(MoesiTest, CasComparesAndSwapsAtomically)
{
    phys.writeWord32(A, 10);
    Access a;
    a.core = 0;
    a.isCas = true;
    a.paddr = A;
    a.casExpected = 10;
    a.storeValue = 20;
    AccessResult r;
    bool done = false;
    mem.request(a, [&](Tick, AccessResult res) {
        r = res;
        done = true;
    });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(r.value, 10u) << "CAS returns the observed value";
    EXPECT_EQ(go(1, false, A).value, 20u);

    // Failing CAS leaves memory untouched.
    a.casExpected = 999;
    a.storeValue = 30;
    a.core = 2;
    done = false;
    mem.request(a, [&](Tick, AccessResult res) {
        r = res;
        done = true;
    });
    eq.run();
    EXPECT_EQ(r.value, 20u);
    EXPECT_EQ(go(3, false, A).value, 20u);
}

TEST_F(MoesiTest, TransactionalMarksSetOnAccess)
{
    TxId t = txmgr.begin(0, 0, 0);
    go(0, false, A, 0, t);
    CacheLine *l = mem.l2(0).find(blockAlign(A));
    ASSERT_NE(l, nullptr);
    ASSERT_NE(l->findMark(t), nullptr);
    EXPECT_NE(l->findMark(t)->readWords, 0);
    EXPECT_EQ(l->findMark(t)->writeWords, 0);
    go(0, true, A, 1, t);
    EXPECT_NE(l->findMark(t)->writeWords, 0);
}

TEST_F(MoesiTest, ConflictAbortsYoungerTransaction)
{
    TxId older = txmgr.begin(0, 0, 0);
    TxId younger = txmgr.begin(1, 0, 1);
    go(0, true, A, 1, older);
    AccessResult r = go(1, true, A, 2, younger);
    EXPECT_TRUE(r.txAborted);
    EXPECT_EQ(txmgr.stateOf(younger), TxState::Aborted);
    EXPECT_TRUE(txmgr.isLive(older));
}

TEST_F(MoesiTest, OlderRequesterWinsConflict)
{
    TxId older = txmgr.begin(0, 0, 0);
    TxId younger = txmgr.begin(1, 0, 1);
    go(1, true, A, 2, younger);
    AccessResult r = go(0, true, A, 1, older);
    EXPECT_FALSE(r.txAborted);
    EXPECT_EQ(txmgr.stateOf(younger), TxState::Aborted);
    // After the winner commits, its value is the committed one.
    EXPECT_EQ(txmgr.requestCommit(older), CommitResult::Done);
    eq.run();
    EXPECT_EQ(go(2, false, A).value, 1u);
}

} // namespace
} // namespace ptm
