/**
 * @file
 * End-to-end integration tests of the transactional memory system:
 * single-thread execution, commits, conflicts and atomicity, cache
 * overflow under Copy-PTM / Select-PTM / VTM / VC-VTM, abort recovery
 * with overflowed state, ordered transactions, and context switches.
 */

#include <gtest/gtest.h>

#include "sim_test_util.hh"

namespace ptm
{
namespace
{

using namespace ptm::test;

constexpr Addr kBase = 0x10000;

TEST(Integration, SerialPlainExecution)
{
    System sys(quietParams(TmKind::Serial));
    ProcId p = sys.createProcess();
    sys.addThread(p, {plain([](MemCtx m) -> TxCoro {
                      for (unsigned i = 0; i < 64; ++i)
                          co_await m.store(kBase + 4 * i, i * 3 + 1);
                      std::uint64_t sum = 0;
                      for (unsigned i = 0; i < 64; ++i)
                          sum += co_await m.load(kBase + 4 * i);
                      co_await m.store(kBase + 4096, std::uint32_t(sum));
                  })});
    Tick end = sys.run();
    EXPECT_GT(end, 0u);
    std::uint64_t expect = 0;
    for (unsigned i = 0; i < 64; ++i)
        expect += i * 3 + 1;
    EXPECT_EQ(sys.readWord32(p, kBase + 4096), expect);
    EXPECT_EQ(sys.stats().commits, 0u);
}

TEST(Integration, SingleTransactionCommits)
{
    System sys(quietParams(TmKind::SelectPtm));
    ProcId p = sys.createProcess();
    sys.addThread(p, {tx([](MemCtx m) -> TxCoro {
                      for (unsigned i = 0; i < 32; ++i)
                          co_await m.store(kBase + 4 * i, 100 + i);
                  })});
    sys.run();
    RunStats s = sys.stats();
    EXPECT_EQ(s.commits, 1u);
    EXPECT_EQ(s.aborts, 0u);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(sys.readWord32(p, kBase + 4 * i), 100 + i);
}

/** Parameterized over every TM backend: atomic counter increments. */
class AtomicityTest : public ::testing::TestWithParam<TmKind>
{};

TEST_P(AtomicityTest, ConcurrentIncrementsAreAtomic)
{
    System sys(quietParams(GetParam()));
    ProcId p = sys.createProcess();
    constexpr unsigned kIters = 60;
    constexpr unsigned kThreads = 4;
    for (unsigned t = 0; t < kThreads; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < kIters; ++i) {
            steps.push_back(tx([](MemCtx m) -> TxCoro {
                std::uint64_t v = co_await m.load(kBase);
                co_await m.compute(20);
                co_await m.store(kBase, std::uint32_t(v + 1));
            }));
        }
        sys.addThread(p, std::move(steps));
    }
    sys.run();
    RunStats s = sys.stats();
    EXPECT_EQ(sys.readWord32(p, kBase), kIters * kThreads);
    EXPECT_EQ(s.commits, kIters * kThreads);
    // With a 20-cycle window inside each transaction, conflicts must
    // actually occur for this test to mean anything.
    EXPECT_GT(s.aborts, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, AtomicityTest,
                         ::testing::Values(TmKind::SelectPtm,
                                           TmKind::CopyPtm,
                                           TmKind::Vtm, TmKind::VcVtm),
                         [](const auto &info) {
                             switch (info.param) {
                               case TmKind::SelectPtm:
                                 return "SelectPtm";
                               case TmKind::CopyPtm:
                                 return "CopyPtm";
                               case TmKind::Vtm:
                                 return "Vtm";
                               default:
                                 return "VcVtm";
                             }
                         });

/** Overflow: transaction footprint exceeds the (tiny) caches. */
class OverflowTest : public ::testing::TestWithParam<TmKind>
{};

TEST_P(OverflowTest, OverflowedTransactionCommits)
{
    System sys(tinyCacheParams(GetParam()));
    ProcId p = sys.createProcess();
    constexpr unsigned kBlocks = 200; // 200 blocks >> 32-line L2
    sys.addThread(p, {tx([](MemCtx m) -> TxCoro {
                      for (unsigned i = 0; i < kBlocks; ++i)
                          co_await m.store(kBase + blockBytes * i,
                                           7000 + i);
                  })});
    sys.run();
    RunStats s = sys.stats();
    EXPECT_EQ(s.commits, 1u);
    EXPECT_GT(s.txEvictions, 0u) << "test must exercise overflow";
    for (unsigned i = 0; i < kBlocks; ++i)
        EXPECT_EQ(sys.readWord32(p, kBase + blockBytes * i), 7000 + i)
            << "block " << i;
}

TEST_P(OverflowTest, AbortAfterOverflowRestoresMemory)
{
    System sys(tinyCacheParams(GetParam()));
    ProcId p = sys.createProcess();
    constexpr unsigned kBlocks = 120;

    // Pre-set committed values non-transactionally.
    std::vector<Step> writer_steps;
    writer_steps.push_back(plain([](MemCtx m) -> TxCoro {
        for (unsigned i = 0; i < kBlocks; ++i)
            co_await m.store(kBase + blockBytes * i, 500 + i);
        // Flag for thread B to start.
        co_await m.store(kBase - 4096, 1);
    }));
    // Then: transactional overwrite that overflows, with a long
    // compute window; attempt 1 gets killed by a non-transactional
    // write from the other thread, attempt 2 succeeds.
    auto attempt = std::make_shared<unsigned>(0);
    writer_steps.push_back(tx([attempt](MemCtx m) -> TxCoro {
        unsigned a = ++*attempt;
        for (unsigned i = 0; i < kBlocks; ++i)
            co_await m.store(kBase + blockBytes * i, 9000 + a);
        if (a == 1) {
            // Linger so the conflicting write lands mid-transaction.
            for (int j = 0; j < 200; ++j)
                co_await m.compute(500);
        }
    }));
    sys.addThread(p, std::move(writer_steps));

    // Thread B: wait for the flag, then do one conflicting
    // NON-transactional write (non-tx code always wins, 2.3.3).
    sys.addThread(p, {plain([](MemCtx m) -> TxCoro {
                      while (co_await m.load(kBase - 4096) != 1)
                          co_await m.compute(200);
                      co_await m.compute(3000);
                      co_await m.store(kBase, 12345);
                  })});

    sys.run();
    RunStats s = sys.stats();
    EXPECT_EQ(*attempt, 2u) << "transaction must abort exactly once";
    EXPECT_GE(s.abortsNonTx, 1u);
    // Final state: attempt 2's values everywhere (it overwrote block 0
    // after the non-tx write, transactionally and successfully).
    for (unsigned i = 0; i < kBlocks; ++i)
        EXPECT_EQ(sys.readWord32(p, kBase + blockBytes * i), 9002u)
            << "block " << i;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, OverflowTest,
                         ::testing::Values(TmKind::SelectPtm,
                                           TmKind::CopyPtm,
                                           TmKind::Vtm, TmKind::VcVtm),
                         [](const auto &info) {
                             switch (info.param) {
                               case TmKind::SelectPtm:
                                 return "SelectPtm";
                               case TmKind::CopyPtm:
                                 return "CopyPtm";
                               case TmKind::Vtm:
                                 return "Vtm";
                               default:
                                 return "VcVtm";
                             }
                         });

TEST(Integration, OrderedTransactionsCommitInRankOrder)
{
    System sys(quietParams(TmKind::SelectPtm));
    ProcId p = sys.createProcess();
    std::uint32_t scope = sys.createOrderedScope();
    constexpr unsigned kIters = 40;
    constexpr unsigned kThreads = 4;
    // Each ordered transaction multiplies then adds its rank into an
    // accumulator: the result is order-sensitive, so a correct run
    // proves rank-order commits.
    for (unsigned t = 0; t < kThreads; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < kIters; ++i) {
            std::uint64_t rank = i * kThreads + t;
            steps.push_back(
                orderedTx(scope, rank, [rank](MemCtx m) -> TxCoro {
                    std::uint64_t v = co_await m.load(kBase);
                    co_await m.compute(10);
                    co_await m.store(
                        kBase,
                        std::uint32_t(v * 3 + rank + 1));
                }));
        }
        sys.addThread(p, std::move(steps));
    }
    sys.run();

    std::uint32_t expect = 0;
    for (unsigned r = 0; r < kIters * kThreads; ++r)
        expect = expect * 3 + r + 1;
    EXPECT_EQ(sys.readWord32(p, kBase), expect);
    EXPECT_EQ(sys.stats().commits, kIters * kThreads);
}

TEST(Integration, ContextSwitchesPreserveTransactions)
{
    SystemParams prm = quietParams(TmKind::SelectPtm);
    prm.numCores = 2;
    prm.osQuantum = 3000; // aggressive time slicing
    System sys(prm);
    ProcId p = sys.createProcess();
    constexpr unsigned kThreads = 6; // 3x oversubscribed
    constexpr unsigned kIters = 25;
    for (unsigned t = 0; t < kThreads; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < kIters; ++i) {
            steps.push_back(tx([t](MemCtx m) -> TxCoro {
                std::uint64_t v = co_await m.load(kBase);
                co_await m.compute(100);
                co_await m.store(kBase, std::uint32_t(v + 1));
                // Private work so quanta expire inside transactions.
                for (unsigned j = 0; j < 8; ++j)
                    co_await m.store(kBase + 4096 * (t + 1) + 4 * j,
                                     j);
            }));
        }
        sys.addThread(p, std::move(steps));
    }
    sys.run();
    RunStats s = sys.stats();
    EXPECT_EQ(sys.readWord32(p, kBase), kThreads * kIters);
    EXPECT_GT(s.contextSwitches, 0u);
}

TEST(Integration, DeterministicAcrossRuns)
{
    auto run_once = [] {
        System sys(quietParams(TmKind::SelectPtm));
        ProcId p = sys.createProcess();
        for (unsigned t = 0; t < 4; ++t) {
            std::vector<Step> steps;
            for (unsigned i = 0; i < 30; ++i)
                steps.push_back(tx([](MemCtx m) -> TxCoro {
                    std::uint64_t v = co_await m.load(kBase);
                    co_await m.store(kBase, std::uint32_t(v + 1));
                }));
            sys.addThread(p, std::move(steps));
        }
        return sys.run();
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Integration, NonTransactionalCodeAbortsConflictingTx)
{
    System sys(quietParams(TmKind::SelectPtm));
    ProcId p = sys.createProcess();
    auto attempts = std::make_shared<unsigned>(0);
    sys.addThread(p, {tx([attempts](MemCtx m) -> TxCoro {
                      ++*attempts;
                      co_await m.store(kBase, 1);
                      for (int j = 0; j < 100; ++j)
                          co_await m.compute(200);
                  })});
    sys.addThread(p, {plain([](MemCtx m) -> TxCoro {
                      co_await m.compute(4000);
                      co_await m.store(kBase, 777);
                  })});
    sys.run();
    EXPECT_GE(*attempts, 2u);
    EXPECT_GE(sys.stats().abortsNonTx, 1u);
    EXPECT_EQ(sys.readWord32(p, kBase), 1u)
        << "restarted transaction rewrites the block last";
}

} // namespace
} // namespace ptm
