/**
 * @file
 * The kv serving workload, host side first: the Zipfian sampler, the
 * deterministic op-program generator, the B+-tree page layout, and the
 * sequential oracle (including that it catches a seeded lost update),
 * then the full workload on every TM backend and its registry entry.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "sim_test_util.hh"
#include "workloads/kv.hh"
#include "workloads/zipfian.hh"

namespace ptm
{
namespace
{

using namespace ptm::test;

kv::Params
tinyParams()
{
    kv::Params p;
    p.threads = 4;
    p.keys = 2048;
    p.ops = 1500;
    p.scanLen = 8;
    return p;
}

TEST(KvZipfian, SameSeedBitExact)
{
    Zipfian z(1u << 17, 0.99);
    Pcg32 a(42, 7);
    Pcg32 b(42, 7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(z.sample(a), z.sample(b)) << "diverged at draw " << i;
}

TEST(KvZipfian, SkewMatchesTheta)
{
    constexpr std::uint64_t n = 1024;
    constexpr int draws = 50000;
    auto head_share = [&](double theta) {
        Zipfian z(n, theta);
        Pcg32 rng(1, 2);
        int head = 0;
        for (int i = 0; i < draws; ++i) {
            std::uint64_t r = z.sample(rng);
            EXPECT_LT(r, n);
            head += r < 16;
        }
        return double(head) / draws;
    };
    // Under theta=0.99 the hottest 16 of 1024 ranks absorb most of the
    // traffic; uniform sampling gives them their fair 16/1024 ~ 1.6%.
    EXPECT_GT(head_share(0.99), 0.25);
    EXPECT_LT(head_share(0.0), 0.10);
}

TEST(KvProgram, DeterministicPerThread)
{
    kv::Params p = tinyParams();
    for (unsigned t = 0; t < p.threads; ++t) {
        auto a = kv::generateProgram(p, t);
        auto b = kv::generateProgram(p, t);
        ASSERT_EQ(a.size(), p.ops);
        EXPECT_TRUE(a == b) << "thread " << t;
    }
    // Different threads draw different streams.
    EXPECT_FALSE(kv::generateProgram(p, 0) == kv::generateProgram(p, 1));
}

TEST(KvProgram, WritesStayInOwnerPartition)
{
    kv::Params p = tinyParams();
    std::map<kv::OpType, int> count;
    for (unsigned t = 0; t < p.threads; ++t) {
        for (const kv::Op &op : kv::generateProgram(p, t)) {
            ASSERT_LT(op.key, p.keys);
            if (op.isWrite()) {
                EXPECT_EQ(op.key % p.threads, t);
            }
            if (op.type == kv::OpType::Scan) {
                EXPECT_EQ(op.len, p.scanLen);
            }
            ++count[op.type];
        }
    }
    // All four op types occur, roughly in the configured 60/15/15/10
    // mix (loose bounds; the draw is pseudo-random, not stratified).
    double total = double(p.ops) * p.threads;
    EXPECT_NEAR(count[kv::OpType::Lookup] / total, 0.60, 0.05);
    EXPECT_NEAR(count[kv::OpType::Scan] / total, 0.15, 0.05);
    EXPECT_NEAR(count[kv::OpType::Insert] / total, 0.15, 0.05);
    EXPECT_NEAR(count[kv::OpType::Delete] / total, 0.10, 0.05);
}

TEST(KvLayout, NodeGeometry)
{
    kv::Layout lay(2048, 2);
    EXPECT_EQ(lay.leaves(), 2048 / kv::Layout::kLeafKeys);
    EXPECT_EQ(lay.depth(), 2u); // 128 leaves -> 8 inners -> 1 root
    EXPECT_EQ(lay.innerCount(1), 8u);
    EXPECT_EQ(lay.innerCount(2), 1u);
    EXPECT_EQ(lay.innerTotal(), 9u);

    // Leaves are 64-byte aligned: [occ][next][16 slots * vwords].
    EXPECT_EQ(lay.leafStrideWords() % 16, 0u);
    EXPECT_GE(lay.leafStrideWords(), 2 + 16 * lay.vwords());
    for (std::uint64_t l = 0; l < lay.leaves(); ++l)
        EXPECT_EQ(lay.leafAddr(l) % 64, 0u);

    // Slots of one leaf are disjoint and inside the leaf.
    for (std::uint64_t k = 0; k + 1 < kv::Layout::kLeafKeys; ++k)
        EXPECT_EQ(lay.slotAddr(k + 1) - lay.slotAddr(k),
                  4 * lay.vwords());
    Addr leaf0_end = lay.leafAddr(0) + 4 * lay.leafStrideWords();
    EXPECT_LE(lay.slotAddr(kv::Layout::kLeafKeys - 1) + 4 * lay.vwords(),
              leaf0_end);
    EXPECT_EQ(lay.leafAddr(1), leaf0_end);

    // The three regions cannot collide.
    Addr inner_end = lay.innerAddr(1, lay.innerCount(1) - 1) +
                     4 * kv::Layout::kInnerWords;
    EXPECT_GT(lay.innerAddr(1, 0), lay.metaAddr());
    EXPECT_LE(inner_end, kv::Layout::kLeafBase);
    EXPECT_EQ(lay.rootAddr(), lay.innerAddr(lay.depth(), 0));
}

TEST(KvLayout, SeparatorDescentReachesEveryLeaf)
{
    kv::Layout lay(2048, 2);
    // Walk root -> leaf exactly as the simulated program does (binary
    // search over the 15 separators, then the chosen child pointer) and
    // check the walk lands on leafOf(key) for every key.
    for (std::uint64_t key = 0; key < lay.keys(); ++key) {
        unsigned level = lay.depth();
        std::uint64_t idx = 0;
        while (level > 0) {
            unsigned c = 0;
            while (c < kv::Layout::kFanout - 1 &&
                   key >= lay.sepValue(level, idx, c))
                ++c;
            Addr child = lay.childAddr(level, idx, c);
            ASSERT_NE(child, 0u) << "key " << key;
            --level;
            std::uint64_t next =
                level == 0
                    ? (child - kv::Layout::kLeafBase) /
                          (4 * lay.leafStrideWords())
                    : idx * kv::Layout::kFanout + c;
            if (level > 0) {
                ASSERT_EQ(child, lay.innerAddr(level, next));
            }
            idx = next;
        }
        EXPECT_EQ(idx, lay.leafOf(key)) << "key " << key;
    }
}

TEST(KvOracle, DropIndexTargetsNeverRewrittenInsert)
{
    kv::Params p = tinyParams();
    auto program = kv::generateProgram(p, 0);
    std::size_t drop = kv::chooseDropIndex(program);
    ASSERT_NE(drop, std::size_t(-1));
    ASSERT_EQ(program[drop].type, kv::OpType::Insert);
    // No later write of thread 0 may mask the suppressed insert.
    for (std::size_t i = drop + 1; i < program.size(); ++i) {
        if (program[i].isWrite()) {
            EXPECT_NE(program[i].key, program[drop].key);
        }
    }
}

TEST(KvOracle, ExpectedFinalRespectsPreloadAndWrites)
{
    kv::Params p = tinyParams();
    auto final = kv::expectedFinal(p);
    ASSERT_EQ(final.size(), p.keys);
    // Keys nobody writes keep their preload state.
    std::vector<bool> written(p.keys, false);
    for (unsigned t = 0; t < p.threads; ++t)
        for (const kv::Op &op : kv::generateProgram(p, t))
            if (op.isWrite())
                written[op.key] = true;
    int untouched = 0;
    for (std::uint32_t k = 0; k < p.keys; ++k) {
        if (written[k])
            continue;
        ++untouched;
        if (kv::preloaded(p, k))
            EXPECT_EQ(final[k], kv::preloadTag(p.seed, k));
        else
            EXPECT_EQ(final[k], 0u);
    }
    EXPECT_GT(untouched, 0);
}

TEST(KvWorkload, OracleCatchesLostUpdate)
{
    SystemParams prm = quietParams(TmKind::SelectPtm);
    ExperimentResult r = runWorkload("kv", prm, 0, 4,
                                     {{"drop-write", "1"}});
    EXPECT_FALSE(r.verified)
        << "a silently dropped insert must fail verification";
}

TEST(KvWorkload, VerifiesOnAllBackends)
{
    for (TmKind kind :
         {TmKind::Serial, TmKind::Locks, TmKind::SelectPtm,
          TmKind::CopyPtm, TmKind::Vtm, TmKind::VcVtm}) {
        SystemParams prm = quietParams(kind);
        ExperimentResult r = runWorkload("kv", prm, 0, 4);
        EXPECT_TRUE(r.verified) << "kv on " << tmKindName(kind);
        EXPECT_FALSE(r.stats.hitTickLimit);
        if (syncModeFor(kind) == SyncMode::Tx) {
            EXPECT_GT(r.stats.commits, 0u);
        }
    }
}

TEST(KvRegistry, EntryAndOptionTable)
{
    const WorkloadInfo *info = WorkloadRegistry::instance().find("kv");
    ASSERT_NE(info, nullptr);
    EXPECT_FALSE(info->description.empty());
    EXPECT_FALSE(info->paperKernel);
    for (const char *name : {"scale", "keys", "zipf", "ops", "tx-ops",
                             "scan-len", "drop-write"})
        EXPECT_NE(WorkloadRegistry::findOption(*info, name), nullptr)
            << name;

    // kv is registered but is not part of the Table 1 suite.
    auto names = workloadNames();
    EXPECT_EQ(names.size(), 5u);
    for (const auto &n : names)
        EXPECT_NE(n, "kv");
    bool listed = false;
    for (const WorkloadInfo *w : WorkloadRegistry::instance().all())
        listed = listed || w->name == "kv";
    EXPECT_TRUE(listed);
}

TEST(KvRegistry, UnknownOptionDiagnosticNamesAlternatives)
{
    const WorkloadInfo *info = WorkloadRegistry::instance().find("kv");
    ASSERT_NE(info, nullptr);
    WorkloadOptions out;
    std::string err;
    EXPECT_FALSE(WorkloadRegistry::instance().resolve(
        *info, {{"bogus", "1"}}, out, &err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
    EXPECT_NE(err.find("zipf"), std::string::npos)
        << "diagnostic should list the declared options: " << err;

    err.clear();
    EXPECT_FALSE(WorkloadRegistry::instance().resolve(
        *info, {{"zipf", "hot"}}, out, &err));
    EXPECT_NE(err.find("zipf"), std::string::npos) << err;
}

} // namespace
} // namespace ptm
