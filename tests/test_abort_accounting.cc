/**
 * @file
 * Abort-accounting tests: every AbortReason is induced on purpose and
 * the per-cause counters must (a) individually move, (b) sum exactly
 * to the abort total, and (c) agree with the TxAbort events in the
 * trace ring, whose payload carries the reason.
 */

#include <gtest/gtest.h>

#include <array>

#include "sim_test_util.hh"
#include "tx/tx_manager.hh"

namespace ptm
{
namespace
{

using namespace ptm::test;

constexpr Addr kBase = 0x50000;

/** Per-cause abort counts read back from a finished system. */
struct AbortBreakdown
{
    std::uint64_t total = 0;
    std::array<std::uint64_t, 4> byReason{}; // indexed by AbortReason
};

AbortBreakdown
breakdownOf(System &sys)
{
    const TxManager &tm = sys.txmgr();
    AbortBreakdown b;
    b.total = tm.aborts.value();
    b.byReason[unsigned(AbortReason::ConflictLost)] =
        tm.abortsConflict.value();
    b.byReason[unsigned(AbortReason::NonTxConflict)] =
        tm.abortsNonTx.value();
    b.byReason[unsigned(AbortReason::MultiWriterEviction)] =
        tm.abortsMultiWriter.value();
    b.byReason[unsigned(AbortReason::Explicit)] =
        tm.abortsExplicit.value();
    return b;
}

/**
 * The invariant under test: the per-cause counters partition the
 * total, and the traced TxAbort events reproduce the same partition
 * (requires the ring not to have dropped anything).
 */
void
checkAccounting(System &sys)
{
    AbortBreakdown b = breakdownOf(sys);
    EXPECT_EQ(b.byReason[0] + b.byReason[1] + b.byReason[2] +
                  b.byReason[3],
              b.total)
        << "per-cause abort counters must sum to the abort total";

    ASSERT_EQ(sys.tracer().dropped(), 0u)
        << "ring too small: trace comparison would be meaningless";
    std::array<std::uint64_t, 4> traced{};
    std::uint64_t traced_total = 0;
    for (const TraceEvent &e : sys.tracer().snapshot()) {
        if (e.type != TraceEventType::TxAbort)
            continue;
        ++traced_total;
        ASSERT_LT(e.a0, 4u) << "TxAbort payload is not a reason";
        ++traced[e.a0];
    }
    EXPECT_EQ(traced_total, b.total);
    for (unsigned r = 0; r < 4; ++r)
        EXPECT_EQ(traced[r], b.byReason[r])
            << "trace disagrees with counter for reason " << r;
}

SystemParams
tracedParams(SystemParams prm)
{
    prm.trace.path = "unused"; // non-empty enables wiring
    prm.trace.categories = traceCatMask(TraceCat::Tx);
    prm.trace.bufferEvents = std::size_t(1) << 18;
    return prm;
}

/** Conflicting read-modify-write increments: ConflictLost aborts. */
TEST(AbortAccounting, ConflictLostAborts)
{
    System sys(tracedParams(quietParams(TmKind::SelectPtm)));
    ProcId p = sys.createProcess();
    constexpr unsigned kThreads = 4, kIters = 30;
    for (unsigned t = 0; t < kThreads; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < kIters; ++i) {
            steps.push_back(tx([](MemCtx m) -> TxCoro {
                std::uint64_t v = co_await m.load(kBase);
                co_await m.compute(50);
                co_await m.store(kBase, std::uint32_t(v + 1));
            }));
        }
        sys.addThread(p, std::move(steps));
    }
    sys.run();
    EXPECT_EQ(sys.readWord32(p, kBase), kThreads * kIters);
    AbortBreakdown b = breakdownOf(sys);
    EXPECT_GT(b.byReason[unsigned(AbortReason::ConflictLost)], 0u);
    checkAccounting(sys);
}

/** A plain store into a transaction's write set: NonTxConflict. */
TEST(AbortAccounting, NonTxConflictAborts)
{
    System sys(tracedParams(quietParams(TmKind::SelectPtm)));
    ProcId p = sys.createProcess();
    std::vector<Step> txer;
    for (unsigned i = 0; i < 20; ++i) {
        txer.push_back(tx([](MemCtx m) -> TxCoro {
            std::uint64_t v = co_await m.load(kBase);
            co_await m.compute(400);
            co_await m.store(kBase, std::uint32_t(v + 1));
        }));
    }
    sys.addThread(p, std::move(txer));
    std::vector<Step> plainer;
    for (unsigned i = 0; i < 20; ++i) {
        plainer.push_back(plain([i](MemCtx m) -> TxCoro {
            co_await m.compute(300);
            co_await m.store(kBase + 4, i); // same block, plain
        }));
    }
    sys.addThread(p, std::move(plainer));
    sys.run();
    AbortBreakdown b = breakdownOf(sys);
    EXPECT_GT(b.byReason[unsigned(AbortReason::NonTxConflict)], 0u)
        << "the non-transactional writer never hit the tx block";
    checkAccounting(sys);
}

/** wd:cache evictions of multi-writer blocks: MultiWriterEviction. */
TEST(AbortAccounting, MultiWriterEvictionAborts)
{
    SystemParams prm = tinyCacheParams(TmKind::SelectPtm);
    prm.granularity = Granularity::WordCache;
    prm.l2Bytes = 4096;
    System sys(tracedParams(prm));
    ProcId p = sys.createProcess();
    constexpr unsigned kBlocks = 200; // >> 64-line L2
    for (unsigned t = 0; t < 4; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < 3; ++i) {
            steps.push_back(tx([t](MemCtx m) -> TxCoro {
                for (unsigned b = 0; b < kBlocks; ++b)
                    co_await m.store(kBase + Addr(b) * blockBytes +
                                         4 * t,
                                     b * 16 + t);
            }));
        }
        sys.addThread(p, std::move(steps));
    }
    sys.run();
    AbortBreakdown b = breakdownOf(sys);
    EXPECT_GT(b.byReason[unsigned(AbortReason::MultiWriterEviction)],
              0u);
    checkAccounting(sys);
}

/** Chaos-injected forced aborts: Explicit. */
TEST(AbortAccounting, InjectedExplicitAborts)
{
    SystemParams prm = tinyCacheParams(TmKind::SelectPtm);
    prm.chaos.enabled = true;
    prm.chaos.seed = 5;
    prm.chaos.plan = chaosFaultMask(ChaosFault::ExplicitAbort);
    prm.chaos.interval = 4000;
    System sys(tracedParams(prm));
    ProcId p = sys.createProcess();
    for (unsigned t = 0; t < 4; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < 3; ++i) {
            steps.push_back(tx([t, i](MemCtx m) -> TxCoro {
                for (unsigned b = 0; b < 16; ++b)
                    co_await m.store(kBase +
                                         Addr(t) * 64 * blockBytes +
                                         Addr(b) * blockBytes,
                                     100 * t + 10 * i + b);
            }));
        }
        sys.addThread(p, std::move(steps));
    }
    sys.run();
    AbortBreakdown b = breakdownOf(sys);
    EXPECT_GT(b.byReason[unsigned(AbortReason::Explicit)], 0u)
        << "no injection found a live victim; shorten the interval";
    EXPECT_EQ(b.byReason[unsigned(AbortReason::Explicit)],
              sys.chaos().injectedAborts.value());
    checkAccounting(sys);
}

/** All reasons at once still partition the total exactly. */
TEST(AbortAccounting, MixedReasonsStillSum)
{
    SystemParams prm = tinyCacheParams(TmKind::SelectPtm);
    prm.granularity = Granularity::WordCache;
    prm.l2Bytes = 4096;
    prm.chaos.enabled = true;
    prm.chaos.seed = 9;
    prm.chaos.plan = chaosFaultMask(ChaosFault::ExplicitAbort);
    prm.chaos.interval = 20000;
    System sys(tracedParams(prm));
    ProcId p = sys.createProcess();
    constexpr unsigned kBlocks = 120;
    for (unsigned t = 0; t < 4; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < 2; ++i) {
            steps.push_back(tx([t](MemCtx m) -> TxCoro {
                for (unsigned b = 0; b < kBlocks; ++b)
                    co_await m.store(kBase + Addr(b) * blockBytes +
                                         4 * t,
                                     b * 16 + t);
            }));
        }
        sys.addThread(p, std::move(steps));
    }
    sys.addThread(p, {plain([](MemCtx m) -> TxCoro {
                      co_await m.compute(5000);
                      co_await m.store(kBase + 8, 77);
                  })});
    sys.run();
    AbortBreakdown b = breakdownOf(sys);
    EXPECT_GT(b.total, 0u);
    checkAccounting(sys);
}

} // namespace
} // namespace ptm
