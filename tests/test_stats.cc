/**
 * @file
 * Unit tests for the statistics registry (sim/stats) and the JSON
 * emission layer (harness/stats_io): primitive edge cases, duplicate
 * registration as a hard error, snapshot addressing, emit-and-reparse
 * round trips, and the per-system registry contents.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "harness/experiment.hh"
#include "harness/stats_io.hh"
#include "sim/stats.hh"

namespace ptm
{
namespace
{

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(AverageStat, EmptyAndSamples)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.samples(), 0u);
    a.sample(2.0);
    EXPECT_EQ(a.mean(), 2.0);
    a.sample(4.0);
    EXPECT_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.samples(), 2u);
}

TEST(TimeWeightedStat, PiecewiseConstant)
{
    TimeWeighted t;
    t.set(0, 10.0);
    t.set(10, 20.0); // 10.0 held for [0,10)
    t.finish(30);    // 20.0 held for [10,30)
    EXPECT_DOUBLE_EQ(t.mean(), (10.0 * 10 + 20.0 * 20) / 30.0);
}

TEST(DistributionStat, Empty)
{
    Distribution d(0, 100, 10);
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
    EXPECT_EQ(d.underflow(), 0u);
    EXPECT_EQ(d.overflow(), 0u);
    for (unsigned i = 0; i < d.buckets(); ++i)
        EXPECT_EQ(d.count(i), 0u);
}

TEST(DistributionStat, SingleSample)
{
    Distribution d(0, 100, 10);
    d.sample(35);
    EXPECT_EQ(d.samples(), 1u);
    EXPECT_EQ(d.mean(), 35.0);
    EXPECT_EQ(d.min(), 35.0);
    EXPECT_EQ(d.max(), 35.0);
    EXPECT_EQ(d.count(3), 1u); // bucket [30,40)
}

TEST(DistributionStat, UnderflowOverflowAndBounds)
{
    Distribution d(10, 20, 10); // buckets of width 1 over [10,20)
    d.sample(9.99);             // underflow
    d.sample(10.0);             // first bucket (inclusive lo)
    d.sample(19.99);            // last bucket
    d.sample(20.0);             // overflow (exclusive hi)
    d.sample(1000, 3);          // weighted overflow
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 4u);
    EXPECT_EQ(d.count(0), 1u);
    EXPECT_EQ(d.count(9), 1u);
    EXPECT_EQ(d.samples(), 7u);
    EXPECT_EQ(d.min(), 9.99);
    EXPECT_EQ(d.max(), 1000.0);
    // mean uses the exact sum, not bucket midpoints
    EXPECT_DOUBLE_EQ(d.sum(), 9.99 + 10.0 + 19.99 + 20.0 + 3000.0);
}

TEST(DistributionStat, WeightedSamples)
{
    Distribution d(0, 10, 5);
    d.sample(3, 4);
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_EQ(d.count(1), 4u); // bucket [2,4)
    EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(DistributionStat, PercentileEmptyAndSingle)
{
    Distribution d(0, 100, 10);
    EXPECT_EQ(d.percentile(50), 0.0);
    d.sample(35);
    // One sample: every percentile is that sample (clamped to
    // [min, max], which collapses to a point).
    EXPECT_DOUBLE_EQ(d.percentile(1), 35.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 35.0);
    EXPECT_DOUBLE_EQ(d.percentile(99), 35.0);
}

TEST(DistributionStat, PercentileUniform)
{
    Distribution d(0, 100, 10);
    for (int v = 0; v < 100; ++v)
        d.sample(v + 0.5);
    EXPECT_NEAR(d.percentile(50), 50.0, 1.0);
    EXPECT_NEAR(d.percentile(95), 95.0, 1.0);
    EXPECT_NEAR(d.percentile(99), 99.0, 1.0);
    EXPECT_LE(d.percentile(50), d.percentile(95));
    EXPECT_LE(d.percentile(95), d.percentile(99));
    // The extremes clamp to the exact sample bounds.
    EXPECT_DOUBLE_EQ(d.percentile(0), d.min());
    EXPECT_DOUBLE_EQ(d.percentile(100), d.max());
}

TEST(DistributionStat, PercentileUnderOverflow)
{
    Distribution d(10, 20, 10);
    d.sample(5);      // underflow
    d.sample(15);     // bucket [15,16)
    d.sample(100, 2); // overflow
    // Rank 1 lands in the underflow bin -> exact min.
    EXPECT_DOUBLE_EQ(d.percentile(10), 5.0);
    // Ranks past the buckets land in the overflow bin -> exact max.
    EXPECT_DOUBLE_EQ(d.percentile(99), 100.0);
    // Rank 2 interpolates inside [15,16).
    double p50 = d.percentile(50);
    EXPECT_GE(p50, 15.0);
    EXPECT_LE(p50, 16.0);
}

TEST(DistributionStat, PercentileMatchesSnapshot)
{
    StatRegistry reg;
    Distribution d(0, 50, 5);
    for (int v : {1, 7, 23, 23, 48, 60})
        d.sample(v);
    reg.addGroup("g").addDistribution("d", &d);
    StatSnapshot snap(reg);
    const StatValue *sv = snap.find("g.d");
    ASSERT_NE(sv, nullptr);
    for (double p : {0.0, 25.0, 50.0, 95.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(sv->dist.percentile(p), d.percentile(p));
}

TEST(StatGroupTest, RegistrationAndEnumeration)
{
    Counter c;
    Average a;
    c += 7;
    StatGroup g("g");
    g.addCounter("c", &c);
    g.addAverage("a", &a);
    g.addScalar("s", [] { return 2.5; });
    EXPECT_EQ(g.stats().size(), 3u);
    EXPECT_EQ(g.counterValue("c"), 7u);
    ASSERT_NE(g.find("s"), nullptr);
    EXPECT_EQ(g.find("s")->kind, StatKind::Scalar);
    EXPECT_EQ(g.find("missing"), nullptr);
}

TEST(StatGroupDeathTest, DuplicateStatNamePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Counter c1, c2;
    StatGroup g("g");
    g.addCounter("events", &c1);
    EXPECT_DEATH(g.addCounter("events", &c2), "duplicate");
}

TEST(StatGroupDeathTest, DuplicateAcrossKindsPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Counter c;
    Average a;
    StatGroup g("g");
    g.addCounter("x", &c);
    EXPECT_DEATH(g.addAverage("x", &a), "duplicate");
}

TEST(StatRegistryDeathTest, DuplicateGroupNamePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    StatRegistry reg;
    reg.addGroup("mem");
    EXPECT_DEATH(reg.addGroup("mem"), "duplicate");
}

TEST(StatSnapshotTest, CapturesByValue)
{
    StatRegistry reg;
    Counter c;
    Distribution d(0, 10, 5);
    {
        StatGroup &g = reg.addGroup("g");
        c += 3;
        d.sample(4);
        g.addCounter("c", &c);
        g.addDistribution("d", &d);
    }
    StatSnapshot snap(reg);
    // Mutations after the snapshot must not show through.
    c += 100;
    d.sample(9);
    EXPECT_EQ(snap.counter("g.c"), 3u);
    const StatValue *v = snap.find("g.d");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->kind, StatKind::Distribution);
    EXPECT_EQ(v->dist.samples, 1u);
    EXPECT_FALSE(snap.has("g.missing"));
    EXPECT_EQ(snap.counter("g.missing"), 0u);
}

TEST(MiniJson, ParsesBasicDocument)
{
    minijson::Value v;
    std::string err;
    ASSERT_TRUE(minijson::parse(
        R"({"a": 1.5, "b": [1, 2, 3], "c": {"d": "x\ny"},
            "t": true, "n": null})",
        v, &err))
        << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.get("a")->number, 1.5);
    EXPECT_EQ(v.get("b")->array.size(), 3u);
    EXPECT_EQ(v.get("c")->get("d")->str, "x\ny");
    EXPECT_TRUE(v.get("t")->boolean);
    EXPECT_EQ(v.get("n")->type, minijson::Value::Type::Null);
    EXPECT_EQ(v.get("zz"), nullptr);
}

TEST(MiniJson, RejectsMalformedInput)
{
    minijson::Value v;
    EXPECT_FALSE(minijson::parse("{\"a\": }", v, nullptr));
    EXPECT_FALSE(minijson::parse("[1, 2", v, nullptr));
    EXPECT_FALSE(minijson::parse("{} trailing", v, nullptr));
    EXPECT_FALSE(minijson::parse("", v, nullptr));
}

TEST(JsonWriterTest, EscapesStrings)
{
    std::ostringstream os;
    jsonEscape(os, "a\"b\\c\nd\te\x01");
    EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

/** Emit a populated registry and parse the result back. */
TEST(StatsIoTest, RunJsonRoundTrip)
{
    StatRegistry reg;
    Counter c;
    c += 12;
    Average a;
    a.sample(1);
    a.sample(3);
    Distribution d(0, 100, 4);
    d.sample(-5);
    d.sample(10);
    d.sample(250, 2);
    StatGroup &g = reg.addGroup("grp");
    g.addCounter("events", &c);
    g.addAverage("avg", &a);
    g.addDistribution("dist", &d);
    g.addScalar("ratio", [] { return 0.75; });

    SystemParams prm;
    prm.tmKind = TmKind::Vtm;
    prm.seed = 99;
    RunManifest m;
    m.tool = "test";
    m.workload = "wl\"quoted";
    m.threads = 4;
    m.scale = -1;
    m.cycles = 123456;
    m.verified = true;
    m.wallSeconds = 0.25;
    m.params = &prm;

    std::ostringstream os;
    emitRunJson(os, m, StatSnapshot(reg));

    minijson::Value v;
    std::string err;
    ASSERT_TRUE(minijson::parse(os.str(), v, &err)) << err;
    EXPECT_EQ(v.get("schema")->str, "ptm-stats-v1");

    const minijson::Value *man = v.get("manifest");
    ASSERT_NE(man, nullptr);
    EXPECT_EQ(man->get("tool")->str, "test");
    EXPECT_EQ(man->get("workload")->str, "wl\"quoted");
    EXPECT_EQ(man->get("system")->str, std::string(tmKindName(prm.tmKind)));
    EXPECT_DOUBLE_EQ(man->get("seed")->number, 99);
    EXPECT_DOUBLE_EQ(man->get("scale")->number, -1);
    EXPECT_DOUBLE_EQ(man->get("cycles")->number, 123456);
    EXPECT_TRUE(man->get("verified")->boolean);
    ASSERT_NE(man->get("params"), nullptr);
    EXPECT_DOUBLE_EQ(man->get("params")->get("num_cores")->number, 4);

    const minijson::Value *grp = v.get("groups")->get("grp");
    ASSERT_NE(grp, nullptr);
    EXPECT_EQ(grp->get("events")->get("kind")->str, "counter");
    EXPECT_DOUBLE_EQ(grp->get("events")->get("value")->number, 12);
    EXPECT_EQ(grp->get("avg")->get("kind")->str, "average");
    EXPECT_DOUBLE_EQ(grp->get("avg")->get("mean")->number, 2.0);
    EXPECT_DOUBLE_EQ(grp->get("ratio")->get("value")->number, 0.75);

    const minijson::Value *dist = grp->get("dist");
    ASSERT_NE(dist, nullptr);
    EXPECT_EQ(dist->get("kind")->str, "distribution");
    EXPECT_DOUBLE_EQ(dist->get("samples")->number, 4);
    EXPECT_DOUBLE_EQ(dist->get("underflow")->number, 1);
    EXPECT_DOUBLE_EQ(dist->get("overflow")->number, 2);
    EXPECT_DOUBLE_EQ(dist->get("min")->number, -5);
    EXPECT_DOUBLE_EQ(dist->get("max")->number, 250);
    EXPECT_DOUBLE_EQ(dist->get("p50")->number, d.percentile(50));
    EXPECT_DOUBLE_EQ(dist->get("p95")->number, d.percentile(95));
    EXPECT_DOUBLE_EQ(dist->get("p99")->number, d.percentile(99));
    ASSERT_EQ(dist->get("counts")->array.size(), 4u);
    EXPECT_DOUBLE_EQ(dist->get("counts")->array[0].number, 1);
}

TEST(StatsIoTest, BenchRecorderRoundTrip)
{
    BenchRecorder rec("mybench");
    rec.beginRow()
        .field("app", "fft")
        .field("cycles", std::uint64_t(100))
        .field("pct", 12.5)
        .field("ok", true);
    rec.beginRow().field("app", "lu");

    std::string path = ::testing::TempDir() + "bench_rt.json";
    ASSERT_TRUE(rec.writeJson(path));
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();

    minijson::Value v;
    std::string err;
    ASSERT_TRUE(minijson::parse(ss.str(), v, &err)) << err;
    EXPECT_EQ(v.get("schema")->str, "ptm-bench-v1");
    EXPECT_EQ(v.get("bench")->str, "mybench");
    ASSERT_EQ(v.get("rows")->array.size(), 2u);
    const minijson::Value &r0 = v.get("rows")->array[0];
    EXPECT_EQ(r0.get("app")->str, "fft");
    EXPECT_DOUBLE_EQ(r0.get("cycles")->number, 100);
    EXPECT_DOUBLE_EQ(r0.get("pct")->number, 12.5);
    EXPECT_TRUE(r0.get("ok")->boolean);
}

TEST(StatsIoTest, EmptyJsonPathIsNoop)
{
    BenchRecorder rec("b");
    EXPECT_TRUE(rec.writeJson(""));
}

/**
 * Every system kind must register a non-empty, correctly named group
 * set, queryable through the snapshot an experiment returns.
 */
TEST(RegistryEnumeration, AllSystemKindsRegisterGroups)
{
    struct Case
    {
        TmKind kind;
        bool hasTx, hasVts, hasVtm;
    };
    const Case cases[] = {
        {TmKind::Serial, true, false, false},
        {TmKind::Locks, true, false, false},
        {TmKind::CopyPtm, true, true, false},
        {TmKind::SelectPtm, true, true, false},
        {TmKind::Vtm, true, false, true},
        {TmKind::VcVtm, true, false, true},
    };
    for (const Case &c : cases) {
        SystemParams prm;
        prm.tmKind = c.kind;
        ExperimentResult r = runWorkload("fft", prm, 0, 2);
        const StatSnapshot &s = r.snapshot;
        SCOPED_TRACE(tmKindName(c.kind));
        EXPECT_TRUE(r.verified);

        for (const char *g : {"sys", "mem", "os", "core0"}) {
            bool found = false;
            for (const auto &grp : s.groups())
                found = found || grp.name == g;
            EXPECT_TRUE(found) << "missing group " << g;
        }
        for (const auto &grp : s.groups())
            EXPECT_FALSE(grp.stats.empty())
                << "empty group " << grp.name;

        EXPECT_EQ(s.has("tx.commits"), c.hasTx);
        EXPECT_EQ(s.has("vts.shadow_allocs"), c.hasVts);
        EXPECT_EQ(s.has("vtm.xadt_inserts"), c.hasVtm);
        // The registry and the legacy flat view must agree.
        EXPECT_EQ(s.counter("tx.commits"), r.stats.commits);
        EXPECT_EQ(s.counter("mem.evictions"), r.stats.evictions);
        EXPECT_EQ(s.counter("os.context_switches"),
                  r.stats.contextSwitches);
    }
}

/** The per-cause abort counters must sum to the abort total. */
TEST(RegistryEnumeration, AbortCausesSumToTotal)
{
    SystemParams prm;
    prm.tmKind = TmKind::SelectPtm;
    ExperimentResult r = runWorkload("ocean", prm, 0, 4);
    const StatSnapshot &s = r.snapshot;
    EXPECT_EQ(s.counter("tx.aborts"),
              s.counter("tx.aborts_conflict") +
                  s.counter("tx.aborts_nontx") +
                  s.counter("tx.aborts_multiwriter") +
                  s.counter("tx.aborts_explicit"));
}

} // namespace
} // namespace ptm
