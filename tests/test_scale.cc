/**
 * @file
 * Wide-machine scaling: banked interconnect interleaving, the
 * direct-execution fast-forward invariants, configuration validation,
 * and a 64-core audited end-to-end smoke.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "mem/timing.hh"
#include "ptm/vts.hh"
#include "sim/config.hh"
#include "sim_test_util.hh"

namespace ptm
{
namespace
{

using namespace ptm::test;

// ---------------------------------------------------------------- bus

TEST(BankedBus, EveryBlockMapsToExactlyOneBank)
{
    BusModel bus(20, 8);
    ASSERT_EQ(bus.numBanks(), 8u);
    for (Addr block = 0; block < 256 * blockBytes; block += blockBytes) {
        unsigned b = bus.bankOf(block);
        EXPECT_LT(b, 8u);
        // Deterministic: the same block always lands on the same bank.
        EXPECT_EQ(b, bus.bankOf(block));
        // Sub-block addresses share the block's bank.
        EXPECT_EQ(b, bus.bankOf(block + 4));
    }
    // Consecutive blocks interleave round-robin over the banks.
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(bus.bankOf(Addr(i) * blockBytes), i % 8);
}

TEST(BankedBus, SingleBankMatchesSerializedReference)
{
    // At banks=1 the banked model must be the paper's single FIFO bus.
    BusModel one(20, 1);
    BusModel ref(20); // default single bank
    const Addr blocks[] = {0x40, 0x80, 0xc0, 0x40, 0x1000};
    const Tick now[] = {0, 0, 100, 105, 110};
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(one.reserve(blocks[i], now[i]),
                  ref.reserve(blocks[i], now[i]));
    EXPECT_EQ(one.transactions(), ref.transactions());
    EXPECT_EQ(one.busyCycles(), ref.busyCycles());
}

TEST(BankedBus, PerBankStatsSumToTotals)
{
    BusModel bus(20, 4);
    for (unsigned i = 0; i < 37; ++i)
        bus.reserve(Addr(i) * blockBytes, Tick(i) * 3);
    std::uint64_t tx = 0, busy = 0;
    for (unsigned b = 0; b < bus.numBanks(); ++b) {
        tx += bus.bankTransactions(b);
        busy += bus.bankBusyCycles(b);
    }
    EXPECT_EQ(tx, bus.transactions());
    EXPECT_EQ(busy, bus.busyCycles());
    EXPECT_EQ(tx, 37u);
    EXPECT_EQ(busy, 37u * 20u);
}

TEST(BankedBus, DisjointBanksDoNotQueueBehindEachOther)
{
    BusModel bus(20, 4);
    // Four same-tick requests to four different banks all get the bus
    // immediately; on one bank they would serialize 0/20/40/60.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(bus.reserve(Addr(i) * blockBytes, 0), 0u);
    // A fifth to bank 0 queues behind the first only.
    EXPECT_EQ(bus.reserve(0, 0), 20u);
}

// ------------------------------------------------- banked VTS cache

TEST(BankedVtsCache, SinglePartitionMatchesPlainCache)
{
    BankedVtsCache banked(8, 1);
    VtsMetaCache plain(8);
    ASSERT_EQ(banked.numPartitions(), 1u);
    for (std::uint64_t k = 0; k < 32; ++k) {
        bool ed_b = false, ed_p = false;
        bool hit_b = banked.access(PageNum(k), k, k % 3 == 0, ed_b);
        bool hit_p = plain.access(k, k % 3 == 0, ed_p);
        EXPECT_EQ(hit_b, hit_p) << k;
        EXPECT_EQ(ed_b, ed_p) << k;
    }
    EXPECT_EQ(banked.hits.value(), plain.hits.value());
    EXPECT_EQ(banked.misses.value(), plain.misses.value());
}

TEST(BankedVtsCache, PartitionsAreIndependent)
{
    BankedVtsCache banked(8, 4); // 2 entries per partition
    ASSERT_EQ(banked.numPartitions(), 4u);
    EXPECT_EQ(banked.capacity(), 8u);
    bool ed = false;
    // Two keys on partition 0 fit; a third evicts, but keys routed to
    // other partitions are untouched.
    EXPECT_FALSE(banked.access(PageNum(0), 100, false, ed));
    EXPECT_FALSE(banked.access(PageNum(4), 104, false, ed));
    EXPECT_FALSE(banked.access(PageNum(1), 101, false, ed));
    EXPECT_FALSE(banked.access(PageNum(8), 108, false, ed)); // evicts
    EXPECT_TRUE(banked.access(PageNum(1), 101, false, ed));
}

// -------------------------------------------------- config validation

TEST(ValidateParams, AcceptsDefaultsAndWideMachines)
{
    SystemParams p;
    EXPECT_EQ(validateParams(p), "");
    p.numCores = 64;
    p.memBanks = 256;
    p.fastForwardOps = 1000;
    EXPECT_EQ(validateParams(p), "");
}

TEST(ValidateParams, RejectsBadCoreCounts)
{
    SystemParams p;
    p.numCores = 0;
    EXPECT_NE(validateParams(p).find("--cores"), std::string::npos);
    p.numCores = 65;
    EXPECT_NE(validateParams(p).find("64"), std::string::npos);
}

TEST(ValidateParams, RejectsBadBankCounts)
{
    SystemParams p;
    p.memBanks = 0;
    EXPECT_NE(validateParams(p), "");
    p.memBanks = 3;
    EXPECT_NE(validateParams(p).find("power of two"),
              std::string::npos);
    p.memBanks = 512;
    EXPECT_NE(validateParams(p), "");
}

// ------------------------------------------------------ fast-forward

/**
 * The fast-forward contract: simulated results (cycles, commits,
 * aborts, memory ops, cache traffic) are bit-identical to the
 * one-event-per-op path; only host event counts shrink. This is the
 * entry/exit invariant test — a batch entered with an open
 * transaction or acting past a pending snoop's tick would perturb
 * these totals.
 */
TEST(FastForward, SimulatedResultsUnchangedEventsFewer)
{
    for (const char *wl : {"fft", "kv"}) {
        SystemParams base = quietParams(TmKind::SelectPtm);
        SystemParams ff = base;
        ff.fastForwardOps = 32;
        ExperimentResult a = runWorkload(wl, base, 0, 4);
        ExperimentResult b = runWorkload(wl, ff, 0, 4);
        ASSERT_TRUE(a.verified);
        ASSERT_TRUE(b.verified);
        EXPECT_EQ(a.cycles, b.cycles) << wl;
        for (const char *stat :
             {"tx.commits", "tx.aborts", "sys.mem_ops", "mem.l1_hits",
              "mem.l2_hits", "mem.misses", "mem.bus_transactions",
              "os.exceptions", "os.context_switches", "os.tlb_misses"})
            if (a.snapshot.has(stat) && b.snapshot.has(stat))
                EXPECT_EQ(a.snapshot.counter(stat),
                          b.snapshot.counter(stat))
                    << wl << " " << stat;
        std::uint64_t ff_ops = 0;
        for (unsigned c = 0; c < ff.numCores; ++c)
            ff_ops += b.snapshot.counter(
                "core" + std::to_string(c) + ".ff_ops");
        EXPECT_GT(ff_ops, 0u) << wl;
        EXPECT_LE(b.snapshot.value("events.executed"),
                  a.snapshot.value("events.executed"))
            << wl;
    }
}

TEST(FastForward, ComposesWithOsNoiseAndQuanta)
{
    // Preemption boundaries (quantum + daemon) are batch-exit points;
    // results must stay identical with them enabled.
    SystemParams base = quietParams(TmKind::SelectPtm);
    base.osQuantum = 6000;
    base.daemonInterval = 9000;
    SystemParams ff = base;
    ff.fastForwardOps = 32;
    ExperimentResult a = runWorkload("fft", base, 0, 4);
    ExperimentResult b = runWorkload("fft", ff, 0, 4);
    ASSERT_TRUE(a.verified);
    ASSERT_TRUE(b.verified);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.snapshot.counter("tx.commits"),
              b.snapshot.counter("tx.commits"));
    EXPECT_EQ(a.snapshot.counter("os.context_switches"),
              b.snapshot.counter("os.context_switches"));
    EXPECT_EQ(a.snapshot.counter("sys.mem_ops"),
              b.snapshot.counter("sys.mem_ops"));
}

// ----------------------------------------------- wide-machine smoke

TEST(WideMachine, SixtyFourCoreAuditedRunPasses)
{
    SystemParams p = quietParams(TmKind::SelectPtm);
    p.numCores = 64;
    p.memBanks = 8;
    p.fastForwardOps = 32;
    p.audit.enabled = true;
    ExperimentResult r = runWorkload("fft", p, 0, 64);
    EXPECT_TRUE(r.verified);
    EXPECT_TRUE(r.auditViolations.empty());
    EXPECT_GT(r.auditChecks, 0u);
}

TEST(WideMachine, BankingPreservesResultsAndBankStatsAddUp)
{
    // banks=1 is the bit-exact paper machine; more banks change grant
    // timing (and hence abort/retry counts) but never the functional
    // result or the committed work, and the per-bank occupancy
    // accounting must stay consistent with the aggregate.
    SystemParams one = quietParams(TmKind::SelectPtm);
    one.numCores = 16;
    SystemParams banked = one;
    banked.memBanks = 8;
    ExperimentResult a = runWorkload("radix", one, 0, 16);
    ExperimentResult b = runWorkload("radix", banked, 0, 16);
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
    // Every transaction commits exactly once under either machine.
    EXPECT_EQ(a.snapshot.counter("tx.commits"),
              b.snapshot.counter("tx.commits"));
    std::uint64_t per_bank = 0;
    for (unsigned i = 0; i < 8; ++i)
        per_bank += b.snapshot.counter(
            "mem.bus_bank" + std::to_string(i) + "_busy_cycles");
    EXPECT_EQ(per_bank, b.snapshot.counter("mem.bus_busy_cycles"));
    EXPECT_GT(per_bank, 0u);
}

} // namespace
} // namespace ptm
