/**
 * @file
 * Tests for coroutine composition and the spinlock baseline.
 */

#include <gtest/gtest.h>

#include "locks/spinlock.hh"
#include "sim_test_util.hh"

namespace ptm
{
namespace
{

using namespace ptm::test;

constexpr Addr kBase = 0x40000;
constexpr Addr kLock = 0x90000;

TxCoro
writePair(MemCtx m, Addr a, std::uint32_t v)
{
    co_await m.store(a, v);
    co_await m.store(a + 4, v + 1);
}

TxCoro
writeFour(MemCtx m, Addr a, std::uint32_t v)
{
    co_await writePair(m, a, v);          // nested sub-coroutine
    co_await writePair(m, a + 8, v + 2);  // two levels deep overall
}

TEST(Coro, SubCoroutineOpsReachMemory)
{
    System sys(quietParams(TmKind::Serial));
    ProcId p = sys.createProcess();
    sys.addThread(p, {plain([](MemCtx m) -> TxCoro {
                      co_await writeFour(m, kBase, 10);
                      std::uint64_t s = 0;
                      for (int i = 0; i < 4; ++i)
                          s += co_await m.load(kBase + 4 * i);
                      co_await m.store(kBase + 64, std::uint32_t(s));
                  })});
    sys.run();
    EXPECT_EQ(sys.readWord32(p, kBase + 0), 10u);
    EXPECT_EQ(sys.readWord32(p, kBase + 4), 11u);
    EXPECT_EQ(sys.readWord32(p, kBase + 8), 12u);
    EXPECT_EQ(sys.readWord32(p, kBase + 12), 13u);
    EXPECT_EQ(sys.readWord32(p, kBase + 64), 46u);
}

TEST(Coro, SubCoroutineInsideTransactionAborts)
{
    // A transaction whose body lives in sub-coroutines still restarts
    // cleanly from the top on abort.
    System sys(quietParams(TmKind::SelectPtm));
    ProcId p = sys.createProcess();
    constexpr unsigned kIters = 40;
    for (unsigned t = 0; t < 4; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < kIters; ++i) {
            steps.push_back(tx([](MemCtx m) -> TxCoro {
                std::uint64_t v = co_await m.load(kBase);
                co_await m.compute(15);
                co_await writePair(m, kBase,
                                   std::uint32_t(v + 1));
            }));
        }
        sys.addThread(p, std::move(steps));
    }
    sys.run();
    EXPECT_EQ(sys.readWord32(p, kBase), 4 * kIters);
}

TEST(Spinlock, MutualExclusion)
{
    System sys(quietParams(TmKind::Locks));
    ProcId p = sys.createProcess();
    constexpr unsigned kIters = 50;
    for (unsigned t = 0; t < 4; ++t) {
        sys.addThread(p, {plain([](MemCtx m) -> TxCoro {
                          for (unsigned i = 0; i < kIters; ++i) {
                              co_await spinLock(m, kLock);
                              std::uint64_t v =
                                  co_await m.load(kBase);
                              co_await m.compute(12);
                              co_await m.store(
                                  kBase, std::uint32_t(v + 1));
                              co_await spinUnlock(m, kLock);
                          }
                      })});
    }
    sys.run();
    EXPECT_EQ(sys.readWord32(p, kBase), 4 * kIters);
}

TEST(Spinlock, UncontendedAcquireIsCheap)
{
    System sys(quietParams(TmKind::Locks));
    ProcId p = sys.createProcess();
    sys.addThread(p, {plain([](MemCtx m) -> TxCoro {
                      for (unsigned i = 0; i < 100; ++i) {
                          co_await spinLock(m, kLock);
                          co_await m.store(kBase, i);
                          co_await spinUnlock(m, kLock);
                      }
                  })});
    Tick end = sys.run();
    // After the first miss the lock stays in the core's cache: the
    // whole loop should run at cache-hit speed.
    EXPECT_LT(end, 10000u);
}

} // namespace
} // namespace ptm
