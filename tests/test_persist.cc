/**
 * @file
 * Unit tests for the persistence domain (src/persist/wal): CRC32
 * known answers, record serialization round trips through WalManager,
 * truncation at EVERY byte offset of a multi-record log (each cut
 * must replay as a clean prefix or a reported torn tail — never a
 * silent partial image), corruption rejection with offset-bearing
 * diagnostics, ordered-flush drain accounting, and dump file I/O
 * including region-CRC verification.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "persist/wal.hh"
#include "sim/config.hh"

namespace ptm
{
namespace
{

PersistParams
walParams()
{
    PersistParams p;
    p.policy = Durability::Wal;
    p.flushLatency = 300;
    p.logBytesPerCycle = 16;
    return p;
}

/** Build a three-record log: two write sets and a read-only commit. */
std::vector<std::uint8_t>
sampleLog(std::vector<std::size_t> *boundaries = nullptr)
{
    WalManager wal(walParams(), TmKind::SelectPtm);
    std::vector<std::size_t> ends;

    wal.noteStore(11, 0x1000, 5);
    wal.noteStore(11, 0x1008, 6);
    wal.commitTx(11, 0, 1000);
    ends.push_back(wal.log().size());

    wal.noteStore(12, 0x1000, 9);
    wal.commitTx(12, 1, 2000);
    ends.push_back(wal.log().size());

    wal.commitTx(13, 0, 3000); // read-only: empty redo set
    ends.push_back(wal.log().size());

    if (boundaries)
        *boundaries = ends;
    return wal.log();
}

TEST(WalCrc, KnownAnswer)
{
    // The standard CRC-32 check value (zlib polynomial).
    const char *msg = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t *>(msg), 9),
              0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(WalRecord, RoundTripThroughManager)
{
    std::vector<std::size_t> ends;
    std::vector<std::uint8_t> log = sampleLog(&ends);
    ASSERT_EQ(ends.size(), 3u);
    EXPECT_EQ(ends[0],
              walRecordHeaderBytes + 2 * walRecordWriteBytes +
                  walRecordCrcBytes);
    EXPECT_EQ(ends[2] - ends[1],
              walRecordHeaderBytes + walRecordCrcBytes);

    WalReplay r = replayWal(log.data(), log.size());
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.tornBytes, 0u);
    ASSERT_EQ(r.records.size(), 3u);

    EXPECT_EQ(r.records[0].seq, 1u);
    EXPECT_EQ(r.records[0].tx, 11u);
    EXPECT_EQ(r.records[0].thread, 0u);
    EXPECT_EQ(r.records[0].ordinal, 1u);
    EXPECT_EQ(r.records[0].kind,
              std::uint32_t(TmKind::SelectPtm));
    ASSERT_EQ(r.records[0].writes.size(), 2u);
    EXPECT_EQ(r.records[0].writes[1].first, 0x1008u);
    EXPECT_EQ(r.records[0].writes[1].second, 6u);

    // Per-thread ordinals are program order within the thread.
    EXPECT_EQ(r.records[1].ordinal, 1u);
    EXPECT_EQ(r.records[2].ordinal, 2u);
    EXPECT_EQ(r.perThread.at(0), 2u);
    EXPECT_EQ(r.perThread.at(1), 1u);

    // Last writer wins in the replay image.
    EXPECT_EQ(r.image.at(0x1000), 9u);
    EXPECT_EQ(r.image.at(0x1008), 6u);
    EXPECT_EQ(r.records[2].writes.size(), 0u);
}

TEST(WalRecord, AbortedRedoSetNeverReachesLog)
{
    WalManager wal(walParams(), TmKind::SelectPtm);
    wal.noteStore(21, 0x2000, 7);
    wal.discard(21);
    wal.noteStore(22, 0x2008, 8);
    wal.commitTx(22, 0, 100);

    WalReplay r = replayWal(wal.log().data(), wal.log().size());
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.records.size(), 1u);
    EXPECT_EQ(r.image.count(0x2000), 0u);
    EXPECT_EQ(r.image.at(0x2008), 8u);
}

// The satellite contract: a log truncated at ANY byte offset either
// replays as a clean record prefix or reports a torn tail — it never
// errors and never invents a record.
TEST(WalTruncation, EveryByteOffsetIsPrefixOrTorn)
{
    std::vector<std::size_t> ends;
    std::vector<std::uint8_t> log = sampleLog(&ends);

    for (std::size_t cut = 0; cut <= log.size(); ++cut) {
        WalReplay r = replayWal(log.data(), cut);
        ASSERT_TRUE(r.ok())
            << "cut at " << cut << " misread as corrupt: " << r.error;

        std::size_t complete = 0;
        while (complete < ends.size() && ends[complete] <= cut)
            ++complete;
        EXPECT_EQ(r.records.size(), complete) << "cut at " << cut;

        bool at_boundary = cut == 0 || (complete &&
                                        ends[complete - 1] == cut);
        EXPECT_EQ(r.tornBytes > 0, !at_boundary)
            << "cut at " << cut;
        if (!at_boundary) {
            std::size_t start = complete ? ends[complete - 1] : 0;
            EXPECT_EQ(r.tornOffset, start) << "cut at " << cut;
            EXPECT_EQ(r.tornBytes, cut - start) << "cut at " << cut;
        }
    }
}

TEST(WalCorruption, FlippedByteFailsCrcNamingOffset)
{
    std::vector<std::uint8_t> log = sampleLog();
    log[walRecordHeaderBytes + 2] ^= 0xFF; // inside record 1's writes
    WalReplay r = replayWal(log.data(), log.size());
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("crc"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("offset 0"), std::string::npos) << r.error;
    EXPECT_TRUE(r.records.empty());
}

TEST(WalCorruption, BadMagicIsRejected)
{
    std::vector<std::uint8_t> log = sampleLog();
    log[0] ^= 0xFF;
    WalReplay r = replayWal(log.data(), log.size());
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("magic"), std::string::npos) << r.error;
}

TEST(WalCorruption, ReorderedRecordsBreakTheSequence)
{
    std::vector<std::size_t> ends;
    std::vector<std::uint8_t> log = sampleLog(&ends);

    // Swap records 1 and 2 wholesale: each is internally consistent
    // (magic, length, CRC all hold) but the global sequence now
    // starts at 2 — replay must refuse rather than reorder.
    std::vector<std::uint8_t> swapped;
    swapped.insert(swapped.end(), log.begin() + ends[0],
                   log.begin() + ends[1]);
    swapped.insert(swapped.end(), log.begin(), log.begin() + ends[0]);
    WalReplay r = replayWal(swapped.data(), swapped.size());
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("sequence"), std::string::npos) << r.error;
}

TEST(WalDrain, DurableBytesAreProportionalToTheFlush)
{
    PersistParams prm = walParams();
    prm.flushLatency = 100;
    prm.logBytesPerCycle = 1;
    WalManager wal(prm, TmKind::SelectPtm);

    wal.noteStore(31, 0x3000, 1);
    Tick stall = wal.commitTx(31, 0, 1000);
    std::uint64_t bytes = wal.log().size();
    // Drain window: [1000, 1000 + flushLatency + bytes/1B-per-cycle].
    EXPECT_EQ(stall, Tick(100 + bytes));

    EXPECT_EQ(wal.durableBytesAt(999), 0u);
    EXPECT_EQ(wal.durableBytesAt(1000), 0u);
    EXPECT_EQ(wal.durableBytesAt(1000 + 100 + bytes), bytes);
    std::uint64_t half = wal.durableBytesAt(1000 + (100 + bytes) / 2);
    EXPECT_GT(half, 0u);
    EXPECT_LT(half, bytes);

    // A second commit while the device is busy queues behind the
    // first append: its stall covers the residual drain too.
    wal.noteStore(32, 0x3008, 2);
    Tick stall2 = wal.commitTx(32, 0, 1001);
    EXPECT_GT(stall2, stall);
}

TEST(WalDump, FileRoundTrip)
{
    WalDump d;
    d.tmKind = std::uint32_t(TmKind::CopyPtm);
    d.threads = 4;
    d.seed = 42;
    d.crashTick = 12345;
    d.endTick = 12345;
    d.workload = "kv";
    d.options = {{"keys", "64"}, {"zipf", "0.99"}};
    d.checkpoint.push_back({0x10000, {1, 2, 3, 0, 5}});
    d.checkpoint.push_back({0x20000, {7}});
    std::vector<std::uint8_t> log = sampleLog();
    d.log = log;
    d.logBytesTotal = log.size() + 33; // 33 bytes never drained

    std::string path =
        testing::TempDir() + "/test_persist_roundtrip.wal";
    std::string err;
    ASSERT_TRUE(writeWalDump(path, d, &err)) << err;

    WalDump in;
    ASSERT_TRUE(readWalDump(path, in, &err)) << err;
    EXPECT_EQ(in.version, walDumpVersion);
    EXPECT_EQ(in.tmKind, d.tmKind);
    EXPECT_EQ(in.threads, d.threads);
    EXPECT_EQ(in.seed, d.seed);
    EXPECT_EQ(in.crashTick, d.crashTick);
    EXPECT_EQ(in.workload, d.workload);
    EXPECT_EQ(in.options, d.options);
    ASSERT_EQ(in.checkpoint.size(), 2u);
    EXPECT_EQ(in.checkpoint[0].vbase, 0x10000u);
    EXPECT_EQ(in.checkpoint[0].words, d.checkpoint[0].words);
    EXPECT_EQ(in.logBytesTotal, d.logBytesTotal);
    EXPECT_EQ(in.log, log);
    std::remove(path.c_str());
}

TEST(WalDump, CorruptRegionWordFailsItsCrc)
{
    WalDump d;
    d.tmKind = std::uint32_t(TmKind::SelectPtm);
    d.threads = 1;
    d.workload = "kv";
    d.checkpoint.push_back({0x10000, {0xDEADBEEF, 0x12345678}});

    std::string path = testing::TempDir() + "/test_persist_crc.wal";
    std::string err;
    ASSERT_TRUE(writeWalDump(path, d, &err)) << err;

    // Flip one checkpoint word byte on disk; the region CRC is the
    // only witness, and readWalDump must refuse the dump.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    // magic(8) + version/kind/threads(12) + seed/crash/end(24) +
    // workload(4+2) + nopts(4) + nregions(4) + vbase(8) + nwords(4)
    // lands on the first word's first byte.
    ASSERT_EQ(std::fseek(f, 8 + 12 + 24 + 6 + 4 + 4 + 8 + 4,
                         SEEK_SET),
              0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);

    WalDump in;
    EXPECT_FALSE(readWalDump(path, in, &err));
    EXPECT_NE(err.find("crc"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(WalDump, TruncatedLogTailIsRefused)
{
    WalDump d;
    d.tmKind = std::uint32_t(TmKind::SelectPtm);
    d.threads = 1;
    d.workload = "kv";
    d.log = sampleLog();
    d.logBytesTotal = d.log.size();

    std::string path = testing::TempDir() + "/test_persist_trunc.wal";
    std::string err;
    ASSERT_TRUE(writeWalDump(path, d, &err)) << err;

    // Drop the file's last byte: the header still promises the full
    // durable length, so the dump itself is damaged — hard refusal.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    long n = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), n - 1), 0);

    WalDump in;
    EXPECT_FALSE(readWalDump(path, in, &err));
    std::remove(path.c_str());
}

} // namespace
} // namespace ptm
