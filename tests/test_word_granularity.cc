/**
 * @file
 * Figure 5 machinery tests: word-granularity conflict detection in the
 * caches and in the PTM structures, multi-writer block evictions, the
 * word-level abort restore, and the stale-fill regression (a fill must
 * stall on blocks with pending commit cleanup even when the accessed
 * word does not overlap).
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sim_test_util.hh"

namespace ptm
{
namespace
{

using namespace ptm::test;

constexpr Addr kBlock = 0x100000; // one shared block

/** Each thread hammers its own word of the same cache block. */
RunStats
disjointWordRun(Granularity g)
{
    SystemParams prm = quietParams(TmKind::SelectPtm);
    prm.granularity = g;
    System sys(prm);
    ProcId p = sys.createProcess();
    constexpr unsigned kIters = 40;
    for (unsigned t = 0; t < 4; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < kIters; ++i) {
            steps.push_back(tx([t](MemCtx m) -> TxCoro {
                Addr addr = kBlock + 4 * t;
                std::uint64_t v = co_await m.load(addr);
                co_await m.compute(12);
                co_await m.store(addr, std::uint32_t(v + 1));
            }));
        }
        sys.addThread(p, std::move(steps));
    }
    sys.run();
    RunStats s = sys.stats();
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_EQ(sys.readWord32(p, kBlock + 4 * t), kIters)
            << "thread " << t;
    return s;
}

TEST(WordGranularity, BlockModeFalselyConflicts)
{
    RunStats s = disjointWordRun(Granularity::Block);
    EXPECT_GT(s.aborts, 0u)
        << "disjoint words of one block must conflict at block "
           "granularity";
}

TEST(WordGranularity, WordModeEliminatesFalseConflicts)
{
    RunStats s = disjointWordRun(Granularity::WordCacheMem);
    EXPECT_EQ(s.aborts, 0u);
    EXPECT_EQ(s.abortsMultiWriter, 0u);
}

TEST(WordGranularity, WordCacheModeAlsoAvoidsAccessConflicts)
{
    RunStats s = disjointWordRun(Granularity::WordCache);
    EXPECT_EQ(s.aborts, 0u) << "no evictions here, so wd:cache "
                               "behaves like wd:cache+mem";
}

/** Force mid-transaction evictions of multi-writer blocks. */
RunStats
multiWriterEvictionRun(Granularity g)
{
    SystemParams prm = tinyCacheParams(TmKind::SelectPtm);
    prm.granularity = g;
    prm.l2Bytes = 4096;
    System sys(prm);
    ProcId p = sys.createProcess();
    constexpr unsigned kBlocks = 200; // >> 64-line L2
    for (unsigned t = 0; t < 4; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < 3; ++i) {
            steps.push_back(tx([t](MemCtx m) -> TxCoro {
                for (unsigned b = 0; b < kBlocks; ++b)
                    co_await m.store(kBlock + Addr(b) * blockBytes +
                                         4 * t,
                                     b * 16 + t);
            }));
        }
        sys.addThread(p, std::move(steps));
    }
    sys.run();
    RunStats s = sys.stats();
    for (unsigned t = 0; t < 4; ++t)
        for (unsigned b = 0; b < kBlocks; ++b)
            EXPECT_EQ(sys.readWord32(p, kBlock + Addr(b) * blockBytes +
                                            4 * t),
                      b * 16 + t);
    return s;
}

TEST(WordGranularity, WdCacheAbortsOnMultiWriterEviction)
{
    // "Evicting a block with multiple writers would cause an abort,
    // since the overflowed PTM structures only kept track of one
    // writer per block" (section 6.3).
    RunStats s = multiWriterEvictionRun(Granularity::WordCache);
    EXPECT_GT(s.abortsMultiWriter, 0u);
}

TEST(WordGranularity, WdCacheMemSurvivesMultiWriterEviction)
{
    RunStats s = multiWriterEvictionRun(Granularity::WordCacheMem);
    EXPECT_EQ(s.abortsMultiWriter, 0u)
        << "per-word vectors track every writer";
}

TEST(WordGranularity, AbortRestoresOnlyTheAbortedWords)
{
    // Two transactions write disjoint words of the same block; a
    // non-transactional write kills one of them. Only the victim's
    // word may revert.
    SystemParams prm = quietParams(TmKind::SelectPtm);
    prm.granularity = Granularity::WordCacheMem;
    System sys(prm);
    ProcId p = sys.createProcess();

    auto attempts = std::make_shared<unsigned>(0);
    // Thread 0: word 0, lingers on its first attempt.
    sys.addThread(p, {tx([attempts](MemCtx m) -> TxCoro {
                      unsigned a = ++*attempts;
                      co_await m.store(kBlock, 100 + a);
                      if (a == 1)
                          for (int i = 0; i < 80; ++i)
                              co_await m.compute(200);
                  })});
    // Thread 1: word 1, commits quickly.
    sys.addThread(p, {tx([](MemCtx m) -> TxCoro {
                      co_await m.store(kBlock + 4, 500);
                  })});
    // Thread 2: non-transactional conflicting write on word 0, mid
    // thread-0 transaction.
    sys.addThread(p, {plain([](MemCtx m) -> TxCoro {
                      co_await m.compute(4000);
                      co_await m.store(kBlock, 9);
                  })});
    sys.run();
    EXPECT_GE(*attempts, 2u) << "thread 0 must have been aborted";
    EXPECT_EQ(sys.readWord32(p, kBlock), 102u)
        << "restarted transaction wrote last";
    EXPECT_EQ(sys.readWord32(p, kBlock + 4), 500u)
        << "the other transaction's word must survive the abort";
}

TEST(WordGranularity, StaleFillRegression)
{
    // Regression for the bug where a fill composed a block containing
    // stale committed words of a still-cleaning transaction: tx1
    // overflows word 3 of many blocks, and immediately afterwards tx2
    // writes word 7 of the same blocks (disjoint: no conflict). The
    // fills must wait for tx1's lazy commit walk, or tx2's write-backs
    // clobber tx1's updates.
    SystemParams prm = tinyCacheParams(TmKind::SelectPtm);
    prm.granularity = Granularity::WordCacheMem;
    System sys(prm);
    ProcId p = sys.createProcess();
    constexpr unsigned kBlocks = 100;

    std::vector<Step> steps;
    steps.push_back(plain([](MemCtx m) -> TxCoro {
        for (unsigned b = 0; b < kBlocks; ++b)
            for (unsigned w = 0; w < wordsPerBlock; ++w)
                co_await m.store(kBlock + Addr(b) * blockBytes + 4 * w,
                                 1000 + b * 16 + w);
    }));
    steps.push_back(tx([](MemCtx m) -> TxCoro {
        for (unsigned b = 0; b < kBlocks; ++b)
            co_await m.store(kBlock + Addr(b) * blockBytes + 12,
                             5000 + b);
    }));
    steps.push_back(tx([](MemCtx m) -> TxCoro {
        for (unsigned b = 0; b < kBlocks; ++b)
            co_await m.store(kBlock + Addr(b) * blockBytes + 28,
                             7000 + b);
    }));
    sys.addThread(p, std::move(steps));
    sys.run();

    for (unsigned b = 0; b < kBlocks; ++b) {
        ASSERT_EQ(sys.readWord32(p, kBlock + Addr(b) * blockBytes + 12),
                  5000 + b)
            << "block " << b;
        ASSERT_EQ(sys.readWord32(p, kBlock + Addr(b) * blockBytes + 28),
                  7000 + b)
            << "block " << b;
    }
}

TEST(WordGranularity, RadixGainsFromWordGranularity)
{
    // The Figure 5 headline at test scale: radix improves with word
    // granularity because its scattered permutation writes share
    // blocks but not words.
    SystemParams blk = quietParams(TmKind::SelectPtm);
    ExperimentResult rb = runWorkload("radix", blk, 0, 4);
    SystemParams wd = quietParams(TmKind::SelectPtm);
    wd.granularity = Granularity::WordCacheMem;
    ExperimentResult rw = runWorkload("radix", wd, 0, 4);
    EXPECT_TRUE(rb.verified);
    EXPECT_TRUE(rw.verified);
    EXPECT_GT(rb.stats.aborts, rw.stats.aborts);
    EXPECT_LT(rw.cycles, rb.cycles);
}

} // namespace
} // namespace ptm
