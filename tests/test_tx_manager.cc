/**
 * @file
 * Unit tests for the transaction manager: T-State transitions,
 * flattened nesting, oldest-wins arbitration, non-transactional
 * priority, ordered-commit sequencing, abort-restart identity, and
 * hook invocation order.
 */

#include <gtest/gtest.h>

#include <vector>

#include "tx/tx_manager.hh"

namespace ptm
{
namespace
{

TEST(TxManager, BeginCommitLifecycle)
{
    TxManager m;
    TxId t = m.begin(/*thread=*/0, /*proc=*/0, /*now=*/10);
    EXPECT_NE(t, invalidTxId);
    EXPECT_TRUE(m.isLive(t));
    EXPECT_EQ(m.liveCount(), 1u);
    EXPECT_EQ(m.requestCommit(t), CommitResult::Done);
    // No backend hook: cleanup completes synchronously.
    EXPECT_EQ(m.stateOf(t), TxState::Committed);
    EXPECT_EQ(m.commits.value(), 1u);
    EXPECT_EQ(m.liveCount(), 0u);
}

TEST(TxManager, NestingFlattens)
{
    TxManager m;
    TxId outer = m.begin(0, 0, 0);
    TxId inner = m.begin(0, 0, 5);
    EXPECT_EQ(inner, outer);
    EXPECT_EQ(m.nestedBegins.value(), 1u);
    // Inner end only decrements the depth.
    EXPECT_EQ(m.requestCommit(outer), CommitResult::Done);
    EXPECT_EQ(m.stateOf(outer), TxState::Running);
    // Outer end commits for real.
    EXPECT_EQ(m.requestCommit(outer), CommitResult::Done);
    EXPECT_EQ(m.stateOf(outer), TxState::Committed);
}

TEST(TxManager, AbortAndRestartKeepIdentity)
{
    TxManager m;
    TxId t = m.begin(3, 0, 0);
    std::uint64_t age = m.get(t)->age;
    m.abort(t, AbortReason::ConflictLost);
    EXPECT_EQ(m.stateOf(t), TxState::Aborted);
    EXPECT_EQ(m.aborts.value(), 1u);
    m.restart(t, 100);
    EXPECT_TRUE(m.isLive(t));
    EXPECT_EQ(m.get(t)->age, age) << "restart keeps the original age";
    EXPECT_EQ(m.get(t)->attempts, 2u);
}

TEST(TxManager, AbortIsIdempotentWhileCleaning)
{
    TxManager m;
    TxId t = m.begin(0, 0, 0);
    m.abort(t, AbortReason::ConflictLost);
    m.abort(t, AbortReason::ConflictLost); // no effect
    EXPECT_EQ(m.aborts.value(), 1u);
}

TEST(TxManager, OldestWinsArbitration)
{
    TxManager m;
    TxId older = m.begin(0, 0, 0);
    TxId younger = m.begin(1, 0, 5);

    // Younger requester loses against the older transaction.
    EXPECT_FALSE(m.resolveConflicts(younger, {older}));
    EXPECT_EQ(m.stateOf(younger), TxState::Aborted);
    EXPECT_TRUE(m.isLive(older));

    m.restart(younger, 50);
    // Older requester wins; younger aborts.
    EXPECT_TRUE(m.resolveConflicts(older, {younger}));
    EXPECT_EQ(m.stateOf(younger), TxState::Aborted);
}

TEST(TxManager, NonTransactionalAlwaysWins)
{
    TxManager m;
    TxId t1 = m.begin(0, 0, 0);
    TxId t2 = m.begin(1, 0, 1);
    EXPECT_TRUE(m.resolveConflicts(invalidTxId, {t1, t2}));
    EXPECT_EQ(m.stateOf(t1), TxState::Aborted);
    EXPECT_EQ(m.stateOf(t2), TxState::Aborted);
    EXPECT_EQ(m.abortsNonTx.value(), 2u);
}

TEST(TxManager, OrderedCommitSequencing)
{
    TxManager m;
    std::vector<TxId> woken;
    m.wakeOrderedCommit = [&](TxId tx, ThreadId) {
        woken.push_back(tx);
    };
    std::uint32_t scope = m.createOrderedScope();
    TxId t0 = m.begin(0, 0, 0, true, scope, 0);
    TxId t1 = m.begin(1, 0, 1, true, scope, 1);
    TxId t2 = m.begin(2, 0, 2, true, scope, 2);

    // Out-of-order commit requests wait for the token.
    EXPECT_EQ(m.requestCommit(t2), CommitResult::WaitOrdered);
    EXPECT_EQ(m.requestCommit(t1), CommitResult::WaitOrdered);
    EXPECT_EQ(m.orderedWaits.value(), 2u);

    // Rank 0 commits and hands the token to rank 1.
    EXPECT_EQ(m.requestCommit(t0), CommitResult::Done);
    ASSERT_EQ(woken.size(), 1u);
    EXPECT_EQ(woken[0], t1);

    // The woken transaction retries and passes the token onward.
    EXPECT_EQ(m.requestCommit(t1), CommitResult::Done);
    ASSERT_EQ(woken.size(), 2u);
    EXPECT_EQ(woken[1], t2);
    EXPECT_EQ(m.requestCommit(t2), CommitResult::Done);
}

TEST(TxManager, OrderedAgeFollowsRankNotBeginOrder)
{
    TxManager m;
    std::uint32_t scope = m.createOrderedScope();
    // Rank 1 begins before rank 0 (threads race), yet rank 0 must be
    // the "older" transaction for arbitration.
    TxId r1 = m.begin(0, 0, 0, true, scope, 1);
    TxId r0 = m.begin(1, 0, 5, true, scope, 0);
    EXPECT_LT(m.get(r0)->age, m.get(r1)->age);
}

TEST(TxManager, AbortedOrderedWaiterLeavesQueue)
{
    TxManager m;
    std::vector<TxId> woken;
    m.wakeOrderedCommit = [&](TxId tx, ThreadId) {
        woken.push_back(tx);
    };
    std::uint32_t scope = m.createOrderedScope();
    TxId t0 = m.begin(0, 0, 0, true, scope, 0);
    TxId t1 = m.begin(1, 0, 1, true, scope, 1);
    EXPECT_EQ(m.requestCommit(t1), CommitResult::WaitOrdered);
    m.abort(t1, AbortReason::ConflictLost);
    // t0's commit must not wake the aborted waiter.
    EXPECT_EQ(m.requestCommit(t0), CommitResult::Done);
    EXPECT_TRUE(woken.empty());
}

TEST(TxManager, HookOrderOnAbort)
{
    TxManager m;
    std::vector<std::string> order;
    m.onLogicalAbort = [&](TxId) { order.push_back("invalidate"); };
    m.notifyAborted = [&](TxId, ThreadId, AbortReason) {
        order.push_back("notify");
    };
    m.backendAbort = [&](TxId tx) {
        order.push_back("backend");
        m.cleanupDone(tx);
    };
    m.notifyAbortComplete = [&](TxId, ThreadId) {
        order.push_back("complete");
    };
    TxId t = m.begin(0, 0, 0);
    m.abort(t, AbortReason::Explicit);
    ASSERT_EQ(order.size(), 4u);
    // Caches are scrubbed before the thread learns about the abort,
    // and cleanup completion arrives last.
    EXPECT_EQ(order[0], "invalidate");
    EXPECT_EQ(order[1], "notify");
    EXPECT_EQ(order[2], "backend");
    EXPECT_EQ(order[3], "complete");
}

TEST(TxManager, CommittingTransactionCannotBeAborted)
{
    TxManager m;
    bool cleanup_pending = true;
    m.backendCommit = [&](TxId) { /* cleanup stays pending */ };
    TxId t = m.begin(0, 0, 0);
    EXPECT_EQ(m.requestCommit(t), CommitResult::Done);
    EXPECT_EQ(m.stateOf(t), TxState::Committing);
    m.abort(t, AbortReason::ConflictLost); // must be a no-op
    EXPECT_EQ(m.stateOf(t), TxState::Committing);
    EXPECT_EQ(m.aborts.value(), 0u);
    (void)cleanup_pending;
    m.cleanupDone(t);
    EXPECT_EQ(m.stateOf(t), TxState::Committed);
}

} // namespace
} // namespace ptm
