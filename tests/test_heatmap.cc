/**
 * @file
 * Unit tests for the contention heatmap: the space-saving top-K
 * summary's exactness, sum preservation, deterministic eviction and
 * error bounds, plus the TxManager integration invariant that
 * per-page abort attributions reconcile exactly with the per-cause
 * abort counters.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ptm/heatmap.hh"
#include "tx/tx_manager.hh"

namespace ptm
{
namespace
{

std::uint64_t
sumCounts(const std::vector<SpaceSavingTopK::Entry> &entries)
{
    std::uint64_t sum = 0;
    for (const auto &e : entries)
        sum += e.count;
    return sum;
}

TEST(SpaceSavingTopK, ExactBelowCapacity)
{
    SpaceSavingTopK s(8);
    s.record(10, 3);
    s.record(20, 5);
    s.record(10);
    auto top = s.top();
    ASSERT_EQ(top.size(), 2u);
    // Sorted by descending count.
    EXPECT_EQ(top[0].key, 20u);
    EXPECT_EQ(top[0].count, 5u);
    EXPECT_EQ(top[1].key, 10u);
    EXPECT_EQ(top[1].count, 4u);
    // Below capacity every count is exact.
    EXPECT_EQ(top[0].error, 0u);
    EXPECT_EQ(top[1].error, 0u);
    EXPECT_EQ(s.total(), 9u);
}

TEST(SpaceSavingTopK, SumPreservedOverCapacity)
{
    SpaceSavingTopK s(4);
    // 16 distinct keys with skewed frequencies: far over capacity.
    for (std::uint64_t k = 0; k < 16; ++k)
        s.record(k, 16 - k);
    std::uint64_t expected = 0;
    for (std::uint64_t k = 0; k < 16; ++k)
        expected += 16 - k;
    EXPECT_EQ(s.total(), expected);
    EXPECT_EQ(s.size(), 4u);
    // Every record() landed in exactly one stored entry, so the
    // stored counts still sum to the exact total.
    EXPECT_EQ(sumCounts(s.top()), expected);
}

TEST(SpaceSavingTopK, DeterministicEviction)
{
    SpaceSavingTopK s(2);
    s.record(5, 10);
    s.record(7, 10);
    // Full. The victim is the min count; the 5/7 tie breaks on the
    // smallest key, so key 5 is replaced and key 9 inherits its count.
    s.record(9);
    auto top = s.top();
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].key, 9u);
    EXPECT_EQ(top[0].count, 11u);
    EXPECT_EQ(top[0].error, 10u) << "replacement inherits the victim "
                                    "count as its error bound";
    EXPECT_EQ(top[1].key, 7u);
    EXPECT_EQ(top[1].count, 10u);
    EXPECT_EQ(top[1].error, 0u);
}

TEST(SpaceSavingTopK, ErrorBoundedByTotalOverCapacity)
{
    const unsigned cap = 8;
    SpaceSavingTopK s(cap);
    // A heavy hitter plus a uniform tail of distinct keys.
    for (int i = 0; i < 100; ++i)
        s.record(1);
    for (std::uint64_t k = 1000; k < 1200; ++k)
        s.record(k);
    for (const auto &e : s.top()) {
        EXPECT_LE(e.error, e.count);
        EXPECT_LE(e.error, s.total() / cap)
            << "key " << e.key << " violates the space-saving bound";
    }
    // The heavy hitter cannot be evicted and stays exact-ish: its
    // count must at least cover its true frequency.
    auto top = s.top();
    EXPECT_EQ(top[0].key, 1u);
    EXPECT_GE(top[0].count, 100u);
    EXPECT_LE(top[0].count - top[0].error, 100u);
}

TEST(SpaceSavingTopK, TopSortTieBreaksOnKey)
{
    SpaceSavingTopK s(8);
    s.record(30, 2);
    s.record(10, 2);
    s.record(20, 2);
    auto top = s.top();
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].key, 10u);
    EXPECT_EQ(top[1].key, 20u);
    EXPECT_EQ(top[2].key, 30u);
}

TEST(ContentionHeatmap, ConflictKeysPageAndBlock)
{
    ContentionHeatmap h(16);
    // Two addresses in the same page, different 64-byte blocks.
    h.recordConflict(0x1000);
    h.recordConflict(0x1040);
    h.recordConflict(0x1044); // same block as 0x1040
    auto snap = h.snapshot();
    EXPECT_TRUE(snap.enabled);
    EXPECT_EQ(snap.conflictsTotal, 3u);
    ASSERT_EQ(snap.conflictPages.size(), 1u);
    EXPECT_EQ(snap.conflictPages[0].key, 0x1000u >> 12);
    EXPECT_EQ(snap.conflictPages[0].count, 3u);
    ASSERT_EQ(snap.conflictBlocks.size(), 2u);
    EXPECT_EQ(sumCounts(snap.conflictBlocks), 3u);
}

TEST(ContentionHeatmap, UnattributedEventsUseSentinel)
{
    ContentionHeatmap h(16);
    h.recordConflict(invalidAddr);
    h.recordAbort(unsigned(AbortReason::Explicit), invalidAddr);
    auto snap = h.snapshot();
    ASSERT_EQ(snap.conflictPages.size(), 1u);
    EXPECT_EQ(snap.conflictPages[0].key, invalidPage);
    unsigned cause = unsigned(AbortReason::Explicit);
    EXPECT_EQ(snap.abortsTotal[cause], 1u);
    ASSERT_EQ(snap.abortPages[cause].size(), 1u);
    EXPECT_EQ(snap.abortPages[cause][0].key, invalidPage);
}

TEST(ContentionHeatmap, HotPagesJsonShape)
{
    ContentionHeatmap h(16);
    h.recordConflict(0x3000);
    h.recordConflict(0x3000);
    h.recordConflict(invalidAddr);
    EXPECT_EQ(h.hotPagesJson(8),
              "[{\"page\":3,\"count\":2,\"err\":0},"
              "{\"page\":-1,\"count\":1,\"err\":0}]");
    // The bound caps the listing.
    EXPECT_EQ(h.hotPagesJson(1),
              "[{\"page\":3,\"count\":2,\"err\":0}]");
}

TEST(ContentionHeatmap, AbortAttributionMatchesTxCounters)
{
    // The integration invariant behind the hot_pages JSON: drive a
    // bare TxManager with the heatmap attached and check that the
    // per-page attribution sums reconcile exactly with the per-cause
    // abort counters.
    TxManager m;
    ContentionHeatmap h(16);
    m.setHeatmap(&h);

    // Three conflict-lost aborts on two pages.
    for (Addr a : {Addr(0x1000), Addr(0x1010), Addr(0x2000)}) {
        TxId t = m.begin(0, 0, 0);
        m.abort(t, AbortReason::ConflictLost, a);
        m.restart(t, 1);
        m.abort(t, AbortReason::Explicit); // default: unattributed
        EXPECT_EQ(m.stateOf(t), TxState::Aborted);
    }
    // A double abort must not double-count (abort is idempotent).
    TxId t = m.begin(1, 0, 0);
    m.abort(t, AbortReason::ConflictLost, 0x1000);
    m.abort(t, AbortReason::ConflictLost, 0x1000);

    auto snap = h.snapshot();
    unsigned conflict = unsigned(AbortReason::ConflictLost);
    unsigned expl = unsigned(AbortReason::Explicit);
    EXPECT_EQ(snap.abortsTotal[conflict], m.abortsConflict.value());
    EXPECT_EQ(snap.abortsTotal[expl], m.abortsExplicit.value());
    EXPECT_EQ(sumCounts(snap.abortPages[conflict]),
              snap.abortsTotal[conflict]);
    EXPECT_EQ(sumCounts(snap.abortPages[expl]), snap.abortsTotal[expl]);
    std::uint64_t all = 0;
    for (unsigned c = 0; c < heatAbortCauses; ++c)
        all += snap.abortsTotal[c];
    EXPECT_EQ(all, m.aborts.value());
    // Page 1 took two conflict aborts (0x1000 and 0x1010), page 2 one.
    ASSERT_EQ(snap.abortPages[conflict].size(), 2u);
    EXPECT_EQ(snap.abortPages[conflict][0].key, 1u);
    EXPECT_EQ(snap.abortPages[conflict][0].count, 3u);
    EXPECT_EQ(snap.abortPages[conflict][1].key, 2u);
    EXPECT_EQ(snap.abortPages[conflict][1].count, 1u);
}

TEST(ContentionHeatmap, ResolveConflictsRecordsEdges)
{
    TxManager m;
    ContentionHeatmap h(16);
    m.setHeatmap(&h);
    TxId older = m.begin(0, 0, 0);
    TxId younger = m.begin(1, 0, 5);
    // Older requester wins the block at 0x5040: one conflict edge and
    // one conflict-lost abort, both attributed to that address.
    EXPECT_TRUE(m.resolveConflicts(older, {younger}, 0x5040));
    auto snap = h.snapshot();
    EXPECT_EQ(snap.conflictsTotal, 1u);
    ASSERT_EQ(snap.conflictPages.size(), 1u);
    EXPECT_EQ(snap.conflictPages[0].key, 5u);
    ASSERT_EQ(snap.conflictBlocks.size(), 1u);
    EXPECT_EQ(snap.conflictBlocks[0].key, 0x5040u);
    unsigned conflict = unsigned(AbortReason::ConflictLost);
    ASSERT_EQ(snap.abortPages[conflict].size(), 1u);
    EXPECT_EQ(snap.abortPages[conflict][0].key, 5u);
}

TEST(ContentionHeatmap, CauseNamesAreStable)
{
    EXPECT_STREQ(heatAbortCauseName(0), "conflict");
    EXPECT_STREQ(heatAbortCauseName(1), "nontx");
    EXPECT_STREQ(heatAbortCauseName(2), "multiwriter");
    EXPECT_STREQ(heatAbortCauseName(3), "explicit");
}

} // namespace
} // namespace ptm
