/**
 * @file
 * Unit tests of the PTM structures driven directly against the VTS:
 * page-granularity mapping, the metadata caches, shadow-page
 * allocation and data placement for both versioning policies,
 * selection-vector toggling at commit, Copy-PTM abort restores,
 * conflict checks and stalls, exclusive-grant refusal, paging through
 * the Swap Index Table, and the shadow freeing policies.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <unordered_set>

#include "mem/frame_alloc.hh"
#include "mem/phys_mem.hh"
#include "mem/timing.hh"
#include "ptm/granularity.hh"
#include "ptm/vts.hh"
#include "sim/event_queue.hh"
#include "tx/tx_manager.hh"

namespace ptm
{
namespace
{

TEST(PageGran, BlockModeMapsBlocks)
{
    PageGran g(false);
    EXPECT_EQ(g.bitsPerPage(), 64u);
    std::vector<unsigned> bits;
    g.forBits(pageBase(5) + 3 * blockBytes, 0x0011,
              [&](unsigned b) { bits.push_back(b); });
    EXPECT_EQ(bits, (std::vector<unsigned>{3}));
    EXPECT_EQ(g.wordBit(pageBase(5) + 3 * blockBytes + 8), 3u);
    EXPECT_EQ(g.unitBytes(), blockBytes);
}

TEST(PageGran, WordModeMapsWords)
{
    PageGran g(true);
    EXPECT_EQ(g.bitsPerPage(), 1024u);
    std::vector<unsigned> bits;
    g.forBits(pageBase(5) + 3 * blockBytes, 0x0011,
              [&](unsigned b) { bits.push_back(b); });
    EXPECT_EQ(bits, (std::vector<unsigned>{48, 52}));
    EXPECT_EQ(g.wordBit(pageBase(5) + 3 * blockBytes + 8), 50u);
    EXPECT_EQ(g.unitBytes(), wordBytes);
}

TEST(VtsMetaCache, HitMissDirtyEviction)
{
    VtsMetaCache c(2);
    bool evd = false;
    EXPECT_FALSE(c.access(1, true, evd));
    EXPECT_FALSE(c.access(2, false, evd));
    EXPECT_TRUE(c.access(1, false, evd));
    // Inserting key 3 evicts LRU key 2 (clean).
    EXPECT_FALSE(c.access(3, false, evd));
    EXPECT_FALSE(evd);
    // Inserting key 4 evicts key 1, which is dirty.
    EXPECT_FALSE(c.access(4, false, evd));
    EXPECT_TRUE(evd);
    EXPECT_EQ(c.dirtyEvictions.value(), 1u);
}

// Regression for the old (home << 22) ^ tx TAV-cache key: it aliased
// distinct (page, tx) pairs once tx ids crossed 22 bits — e.g.
// (home=1, tx=0) and (home=0, tx=1<<22) collided — silently merging
// unrelated cache entries. The mixed key must keep every pair of a
// realistic id grid distinct.
TEST(Vts, TavKeyNoCollisions)
{
    // Pairs the old fold mapped to the same key.
    EXPECT_EQ((PageNum(1) << 22) ^ TxId(0),
              (PageNum(0) << 22) ^ (TxId(1) << 22));
    EXPECT_NE(Vts::tavKey(1, 0), Vts::tavKey(0, TxId(1) << 22));
    EXPECT_NE(Vts::tavKey(3, 5), Vts::tavKey(5, 3));

    std::unordered_set<std::uint64_t> keys;
    std::vector<PageNum> homes;
    std::vector<TxId> txs;
    // Dense low ranges plus sparse high ids (beyond 22 bits).
    for (std::uint64_t i = 0; i < 64; ++i) {
        homes.push_back(i);
        txs.push_back(i);
    }
    for (std::uint64_t i = 1; i <= 64; ++i) {
        homes.push_back(i * 0x3fffffull);  // spread across 22+ bits
        txs.push_back(i << 22);            // old-key alias candidates
        txs.push_back((i << 22) + 1);
    }
    for (PageNum h : homes)
        for (TxId t : txs)
            keys.insert(Vts::tavKey(h, t));
    EXPECT_EQ(keys.size(), homes.size() * txs.size());
}

/** Fixture wiring a VTS to its dependencies. */
class VtsTest : public ::testing::Test
{
  protected:
    explicit VtsTest() {}

    void
    build(TmKind kind,
          Granularity gran = Granularity::Block,
          ShadowFreePolicy pol = ShadowFreePolicy::MergeOnSwap)
    {
        params.tmKind = kind;
        params.granularity = gran;
        params.shadowFree = pol;
        frames = std::make_unique<FrameAllocator>(1024);
        dram = std::make_unique<DramModel>(200, 3, 60);
        vts = std::make_unique<Vts>(params, eq, phys, txmgr, *frames,
                                    *dram);
        txmgr.backendCommit = [this](TxId t) { vts->commitTx(t); };
        txmgr.backendAbort = [this](TxId t) { vts->abortTx(t); };
        home = frames->alloc();
    }

    /** Evict a dirty speculative block of @p tx with given data. */
    void
    evictDirty(TxId tx, unsigned blk, std::uint32_t seed,
               std::uint16_t write_words = 0xffff)
    {
        std::uint8_t data[blockBytes];
        for (unsigned w = 0; w < wordsPerBlock; ++w) {
            std::uint32_t v = seed + w;
            std::memcpy(data + w * 4, &v, 4);
        }
        vts->evictTxBlock(blockAddr(blk), tx, true, data, 0,
                          write_words);
    }

    Addr
    blockAddr(unsigned blk) const
    {
        return pageBase(home) + Addr(blk) * blockBytes;
    }

    SystemParams params;
    EventQueue eq;
    PhysMem phys;
    TxManager txmgr;
    std::unique_ptr<FrameAllocator> frames;
    std::unique_ptr<DramModel> dram;
    std::unique_ptr<Vts> vts;
    PageNum home = 0;
};

TEST_F(VtsTest, SelectEvictionAllocatesShadowAndStoresSpecData)
{
    build(TmKind::SelectPtm);
    phys.writeWord32(blockAddr(2), 111); // committed value

    TxId tx = txmgr.begin(0, 0, 0);
    evictDirty(tx, 2, 5000);

    const SptEntry *e = vts->sptEntry(home);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->hasShadow());
    EXPECT_TRUE(e->writeSummary.test(2));
    ASSERT_NE(e->findTav(tx), nullptr);
    EXPECT_TRUE(e->findTav(tx)->write.test(2));
    EXPECT_TRUE(vts->anyOverflow());

    // Committed value still reads from the home page.
    EXPECT_EQ(vts->readCommittedWord32(blockAddr(2)), 111u);
    // Speculative data went to the shadow page (selection bit clear).
    EXPECT_EQ(phys.readWord32(pageBase(e->shadow) + 2 * blockBytes),
              5000u);
}

TEST_F(VtsTest, SelectFillComposesSpecForWriterOnly)
{
    build(TmKind::SelectPtm);
    phys.writeWord32(blockAddr(1), 42);
    TxId writer = txmgr.begin(0, 0, 0);
    TxId other = txmgr.begin(1, 0, 1);
    evictDirty(writer, 1, 9000);

    std::uint8_t buf[blockBytes];
    std::uint16_t spec = 0;
    std::vector<TxMark> foreign;
    vts->fillBlock(blockAddr(1), writer, buf, spec, foreign);
    std::uint32_t v;
    std::memcpy(&v, buf, 4);
    EXPECT_EQ(v, 9000u);
    EXPECT_EQ(spec, 0xffff) << "writer's fill must be re-marked";

    // In block mode a non-writer's fill composes the committed
    // version (a real run would have resolved the whole-block
    // conflict before the fill).
    foreign.clear();
    vts->fillBlock(blockAddr(1), other, buf, spec, foreign);
    std::memcpy(&v, buf, 4);
    EXPECT_EQ(v, 42u);
    EXPECT_EQ(spec, 0u);
    EXPECT_TRUE(foreign.empty());
    (void)other;
}

TEST_F(VtsTest, WordModeFillCarriesForeignSpecMarks)
{
    // Word-granularity sharing lets a non-writer legitimately fill a
    // block containing another live transaction's overflowed words:
    // the paper's XOR rule fetches the speculative location and the
    // line must carry the writer's mark.
    build(TmKind::SelectPtm, Granularity::WordCacheMem);
    phys.writeWord32(blockAddr(1), 42);
    TxId writer = txmgr.begin(0, 0, 0);
    TxId other = txmgr.begin(1, 0, 1);
    std::uint8_t data[blockBytes] = {};
    std::uint32_t sv = 9000;
    std::memcpy(data, &sv, 4);
    vts->evictTxBlock(blockAddr(1), writer, true, data, 0, 0x0001);

    std::uint8_t buf[blockBytes];
    std::uint16_t spec = 0;
    std::vector<TxMark> foreign;
    vts->fillBlock(blockAddr(1), other, buf, spec, foreign);
    std::uint32_t v;
    std::memcpy(&v, buf, 4);
    EXPECT_EQ(v, 9000u) << "XOR rule: speculative location";
    EXPECT_EQ(spec, 0u);
    ASSERT_EQ(foreign.size(), 1u);
    EXPECT_EQ(foreign[0].tx, writer);
    EXPECT_EQ(foreign[0].writeWords, 0x0001);
}

TEST_F(VtsTest, SelectCommitTogglesSelectionNoCopies)
{
    build(TmKind::SelectPtm);
    phys.writeWord32(blockAddr(3), 7);
    TxId tx = txmgr.begin(0, 0, 0);
    evictDirty(tx, 3, 1234);

    EXPECT_EQ(txmgr.requestCommit(tx), CommitResult::Done);
    EXPECT_EQ(txmgr.stateOf(tx), TxState::Committing);
    eq.run(); // drain the supervisor walk
    EXPECT_EQ(txmgr.stateOf(tx), TxState::Committed);

    const SptEntry *e = vts->sptEntry(home);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->selection.test(3)) << "committed unit now in shadow";
    EXPECT_EQ(vts->readCommittedWord32(blockAddr(3)), 1234u);
    // The home page still holds the stale value: no copy happened.
    EXPECT_EQ(phys.readWord32(blockAddr(3)), 7u);
    EXPECT_EQ(e->tavHead, nullptr);
    EXPECT_FALSE(vts->anyOverflow());
    // Shadow stays allocated (selection non-empty, MergeOnSwap).
    EXPECT_TRUE(e->hasShadow());
}

TEST_F(VtsTest, SelectAbortIsFree)
{
    build(TmKind::SelectPtm);
    phys.writeWord32(blockAddr(4), 77);
    TxId tx = txmgr.begin(0, 0, 0);
    evictDirty(tx, 4, 5555);
    txmgr.abort(tx, AbortReason::Explicit);
    eq.run();
    EXPECT_EQ(txmgr.stateOf(tx), TxState::Aborted);
    const SptEntry *e = vts->sptEntry(home);
    EXPECT_FALSE(e->selection.test(4));
    EXPECT_EQ(vts->readCommittedWord32(blockAddr(4)), 77u);
    // Shadow page freed: no committed units live there.
    EXPECT_FALSE(e->hasShadow());
    EXPECT_EQ(vts->liveShadowPages(), 0u);
}

TEST_F(VtsTest, CopyPtmBacksUpThenRestoresOnAbort)
{
    build(TmKind::CopyPtm);
    phys.writeWord32(blockAddr(5), 321);
    TxId tx = txmgr.begin(0, 0, 0);
    evictDirty(tx, 5, 8800);

    const SptEntry *e = vts->sptEntry(home);
    ASSERT_TRUE(e->hasShadow());
    // Copy-PTM: speculative data lands in the HOME page; the old
    // committed block was copied to the shadow.
    EXPECT_EQ(phys.readWord32(blockAddr(5)), 8800u);
    EXPECT_EQ(phys.readWord32(pageBase(e->shadow) + 5 * blockBytes),
              321u);
    EXPECT_EQ(vts->copyBackups.value(), 1u);

    txmgr.abort(tx, AbortReason::Explicit);
    eq.run();
    // Abort restored the home page from the shadow.
    EXPECT_EQ(phys.readWord32(blockAddr(5)), 321u);
    EXPECT_GT(vts->abortRestoreUnits.value(), 0u);
    EXPECT_FALSE(vts->sptEntry(home)->hasShadow()) << "shadow freed";
}

TEST_F(VtsTest, CopyPtmCommitLeavesDataInPlace)
{
    build(TmKind::CopyPtm);
    phys.writeWord32(blockAddr(6), 1);
    TxId tx = txmgr.begin(0, 0, 0);
    evictDirty(tx, 6, 4242);
    EXPECT_EQ(txmgr.requestCommit(tx), CommitResult::Done);
    eq.run();
    EXPECT_EQ(phys.readWord32(blockAddr(6)), 4242u);
    EXPECT_EQ(vts->readCommittedWord32(blockAddr(6)), 4242u);
    EXPECT_FALSE(vts->sptEntry(home)->hasShadow());
}

TEST_F(VtsTest, CheckAccessConflictsAndStalls)
{
    build(TmKind::SelectPtm);
    TxId a = txmgr.begin(0, 0, 0);
    TxId b = txmgr.begin(1, 0, 1);
    evictDirty(a, 7, 100);

    // b writing the same block conflicts with a.
    CheckResult r =
        vts->checkAccess(BlockAccess{blockAddr(7), b, true, 0xffff});
    ASSERT_EQ(r.conflicts.size(), 1u);
    EXPECT_EQ(r.conflicts[0], a);
    EXPECT_FALSE(r.stall);

    // A different block of the same page: no conflict.
    r = vts->checkAccess(BlockAccess{blockAddr(9), b, true, 0xffff});
    EXPECT_TRUE(r.conflicts.empty());

    // While a is committing (cleanup pending), the access stalls.
    txmgr.requestCommit(a);
    r = vts->checkAccess(BlockAccess{blockAddr(7), b, true, 0xffff});
    EXPECT_TRUE(r.stall);
    eq.run();
    // After cleanup, no stall and no conflict.
    r = vts->checkAccess(BlockAccess{blockAddr(7), b, true, 0xffff});
    EXPECT_FALSE(r.stall);
    EXPECT_TRUE(r.conflicts.empty());
}

TEST_F(VtsTest, ReadOverflowBlocksExclusiveGrant)
{
    build(TmKind::SelectPtm);
    TxId a = txmgr.begin(0, 0, 0);
    TxId b = txmgr.begin(1, 0, 1);
    std::uint8_t data[blockBytes] = {};
    // a overflows a clean READ of block 8.
    vts->evictTxBlock(blockAddr(8), a, false, data, 0xffff, 0);

    EXPECT_FALSE(vts->mayGrantExclusive(blockAddr(8), b))
        << "section 4.4.1: no E grant on overflow-read blocks";
    EXPECT_TRUE(vts->mayGrantExclusive(blockAddr(8), a))
        << "the overflowing transaction itself may take E";
    EXPECT_TRUE(vts->mayGrantExclusive(blockAddr(10), b));
}

TEST_F(VtsTest, MergeOnSwapMigratesThroughSit)
{
    build(TmKind::SelectPtm, Granularity::Block,
          ShadowFreePolicy::MergeOnSwap);
    phys.writeWord32(blockAddr(11), 5);
    TxId tx = txmgr.begin(0, 0, 0);
    evictDirty(tx, 11, 6600);
    txmgr.requestCommit(tx);
    eq.run();
    ASSERT_TRUE(vts->sptEntry(home)->hasShadow());
    ASSERT_TRUE(vts->swappable(home));

    // Swap out: the shadow's committed block merges into the home
    // frame and the SIT records a shadow-less entry.
    vts->pageSwapOut(home, /*slot=*/99);
    EXPECT_EQ(vts->sptEntry(home), nullptr);
    EXPECT_EQ(phys.readWord32(blockAddr(11)), 6600u)
        << "committed data merged into the home frame";
    EXPECT_EQ(vts->liveShadowPages(), 0u);

    // Swap back in at a new frame: SPT entry restored, no shadow,
    // selection cleared.
    PageNum new_home = frames->alloc();
    vts->pageSwapIn(99, new_home);
    const SptEntry *e = vts->sptEntry(new_home);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->hasShadow());
    EXPECT_TRUE(e->selection.none());
}

TEST_F(VtsTest, LazyMigrateSwapsShadowWithHome)
{
    build(TmKind::SelectPtm, Granularity::Block,
          ShadowFreePolicy::LazyMigrate);
    phys.writeWord32(blockAddr(12), 5);
    TxId tx = txmgr.begin(0, 0, 0);
    evictDirty(tx, 12, 7700);
    txmgr.requestCommit(tx);
    eq.run();
    ASSERT_TRUE(vts->sptEntry(home)->hasShadow());

    // Under LazyMigrate the shadow swaps out alongside the home page
    // and returns with it.
    vts->pageSwapOut(home, 7);
    EXPECT_EQ(vts->liveShadowPages(), 0u);
    PageNum new_home = frames->alloc();
    vts->pageSwapIn(7, new_home);
    const SptEntry *e = vts->sptEntry(new_home);
    ASSERT_NE(e, nullptr);
    ASSERT_TRUE(e->hasShadow());
    EXPECT_TRUE(e->selection.test(12));
    EXPECT_EQ(phys.readWord32(pageBase(e->shadow) + 12 * blockBytes),
              7700u);
}

TEST_F(VtsTest, LazyMigrationDrainsSelectionAndFreesShadow)
{
    build(TmKind::SelectPtm, Granularity::Block,
          ShadowFreePolicy::LazyMigrate);
    TxId tx = txmgr.begin(0, 0, 0);
    evictDirty(tx, 13, 3100);
    txmgr.requestCommit(tx);
    eq.run();
    ASSERT_TRUE(vts->sptEntry(home)->selection.test(13));

    // A non-speculative writeback of the block is forced to the home
    // page, toggling the selection bit and freeing the shadow.
    std::uint8_t data[blockBytes];
    for (unsigned w = 0; w < wordsPerBlock; ++w) {
        std::uint32_t v = 4000 + w;
        std::memcpy(data + w * 4, &v, 4);
    }
    vts->writebackBlock(blockAddr(13), data, 0xffff);
    const SptEntry *e = vts->sptEntry(home);
    EXPECT_FALSE(e->selection.test(13));
    EXPECT_EQ(phys.readWord32(blockAddr(13)), 4000u);
    EXPECT_FALSE(e->hasShadow());
    EXPECT_GT(vts->lazyMigrations.value(), 0u);
}

TEST_F(VtsTest, WordGranularityVectorsPerWord)
{
    build(TmKind::SelectPtm, Granularity::WordCacheMem);
    phys.writeWord32(blockAddr(1) + 0, 10);
    phys.writeWord32(blockAddr(1) + 4, 11);
    TxId tx = txmgr.begin(0, 0, 0);
    // Speculatively write only word 1 of block 1.
    std::uint8_t data[blockBytes] = {};
    std::uint32_t v = 999;
    std::memcpy(data + 4, &v, 4);
    vts->evictTxBlock(blockAddr(1), tx, true, data, 0, 0x0002);

    const SptEntry *e = vts->sptEntry(home);
    EXPECT_TRUE(e->writeSummary.test(16 + 1));
    EXPECT_FALSE(e->writeSummary.test(16 + 0));

    txmgr.requestCommit(tx);
    eq.run();
    // Word 1 committed in shadow; word 0 untouched in home.
    EXPECT_EQ(vts->readCommittedWord32(blockAddr(1) + 4), 999u);
    EXPECT_EQ(vts->readCommittedWord32(blockAddr(1) + 0), 10u);
}

} // namespace
} // namespace ptm
