/**
 * @file
 * Unit tests for the remaining substrate pieces: functional physical
 * memory, the frame allocator, coroutine plumbing edge cases, report
 * formatting, and a parameterized cache-geometry correctness sweep.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "mem/frame_alloc.hh"
#include "mem/phys_mem.hh"
#include "sim_test_util.hh"

namespace ptm
{
namespace
{

using namespace ptm::test;

TEST(PhysMem, SparseZeroFill)
{
    PhysMem m;
    EXPECT_EQ(m.readWord32(0x123450), 0u);
    EXPECT_EQ(m.backedFrames(), 0u);
    m.writeWord32(0x123450, 42);
    EXPECT_EQ(m.readWord32(0x123450), 42u);
    EXPECT_EQ(m.backedFrames(), 1u);
}

TEST(PhysMem, BlockCopyRoundTrip)
{
    PhysMem m;
    std::uint8_t buf[blockBytes];
    for (unsigned i = 0; i < blockBytes; ++i)
        buf[i] = std::uint8_t(i * 3);
    m.writeBlock(0x40, buf);
    std::uint8_t out[blockBytes] = {};
    m.readBlock(0x40, out);
    EXPECT_EQ(std::memcmp(buf, out, blockBytes), 0);
    m.copyBlock(0x2000, 0x40);
    m.readBlock(0x2000, out);
    EXPECT_EQ(std::memcmp(buf, out, blockBytes), 0);
}

TEST(PhysMem, CopyPageAndRelease)
{
    PhysMem m;
    m.writeWord32(pageBase(3) + 8, 7);
    m.copyPage(9, 3);
    EXPECT_EQ(m.readWord32(pageBase(9) + 8), 7u);
    m.releaseFrame(9);
    EXPECT_EQ(m.readWord32(pageBase(9) + 8), 0u);
}

TEST(FrameAllocator, AllocFreeReuse)
{
    FrameAllocator fa(8);
    PageNum a = fa.alloc();
    PageNum b = fa.alloc();
    EXPECT_NE(a, b);
    EXPECT_EQ(fa.inUse(), 2u);
    fa.free(a);
    EXPECT_EQ(fa.inUse(), 1u);
    EXPECT_EQ(fa.alloc(), a) << "freed frames are recycled";
}

TEST(FrameAllocator, NeverHandsOutFrameZero)
{
    FrameAllocator fa(4);
    for (int i = 0; i < 3; ++i)
        EXPECT_NE(fa.alloc(), 0u);
}

TxCoro
emptyBody(MemCtx)
{
    co_return;
}

TEST(Coro, EmptyBodyFinishesOnFirstResume)
{
    TxCoro c = emptyBody(MemCtx{});
    EXPECT_TRUE(c.runnable());
    EXPECT_EQ(c.resume(0), nullptr);
    EXPECT_TRUE(c.done());
}

TEST(Coro, DestroyMidExecutionIsSafe)
{
    auto body = [](MemCtx m) -> TxCoro {
        for (int i = 0; i < 100; ++i)
            co_await m.load(0x1000 + 4 * i);
    };
    TxCoro c = body(MemCtx{});
    const MemYield *op = c.resume(0);
    ASSERT_NE(op, nullptr);
    EXPECT_EQ(op->kind, OpKind::Load);
    c.destroy(); // abort mid-transaction: frame must free cleanly
    EXPECT_TRUE(c.done());
}

TEST(Coro, ValuesFlowThroughAwaits)
{
    auto body = [](MemCtx m) -> TxCoro {
        std::uint64_t a = co_await m.load(0x10);
        std::uint64_t b = co_await m.load(0x14);
        co_await m.store(0x18, std::uint32_t(a + b));
    };
    TxCoro c = body(MemCtx{});
    const MemYield *op = c.resume(0);
    ASSERT_EQ(op->vaddr, 0x10u);
    op = c.resume(30);
    ASSERT_EQ(op->vaddr, 0x14u);
    op = c.resume(12);
    ASSERT_EQ(op->kind, OpKind::Store);
    EXPECT_EQ(op->value, 42u);
}

TEST(Report, AlignsColumns)
{
    Report r({"name", "value"});
    r.row({"a", "1"});
    r.row({"longer", "22"});
    std::FILE *f = std::tmpfile();
    r.print(f);
    std::rewind(f);
    char line[128];
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    EXPECT_TRUE(std::string(line).find("name") != std::string::npos);
    std::fclose(f);
}

/** Correctness must hold for any cache geometry: sweep L2 size/assoc
 *  (and thus overflow pressure) for a transactional kernel. */
using Geometry = std::tuple<unsigned, unsigned>; // (l2 KB, assoc)

class CacheGeometryTest : public ::testing::TestWithParam<Geometry>
{};

TEST_P(CacheGeometryTest, RadixCorrectUnderAnyGeometry)
{
    auto [kb, assoc] = GetParam();
    SystemParams prm = quietParams(TmKind::SelectPtm);
    prm.l2Bytes = kb * 1024ull;
    prm.l2Assoc = assoc;
    prm.l1Bytes = 1024;
    ExperimentResult r = runWorkload("radix", prm, 0, 4);
    EXPECT_TRUE(r.verified)
        << "L2 " << kb << "KB/" << assoc << "-way";
    EXPECT_FALSE(r.stats.hitTickLimit);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometryTest,
    ::testing::Values(Geometry{2, 1}, Geometry{4, 2}, Geometry{16, 4},
                      Geometry{64, 8}, Geometry{256, 4}),
    [](const auto &info) {
        return "L2_" + std::to_string(std::get<0>(info.param)) + "KB_" +
               std::to_string(std::get<1>(info.param)) + "way";
    });

/** The same sweep under Copy-PTM exercises backup/restore heavily. */
class CopyGeometryTest : public ::testing::TestWithParam<Geometry>
{};

TEST_P(CopyGeometryTest, OceanCorrectUnderAnyGeometry)
{
    auto [kb, assoc] = GetParam();
    SystemParams prm = quietParams(TmKind::CopyPtm);
    prm.l2Bytes = kb * 1024ull;
    prm.l2Assoc = assoc;
    prm.l1Bytes = 1024;
    ExperimentResult r = runWorkload("ocean", prm, 0, 4);
    EXPECT_TRUE(r.verified)
        << "L2 " << kb << "KB/" << assoc << "-way";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CopyGeometryTest,
    ::testing::Values(Geometry{2, 2}, Geometry{8, 4}, Geometry{32, 4}),
    [](const auto &info) {
        return "L2_" + std::to_string(std::get<0>(info.param)) + "KB_" +
               std::to_string(std::get<1>(info.param)) + "way";
    });

} // namespace
} // namespace ptm
