/**
 * @file
 * Unit tests for the remaining substrate pieces: functional physical
 * memory, the frame allocator, coroutine plumbing edge cases, report
 * formatting, the flat-map/metadata-cache building blocks, and a
 * parameterized cache-geometry correctness sweep.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <tuple>
#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "mem/frame_alloc.hh"
#include "mem/phys_mem.hh"
#include "ptm/vts.hh"
#include "sim/flat_map.hh"
#include "sim_test_util.hh"

namespace ptm
{
namespace
{

using namespace ptm::test;

TEST(PhysMem, SparseZeroFill)
{
    PhysMem m;
    EXPECT_EQ(m.readWord32(0x123450), 0u);
    EXPECT_EQ(m.backedFrames(), 0u);
    m.writeWord32(0x123450, 42);
    EXPECT_EQ(m.readWord32(0x123450), 42u);
    EXPECT_EQ(m.backedFrames(), 1u);
}

TEST(PhysMem, BlockCopyRoundTrip)
{
    PhysMem m;
    std::uint8_t buf[blockBytes];
    for (unsigned i = 0; i < blockBytes; ++i)
        buf[i] = std::uint8_t(i * 3);
    m.writeBlock(0x40, buf);
    std::uint8_t out[blockBytes] = {};
    m.readBlock(0x40, out);
    EXPECT_EQ(std::memcmp(buf, out, blockBytes), 0);
    m.copyBlock(0x2000, 0x40);
    m.readBlock(0x2000, out);
    EXPECT_EQ(std::memcmp(buf, out, blockBytes), 0);
}

TEST(PhysMem, CopyPageAndRelease)
{
    PhysMem m;
    m.writeWord32(pageBase(3) + 8, 7);
    m.copyPage(9, 3);
    EXPECT_EQ(m.readWord32(pageBase(9) + 8), 7u);
    m.releaseFrame(9);
    EXPECT_EQ(m.readWord32(pageBase(9) + 8), 0u);
}

TEST(FrameAllocator, AllocFreeReuse)
{
    FrameAllocator fa(8);
    PageNum a = fa.alloc();
    PageNum b = fa.alloc();
    EXPECT_NE(a, b);
    EXPECT_EQ(fa.inUse(), 2u);
    fa.free(a);
    EXPECT_EQ(fa.inUse(), 1u);
    EXPECT_EQ(fa.alloc(), a) << "freed frames are recycled";
}

TEST(FrameAllocator, NeverHandsOutFrameZero)
{
    FrameAllocator fa(4);
    for (int i = 0; i < 3; ++i)
        EXPECT_NE(fa.alloc(), 0u);
}

TxCoro
emptyBody(MemCtx)
{
    co_return;
}

TEST(Coro, EmptyBodyFinishesOnFirstResume)
{
    TxCoro c = emptyBody(MemCtx{});
    EXPECT_TRUE(c.runnable());
    EXPECT_EQ(c.resume(0), nullptr);
    EXPECT_TRUE(c.done());
}

TEST(Coro, DestroyMidExecutionIsSafe)
{
    auto body = [](MemCtx m) -> TxCoro {
        for (int i = 0; i < 100; ++i)
            co_await m.load(0x1000 + 4 * i);
    };
    TxCoro c = body(MemCtx{});
    const MemYield *op = c.resume(0);
    ASSERT_NE(op, nullptr);
    EXPECT_EQ(op->kind, OpKind::Load);
    c.destroy(); // abort mid-transaction: frame must free cleanly
    EXPECT_TRUE(c.done());
}

TEST(Coro, ValuesFlowThroughAwaits)
{
    auto body = [](MemCtx m) -> TxCoro {
        std::uint64_t a = co_await m.load(0x10);
        std::uint64_t b = co_await m.load(0x14);
        co_await m.store(0x18, std::uint32_t(a + b));
    };
    TxCoro c = body(MemCtx{});
    const MemYield *op = c.resume(0);
    ASSERT_EQ(op->vaddr, 0x10u);
    op = c.resume(30);
    ASSERT_EQ(op->vaddr, 0x14u);
    op = c.resume(12);
    ASSERT_EQ(op->kind, OpKind::Store);
    EXPECT_EQ(op->value, 42u);
}

TEST(Report, AlignsColumns)
{
    Report r({"name", "value"});
    r.row({"a", "1"});
    r.row({"longer", "22"});
    std::FILE *f = std::tmpfile();
    r.print(f);
    std::rewind(f);
    char line[128];
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    EXPECT_TRUE(std::string(line).find("name") != std::string::npos);
    std::fclose(f);
}

/** Correctness must hold for any cache geometry: sweep L2 size/assoc
 *  (and thus overflow pressure) for a transactional kernel. */
using Geometry = std::tuple<unsigned, unsigned>; // (l2 KB, assoc)

class CacheGeometryTest : public ::testing::TestWithParam<Geometry>
{};

TEST_P(CacheGeometryTest, RadixCorrectUnderAnyGeometry)
{
    auto [kb, assoc] = GetParam();
    SystemParams prm = quietParams(TmKind::SelectPtm);
    prm.l2Bytes = kb * 1024ull;
    prm.l2Assoc = assoc;
    prm.l1Bytes = 1024;
    ExperimentResult r = runWorkload("radix", prm, 0, 4);
    EXPECT_TRUE(r.verified)
        << "L2 " << kb << "KB/" << assoc << "-way";
    EXPECT_FALSE(r.stats.hitTickLimit);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometryTest,
    ::testing::Values(Geometry{2, 1}, Geometry{4, 2}, Geometry{16, 4},
                      Geometry{64, 8}, Geometry{256, 4}),
    [](const auto &info) {
        return "L2_" + std::to_string(std::get<0>(info.param)) + "KB_" +
               std::to_string(std::get<1>(info.param)) + "way";
    });

/** The same sweep under Copy-PTM exercises backup/restore heavily. */
class CopyGeometryTest : public ::testing::TestWithParam<Geometry>
{};

TEST_P(CopyGeometryTest, OceanCorrectUnderAnyGeometry)
{
    auto [kb, assoc] = GetParam();
    SystemParams prm = quietParams(TmKind::CopyPtm);
    prm.l2Bytes = kb * 1024ull;
    prm.l2Assoc = assoc;
    prm.l1Bytes = 1024;
    ExperimentResult r = runWorkload("ocean", prm, 0, 4);
    EXPECT_TRUE(r.verified)
        << "L2 " << kb << "KB/" << assoc << "-way";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CopyGeometryTest,
    ::testing::Values(Geometry{2, 2}, Geometry{8, 4}, Geometry{32, 4}),
    [](const auto &info) {
        return "L2_" + std::to_string(std::get<0>(info.param)) + "KB_" +
               std::to_string(std::get<1>(info.param)) + "way";
    });

// VtsMetaCache sequences pin the timing cache's externally observable
// behavior — hit/miss classification, LRU victim selection and dirty
// write-back signaling — so the O(1) slab/intrusive-list version is a
// proven drop-in for the original scan-for-minimum implementation.

TEST(VtsMetaCacheSeq, HitsMovesEntryToMostRecent)
{
    VtsMetaCache c(3);
    bool evd = false;
    EXPECT_FALSE(c.access(10, false, evd));
    EXPECT_FALSE(c.access(11, false, evd));
    EXPECT_FALSE(c.access(12, false, evd));
    // Touch 10: LRU is now 11.
    EXPECT_TRUE(c.access(10, false, evd));
    EXPECT_FALSE(c.access(13, false, evd)); // evicts 11
    EXPECT_TRUE(c.access(10, false, evd));
    EXPECT_TRUE(c.access(12, false, evd));
    EXPECT_TRUE(c.access(13, false, evd));
    EXPECT_FALSE(c.access(11, false, evd)); // 11 was the victim
    EXPECT_EQ(c.hits.value(), 4u);
    EXPECT_EQ(c.misses.value(), 5u);
}

TEST(VtsMetaCacheSeq, EvictionChainFollowsRecency)
{
    VtsMetaCache c(2);
    bool evd = false;
    c.access(1, false, evd);
    c.access(2, false, evd);
    // Victims must come off in recency order: 1, then 2, then 3.
    c.access(3, false, evd);                 // evicts 1
    EXPECT_FALSE(c.access(1, false, evd));   // miss; evicts 2
    EXPECT_FALSE(c.access(2, false, evd));   // miss; evicts 3
    EXPECT_FALSE(c.access(3, false, evd));   // miss
    EXPECT_TRUE(c.access(2, false, evd));    // still resident
    EXPECT_EQ(c.misses.value(), 6u);
    EXPECT_EQ(c.hits.value(), 1u);
}

TEST(VtsMetaCacheSeq, DirtyWritebackOnlyForDirtyVictims)
{
    VtsMetaCache c(2);
    bool evd = false;
    c.access(1, false, evd); // clean insert
    c.access(2, true, evd);  // dirty insert
    // Evicting clean 1 signals no write-back.
    EXPECT_FALSE(c.access(3, false, evd));
    EXPECT_FALSE(evd);
    // Evicting dirty 2 signals one.
    EXPECT_FALSE(c.access(4, false, evd));
    EXPECT_TRUE(evd);
    EXPECT_EQ(c.dirtyEvictions.value(), 1u);
    // A hit with mark_dirty dirties an initially clean entry and
    // makes it most recent, so 4 (clean) goes first, then 3 (dirty).
    EXPECT_TRUE(c.access(3, true, evd));
    EXPECT_FALSE(c.access(5, false, evd)); // evicts clean 4
    EXPECT_FALSE(evd);
    EXPECT_FALSE(c.access(6, false, evd)); // evicts dirty 3
    EXPECT_TRUE(evd);
    EXPECT_EQ(c.dirtyEvictions.value(), 2u);
}

TEST(VtsMetaCacheSeq, RecycledSlotsStartClean)
{
    VtsMetaCache c(1);
    bool evd = false;
    c.access(1, true, evd);
    c.access(2, false, evd); // dirty 1 evicted; 2 reuses its slot
    EXPECT_TRUE(evd);
    c.access(3, false, evd); // 2 must evict clean
    EXPECT_FALSE(evd);
    EXPECT_EQ(c.dirtyEvictions.value(), 1u);
}

TEST(VtsMetaCacheSeq, RemoveFreesCapacityWithoutEviction)
{
    VtsMetaCache c(2);
    bool evd = false;
    c.access(1, true, evd);
    c.access(2, false, evd);
    c.remove(1); // structure freed: no write-back, no counter
    EXPECT_EQ(c.dirtyEvictions.value(), 0u);
    // Capacity freed: inserting 3 must not evict 2.
    EXPECT_FALSE(c.access(3, false, evd));
    EXPECT_FALSE(evd);
    EXPECT_TRUE(c.access(2, false, evd));
    // The removed key is gone.
    EXPECT_FALSE(c.access(1, false, evd));
    c.remove(99); // absent key: no-op
}

// The open-addressing map behind the metadata caches, SPT, frame and
// TLB indices.

TEST(FlatMap, InsertFindEraseAcrossGrowth)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    for (std::uint64_t k = 0; k < 1000; ++k)
        m[k * 977] = int(k);
    EXPECT_EQ(m.size(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        int *v = m.find(k * 977);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, int(k));
    }
    EXPECT_EQ(m.find(977 * 1000 + 1), nullptr);
    // Erase odd keys; even keys must survive the backward shifts.
    for (std::uint64_t k = 1; k < 1000; k += 2)
        EXPECT_TRUE(m.erase(k * 977));
    EXPECT_FALSE(m.erase(977)); // already gone
    EXPECT_EQ(m.size(), 500u);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        if (k % 2)
            EXPECT_EQ(m.find(k * 977), nullptr);
        else
            ASSERT_NE(m.find(k * 977), nullptr);
    }
}

TEST(FlatMap, EraseBackwardShiftKeepsProbeChains)
{
    // Colliding keys form one probe chain; deleting from the middle
    // must keep the rest reachable (the backward-shift move-up rule).
    FlatMap<std::uint64_t, int> m;
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 0; k < 200; ++k)
        keys.push_back(k);
    for (auto k : keys)
        m[k] = int(k);
    for (std::size_t i = 0; i < keys.size(); i += 3)
        m.erase(keys[i]);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (i % 3 == 0) {
            EXPECT_EQ(m.find(keys[i]), nullptr);
        } else {
            int *v = m.find(keys[i]);
            ASSERT_NE(v, nullptr);
            EXPECT_EQ(*v, int(keys[i]));
        }
    }
}

TEST(FlatMap, ForEachVisitsEveryElementOnce)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 1; k <= 40; ++k)
        m[k] = 0;
    m.forEach([](std::uint64_t, int &v) { ++v; });
    std::vector<std::uint64_t> seen;
    const auto &cm = m;
    cm.forEach([&](std::uint64_t k, const int &v) {
        EXPECT_EQ(v, 1);
        seen.push_back(k);
    });
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), 40u);
    for (std::uint64_t k = 1; k <= 40; ++k)
        EXPECT_EQ(seen[k - 1], k);
}

TEST(FlatSet, InsertContainsEraseSemantics)
{
    FlatSet<std::uint64_t> s;
    EXPECT_TRUE(s.insert(7));
    EXPECT_FALSE(s.insert(7)); // duplicate
    EXPECT_TRUE(s.insert(9));
    EXPECT_TRUE(s.contains(7));
    EXPECT_FALSE(s.contains(8));
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.erase(7));
    EXPECT_FALSE(s.erase(7));
    EXPECT_EQ(s.size(), 1u);
}

} // namespace
} // namespace ptm
