/**
 * @file
 * Virtual-memory and paging tests: demand allocation, swap-out/in
 * round trips with data integrity, TLB shootdowns, shared segments
 * across processes, and PTM's SPT <-> SIT migration under memory
 * pressure.
 */

#include <gtest/gtest.h>

#include "sim_test_util.hh"

namespace ptm
{
namespace
{

using namespace ptm::test;

TEST(Paging, SwapRoundTripPreservesData)
{
    SystemParams prm = quietParams(TmKind::Serial);
    prm.swapEnabled = true;
    prm.physFrames = 64; // tiny: forces swapping
    System sys(prm);
    ProcId p = sys.createProcess();
    constexpr unsigned kPages = 120;
    constexpr Addr base = 0x1000000;
    sys.addThread(p, {plain([](MemCtx m) -> TxCoro {
                      // Touch 120 pages (exceeding physical memory),
                      // then revisit them all.
                      for (unsigned pg = 0; pg < kPages; ++pg)
                          co_await m.store(base + Addr(pg) * pageBytes,
                                           7000 + pg);
                      for (unsigned pg = 0; pg < kPages; ++pg) {
                          std::uint64_t v = co_await m.load(
                              base + Addr(pg) * pageBytes);
                          co_await m.store(base + Addr(pg) * pageBytes +
                                               8,
                                           std::uint32_t(v) + 1);
                      }
                  })});
    sys.run();
    RunStats s = sys.stats();
    EXPECT_GT(s.swapOuts, 0u);
    EXPECT_GT(s.swapIns, 0u);
    for (unsigned pg = 0; pg < kPages; ++pg) {
        EXPECT_EQ(sys.readWord32(p, base + Addr(pg) * pageBytes),
                  7000 + pg);
        EXPECT_EQ(sys.readWord32(p, base + Addr(pg) * pageBytes + 8),
                  7001 + pg);
    }
}

TEST(Paging, TransactionsSurviveMemoryPressure)
{
    SystemParams prm = quietParams(TmKind::SelectPtm);
    prm.swapEnabled = true;
    prm.physFrames = 96;
    prm.l2Bytes = 8 * 1024;
    prm.l2Assoc = 2;
    prm.l1Bytes = 1024;
    System sys(prm);
    ProcId p = sys.createProcess();
    constexpr unsigned kPages = 60;
    constexpr Addr base = 0x2000000;
    // Transactions dirty one block per page -> shadow pages double the
    // footprint and trigger swap while transactions commit.
    std::vector<Step> steps;
    for (unsigned wave = 0; wave < 4; ++wave) {
        steps.push_back(tx([wave](MemCtx m) -> TxCoro {
            for (unsigned pg = wave * (kPages / 4);
                 pg < (wave + 1) * (kPages / 4); ++pg)
                for (unsigned b = 0; b < 8; ++b)
                    co_await m.store(base + Addr(pg) * pageBytes +
                                         b * blockBytes,
                                     wave * 10000 + pg * 10 + b);
        }));
    }
    sys.addThread(p, std::move(steps));
    sys.run();
    RunStats s = sys.stats();
    EXPECT_EQ(s.commits, 4u);
    EXPECT_GT(s.shadowAllocs, 0u);
    for (unsigned wave = 0; wave < 4; ++wave)
        for (unsigned pg = wave * (kPages / 4);
             pg < (wave + 1) * (kPages / 4); ++pg)
            for (unsigned b = 0; b < 8; ++b)
                ASSERT_EQ(sys.readWord32(p, base + Addr(pg) * pageBytes +
                                                b * blockBytes),
                          wave * 10000 + pg * 10 + b);
}

TEST(Paging, SharedSegmentDifferentVirtualBases)
{
    SystemParams prm = quietParams(TmKind::SelectPtm);
    System sys(prm);
    ProcId a = sys.createProcess();
    ProcId b = sys.createProcess();
    constexpr Addr base_a = 0x4000000;
    constexpr Addr base_b = 0x7770000;
    sys.shareSegmentAt({{a, base_a}, {b, base_b}}, 2);

    // A writes through its view; B must observe through its own.
    sys.addThread(a, {plain([](MemCtx m) -> TxCoro {
                      for (unsigned i = 0; i < 16; ++i)
                          co_await m.store(base_a + i * 4, 100 + i);
                      co_await m.store(base_a + pageBytes, 1);
                  })});
    sys.addThread(b, {plain([](MemCtx m) -> TxCoro {
                      while (co_await m.load(base_b + pageBytes) != 1)
                          co_await m.compute(100);
                      std::uint64_t sum = 0;
                      for (unsigned i = 0; i < 16; ++i)
                          sum += co_await m.load(base_b + i * 4);
                      co_await m.store(base_b + pageBytes + 64,
                                       std::uint32_t(sum));
                  })});
    sys.run();
    std::uint32_t expect = 0;
    for (unsigned i = 0; i < 16; ++i)
        expect += 100 + i;
    EXPECT_EQ(sys.readWord32(a, base_a + pageBytes + 64), expect);
    EXPECT_EQ(sys.readWord32(b, base_b + pageBytes + 64), expect);
}

TEST(Paging, CrossProcessTransactionAtomicity)
{
    // The paper's section 3.5.3 claim: physically-indexed PTM
    // structures detect conflicts between transactions of different
    // processes on shared memory.
    SystemParams prm = quietParams(TmKind::SelectPtm);
    System sys(prm);
    ProcId a = sys.createProcess();
    ProcId b = sys.createProcess();
    constexpr Addr base_a = 0x4000000;
    constexpr Addr base_b = 0x9990000;
    sys.shareSegmentAt({{a, base_a}, {b, base_b}}, 1);

    constexpr unsigned kIters = 50;
    auto worker = [&](ProcId proc, Addr base) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < kIters; ++i)
            steps.push_back(tx([base](MemCtx m) -> TxCoro {
                std::uint64_t v = co_await m.load(base);
                co_await m.compute(15);
                co_await m.store(base, std::uint32_t(v + 1));
            }));
        sys.addThread(proc, std::move(steps));
    };
    worker(a, base_a);
    worker(b, base_b);
    sys.run();
    EXPECT_EQ(sys.readWord32(a, base_a), 2 * kIters);
    EXPECT_GT(sys.stats().conflicts, 0u)
        << "cross-process conflicts must actually occur";
}

TEST(Paging, DaemonsAndQuantaProduceSystemEvents)
{
    SystemParams prm = quietParams(TmKind::SelectPtm);
    prm.daemonInterval = 50 * 1000;
    prm.daemonRunLength = 2000;
    prm.osQuantum = 100 * 1000;
    System sys(prm);
    ProcId p = sys.createProcess();
    for (unsigned t = 0; t < 6; ++t) { // oversubscribed: 6 on 4
        std::vector<Step> steps;
        for (unsigned i = 0; i < 20; ++i)
            steps.push_back(tx([t](MemCtx m) -> TxCoro {
                for (unsigned b = 0; b < 50; ++b) {
                    co_await m.store(
                        0x100000 + t * 0x10000 + b * blockBytes, b);
                    co_await m.compute(40);
                }
            }));
        sys.addThread(p, std::move(steps));
    }
    sys.run();
    RunStats s = sys.stats();
    EXPECT_GT(s.contextSwitches, 0u);
    EXPECT_GT(s.exceptions, 0u);
    EXPECT_EQ(s.commits, 6u * 20u);
}

} // namespace
} // namespace ptm
