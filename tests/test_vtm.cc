/**
 * @file
 * Unit tests of the VTM baseline: the XF counting Bloom filter, XADT
 * bookkeeping, spec-data buffering and copy-back at commit, fast
 * aborts, and the commit-stall behavior contrasted with VC-VTM.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "sim_test_util.hh"
#include "vtm/vtm.hh"

namespace ptm
{
namespace
{

using namespace ptm::test;

TEST(XFilter, NoFalseNegatives)
{
    XFilter xf(1024);
    for (Addr a = 0; a < 200; ++a)
        xf.insert(a * blockBytes);
    for (Addr a = 0; a < 200; ++a)
        EXPECT_TRUE(xf.maybePresent(a * blockBytes));
}

TEST(XFilter, RemoveClearsMembership)
{
    XFilter xf(1 << 16);
    Addr a = 0x12340;
    xf.insert(a);
    EXPECT_TRUE(xf.maybePresent(a));
    xf.remove(a);
    // With a large filter and a single element, the counters drop to
    // zero again.
    EXPECT_FALSE(xf.maybePresent(a));
}

TEST(XFilter, CountingSurvivesAliasedInserts)
{
    XFilter xf(1 << 16);
    Addr a = 0x40;
    xf.insert(a);
    xf.insert(a);
    xf.remove(a);
    EXPECT_TRUE(xf.maybePresent(a)) << "counting filter: one of two "
                                       "inserts removed";
    xf.remove(a);
    EXPECT_FALSE(xf.maybePresent(a));
}

/** Direct VtmController tests. */
class VtmUnit : public ::testing::Test
{
  protected:
    void
    build(TmKind kind)
    {
        params.tmKind = kind;
        dram = std::make_unique<DramModel>(200, 3, 60);
        vtm = std::make_unique<VtmController>(params, eq, phys, txmgr,
                                              *dram);
        txmgr.backendCommit = [this](TxId t) { vtm->commitTx(t); };
        txmgr.backendAbort = [this](TxId t) { vtm->abortTx(t); };
    }

    void
    evictDirty(TxId tx, Addr block, std::uint32_t seed)
    {
        std::uint8_t data[blockBytes];
        for (unsigned w = 0; w < wordsPerBlock; ++w) {
            std::uint32_t v = seed + w;
            std::memcpy(data + w * 4, &v, 4);
        }
        vtm->evictTxBlock(block, tx, true, data, 0, 0xffff);
    }

    SystemParams params;
    EventQueue eq;
    PhysMem phys;
    TxManager txmgr;
    std::unique_ptr<DramModel> dram;
    std::unique_ptr<VtmController> vtm;
};

TEST_F(VtmUnit, SpecDataBufferedUntilCommitCopyback)
{
    build(TmKind::Vtm);
    Addr block = 0x40000;
    phys.writeWord32(block, 11);
    TxId tx = txmgr.begin(0, 0, 0);
    evictDirty(tx, block, 9000);

    // VTM buffers the new value: memory keeps the committed one.
    EXPECT_EQ(phys.readWord32(block), 11u);
    EXPECT_TRUE(vtm->anyOverflow());

    // The writer re-reads its own spec version from the XADT and the
    // line must be re-marked speculative.
    std::uint8_t buf[blockBytes];
    std::uint16_t spec = 0;
    std::vector<TxMark> foreign;
    vtm->fillBlock(block, tx, buf, spec, foreign);
    std::uint32_t v;
    std::memcpy(&v, buf, 4);
    EXPECT_EQ(v, 9000u);
    EXPECT_EQ(spec, 0xffff);

    // The spec data moved back to the cache: deposit it again before
    // committing (as the eviction path would).
    evictDirty(tx, block, 9000);

    txmgr.requestCommit(tx);
    eq.run(); // drain the copy-back walk
    EXPECT_EQ(txmgr.stateOf(tx), TxState::Committed);
    EXPECT_EQ(phys.readWord32(block), 9000u) << "copied back at commit";
    EXPECT_GT(vtm->copybacks.value(), 0u);
    EXPECT_FALSE(vtm->anyOverflow());
}

TEST_F(VtmUnit, AbortDiscardsBufferedData)
{
    build(TmKind::Vtm);
    Addr block = 0x80000;
    phys.writeWord32(block, 5);
    TxId tx = txmgr.begin(0, 0, 0);
    evictDirty(tx, block, 1234);
    txmgr.abort(tx, AbortReason::Explicit);
    eq.run();
    EXPECT_EQ(phys.readWord32(block), 5u) << "fast abort: no copies";
    EXPECT_EQ(vtm->copybacks.value(), 0u);
    EXPECT_FALSE(vtm->anyOverflow());
}

TEST_F(VtmUnit, CommitStallUntilCopyback)
{
    build(TmKind::Vtm);
    Addr block = 0xc0000;
    TxId tx = txmgr.begin(0, 0, 0);
    TxId other = txmgr.begin(1, 0, 1);
    evictDirty(tx, block, 777);
    txmgr.requestCommit(tx);
    // Before the walk drains, another access to the block stalls.
    CheckResult r =
        vtm->checkAccess(BlockAccess{block, other, false, 0xffff});
    EXPECT_TRUE(r.stall);
    eq.run();
    r = vtm->checkAccess(BlockAccess{block, other, false, 0xffff});
    EXPECT_FALSE(r.stall);
    EXPECT_TRUE(r.conflicts.empty());
}

TEST_F(VtmUnit, ConflictDetectionThroughXadt)
{
    build(TmKind::Vtm);
    Addr block = 0x100000;
    TxId a = txmgr.begin(0, 0, 0);
    TxId b = txmgr.begin(1, 0, 1);
    std::uint8_t data[blockBytes] = {};
    // a overflows a read: b's write conflicts (WAR), b's read doesn't.
    vtm->evictTxBlock(block, a, false, data, 0xffff, 0);
    CheckResult r =
        vtm->checkAccess(BlockAccess{block, b, true, 0xffff});
    ASSERT_EQ(r.conflicts.size(), 1u);
    EXPECT_EQ(r.conflicts[0], a);
    r = vtm->checkAccess(BlockAccess{block, b, false, 0xffff});
    EXPECT_TRUE(r.conflicts.empty());
    EXPECT_FALSE(vtm->mayGrantExclusive(block, b));
}

TEST(VtmIntegration, VictimCacheReducesCommitStalls)
{
    // Two runs of an overflow-then-reread pattern: VC-VTM must beat
    // base VTM because committed blocks are served from the victim
    // cache instead of stalling on copy-backs.
    auto run = [](TmKind kind) {
        System sys(tinyCacheParams(kind));
        ProcId p = sys.createProcess();
        constexpr Addr base = 0x100000;
        constexpr unsigned kBlocks = 150;
        std::vector<Step> steps;
        for (unsigned round = 0; round < 4; ++round) {
            steps.push_back(tx([round](MemCtx m) -> TxCoro {
                for (unsigned b = 0; b < kBlocks; ++b)
                    co_await m.store(base + Addr(b) * blockBytes,
                                     round * 1000 + b);
            }));
            // Immediately re-read everything non-transactionally:
            // base VTM stalls on not-yet-copied blocks.
            steps.push_back(plain([](MemCtx m) -> TxCoro {
                for (unsigned b = 0; b < kBlocks; ++b)
                    co_await m.load(base + Addr(b) * blockBytes);
            }));
        }
        sys.addThread(p, std::move(steps));
        sys.run();
        RunStats s = sys.stats();
        bool ok = true;
        for (unsigned b = 0; b < kBlocks; ++b)
            ok = ok && sys.readWord32(p, base + Addr(b) * blockBytes) ==
                           3000 + b;
        EXPECT_TRUE(ok);
        return s;
    };
    RunStats vtm = run(TmKind::Vtm);
    RunStats vc = run(TmKind::VcVtm);
    EXPECT_GT(vc.victimCacheHits, 0u);
    EXPECT_LT(vc.cycles, vtm.cycles)
        << "the victim cache must hide commit copy-back latency";
}

} // namespace
} // namespace ptm
