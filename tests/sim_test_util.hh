/**
 * @file
 * Helpers for building tiny workloads in tests.
 */

#ifndef PTM_TESTS_SIM_TEST_UTIL_HH
#define PTM_TESTS_SIM_TEST_UTIL_HH

#include <functional>
#include <utility>
#include <vector>

#include "harness/system.hh"

namespace ptm::test
{

/** Make an unordered transactional step from a coroutine factory. */
inline Step
tx(CoroFactory body)
{
    TxStep s;
    s.body = std::move(body);
    return s;
}

/** Make an ordered transactional step. */
inline Step
orderedTx(std::uint32_t scope, std::uint64_t rank, CoroFactory body)
{
    TxStep s;
    s.body = std::move(body);
    s.ordered = true;
    s.scope = scope;
    s.rank = rank;
    return s;
}

/** Make a plain (non-transactional) step. */
inline Step
plain(CoroFactory body)
{
    PlainStep s;
    s.body = std::move(body);
    return s;
}

/** Make a barrier step. */
inline Step
barrier(unsigned id)
{
    return BarrierStep{id};
}

/** Params preset: small caches so overflows happen quickly. */
inline SystemParams
tinyCacheParams(TmKind kind)
{
    SystemParams p;
    p.tmKind = kind;
    p.l1Bytes = 512;      // 8 lines
    p.l2Bytes = 2048;     // 32 lines
    p.l2Assoc = 2;
    p.daemonInterval = 0; // deterministic tests by default
    p.osQuantum = 0;
    p.maxTicks = 200 * 1000 * 1000;
    return p;
}

/** Params preset: paper defaults, no OS noise. */
inline SystemParams
quietParams(TmKind kind)
{
    SystemParams p;
    p.tmKind = kind;
    p.daemonInterval = 0;
    p.osQuantum = 0;
    p.maxTicks = 500 * 1000 * 1000;
    return p;
}

} // namespace ptm::test

#endif // PTM_TESTS_SIM_TEST_UTIL_HH
