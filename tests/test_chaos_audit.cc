/**
 * @file
 * Tests of the robustness harness: every PTM-auditor check is proven
 * to fire on seeded corruption (negative tests via AuditTestAccess),
 * the chaos engine is exercised end to end (clean audited runs,
 * bit-exact determinism of a seeded plan), the contention knobs
 * (watchdog, starvation escalation, randomized backoff) are driven to
 * their trip points, and the delayed-cleanup drain at thread exit is
 * pinned by a regression test.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/frame_alloc.hh"
#include "mem/phys_mem.hh"
#include "mem/timing.hh"
#include "ptm/audit.hh"
#include "ptm/vts.hh"
#include "sim/chaos.hh"
#include "sim/event_queue.hh"
#include "sim_test_util.hh"
#include "tx/tx_manager.hh"

namespace ptm
{
namespace
{

using namespace ptm::test;

/**
 * Fixture wiring a bare VTS plus the auditor, so corruption can be
 * seeded while overflowed state is live (inside a System the TAV
 * lists drain before the run ends, leaving nothing to corrupt).
 */
class AuditNegative : public ::testing::Test
{
  protected:
    void
    build(TmKind kind, Granularity gran = Granularity::Block,
          ShadowFreePolicy pol = ShadowFreePolicy::MergeOnSwap)
    {
        params.tmKind = kind;
        params.granularity = gran;
        params.shadowFree = pol;
        frames = std::make_unique<FrameAllocator>(1024);
        dram = std::make_unique<DramModel>(200, 3, 60);
        vts = std::make_unique<Vts>(params, eq, phys, txmgr, *frames,
                                    *dram);
        txmgr.backendCommit = [this](TxId t) { vts->commitTx(t); };
        txmgr.backendAbort = [this](TxId t) { vts->abortTx(t); };
        home = frames->alloc();
        auditor.attach(vts.get(), &txmgr);
    }

    /** Begin a transaction and overflow one dirty block of @p page. */
    TxId
    overflow(PageNum page, unsigned blk = 2, std::uint32_t seed = 5000)
    {
        TxId tx = txmgr.begin(0, 0, 0);
        evictDirty(tx, page, blk, seed);
        return tx;
    }

    void
    evictDirty(TxId tx, PageNum page, unsigned blk, std::uint32_t seed,
               std::uint16_t write_words = 0xffff)
    {
        std::uint8_t data[blockBytes];
        for (unsigned w = 0; w < wordsPerBlock; ++w) {
            std::uint32_t v = seed + w;
            std::memcpy(data + w * 4, &v, 4);
        }
        vts->evictTxBlock(blockAddr(page, blk), tx, true, data, 0,
                          write_words);
    }

    Addr
    blockAddr(PageNum page, unsigned blk) const
    {
        return pageBase(page) + Addr(blk) * blockBytes;
    }

    /** The pristine structures must audit clean (no false positives). */
    void
    expectClean()
    {
        EXPECT_EQ(auditor.checkAll("test", 0), 0u)
            << (auditor.violations().empty()
                    ? ""
                    : auditor.violations().back().detail);
    }

    /** After corruption, check @p id must be among the new findings. */
    void
    expectCheck(const char *id)
    {
        EXPECT_GT(auditor.checkAll("test", 1), 0u)
            << "corruption went undetected";
        bool found = false;
        for (const AuditViolation &v : auditor.violations())
            if (v.check == id)
                found = true;
        EXPECT_TRUE(found)
            << "check \"" << id << "\" did not fire; got \""
            << (auditor.violations().empty()
                    ? "<none>"
                    : auditor.violations().back().check)
            << "\"";
    }

    SystemParams params;
    EventQueue eq;
    PhysMem phys;
    TxManager txmgr;
    std::unique_ptr<FrameAllocator> frames;
    std::unique_ptr<DramModel> dram;
    std::unique_ptr<Vts> vts;
    PtmAuditor auditor;
    PageNum home = 0;
};

TEST_F(AuditNegative, SptHomeMismatchFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::corruptHome(*vts, home);
    expectCheck("spt-home");
}

TEST_F(AuditNegative, ShadowAliasedToHomeFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::aliasShadow(*vts, home);
    expectCheck("shadow-self");
}

TEST_F(AuditNegative, DuplicateShadowFrameFires)
{
    build(TmKind::SelectPtm);
    PageNum home2 = frames->alloc();
    TxId tx = overflow(home);
    evictDirty(tx, home2, 3, 6000);
    expectClean();
    AuditTestAccess::dupShadow(*vts, home, home2);
    expectCheck("shadow-dup");
}

TEST_F(AuditNegative, ShadowCountLeakFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::leakShadowCount(*vts);
    expectCheck("shadow-count");
}

TEST_F(AuditNegative, SummaryVectorDisagreementFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::corruptSummary(*vts, home);
    expectCheck("summary-agree");
}

TEST_F(AuditNegative, SelectionBitWithoutShadowFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::corruptSelection(*vts, home);
    expectCheck("selection-shadow");
}

TEST_F(AuditNegative, CopyPtmSelectionBitFires)
{
    build(TmKind::CopyPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::corruptSelection(*vts, home);
    expectCheck("selection-copy");
}

TEST_F(AuditNegative, NodeHomeMismatchFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::corruptNodeHome(*vts, home);
    expectCheck("node-home");
}

TEST_F(AuditNegative, NodeOfFinishedTransactionFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::corruptNodeTx(*vts, home, TxId(0xdead));
    expectCheck("node-state");
}

TEST_F(AuditNegative, DuplicateNodeOnPageFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::dupNode(*vts, home);
    expectCheck("node-dup");
}

TEST_F(AuditNegative, NodeVectorWidthMismatchFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::shrinkNodeVec(*vts, home);
    expectCheck("node-vec");
}

TEST_F(AuditNegative, BrokenVerticalListFires)
{
    build(TmKind::SelectPtm);
    TxId tx = overflow(home);
    PageNum home2 = frames->alloc();
    evictDirty(tx, home2, 1, 7000);
    expectClean();
    AuditTestAccess::breakVerticalLink(*vts, tx);
    expectCheck("vertical-agree");
}

TEST_F(AuditNegative, LeakedArenaNodeFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::leakArenaNode(*vts);
    expectCheck("arena-live");
}

TEST_F(AuditNegative, LiveDirtyGaugeSkewFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::bumpLiveDirty(*vts);
    expectCheck("live-dirty");
}

TEST_F(AuditNegative, OverflowCountSkewFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::bumpOverflowCount(*vts);
    expectCheck("overflow-live");
}

TEST_F(AuditNegative, NonQuiescedSitEntryFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::corruptSit(*vts, 7);
    expectCheck("sit-clean");
}

TEST_F(AuditNegative, OrphanedSwapDataFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::orphanSwapData(*vts, 7);
    expectCheck("swap-data");
}

TEST_F(AuditNegative, AbortBreakdownSumMismatchFires)
{
    build(TmKind::SelectPtm);
    expectClean();
    ++txmgr.aborts; // total bumped, no per-cause counter follows
    expectCheck("abort-sum");
}

TEST_F(AuditNegative, LiveCountSkewFires)
{
    build(TmKind::SelectPtm);
    overflow(home);
    expectClean();
    AuditTestAccess::bumpLiveCount(txmgr);
    expectCheck("live-count");
}

/** The full lifecycle leaves nothing for the auditor to object to. */
TEST_F(AuditNegative, CommitLifecycleAuditsClean)
{
    build(TmKind::SelectPtm);
    TxId tx = overflow(home);
    expectClean();
    ASSERT_EQ(txmgr.requestCommit(tx), CommitResult::Done);
    eq.run();
    EXPECT_EQ(txmgr.stateOf(tx), TxState::Committed);
    expectClean();
}

/**
 * Regression: a chaos-delayed abort-cleanup walk must be drained when
 * its thread exits. Without the drain, the Copy-PTM restore runs
 * later and overwrites whatever was committed to the home page in the
 * meantime (the bug the onThreadExit hook fixes).
 */
TEST_F(AuditNegative, DelayedAbortCleanupDrainsAtThreadExit)
{
    build(TmKind::CopyPtm);
    ChaosEngine chaos;
    ChaosParams cp;
    cp.enabled = true;
    cp.plan = chaosFaultMask(ChaosFault::CleanupDelay);
    cp.cleanupDelay = 1000 * 1000; // park the walk far in the future
    chaos.configure(cp);
    vts->setChaos(&chaos);

    phys.writeWord32(blockAddr(home, 2), 111); // committed value
    TxId tx = overflow(home); // Copy-PTM: spec data lands on home
    txmgr.abort(tx, AbortReason::Explicit);

    // The walk is parked: the restore has not happened yet.
    EXPECT_EQ(chaos.cleanupDelays.value(), 1u);
    EXPECT_EQ(txmgr.stateOf(tx), TxState::Aborting);
    EXPECT_EQ(phys.readWord32(blockAddr(home, 2)), 5000u);

    // Thread 0 exits: its pending cleanups must finish synchronously.
    vts->drainThreadCleanups(0);
    EXPECT_EQ(txmgr.stateOf(tx), TxState::Aborted);
    EXPECT_EQ(phys.readWord32(blockAddr(home, 2)), 111u)
        << "abort restore must complete before the thread is gone";
    EXPECT_FALSE(vts->anyOverflow());

    eq.run(); // the parked event fires and must find nothing to do
    expectClean();
}

constexpr Addr kBase = 0x40000;

/** Per-thread disjoint stores; returns expected final words. */
void
addStoreThreads(System &sys, ProcId p, unsigned threads, unsigned txs,
                unsigned blocks)
{
    for (unsigned t = 0; t < threads; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < txs; ++i) {
            steps.push_back(tx([t, i, blocks](MemCtx m) -> TxCoro {
                for (unsigned b = 0; b < blocks; ++b)
                    co_await m.store(kBase +
                                         Addr(t) * 64 * blockBytes +
                                         Addr(b) * blockBytes,
                                     1000 * t + 100 * i + b);
            }));
        }
        sys.addThread(p, std::move(steps));
    }
}

/**
 * A fully armed chaos run under the auditor: every fault kind on a
 * short interval, violations must stay at zero and the workload's
 * final memory image must still be correct.
 */
TEST(ChaosSystem, ArmedRunAuditsCleanAndStaysCorrect)
{
    SystemParams prm = tinyCacheParams(TmKind::SelectPtm);
    prm.audit.enabled = true;
    prm.audit.interval = 20000;
    prm.chaos.enabled = true;
    prm.chaos.seed = 3;
    prm.chaos.interval = 5000;
    prm.chaos.cleanupDelay = 500;
    System sys(prm);
    ProcId p = sys.createProcess();
    constexpr unsigned kThreads = 4, kTxs = 4, kBlocks = 48;
    addStoreThreads(sys, p, kThreads, kTxs, kBlocks);
    sys.run();

    for (unsigned t = 0; t < kThreads; ++t)
        for (unsigned b = 0; b < kBlocks; ++b)
            EXPECT_EQ(sys.readWord32(p, kBase +
                                            Addr(t) * 64 * blockBytes +
                                            Addr(b) * blockBytes),
                      1000 * t + 100 * (kTxs - 1) + b);

    const ChaosEngine &c = sys.chaos();
    std::uint64_t injected =
        c.injectedAborts.value() + c.cacheSqueezes.value() +
        c.txFlushes.value() + c.pageSwaps.value() +
        c.preempts.value() + c.cleanupDelays.value();
    EXPECT_GT(injected, 0u) << "the plan never injected anything";
    EXPECT_GT(sys.auditor().checksRun.value(), 0u);
    EXPECT_TRUE(sys.auditor().violations().empty());
}

Tick
chaosRunCycles(bool armed, RunStats &out)
{
    SystemParams prm = tinyCacheParams(TmKind::SelectPtm);
    prm.chaos.enabled = armed;
    prm.chaos.seed = 11;
    prm.chaos.interval = 2000;
    System sys(prm);
    ProcId p = sys.createProcess();
    addStoreThreads(sys, p, 4, 4, 48);
    Tick end = sys.run();
    out = sys.stats();
    if (armed) {
        const ChaosEngine &c = sys.chaos();
        EXPECT_GT(c.cacheSqueezes.value() + c.txFlushes.value() +
                      c.preempts.value() + c.pageSwaps.value() +
                      c.injectedAborts.value(),
                  0u)
            << "plan never injected: the run is too short";
    }
    return end;
}

/** The same (workload seed, chaos seed, plan) replays bit-exactly. */
TEST(ChaosSystem, SameSeedReplaysExactly)
{
    RunStats a, b;
    Tick ca = chaosRunCycles(true, a);
    Tick cb = chaosRunCycles(true, b);
    EXPECT_EQ(ca, cb);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.aborts, b.aborts);
    EXPECT_EQ(a.memOps, b.memOps);

    // Arming the plan actually perturbs the run vs. the quiet
    // baseline (it injects preemptions and forced flushes).
    RunStats c;
    Tick cc = chaosRunCycles(false, c);
    EXPECT_TRUE(cc != ca || c.aborts != a.aborts ||
                c.memOps != a.memOps);
}

/**
 * Contention robustness: a high-conflict counter workload with the
 * watchdog and retry-budget escalation armed must still complete
 * correctly, trip the watchdog, grant (and release) the starvation
 * token, and lose no increments.
 */
TEST(ChaosSystem, WatchdogTripsAndStarvationTokenReleases)
{
    SystemParams prm = quietParams(TmKind::SelectPtm);
    prm.contention.randomBackoff = true;
    prm.contention.watchdogThreshold = 3;
    prm.contention.retryBudget = 3;
    System sys(prm);
    ProcId p = sys.createProcess();
    constexpr unsigned kThreads = 4, kIters = 20;
    for (unsigned t = 0; t < kThreads; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < kIters; ++i) {
            steps.push_back(tx([](MemCtx m) -> TxCoro {
                std::uint64_t v = co_await m.load(kBase);
                co_await m.compute(300);
                co_await m.store(kBase, std::uint32_t(v + 1));
            }));
        }
        sys.addThread(p, std::move(steps));
    }
    sys.run();

    EXPECT_EQ(sys.readWord32(p, kBase), kThreads * kIters);
    RunStats s = sys.stats();
    EXPECT_EQ(s.commits, kThreads * kIters);
    EXPECT_GT(s.aborts, 0u);
    const TxManager &tm = sys.txmgr();
    EXPECT_GT(tm.watchdogTrips.value(), 0u);
    EXPECT_GT(tm.starvationGrants.value(), 0u);
    EXPECT_EQ(tm.starvationHolder(), invalidTxId)
        << "the token must be released by the final commit";
}

} // namespace
} // namespace ptm
