#!/usr/bin/env python3
"""Diff two ptm-benchsuite-v1 baselines and flag perf regressions.

Rows are matched within each bench by the join key formed from their
identity fields (all string- and bool-valued fields except
"verified"): app, system, mode, config, policy, abort_rate, ...
Numeric metrics listed in THRESHOLDS are then gated: a relative
*increase* beyond the metric's noise threshold is a regression and the
tool exits 1. A verified=true row turning false is always a
regression, as is a baseline row that disappeared. Other shared
numeric fields are reported informationally when they drift by more
than --report-threshold but never fail the comparison.

The simulator is fully deterministic for a given seed, so the
thresholds only need to absorb intentional modelling changes, not
host noise; wall-clock values are never compared.

Usage:
    bench_compare.py OLD.json NEW.json [--report-threshold PCT]
    bench_compare.py --self-test
"""

import argparse
import copy
import json
import sys

# metric -> allowed relative increase before it counts as a regression.
# Cost-like metrics only: a *decrease* is never flagged.
THRESHOLDS = {
    "cycles": 0.01,            # headline metric: 1% noise budget
    "prof_total_ticks": 0.01,  # must track cycles by construction
    "prof_tx_wasted": 0.05,
    "prof_stall_l2": 0.05,
    "prof_stall_mem": 0.05,
    "prof_stall_xlat": 0.05,
    "prof_fault_swap": 0.05,
    "aborts": 0.10,
    # Serving-workload tail latency (bench_kv): p99 is sensitive to
    # abort-path changes, so give it a wider but still binding budget.
    "p99_commit_latency": 0.15,
    # Durable-commit stall tail (bench_kv rows produced under
    # --durability wal): only present when both baselines logged
    # commits, so volatile baselines never trip it.
    "p99_durable_commit_latency": 0.15,
}

# metric -> allowed relative *decrease* before it counts as a
# regression. Goodness metrics only: an increase is never flagged.
# Steady-state throughput integrates over half-run commit deltas, so
# its noise floor is wider than the cycle budget.
THRESHOLDS_DECREASE = {
    "steady_tx_per_sec_1ghz": 0.10,
    # Host event-loop throughput (only present when both baselines were
    # produced with --host-metrics on the same machine): compare() only
    # gates metrics present in BOTH rows, so ordinary cross-machine
    # baselines — which omit the field — never trip this.
    "sim_events_per_sec": 0.10,
}


def row_key(row):
    """Join key: every string/bool identity field, sorted by name."""
    parts = []
    for k in sorted(row):
        v = row[k]
        if k != "verified" and isinstance(v, (str, bool)):
            parts.append(f"{k}={v}")
    return " ".join(parts) or "<row>"


def index_rows(rows):
    out = {}
    for row in rows:
        key = row_key(row)
        n = 2
        base = key
        while key in out:  # repeated identical keys get a suffix
            key = f"{base} #{n}"
            n += 1
        out[key] = row
    return out


def compare(old, new, report_threshold):
    """Return (regressions, notes): lists of human-readable strings."""
    regressions = []
    notes = []
    old_benches = old.get("benches", {})
    new_benches = new.get("benches", {})

    for bench in sorted(old_benches):
        if bench not in new_benches:
            regressions.append(f"{bench}: bench missing from new baseline")
            continue
        old_rows = index_rows(old_benches[bench])
        new_rows = index_rows(new_benches[bench])
        for key, orow in old_rows.items():
            nrow = new_rows.get(key)
            if nrow is None:
                regressions.append(f"{bench}: row gone: {key}")
                continue
            if orow.get("verified") is True and \
                    nrow.get("verified") is False:
                regressions.append(
                    f"{bench}: {key}: run no longer verifies")
            for metric in sorted(set(orow) & set(nrow)):
                ov, nv = orow[metric], nrow[metric]
                if isinstance(ov, bool) or isinstance(nv, bool):
                    continue
                if not isinstance(ov, (int, float)) or \
                        not isinstance(nv, (int, float)):
                    continue
                if ov == nv:
                    continue
                rel = (nv - ov) / ov if ov else float("inf")
                thr = THRESHOLDS.get(metric)
                thr_dec = THRESHOLDS_DECREASE.get(metric)
                if thr is not None and rel > thr:
                    regressions.append(
                        f"{bench}: {key}: {metric} {ov} -> {nv} "
                        f"(+{100.0 * rel:.1f}% > {100.0 * thr:.0f}% "
                        "budget)")
                elif thr_dec is not None and -rel > thr_dec:
                    regressions.append(
                        f"{bench}: {key}: {metric} {ov} -> {nv} "
                        f"({100.0 * rel:.1f}% < -{100.0 * thr_dec:.0f}% "
                        "budget)")
                elif abs(rel) > report_threshold:
                    notes.append(
                        f"{bench}: {key}: {metric} {ov} -> {nv} "
                        f"({100.0 * rel:+.1f}%)")
        for key in new_rows:
            if key not in old_rows:
                notes.append(f"{bench}: new row: {key}")
    for bench in sorted(new_benches):
        if bench not in old_benches:
            notes.append(f"{bench}: new bench (no baseline)")
    return regressions, notes


def self_test():
    """Exercise the comparison logic on crafted baseline pairs."""
    base = {
        "schema": "ptm-benchsuite-v1",
        "label": "a",
        "benches": {
            "bench_table1": [
                {"app": "fft", "system": "sel-ptm", "cycles": 1000000,
                 "prof_total_ticks": 4000000, "verified": True},
                {"app": "lu", "system": "vtm", "cycles": 2000000,
                 "prof_total_ticks": 8000000, "verified": True},
            ],
        },
    }
    failures = []

    # 1. Identical baselines must pass clean.
    regs, _ = compare(base, copy.deepcopy(base), 0.10)
    if regs:
        failures.append(f"identical pair flagged: {regs}")

    # 2. An injected 10% cycles slowdown must be detected.
    slow = copy.deepcopy(base)
    slow["benches"]["bench_table1"][0]["cycles"] = 1100000
    regs, _ = compare(base, slow, 0.10)
    if not any("cycles" in r for r in regs):
        failures.append("10% cycles slowdown not detected")

    # 3. A change within the noise budget must NOT be flagged.
    near = copy.deepcopy(base)
    near["benches"]["bench_table1"][0]["cycles"] = 1005000  # +0.5%
    regs, _ = compare(base, near, 0.10)
    if regs:
        failures.append(f"+0.5% cycles inside budget flagged: {regs}")

    # 4. A speedup must not be flagged (thresholds gate increases only).
    fast = copy.deepcopy(base)
    fast["benches"]["bench_table1"][0]["cycles"] = 800000
    regs, notes = compare(base, fast, 0.10)
    if regs:
        failures.append(f"speedup flagged as regression: {regs}")
    if not notes:
        failures.append("-20% cycles drift not reported as a note")

    # 5. verified flipping false must be a regression.
    bad = copy.deepcopy(base)
    bad["benches"]["bench_table1"][1]["verified"] = False
    regs, _ = compare(base, bad, 0.10)
    if not any("verifies" in r for r in regs):
        failures.append("verified=false not detected")

    # 6. A p99 commit-latency blowup (bench_kv rows) must be detected,
    # but only beyond its 15% budget.
    lat = copy.deepcopy(base)
    lat["benches"]["bench_table1"][0]["p99_commit_latency"] = 10000.0
    tail = copy.deepcopy(lat)
    tail["benches"]["bench_table1"][0]["p99_commit_latency"] = 12000.0
    regs, _ = compare(lat, tail, 0.10)
    if not any("p99_commit_latency" in r for r in regs):
        failures.append("+20% p99 commit latency not detected")
    near_tail = copy.deepcopy(lat)
    near_tail["benches"]["bench_table1"][0]["p99_commit_latency"] = \
        11000.0
    regs, _ = compare(lat, near_tail, 0.50)
    if regs:
        failures.append(f"+10% p99 inside budget flagged: {regs}")

    # 7. A steady-state throughput drop (bench_kv rows) must be
    # detected beyond its 10% budget; gains must never be flagged.
    tput = copy.deepcopy(base)
    tput["benches"]["bench_table1"][0]["steady_tx_per_sec_1ghz"] = \
        500000.0
    drop = copy.deepcopy(tput)
    drop["benches"]["bench_table1"][0]["steady_tx_per_sec_1ghz"] = \
        400000.0
    regs, _ = compare(tput, drop, 0.50)
    if not any("steady_tx_per_sec_1ghz" in r for r in regs):
        failures.append("-20% steady throughput not detected")
    gain = copy.deepcopy(tput)
    gain["benches"]["bench_table1"][0]["steady_tx_per_sec_1ghz"] = \
        700000.0
    regs, _ = compare(tput, gain, 0.50)
    if regs:
        failures.append(f"steady throughput gain flagged: {regs}")
    near_drop = copy.deepcopy(tput)
    near_drop["benches"]["bench_table1"][0]["steady_tx_per_sec_1ghz"] = \
        475000.0
    regs, _ = compare(tput, near_drop, 0.50)
    if regs:
        failures.append(f"-5% steady throughput inside budget "
                        f"flagged: {regs}")

    # 8. Host-throughput regressions (sim_events_per_sec, only present
    # in same-machine --host-metrics pairs) must be detected beyond
    # their 10% budget; a row pair where only one side carries the
    # field must not be compared at all.
    host = copy.deepcopy(base)
    host["benches"]["bench_table1"][0]["sim_events_per_sec"] = 3.0e6
    host_drop = copy.deepcopy(host)
    host_drop["benches"]["bench_table1"][0]["sim_events_per_sec"] = 2.5e6
    regs, _ = compare(host, host_drop, 0.50)
    if not any("sim_events_per_sec" in r for r in regs):
        failures.append("-17% sim_events_per_sec not detected")
    host_gain = copy.deepcopy(host)
    host_gain["benches"]["bench_table1"][0]["sim_events_per_sec"] = 4.0e6
    regs, _ = compare(host, host_gain, 0.50)
    if regs:
        failures.append(f"sim_events_per_sec gain flagged: {regs}")
    regs, _ = compare(host, copy.deepcopy(base), 0.50)
    if any("sim_events_per_sec" in r for r in regs):
        failures.append("one-sided sim_events_per_sec compared")

    # 9. A durable-commit latency blowup (bench_kv rows produced with
    # --durability wal) must be detected beyond its 15% budget, and a
    # pair where only the new row carries the field (volatile old
    # baseline) must not be compared.
    dur = copy.deepcopy(base)
    dur["benches"]["bench_table1"][0]["p99_durable_commit_latency"] = \
        600.0
    dur_slow = copy.deepcopy(dur)
    dur_slow["benches"]["bench_table1"][0][
        "p99_durable_commit_latency"] = 750.0
    regs, _ = compare(dur, dur_slow, 0.50)
    if not any("p99_durable_commit_latency" in r for r in regs):
        failures.append("+25% p99 durable commit latency not detected")
    dur_near = copy.deepcopy(dur)
    dur_near["benches"]["bench_table1"][0][
        "p99_durable_commit_latency"] = 650.0
    regs, _ = compare(dur, dur_near, 0.50)
    if regs:
        failures.append(f"+8% durable p99 inside budget flagged: {regs}")
    regs, _ = compare(base, dur, 0.50)
    if any("p99_durable_commit_latency" in r for r in regs):
        failures.append("one-sided p99_durable_commit_latency compared")

    # 10. A vanished row must be a regression.
    gone = copy.deepcopy(base)
    gone["benches"]["bench_table1"].pop(0)
    regs, _ = compare(base, gone, 0.10)
    if not any("row gone" in r for r in regs):
        failures.append("missing row not detected")

    for f in failures:
        print(f"self-test FAIL: {f}", file=sys.stderr)
    print("self-test: " + ("ok" if not failures else
                           f"{len(failures)} failure(s)"))
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(
        description="Diff two ptm-benchsuite-v1 baselines.")
    ap.add_argument("old", nargs="?", help="baseline (old) suite JSON")
    ap.add_argument("new", nargs="?", help="candidate (new) suite JSON")
    ap.add_argument("--report-threshold", type=float, default=10.0,
                    metavar="PCT",
                    help="report (not fail) other metric drifts beyond "
                         "this percentage (default 10)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the threshold logic on crafted pairs")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.old or not args.new:
        ap.error("OLD and NEW baseline files are required")

    docs = []
    for path in (args.old, args.new):
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {path}: {e}", file=sys.stderr)
            return 2
        if doc.get("schema") != "ptm-benchsuite-v1":
            print(f"error: {path}: bad schema tag "
                  f"{doc.get('schema')!r}", file=sys.stderr)
            return 2
        docs.append(doc)
    old, new = docs

    if old.get("smoke") != new.get("smoke"):
        print("error: comparing a smoke baseline against a full-scale "
              "one is meaningless", file=sys.stderr)
        return 2

    regressions, notes = compare(old, new,
                                 args.report_threshold / 100.0)
    for n in notes:
        print(f"note: {n}")
    for r in regressions:
        print(f"REGRESSION: {r}")
    print(f"{args.old} ({old.get('label')}) -> {args.new} "
          f"({new.get('label')}): {len(regressions)} regression(s), "
          f"{len(notes)} note(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
