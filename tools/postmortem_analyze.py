#!/usr/bin/env python3
"""Summarize a ptm-postmortem-v1 dump file.

Reads the concatenated JSON documents a forensics-armed run appends to
its --postmortem file and reports:

  * trigger mix — how many captures each trigger kind produced;
  * killer rankings — transactions ordered by conflicts won (kills),
    with their abort/attempt counts and lost ticks, aggregated over
    every record in the dump (each transaction counted once, from its
    latest snapshot);
  * chain-depth histogram — how deep the abort-causality chains ran,
    one sample per capture;
  * page pressure — which pages the recorded abort events named, and,
    when --stats points at the run's ptm-stats-v1 JSON, whether each
    one also appears in the heatmap's hot-page top-k (a page that
    dominates post-mortems but is missing there usually means the
    heatmap k is too small).

--json emits the same analysis as one machine-readable document.

Usage:
    postmortem_analyze.py DUMP_FILE [--stats STATS_JSON] [--top N]
                          [--json]
"""

import argparse
import json
import sys


def parse_docs(text):
    """Split a dump file of concatenated JSON documents."""
    docs = []
    dec = json.JSONDecoder()
    i, n = 0, len(text)
    while i < n:
        while i < n and text[i].isspace():
            i += 1
        if i >= n:
            break
        doc, end = dec.raw_decode(text, i)
        docs.append(doc)
        i = end
    return docs


def analyze(docs, stats_doc=None, top=10):
    """Aggregate the dump into one analysis dict."""
    triggers = {}
    depth_hist = {}
    # Latest snapshot per transaction: records are point-in-time
    # copies, so a tx seen in several captures keeps the newest one.
    records = {}
    pages = {}
    for doc in docs:
        kind = doc.get("trigger", {}).get("kind", "?")
        triggers[kind] = triggers.get(kind, 0) + 1
        depth = doc.get("chain_depth", 0)
        depth_hist[depth] = depth_hist.get(depth, 0) + 1
        for rec in doc.get("records", []):
            records[rec.get("tx")] = rec
        for node in doc.get("nodes", []):
            page = node.get("page", -1)
            if isinstance(page, int) and page >= 0:
                pages[page] = pages.get(page, 0) + 1

    killers = sorted(
        (r for r in records.values() if r.get("kills", 0)),
        key=lambda r: (-r.get("kills", 0), r.get("tx", 0)))[:top]

    hot = set()
    hot_available = False
    if stats_doc is not None:
        conflicts = stats_doc.get("hot_pages", {}).get("conflicts", {})
        entries = conflicts.get("pages")
        if isinstance(entries, list):
            hot_available = True
            hot = {e.get("page") for e in entries}

    page_rows = []
    for page, count in sorted(pages.items(),
                              key=lambda kv: (-kv[1], kv[0]))[:top]:
        row = {"page": page, "abort_events": count}
        if hot_available:
            row["in_heatmap_topk"] = page in hot
        page_rows.append(row)

    return {
        "captures": len(docs),
        "triggers": triggers,
        "repro": docs[0].get("repro", "") if docs else "",
        "killers": [
            {"tx": r.get("tx"), "kills": r.get("kills", 0),
             "attempts": r.get("attempts", 0),
             "aborts": r.get("aborts", 0),
             "lost_ticks": r.get("lost_ticks", 0),
             "wasted_ticks": r.get("wasted_ticks", 0),
             "committed": r.get("committed", False)}
            for r in killers],
        "chain_depth_histogram": {
            str(d): depth_hist[d] for d in sorted(depth_hist)},
        "pages": page_rows,
        "heatmap_crossref": hot_available,
    }


def print_report(a):
    print(f"captures: {a['captures']}")
    for kind in sorted(a["triggers"]):
        print(f"  {kind}: {a['triggers'][kind]}")
    if a["repro"]:
        print(f"repro: {a['repro']}")

    print("\nkiller ranking (by conflicts won):")
    if not a["killers"]:
        print("  none recorded")
    for r in a["killers"]:
        tail = " (committed)" if r["committed"] else ""
        print(f"  tx {r['tx']}: kills {r['kills']} "
              f"attempts {r['attempts']} aborts {r['aborts']} "
              f"lost {r['lost_ticks']} wasted {r['wasted_ticks']}"
              f"{tail}")

    print("\nchain depth histogram:")
    hist = a["chain_depth_histogram"]
    peak = max(hist.values(), default=1)
    for depth in sorted(hist, key=int):
        n = hist[depth]
        bar = "#" * max(1, round(40 * n / peak))
        print(f"  depth {depth:>2}: {n:>4} {bar}")

    print("\npage pressure (abort events naming the page):")
    if not a["pages"]:
        print("  no pages recorded")
    for row in a["pages"]:
        note = ""
        if "in_heatmap_topk" in row:
            note = ("  [heatmap top-k]" if row["in_heatmap_topk"]
                    else "  [NOT in heatmap top-k]")
        print(f"  page {row['page']}: {row['abort_events']}{note}")
    if a["pages"] and not a["heatmap_crossref"]:
        print("  (pass --stats with a --heatmap run's JSON to "
              "cross-reference the hot-page top-k)")


def main():
    ap = argparse.ArgumentParser(
        description="Summarize a ptm-postmortem-v1 dump file.")
    ap.add_argument("dump", help="file written by --postmortem")
    ap.add_argument("--stats", metavar="JSON",
                    help="ptm-stats-v1 JSON of the same run, for the "
                         "hot-page cross-reference")
    ap.add_argument("--top", type=int, default=10, metavar="N",
                    help="rows per ranking (default 10)")
    ap.add_argument("--json", action="store_true",
                    help="emit the analysis as JSON")
    args = ap.parse_args()

    try:
        with open(args.dump) as f:
            docs = parse_docs(f.read())
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read dump: {e}", file=sys.stderr)
        return 1
    if not docs:
        print("error: dump holds no post-mortem documents",
              file=sys.stderr)
        return 1

    stats_doc = None
    if args.stats:
        try:
            with open(args.stats) as f:
                stats_doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot read stats json: {e}",
                  file=sys.stderr)
            return 1

    a = analyze(docs, stats_doc, top=args.top)
    if args.json:
        json.dump(a, sys.stdout, indent=2)
        print()
    else:
        print_report(a)
    return 0


if __name__ == "__main__":
    sys.exit(main())
