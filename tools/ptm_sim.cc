/**
 * @file
 * ptm_sim — command-line front end for the simulator.
 *
 * Runs one workload kernel on one system configuration and prints the
 * statistics, e.g.:
 *
 *     ptm_sim --workload ocean --system sel-ptm --threads 4
 *     ptm_sim --workload radix --system sel-ptm --gran wd:cache+mem
 *     ptm_sim --workload fft --system vtm --seed 7 --scale 0
 *     ptm_sim --workload fft --system vc-vtm --stats-json out.json
 *     ptm_sim --workload kv --wl-opt zipf=0.9 --wl-opt tx-ops=16
 *     ptm_sim --list-workloads
 *
 * With `--stats-json FILE` the full statistics registry plus a run
 * manifest is written as ptm-stats-v1 JSON; FILE may be `-` for
 * stdout, in which case the human-readable summary is suppressed so
 * the output can be piped straight into jq.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "harness/profile_io.hh"
#include "harness/stats_io.hh"
#include "harness/trace_io.hh"
#include "persist/recover.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace ptm;

    std::string workload = "fft";
    std::string json_path;
    SystemParams prm;
    prm.tmKind = TmKind::SelectPtm;
    unsigned threads = 4;
    int scale = 1;

    OptionTable opts("ptm_sim",
                     "Run one workload kernel on one simulated system "
                     "and report its statistics.");
    opts.optionString("workload", "NAME", workloadNameList(), workload);
    opts.option("system", "KIND",
                "serial | locks | copy-ptm | sel-ptm | vtm | vc-vtm "
                "(default sel-ptm)",
                [&](const std::string &v) {
                    return parseTmKind(v, prm.tmKind);
                });
    opts.option("gran", "MODE", "blk | wd:cache | wd:cache+mem",
                [&](const std::string &v) {
                    return parseGranularity(v, prm.granularity);
                });
    opts.optionUnsigned("threads", "N", "worker threads (default 4)",
                        threads);
    opts.optionUnsigned("cores", "N", "CPU cores (default 4)",
                        prm.numCores);
    opts.optionInt("scale", "N", "0 = tiny test size, 1 = benchmark size",
                   scale);
    opts.optionU64("seed", "N", "workload RNG seed (default 1)",
                   prm.seed);
    opts.optionU64("quantum", "N", "OS time slice in cycles (0 = off)",
                   prm.osQuantum);
    opts.optionU64("daemon", "N", "daemon preemption interval (0 = off)",
                   prm.daemonInterval);
    opts.flag("swap", "enable OS swapping",
              [&] { prm.swapEnabled = true; });
    opts.optionU64("frames", "N", "physical memory frames",
                   prm.physFrames);
    opts.flag("lazy-migrate", "Select-PTM lazy shadow freeing",
              [&] { prm.shadowFree = ShadowFreePolicy::LazyMigrate; });
    opts.flag("flush-ctxsw", "flush tx cache lines on context switch",
              [&] { prm.flushOnContextSwitch = true; });
    opts.optionString("stats-json", "FILE",
                      "write ptm-stats-v1 JSON to FILE (- = stdout)",
                      json_path);
    addPersistOptions(opts, prm.persist);
    std::string recover_path;
    opts.option("recover", "FILE",
                "recover and verify the crash dump at FILE (written "
                "by --wal-file), then exit",
                [&](const std::string &v) {
                    if (v.empty())
                        return false;
                    recover_path = v;
                    return true;
                });
    WorkloadOptList wl_opts;
    addWorkloadOptions(opts, wl_opts);
    addTraceOptions(opts, prm.trace);
    addProfileOptions(opts, prm.profile);
    RobustnessParams robust;
    addRobustnessOptions(opts, robust);
    MachineParams machine;
    addMachineOptions(opts, machine);
    ObservabilityParams obs;
    addObservabilityOptions(opts, obs);
    addForensicsOptions(opts, obs.forensics);
    bool list_stats = false;
    opts.flag("list-stats",
              "list every statistic of the configured system and exit",
              [&] { list_stats = true; });
    opts.exitFlag("list", "list workload names and exit", [&] {
        for (const WorkloadInfo *info :
             WorkloadRegistry::instance().all())
            std::printf("%s\n", info->name.c_str());
    });

    switch (opts.parse(argc, argv)) {
      case CliStatus::Ok:
        break;
      case CliStatus::Exit:
        return 0;
      case CliStatus::Error:
        return 2;
    }

    if (!recover_path.empty())
        return recoverRun(recover_path);

    robust.applyTo(prm);
    obs.applyTo(prm);
    machine.applyTo(prm);

    if (std::string err = validateParams(prm); !err.empty()) {
        std::fprintf(stderr, "ptm_sim: %s\n", err.c_str());
        return 2;
    }

    if (list_stats) {
        System sys(prm);
        printStatList(sys.registry());
        return 0;
    }

    // At most one machine-readable stream may own stdout, and no two
    // may share one file (they are written at different times, so the
    // later open would silently clobber the earlier output).
    if (!checkOutputSinks("ptm_sim",
                          {{"--stats-json", json_path},
                           {"--trace", prm.trace.path},
                           {"--timeseries", prm.timeseries.path},
                           {"--postmortem",
                            prm.forensics.postmortemPath},
                           {"--wal-file", prm.persist.walPath}}))
        return 2;

    // Keep stdout machine-readable when either output goes there.
    if (json_path == "-" || prm.trace.path == "-")
        setInformToStderr(true);

    auto t0 = std::chrono::steady_clock::now();
    ExperimentResult r =
        runWorkload(workload, prm, scale, threads, wl_opts);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    const StatSnapshot &s = r.snapshot;

    // Machine-readable output on stdout replaces the human summary.
    bool human = json_path != "-" && prm.trace.path != "-";
    if (human) {
        std::printf("workload          %s (scale %d, %u threads, seed "
                    "%llu)\n",
                    workload.c_str(), scale, threads,
                    (unsigned long long)prm.seed);
        std::printf("system            %s", tmKindName(prm.tmKind));
        if (prm.tmKind == TmKind::SelectPtm ||
            prm.tmKind == TmKind::CopyPtm)
            std::printf(" / %s", granularityName(prm.granularity));
        std::printf("\n");
        std::printf("cycles            %llu\n",
                    (unsigned long long)r.cycles);
        if (r.crashed)
            std::printf("crashed           at tick %llu (%llu durable "
                        "log bytes%s)\n",
                        (unsigned long long)r.crashTick,
                        (unsigned long long)r.walDurableBytes,
                        prm.persist.walPath.empty()
                            ? ""
                            : "; recover with --recover");
        else
            std::printf("verified          %s\n",
                        r.verified ? "yes" : "NO");
        if (prm.persist.enabled())
            std::printf("durable commits   %llu (%llu log bytes, "
                        "%llu stall ticks)\n",
                        (unsigned long long)
                            s.counter("persist.commits_persisted"),
                        (unsigned long long)
                            s.counter("persist.log_bytes"),
                        (unsigned long long)
                            s.counter("persist.flush_stall_ticks"));
        if (prm.audit.enabled)
            std::printf("audit             %llu passes, %zu violations\n",
                        (unsigned long long)r.auditChecks,
                        r.auditViolations.size());
        std::printf("memOps            %llu\n",
                    (unsigned long long)s.counter("sys.mem_ops"));
        std::printf("commits/aborts    %llu / %llu\n",
                    (unsigned long long)s.counter("tx.commits"),
                    (unsigned long long)s.counter("tx.aborts"));
        std::printf("conflicts/stalls  %llu / %llu\n",
                    (unsigned long long)s.counter("mem.conflicts"),
                    (unsigned long long)s.counter("mem.false_stalls"));
        std::printf("L2 evictions      %llu (tx: %llu)\n",
                    (unsigned long long)s.counter("mem.evictions"),
                    (unsigned long long)s.counter("mem.tx_evictions"));
        std::printf("bus transactions  %llu\n",
                    (unsigned long long)
                        s.counter("mem.bus_transactions"));
        std::printf("dram accesses     %llu\n",
                    (unsigned long long)s.counter("mem.dram_accesses"));
        std::printf("exceptions        %llu\n",
                    (unsigned long long)s.counter("os.exceptions"));
        std::printf("context switches  %llu\n",
                    (unsigned long long)s.counter("os.context_switches"));
        std::printf("pages / pg-x-wr   %llu / %llu\n",
                    (unsigned long long)s.counter("os.pages"),
                    (unsigned long long)s.counter("os.pg_x_wr"));
        std::uint64_t swap_out = s.counter("os.swap_outs");
        std::uint64_t swap_in = s.counter("os.swap_ins");
        if (swap_out || swap_in)
            std::printf("swap out/in       %llu / %llu\n",
                        (unsigned long long)swap_out,
                        (unsigned long long)swap_in);
        if (s.has("vts.shadow_allocs")) {
            std::printf("shadow pages      %llu allocated, %llu freed, "
                        "%llu live\n",
                        (unsigned long long)
                            s.counter("vts.shadow_allocs"),
                        (unsigned long long)
                            s.counter("vts.shadow_frees"),
                        (unsigned long long)
                            s.counter("vts.live_shadow_pages"));
            std::printf("SPT cache         %llu hits / %llu misses\n",
                        (unsigned long long)
                            s.counter("vts.spt_cache_hits"),
                        (unsigned long long)
                            s.counter("vts.spt_cache_misses"));
            std::printf("TAV cache         %llu hits / %llu misses\n",
                        (unsigned long long)
                            s.counter("vts.tav_cache_hits"),
                        (unsigned long long)
                            s.counter("vts.tav_cache_misses"));
        }
        if (r.heatmap.enabled && r.heatmap.conflictsTotal) {
            std::printf("hot pages         ");
            unsigned shown = 0;
            for (const auto &e : r.heatmap.conflictPages) {
                if (shown == 3)
                    break;
                if (shown)
                    std::printf(", ");
                if (e.key == invalidPage)
                    std::printf("?(%llu)",
                                (unsigned long long)e.count);
                else
                    std::printf("%llu(%llu)",
                                (unsigned long long)e.key,
                                (unsigned long long)e.count);
                ++shown;
            }
            std::printf("  [page(conflicts), %llu total]\n",
                        (unsigned long long)r.heatmap.conflictsTotal);
        }
        if (r.forensics.enabled) {
            std::printf("flight recorder   %llu live, %llu retired, "
                        "%llu postmortems, deepest chain %u\n",
                        (unsigned long long)r.forensics.liveRecords,
                        (unsigned long long)r.forensics.retiredRecords,
                        (unsigned long long)r.forensics.postmortems,
                        r.forensics.deepestChain);
            if (r.forensics.droppedRecords)
                std::printf("warning: flight recorder dropped %llu "
                            "retired records; forensics are truncated "
                            "(raise --flightrec-depth)\n",
                            (unsigned long long)
                                r.forensics.droppedRecords);
        }
        if (s.has("vtm.xadt_inserts")) {
            std::printf("XADT inserts      %llu\n",
                        (unsigned long long)
                            s.counter("vtm.xadt_inserts"));
            std::printf("commit copybacks  %llu\n",
                        (unsigned long long)s.counter("vtm.copybacks"));
            std::printf("XF filtered       %llu\n",
                        (unsigned long long)s.counter("vtm.xf_filtered"));
        }
    }

    // The profile tables go to stderr when stdout carries a machine
    // stream, so --profile composes with --stats-json - / --trace -.
    std::FILE *prof_out = human ? stdout : stderr;
    printProfileTable(prof_out, r.profile);
    printHostProfile(prof_out, r.host);

    if (!json_path.empty()) {
        RunManifest m;
        m.tool = "ptm_sim";
        m.workload = workload;
        m.workloadOptions = r.resolvedOptions;
        m.threads = threads;
        m.scale = scale;
        m.cycles = r.cycles;
        m.verified = r.verified;
        m.wallSeconds = wall;
        m.eventsPerSec =
            wall > 0 ? s.value("events.executed") / wall : 0;
        m.simEventsPerSec =
            r.wallSeconds > 0 ? r.eventsExecuted / r.wallSeconds : 0;
        m.simTicksPerWallSec = wall > 0 ? double(r.cycles) / wall : 0;
        m.params = &prm;
        std::string err;
        if (!writeRunJson(json_path, m, s, &err, &r.profile, &r.host,
                          &r.heatmap, &r.forensics)) {
            std::fprintf(stderr, "ptm_sim: %s\n", err.c_str());
            return 2;
        }
        if (human)
            std::printf("stats json        %s\n", json_path.c_str());
    }

    if (!prm.trace.path.empty()) {
        std::string err;
        if (!writeTrace(prm.trace.path, prm.trace.format, {r.trace},
                        &err)) {
            std::fprintf(stderr, "ptm_sim: %s\n", err.c_str());
            return 2;
        }
        if (human)
            std::printf("trace             %s (%llu events, %llu "
                        "dropped)\n",
                        prm.trace.path.c_str(),
                        (unsigned long long)r.trace.events.size(),
                        (unsigned long long)r.trace.dropped);
    }
    std::size_t violations =
        reportAuditViolations("ptm_sim", workload, prm, r);
    // A crash cut is an injected fault, not a failure: the run has no
    // final state to verify in-process — recovery verifies the dump.
    return ((r.verified || r.crashed) && violations == 0) ? 0 : 1;
}
