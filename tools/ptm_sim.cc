/**
 * @file
 * ptm_sim — command-line front end for the simulator.
 *
 * Runs one workload kernel on one system configuration and prints the
 * statistics, e.g.:
 *
 *     ptm_sim --workload ocean --system sel-ptm --threads 4
 *     ptm_sim --workload radix --system sel-ptm --gran wd:cache+mem
 *     ptm_sim --workload fft --system vtm --seed 7 --scale 0
 *     ptm_sim --list
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "harness/experiment.hh"

namespace
{

using namespace ptm;

void
usage()
{
    std::printf(
        "usage: ptm_sim [options]\n"
        "  --workload NAME   fft | lu | radix | ocean | water\n"
        "  --system KIND     serial | locks | copy-ptm | sel-ptm |\n"
        "                    vtm | vc-vtm            (default sel-ptm)\n"
        "  --gran MODE       blk | wd:cache | wd:cache+mem\n"
        "  --threads N       worker threads          (default 4)\n"
        "  --cores N         CPU cores               (default 4)\n"
        "  --scale N         0 = tiny test size, 1 = benchmark size\n"
        "  --seed N          workload RNG seed       (default 1)\n"
        "  --quantum N       OS time slice in cycles (0 = off)\n"
        "  --daemon N        daemon preemption interval (0 = off)\n"
        "  --swap            enable OS swapping\n"
        "  --frames N        physical memory frames\n"
        "  --lazy-migrate    Select-PTM lazy shadow freeing\n"
        "  --flush-ctxsw     flush tx cache lines on context switch\n"
        "  --list            list workloads and exit\n");
}

bool
parseKind(const std::string &s, TmKind &out)
{
    if (s == "serial")
        out = TmKind::Serial;
    else if (s == "locks")
        out = TmKind::Locks;
    else if (s == "copy-ptm")
        out = TmKind::CopyPtm;
    else if (s == "sel-ptm")
        out = TmKind::SelectPtm;
    else if (s == "vtm")
        out = TmKind::Vtm;
    else if (s == "vc-vtm")
        out = TmKind::VcVtm;
    else
        return false;
    return true;
}

bool
parseGran(const std::string &s, Granularity &out)
{
    if (s == "blk")
        out = Granularity::Block;
    else if (s == "wd:cache")
        out = Granularity::WordCache;
    else if (s == "wd:cache+mem")
        out = Granularity::WordCacheMem;
    else
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ptm;

    std::string workload = "fft";
    SystemParams prm;
    prm.tmKind = TmKind::SelectPtm;
    unsigned threads = 4;
    int scale = 1;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (a == "--workload") {
            workload = next();
        } else if (a == "--system") {
            if (!parseKind(next(), prm.tmKind)) {
                usage();
                return 1;
            }
        } else if (a == "--gran") {
            if (!parseGran(next(), prm.granularity)) {
                usage();
                return 1;
            }
        } else if (a == "--threads") {
            threads = unsigned(std::stoul(next()));
        } else if (a == "--cores") {
            prm.numCores = unsigned(std::stoul(next()));
        } else if (a == "--scale") {
            scale = std::stoi(next());
        } else if (a == "--seed") {
            prm.seed = std::stoull(next());
        } else if (a == "--quantum") {
            prm.osQuantum = std::stoull(next());
        } else if (a == "--daemon") {
            prm.daemonInterval = std::stoull(next());
        } else if (a == "--swap") {
            prm.swapEnabled = true;
        } else if (a == "--frames") {
            prm.physFrames = std::stoull(next());
        } else if (a == "--lazy-migrate") {
            prm.shadowFree = ShadowFreePolicy::LazyMigrate;
        } else if (a == "--flush-ctxsw") {
            prm.flushOnContextSwitch = true;
        } else if (a == "--list") {
            for (const auto &w : workloadNames())
                std::printf("%s\n", w.c_str());
            return 0;
        } else {
            usage();
            return a == "--help" || a == "-h" ? 0 : 1;
        }
    }

    ExperimentResult r = runWorkload(workload, prm, scale, threads);
    const RunStats &s = r.stats;

    std::printf("workload          %s (scale %d, %u threads, seed "
                "%llu)\n",
                workload.c_str(), scale, threads,
                (unsigned long long)prm.seed);
    std::printf("system            %s", tmKindName(prm.tmKind));
    if (prm.tmKind == TmKind::SelectPtm || prm.tmKind == TmKind::CopyPtm)
        std::printf(" / %s", granularityName(prm.granularity));
    std::printf("\n");
    std::printf("cycles            %llu\n", (unsigned long long)r.cycles);
    std::printf("verified          %s\n", r.verified ? "yes" : "NO");
    std::printf("memOps            %llu\n", (unsigned long long)s.memOps);
    std::printf("commits/aborts    %llu / %llu\n",
                (unsigned long long)s.commits,
                (unsigned long long)s.aborts);
    std::printf("conflicts/stalls  %llu / %llu\n",
                (unsigned long long)s.conflicts,
                (unsigned long long)s.stalls);
    std::printf("L2 evictions      %llu (tx: %llu)\n",
                (unsigned long long)s.evictions,
                (unsigned long long)s.txEvictions);
    std::printf("bus transactions  %llu\n",
                (unsigned long long)s.busTransactions);
    std::printf("dram accesses     %llu\n",
                (unsigned long long)s.dramAccesses);
    std::printf("exceptions        %llu\n",
                (unsigned long long)s.exceptions);
    std::printf("context switches  %llu\n",
                (unsigned long long)s.contextSwitches);
    std::printf("pages / pg-x-wr   %llu / %llu\n",
                (unsigned long long)s.uniquePages,
                (unsigned long long)s.txWrittenPages);
    if (s.swapOuts || s.swapIns)
        std::printf("swap out/in       %llu / %llu\n",
                    (unsigned long long)s.swapOuts,
                    (unsigned long long)s.swapIns);
    if (prm.tmKind == TmKind::SelectPtm ||
        prm.tmKind == TmKind::CopyPtm) {
        std::printf("shadow pages      %llu allocated, %llu freed, "
                    "%llu live\n",
                    (unsigned long long)s.shadowAllocs,
                    (unsigned long long)s.shadowFrees,
                    (unsigned long long)s.liveShadowPages);
        std::printf("SPT cache         %llu hits / %llu misses\n",
                    (unsigned long long)s.sptCacheHits,
                    (unsigned long long)s.sptCacheMisses);
        std::printf("TAV cache         %llu hits / %llu misses\n",
                    (unsigned long long)s.tavCacheHits,
                    (unsigned long long)s.tavCacheMisses);
    }
    if (prm.tmKind == TmKind::Vtm || prm.tmKind == TmKind::VcVtm) {
        std::printf("XADT inserts      %llu\n",
                    (unsigned long long)s.xadtEntries);
        std::printf("commit copybacks  %llu\n",
                    (unsigned long long)s.xadtCopybacks);
        std::printf("XF filtered       %llu\n",
                    (unsigned long long)s.xfFiltered);
    }
    return r.verified ? 0 : 1;
}
