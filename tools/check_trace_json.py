#!/usr/bin/env python3
"""Validator for the simulator's trace output.

Two modes:

  check_trace_json.py validate FILE [--require-slice] [--require-flow]
                                    [--require-counter]
      Validate one trace file. The format is auto-detected: a
      ptm-trace-v1 JSONL stream (one object per line, schema header
      first) or a Chrome trace-event JSON object (a "traceEvents"
      array, as loaded by Perfetto / chrome://tracing). The --require-*
      flags additionally demand at least one transaction duration
      slice, one conflict flow pair, and one counter track sample.

  check_trace_json.py drive PTM_SIM
      Run PTM_SIM on the tiny fft workload for every system kind,
      tracing in both formats, and validate each file.

Exits non-zero with a message per failure if any check fails.
"""

import json
import os
import subprocess
import sys
import tempfile

SYSTEMS = ["serial", "locks", "copy-ptm", "sel-ptm", "vtm", "vc-vtm"]

EVENT_NAMES = {
    "tx_begin", "tx_restart", "tx_commit", "tx_abort", "conflict_edge",
    "spt_hit", "spt_miss", "spt_evict", "tav_hit", "tav_miss",
    "tav_evict", "walk_start", "walk_end", "shadow_alloc",
    "shadow_free", "sel_flip", "page_fault", "swap_out", "swap_in",
    "overflow_spill", "line_evict", "writeback", "ctx_switch",
    "watchpoint", "counter_sample", "chaos_inject", "watchdog_trip",
    "starvation_grant",
}

CATEGORIES = {
    "tx", "conflict", "meta", "page", "cache", "os", "watch", "sample",
    "chaos",
}

# Optional event-line fields and the JSON types they must carry.
EV_FIELDS = {
    "core": int, "th": int, "tx": int, "tx2": int,
    "a": int, "b": int, "v": (int, float),
}


def check_jsonl(lines, label):
    """Validate a ptm-trace-v1 stream; returns a list of errors."""
    errors = []
    try:
        header = json.loads(lines[0])
    except (json.JSONDecodeError, IndexError) as e:
        return [f"{label}: bad header line: {e}"]
    if header.get("schema") != "ptm-trace-v1":
        errors.append(f"{label}: bad schema tag "
                      f"{header.get('schema')!r}")
    if not isinstance(header.get("git"), str):
        errors.append(f"{label}: header missing git string")
    captures = header.get("captures")
    if not isinstance(captures, int) or captures < 0:
        errors.append(f"{label}: bad captures count {captures!r}")

    seen_captures = 0
    cur_events = 0
    cur_meta = None
    # Ticks must be nondecreasing per (capture, core) — the ring is
    # recorded in tick order and snapshotted oldest-first.
    last_tick = {}
    for n, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{label}:{n}: invalid JSON: {e}")
            continue
        ty = obj.get("type")
        if ty == "capture":
            if cur_meta is not None and cur_events > cur_meta:
                errors.append(
                    f"{label}: capture has {cur_events} events, "
                    f"more than its recorded={cur_meta}")
            seen_captures += 1
            cur_events = 0
            last_tick = {}
            if not isinstance(obj.get("label"), str):
                errors.append(f"{label}:{n}: capture missing label")
            for field in ("recorded", "dropped"):
                if not isinstance(obj.get(field), int):
                    errors.append(
                        f"{label}:{n}: capture missing {field!r}")
            series = obj.get("series")
            if not isinstance(series, list) or any(
                    not isinstance(s, str) for s in series):
                errors.append(
                    f"{label}:{n}: capture series not a string list")
            cur_meta = obj.get("recorded", 0)
        elif ty == "ev":
            if seen_captures == 0:
                errors.append(
                    f"{label}:{n}: event before any capture line")
            cur_events += 1
            tick = obj.get("t")
            if not isinstance(tick, int) or tick < 0:
                errors.append(f"{label}:{n}: bad tick {tick!r}")
                continue
            if obj.get("ev") not in EVENT_NAMES:
                errors.append(
                    f"{label}:{n}: unknown event {obj.get('ev')!r}")
            if obj.get("cat") not in CATEGORIES:
                errors.append(
                    f"{label}:{n}: unknown category "
                    f"{obj.get('cat')!r}")
            for field, want in EV_FIELDS.items():
                if field in obj and not isinstance(obj[field], want):
                    errors.append(
                        f"{label}:{n}: field {field!r} has type "
                        f"{type(obj[field]).__name__}")
            core = obj.get("core", -1)
            if tick < last_tick.get(core, 0):
                errors.append(
                    f"{label}:{n}: tick {tick} goes backwards on "
                    f"core {core}")
            last_tick[core] = tick
            extra = set(obj) - {"type", "t", "ev", "cat"} - set(EV_FIELDS)
            if extra:
                errors.append(
                    f"{label}:{n}: unexpected fields {sorted(extra)}")
        else:
            errors.append(f"{label}:{n}: unknown line type {ty!r}")
    if seen_captures != captures:
        errors.append(
            f"{label}: header says {captures} captures, found "
            f"{seen_captures}")
    return errors


def check_chrome(doc, label, require_slice=False, require_flow=False,
                 require_counter=False):
    """Validate a Chrome trace-event object; returns errors."""
    errors = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{label}: no traceEvents array"]

    begins = ends = flows_s = flows_f = counters = 0
    # Per-(pid, tid) stack depth: every E must close an open B and the
    # stream is sorted, so depth never goes negative.
    depth = {}
    last_ts = None
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in ("B", "E", "i", "s", "f", "C", "M"):
            errors.append(f"{label}: event {i} has bad ph {ph!r}")
            continue
        if ph != "M":
            ts = e.get("ts")
            if not isinstance(ts, (int, float)):
                errors.append(f"{label}: event {i} has bad ts")
                continue
            if last_ts is not None and ts < last_ts:
                errors.append(
                    f"{label}: event {i} ts {ts} < previous {last_ts}")
            last_ts = ts
        track = (e.get("pid"), e.get("tid"))
        if ph == "B":
            begins += 1
            depth[track] = depth.get(track, 0) + 1
            if not e.get("name", "").startswith("tx "):
                errors.append(
                    f"{label}: slice {i} has odd name "
                    f"{e.get('name')!r}")
        elif ph == "E":
            ends += 1
            depth[track] = depth.get(track, 0) - 1
            if depth[track] < 0:
                errors.append(
                    f"{label}: event {i}: E without open B on "
                    f"track {track}")
        elif ph == "s":
            flows_s += 1
        elif ph == "f":
            flows_f += 1
            if e.get("bp") != "e":
                errors.append(
                    f"{label}: flow finish {i} missing bp=e")
        elif ph == "C":
            counters += 1

    if begins != ends:
        errors.append(
            f"{label}: {begins} B slices vs {ends} E slices")
    for track, d in depth.items():
        if d != 0:
            errors.append(
                f"{label}: track {track} left {d} slices open")
    if flows_s != flows_f:
        errors.append(
            f"{label}: {flows_s} flow starts vs {flows_f} finishes")
    if require_slice and begins == 0:
        errors.append(f"{label}: no transaction slices")
    if require_flow and flows_s == 0:
        errors.append(f"{label}: no conflict flow events")
    if require_counter and counters == 0:
        errors.append(f"{label}: no counter samples")
    return errors


def check_file(path, label=None, require_slice=False,
               require_flow=False, require_counter=False):
    label = label or os.path.basename(path)
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        return [f"{label}: {e}"]
    if not text.strip():
        return [f"{label}: empty file"]
    # Chrome output is one JSON object; JSONL's first line is an
    # object too, but the whole file is not.
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "traceEvents" in doc:
        return check_chrome(doc, label, require_slice, require_flow,
                            require_counter)
    errors = check_jsonl(text.splitlines(), label)
    if require_slice or require_flow or require_counter:
        errors.append(
            f"{label}: --require-* flags apply to chrome format only")
    return errors


def drive(ptm_sim):
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        for system in SYSTEMS:
            for fmt in ("jsonl", "chrome"):
                out = os.path.join(tmp, f"{system}.{fmt}")
                cmd = [
                    ptm_sim, "--workload", "fft", "--system", system,
                    "--scale", "0", "--threads", "2",
                    "--trace", out, "--trace-format", fmt,
                ]
                proc = subprocess.run(cmd, capture_output=True,
                                      text=True)
                label = f"{system}/{fmt}"
                if proc.returncode != 0:
                    failures.append(
                        f"{label}: ptm_sim exited {proc.returncode}: "
                        f"{proc.stderr.strip()}")
                    continue
                errs = check_file(out, label)
                status = "ok" if not errs else f"{len(errs)} error(s)"
                print(f"{label:16s} {status}")
                failures.extend(errs)
    return failures


def main():
    args = sys.argv[1:]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    mode, args = args[0], args[1:]
    if mode == "drive":
        if len(args) != 1:
            print(__doc__, file=sys.stderr)
            return 2
        failures = drive(args[0])
    elif mode == "validate":
        flags = {a for a in args if a.startswith("--")}
        paths = [a for a in args if not a.startswith("--")]
        unknown = flags - {"--require-slice", "--require-flow",
                           "--require-counter"}
        if unknown or not paths:
            print(__doc__, file=sys.stderr)
            return 2
        failures = []
        for p in paths:
            errs = check_file(
                p,
                require_slice="--require-slice" in flags,
                require_flow="--require-flow" in flags,
                require_counter="--require-counter" in flags)
            status = "ok" if not errs else f"{len(errs)} error(s)"
            print(f"{os.path.basename(p):16s} {status}")
            failures.extend(errs)
    else:
        print(__doc__, file=sys.stderr)
        return 2
    for e in failures:
        print(f"error: {e}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
