#!/usr/bin/env python3
"""Determinism gate: two identical ptm_sim runs must agree exactly.

Runs ``ptm_sim --stats-json`` twice with the same configuration and
seed, then diffs the two ptm-stats-v1 documents field by field. Every
simulated quantity — cycles, commits, aborts, cache counters, walk
distributions — must be bit-identical; only host-side fields (wall
time, git revision) are ignored. Any other divergence means the
simulator's behavior depends on host state (iteration order, pointer
values, allocation reuse) and fails the gate.

Usage:
    check_determinism.py <ptm_sim> [extra args...]

With no extra args a default matrix of configurations is exercised.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

# Host-dependent manifest fields; everything else must match.
IGNORED_MANIFEST_FIELDS = ("wall_seconds", "git", "events_per_sec",
                          "sim_events_per_sec",
                          "sim_ticks_per_wall_sec")

DEFAULT_CONFIGS = [
    ["--workload", "fft", "--system", "sel-ptm", "--gran", "wd:cache",
     "--scale", "0", "--swap", "--quantum", "6000"],
    ["--workload", "radix", "--system", "copy-ptm", "--gran", "blk",
     "--scale", "0", "--daemon", "9000"],
    ["--workload", "lu", "--system", "sel-ptm",
     "--gran", "wd:cache+mem", "--scale", "0", "--lazy-migrate",
     "--profile"],
    ["--workload", "water", "--system", "vtm", "--scale", "0",
     "--swap"],
    # Wide machine: banked interconnect + direct-execution fast-forward
    # must stay deterministic too.
    ["--workload", "fft", "--system", "sel-ptm", "--scale", "0",
     "--cores", "16", "--mem-banks", "4", "--fast-forward"],
]


def run_once(sim, args, out):
    cmd = [sim, *args, "--stats-json", str(out)]
    res = subprocess.run(cmd, stdout=subprocess.PIPE,
                         stderr=subprocess.STDOUT, text=True)
    if res.returncode != 0:
        print(res.stdout)
        raise SystemExit(f"FAIL: {' '.join(cmd)} exited "
                         f"{res.returncode}")
    return json.loads(Path(out).read_text())


def scrub(doc):
    for field in IGNORED_MANIFEST_FIELDS:
        doc.get("manifest", {}).pop(field, None)
    return doc


def diff_paths(a, b, prefix=""):
    """Yield human-readable paths where two JSON values differ."""
    if type(a) is not type(b):
        yield f"{prefix}: type {type(a).__name__} vs {type(b).__name__}"
        return
    if isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            p = f"{prefix}.{k}" if prefix else str(k)
            if k not in a or k not in b:
                yield f"{p}: present in only one run"
            else:
                yield from diff_paths(a[k], b[k], p)
    elif isinstance(a, list):
        if len(a) != len(b):
            yield f"{prefix}: length {len(a)} vs {len(b)}"
            return
        for i, (x, y) in enumerate(zip(a, b)):
            yield from diff_paths(x, y, f"{prefix}[{i}]")
    elif a != b:
        yield f"{prefix}: {a!r} vs {b!r}"


def main():
    if len(sys.argv) < 2:
        raise SystemExit(__doc__)
    sim = sys.argv[1]
    extra = sys.argv[2:]
    configs = [extra] if extra else DEFAULT_CONFIGS

    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        for i, cfg in enumerate(configs):
            a = scrub(run_once(sim, cfg, Path(tmp) / f"{i}_a.json"))
            b = scrub(run_once(sim, cfg, Path(tmp) / f"{i}_b.json"))
            diffs = list(diff_paths(a, b))
            label = " ".join(cfg)
            if diffs:
                failures += 1
                print(f"FAIL [{label}]: {len(diffs)} divergent "
                      "field(s):")
                for d in diffs[:20]:
                    print(f"  {d}")
            else:
                print(f"OK   [{label}]")
    if failures:
        raise SystemExit(f"{failures} configuration(s) diverged "
                         "between identical runs")
    print(f"determinism: {len(configs)} configuration(s), repeat runs "
          "bit-identical")


if __name__ == "__main__":
    main()
