#!/usr/bin/env python3
"""Schema and reconciliation checker for ptm-timeseries-v1 streams.

Runs ptm_sim with --timeseries and --stats-json on the contended KV
workload (zipf 0.99) and validates the emitted JSONL stream:

  * exactly one header record, carrying schema/system/seed/cores/
    interval, before any interval record;
  * interval records with monotonically increasing n, contiguous
    [t0, t1) tick spans, host-throughput gauges, and exactly one
    trailing final=true flush record;
  * EXACT reconciliation: for every counter, the sum of its per-
    interval deltas equals the final total in the ptm-stats-v1 JSON
    of the same run, and likewise for every distribution's samples
    and sum — the stream provably loses nothing;
  * per-interval hot_pages arrays (the run enables --heatmap), with
    a non-empty array by the final record under zipf 0.99;
  * a control run without --timeseries must not create the file.

With --self-test the record validator runs against crafted streams
(bad schema, gap in tick coverage, duplicate final, missing gauges)
instead of driving the simulator.

Usage:
    check_timeseries_json.py PATH_TO_PTM_SIM
    check_timeseries_json.py --self-test
"""

import json
import os
import subprocess
import sys
import tempfile

HEADER_FIELDS = {
    "schema": str,
    "type": str,
    "system": str,
    "seed": (int, float),
    "cores": (int, float),
    "interval": (int, float),
}

INTERVAL_FIELDS = {
    "type": str,
    "n": int,
    "t0": int,
    "t1": int,
    "final": bool,
    "wall_seconds": (int, float),
    "events": int,
    "events_per_sec": (int, float),
    "ticks_per_wall_sec": (int, float),
    "events_per_tick": (int, float),
    "d": dict,
    "dist": dict,
}


def parse_stream(lines):
    """Parse one run's JSONL records; returns (header, intervals, errs).

    Structural validation only — reconciliation against the final
    stats is the caller's job.
    """
    errors = []
    header = None
    intervals = []
    for i, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"line {i}: invalid JSON: {e}")
            continue
        kind = rec.get("type")
        if kind == "header":
            if header is not None:
                errors.append(f"line {i}: duplicate header")
            if intervals:
                errors.append(f"line {i}: header after intervals")
            for field, ty in HEADER_FIELDS.items():
                if field not in rec:
                    errors.append(f"line {i}: header missing {field!r}")
                elif not isinstance(rec[field], ty):
                    errors.append(
                        f"line {i}: header.{field} has type "
                        f"{type(rec[field]).__name__}")
            if rec.get("schema") != "ptm-timeseries-v1":
                errors.append(
                    f"line {i}: bad schema tag {rec.get('schema')!r}")
            header = rec
        elif kind == "interval":
            if header is None:
                errors.append(f"line {i}: interval before header")
            for field, ty in INTERVAL_FIELDS.items():
                if field not in rec:
                    errors.append(
                        f"line {i}: interval missing {field!r}")
                elif not isinstance(rec[field], ty):
                    errors.append(
                        f"line {i}: interval.{field} has type "
                        f"{type(rec[field]).__name__}")
            intervals.append(rec)
        else:
            errors.append(f"line {i}: unknown record type {kind!r}")

    if header is None:
        errors.append("stream has no header record")
    if not intervals:
        errors.append("stream has no interval records")
        return header, intervals, errors

    # Interval sequencing: dense n, contiguous tick coverage, one
    # trailing final flush.
    prev_t1 = None
    for k, iv in enumerate(intervals):
        if iv.get("n") != k:
            errors.append(f"interval {k}: n={iv.get('n')} not dense")
        t0, t1 = iv.get("t0"), iv.get("t1")
        if isinstance(t0, int) and isinstance(t1, int) and t1 < t0:
            errors.append(f"interval {k}: t1 {t1} < t0 {t0}")
        if prev_t1 is not None and t0 != prev_t1:
            errors.append(
                f"interval {k}: t0 {t0} != previous t1 {prev_t1} "
                "(gap or overlap in tick coverage)")
        prev_t1 = t1
        is_last = k == len(intervals) - 1
        if bool(iv.get("final")) != is_last:
            errors.append(
                f"interval {k}: final={iv.get('final')} "
                f"(must be true on the last record only)")
        d = iv.get("d")
        if isinstance(d, dict):
            for path, delta in d.items():
                if not isinstance(delta, int) or delta <= 0:
                    errors.append(
                        f"interval {k}: d[{path!r}]={delta!r} "
                        "(deltas are positive integers; zero deltas "
                        "are omitted)")
    return header, intervals, errors


def reconcile(intervals, stats_doc):
    """Delta sums across the stream must equal the final stat totals."""
    errors = []
    sums = {}
    dist_sums = {}
    for iv in intervals:
        for path, delta in iv.get("d", {}).items():
            sums[path] = sums.get(path, 0) + delta
        for path, rec in iv.get("dist", {}).items():
            cur = dist_sums.setdefault(path, [0, 0.0])
            cur[0] += rec.get("samples", 0)
            cur[1] += rec.get("sum", 0.0)

    groups = stats_doc.get("groups", {})
    finals = {}
    dist_finals = {}
    for gname, stats in groups.items():
        for sname, stat in stats.items():
            path = f"{gname}.{sname}"
            if stat.get("kind") == "counter":
                finals[path] = stat.get("value", 0)
            elif stat.get("kind") == "distribution":
                dist_finals[path] = (stat.get("samples", 0),
                                     stat.get("sum", 0.0))

    for path, total in finals.items():
        if sums.get(path, 0) != total:
            errors.append(
                f"counter {path}: delta sum {sums.get(path, 0)} != "
                f"final total {total}")
    for path in sums:
        if path not in finals:
            errors.append(f"stream names unknown counter {path!r}")

    for path, (samples, total) in dist_finals.items():
        got = dist_sums.get(path, [0, 0.0])
        if got[0] != samples:
            errors.append(
                f"distribution {path}: sample delta sum {got[0]} != "
                f"final samples {samples}")
        # Sums are doubles accumulated in a different order; allow
        # only rounding-level slack.
        if abs(got[1] - total) > max(1e-6 * abs(total), 1e-6):
            errors.append(
                f"distribution {path}: sum of deltas {got[1]} != "
                f"final sum {total}")
    for path in dist_sums:
        if path not in dist_finals:
            errors.append(f"stream names unknown distribution {path!r}")
    return errors


def check_run(ptm_sim):
    errors = []
    with tempfile.TemporaryDirectory() as tmp:
        ts_path = os.path.join(tmp, "ts.jsonl")
        stats_path = os.path.join(tmp, "stats.json")
        cmd = [
            ptm_sim, "--workload", "kv", "--system", "sel-ptm",
            "--scale", "0", "--threads", "4",
            "--wl-opt", "zipf=0.99",
            "--timeseries", ts_path, "--timeseries-interval", "20000",
            "--stats-json", stats_path,
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            return [f"ptm_sim exited {proc.returncode}: "
                    f"{proc.stderr.strip()}"]
        try:
            with open(ts_path) as f:
                lines = f.readlines()
        except OSError as e:
            return [f"timeseries file not written: {e}"]
        try:
            with open(stats_path) as f:
                stats_doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            return [f"stats json not readable: {e}"]

        header, intervals, errs = parse_stream(lines)
        errors.extend(errs)
        if errs:
            return errors

        errors.extend(reconcile(intervals, stats_doc))

        if header.get("system") != "sel-ptm":
            errors.append(
                f"header.system {header.get('system')!r} != 'sel-ptm'")
        interval = header.get("interval")
        if interval != 20000:
            errors.append(
                f"header.interval {interval!r} != --timeseries-interval")
        # Every non-final interval spans exactly the configured period.
        for k, iv in enumerate(intervals[:-1]):
            if iv["t1"] - iv["t0"] != interval:
                errors.append(
                    f"interval {k}: span {iv['t1'] - iv['t0']} != "
                    f"configured {interval}")

        # The stream must cover the whole run: the final record's t1
        # is at or past the manifest cycle count.
        cycles = stats_doc.get("manifest", {}).get("cycles", 0)
        if intervals[-1]["t1"] < cycles:
            errors.append(
                f"stream ends at {intervals[-1]['t1']} before run end "
                f"{cycles}")

        # --timeseries implies --heatmap: cumulative hot_pages on each
        # record, non-empty by the final one under zipf 0.99.
        for k, iv in enumerate(intervals):
            hp = iv.get("hot_pages")
            if not isinstance(hp, list):
                errors.append(f"interval {k}: hot_pages missing")
                break
            for e in hp:
                if not all(isinstance(e.get(f), int)
                           for f in ("page", "count", "err")):
                    errors.append(
                        f"interval {k}: malformed hot_pages entry {e}")
                    break
        if intervals and not intervals[-1].get("hot_pages"):
            errors.append(
                "final hot_pages empty under zipf=0.99 (contended "
                "run must attribute conflicts)")

        # Off by default: without --timeseries no file appears.
        off_path = os.path.join(tmp, "off.jsonl")
        proc = subprocess.run(
            [ptm_sim, "--workload", "kv", "--system", "sel-ptm",
             "--scale", "0", "--threads", "4"],
            capture_output=True, text=True, cwd=tmp)
        if proc.returncode != 0:
            errors.append(
                f"control run exited {proc.returncode}")
        if os.path.exists(off_path):
            errors.append("control run created a timeseries file")
        if "ptm-timeseries-v1" in proc.stdout or \
                "ptm-timeseries-v1" in proc.stderr:
            errors.append("control run streamed timeseries records")
    return errors


def self_test():
    """Exercise the stream validator on crafted inputs."""
    failures = []

    def hdr(**kw):
        rec = {"schema": "ptm-timeseries-v1", "type": "header",
               "system": "sel-ptm", "seed": 1, "cores": 4,
               "interval": 100}
        rec.update(kw)
        return rec

    def iv(n, t0, t1, final=False, **kw):
        rec = {"type": "interval", "n": n, "t0": t0, "t1": t1,
               "final": final, "wall_seconds": 0.001, "events": 10,
               "events_per_sec": 10000.0, "ticks_per_wall_sec": 1e5,
               "events_per_tick": 0.1, "d": {"tx.commits": 5},
               "dist": {}}
        rec.update(kw)
        return rec

    def run(records):
        lines = [json.dumps(r) for r in records]
        _, _, errs = parse_stream(lines)
        return errs

    # 1. A well-formed stream must pass clean.
    errs = run([hdr(), iv(0, 0, 100), iv(1, 100, 200, final=True)])
    if errs:
        failures.append(f"clean stream flagged: {errs}")

    # 2. A bad schema tag must be detected.
    errs = run([hdr(schema="nope"), iv(0, 0, 100, final=True)])
    if not any("schema" in e for e in errs):
        failures.append("bad schema tag not detected")

    # 3. A gap in tick coverage must be detected.
    errs = run([hdr(), iv(0, 0, 100), iv(1, 150, 200, final=True)])
    if not any("gap" in e for e in errs):
        failures.append("tick coverage gap not detected")

    # 4. final=true anywhere but last (or a missing final) must fail.
    errs = run([hdr(), iv(0, 0, 100, final=True),
                iv(1, 100, 200, final=True)])
    if not any("final" in e for e in errs):
        failures.append("duplicate final not detected")
    errs = run([hdr(), iv(0, 0, 100), iv(1, 100, 200)])
    if not any("final" in e for e in errs):
        failures.append("missing final flush not detected")

    # 5. A missing gauge must be detected.
    bad = iv(0, 0, 100, final=True)
    del bad["events_per_sec"]
    errs = run([hdr(), bad])
    if not any("events_per_sec" in e for e in errs):
        failures.append("missing gauge not detected")

    # 6. A zero delta must be rejected (the emitter omits them).
    errs = run([hdr(), iv(0, 0, 100, final=True,
                          d={"tx.commits": 0})])
    if not any("delta" in e for e in errs):
        failures.append("zero delta not detected")

    # 7. Reconciliation must catch a short delta sum.
    stats = {"groups": {"tx": {"commits":
                               {"kind": "counter", "value": 12}}}}
    errs = reconcile([iv(0, 0, 100), iv(1, 100, 200, final=True)],
                     stats)
    if not any("delta sum" in e for e in errs):
        failures.append("counter under-count not detected")
    stats["groups"]["tx"]["commits"]["value"] = 10
    errs = reconcile([iv(0, 0, 100), iv(1, 100, 200, final=True)],
                     stats)
    if errs:
        failures.append(f"exact reconciliation flagged: {errs}")

    for f in failures:
        print(f"self-test FAIL: {f}", file=sys.stderr)
    print("self-test: " + ("ok" if not failures else
                           f"{len(failures)} failure(s)"))
    return 1 if failures else 0


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        return self_test()
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = check_run(sys.argv[1])
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    print("timeseries: " + ("ok" if not errors else
                            f"{len(errors)} error(s)"))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
