# Trace smoke-test driver for ctest: run a traced simulator command,
# then one or two checker commands against its output file. Invoked as
#
#   cmake -DRUN="bin args..." -DCHECK="checker args..."
#         [-DCHECK2="..."] -P trace_smoke.cmake
#
# Each variable holds one shell-style command line; every command must
# exit 0. The simulator's stdout is discarded (benches print tables),
# checker output is shown.

foreach(var RUN CHECK)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "trace_smoke.cmake: ${var} not set")
    endif()
endforeach()

separate_arguments(run_cmd UNIX_COMMAND "${RUN}")
execute_process(COMMAND ${run_cmd} RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "run failed (${rc}): ${RUN}")
endif()

foreach(var CHECK CHECK2)
    if(DEFINED ${var})
        separate_arguments(check_cmd UNIX_COMMAND "${${var}}")
        execute_process(COMMAND ${check_cmd} RESULT_VARIABLE rc)
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR "check failed (${rc}): ${${var}}")
        endif()
    endif()
endforeach()
