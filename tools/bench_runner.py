#!/usr/bin/env python3
"""Run the full bench suite and merge the results into one baseline.

Each bench binary is invoked with `--json <tmp> --profile` (plus
`--scale 0` under --smoke) and its ptm-bench-v1 document -- including
the prof_* cycle-decomposition fields -- is folded into a single

    { "schema": "ptm-benchsuite-v1",
      "label":  "<label>",
      "git":    "<git describe of the first bench>",
      "smoke":  true|false,
      "benches": { "<bench>": [ {row}, ... ], ... } }

suitable for committing as BENCH_<label>.json and diffing with
bench_compare.py. Simulated metrics (cycles, prof_* ticks, stat
counters) are deterministic for a given seed, so a committed smoke
baseline is a valid cross-machine regression gate; wall-clock values
are kept out of committed baselines by default. For same-machine A/B
host-speed measurements, `--wall` adds a suite-level

    "wall_seconds": { "<bench>": seconds, ... }

map (one wall time per bench binary run); bench_compare.py never
reads it, so it can't turn host noise into a gate failure.

`--jobs N` runs up to N bench binaries concurrently. The merged
document is byte-identical to a serial run: results are folded in the
fixed BENCHES order regardless of completion order, and each bench's
rows come from its own private temp file.

Usage:
    bench_runner.py --bench-dir BUILD/bench [--smoke] [--label NAME]
                    [--out FILE] [--only BENCH[,BENCH...]] [--wall]
                    [--jobs N] [--extra-args "..."]
"""

import argparse
import concurrent.futures
import json
import os
import shlex
import subprocess
import sys
import tempfile
import time

BENCHES = [
    "bench_table1",
    "bench_fig4",
    "bench_fig5",
    "bench_kv",
    "bench_ablation_caches",
    "bench_ablation_commit_abort",
    "bench_ablation_ctxsw",
    "bench_ablation_shadow_free",
]


def run_bench(path, smoke, extra_args=()):
    """Run one bench binary; return its parsed ptm-bench-v1 document."""
    fd, tmp = tempfile.mkstemp(suffix=".json", prefix="bench_")
    os.close(fd)
    cmd = [path, "--json", tmp, "--profile"]
    if smoke:
        cmd += ["--scale", "0"]
    cmd += list(extra_args)
    try:
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                              stderr=subprocess.PIPE, text=True)
        if proc.returncode != 0:
            raise RuntimeError(
                f"{os.path.basename(path)} exited {proc.returncode}: "
                f"{proc.stderr.strip()[-400:]}")
        with open(tmp) as f:
            doc = json.load(f)
    finally:
        os.unlink(tmp)
    if doc.get("schema") != "ptm-bench-v1":
        raise RuntimeError(
            f"{os.path.basename(path)}: bad schema tag "
            f"{doc.get('schema')!r}")
    return doc


def main():
    ap = argparse.ArgumentParser(
        description="Run the bench suite and merge a ptm-benchsuite-v1 "
                    "baseline.")
    ap.add_argument("--bench-dir", required=True,
                    help="directory holding the bench_* binaries")
    ap.add_argument("--smoke", action="store_true",
                    help="run every bench at --scale 0 (tiny sizes)")
    ap.add_argument("--label", default="local",
                    help="baseline label recorded in the document")
    ap.add_argument("--out", default=None,
                    help="output file (default BENCH_<label>.json; "
                         "- = stdout)")
    ap.add_argument("--only", default=None,
                    help="comma-separated subset of benches to run")
    ap.add_argument("--wall", action="store_true",
                    help="record per-bench host wall seconds at suite "
                         "level (same-machine A/B pairs only; never "
                         "compared by bench_compare.py)")
    ap.add_argument("--jobs", type=int, default=1,
                    help="run up to N bench binaries concurrently "
                         "(default 1); the merged output is identical "
                         "to a serial run")
    ap.add_argument("--extra-args", default="",
                    help="extra arguments passed to every bench binary "
                         "(e.g. \"--host-metrics --fast-forward\")")
    args = ap.parse_args()
    if args.jobs < 1:
        print("error: --jobs must be at least 1", file=sys.stderr)
        return 2

    names = BENCHES
    if args.only:
        names = [n for n in args.only.split(",") if n]
        unknown = [n for n in names if n not in BENCHES]
        if unknown:
            print(f"error: unknown bench(es): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    suite = {
        "schema": "ptm-benchsuite-v1",
        "label": args.label,
        "git": "",
        "smoke": bool(args.smoke),
        "benches": {},
    }
    if args.wall:
        suite["wall_seconds"] = {}
    extra = shlex.split(args.extra_args)
    paths = {}
    for name in names:
        path = os.path.join(args.bench_dir, name)
        if not os.path.exists(path):
            print(f"error: missing bench binary {path}", file=sys.stderr)
            return 2
        paths[name] = path

    def one(name):
        print(f"running {name}{' (smoke)' if args.smoke else ''} ...",
              file=sys.stderr)
        start = time.monotonic()
        doc = run_bench(paths[name], args.smoke, extra)
        return doc, round(time.monotonic() - start, 3)

    # Workers only produce (bench -> document); the merge below walks
    # `names` in declaration order, so the output is deterministic
    # regardless of completion order.
    results = {}
    try:
        if args.jobs == 1:
            for name in names:
                results[name] = one(name)
        else:
            with concurrent.futures.ThreadPoolExecutor(
                    max_workers=args.jobs) as pool:
                futs = {name: pool.submit(one, name) for name in names}
                for name in names:
                    results[name] = futs[name].result()
    except RuntimeError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    for name in names:
        doc, wall = results[name]
        if args.wall:
            suite["wall_seconds"][name] = wall
        if not suite["git"]:
            suite["git"] = doc.get("git", "")
        suite["benches"][name] = doc.get("rows", [])

    out = args.out or f"BENCH_{args.label}.json"
    text = json.dumps(suite, indent=1, sort_keys=True) + "\n"
    if out == "-":
        sys.stdout.write(text)
    else:
        with open(out, "w") as f:
            f.write(text)
        total = sum(len(r) for r in suite["benches"].values())
        print(f"wrote {out} ({len(suite['benches'])} benches, "
              f"{total} rows)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
