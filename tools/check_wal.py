#!/usr/bin/env python3
"""Validate PTMWAL1 crash dumps and their redo-log byte stream.

Independently re-implements the persistence-domain formats of
src/persist/wal.hh in Python and checks a dump against them:

 - dump framing: magic, version, header fields, workload options,
   checkpoint regions (each region's CRC32 must hold), log length
   accounting (durable <= total, log bytes actually present);
 - record schema: magic, length structure, CRC32, global commit
   sequence (1,2,3,...), per-thread commit ordinals (1,2,3,... within
   each thread) — exactly the checks recovery's replayWal() applies;
 - torn-tail semantics: an incomplete trailing record is legal on a
   crash dump (reported, not fatal) but illegal on a completed run;
 - replay idempotence: applying the redo records once and twice must
   produce the same word image (redo logs must be re-appliable).

Usage:
    check_wal.py DUMP [DUMP...]
    check_wal.py --self-test

Exits 0 when every dump passes, 1 otherwise. crash_sweep.py imports
parse_dump()/replay_log()/truncate_dump() from this module to
synthesize guaranteed torn-tail recovery cases.
"""

import argparse
import os
import struct
import sys
import tempfile
import zlib

DUMP_MAGIC = b"PTMWAL1\n"
DUMP_VERSION = 1
REC_MAGIC = 0x43455243  # "CREC" little-endian
REC_HEADER = 40
REC_WRITE = 12
REC_CRC = 4


class BadDump(Exception):
    pass


class Reader:
    def __init__(self, buf, off=0):
        self.buf = buf
        self.off = off

    def need(self, n):
        if self.off + n > len(self.buf):
            raise BadDump(f"truncated at byte {self.off} "
                          f"(need {n} more)")

    def u32(self):
        self.need(4)
        v, = struct.unpack_from("<I", self.buf, self.off)
        self.off += 4
        return v

    def u64(self):
        self.need(8)
        v, = struct.unpack_from("<Q", self.buf, self.off)
        self.off += 8
        return v

    def string(self):
        n = self.u32()
        self.need(n)
        s = self.buf[self.off:self.off + n].decode()
        self.off += n
        return s


def replay_log(log):
    """Replay a log byte string exactly like replayWal().

    Returns a dict with records, image, per_thread, torn_offset,
    torn_bytes, and error (None when the stream is structurally
    clean up to an optional torn tail).
    """
    out = {"records": [], "image": {}, "per_thread": {},
           "torn_offset": None, "torn_bytes": 0, "error": None}
    off = 0
    n = len(log)
    while off < n:
        if n - off < 8:
            out["torn_offset"], out["torn_bytes"] = off, n - off
            return out
        magic, length = struct.unpack_from("<II", log, off)
        if magic != REC_MAGIC:
            out["error"] = f"bad record magic at log offset {off}"
            return out
        if length < REC_HEADER + REC_CRC or \
                (length - REC_HEADER - REC_CRC) % REC_WRITE != 0:
            out["error"] = f"bad record length at log offset {off}"
            return out
        if n - off < length:
            out["torn_offset"], out["torn_bytes"] = off, n - off
            return out
        seq, tx, thread, ordinal, kind, nwrites = struct.unpack_from(
            "<QQIIII", log, off + 8)
        if length != REC_HEADER + nwrites * REC_WRITE + REC_CRC:
            out["error"] = ("record length disagrees with write count "
                            f"at log offset {off}")
            return out
        crc, = struct.unpack_from("<I", log, off + length - REC_CRC)
        if crc != zlib.crc32(log[off:off + length - REC_CRC]):
            out["error"] = f"bad record crc at log offset {off}"
            return out
        if seq != len(out["records"]) + 1:
            out["error"] = \
                f"bad commit sequence number at log offset {off}"
            return out
        if ordinal != out["per_thread"].get(thread, 0) + 1:
            out["error"] = \
                f"bad per-thread commit ordinal at log offset {off}"
            return out
        writes = []
        woff = off + REC_HEADER
        for _ in range(nwrites):
            a, v = struct.unpack_from("<QI", log, woff)
            writes.append((a, v))
            out["image"][a] = v
            woff += REC_WRITE
        out["per_thread"][thread] = ordinal
        out["records"].append({"seq": seq, "tx": tx, "thread": thread,
                               "ordinal": ordinal, "kind": kind,
                               "writes": writes})
        off += length
    return out


def parse_dump(path):
    """Parse a PTMWAL1 dump file; raises BadDump on any framing error."""
    with open(path, "rb") as f:
        buf = f.read()
    if buf[:8] != DUMP_MAGIC:
        raise BadDump("not a PTMWAL1 dump (bad magic)")
    rd = Reader(buf, 8)
    d = {"version": rd.u32()}
    if d["version"] != DUMP_VERSION:
        raise BadDump(f"unsupported dump version {d['version']}")
    d["tm_kind"] = rd.u32()
    d["threads"] = rd.u32()
    d["seed"] = rd.u64()
    d["crash_tick"] = rd.u64()
    d["end_tick"] = rd.u64()
    d["workload"] = rd.string()
    d["options"] = [(rd.string(), rd.string())
                    for _ in range(rd.u32())]
    regions = []
    for i in range(rd.u32()):
        vbase = rd.u64()
        nwords = rd.u32()
        rd.need(nwords * 4 + 4)
        w0 = rd.off
        words = list(struct.unpack_from(f"<{nwords}I", buf, w0))
        rd.off += nwords * 4
        if rd.u32() != zlib.crc32(buf[w0:w0 + nwords * 4]):
            raise BadDump(f"checkpoint region {i} fails its crc")
        regions.append({"vbase": vbase, "words": words})
    d["checkpoint"] = regions
    d["log_bytes_total"] = rd.u64()
    durable = rd.u64()
    rd.need(durable)
    d["durable_off"] = rd.off - 8  # file offset of the durable count
    d["log"] = buf[rd.off:rd.off + durable]
    if rd.off + durable != len(buf):
        raise BadDump("trailing bytes after the durable log")
    if durable > d["log_bytes_total"]:
        raise BadDump("durable log longer than the bytes generated")
    return d


def truncate_dump(path, cut):
    """Shorten a dump's durable log by `cut` bytes (torn-tail forge).

    Rewrites the durable-byte count down and drops the file tail, so
    the log ends mid-record exactly as a crash inside a device drain
    would leave it. Returns the new durable length.
    """
    d = parse_dump(path)
    durable = len(d["log"])
    if cut <= 0 or cut >= durable:
        raise ValueError(f"cut {cut} outside (0, {durable})")
    with open(path, "r+b") as f:
        f.seek(d["durable_off"])
        f.write(struct.pack("<Q", durable - cut))
        f.seek(0, os.SEEK_END)
        f.truncate(f.tell() - cut)
    return durable - cut


def check_dump(path, verbose=False):
    """Validate one dump; returns a list of failure strings."""
    fails = []
    try:
        d = parse_dump(path)
    except BadDump as e:
        return [f"{path}: {e}"]

    r = replay_log(d["log"])
    if r["error"]:
        fails.append(f"{path}: {r['error']}")
    if r["torn_bytes"] and not d["crash_tick"]:
        fails.append(f"{path}: completed-run dump has a torn record "
                     f"({r['torn_bytes']} bytes at offset "
                     f"{r['torn_offset']})")
    for rec in r["records"]:
        if rec["kind"] != d["tm_kind"]:
            fails.append(f"{path}: record seq {rec['seq']} kind "
                         f"{rec['kind']} != dump kind {d['tm_kind']}")
        if rec["thread"] >= d["threads"]:
            fails.append(f"{path}: record seq {rec['seq']} thread "
                         f"{rec['thread']} out of range")

    # Replay idempotence: re-applying every record to the finished
    # image must not change it (redo logs are re-appliable).
    once_again = dict(r["image"])
    for rec in r["records"]:
        for a, v in rec["writes"]:
            once_again[a] = v
    if once_again != r["image"]:
        fails.append(f"{path}: replay is not idempotent")

    if verbose or fails:
        tick = d["crash_tick"]
        print(f"{path}: {d['workload']}/{d['threads']}t seed "
              f"{d['seed']}, "
              f"{'crash@' + str(tick) if tick else 'completed'}, "
              f"{len(d['checkpoint'])} regions, "
              f"{len(r['records'])} records, "
              f"{r['torn_bytes']} torn bytes")
    return fails


# ------------------------------------------------------------ self-test

def _mk_record(seq, tx, thread, ordinal, kind, writes):
    body = struct.pack("<II", REC_MAGIC,
                       REC_HEADER + len(writes) * REC_WRITE + REC_CRC)
    body += struct.pack("<QQIIII", seq, tx, thread, ordinal, kind,
                        len(writes))
    for a, v in writes:
        body += struct.pack("<QI", a, v)
    return body + struct.pack("<I", zlib.crc32(body))


def _mk_dump(log, crash_tick=100, regions=None):
    buf = bytearray(DUMP_MAGIC)
    buf += struct.pack("<III", DUMP_VERSION, 3, 2)
    buf += struct.pack("<QQQ", 7, crash_tick, 200)
    wl = b"kv"
    buf += struct.pack("<I", len(wl)) + wl
    buf += struct.pack("<I", 0)  # no options
    regions = regions if regions is not None else \
        [(0x1000, [1, 2, 3])]
    buf += struct.pack("<I", len(regions))
    for vbase, words in regions:
        buf += struct.pack("<QI", vbase, len(words))
        wb = struct.pack(f"<{len(words)}I", *words)
        buf += wb + struct.pack("<I", zlib.crc32(wb))
    buf += struct.pack("<QQ", len(log) + 64, len(log))
    buf += log
    return bytes(buf)


def self_test():
    fails = []

    rec1 = _mk_record(1, 11, 0, 1, 3, [(0x1000, 5), (0x1008, 6)])
    rec2 = _mk_record(2, 12, 1, 1, 3, [(0x1000, 9)])
    rec3 = _mk_record(3, 13, 0, 2, 3, [])
    log = rec1 + rec2 + rec3

    # 1. A clean log replays fully, last writer wins.
    r = replay_log(log)
    if r["error"] or r["torn_bytes"]:
        fails.append(f"clean log rejected: {r['error']}")
    if len(r["records"]) != 3 or r["image"].get(0x1000) != 9:
        fails.append("replay image wrong")
    if r["per_thread"] != {0: 2, 1: 1}:
        fails.append(f"per-thread counts wrong: {r['per_thread']}")

    # 2. Truncation at EVERY byte boundary is torn or a clean prefix,
    # never an error and never a phantom record.
    whole = [0, len(rec1), len(rec1) + len(rec2), len(log)]
    for cut in range(len(log)):
        rr = replay_log(log[:cut])
        if rr["error"]:
            fails.append(f"truncation at {cut} misread as corrupt: "
                         f"{rr['error']}")
            break
        comp = [w for w in whole[1:] if w <= cut]
        if len(rr["records"]) != len(comp):
            fails.append(f"truncation at {cut}: {len(rr['records'])} "
                         f"records, want {len(comp)}")
            break
        if (cut not in whole) != (rr["torn_bytes"] > 0):
            fails.append(f"truncation at {cut}: torn flag wrong")
            break

    # 3. Single-byte corruption inside a record must be a hard error
    # naming an offset (flip a write byte: crc catches it).
    bad = bytearray(log)
    bad[REC_HEADER + 2] ^= 0xFF
    rb = replay_log(bytes(bad))
    if not rb["error"] or "offset" not in rb["error"]:
        fails.append(f"corrupt byte not rejected: {rb['error']}")

    # 4. A reordered log (seq out of order) must be rejected.
    ro = replay_log(rec2 + rec1)
    if not ro["error"] or "sequence" not in ro["error"]:
        fails.append(f"seq reorder not rejected: {ro['error']}")

    # 5. Dump round-trip, torn forging, and region CRC detection.
    with tempfile.TemporaryDirectory() as td:
        p = os.path.join(td, "t.wal")
        with open(p, "wb") as f:
            f.write(_mk_dump(log))
        if check_dump(p):
            fails.append("clean dump flagged")
        new_len = truncate_dump(p, 3)
        d = parse_dump(p)
        if len(d["log"]) != new_len:
            fails.append("truncate_dump length wrong")
        rt = replay_log(d["log"])
        if rt["error"] or rt["torn_bytes"] != len(rec3) - 3:
            fails.append(f"forged torn tail wrong: {rt}")
        # Completed-run dumps must not tolerate torn tails.
        with open(p, "rb") as f:
            buf = bytearray(f.read())
        with open(p, "wb") as f:
            f.write(_mk_dump(d["log"], crash_tick=0))
        if not any("torn" in x for x in check_dump(p)):
            fails.append("completed-run torn tail not flagged")
        # Region corruption must fail the region CRC.
        with open(p, "wb") as f:
            f.write(_mk_dump(log))
        with open(p, "r+b") as f:
            f.seek(len(DUMP_MAGIC) + 12 + 24 + 4 + 2 + 4 + 4 + 12 + 2)
            b = f.read(1)
            f.seek(-1, os.SEEK_CUR)
            f.write(bytes([b[0] ^ 0xFF]))
        if not any("crc" in x for x in check_dump(p)):
            fails.append("region corruption not detected")
        del buf

    for f in fails:
        print(f"self-test FAIL: {f}", file=sys.stderr)
    print("self-test: " + ("ok" if not fails
                           else f"{len(fails)} failure(s)"))
    return 1 if fails else 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("dumps", nargs="*", help="PTMWAL1 dump files")
    ap.add_argument("--verbose", action="store_true",
                    help="print a summary line per dump")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the parser against crafted streams")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.dumps:
        ap.error("at least one DUMP file is required")
    bad = 0
    for path in args.dumps:
        fails = check_dump(path, verbose=args.verbose)
        for fl in fails:
            print(f"FAIL: {fl}", file=sys.stderr)
        bad += bool(fails)
    print(f"{len(args.dumps)} dump(s), {bad} failing")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
