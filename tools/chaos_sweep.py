#!/usr/bin/env python3
"""Chaos sweep: fuzz the simulator with seeded fault injection.

Runs ptm_sim N times with `--chaos --chaos-seed K --audit` for K in
[start, start+N), collects every "audit-violation:" / "repro:" line
and every functional-verification failure, and writes a ptm-chaos-v1
JSON report. Exits non-zero if any run aborted the sweep's contract:
an audit violation, a wrong functional result, or a crashed simulator.

    chaos_sweep.py PTM_SIM --seeds 20 --system sel-ptm
    chaos_sweep.py PTM_SIM --seeds 50 --workload ocean --out sweep.json
    chaos_sweep.py PTM_SIM --seeds 20 --plan abort,flush,preempt

Arguments after `--` are passed to ptm_sim verbatim (e.g. `--
--backoff --retry-budget 8`).
"""

import argparse
import json
import subprocess
import sys


def run_one(args, chaos_seed, extra):
    cmd = [
        args.sim,
        "--workload", args.workload,
        "--system", args.system,
        "--scale", str(args.scale),
        "--threads", str(args.threads),
        "--chaos",
        "--chaos-seed", str(chaos_seed),
        "--audit",
    ]
    if args.plan:
        cmd += ["--chaos-plan", args.plan]
    cmd += extra
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=args.timeout)
    except subprocess.TimeoutExpired:
        return {"chaos_seed": chaos_seed, "exit": None,
                "verified": False, "violations": [], "repro": None,
                "error": f"timeout after {args.timeout}s"}

    violations = []
    repro = None
    for line in proc.stderr.splitlines():
        if line.startswith("audit-violation:"):
            violations.append(line[len("audit-violation:"):].strip())
        elif line.startswith("repro:"):
            repro = line[len("repro:"):].strip()

    verified = True
    for line in proc.stdout.splitlines():
        if line.startswith("verified") and line.split()[-1] != "yes":
            verified = False

    run = {
        "chaos_seed": chaos_seed,
        "exit": proc.returncode,
        "verified": verified,
        "violations": violations,
        "repro": repro,
    }
    if proc.returncode != 0 or not verified or violations:
        # Keep the verifier's stderr tail on every failing record so
        # the report is diagnosable without re-running the seed.
        run["stderr"] = proc.stderr.strip().splitlines()[-10:]
    if proc.returncode != 0 and verified and not violations:
        # Crash or internal panic: keep the tail for the report.
        run["error"] = proc.stderr.strip().splitlines()[-5:]
    return run


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("sim", help="path to the ptm_sim binary")
    ap.add_argument("--seeds", type=int, default=20,
                    help="number of chaos seeds to sweep (default 20)")
    ap.add_argument("--start", type=int, default=1,
                    help="first chaos seed (default 1)")
    ap.add_argument("--workload", default="fft")
    ap.add_argument("--system", default="sel-ptm")
    ap.add_argument("--scale", type=int, default=0)
    ap.add_argument("--threads", type=int, default=4)
    ap.add_argument("--plan", default="",
                    help="chaos plan (fault-name list; default all)")
    ap.add_argument("--timeout", type=int, default=120,
                    help="per-run timeout in seconds (default 120)")
    ap.add_argument("--out", default="",
                    help="write the ptm-chaos-v1 JSON report to FILE")
    args, extra = ap.parse_known_args()
    if extra and extra[0] == "--":
        extra = extra[1:]

    runs = []
    bad = 0
    for k in range(args.start, args.start + args.seeds):
        run = run_one(args, k, extra)
        runs.append(run)
        ok = (run["exit"] == 0 and run["verified"]
              and not run["violations"] and "error" not in run)
        if not ok:
            bad += 1
            why = ("; ".join(run["violations"])
                   or run.get("error") or "verification failed")
            print(f"seed {k:4d} FAIL  {why}", file=sys.stderr)
            if run["repro"]:
                print(f"          repro: {run['repro']}",
                      file=sys.stderr)
        else:
            print(f"seed {k:4d} ok")

    report = {
        "schema": "ptm-chaos-v1",
        "workload": args.workload,
        "system": args.system,
        "scale": args.scale,
        "threads": args.threads,
        "plan": args.plan or "all",
        "extra_args": extra,
        "seeds": args.seeds,
        "first_seed": args.start,
        "failed_runs": bad,
        "total_violations": sum(len(r["violations"]) for r in runs),
        "runs": runs,
    }
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=1)
            f.write("\n")

    print(f"{args.seeds} seeds, {bad} failing, "
          f"{report['total_violations']} violation(s)")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
