#!/usr/bin/env python3
"""Schema checker for ptm_sim --stats-json output.

Runs ptm_sim for every system kind at the tiny test scale, parses the
emitted ptm-stats-v1 JSON, and validates the schema: manifest fields
and types, required stat groups per system, and the per-kind stat
encodings. Exits non-zero (with a message per failure) if any run or
check fails.

Usage: check_stats_json.py PATH_TO_PTM_SIM
"""

import json
import subprocess
import sys

SYSTEMS = ["serial", "locks", "copy-ptm", "sel-ptm", "vtm", "vc-vtm"]

MANIFEST_FIELDS = {
    "tool": str,
    "workload": str,
    "system": str,
    "granularity": str,
    "seed": (int, float),
    "threads": (int, float),
    "scale": (int, float),
    "workload_options": dict,
    "cycles": (int, float),
    "verified": bool,
    "wall_seconds": (int, float),
    "events_per_sec": (int, float),
    "sim_events_per_sec": (int, float),
    "sim_ticks_per_wall_sec": (int, float),
    "git": str,
    "params": dict,
}

STAT_KINDS = {
    "counter": ["value"],
    "scalar": ["value"],
    "average": ["mean", "samples"],
    "time_weighted": ["mean"],
    "distribution": [
        "samples", "sum", "mean", "min", "max", "p50", "p95", "p99",
        "bucket_lo", "bucket_width", "underflow", "overflow", "counts",
    ],
}

BASE_GROUPS = ["sys", "tx", "mem", "os", "core0", "events",
               "flightrec"]

PROF_BUCKETS = {
    "idle", "non_tx", "tx_useful", "tx_wasted", "stall_l1", "stall_l2",
    "stall_mem", "stall_xlat", "fault_swap", "tx_begin", "tx_commit",
    "tx_abort", "tx_persist", "ctx_switch", "barrier",
}

PROF_CHARGES = {
    "meta_lookup", "tav_lookup", "commit_cleanup", "abort_cleanup",
    "overflow_spill", "false_stall", "page_fault", "swap_io",
    "committed_tx_ticks", "aborted_tx_ticks", "log_flush",
}


def check_run(ptm_sim, system):
    errors = []
    cmd = [
        ptm_sim, "--workload", "fft", "--system", system,
        "--scale", "0", "--threads", "2", "--stats-json", "-",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        return [f"{system}: ptm_sim exited {proc.returncode}: "
                f"{proc.stderr.strip()}"]
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        return [f"{system}: invalid JSON: {e}"]

    if doc.get("schema") != "ptm-stats-v1":
        errors.append(f"{system}: bad schema tag {doc.get('schema')!r}")

    manifest = doc.get("manifest", {})
    for field, ty in MANIFEST_FIELDS.items():
        if field not in manifest:
            errors.append(f"{system}: manifest missing {field!r}")
        elif not isinstance(manifest[field], ty):
            errors.append(
                f"{system}: manifest.{field} has type "
                f"{type(manifest[field]).__name__}")
    if not manifest.get("verified", False):
        errors.append(f"{system}: run did not verify")

    groups = doc.get("groups", {})
    expected = list(BASE_GROUPS)
    if system in ("copy-ptm", "sel-ptm"):
        expected.append("vts")
    if system in ("vtm", "vc-vtm"):
        expected.append("vtm")
    for g in expected:
        if g not in groups:
            errors.append(f"{system}: missing group {g!r}")
        elif not groups[g]:
            errors.append(f"{system}: group {g!r} is empty")

    for gname, stats in groups.items():
        for sname, stat in stats.items():
            kind = stat.get("kind")
            if kind not in STAT_KINDS:
                errors.append(
                    f"{system}: {gname}.{sname} has bad kind {kind!r}")
                continue
            for field in STAT_KINDS[kind]:
                if field not in stat:
                    errors.append(
                        f"{system}: {gname}.{sname} ({kind}) missing "
                        f"{field!r}")
            if kind == "distribution":
                counts = stat.get("counts", [])
                if not isinstance(counts, list) or not counts:
                    errors.append(
                        f"{system}: {gname}.{sname} counts not a "
                        "non-empty list")
                p50 = stat.get("p50", 0)
                p95 = stat.get("p95", 0)
                p99 = stat.get("p99", 0)
                if not p50 <= p95 <= p99:
                    errors.append(
                        f"{system}: {gname}.{sname} percentiles not "
                        f"ordered: {p50} / {p95} / {p99}")
                if stat.get("samples") and not (
                        stat.get("min", 0) <= p50
                        and p99 <= stat.get("max", 0)):
                    errors.append(
                        f"{system}: {gname}.{sname} percentiles "
                        "outside [min, max]")

    # Spot-check run-level consistency.
    if "sys" in groups and "cycles" in groups["sys"]:
        if groups["sys"]["cycles"]["value"] != manifest.get("cycles"):
            errors.append(
                f"{system}: sys.cycles != manifest.cycles")
    return errors


def check_workload_options(ptm_sim):
    """The manifest must echo the resolved per-workload options.

    User-given --wl-opt values must round-trip verbatim and options
    left at their declared default must still appear (the manifest
    records the *resolved* table, not just the overrides).
    """
    cmd = [
        ptm_sim, "--workload", "kv", "--system", "sel-ptm",
        "--scale", "0", "--threads", "2",
        "--wl-opt", "zipf=0.5", "--wl-opt", "tx-ops=4",
        "--stats-json", "-",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        return [f"wl-opt: ptm_sim exited {proc.returncode}: "
                f"{proc.stderr.strip()}"]
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        return [f"wl-opt: invalid JSON: {e}"]
    errors = []
    wopts = doc.get("manifest", {}).get("workload_options")
    if not isinstance(wopts, dict):
        return ["wl-opt: manifest.workload_options missing"]
    for key, want in (("zipf", "0.5"), ("tx-ops", "4")):
        if wopts.get(key) != want:
            errors.append(
                f"wl-opt: option {key!r} did not round-trip: "
                f"{wopts.get(key)!r} != {want!r}")
    for key in ("keys", "ops", "scan-len"):
        if key not in wopts:
            errors.append(f"wl-opt: default option {key!r} not recorded")
    return errors


def check_profile(ptm_sim):
    """Validate the optional "profile" section under --profile.

    The cycle accounting is exact by construction: every core's bucket
    ticks must sum to its total, and every total must equal the run's
    elapsed ticks.
    """
    errors = []
    cmd = [
        ptm_sim, "--workload", "fft", "--system", "sel-ptm",
        "--scale", "0", "--threads", "2", "--stats-json", "-",
        "--profile", "--host-profile",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        return [f"profile: ptm_sim exited {proc.returncode}: "
                f"{proc.stderr.strip()}"]
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        return [f"profile: stdout not clean JSON with --profile: {e}"]

    prof = doc.get("profile")
    if not isinstance(prof, dict):
        return ["profile: section missing from --profile run"]

    elapsed = prof.get("elapsed_ticks")
    if not isinstance(elapsed, int) or elapsed <= 0:
        errors.append(f"profile: bad elapsed_ticks {elapsed!r}")
    cores = prof.get("cores")
    if not isinstance(cores, list) or not cores:
        errors.append("profile: cores missing or empty")
        cores = []
    for i, core in enumerate(cores):
        ticks = core.get("ticks", {})
        unknown = set(ticks) - PROF_BUCKETS
        if unknown:
            errors.append(
                f"profile: core {i} unknown buckets {sorted(unknown)}")
        total = core.get("total")
        if sum(ticks.values()) != total:
            errors.append(
                f"profile: core {i} bucket sum {sum(ticks.values())} "
                f"!= total {total}")
        if total != elapsed:
            errors.append(
                f"profile: core {i} total {total} != elapsed_ticks "
                f"{elapsed}")
    sup = prof.get("supervisor")
    if not isinstance(sup, dict):
        errors.append("profile: supervisor section missing")
    else:
        unknown = set(sup) - PROF_CHARGES
        if unknown:
            errors.append(
                f"profile: unknown supervisor charges {sorted(unknown)}")
    host = prof.get("host")
    if not isinstance(host, dict):
        errors.append("profile: host section missing under "
                      "--host-profile")
    else:
        if not isinstance(host.get("sample_interval"), int) or \
                host["sample_interval"] < 1:
            errors.append("profile: bad host.sample_interval")
        sites = host.get("sites")
        if not isinstance(sites, list) or not sites:
            errors.append("profile: host.sites missing or empty")
        else:
            for s in sites:
                for field in ("name", "events", "sampled",
                              "sampled_ns", "estimated_ns"):
                    if field not in s:
                        errors.append(
                            f"profile: host site missing {field!r}")
                        break

    # Off by default: a plain run must not carry the section.
    proc = subprocess.run(
        [ptm_sim, "--workload", "fft", "--system", "sel-ptm",
         "--scale", "0", "--threads", "2", "--stats-json", "-"],
        capture_output=True, text=True)
    if proc.returncode == 0:
        try:
            plain = json.loads(proc.stdout)
            if "profile" in plain:
                errors.append(
                    "profile: section present without --profile")
        except json.JSONDecodeError as e:
            errors.append(f"profile: plain run JSON invalid: {e}")
    else:
        errors.append(f"profile: plain run exited {proc.returncode}")
    return errors


def check_hot_pages(ptm_sim):
    """Validate the optional "hot_pages" section under --heatmap.

    The per-page contention attribution must be present (and carry the
    documented shape) when --heatmap is given, and absent otherwise.
    The space-saving counters preserve totals exactly, so each cause's
    page-list counts must sum to that cause's total.
    """
    errors = []
    cmd = [
        ptm_sim, "--workload", "kv", "--system", "sel-ptm",
        "--scale", "0", "--threads", "4",
        "--wl-opt", "zipf=0.99", "--stats-json", "-", "--heatmap",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        return [f"hot_pages: ptm_sim exited {proc.returncode}: "
                f"{proc.stderr.strip()}"]
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        return [f"hot_pages: invalid JSON: {e}"]

    hot = doc.get("hot_pages")
    if not isinstance(hot, dict):
        return ["hot_pages: section missing from --heatmap run"]
    if not isinstance(hot.get("k"), int) or hot["k"] < 1:
        errors.append(f"hot_pages: bad k {hot.get('k')!r}")

    def check_entries(where, entries, keyname):
        if not isinstance(entries, list):
            errors.append(f"hot_pages: {where} not a list")
            return 0
        total = 0
        prev = None
        for e in entries:
            for field in (keyname, "count", "err"):
                if not isinstance(e.get(field), int):
                    errors.append(
                        f"hot_pages: {where} entry missing int "
                        f"{field!r}")
                    return total
            if e["err"] > e["count"]:
                errors.append(
                    f"hot_pages: {where} err {e['err']} > count "
                    f"{e['count']}")
            if prev is not None and e["count"] > prev:
                errors.append(f"hot_pages: {where} not sorted by count")
            prev = e["count"]
            total += e["count"]
        return total

    conf = hot.get("conflicts")
    if not isinstance(conf, dict):
        errors.append("hot_pages: conflicts section missing")
    else:
        total = conf.get("total")
        page_sum = check_entries("conflicts.pages",
                                 conf.get("pages"), "page")
        check_entries("conflicts.blocks", conf.get("blocks"), "block")
        if not isinstance(total, int) or total < 1:
            errors.append(
                "hot_pages: no conflicts attributed under zipf=0.99")
        elif page_sum != total:
            errors.append(
                f"hot_pages: conflict page counts sum {page_sum} != "
                f"total {total} (space-saving must preserve totals)")

    aborts = hot.get("aborts")
    if not isinstance(aborts, dict):
        errors.append("hot_pages: aborts section missing")
    else:
        stats = doc.get("groups", {}).get("tx", {})
        for cause in ("conflict", "nontx", "multiwriter", "explicit"):
            sec = aborts.get(cause)
            if not isinstance(sec, dict):
                errors.append(f"hot_pages: aborts.{cause} missing")
                continue
            total = sec.get("total")
            page_sum = check_entries(f"aborts.{cause}.pages",
                                     sec.get("pages"), "page")
            if page_sum != total:
                errors.append(
                    f"hot_pages: aborts.{cause} page sum {page_sum} "
                    f"!= total {total}")
            counter = stats.get(f"aborts_{cause}", {}).get("value")
            if counter is not None and total != counter:
                errors.append(
                    f"hot_pages: aborts.{cause}.total {total} != "
                    f"tx.aborts_{cause} {counter}")

    for sec in ("spt_misses", "tav_misses", "shadow_allocs"):
        entry = hot.get(sec)
        if not isinstance(entry, dict):
            errors.append(f"hot_pages: {sec} section missing")
            continue
        page_sum = check_entries(f"{sec}.pages", entry.get("pages"),
                                 "page")
        if page_sum != entry.get("total"):
            errors.append(
                f"hot_pages: {sec} page sum {page_sum} != total "
                f"{entry.get('total')}")

    # Off by default: a plain run must not carry the section.
    proc = subprocess.run(
        [ptm_sim, "--workload", "kv", "--system", "sel-ptm",
         "--scale", "0", "--threads", "4", "--stats-json", "-"],
        capture_output=True, text=True)
    if proc.returncode == 0:
        try:
            plain = json.loads(proc.stdout)
            if "hot_pages" in plain:
                errors.append(
                    "hot_pages: section present without --heatmap")
        except json.JSONDecodeError as e:
            errors.append(f"hot_pages: plain run JSON invalid: {e}")
    else:
        errors.append(f"hot_pages: plain run exited {proc.returncode}")
    return errors


def check_forensics(ptm_sim):
    """Validate the always-on "forensics" section.

    The flight recorder runs by default, so every stats document must
    carry the section — with capture disarmed and no post-mortems on a
    plain run. `--flightrec-depth 0` removes the recorder entirely:
    both the section and the "flightrec" stat group must disappear.
    """
    errors = []
    proc = subprocess.run(
        [ptm_sim, "--workload", "fft", "--system", "sel-ptm",
         "--scale", "0", "--threads", "2", "--stats-json", "-"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        return [f"forensics: ptm_sim exited {proc.returncode}: "
                f"{proc.stderr.strip()}"]
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        return [f"forensics: invalid JSON: {e}"]

    f = doc.get("forensics")
    if not isinstance(f, dict):
        return ["forensics: section missing from a default run"]
    for field in ("depth", "generations", "live_records",
                  "retired_records", "dropped_records",
                  "wasted_ticks_total", "dropped_wasted_ticks",
                  "max_wasted_ticks", "max_wasted_tx", "deepest_chain",
                  "postmortems", "dropped_reports"):
        if not isinstance(f.get(field), int):
            errors.append(f"forensics: {field} missing or mistyped")
    if f.get("armed") is not False:
        errors.append("forensics: default run reports armed != false")
    if f.get("postmortems", 0) != 0:
        errors.append("forensics: default run captured post-mortems")
    killers = f.get("top_killers")
    if not isinstance(killers, list):
        errors.append("forensics: top_killers missing")
    else:
        if len(killers) > 5:
            errors.append("forensics: top_killers longer than 5")
        prev = None
        for k in killers:
            for field in ("tx", "kills", "wasted_ticks"):
                if not isinstance(k.get(field), int):
                    errors.append(
                        f"forensics: top_killers entry missing {field!r}")
                    break
            kills = k.get("kills")
            if prev is not None and isinstance(kills, int) \
                    and kills > prev:
                errors.append("forensics: top_killers not sorted by "
                              "kills descending")
            prev = kills if isinstance(kills, int) else prev

    # --flightrec-depth 0 must remove the recorder entirely.
    proc = subprocess.run(
        [ptm_sim, "--workload", "fft", "--system", "sel-ptm",
         "--scale", "0", "--threads", "2", "--flightrec-depth", "0",
         "--stats-json", "-"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        errors.append(f"forensics: depth-0 run exited {proc.returncode}")
    else:
        try:
            off = json.loads(proc.stdout)
            if "forensics" in off:
                errors.append(
                    "forensics: section present with --flightrec-depth 0")
            if "flightrec" in off.get("groups", {}):
                errors.append(
                    "forensics: flightrec group present with "
                    "--flightrec-depth 0")
        except json.JSONDecodeError as e:
            errors.append(f"forensics: depth-0 run JSON invalid: {e}")
    return errors


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    ptm_sim = sys.argv[1]
    failures = []
    for system in SYSTEMS:
        errs = check_run(ptm_sim, system)
        status = "ok" if not errs else f"{len(errs)} error(s)"
        print(f"{system:10s} {status}")
        failures.extend(errs)
    errs = check_profile(ptm_sim)
    print(f"{'profile':10s} {'ok' if not errs else str(len(errs)) + ' error(s)'}")
    failures.extend(errs)
    errs = check_workload_options(ptm_sim)
    print(f"{'wl-opt':10s} {'ok' if not errs else str(len(errs)) + ' error(s)'}")
    failures.extend(errs)
    errs = check_hot_pages(ptm_sim)
    print(f"{'hot_pages':10s} {'ok' if not errs else str(len(errs)) + ' error(s)'}")
    failures.extend(errs)
    errs = check_forensics(ptm_sim)
    print(f"{'forensics':10s} {'ok' if not errs else str(len(errs)) + ' error(s)'}")
    failures.extend(errs)
    for e in failures:
        print(f"error: {e}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
