#!/usr/bin/env python3
"""Schema checker for ptm_sim --stats-json output.

Runs ptm_sim for every system kind at the tiny test scale, parses the
emitted ptm-stats-v1 JSON, and validates the schema: manifest fields
and types, required stat groups per system, and the per-kind stat
encodings. Exits non-zero (with a message per failure) if any run or
check fails.

Usage: check_stats_json.py PATH_TO_PTM_SIM
"""

import json
import subprocess
import sys

SYSTEMS = ["serial", "locks", "copy-ptm", "sel-ptm", "vtm", "vc-vtm"]

MANIFEST_FIELDS = {
    "tool": str,
    "workload": str,
    "system": str,
    "granularity": str,
    "seed": (int, float),
    "threads": (int, float),
    "scale": (int, float),
    "cycles": (int, float),
    "verified": bool,
    "wall_seconds": (int, float),
    "git": str,
    "params": dict,
}

STAT_KINDS = {
    "counter": ["value"],
    "scalar": ["value"],
    "average": ["mean", "samples"],
    "time_weighted": ["mean"],
    "distribution": [
        "samples", "sum", "mean", "min", "max", "p50", "p95", "p99",
        "bucket_lo", "bucket_width", "underflow", "overflow", "counts",
    ],
}

BASE_GROUPS = ["sys", "tx", "mem", "os", "core0"]


def check_run(ptm_sim, system):
    errors = []
    cmd = [
        ptm_sim, "--workload", "fft", "--system", system,
        "--scale", "0", "--threads", "2", "--stats-json", "-",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        return [f"{system}: ptm_sim exited {proc.returncode}: "
                f"{proc.stderr.strip()}"]
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        return [f"{system}: invalid JSON: {e}"]

    if doc.get("schema") != "ptm-stats-v1":
        errors.append(f"{system}: bad schema tag {doc.get('schema')!r}")

    manifest = doc.get("manifest", {})
    for field, ty in MANIFEST_FIELDS.items():
        if field not in manifest:
            errors.append(f"{system}: manifest missing {field!r}")
        elif not isinstance(manifest[field], ty):
            errors.append(
                f"{system}: manifest.{field} has type "
                f"{type(manifest[field]).__name__}")
    if not manifest.get("verified", False):
        errors.append(f"{system}: run did not verify")

    groups = doc.get("groups", {})
    expected = list(BASE_GROUPS)
    if system in ("copy-ptm", "sel-ptm"):
        expected.append("vts")
    if system in ("vtm", "vc-vtm"):
        expected.append("vtm")
    for g in expected:
        if g not in groups:
            errors.append(f"{system}: missing group {g!r}")
        elif not groups[g]:
            errors.append(f"{system}: group {g!r} is empty")

    for gname, stats in groups.items():
        for sname, stat in stats.items():
            kind = stat.get("kind")
            if kind not in STAT_KINDS:
                errors.append(
                    f"{system}: {gname}.{sname} has bad kind {kind!r}")
                continue
            for field in STAT_KINDS[kind]:
                if field not in stat:
                    errors.append(
                        f"{system}: {gname}.{sname} ({kind}) missing "
                        f"{field!r}")
            if kind == "distribution":
                counts = stat.get("counts", [])
                if not isinstance(counts, list) or not counts:
                    errors.append(
                        f"{system}: {gname}.{sname} counts not a "
                        "non-empty list")
                p50 = stat.get("p50", 0)
                p95 = stat.get("p95", 0)
                p99 = stat.get("p99", 0)
                if not p50 <= p95 <= p99:
                    errors.append(
                        f"{system}: {gname}.{sname} percentiles not "
                        f"ordered: {p50} / {p95} / {p99}")
                if stat.get("samples") and not (
                        stat.get("min", 0) <= p50
                        and p99 <= stat.get("max", 0)):
                    errors.append(
                        f"{system}: {gname}.{sname} percentiles "
                        "outside [min, max]")

    # Spot-check run-level consistency.
    if "sys" in groups and "cycles" in groups["sys"]:
        if groups["sys"]["cycles"]["value"] != manifest.get("cycles"):
            errors.append(
                f"{system}: sys.cycles != manifest.cycles")
    return errors


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    ptm_sim = sys.argv[1]
    failures = []
    for system in SYSTEMS:
        errs = check_run(ptm_sim, system)
        status = "ok" if not errs else f"{len(errs)} error(s)"
        print(f"{system:10s} {status}")
        failures.extend(errs)
    for e in failures:
        print(f"error: {e}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
