#!/usr/bin/env python3
"""Crash-recovery sweep: cut durable runs at random ticks and verify
that log-replay recovery rebuilds a correct image every time.

For each seed K in [start, start+N) the sweep:

 1. runs ptm_sim once volatile to learn the run's cycle count;
 2. derives a deterministic crash tick in (0, cycles) from K, so the
    sweep is reproducible without coordinating RNGs with the C++ side;
 3. re-runs with `--durability wal --wal-file DUMP --crash-at-tick T
    --audit` — the run is cut mid-flight and dumps the persistent
    image plus the durable prefix of the redo log;
 4. validates the dump's framing, record CRCs, and commit ordering
    with check_wal.py;
 5. on a fraction of the seeds, forges a torn tail (rewrites the
    durable byte count down into the last record and truncates the
    file) to model a crash mid-drain even when the cut fell between
    device flushes;
 6. runs `ptm_sim --recover DUMP` and requires "recover: verified
    yes" and exit 0 — replay rebuilt an auditor-clean image that is
    bit-exact against the workload's committed-prefix oracle.

Writes a ptm-chaos-v1 JSON report (same record shape as
chaos_sweep.py, with per-phase stderr tails on failures). Exits
non-zero if any seed fails any phase.

    crash_sweep.py PTM_SIM --seeds 30 --system sel-ptm
    crash_sweep.py PTM_SIM --seeds 30 --system copy-ptm --out r.json

Arguments after `--` are passed to every ptm_sim run verbatim.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_wal  # noqa: E402


def lcg_below(seed, span):
    """Deterministic tick draw: one splitmix64 step, reduced to span."""
    x = (seed + 0x9E3779B97F4A7C15) & (1 << 64) - 1
    x = ((x ^ x >> 30) * 0xBF58476D1CE4E5B9) & (1 << 64) - 1
    x = ((x ^ x >> 27) * 0x94D049BB133111EB) & (1 << 64) - 1
    return (x ^ x >> 31) % span


def sim_cmd(args, seed, extra):
    return [args.sim,
            "--workload", args.workload,
            "--system", args.system,
            "--scale", str(args.scale),
            "--threads", str(args.threads),
            "--seed", str(seed)] + extra


def run(cmd, timeout):
    return subprocess.run(cmd, capture_output=True, text=True,
                          timeout=timeout)


def fail(rec, phase, why, proc=None):
    rec["error"] = f"{phase}: {why}"
    tail = (proc.stderr.strip().splitlines()[-10:]) if proc else []
    if tail:
        rec["stderr"] = tail
    return rec


def run_one(args, seed, extra, wal_path):
    rec = {"chaos_seed": seed, "exit": None, "verified": False,
           "violations": [], "repro": None}

    # Phase 1: learn the run length so the crash tick always lands
    # inside the run.
    try:
        ref = run(sim_cmd(args, seed, extra), args.timeout)
    except subprocess.TimeoutExpired:
        return fail(rec, "reference", f"timeout after {args.timeout}s")
    m = re.search(r"^cycles\s+(\d+)", ref.stdout, re.M)
    if ref.returncode != 0 or not m:
        return fail(rec, "reference",
                    f"exit {ref.returncode}, no cycle count", ref)
    cycles = int(m.group(1))
    crash_tick = 1 + lcg_below(seed, max(cycles - 1, 1))
    rec["crash_tick"] = crash_tick

    # Phase 2: the durable run, cut mid-flight.
    cmd = sim_cmd(args, seed, extra) + [
        "--durability", "wal", "--wal-file", wal_path,
        "--crash-at-tick", str(crash_tick), "--audit"]
    rec["repro"] = " ".join(cmd[1:])
    try:
        prod = run(cmd, args.timeout)
    except subprocess.TimeoutExpired:
        return fail(rec, "producer", f"timeout after {args.timeout}s")
    for line in prod.stderr.splitlines():
        if line.startswith("audit-violation:"):
            rec["violations"].append(
                line[len("audit-violation:"):].strip())
    if prod.returncode != 0 or rec["violations"]:
        return fail(rec, "producer",
                    f"exit {prod.returncode}, "
                    f"{len(rec['violations'])} violation(s)", prod)
    if not os.path.exists(wal_path):
        return fail(rec, "producer", "no dump written", prod)

    # Phase 3: independent schema validation of the dump.
    problems = check_wal.check_dump(wal_path)
    if problems:
        return fail(rec, "check_wal", "; ".join(problems))

    # Phase 4: forge a torn tail on every torn_every-th seed so the
    # mid-record recovery path is exercised even when the crash tick
    # fell between device flushes.
    if args.torn_every and seed % args.torn_every == 0:
        d = check_wal.parse_dump(wal_path)
        durable = len(d["log"])
        if durable > 8:
            cut = 1 + lcg_below(seed + 1, min(durable - 1, 64))
            check_wal.truncate_dump(wal_path, cut)
            rec["torn_forged_bytes"] = cut

    # Phase 5: recovery must replay the durable prefix into an
    # auditor-clean, oracle-bit-exact image.
    try:
        rcv = run([args.sim, "--recover", wal_path], args.timeout)
    except subprocess.TimeoutExpired:
        return fail(rec, "recover", f"timeout after {args.timeout}s")
    rec["exit"] = rcv.returncode
    rec["verified"] = any(
        line.strip() == "recover: verified yes"
        for line in rcv.stdout.splitlines())
    mt = re.search(r"^recover: torn tail: (\d+) bytes", rcv.stdout,
                   re.M)
    if mt:
        rec["torn_bytes_discarded"] = int(mt.group(1))
    mr = re.search(r"^recover: replayed (\d+) durable commits",
                   rcv.stdout, re.M)
    if mr:
        rec["replayed_commits"] = int(mr.group(1))
    if rcv.returncode != 0 or not rec["verified"]:
        return fail(rec, "recover",
                    f"exit {rcv.returncode}, verified "
                    f"{rec['verified']}", rcv)
    return rec


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("sim", help="path to the ptm_sim binary")
    ap.add_argument("--seeds", type=int, default=30,
                    help="number of seeds to sweep (default 30)")
    ap.add_argument("--start", type=int, default=1,
                    help="first seed (default 1)")
    ap.add_argument("--workload", default="kv")
    ap.add_argument("--system", default="sel-ptm")
    ap.add_argument("--scale", type=int, default=0)
    ap.add_argument("--threads", type=int, default=4)
    ap.add_argument("--torn-every", type=int, default=3,
                    help="forge a torn log tail on every Nth seed "
                         "(0 = never; default 3)")
    ap.add_argument("--timeout", type=int, default=120,
                    help="per-run timeout in seconds (default 120)")
    ap.add_argument("--out", default="",
                    help="write the ptm-chaos-v1 JSON report to FILE")
    args, extra = ap.parse_known_args()
    if extra and extra[0] == "--":
        extra = extra[1:]

    runs = []
    bad = 0
    torn = 0
    with tempfile.TemporaryDirectory() as td:
        for k in range(args.start, args.start + args.seeds):
            wal = os.path.join(td, f"crash-{k}.wal")
            rec = run_one(args, k, extra, wal)
            runs.append(rec)
            torn += "torn_bytes_discarded" in rec
            ok = (rec["exit"] == 0 and rec["verified"]
                  and not rec["violations"] and "error" not in rec)
            if not ok:
                bad += 1
                why = ("; ".join(rec["violations"])
                       or rec.get("error") or "recovery not verified")
                print(f"seed {k:4d} FAIL  {why}", file=sys.stderr)
                if rec["repro"]:
                    print(f"          repro: {rec['repro']}",
                          file=sys.stderr)
            else:
                note = (f"  torn {rec['torn_bytes_discarded']}B"
                        if "torn_bytes_discarded" in rec else "")
                print(f"seed {k:4d} ok  crash@{rec['crash_tick']} "
                      f"replayed {rec.get('replayed_commits', 0)}"
                      f"{note}")

    report = {
        "schema": "ptm-chaos-v1",
        "workload": args.workload,
        "system": args.system,
        "scale": args.scale,
        "threads": args.threads,
        "plan": "crash",
        "extra_args": extra,
        "seeds": args.seeds,
        "first_seed": args.start,
        "failed_runs": bad,
        "torn_tail_runs": torn,
        "total_violations": sum(len(r["violations"]) for r in runs),
        "runs": runs,
    }
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=1)
            f.write("\n")

    print(f"{args.seeds} seeds, {bad} failing, {torn} torn-tail "
          f"case(s), "
          f"{report['total_violations']} violation(s)")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
