#!/usr/bin/env python3
"""Analyze a ptm-timeseries-v1 JSONL stream.

Reads the interval stream written by --timeseries (or --live-stats)
and reports, per run in the file:

  * a per-interval table: commit/abort deltas, abort rate, committed
    tx per megacycle, and the host events/sec gauge;
  * run phases, detected by comparing each interval's commit rate to
    the run's median rate — consecutive intervals below half the
    median form a "cold" or "stalled" phase, those above 1.5x form a
    "burst" (warm-up ramps and contention collapses stand out
    immediately);
  * the whole-run vs steady-state (second-half) throughput split;
  * the final top-K hot pages by attributed conflicts (the heatmap
    is cumulative, so the last record carries run totals).

With --json the same analysis is emitted as one machine-readable
document; --top N bounds the hot-page listing (default 8).

Usage:
    timeseries_analyze.py TS.jsonl [--json] [--top N]
"""

import argparse
import json
import sys


def load_runs(path):
    """Split a JSONL file into runs: (header, [intervals]) pairs."""
    runs = []
    try:
        with open(path) as f:
            lines = f.readlines()
    except OSError as e:
        raise SystemExit(f"error: {path}: {e}")
    for i, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"error: {path}:{i}: invalid JSON: {e}")
        if rec.get("type") == "header":
            runs.append((rec, []))
        elif rec.get("type") == "interval":
            if not runs:
                raise SystemExit(
                    f"error: {path}:{i}: interval before any header")
            runs[-1][1].append(rec)
    if not runs:
        raise SystemExit(f"error: {path}: no ptm-timeseries-v1 runs")
    return runs


def rate(iv, key):
    """Per-megacycle rate of counter delta @key over the interval."""
    ticks = iv["t1"] - iv["t0"]
    if ticks <= 0:
        return 0.0
    return iv.get("d", {}).get(key, 0) / (ticks / 1e6)


def median(values):
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def detect_phases(intervals, lo=0.5, hi=1.5):
    """Classify each interval against the median commit rate.

    Returns a list of phases: contiguous interval ranges labelled
    "normal", "cold" (rate < lo * median) or "burst"
    (rate > hi * median). Zero-span flush records are ignored.
    """
    usable = [iv for iv in intervals if iv["t1"] > iv["t0"]]
    rates = [rate(iv, "tx.commits") for iv in usable]
    med = median(rates)

    def label(r):
        if med == 0.0:
            return "normal"
        if r < lo * med:
            return "cold"
        if r > hi * med:
            return "burst"
        return "normal"

    phases = []
    for iv, r in zip(usable, rates):
        tag = label(r)
        if phases and phases[-1]["label"] == tag:
            p = phases[-1]
            p["t1"] = iv["t1"]
            p["intervals"] += 1
            p["commits"] += iv.get("d", {}).get("tx.commits", 0)
        else:
            phases.append({
                "label": tag, "t0": iv["t0"], "t1": iv["t1"],
                "intervals": 1,
                "commits": iv.get("d", {}).get("tx.commits", 0),
            })
    return phases, med


def analyze_run(header, intervals, top_n):
    """Produce the analysis dict for one run's interval stream."""
    total = {"commits": 0, "aborts": 0, "events": 0}
    for iv in intervals:
        d = iv.get("d", {})
        total["commits"] += d.get("tx.commits", 0)
        total["aborts"] += d.get("tx.aborts", 0)
        total["events"] += iv.get("events", 0)

    t_begin = intervals[0]["t0"] if intervals else 0
    t_end = intervals[-1]["t1"] if intervals else 0
    span = t_end - t_begin

    # Steady state: intervals starting in the second half of the run.
    half = t_begin + span // 2
    steady_commits = 0
    steady_span = 0
    for iv in intervals:
        if iv["t0"] < half:
            continue
        steady_commits += iv.get("d", {}).get("tx.commits", 0)
        steady_span += iv["t1"] - iv["t0"]

    phases, med = detect_phases(intervals)

    hot = []
    for iv in reversed(intervals):
        if iv.get("hot_pages"):
            hot = iv["hot_pages"][:top_n]
            break

    rows = []
    for iv in intervals:
        d = iv.get("d", {})
        commits = d.get("tx.commits", 0)
        aborts = d.get("tx.aborts", 0)
        attempts = commits + aborts
        rows.append({
            "n": iv["n"], "t0": iv["t0"], "t1": iv["t1"],
            "commits": commits, "aborts": aborts,
            "abort_rate": aborts / attempts if attempts else 0.0,
            "tx_per_mcycle": rate(iv, "tx.commits"),
            "events_per_sec": iv.get("events_per_sec", 0.0),
        })

    return {
        "system": header.get("system"),
        "seed": header.get("seed"),
        "cores": header.get("cores"),
        "interval": header.get("interval"),
        "ticks": span,
        "commits": total["commits"],
        "aborts": total["aborts"],
        "events": total["events"],
        "tx_per_mcycle": total["commits"] / (span / 1e6) if span
        else 0.0,
        "steady_tx_per_mcycle":
            steady_commits / (steady_span / 1e6) if steady_span
            else 0.0,
        "median_tx_per_mcycle": med,
        "intervals": rows,
        "phases": phases,
        "hot_pages": hot,
    }


def print_run(run_no, a):
    print(f"run {run_no}: {a['system']} seed={a['seed']} "
          f"cores={a['cores']} interval={a['interval']} "
          f"ticks={a['ticks']}")
    print(f"  commits {a['commits']}  aborts {a['aborts']}  "
          f"events {a['events']}")
    print(f"  throughput {a['tx_per_mcycle']:.1f} tx/Mcyc whole-run, "
          f"{a['steady_tx_per_mcycle']:.1f} tx/Mcyc steady-state "
          f"(median interval {a['median_tx_per_mcycle']:.1f})")

    print(f"  {'n':>4} {'t0':>12} {'t1':>12} {'commits':>8} "
          f"{'aborts':>7} {'abort%':>7} {'tx/Mcyc':>8} {'ev/sec':>10}")
    for r in a["intervals"]:
        print(f"  {r['n']:>4} {r['t0']:>12} {r['t1']:>12} "
              f"{r['commits']:>8} {r['aborts']:>7} "
              f"{100.0 * r['abort_rate']:>6.1f}% "
              f"{r['tx_per_mcycle']:>8.1f} "
              f"{r['events_per_sec']:>10.3g}")

    print("  phases:")
    for p in a["phases"]:
        print(f"    {p['label']:>6}  [{p['t0']}, {p['t1']})  "
              f"{p['intervals']} interval(s), {p['commits']} commits")

    if a["hot_pages"]:
        print("  hot pages (conflicts, cumulative):")
        for e in a["hot_pages"]:
            page = "?" if e["page"] < 0 else str(e["page"])
            print(f"    page {page:>8}  count {e['count']:>8}  "
                  f"(err <= {e['err']})")
    else:
        print("  hot pages: none recorded")


def main():
    ap = argparse.ArgumentParser(
        description="Analyze a ptm-timeseries-v1 JSONL stream.")
    ap.add_argument("stream", help="JSONL file from --timeseries")
    ap.add_argument("--json", action="store_true",
                    help="emit the analysis as JSON instead of tables")
    ap.add_argument("--top", type=int, default=8, metavar="N",
                    help="hot pages to list (default 8)")
    args = ap.parse_args()

    runs = load_runs(args.stream)
    analyses = []
    for header, intervals in runs:
        if not intervals:
            print(f"warning: run with no intervals "
                  f"(system={header.get('system')!r})",
                  file=sys.stderr)
            continue
        analyses.append(analyze_run(header, intervals, args.top))

    if args.json:
        json.dump({"schema": "ptm-timeseries-analysis-v1",
                   "runs": analyses}, sys.stdout, indent=1)
        print()
    else:
        for i, a in enumerate(analyses):
            if i:
                print()
            print_run(i, a)
    return 0 if analyses else 1


if __name__ == "__main__":
    sys.exit(main())
