#!/usr/bin/env python3
"""Analysis toolkit for ptm-trace-v1 JSONL traces.

Reads a trace written with --trace FILE --trace-format jsonl and
reports, per capture:

  - an event census and the tick span covered by the ring buffer;
  - the conflict graph (winner -> loser edges with block addresses),
    its hottest edges, and the most conflicted blocks and pages;
  - abort chains: runs of conflict edges where the loser of one edge
    comes back as the winner of a later one (abort propagation);
  - wasted work: ticks spent in transaction attempts that aborted,
    versus ticks in attempts that committed.

Usage:
  trace_analyze.py FILE [--top N] [--json] [--dot FILE]

--top N   show the N hottest edges/blocks/pages (default 5)
--json    emit the full analysis as one JSON object on stdout
--dot     write the merged conflict graph in Graphviz DOT form

The file is schema-checked while parsing; malformed lines are
reported and make the exit status non-zero.
"""

import argparse
import json
import sys
from collections import Counter, defaultdict

PAGE_SHIFT = 12
BLOCK_SHIFT = 6

ABORT_REASONS = {
    0: "conflict-lost",
    1: "non-tx-conflict",
    2: "multi-writer-eviction",
    3: "explicit",
}


def parse(path):
    """Parse a ptm-trace-v1 file into (captures, errors)."""
    errors = []
    captures = []
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines:
        return [], [f"{path}: empty file"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        return [], [f"{path}:1: {e}"]
    if header.get("schema") != "ptm-trace-v1":
        if "traceEvents" in lines[0]:
            return [], [f"{path}: chrome-format trace; this tool "
                        "reads --trace-format jsonl output"]
        return [], [f"{path}: bad schema {header.get('schema')!r}"]

    cur = None
    for n, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{path}:{n}: {e}")
            continue
        ty = obj.get("type")
        if ty == "capture":
            cur = {"label": obj.get("label", f"capture {n}"),
                   "recorded": obj.get("recorded", 0),
                   "dropped": obj.get("dropped", 0),
                   "series": obj.get("series", []),
                   "events": []}
            captures.append(cur)
        elif ty == "ev":
            if cur is None:
                errors.append(f"{path}:{n}: event before capture")
                continue
            if not isinstance(obj.get("t"), int) or "ev" not in obj:
                errors.append(f"{path}:{n}: malformed event")
                continue
            cur["events"].append(obj)
        else:
            errors.append(f"{path}:{n}: unknown line type {ty!r}")
    if len(captures) != header.get("captures"):
        errors.append(
            f"{path}: header says {header.get('captures')} captures, "
            f"found {len(captures)}")
    return captures, errors


def txname(tx):
    return "non-tx" if tx is None else f"tx{tx}"


def analyze(cap, top):
    ev = cap["events"]
    census = Counter(e["ev"] for e in ev)
    span = (ev[0]["t"], ev[-1]["t"]) if ev else (0, 0)

    # Conflict graph: winner -> loser, with per-block counts. A
    # missing "tx" field means the winner was a non-transactional
    # access (those always win arbitration).
    edges = Counter()
    blocks = Counter()
    pages = Counter()
    edge_list = []
    for e in ev:
        if e["ev"] != "conflict_edge":
            continue
        w, l = e.get("tx"), e.get("tx2")
        addr = e.get("a", 0)
        edges[(w, l)] += 1
        blocks[addr >> BLOCK_SHIFT] += 1
        pages[addr >> PAGE_SHIFT] += 1
        edge_list.append((e["t"], w, l))

    # Abort chains: when the loser of an edge later wins one, the
    # second victim's abort is (transitively) downstream of the first
    # edge. chain[tx] is the depth tx sits at; parents reconstruct the
    # deepest path.
    chain = {}
    parent = {}
    deepest, deepest_tx = 0, None
    for t, w, l in edge_list:
        if l is None:
            continue
        depth = chain.get(w, 0) + 1 if w is not None else 1
        if depth > chain.get(l, 0):
            chain[l] = depth
            parent[l] = (w, t)
            if depth > deepest:
                deepest, deepest_tx = depth, l
    chain_path = []
    tx = deepest_tx
    while tx is not None and len(chain_path) <= deepest:
        w, t = parent.get(tx, (None, None))
        chain_path.append({"tx": tx, "aborted_by": w, "tick": t})
        tx = w
    # Parents can deepen after a depth is recorded, so the walked
    # path is the authoritative hop count.
    deepest = len(chain_path)

    # Wasted work: pair each attempt start (tx_begin / tx_restart)
    # with the commit or abort that closes it, and bucket the ticks.
    open_at = {}
    wasted = useful = 0
    aborted_attempts = committed = 0
    abort_causes = Counter()
    for e in ev:
        kind = e["ev"]
        tx = e.get("tx")
        if kind in ("tx_begin", "tx_restart"):
            open_at[tx] = e["t"]
        elif kind == "tx_commit":
            if tx in open_at:
                useful += e["t"] - open_at.pop(tx)
            committed += 1
        elif kind == "tx_abort":
            if tx in open_at:
                wasted += e["t"] - open_at.pop(tx)
            aborted_attempts += 1
            abort_causes[ABORT_REASONS.get(
                e.get("a", 0), f"reason {e.get('a')}")] += 1

    total = wasted + useful
    return {
        "label": cap["label"],
        "recorded": cap["recorded"],
        "dropped": cap["dropped"],
        "tick_span": {"first": span[0], "last": span[1]},
        "event_census": dict(census.most_common()),
        "conflicts": {
            "edges": sum(edges.values()),
            "top_edges": [
                {"winner": txname(w), "loser": txname(l), "count": c}
                for (w, l), c in edges.most_common(top)],
            "top_blocks": [
                {"block": hex(b << BLOCK_SHIFT), "count": c}
                for b, c in blocks.most_common(top)],
            "top_pages": [
                {"page": hex(p << PAGE_SHIFT), "count": c}
                for p, c in pages.most_common(top)],
        },
        "abort_chain": {
            "deepest": deepest,
            "path": list(reversed(chain_path)),
        },
        "wasted_work": {
            "committed_attempts": committed,
            "aborted_attempts": aborted_attempts,
            "abort_causes": dict(abort_causes.most_common()),
            "useful_ticks": useful,
            "wasted_ticks": wasted,
            "wasted_pct": 100.0 * wasted / total if total else 0.0,
        },
    }


def write_dot(path, captures):
    """Merge every capture's conflict graph into one DOT digraph."""
    edges = Counter()
    for cap in captures:
        for e in cap["events"]:
            if e["ev"] == "conflict_edge":
                edges[(e.get("tx"), e.get("tx2"))] += 1
    with open(path, "w") as f:
        f.write("digraph conflicts {\n")
        f.write("  rankdir=LR;\n")
        for (w, l), c in edges.most_common():
            f.write(f'  "{txname(w)}" -> "{txname(l)}" '
                    f'[label="{c}"];\n')
        f.write("}\n")


def report(a, out):
    print(f"== {a['label']} ==", file=out)
    print(f"  events   {a['recorded']} recorded, {a['dropped']} "
          f"dropped, ticks {a['tick_span']['first']}.."
          f"{a['tick_span']['last']}", file=out)
    census = ", ".join(f"{k}:{v}"
                       for k, v in list(a["event_census"].items())[:8])
    print(f"  census   {census}", file=out)
    c = a["conflicts"]
    print(f"  conflict {c['edges']} edges", file=out)
    for e in c["top_edges"]:
        print(f"    {e['winner']:>8} -> {e['loser']:<8} x{e['count']}",
              file=out)
    if c["top_blocks"]:
        print("    hot blocks: " +
              ", ".join(f"{b['block']}({b['count']})"
                        for b in c["top_blocks"]), file=out)
        print("    hot pages:  " +
              ", ".join(f"{p['page']}({p['count']})"
                        for p in c["top_pages"]), file=out)
    ch = a["abort_chain"]
    if ch["deepest"]:
        path = " -> ".join(
            [txname(ch["path"][0]["aborted_by"])] +
            [txname(h["tx"]) for h in ch["path"]])
        print(f"  chains   deepest abort chain: {ch['deepest']} hops "
              f"({path})", file=out)
    w = a["wasted_work"]
    print(f"  work     {w['committed_attempts']} commits, "
          f"{w['aborted_attempts']} aborted attempts; "
          f"{w['wasted_ticks']} wasted / {w['useful_ticks']} useful "
          f"ticks ({w['wasted_pct']:.1f}% wasted)", file=out)
    if w["abort_causes"]:
        print("           causes: " +
              ", ".join(f"{k}:{v}"
                        for k, v in w["abort_causes"].items()),
              file=out)


def main():
    ap = argparse.ArgumentParser(
        description="Analyze a ptm-trace-v1 JSONL trace.")
    ap.add_argument("file")
    ap.add_argument("--top", type=int, default=5)
    ap.add_argument("--json", action="store_true")
    ap.add_argument("--dot", metavar="FILE")
    args = ap.parse_args()

    captures, errors = parse(args.file)
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if not captures:
        return 1

    analyses = [analyze(c, args.top) for c in captures]
    if args.dot:
        write_dot(args.dot, captures)
    if args.json:
        json.dump({"schema": "ptm-trace-analysis-v1",
                   "captures": analyses}, sys.stdout, indent=1)
        print()
    else:
        for a in analyses:
            report(a, sys.stdout)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
