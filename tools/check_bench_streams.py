#!/usr/bin/env python3
"""Guard the machine-readable stdout streams of a bench binary.

Checks three invocations of the given bench at --scale 0:

 1. `--json - --trace FILE`  : stdout must be exactly one parseable
    ptm-bench-v1 JSON document (tables/status must go to stderr);
 2. `--trace - --json FILE`  : stdout must be machine-clean JSONL
    (every non-empty line parses as a JSON object);
 3. `--json - --trace -`     : both streams cannot own stdout -- the
    binary must refuse with exit code 2 and print nothing on stdout.

Usage: check_bench_streams.py PATH_TO_BENCH
"""

import json
import os
import subprocess
import sys
import tempfile


def run(cmd):
    return subprocess.run(cmd, capture_output=True, text=True)


def check(bench):
    errors = []
    tmpdir = tempfile.mkdtemp(prefix="bench_streams_")
    trace_path = os.path.join(tmpdir, "t.jsonl")
    json_path = os.path.join(tmpdir, "b.json")

    # 1. JSON owns stdout; trace goes to a file.
    proc = run([bench, "--scale", "0", "--json", "-",
                "--trace", trace_path])
    if proc.returncode != 0:
        errors.append(f"--json -: exited {proc.returncode}")
    else:
        try:
            doc = json.loads(proc.stdout)
            if doc.get("schema") != "ptm-bench-v1":
                errors.append(f"--json -: bad schema tag "
                              f"{doc.get('schema')!r}")
            if not doc.get("rows"):
                errors.append("--json -: no rows")
        except json.JSONDecodeError as e:
            errors.append(f"--json -: stdout not clean JSON: {e}")
        if not os.path.exists(trace_path):
            errors.append("--json -: trace file not written")

    # 2. Trace owns stdout; JSON goes to a file.
    proc = run([bench, "--scale", "0", "--trace", "-",
                "--json", json_path])
    if proc.returncode != 0:
        errors.append(f"--trace -: exited {proc.returncode}")
    else:
        lines = [l for l in proc.stdout.splitlines() if l.strip()]
        if not lines:
            errors.append("--trace -: no trace records on stdout")
        for i, line in enumerate(lines):
            try:
                rec = json.loads(line)
                if not isinstance(rec, dict):
                    raise ValueError("not an object")
            except (json.JSONDecodeError, ValueError) as e:
                errors.append(
                    f"--trace -: stdout line {i + 1} not a JSON "
                    f"object: {e} ({line[:60]!r})")
                break
        try:
            with open(json_path) as f:
                json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"--trace -: side JSON file bad: {e}")

    # 3. Both on stdout must be refused with exit 2, stdout silent.
    proc = run([bench, "--scale", "0", "--json", "-", "--trace", "-"])
    if proc.returncode != 2:
        errors.append(f"--json - --trace -: expected exit 2, got "
                      f"{proc.returncode}")
    if proc.stdout.strip():
        errors.append("--json - --trace -: stdout not empty on refusal")
    if "stdout" not in proc.stderr:
        errors.append("--json - --trace -: no diagnostic on stderr")

    return errors


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = check(sys.argv[1])
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    print(f"{os.path.basename(sys.argv[1])}: "
          + ("ok" if not errors else f"{len(errors)} error(s)"))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
