#!/usr/bin/env python3
"""Schema and reconciliation checker for ptm-postmortem-v1 dumps.

Runs ptm_sim on the contended KV workload (zipf 0.99) with a retry
budget so the starvation token fires, post-mortem capture armed, and
validates the dump file (concatenated JSON documents):

  * every document carries the schema tag, a known trigger kind, a
    repro line, and well-typed nodes / edges / records sections;
  * the abort-causality graph is a DAG: edges reference valid node
    ids, every edge goes to a strictly earlier tick (terminal nodes
    excepted), and a topological sort completes;
  * roots are generation 0 and edge targets are exactly one
    generation deeper than their source or already-known nodes;
  * records are sorted by tx id and every record's tx appears in the
    node list;
  * the run's ptm-stats-v1 "forensics" section reconciles: its
    wasted_ticks_total equals the profiler's tx_wasted bucket summed
    over cores (runs that finish before the tick limit), and the
    number of dumped documents equals forensics.postmortems;
  * off by default: a run without --postmortem / --postmortem-on-abort
    writes no dump, prints no post-mortem block, and reports
    armed=false with zero postmortems.

With --self-test the document validator and the reconciliation check
run against crafted inputs (bad schema, cyclic edges, dangling edge
index, tick ordering violation, wasted-tick mismatch) instead of
driving the simulator.

Usage:
    check_postmortem_json.py PATH_TO_PTM_SIM
    check_postmortem_json.py --self-test
"""

import json
import os
import subprocess
import sys
import tempfile

TRIGGER_KINDS = {
    "watchdog", "starvation-grant", "audit-violation", "chaos-inject",
    "abort-threshold",
}

NODE_CAUSES = {"conflict", "nontx", "multiwriter", "explicit",
               "terminal"}

NODE_FIELDS = {
    "id": int,
    "tx": int,
    "tick": int,
    "attempt": int,
    "cause": str,
    "where": int,
    "page": int,
    "winner": int,
    "generation": int,
}

RECORD_FIELDS = {
    "tx": int,
    "thread": int,
    "proc": int,
    "first_begin": int,
    "last_begin": int,
    "end_tick": int,
    "committed": bool,
    "attempts": int,
    "aborts": int,
    "kills": int,
    "spt_misses": int,
    "tav_misses": int,
    "shadow_allocs": int,
    "wasted_ticks": int,
    "lost_ticks": int,
    "recent_aborts": list,
}


def parse_docs(text):
    """Split a dump file of concatenated JSON documents."""
    docs = []
    dec = json.JSONDecoder()
    i, n = 0, len(text)
    while i < n:
        while i < n and text[i].isspace():
            i += 1
        if i >= n:
            break
        doc, end = dec.raw_decode(text, i)
        docs.append(doc)
        i = end
    return docs


def validate_doc(doc, label="doc"):
    """Structural validation of one ptm-postmortem-v1 document."""
    errors = []

    def err(msg):
        errors.append(f"{label}: {msg}")

    if doc.get("schema") != "ptm-postmortem-v1":
        err(f"bad schema tag {doc.get('schema')!r}")
    trig = doc.get("trigger")
    if not isinstance(trig, dict):
        err("missing trigger object")
        trig = {}
    if trig.get("kind") not in TRIGGER_KINDS:
        err(f"unknown trigger kind {trig.get('kind')!r}")
    for f, ty in (("tick", int), ("tx", int), ("detail", str)):
        if not isinstance(trig.get(f), ty):
            err(f"trigger.{f} missing or mistyped")
    if not isinstance(doc.get("repro"), str):
        err("repro line missing")
    if not isinstance(doc.get("generations"), int):
        err("generations missing")
    chain = doc.get("chain_depth")
    if not isinstance(chain, int):
        err("chain_depth missing")

    nodes = doc.get("nodes")
    if not isinstance(nodes, list) or not nodes:
        err("nodes missing or empty")
        return errors
    for k, node in enumerate(nodes):
        for f, ty in NODE_FIELDS.items():
            if not isinstance(node.get(f), ty):
                err(f"node {k}: {f} missing or mistyped")
        if node.get("id") != k:
            err(f"node {k}: id {node.get('id')} not dense")
        if isinstance(node.get("cause"), str) and \
                node["cause"] not in NODE_CAUSES:
            err(f"node {k}: unknown cause {node['cause']!r}")

    edges = doc.get("edges")
    if not isinstance(edges, list):
        err("edges missing")
        return errors
    adj = {k: [] for k in range(len(nodes))}
    for k, edge in enumerate(edges):
        fr, to = edge.get("from"), edge.get("to")
        if not isinstance(fr, int) or not isinstance(to, int) or \
                not (0 <= fr < len(nodes)) or not (0 <= to < len(nodes)):
            err(f"edge {k}: dangling endpoint {fr!r} -> {to!r}")
            continue
        adj[fr].append(to)
        # Victim-abort -> killer-abort edges must go strictly back in
        # time; a terminal target (tick 0, no recorded abort) is the
        # one exception.
        src, dst = nodes[fr], nodes[to]
        if isinstance(src.get("tick"), int) and \
                isinstance(dst.get("tick"), int) and \
                dst["tick"] != 0 and dst["tick"] >= src["tick"]:
            err(f"edge {k}: target tick {dst['tick']} not strictly "
                f"before source tick {src['tick']}")

    # Acyclicity via DFS three-coloring (independent of the tick
    # argument above, so a forged tick can't mask a cycle).
    color = [0] * len(nodes)

    def has_cycle(v):
        color[v] = 1
        for w in adj[v]:
            if color[w] == 1:
                return True
            if color[w] == 0 and has_cycle(w):
                return True
        color[v] = 2
        return False

    sys.setrecursionlimit(max(1000, 10 * len(nodes) + 100))
    if any(color[v] == 0 and has_cycle(v) for v in range(len(nodes))):
        err("causality graph has a cycle")

    # A deduped node keeps the generation of the first path that
    # reached it, so chain_depth may exceed the deepest node's
    # generation — but never sit below it or above the search bound.
    max_gen = max((n.get("generation", 0) for n in nodes
                   if isinstance(n.get("generation"), int)), default=0)
    if isinstance(chain, int) and chain < max_gen:
        err(f"chain_depth {chain} < deepest node generation {max_gen}")
    gens = doc.get("generations")
    if isinstance(chain, int) and isinstance(gens, int) and chain > gens:
        err(f"chain_depth {chain} > generation bound {gens}")

    records = doc.get("records")
    if not isinstance(records, list):
        err("records missing")
        return errors
    node_txs = {n.get("tx") for n in nodes}
    prev = None
    for k, rec in enumerate(records):
        for f, ty in RECORD_FIELDS.items():
            if not isinstance(rec.get(f), ty):
                err(f"record {k}: {f} missing or mistyped")
        tx = rec.get("tx")
        if prev is not None and isinstance(tx, int) and tx <= prev:
            err(f"record {k}: tx {tx} not sorted ascending")
        prev = tx if isinstance(tx, int) else prev
        if tx not in node_txs:
            err(f"record {k}: tx {tx} not in the node list")

    fl = doc.get("flightrec")
    if not isinstance(fl, dict):
        err("flightrec section missing")
    else:
        for f in ("depth", "live", "retired", "dropped_records",
                  "dropped_wasted_ticks"):
            if not isinstance(fl.get(f), int):
                err(f"flightrec.{f} missing or mistyped")
    return errors


def reconcile_forensics(stats_doc):
    """Forensics totals vs. the profiler's tx_wasted bucket."""
    errors = []
    forensics = stats_doc.get("forensics")
    if not isinstance(forensics, dict):
        return ["stats json has no forensics section"]
    for f in ("depth", "generations", "live_records", "retired_records",
              "dropped_records", "wasted_ticks_total",
              "dropped_wasted_ticks", "max_wasted_ticks",
              "deepest_chain", "postmortems", "dropped_reports"):
        if not isinstance(forensics.get(f), int):
            errors.append(f"forensics.{f} missing or mistyped")
    if not isinstance(forensics.get("armed"), bool):
        errors.append("forensics.armed missing")
    if not isinstance(forensics.get("top_killers"), list):
        errors.append("forensics.top_killers missing")
    if errors:
        return errors

    group = stats_doc.get("groups", {}).get("flightrec")
    if not isinstance(group, dict):
        errors.append("stats json has no flightrec group")
    else:
        dropped = group.get("dropped_records", {}).get("value")
        if dropped != forensics["dropped_records"]:
            errors.append(
                f"flightrec.dropped_records {dropped} != forensics "
                f"section {forensics['dropped_records']}")

    profile = stats_doc.get("profile")
    hit_limit = stats_doc.get("groups", {}).get("sys", {}) \
        .get("hit_tick_limit", {}).get("value", 0)
    if isinstance(profile, dict) and not hit_limit:
        tx_wasted = sum(c.get("ticks", {}).get("tx_wasted", 0)
                        for c in profile.get("cores", []))
        if forensics["wasted_ticks_total"] != tx_wasted:
            errors.append(
                f"forensics.wasted_ticks_total "
                f"{forensics['wasted_ticks_total']} != profiler "
                f"tx_wasted bucket {tx_wasted}")
    return errors


def check_run(ptm_sim):
    ptm_sim = os.path.abspath(ptm_sim)
    errors = []
    with tempfile.TemporaryDirectory() as tmp:
        pm_path = os.path.join(tmp, "pm.json")
        stats_path = os.path.join(tmp, "stats.json")
        cmd = [
            ptm_sim, "--workload", "kv", "--system", "sel-ptm",
            "--scale", "0", "--threads", "4", "--seed", "7",
            "--wl-opt", "zipf=0.99", "--retry-budget", "6",
            "--profile", "--postmortem", pm_path,
            "--stats-json", stats_path,
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            return [f"ptm_sim exited {proc.returncode}: "
                    f"{proc.stderr.strip()[:500]}"]
        try:
            with open(pm_path) as f:
                docs = parse_docs(f.read())
        except (OSError, json.JSONDecodeError) as e:
            return [f"postmortem dump not readable: {e}"]
        try:
            with open(stats_path) as f:
                stats_doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            return [f"stats json not readable: {e}"]

        if not docs:
            errors.append("armed contended run captured no post-mortem")
        for i, doc in enumerate(docs):
            errors.extend(validate_doc(doc, label=f"doc {i}"))
        errors.extend(reconcile_forensics(stats_doc))

        forensics = stats_doc.get("forensics", {})
        if forensics.get("armed") is not True:
            errors.append("armed run reports forensics.armed != true")
        if forensics.get("postmortems") != len(docs):
            errors.append(
                f"forensics.postmortems {forensics.get('postmortems')} "
                f"!= {len(docs)} dumped documents")
        # The starvation token fired (retry budget 6 under zipf 0.99),
        # so at least one dump must name that trigger with a killer
        # chain behind it.
        grants = [d for d in docs
                  if d.get("trigger", {}).get("kind")
                  == "starvation-grant"]
        if not grants:
            errors.append("no starvation-grant post-mortem captured")
        elif not any(d.get("edges") for d in grants):
            errors.append("starvation-grant post-mortems have no "
                          "causality edges")
        if "post-mortem" not in proc.stderr:
            errors.append("armed run printed no human post-mortem "
                          "block on stderr")

        # Off by default: the same run without forensics flags.
        off_stats = os.path.join(tmp, "off.json")
        proc = subprocess.run(
            [ptm_sim, "--workload", "kv", "--system", "sel-ptm",
             "--scale", "0", "--threads", "4", "--seed", "7",
             "--wl-opt", "zipf=0.99", "--retry-budget", "6",
             "--stats-json", off_stats],
            capture_output=True, text=True, cwd=tmp)
        if proc.returncode != 0:
            errors.append(f"control run exited {proc.returncode}")
        if "post-mortem" in proc.stderr or "post-mortem" in proc.stdout:
            errors.append("control run printed a post-mortem block")
        try:
            with open(off_stats) as f:
                off_doc = json.load(f)
            off = off_doc.get("forensics", {})
            if off.get("armed") is not False:
                errors.append("control run reports armed != false")
            if off.get("postmortems") != 0:
                errors.append("control run captured post-mortems")
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"control stats not readable: {e}")
    return errors


def self_test():
    """Exercise the validator on crafted documents."""
    failures = []

    def node(i, tx, tick, gen, winner=-1):
        return {"id": i, "tx": tx, "tick": tick, "attempt": 1,
                "cause": "conflict", "where": 4096, "page": 1,
                "winner": winner, "generation": gen}

    def record(tx):
        return {"tx": tx, "thread": 0, "proc": 0, "first_begin": 1,
                "last_begin": 1, "end_tick": 0, "committed": False,
                "attempts": 2, "aborts": 1, "kills": 0,
                "spt_misses": 0, "tav_misses": 0, "shadow_allocs": 0,
                "wasted_ticks": 0, "lost_ticks": 5,
                "recent_aborts": []}

    def doc(**kw):
        d = {"schema": "ptm-postmortem-v1",
             "trigger": {"kind": "watchdog", "tick": 100, "tx": 1,
                         "detail": "test"},
             "repro": "--seed 1", "generations": 8, "chain_depth": 1,
             "nodes": [node(0, 1, 90, 0, winner=2),
                       node(1, 2, 80, 1)],
             "edges": [{"from": 0, "to": 1}],
             "records": [record(1), record(2)],
             "flightrec": {"depth": 256, "live": 2, "retired": 0,
                           "dropped_records": 0,
                           "dropped_wasted_ticks": 0}}
        d.update(kw)
        return d

    # 1. A well-formed document must pass clean.
    errs = validate_doc(doc())
    if errs:
        failures.append(f"clean document flagged: {errs}")

    # 2. A bad schema tag must be detected.
    errs = validate_doc(doc(schema="nope"))
    if not any("schema" in e for e in errs):
        failures.append("bad schema tag not detected")

    # 3. A cycle must be detected even when ticks are forged to pass
    # the ordering check.
    d = doc(edges=[{"from": 0, "to": 1}, {"from": 1, "to": 0}])
    d["nodes"][1]["tick"] = 0  # terminal: exempt from tick ordering
    errs = validate_doc(d)
    if not any("cycle" in e for e in errs):
        failures.append("cyclic edges not detected")

    # 4. A dangling edge index must be detected.
    errs = validate_doc(doc(edges=[{"from": 0, "to": 7}]))
    if not any("dangling" in e for e in errs):
        failures.append("dangling edge not detected")

    # 5. An edge forward in time must be detected.
    d = doc()
    d["nodes"][1]["tick"] = 95  # later than source's 90
    errs = validate_doc(d)
    if not any("strictly before" in e for e in errs):
        failures.append("tick ordering violation not detected")

    # 6. Unsorted records must be detected.
    d = doc(records=[record(2), record(1)])
    errs = validate_doc(d)
    if not any("sorted" in e for e in errs):
        failures.append("unsorted records not detected")

    # 7. Reconciliation must catch a wasted-tick mismatch and pass
    # the exact case.
    def stats(wasted_total, bucket):
        return {
            "forensics": {
                "depth": 256, "generations": 8, "armed": True,
                "live_records": 0, "retired_records": 1,
                "dropped_records": 0,
                "wasted_ticks_total": wasted_total,
                "dropped_wasted_ticks": 0, "max_wasted_ticks": 0,
                "deepest_chain": 0, "postmortems": 0,
                "dropped_reports": 0, "top_killers": []},
            "groups": {
                "flightrec": {"dropped_records": {"kind": "counter",
                                                  "value": 0}},
                "sys": {"hit_tick_limit": {"kind": "scalar",
                                           "value": 0}}},
            "profile": {"cores": [{"ticks": {"tx_wasted": bucket}}]},
        }

    errs = reconcile_forensics(stats(10, 12))
    if not any("tx_wasted" in e for e in errs):
        failures.append("wasted-tick mismatch not detected")
    errs = reconcile_forensics(stats(12, 12))
    if errs:
        failures.append(f"exact reconciliation flagged: {errs}")

    for f in failures:
        print(f"self-test FAIL: {f}", file=sys.stderr)
    print("self-test: " + ("ok" if not failures else
                           f"{len(failures)} failure(s)"))
    return 1 if failures else 0


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        return self_test()
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = check_run(sys.argv[1])
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    print("postmortem: " + ("ok" if not errors else
                            f"{len(errors)} error(s)"))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
