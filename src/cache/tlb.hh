/**
 * @file
 * Per-core fully-associative TLB (paper: 512 entries, 4 KB pages).
 *
 * Entries are tagged by (process, virtual page) and translate to the
 * *home* physical page: shadow pages are invisible to the TLB by design
 * — "the physical address seen by the cache hierarchy and the TLB
 * structures is the home page physical address" (section 3.2.3).
 */

#ifndef PTM_CACHE_TLB_HH
#define PTM_CACHE_TLB_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace ptm
{

/** Fully-associative TLB with LRU replacement. */
class Tlb
{
  public:
    explicit Tlb(unsigned entries) : entries_(entries) {}

    /**
     * Translate (proc, vpage). @return the home physical page, or
     * invalidPage on a TLB miss.
     */
    PageNum
    lookup(ProcId proc, PageNum vpage)
    {
        for (auto &e : entries_) {
            if (e.valid && e.proc == proc && e.vpage == vpage) {
                e.lastUse = ++clock_;
                ++hits;
                return e.ppage;
            }
        }
        ++misses;
        return invalidPage;
    }

    /** Install a translation, evicting LRU if full. */
    void
    insert(ProcId proc, PageNum vpage, PageNum ppage)
    {
        Entry *victim = nullptr;
        for (auto &e : entries_) {
            if (e.valid && e.proc == proc && e.vpage == vpage) {
                victim = &e;
                break;
            }
            if (!e.valid) {
                if (!victim || victim->valid)
                    victim = &e;
            } else if (!victim ||
                       (victim->valid && e.lastUse < victim->lastUse)) {
                victim = &e;
            }
        }
        victim->valid = true;
        victim->proc = proc;
        victim->vpage = vpage;
        victim->ppage = ppage;
        victim->lastUse = ++clock_;
    }

    /** Shootdown one translation (page swapped / remapped). */
    void
    invalidate(ProcId proc, PageNum vpage)
    {
        for (auto &e : entries_)
            if (e.valid && e.proc == proc && e.vpage == vpage)
                e.valid = false;
    }

    /** Drop all entries of one process. */
    void
    flushProc(ProcId proc)
    {
        for (auto &e : entries_)
            if (e.valid && e.proc == proc)
                e.valid = false;
    }

    /** Drop everything. */
    void
    flushAll()
    {
        for (auto &e : entries_)
            e.valid = false;
    }

    Counter hits;
    Counter misses;

  private:
    struct Entry
    {
        bool valid = false;
        ProcId proc = 0;
        PageNum vpage = 0;
        PageNum ppage = 0;
        std::uint64_t lastUse = 0;
    };

    std::vector<Entry> entries_;
    std::uint64_t clock_ = 0;
};

} // namespace ptm

#endif // PTM_CACHE_TLB_HH
