/**
 * @file
 * Per-core fully-associative TLB (paper: 512 entries, 4 KB pages).
 *
 * Entries are tagged by (process, virtual page) and translate to the
 * *home* physical page: shadow pages are invisible to the TLB by design
 * — "the physical address seen by the cache hierarchy and the TLB
 * structures is the home page physical address" (section 3.2.3).
 *
 * Lookup, insert and eviction are O(1): an open-addressing index maps
 * (proc, vpage) to a slab slot, and the slots are threaded on an
 * intrusive recency list whose tail is the LRU victim — the same
 * victim the previous linear scan over 512 entries selected (use
 * stamps were unique), so simulated hit/miss behavior is unchanged.
 */

#ifndef PTM_CACHE_TLB_HH
#define PTM_CACHE_TLB_HH

#include <cstdint>
#include <vector>

#include "sim/flat_map.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ptm
{

/** Fully-associative TLB with LRU replacement. */
class Tlb
{
  public:
    explicit Tlb(unsigned entries) : slab_(entries)
    {
        free_.reserve(entries);
        for (unsigned i = entries; i-- > 0;)
            free_.push_back(i);
        index_.reserve(entries);
    }

    /**
     * Translate (proc, vpage). @return the home physical page, or
     * invalidPage on a TLB miss.
     */
    PageNum
    lookup(ProcId proc, PageNum vpage)
    {
        if (std::uint32_t *slot = index_.find(key(proc, vpage))) {
            std::uint32_t i = *slot;
            touch(i);
            ++hits;
            return slab_[i].ppage;
        }
        ++misses;
        return invalidPage;
    }

    /**
     * Pure membership probe: no LRU motion, no hit/miss accounting.
     * The fast-forward path uses this to decide whether translate()
     * would hit before committing to its side effects.
     */
    bool
    contains(ProcId proc, PageNum vpage) const
    {
        return index_.find(key(proc, vpage)) != nullptr;
    }

    /** Install a translation, evicting LRU if full. */
    void
    insert(ProcId proc, PageNum vpage, PageNum ppage)
    {
        std::uint64_t k = key(proc, vpage);
        if (std::uint32_t *slot = index_.find(k)) {
            std::uint32_t i = *slot;
            slab_[i].ppage = ppage;
            touch(i);
            return;
        }
        std::uint32_t i;
        if (!free_.empty()) {
            i = free_.back();
            free_.pop_back();
        } else {
            i = tail_;
            unlink(i);
            index_.erase(key(slab_[i].proc, slab_[i].vpage));
        }
        slab_[i].proc = proc;
        slab_[i].vpage = vpage;
        slab_[i].ppage = ppage;
        pushFront(i);
        index_[k] = i;
    }

    /** Shootdown one translation (page swapped / remapped). */
    void
    invalidate(ProcId proc, PageNum vpage)
    {
        if (std::uint32_t *slot = index_.find(key(proc, vpage))) {
            std::uint32_t i = *slot;
            unlink(i);
            index_.erase(key(proc, vpage));
            free_.push_back(i);
        }
    }

    /** Drop all entries of one process. */
    void
    flushProc(ProcId proc)
    {
        std::uint32_t i = head_;
        while (i != nil) {
            std::uint32_t next = slab_[i].next;
            if (slab_[i].proc == proc) {
                unlink(i);
                index_.erase(key(proc, slab_[i].vpage));
                free_.push_back(i);
            }
            i = next;
        }
    }

    /** Drop everything. */
    void
    flushAll()
    {
        index_.clear();
        free_.clear();
        for (std::uint32_t i = std::uint32_t(slab_.size()); i-- > 0;)
            free_.push_back(i);
        head_ = tail_ = nil;
    }

    Counter hits;
    Counter misses;

  private:
    static constexpr std::uint32_t nil = ~std::uint32_t(0);

    struct Entry
    {
        ProcId proc = 0;
        PageNum vpage = 0;
        PageNum ppage = 0;
        std::uint32_t prev = nil;
        std::uint32_t next = nil;
    };

    /** Injective (proc, vpage) tag: virtual pages fit well under 2^48
     *  (the OS model's address spaces span megabytes). */
    static std::uint64_t
    key(ProcId proc, PageNum vpage)
    {
        return (std::uint64_t(proc) << 48) | std::uint64_t(vpage);
    }

    void
    unlink(std::uint32_t i)
    {
        Entry &e = slab_[i];
        if (e.prev != nil)
            slab_[e.prev].next = e.next;
        else
            head_ = e.next;
        if (e.next != nil)
            slab_[e.next].prev = e.prev;
        else
            tail_ = e.prev;
        e.prev = e.next = nil;
    }

    void
    pushFront(std::uint32_t i)
    {
        Entry &e = slab_[i];
        e.prev = nil;
        e.next = head_;
        if (head_ != nil)
            slab_[head_].prev = i;
        head_ = i;
        if (tail_ == nil)
            tail_ = i;
    }

    void
    touch(std::uint32_t i)
    {
        if (head_ != i) {
            unlink(i);
            pushFront(i);
        }
    }

    std::vector<Entry> slab_;
    std::vector<std::uint32_t> free_;
    std::uint32_t head_ = nil;
    std::uint32_t tail_ = nil;
    FlatMap<std::uint64_t, std::uint32_t> index_;
};

} // namespace ptm

#endif // PTM_CACHE_TLB_HH
