/**
 * @file
 * CacheArray / L1Filter implementation.
 */

#include "cache/cache.hh"

namespace ptm
{

const char *
moesiName(Moesi s)
{
    switch (s) {
      case Moesi::I:
        return "I";
      case Moesi::S:
        return "S";
      case Moesi::E:
        return "E";
      case Moesi::O:
        return "O";
      case Moesi::M:
        return "M";
    }
    return "?";
}

CacheArray::CacheArray(std::uint64_t bytes, unsigned assoc)
    : assoc_(assoc)
{
    fatal_if(assoc == 0, "cache associativity must be non-zero");
    std::uint64_t lines = bytes / blockBytes;
    fatal_if(lines % assoc != 0,
             "cache size not divisible by associativity");
    num_sets_ = unsigned(lines / assoc);
    fatal_if((num_sets_ & (num_sets_ - 1)) != 0,
             "number of cache sets must be a power of two");
    lines_.resize(lines);
}

unsigned
CacheArray::setIndex(Addr block_addr) const
{
    return unsigned((block_addr >> blockShift) & (num_sets_ - 1));
}

CacheLine *
CacheArray::find(Addr block_addr)
{
    unsigned set = setIndex(block_addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        CacheLine &l = lines_[size_t(set) * assoc_ + w];
        if (l.valid() && l.addr == block_addr)
            return &l;
    }
    return nullptr;
}

const CacheLine *
CacheArray::find(Addr block_addr) const
{
    return const_cast<CacheArray *>(this)->find(block_addr);
}

CacheLine &
CacheArray::victim(Addr block_addr)
{
    unsigned set = setIndex(block_addr);
    CacheLine *lru = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        CacheLine &l = lines_[size_t(set) * assoc_ + w];
        if (!l.valid())
            return l;
        if (!lru || l.lastUse < lru->lastUse)
            lru = &l;
    }
    return *lru;
}

L1Filter::L1Filter(std::uint64_t bytes, unsigned assoc)
    : assoc_(assoc)
{
    fatal_if(assoc == 0, "L1 associativity must be non-zero");
    std::uint64_t lines = bytes / blockBytes;
    fatal_if(lines % assoc != 0, "L1 size not divisible by assoc");
    num_sets_ = unsigned(lines / assoc);
    fatal_if((num_sets_ & (num_sets_ - 1)) != 0,
             "number of L1 sets must be a power of two");
    entries_.resize(lines);
}

unsigned
L1Filter::setIndex(Addr block_addr) const
{
    return unsigned((block_addr >> blockShift) & (num_sets_ - 1));
}

L1Filter::Entry *
L1Filter::find(Addr block_addr)
{
    unsigned set = setIndex(block_addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[size_t(set) * assoc_ + w];
        if (e.valid && e.addr == block_addr) {
            e.lastUse = ++use_clock_;
            return &e;
        }
    }
    return nullptr;
}

L1Filter::Entry &
L1Filter::insert(Addr block_addr)
{
    if (Entry *hit = find(block_addr))
        return *hit;
    unsigned set = setIndex(block_addr);
    Entry *victim = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[size_t(set) * assoc_ + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.lastUse < victim->lastUse)
            victim = &e;
    }
    *victim = Entry{};
    victim->addr = block_addr;
    victim->valid = true;
    victim->lastUse = ++use_clock_;
    return *victim;
}

void
L1Filter::invalidate(Addr block_addr)
{
    unsigned set = setIndex(block_addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[size_t(set) * assoc_ + w];
        if (e.valid && e.addr == block_addr)
            e.valid = false;
    }
}

void
L1Filter::downgrade(Addr block_addr)
{
    unsigned set = setIndex(block_addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[size_t(set) * assoc_ + w];
        if (e.valid && e.addr == block_addr)
            e.writable = false;
    }
}

void
L1Filter::invalidateAll()
{
    for (auto &e : entries_)
        e.valid = false;
}

} // namespace ptm
