/**
 * @file
 * Cache structures: MOESI line state with transactional extensions, a
 * generic set-associative array, and the L1 timing-filter tags.
 *
 * Following the PTM paper, coherence is maintained at the private L2
 * caches; "the augmented L2 cache blocks contain transactional read and
 * write bits ... a transaction ID, a valid bit and the bits to implement
 * [the] MOESI protocol" (section 6.1). The L1 is a pure latency filter
 * kept inclusive in the L2 by back-invalidation; the functional data of
 * a block lives in the L2 line.
 */

#ifndef PTM_CACHE_CACHE_HH
#define PTM_CACHE_CACHE_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace ptm
{

/** MOESI coherence states. */
enum class Moesi : std::uint8_t
{
    I, //!< Invalid
    S, //!< Shared (clean, others may share)
    E, //!< Exclusive (clean, sole copy)
    O, //!< Owned (dirty, others may share; this cache responds)
    M, //!< Modified (dirty, sole copy)
};

/** True if the state implies the line holds dirty (modified) data. */
constexpr bool
moesiDirty(Moesi s)
{
    return s == Moesi::M || s == Moesi::O;
}

/** True if the state permits a silent store (no bus transaction). */
constexpr bool
moesiWritable(Moesi s)
{
    return s == Moesi::M || s == Moesi::E;
}

/** Short state name for traces. */
const char *moesiName(Moesi s);

/**
 * Transactional marking of a cache line by one transaction: which
 * 4-byte words it read and speculatively wrote. In block-granularity
 * mode the masks are simply the full block (0xFFFF), so one predicate
 * serves both the default mode and the wd:* modes of Figure 5.
 */
struct TxMark
{
    TxId tx = invalidTxId;
    std::uint16_t readWords = 0;
    std::uint16_t writeWords = 0;
};

/** One L2 cache line with the PTM transactional extensions. */
struct CacheLine
{
    /** Block-aligned home physical address; valid iff state != I. */
    Addr addr = 0;
    Moesi state = Moesi::I;

    /**
     * Transactional markings. In hardware this is the per-line
     * transaction ID plus read/write bits (single mark); word-
     * granularity modes allow a line to carry state of several
     * transactions.
     */
    std::vector<TxMark> marks;

    /**
     * Words whose *committed* value is newer in this line than in its
     * committed memory location (non-transactional stores, plus
     * speculative words promoted by a commit). Word-granularity modes
     * use it to persist a committed word before a speculative
     * overwrite and to write back exactly the dirty words on
     * eviction; block mode tracks it for statistics only.
     */
    std::uint16_t dirtyWords = 0;

    /** LRU timestamp. */
    std::uint64_t lastUse = 0;

    /** The 64 bytes of block data. */
    std::uint8_t data[blockBytes] = {};

    bool valid() const { return state != Moesi::I; }
    bool dirty() const { return moesiDirty(state); }

    /** True if any transactional marking is attached. */
    bool transactional() const { return !marks.empty(); }

    /** Find the mark of transaction @p tx, or nullptr. */
    TxMark *
    findMark(TxId tx)
    {
        for (auto &m : marks)
            if (m.tx == tx)
                return &m;
        return nullptr;
    }

    /** Find-or-create the mark of transaction @p tx. */
    TxMark &
    mark(TxId tx)
    {
        if (TxMark *m = findMark(tx))
            return *m;
        marks.push_back(TxMark{tx, 0, 0});
        return marks.back();
    }

    /** Remove the mark of transaction @p tx if present. */
    void
    removeMark(TxId tx)
    {
        for (auto it = marks.begin(); it != marks.end(); ++it) {
            if (it->tx == tx) {
                marks.erase(it);
                return;
            }
        }
    }

    /** Union of write masks of all marks. */
    std::uint16_t
    writeMask() const
    {
        std::uint16_t m = 0;
        for (const auto &mk : marks)
            m |= mk.writeWords;
        return m;
    }

    /** Number of distinct transactions with write marks. */
    unsigned
    writerCount() const
    {
        unsigned n = 0;
        for (const auto &mk : marks)
            if (mk.writeWords)
                ++n;
        return n;
    }

    /** Drop all transactional markings. */
    void clearTx() { marks.clear(); }

    /** Invalidate the line entirely. */
    void
    invalidate()
    {
        state = Moesi::I;
        dirtyWords = 0;
        clearTx();
    }

    /** Read the 4-byte word at in-block byte offset @p off. */
    std::uint32_t
    readWord32(unsigned off) const
    {
        std::uint32_t v;
        std::memcpy(&v, data + off, sizeof(v));
        return v;
    }

    /** Write the 4-byte word at in-block byte offset @p off. */
    void
    writeWord32(unsigned off, std::uint32_t v)
    {
        std::memcpy(data + off, &v, sizeof(v));
    }
};

/**
 * A set-associative array of CacheLine with LRU replacement. Indexing
 * uses the block address bits above blockShift.
 */
class CacheArray
{
  public:
    /**
     * @param bytes total capacity in bytes
     * @param assoc associativity (1 = direct mapped)
     */
    CacheArray(std::uint64_t bytes, unsigned assoc);

    /** Find the line holding @p block_addr, or nullptr. */
    CacheLine *find(Addr block_addr);
    const CacheLine *find(Addr block_addr) const;

    /**
     * Pick the replacement victim in the set of @p block_addr: an
     * invalid way if present, else the LRU way.
     */
    CacheLine &victim(Addr block_addr);

    /** Mark a line most-recently-used. */
    void
    touch(CacheLine &line)
    {
        line.lastUse = ++use_clock_;
    }

    /** Apply @p fn to every valid line. */
    template <typename F>
    void
    forEachValid(F &&fn)
    {
        for (auto &l : lines_)
            if (l.valid())
                fn(l);
    }

    unsigned numSets() const { return num_sets_; }
    unsigned assoc() const { return assoc_; }

  private:
    unsigned setIndex(Addr block_addr) const;

    unsigned num_sets_;
    unsigned assoc_;
    std::vector<CacheLine> lines_;
    std::uint64_t use_clock_ = 0;
};

/**
 * L1 tag filter. Holds no data; a hit means the access can complete in
 * one cycle against the (inclusive) L2 line. The flags mirror exactly
 * the conditions under which the L2 would not need to act:
 *
 *  - @c writable: the L2 line is in M or E, so a store can proceed.
 *  - @c txId/txRead/txWrite: the transactional bits already set at the
 *    L2 line, so a same-transaction re-access needs no L2 update.
 */
class L1Filter
{
  public:
    struct Entry
    {
        Addr addr = 0;
        bool valid = false;
        bool writable = false;
        /** Transaction whose L2 marks this entry mirrors (one only). */
        TxId txId = invalidTxId;
        std::uint16_t txReadWords = 0;
        std::uint16_t txWriteWords = 0;
        std::uint64_t lastUse = 0;
    };

    L1Filter(std::uint64_t bytes, unsigned assoc);

    /** Find the entry for @p block_addr, or nullptr. */
    Entry *find(Addr block_addr);

    /** Install (or refresh) an entry for @p block_addr. */
    Entry &insert(Addr block_addr);

    /** Remove the entry for @p block_addr if present. */
    void invalidate(Addr block_addr);

    /** Remove the write permission of @p block_addr if present. */
    void downgrade(Addr block_addr);

    /** Drop every entry (context-switch flush in flush-based modes). */
    void invalidateAll();

    /** Apply @p fn to every valid entry. */
    template <typename F>
    void
    forEachValid(F &&fn)
    {
        for (auto &e : entries_)
            if (e.valid)
                fn(e);
    }

  private:
    unsigned setIndex(Addr block_addr) const;

    unsigned num_sets_;
    unsigned assoc_;
    std::vector<Entry> entries_;
    std::uint64_t use_clock_ = 0;
};

} // namespace ptm

#endif // PTM_CACHE_CACHE_HH
