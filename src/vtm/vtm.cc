/**
 * @file
 * VtmController implementation.
 */

#include "vtm/vtm.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ptm
{

VtmController::VtmController(const SystemParams &params, EventQueue &eq,
                             PhysMem &phys, TxManager &txmgr,
                             DramModel &dram)
    : params_(params), eq_(eq), phys_(phys), txmgr_(txmgr),
      dram_(dram), vc_enabled_(params.tmKind == TmKind::VcVtm),
      xf_(params.xfEntries)
{
    panic_if(params.tmKind != TmKind::Vtm &&
                 params.tmKind != TmKind::VcVtm,
             "VtmController built for a non-VTM system kind");
    fatal_if(params.granularity != Granularity::Block,
             "the VTM model supports block-granularity conflicts only");
}

void
VtmController::regStats(StatRegistry &reg)
{
    StatGroup &g = reg.addGroup("vtm");
    g.addCounter("xadt_inserts", &xadtInserts,
                 "blocks inserted into the XADT on overflow");
    g.addCounter("xadt_walks", &xadtWalks,
                 "XADT hash-bucket walks on XADC misses");
    g.addCounter("xf_filtered", &xfFiltered,
                 "accesses filtered by the XF Bloom filter");
    g.addCounter("xadc_hits", &xadcHits, "XADC metadata-cache hits");
    g.addCounter("xadc_misses", &xadcMisses,
                 "XADC metadata-cache misses");
    g.addCounter("copybacks", &copybacks,
                 "committed XADT blocks copied back to memory");
    g.addCounter("victim_hits", &victimHits,
                 "VC-VTM victim-cache data hits");
    g.addCounter("victim_writebacks", &victimWritebacks,
                 "victim-cache entries written back");
    g.addCounter("stalls_signalled", &stallsSignalled,
                 "accesses told to stall behind cleanup");
    g.addScalar("xadt_entries", [this] { return double(xadt_.size()); },
                "XADT entries currently live");
    g.addDistribution("commit_cleanup_latency", &commitCleanupLatency,
                      "ticks from logical commit to cleanup done");
    g.addDistribution("abort_cleanup_latency", &abortCleanupLatency,
                      "ticks from logical abort to cleanup done");
    g.addDistribution("xadt_walk_len", &xadtWalkLen,
                      "entries examined per XADT walk");
    g.addDistribution("overflow_blocks_per_tx", &overflowBlocksPerTx,
                      "overflowed blocks per transaction");
}

Tick
VtmController::xadcLookup(Addr block, bool allocate)
{
    auto it = xadc_.find(block);
    if (it != xadc_.end()) {
        it->second.lastUse = ++xadc_clock_;
        ++xadcHits;
        prof_->charge(ProfCharge::MetaLookup, params_.vtsCacheLatency);
        return params_.vtsCacheLatency;
    }
    ++xadcMisses;
    // Metadata reconstruction via an XADT walk: one memory access per
    // entry examined (we model a short hash-bucket walk).
    Tick now = eq_.curTick();
    Tick done = dram_.access(now);
    ++xadtWalks;
    if (allocate) {
        if (xadc_.size() >= params_.xadcEntries) {
            auto victim = xadc_.begin();
            for (auto i = xadc_.begin(); i != xadc_.end(); ++i)
                if (i->second.lastUse < victim->second.lastUse)
                    victim = i;
            xadc_.erase(victim);
        }
        xadc_[block] = CacheEntry{++xadc_clock_};
    }
    prof_->charge(ProfCharge::MetaLookup, done - now);
    return done - now;
}

bool
VtmController::victimFind(Addr block)
{
    auto it = victim_.find(block);
    if (it == victim_.end())
        return false;
    it->second = ++victim_clock_;
    return true;
}

void
VtmController::victimInsert(Addr block)
{
    if (!vc_enabled_)
        return;
    if (victim_.size() >= params_.victimCacheEntries &&
        !victim_.count(block)) {
        auto victim = victim_.begin();
        for (auto i = victim_.begin(); i != victim_.end(); ++i)
            if (i->second < victim->second)
                victim = i;
        // Deferred write-back of a committed block leaving the VC.
        ++victimWritebacks;
        dram_.write(eq_.curTick());
        victim_.erase(victim);
    }
    victim_[block] = ++victim_clock_;
}

void
VtmController::victimRemove(Addr block)
{
    victim_.erase(block);
}

void
VtmController::noteOverflow(TxId tx)
{
    Transaction *t = txmgr_.get(tx);
    panic_if(!t, "overflow for unknown transaction");
    if (!t->overflowed) {
        t->overflowed = true;
        ++overflowed_live_;
    }
}

CheckResult
VtmController::checkAccess(const BlockAccess &acc)
{
    CheckResult r;
    // The XF is dedicated hardware; the query is effectively free.
    r.extraLatency += 1;
    if (!xf_.maybePresent(acc.blockAddr)) {
        ++xfFiltered;
        return r;
    }

    r.extraLatency += xadcLookup(acc.blockAddr, true);
    auto it = xadt_.find(acc.blockAddr);
    if (it == xadt_.end())
        return r; // Bloom-filter false positive

    XadtEntry &e = it->second;
    if (e.writer != invalidTxId && e.writer != acc.tx) {
        switch (txmgr_.stateOf(e.writer)) {
          case TxState::Running:
            r.conflicts.push_back(e.writer);
            break;
          case TxState::Committing:
            if (e.pendingCopyback) {
                // Committed data not yet copied back to memory: the
                // access must stall (section 5.3.1).
                r.stall = true;
                ++stallsSignalled;
            }
            break;
          default:
            break; // aborting/dead writer: memory holds committed data
        }
    }
    if (acc.isWrite) {
        for (TxId rd : e.readers) {
            if (rd != acc.tx && txmgr_.isLive(rd))
                r.conflicts.push_back(rd);
        }
    }
    return r;
}

Tick
VtmController::fillBlock(Addr block_addr, TxId requester,
                         std::uint8_t *dst, std::uint16_t &spec_words,
                         std::vector<TxMark> &foreign)
{
    // Block-granularity conflicts make foreign-spec fills impossible.
    foreign.clear();
    spec_words = 0;
    auto it = xadt_.find(block_addr);
    if (it != xadt_.end() && it->second.hasSpecData &&
        it->second.writer == requester) {
        spec_words = 0xffff;
        // The transaction re-reads its own overflowed block: fetch the
        // speculative version from the XADT (or the victim cache). The
        // cache line becomes the authoritative speculative copy again,
        // so drop the buffered data — a later eviction re-deposits it,
        // and a commit copy-back of the stale buffer could otherwise
        // overwrite newer committed data.
        std::memcpy(dst, it->second.specData, blockBytes);
        it->second.hasSpecData = false;
        victimRemove(block_addr);
        if (vc_enabled_ && victimFind(block_addr)) {
            ++victimHits;
            return params_.vtsCacheLatency;
        }
        Tick now = eq_.curTick();
        return dram_.access(now) - now;
    }
    phys_.readBlock(block_addr, dst);
    return 0;
}

bool
VtmController::mayGrantExclusive(Addr block_addr, TxId requester)
{
    auto it = xadt_.find(block_addr);
    if (it == xadt_.end())
        return true;
    const XadtEntry &e = it->second;
    if (e.writer != invalidTxId && e.writer != requester &&
        txmgr_.isLive(e.writer))
        return false;
    for (TxId rd : e.readers)
        if (rd != requester && txmgr_.isLive(rd))
            return false;
    return true;
}

Tick
VtmController::evictTxBlock(Addr block_addr, TxId tx, bool dirty_spec,
                            const std::uint8_t *data,
                            std::uint16_t read_words,
                            std::uint16_t write_words)
{
    (void)read_words;
    (void)write_words;
    Tick now = eq_.curTick();
    Tick lat = xadcLookup(block_addr, true);

    XadtEntry &e = xadt_[block_addr];
    bool new_assoc = e.writer != tx &&
                     std::find(e.readers.begin(), e.readers.end(),
                               tx) == e.readers.end();
    if (new_assoc) {
        xf_.insert(block_addr);
        ++xadtInserts;
        auto &blocks = tx_blocks_[tx];
        blocks.push_back(block_addr);
    }

    if (dirty_spec) {
        // A dead previous writer's entry may be recycled; a live one
        // would have conflicted before this eviction.
        panic_if(e.writer != invalidTxId && e.writer != tx &&
                     txmgr_.isLive(e.writer),
                 "two live speculative writers of one block");
        if (e.writer != tx && e.writer != invalidTxId) {
            // Recycle: the old association stays in the old tx's list
            // and is ignored at its cleanup.
        }
        e.writer = tx;
        e.hasSpecData = true;
        std::memcpy(e.specData, data, blockBytes);
        e.pendingCopyback = false;
        victimInsert(block_addr);
    } else if (std::find(e.readers.begin(), e.readers.end(), tx) ==
               e.readers.end()) {
        e.readers.push_back(tx);
    }

    noteOverflow(tx);
    // Appending to the XADT is a posted memory write.
    dram_.write(now + lat);
    return lat;
}

Tick
VtmController::writebackBlock(Addr block_addr, const std::uint8_t *data,
                              std::uint16_t word_mask)
{
    // VTM keeps committed data in place: write the home location.
    unsigned block_off = 0;
    for (unsigned w = 0; w < wordsPerBlock; ++w) {
        if (!(word_mask & (1u << w)))
            continue;
        std::uint32_t v;
        std::memcpy(&v, data + w * wordBytes, wordBytes);
        phys_.writeWord32(block_addr + block_off + Addr(w) * wordBytes,
                          v);
    }
    victimRemove(block_addr);
    dram_.write(eq_.curTick()); // posted write
    return 0;
}

std::uint32_t
VtmController::readCommittedWord32(Addr word_addr)
{
    return phys_.readWord32(word_addr);
}

void
VtmController::commitTx(TxId tx)
{
    startCleanup(tx, true);
}

void
VtmController::abortTx(TxId tx)
{
    startCleanup(tx, false);
}

void
VtmController::startCleanup(TxId tx, bool is_commit)
{
    auto it = tx_blocks_.find(tx);
    std::vector<Addr> blocks;
    if (it != tx_blocks_.end()) {
        blocks = std::move(it->second);
        tx_blocks_.erase(it);
    }
    overflowBlocksPerTx.sample(double(blocks.size()));
    if (blocks.empty()) {
        txmgr_.cleanupDone(tx);
        return;
    }
    xadtWalkLen.sample(double(blocks.size()));
    tracer_->record(TraceEventType::WalkStart, traceNoId, traceNoId,
                    tx, invalidTxId, is_commit ? 1 : 0, blocks.size());

    CleanupJob job;
    job.isCommit = is_commit;
    job.startTick = eq_.curTick();

    if (is_commit && vc_enabled_) {
        // Victim-cache resident blocks commit instantly: their data is
        // promoted without stalling or occupying memory bandwidth now;
        // the write-back happens when they leave the victim cache.
        std::vector<Addr> slow;
        for (Addr b : blocks) {
            auto e = xadt_.find(b);
            if (e != xadt_.end() && e->second.writer == tx &&
                e->second.hasSpecData && victimFind(b)) {
                ++victimHits;
                phys_.writeBlock(b, e->second.specData);
                processBlock(job, b, tx);
            } else {
                slow.push_back(b);
            }
        }
        blocks = std::move(slow);
        if (blocks.empty()) {
            // Every block was VC-resident: the commit is instant.
            commitCleanupLatency.sample(0);
            tracer_->record(TraceEventType::WalkEnd, traceNoId,
                            traceNoId, tx, invalidTxId, 1, 0);
            finishCleanupNow(tx);
            return;
        }
    }

    if (is_commit) {
        // Mark written blocks as awaiting copy-back so that other
        // accesses stall on them.
        for (Addr b : blocks) {
            auto e = xadt_.find(b);
            if (e != xadt_.end() && e->second.writer == tx &&
                e->second.hasSpecData)
                e->second.pendingCopyback = true;
        }
    }

    job.blocks = std::move(blocks);
    jobs_[tx] = std::move(job);
    cleanupStep(tx);
}

void
VtmController::finishCleanupNow(TxId tx)
{
    Transaction *txn = txmgr_.get(tx);
    if (txn && txn->overflowed) {
        panic_if(overflowed_live_ == 0, "overflow count underflow");
        --overflowed_live_;
    }
    txmgr_.cleanupDone(tx);
}

void
VtmController::cleanupStep(TxId tx)
{
    CleanupJob &job = jobs_.at(tx);
    Addr block = job.blocks[job.next];

    Tick t = std::max(eq_.curTick(), supervisor_free_);
    Tick done = dram_.access(t); // XADT entry read/free
    auto e = xadt_.find(block);
    bool copy = job.isCommit && e != xadt_.end() &&
                e->second.writer == tx && e->second.hasSpecData;
    if (copy) {
        ++copybacks;
        done = dram_.write(done); // the data write to memory
    }
    supervisor_free_ = done;
    prof_->charge(job.isCommit ? ProfCharge::CommitCleanup
                               : ProfCharge::AbortCleanup,
                  done - t);

    eq_.schedule(done, EventPriority::Supervisor, [this, tx]() {
        CleanupJob &j = jobs_.at(tx);
        Addr b = j.blocks[j.next];
        if (j.isCommit) {
            auto it = xadt_.find(b);
            if (it != xadt_.end() && it->second.writer == tx &&
                it->second.hasSpecData)
                phys_.writeBlock(b, it->second.specData);
        }
        processBlock(j, b, tx);
        ++j.next;
        if (j.next == j.blocks.size()) {
            Distribution &lat = j.isCommit ? commitCleanupLatency
                                           : abortCleanupLatency;
            lat.sample(double(eq_.curTick() - j.startTick));
            tracer_->record(TraceEventType::WalkEnd, traceNoId,
                            traceNoId, tx, invalidTxId,
                            j.isCommit ? 1 : 0, j.blocks.size());
            jobs_.erase(tx);
            finishCleanupNow(tx);
        } else {
            cleanupStep(tx);
        }
    });
}

void
VtmController::processBlock(CleanupJob &job, Addr block, TxId tx)
{
    auto it = xadt_.find(block);
    if (it == xadt_.end())
        return;
    XadtEntry &e = it->second;

    auto rd = std::find(e.readers.begin(), e.readers.end(), tx);
    if (rd != e.readers.end())
        e.readers.erase(rd);
    if (e.writer == tx) {
        e.writer = invalidTxId;
        e.hasSpecData = false;
        e.pendingCopyback = false;
        if (!job.isCommit) {
            // Aborted speculative data must not linger in the VC.
            victimRemove(block);
        }
    }
    xf_.remove(block);
    if (e.readers.empty() && e.writer == invalidTxId) {
        xadt_.erase(it);
        xadc_.erase(block);
    }
}

} // namespace ptm
