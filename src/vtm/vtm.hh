/**
 * @file
 * The VTM baseline (Rajwar, Herlihy, Lai — "Virtualizing Transactional
 * Memory", ISCA 2005), modeled per section 5.3/5.3.1 of the PTM paper:
 *
 *  - XF: a counting Bloom filter (1.6 M counters, dedicated hardware)
 *    that filters conflict checks for never-overflowed addresses;
 *  - XADT: an in-memory table of overflowed blocks holding the
 *    readers, the writer and the buffered *speculative* data (VTM
 *    buffers new values and copies them to memory at commit — fast
 *    abort, commit pays the copy and its bus/memory bandwidth);
 *  - XADC: a metadata cache sized to match PTM's SPT+TAV caches; a
 *    miss costs an XADT walk (one memory access per entry examined);
 *  - Victim-VTM (VC-VTM): an additional victim cache buffering the
 *    evicted blocks' data so that commits complete instantly for
 *    VC-resident blocks and the copy-back happens lazily on eviction.
 *
 * Commit walks stall any access to a block whose committed data has
 * not yet been copied back; abort walks only discard entries.
 */

#ifndef PTM_VTM_VTM_HH
#define PTM_VTM_VTM_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/phys_mem.hh"
#include "mem/timing.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "tx/tm_backend.hh"
#include "tx/tx_manager.hh"

namespace ptm
{

/** Counting Bloom filter (the XF). */
class XFilter
{
  public:
    explicit XFilter(std::uint64_t entries)
        : counters_(entries, 0)
    {}

    void
    insert(Addr block)
    {
        for (auto i : hashes(block))
            if (counters_[i] < 0xffff)
                ++counters_[i];
    }

    void
    remove(Addr block)
    {
        for (auto i : hashes(block))
            if (counters_[i] > 0)
                --counters_[i];
    }

    /** May the block have overflowed state? (No false negatives.) */
    bool
    maybePresent(Addr block) const
    {
        for (auto i : hashes(block))
            if (counters_[i] == 0)
                return false;
        return true;
    }

  private:
    std::array<std::uint64_t, 2>
    hashes(Addr block) const
    {
        std::uint64_t x = block >> blockShift;
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        std::uint64_t y = x * 0xc4ceb9fe1a85ec53ULL;
        return {x % counters_.size(), y % counters_.size()};
    }

    std::vector<std::uint16_t> counters_;
};

/** The VTM controller backend. */
class VtmController : public TmBackend
{
  public:
    VtmController(const SystemParams &params, EventQueue &eq,
                  PhysMem &phys, TxManager &txmgr, DramModel &dram);
    ~VtmController() override = default;

    /** Register the VTM statistics under the "vtm" group. */
    void regStats(StatRegistry &reg) override;

    /** Attach the event tracer (System wiring; defaults to nil). */
    void setTracer(Tracer *t) { tracer_ = t; }

    /** Attach the cycle profiler (System wiring; defaults to nil). */
    void setProfiler(CycleProfiler *p) { prof_ = p; }

    /** @name TmBackend interface */
    /// @{
    bool anyOverflow() const override { return overflowed_live_ > 0; }
    CheckResult checkAccess(const BlockAccess &acc) override;
    Tick fillBlock(Addr block_addr, TxId requester, std::uint8_t *dst,
                   std::uint16_t &spec_words,
                   std::vector<TxMark> &foreign) override;
    bool mayGrantExclusive(Addr block_addr, TxId requester) override;
    Tick evictTxBlock(Addr block_addr, TxId tx, bool dirty_spec,
                      const std::uint8_t *data, std::uint16_t read_words,
                      std::uint16_t write_words) override;
    Tick writebackBlock(Addr block_addr, const std::uint8_t *data,
                        std::uint16_t word_mask) override;
    std::uint32_t readCommittedWord32(Addr word_addr) override;
    void commitTx(TxId tx) override;
    void abortTx(TxId tx) override;
    /// @}

    bool victimCacheEnabled() const { return vc_enabled_; }

    /** @name Statistics */
    /// @{
    Counter xadtInserts;
    Counter xadtWalks;
    Counter xfFiltered;   //!< checks short-circuited by the XF
    Counter xadcHits;
    Counter xadcMisses;
    Counter copybacks;    //!< commit copies XADT -> memory
    Counter victimHits;
    Counter victimWritebacks;
    Counter stallsSignalled;
    /** Supervisor latency of each commit drain (overflowed txs;
     *  victim-cache instant commits sample as 0). */
    Distribution commitCleanupLatency{0, 512 * 1000, 32};
    /** Supervisor latency of each abort drain (overflowed txs). */
    Distribution abortCleanupLatency{0, 512 * 1000, 32};
    /** XADT blocks drained per commit/abort walk. */
    Distribution xadtWalkLen{0, 1024, 32};
    /** Overflowed blocks per finished transaction (all txs; the
     *  never-overflowed ones sample as 0). */
    Distribution overflowBlocksPerTx{0, 1024, 32};
    /// @}

  private:
    /** One XADT entry (per overflowed block). */
    struct XadtEntry
    {
        std::vector<TxId> readers;
        TxId writer = invalidTxId;
        bool hasSpecData = false;
        std::uint8_t specData[blockBytes] = {};
        /** Writer committed; data awaiting copy-back. */
        bool pendingCopyback = false;
    };

    struct CleanupJob
    {
        bool isCommit = false;
        std::vector<Addr> blocks;
        std::size_t next = 0;
        Tick startTick = 0; //!< cleanup-latency distributions
    };

    /** XADC timing lookup; returns added latency. */
    Tick xadcLookup(Addr block, bool allocate);

    /** Victim-cache lookup/insert (VC-VTM only). */
    bool victimFind(Addr block);
    void victimInsert(Addr block);
    void victimRemove(Addr block);

    void noteOverflow(TxId tx);
    void startCleanup(TxId tx, bool is_commit);
    void cleanupStep(TxId tx);
    void processBlock(CleanupJob &job, Addr block, TxId tx);
    /** Drop the overflow flag and report cleanup completion. */
    void finishCleanupNow(TxId tx);

    const SystemParams params_;
    EventQueue &eq_;
    PhysMem &phys_;
    TxManager &txmgr_;
    DramModel &dram_;
    Tracer *tracer_ = &Tracer::nil();
    CycleProfiler *prof_ = &CycleProfiler::nil();
    bool vc_enabled_;

    XFilter xf_;
    std::unordered_map<Addr, XadtEntry> xadt_;
    std::unordered_map<TxId, std::vector<Addr>> tx_blocks_;
    std::unordered_map<TxId, CleanupJob> jobs_;

    /** XADC: metadata-cache keys with LRU (timing only). */
    struct CacheEntry
    {
        std::uint64_t lastUse = 0;
    };
    std::unordered_map<Addr, CacheEntry> xadc_;
    std::uint64_t xadc_clock_ = 0;

    /** Victim cache: block -> LRU stamp (data modeled functionally
     *  through the XADT entry it shadows). */
    std::unordered_map<Addr, std::uint64_t> victim_;
    std::uint64_t victim_clock_ = 0;

    unsigned overflowed_live_ = 0;
    Tick supervisor_free_ = 0;
};

} // namespace ptm

#endif // PTM_VTM_VTM_HH
