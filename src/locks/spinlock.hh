/**
 * @file
 * Spinlocks over simulated memory — the lock-based baseline of
 * Figure 4 ("4p" / p-threads locks).
 *
 * Locks are ordinary memory words manipulated with compare-and-swap
 * through the coherence protocol, so acquisition cost, contention and
 * lock-transfer bus traffic all emerge from the simulated memory
 * system rather than from an abstract penalty. The acquire uses
 * test-and-test-and-set with linear backoff.
 *
 * Usage inside thread coroutines:
 * @code
 *     co_await spinLock(m, lock_addr);
 *     ... critical section ...
 *     co_await spinUnlock(m, lock_addr);
 * @endcode
 */

#ifndef PTM_LOCKS_SPINLOCK_HH
#define PTM_LOCKS_SPINLOCK_HH

#include "cpu/coro.hh"
#include "sim/types.hh"

namespace ptm
{

/** Acquire the spinlock at @p lock_addr (word must be 0-initialized). */
inline TxCoro
spinLock(MemCtx m, Addr lock_addr)
{
    Tick backoff = 10;
    for (;;) {
        if (co_await m.cas(lock_addr, 0, 1) == 0)
            co_return;
        // Test-and-test-and-set: spin on a (cached) read until the
        // lock looks free, with linear backoff to limit bus traffic.
        while (co_await m.load(lock_addr) != 0)
            co_await m.compute(backoff);
        if (backoff < 160)
            backoff += 30;
    }
}

/** Release the spinlock at @p lock_addr. */
inline TxCoro
spinUnlock(MemCtx m, Addr lock_addr)
{
    co_await m.store(lock_addr, 0);
}

} // namespace ptm

#endif // PTM_LOCKS_SPINLOCK_HH
