/**
 * @file
 * TxManager implementation.
 */

#include "tx/tx_manager.hh"

#include <string>

#include "ptm/heatmap.hh"
#include "sim/flightrec.hh"
#include "sim/logging.hh"

namespace ptm
{

void
TxManager::regStats(StatRegistry &reg)
{
    StatGroup &g = reg.addGroup("tx");
    g.addCounter("commits", &commits, "transactions committed");
    g.addCounter("aborts", &aborts, "transaction attempts aborted");
    g.addCounter("aborts_conflict", &abortsConflict,
                 "aborts after losing eager arbitration");
    g.addCounter("aborts_nontx", &abortsNonTx,
                 "aborts from non-transactional conflicts");
    g.addCounter("aborts_multiwriter", &abortsMultiWriter,
                 "aborts from multi-writer block evictions (wd:cache)");
    g.addCounter("aborts_explicit", &abortsExplicit,
                 "workload-injected explicit aborts");
    g.addCounter("nested_begins", &nestedBegins,
                 "nested tx_begins flattened into the outer tx");
    g.addCounter("ordered_waits", &orderedWaits,
                 "ordered commits that waited for the token");
    g.addCounter("watchdog_trips", &watchdogTrips,
                 "starvation-watchdog trips (N consecutive aborts)");
    g.addCounter("starvation_grants", &starvationGrants,
                 "serialized starvation-token grants");
    g.addDistribution("commit_latency", &commitLatency,
                      "committed-transaction latency in ticks "
                      "(first begin to logical commit)");
}

const char *
txStateName(TxState s)
{
    switch (s) {
      case TxState::Invalid:
        return "Invalid";
      case TxState::Running:
        return "Running";
      case TxState::Committing:
        return "Committing";
      case TxState::Aborting:
        return "Aborting";
      case TxState::Committed:
        return "Committed";
      case TxState::Aborted:
        return "Aborted";
    }
    return "?";
}

TxId
TxManager::begin(ThreadId thread, ProcId proc, Tick now, bool ordered,
                 std::uint32_t scope, std::uint64_t rank)
{
    auto active = active_by_thread_.find(thread);
    if (active != active_by_thread_.end()) {
        // Nested transaction: flatten into the outermost one.
        Transaction *outer = get(active->second);
        panic_if(!outer || !outer->live(),
                 "thread %u nesting into a non-live transaction",
                 thread);
        ++outer->nestDepth;
        ++nestedBegins;
        return outer->id;
    }

    TxId id = next_id_++;
    Transaction tx;
    tx.id = id;
    tx.state = TxState::Running;
    tx.thread = thread;
    tx.proc = proc;
    tx.nestDepth = 1;
    tx.ordered = ordered;
    tx.scope = scope;
    tx.rank = rank;
    tx.beginTick = now;
    tx.firstBeginTick = now;
    tx.attempts = 1;
    if (ordered) {
        panic_if(scope >= scopes_.size(), "unknown ordered scope %u",
                 scope);
        // Age reflects the program-defined order so that arbitration
        // and commit order agree (no ordered-commit deadlock).
        tx.age = (std::uint64_t(scope + 1) << 40) + rank;
    } else {
        tx.age = (next_age_++) << 40;
    }
    table_[id] = tx;
    active_by_thread_[thread] = id;
    ++live_count_;
    tracer_->recordAt(now, TraceEventType::TxBegin, traceNoId, thread,
                      id, invalidTxId, 1, ordered ? 1 : 0);
    if (fr_)
        fr_->onBegin(id, thread, proc, now);
    return id;
}

void
TxManager::restart(TxId id, Tick now)
{
    Transaction *tx = get(id);
    panic_if(!tx, "restarting unknown transaction %llu",
             (unsigned long long)id);
    panic_if(tx->state != TxState::Aborted,
             "restarting transaction %llu in state %s",
             (unsigned long long)id, txStateName(tx->state));
    tx->state = TxState::Running;
    tx->nestDepth = 1;
    tx->overflowed = false;
    tx->beginTick = now;
    ++tx->attempts;
    active_by_thread_[tx->thread] = id;
    ++live_count_;
    tracer_->recordAt(now, TraceEventType::TxRestart, traceNoId,
                      tx->thread, id, invalidTxId, tx->attempts);
    if (fr_)
        fr_->onRestart(id, now, tx->attempts);

    // Starvation/livelock watchdog: attempts - 1 is the number of
    // consecutive aborts this transaction has suffered. Trips are
    // observability only (stats + trace); escalation below changes
    // arbitration and is gated on an explicit retry budget.
    unsigned failures = tx->attempts - 1;
    if (contention_.watchdogThreshold && failures &&
        failures % contention_.watchdogThreshold == 0) {
        ++watchdogTrips;
        tracer_->recordAt(now, TraceEventType::WatchdogTrip, traceNoId,
                          tx->thread, id, invalidTxId, failures);
        if (fr_ && fr_->armed())
            fr_->trigger(PostmortemTrigger::Watchdog, id, now,
                         "watchdog trip after " +
                             std::to_string(failures) +
                             " consecutive aborts");
    }
    if (contention_.retryBudget && failures >= contention_.retryBudget &&
        starvation_holder_ == invalidTxId) {
        starvation_holder_ = id;
        ++starvationGrants;
        tracer_->recordAt(now, TraceEventType::StarvationGrant,
                          traceNoId, tx->thread, id, invalidTxId,
                          failures);
        if (fr_ && fr_->armed())
            fr_->trigger(PostmortemTrigger::StarvationGrant, id, now,
                         "starvation token granted after " +
                             std::to_string(failures) +
                             " consecutive aborts");
    }
}

CommitResult
TxManager::requestCommit(TxId id)
{
    Transaction *tx = get(id);
    panic_if(!tx || tx->state != TxState::Running,
             "commit request for non-running transaction %llu",
             (unsigned long long)id);

    if (tx->nestDepth > 1) {
        --tx->nestDepth;
        return CommitResult::Done;
    }

    if (tx->ordered) {
        OrderedScope &sc = scopes_[tx->scope];
        if (sc.nextRank != tx->rank) {
            sc.waiters[tx->rank] = id;
            ++orderedWaits;
            return CommitResult::WaitOrdered;
        }
    }

    doLogicalCommit(*tx);
    return CommitResult::Done;
}

void
TxManager::doLogicalCommit(Transaction &tx)
{
    tx.state = TxState::Committing;
    tx.nestDepth = 0;
    active_by_thread_.erase(tx.thread);
    --live_count_;
    ++commits;
    if (tx.id == starvation_holder_)
        starvation_holder_ = invalidTxId; // token released by commit
    tracer_->record(TraceEventType::TxCommit, traceNoId, tx.thread,
                    tx.id);
    prof_->charge(ProfCharge::CommittedTxTicks,
                  prof_->now() - tx.beginTick);
    if (clock_)
        commitLatency.sample(double(clock_() - tx.firstBeginTick));
    if (fr_)
        fr_->onCommit(tx.id, clock_ ? clock_() : 0);

    if (onLogicalCommit)
        onLogicalCommit(tx.id);

    if (tx.ordered) {
        // The logical commit is the serialization point: hand the
        // commit token to the successor.
        OrderedScope &sc = scopes_[tx.scope];
        ++sc.nextRank;
        auto w = sc.waiters.find(sc.nextRank);
        if (w != sc.waiters.end()) {
            TxId succ = w->second;
            sc.waiters.erase(w);
            Transaction *stx = get(succ);
            if (stx && stx->live() && wakeOrderedCommit)
                wakeOrderedCommit(succ, stx->thread);
        }
    }

    // Backend cleanup may complete synchronously (no overflow) or
    // schedule background work ending in cleanupDone().
    if (backendCommit)
        backendCommit(tx.id);
    else
        cleanupDone(tx.id);
}

void
TxManager::abort(TxId id, AbortReason why, Addr where, TxId winner)
{
    Transaction *tx = get(id);
    panic_if(!tx, "aborting unknown transaction %llu",
             (unsigned long long)id);
    if (tx->state != TxState::Running)
        return; // already committing/aborting; nothing to do

    tx->state = TxState::Aborting;
    tx->nestDepth = 0;
    active_by_thread_.erase(tx->thread);
    --live_count_;
    ++aborts;
    switch (why) {
      case AbortReason::ConflictLost:
        ++abortsConflict;
        break;
      case AbortReason::NonTxConflict:
        ++abortsNonTx;
        break;
      case AbortReason::MultiWriterEviction:
        ++abortsMultiWriter;
        break;
      case AbortReason::Explicit:
        ++abortsExplicit;
        break;
    }
    // Next to the per-cause counters (after the re-entry guard), so
    // heatmap per-page sums reconcile with them exactly.
    if (heat_)
        heat_->recordAbort(unsigned(why), where);
    if (fr_)
        fr_->onAbort(id, clock_ ? clock_() : 0, std::uint8_t(why),
                     where, winner);
    tracer_->record(TraceEventType::TxAbort, traceNoId, tx->thread, id,
                    invalidTxId, std::uint64_t(why));
    prof_->charge(ProfCharge::AbortedTxTicks,
                  prof_->now() - tx->beginTick);

    if (tx->ordered) {
        OrderedScope &sc = scopes_[tx->scope];
        auto w = sc.waiters.find(tx->rank);
        if (w != sc.waiters.end() && w->second == id)
            sc.waiters.erase(w);
    }

    if (onLogicalAbort)
        onLogicalAbort(id);
    if (notifyAborted)
        notifyAborted(id, tx->thread, why);
    if (backendAbort)
        backendAbort(id);
    else
        cleanupDone(id);
}

void
TxManager::cleanupDone(TxId id)
{
    Transaction *tx = get(id);
    panic_if(!tx, "cleanupDone for unknown transaction %llu",
             (unsigned long long)id);
    if (tx->state == TxState::Committing) {
        tx->state = TxState::Committed;
    } else if (tx->state == TxState::Aborting) {
        tx->state = TxState::Aborted;
        if (notifyAbortComplete)
            notifyAbortComplete(id, tx->thread);
    } else {
        panic("cleanupDone for transaction %llu in state %s",
              (unsigned long long)id, txStateName(tx->state));
    }
}

bool
TxManager::resolveConflicts(TxId requester,
                            const std::vector<TxId> &conflicting,
                            Addr where)
{
    // Record a winner->loser edge; must run before abort(loser) so
    // the loser's thread is still resolvable.
    auto edge = [&](TxId winner, ThreadId wthread, TxId loser) {
        const Transaction *ltx = get(loser);
        tracer_->record(TraceEventType::ConflictEdge, traceNoId,
                        wthread, winner, loser, where,
                        ltx ? ltx->thread : traceNoId);
        if (heat_)
            heat_->recordConflict(where ? where : invalidAddr);
    };
    // 0 means "unknown" in the trace payload; the heatmap uses
    // invalidAddr for that, attributing to the sentinel bucket.
    Addr at = where ? where : invalidAddr;

    // Non-transactional accesses always win (section 2.3.3).
    if (requester == invalidTxId) {
        for (TxId c : conflicting) {
            if (isLive(c)) {
                edge(invalidTxId, traceNoId, c);
                abort(c, AbortReason::NonTxConflict, at);
            }
        }
        return true;
    }

    const Transaction *req = get(requester);
    panic_if(!req || !req->live(),
             "conflict resolution for non-live requester %llu",
             (unsigned long long)requester);

    // The starvation-token holder arbitrates as if it were the oldest
    // transaction in the system (effective age 0; real ages start at
    // 1 << 40). Non-transactional requesters still always win above.
    auto eff_age = [this](TxId id, std::uint64_t age) {
        return (starvation_holder_ != invalidTxId &&
                id == starvation_holder_)
                   ? std::uint64_t(0)
                   : age;
    };

    std::uint64_t min_age = eff_age(requester, req->age);
    TxId oldest = requester;
    for (TxId c : conflicting) {
        const Transaction *tx = get(c);
        if (tx && tx->live() && eff_age(c, tx->age) < min_age) {
            min_age = eff_age(c, tx->age);
            oldest = c;
        }
    }

    if (oldest == requester) {
        // Requester is the oldest: abort every live contender.
        for (TxId c : conflicting) {
            if (c != requester && isLive(c)) {
                edge(requester, req->thread, c);
                abort(c, AbortReason::ConflictLost, at, requester);
            }
        }
        return true;
    }

    const Transaction *win = get(oldest);
    edge(oldest, win ? win->thread : traceNoId, requester);
    abort(requester, AbortReason::ConflictLost, at, oldest);
    return false;
}

std::uint32_t
TxManager::createOrderedScope()
{
    scopes_.emplace_back();
    return std::uint32_t(scopes_.size() - 1);
}

Transaction *
TxManager::get(TxId id)
{
    auto it = table_.find(id);
    return it == table_.end() ? nullptr : &it->second;
}

const Transaction *
TxManager::get(TxId id) const
{
    auto it = table_.find(id);
    return it == table_.end() ? nullptr : &it->second;
}

TxState
TxManager::stateOf(TxId id) const
{
    const Transaction *tx = get(id);
    return tx ? tx->state : TxState::Invalid;
}

} // namespace ptm
