/**
 * @file
 * Interface between the cache/coherence machinery and an unbounded-TM
 * backend (the PTM Virtual Transaction Supervisor, the VTM baseline, or
 * a trivial pass-through for serial/lock runs).
 *
 * The memory system calls the backend at the three points the paper
 * identifies: conflict checks on cache misses while overflowed state
 * exists, evictions of transactional blocks, and block fetches that
 * must choose between the home page, the shadow page, or a log
 * structure. Commit/abort cleanup is driven through TxManager hooks
 * wired to commitTx()/abortTx().
 */

#ifndef PTM_TX_TM_BACKEND_HH
#define PTM_TX_TM_BACKEND_HH

#include <cstdint>
#include <vector>

#include "cache/cache.hh"

#include "sim/types.hh"

namespace ptm
{

/** One block-granularity access as seen at the memory controller. */
struct BlockAccess
{
    /** Block-aligned home physical address. */
    Addr blockAddr = 0;
    /** Requesting transaction; invalidTxId for non-transactional. */
    TxId tx = invalidTxId;
    bool isWrite = false;
    /** Mask of the 4-byte words touched (for word-granularity modes). */
    std::uint16_t wordMask = 0;
};

/** Outcome of a backend conflict check. */
struct CheckResult
{
    /**
     * The access hit state whose owner is mid commit/abort cleanup;
     * the requester must stall and retry (section 4.5).
     */
    bool stall = false;
    /** Structure-walk latency to charge the access. */
    Tick extraLatency = 0;
    /** Live transactions that conflict; arbitration decides survival. */
    std::vector<TxId> conflicts;
};

/**
 * Abstract unbounded-TM backend.
 */
class StatRegistry;

class TmBackend
{
  public:
    virtual ~TmBackend() = default;

    /** Register the backend's statistics ("vts" / "vtm" group). */
    virtual void regStats(StatRegistry &reg) { (void)reg; }

    /** Global overflow flag: any live transaction has evicted state. */
    virtual bool anyOverflow() const = 0;

    /**
     * Conflict check for a miss reaching the bus (called for both
     * transactional and non-transactional accesses, but only while
     * anyOverflow() is true).
     */
    virtual CheckResult checkAccess(const BlockAccess &acc) = 0;

    /**
     * Copy the version of the block that the requester must observe
     * into @p dst (home page, shadow page, or log, per policy). Called
     * when the fill is serviced by memory.
     *
     * @param[out] spec_words mask of the 4-byte words that are the
     *        requester's own *speculative* version; the cache line
     *        must be re-marked as transactionally written for them so
     *        that abort/commit and isolation handling stay correct.
     * @param[out] foreign marks of *other* live transactions whose
     *        overflowed speculative words are part of the returned
     *        block (word-granularity modes; the paper's XOR rule
     *        fetches the speculative location whenever the write
     *        summary bit is set). The cache line must carry these
     *        marks so conflict detection keeps working on cached
     *        copies.
     * @return extra latency beyond the standard DRAM access.
     */
    virtual Tick fillBlock(Addr block_addr, TxId requester,
                           std::uint8_t *dst, std::uint16_t &spec_words,
                           std::vector<TxMark> &foreign) = 0;

    /**
     * Whether a read miss may take the line Exclusive. PTM refuses
     * when a different transaction has overflow-read the block
     * (section 4.4.1).
     */
    virtual bool mayGrantExclusive(Addr block_addr, TxId requester) = 0;

    /**
     * A transactional block is being evicted from a cache: record the
     * access vectors and, if @p dirty_spec, store the speculative data
     * per the versioning policy. @p data is the line's 64 bytes.
     * @return latency of the overflow handling.
     */
    virtual Tick evictTxBlock(Addr block_addr, TxId tx, bool dirty_spec,
                              const std::uint8_t *data,
                              std::uint16_t read_words,
                              std::uint16_t write_words) = 0;

    /**
     * Write back non-speculative dirty data (capacity eviction, or the
     * forced writeback of committed data before the first transactional
     * overwrite of a dirty line). Only the 4-byte words selected by
     * @p word_mask are written, to their *committed* locations.
     * @return latency of the writeback.
     */
    virtual Tick writebackBlock(Addr block_addr, const std::uint8_t *data,
                                std::uint16_t word_mask = 0xffff) = 0;

    /**
     * Functional read of the *committed* 4-byte word at @p word_addr,
     * used to restore aborted words in word-granularity modes.
     */
    virtual std::uint32_t readCommittedWord32(Addr word_addr) = 0;

    /** Kick off commit cleanup; must end in TxManager::cleanupDone. */
    virtual void commitTx(TxId tx) = 0;

    /** Kick off abort cleanup; must end in TxManager::cleanupDone. */
    virtual void abortTx(TxId tx) = 0;

    /** @name OS paging integration (section 3.5); default no-ops. */
    /// @{
    /**
     * May the OS choose @p home as a swap victim right now? The PTM
     * backend pins pages with live TAV state (modeling choice; the
     * architecture itself also supports swapping those).
     */
    virtual bool
    swappable(PageNum home) const
    {
        (void)home;
        return true;
    }
    /**
     * The OS is about to swap out home page @p home to swap slot
     * @p slot: migrate the SPT entry to the Swap Index Table (and
     * swap or merge-free the shadow page).
     */
    virtual void pageSwapOut(PageNum home, std::uint64_t slot)
    {
        (void)home;
        (void)slot;
    }
    /** The page of swap slot @p slot returns in frame @p new_home:
     *  migrate the SIT entry back to the SPT. */
    virtual void pageSwapIn(std::uint64_t slot, PageNum new_home)
    {
        (void)slot;
        (void)new_home;
    }
    /// @}
};

} // namespace ptm

#endif // PTM_TX_TM_BACKEND_HH
