/**
 * @file
 * Transaction descriptors — the architectural T-State table.
 *
 * The T-State table (Figure 1 of the paper) is indexed by transaction
 * number and holds each transaction's status; the VTS atomically flips
 * the status to Committing/Aborting before lazily processing the TAV
 * list ("logical commit/abort"). Transactions keep their identifier
 * across abort-and-restart, so a long-suffering transaction ages into
 * the oldest and eventually wins every conflict (forward progress).
 */

#ifndef PTM_TX_TRANSACTION_HH
#define PTM_TX_TRANSACTION_HH

#include <cstdint>

#include "sim/types.hh"

namespace ptm
{

/** Lifecycle states of a transaction. */
enum class TxState : std::uint8_t
{
    Invalid,
    /** Executing (or context-switched out mid-execution). */
    Running,
    /** Logically committed; TAV/XADT cleanup still draining. */
    Committing,
    /** Logically aborted; cleanup (and Copy-PTM restore) draining. */
    Aborting,
    /** Fully committed, overflow state reclaimed. */
    Committed,
    /** Fully aborted; the thread may restart the transaction. */
    Aborted,
};

/** Short state name for traces. */
const char *txStateName(TxState s);

/** One T-State entry. */
struct Transaction
{
    TxId id = invalidTxId;
    TxState state = TxState::Invalid;
    ThreadId thread = 0;
    ProcId proc = 0;

    /** Flattened-nesting depth; begin/end inside a transaction only
     *  adjusts this count (section 2.3.1). */
    unsigned nestDepth = 0;

    /** Ordered-transaction support (section 2.2). */
    bool ordered = false;
    /** Ordered scope this transaction belongs to. */
    std::uint32_t scope = 0;
    /** Program-defined commit rank within the scope. */
    std::uint64_t rank = 0;

    /**
     * Arbitration age: the conflict arbiter aborts the transaction with
     * the larger age ("the oldest transaction always wins"). For
     * unordered transactions this is the sequential id; for ordered
     * transactions it reflects the program-defined order.
     */
    std::uint64_t age = 0;

    /** Number of times this transaction has aborted and restarted. */
    unsigned attempts = 0;

    /** Whether any block of this transaction overflowed the caches. */
    bool overflowed = false;

    /** Start tick of the current attempt (reset by restart). */
    Tick beginTick = 0;
    /**
     * Start tick of the first attempt; survives restarts, so
     * now - firstBeginTick at commit is the end-to-end commit latency
     * including every aborted attempt and backoff.
     */
    Tick firstBeginTick = 0;

    /** True while the transaction can still win/lose conflicts. */
    bool
    live() const
    {
        return state == TxState::Running;
    }

    /** True while lazy cleanup of its overflow state is in flight. */
    bool
    cleaning() const
    {
        return state == TxState::Committing || state == TxState::Aborting;
    }
};

} // namespace ptm

#endif // PTM_TX_TRANSACTION_HH
