/**
 * @file
 * Global transaction manager.
 *
 * Owns the T-State table, assigns sequential transaction identifiers,
 * flattens nesting, arbitrates conflicts (oldest wins), and sequences
 * ordered-transaction commits. The memory system and the unbounded-TM
 * backends attach hooks so that a logical commit/abort fans out to
 * cache flash-clears and background TAV/XADT cleanup without circular
 * dependencies.
 */

#ifndef PTM_TX_TX_MANAGER_HH
#define PTM_TX_TX_MANAGER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/config.hh"
#include "sim/profile.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/types.hh"
#include "tx/transaction.hh"

namespace ptm
{

struct AuditTestAccess;
class ContentionHeatmap;
class FlightRecorder;

/** Why a transaction was aborted (statistics / traces). */
enum class AbortReason
{
    /** Lost eager arbitration to an older transaction. */
    ConflictLost,
    /** Conflicted with a non-transactional access (always aborts). */
    NonTxConflict,
    /**
     * wd:cache mode: a block written at word granularity by several
     * transactions was evicted, but the overflow structures track only
     * one writer per block (section 6.3).
     */
    MultiWriterEviction,
    /** Explicit abort from the workload (failure injection in tests). */
    Explicit,
};

/** Result of a commit request. */
enum class CommitResult
{
    /** Logically committed; execution may continue. */
    Done,
    /** Ordered transaction must wait for its predecessor. */
    WaitOrdered,
};

/**
 * The transaction manager. One instance per simulated system.
 */
class TxManager
{
  public:
    TxManager() = default;

    /** @name Hooks (wired by System construction) */
    /// @{
    /** Invoked at logical commit: flash-clear tx bits in caches etc. */
    std::function<void(TxId)> onLogicalCommit;
    /** Invoked at logical abort: invalidate speculative lines etc. */
    std::function<void(TxId)> onLogicalAbort;
    /** Backend cleanup kick-off (TAV walk / XADT drain) at commit. */
    std::function<void(TxId)> backendCommit;
    /** Backend cleanup kick-off at abort. */
    std::function<void(TxId)> backendAbort;
    /** Notify the owning thread that its transaction aborted. */
    std::function<void(TxId, ThreadId, AbortReason)> notifyAborted;
    /**
     * Notify the owning thread that abort cleanup finished and the
     * transaction may be restarted (Copy-PTM restores must complete
     * before re-execution can observe home-page data).
     */
    std::function<void(TxId, ThreadId)> notifyAbortComplete;
    /** Wake an ordered transaction whose turn to commit arrived. */
    std::function<void(TxId, ThreadId)> wakeOrderedCommit;
    /// @}

    /**
     * Enter a transaction on @p thread. If the thread already runs a
     * transaction, nesting is flattened: the depth is bumped and the
     * existing id returned.
     *
     * @param ordered whether this is an ordered transaction
     * @param scope   ordered scope identifier
     * @param rank    program-defined commit rank within the scope
     * @return the (new or enclosing) transaction id
     */
    TxId begin(ThreadId thread, ProcId proc, Tick now,
               bool ordered = false, std::uint32_t scope = 0,
               std::uint64_t rank = 0);

    /**
     * Restart an aborted transaction: same id, same age, next attempt.
     * Only legal once the previous attempt reached TxState::Aborted.
     */
    void restart(TxId id, Tick now);

    /**
     * Leave the innermost transactional scope of @p id. If nesting
     * remains, just decrements the depth and reports Done. For the
     * outermost end of an ordered transaction whose turn has not come,
     * reports WaitOrdered (the core blocks; wakeOrderedCommit fires
     * later). Otherwise performs the logical commit.
     */
    CommitResult requestCommit(TxId id);

    /**
     * Logically abort @p id (arbitration loss, non-transactional
     * conflict, or explicit). Idempotent while cleanup is pending.
     * @p where is the conflicting address for heatmap attribution
     * (invalidAddr when none is attributable, e.g. chaos injection);
     * @p winner is the transaction that won the conflict, recorded as
     * the killer in the flight recorder (invalidTxId when there is no
     * transactional winner).
     */
    void abort(TxId id, AbortReason why, Addr where = invalidAddr,
               TxId winner = invalidTxId);

    /**
     * Backend finished draining overflow state of @p id; transitions
     * Committing->Committed / Aborting->Aborted and, for ordered
     * commits, hands the commit token to the successor.
     */
    void cleanupDone(TxId id);

    /**
     * Arbitrate a conflict between the requesting access and the set of
     * conflicting live transactions. The oldest contender wins; all
     * younger transactions in @p conflicting are aborted. A
     * non-transactional requester (@p requester == invalidTxId) always
     * wins (section 2.3.3).
     *
     * Emits one winner->loser ConflictEdge trace event per aborted
     * contender; @p where (the conflicting block address, 0 if
     * unknown) is carried in the edge payload.
     *
     * @return true if the requester survives (won or tied), false if
     *         the requester itself was aborted.
     */
    bool resolveConflicts(TxId requester,
                          const std::vector<TxId> &conflicting,
                          Addr where = 0);

    /** Create an ordered scope; commits inside it occur in rank order. */
    std::uint32_t createOrderedScope();

    /** Access a T-State entry (nullptr if unknown). */
    Transaction *get(TxId id);
    const Transaction *get(TxId id) const;

    /** Current state of @p id, Invalid if unknown. */
    TxState stateOf(TxId id) const;

    /** True if @p id is live (Running). */
    bool
    isLive(TxId id) const
    {
        return stateOf(id) == TxState::Running;
    }

    /** Number of transactions currently live. */
    unsigned liveCount() const { return live_count_; }

    /** The whole T-State table (auditor / chaos victim selection). */
    const std::unordered_map<TxId, Transaction> &txTable() const
    {
        return table_;
    }

    /** Configure the contention-robustness knobs (System wiring). */
    void setContention(const ContentionParams &p) { contention_ = p; }

    /**
     * Holder of the serialized starvation token (wins every
     * arbitration until it commits); invalidTxId when free.
     */
    TxId starvationHolder() const { return starvation_holder_; }

    /** Register this component's statistics under "tx". */
    void regStats(StatRegistry &reg);

    /** Attach the event tracer (System wiring; defaults to nil). */
    void setTracer(Tracer *t) { tracer_ = t; }

    /** Attach the cycle profiler (System wiring; defaults to nil). */
    void setProfiler(CycleProfiler *p) { prof_ = p; }

    /** Attach the contention heatmap (System wiring; off = nullptr). */
    void setHeatmap(ContentionHeatmap *h) { heat_ = h; }

    /** Attach the flight recorder (System wiring; off = nullptr). */
    void setFlightRec(FlightRecorder *f) { fr_ = f; }

    /**
     * Attach the simulation clock (System wiring). Unlike the
     * profiler — which is only wired when profiling is enabled — the
     * clock is wired unconditionally so the commit-latency
     * distribution is always populated.
     */
    void setClock(std::function<Tick()> c) { clock_ = std::move(c); }

    /** @name Statistics */
    /// @{
    Counter commits;
    Counter aborts;
    /** @name Per-cause abort breakdown (sums to aborts) */
    /// @{
    Counter abortsConflict;    //!< lost eager arbitration
    Counter abortsNonTx;       //!< conflicted with a non-tx access
    Counter abortsMultiWriter; //!< multi-writer block eviction
    Counter abortsExplicit;    //!< workload-injected aborts
    /// @}
    Counter nestedBegins;
    Counter orderedWaits;
    /** Starvation-watchdog trips (N consecutive aborts of one tx). */
    Counter watchdogTrips;
    /** Serialized starvation-token grants (escalations). */
    Counter starvationGrants;
    /**
     * End-to-end latency of committed transactions in ticks (first
     * begin to logical commit, aborted attempts included); the
     * source of the p50/p95/p99 figures of bench_kv.
     */
    Distribution commitLatency{0, 1048576, 1024};
    /// @}

  private:
    friend struct AuditTestAccess;
    struct OrderedScope
    {
        std::uint64_t nextRank = 0;
        /** rank -> (txid) transactions blocked at tx_end. */
        std::unordered_map<std::uint64_t, TxId> waiters;
    };

    void doLogicalCommit(Transaction &tx);

    Tracer *tracer_ = &Tracer::nil();
    CycleProfiler *prof_ = &CycleProfiler::nil();
    ContentionHeatmap *heat_ = nullptr;
    FlightRecorder *fr_ = nullptr;
    std::function<Tick()> clock_;
    std::unordered_map<TxId, Transaction> table_;
    std::unordered_map<ThreadId, TxId> active_by_thread_;
    std::vector<OrderedScope> scopes_;
    TxId next_id_ = 1;
    std::uint64_t next_age_ = 1;
    unsigned live_count_ = 0;
    ContentionParams contention_;
    TxId starvation_holder_ = invalidTxId;
};

} // namespace ptm

#endif // PTM_TX_TX_MANAGER_HH
