/**
 * @file
 * Human- and machine-readable presentation of the cycle-accounting
 * profiler.
 *
 *  - printProfileTable(): the Figure-6-style stacked overhead table —
 *    one column per core, one row per tick bucket, each cell the
 *    percentage of elapsed simulated time, plus the supervisor-overlay
 *    charge totals underneath. Printed by `ptm_sim --profile` and the
 *    bench_* binaries.
 *  - printHostProfile(): per-callback-site event counts and estimated
 *    host nanoseconds from the EventQueue's sampled wall-clock
 *    profile (`--host-profile`).
 *  - addProfileFields(): appends the aggregate bucket totals to a
 *    BenchRecorder row (prof_total_ticks + one prof_<bucket> field per
 *    bucket) so BENCH_*.json baselines carry the decomposition and
 *    bench_compare can diff it.
 */

#ifndef PTM_HARNESS_PROFILE_IO_HH
#define PTM_HARNESS_PROFILE_IO_HH

#include <cstdio>
#include <string>

#include "harness/stats_io.hh"
#include "sim/profile.hh"

namespace ptm
{

/**
 * Print the per-core cycle decomposition of @p prof to @p out: one row
 * per bucket (percent of elapsed ticks per core plus an all-core
 * column), a total row, and the supervisor-overlay charges in ticks.
 * No-op when @p prof is not enabled.
 */
void printProfileTable(std::FILE *out, const ProfSnapshot &prof);

/**
 * Print the host-side event-loop profile: events, sampled events, and
 * estimated host milliseconds per callback site, sorted by estimated
 * time. No-op when @p host is not enabled.
 */
void printHostProfile(std::FILE *out, const HostProfile &host);

/**
 * Print one run's profile under a "--- profile: <label> ---" header:
 * the cycle table followed by the host profile. No-op when @p prof is
 * disabled, so bench loops can call it unconditionally.
 */
void printRunProfile(std::FILE *out, const std::string &label,
                     const ProfSnapshot &prof, const HostProfile &host);

/**
 * Append the aggregate cycle decomposition to the current row of
 * @p rec: "prof_total_ticks" (all-core bucket sum) and one
 * "prof_<bucket>" field per bucket. No-op when @p prof is disabled, so
 * call sites need no flag check.
 */
void addProfileFields(BenchRecorder &rec, const ProfSnapshot &prof);

} // namespace ptm

#endif // PTM_HARNESS_PROFILE_IO_HH
