/**
 * @file
 * Top-level simulated system: wires the event queue, physical memory,
 * transaction manager, memory system, OS kernel, CPU cores and the
 * selected unbounded-TM backend, and runs workloads to completion.
 *
 * This is the primary public entry point of the library:
 *
 * @code
 *     SystemParams p;              // paper's 4-core CMP by default
 *     p.tmKind = TmKind::SelectPtm;
 *     System sys(p);
 *     ProcId proc = sys.createProcess();
 *     sys.addThread(proc, steps);  // coroutine-step program
 *     sys.run();
 *     RunStats s = sys.stats();
 * @endcode
 */

#ifndef PTM_HARNESS_SYSTEM_HH
#define PTM_HARNESS_SYSTEM_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "cpu/thread.hh"
#include "mem/frame_alloc.hh"
#include "mem/mem_system.hh"
#include "mem/phys_mem.hh"
#include "persist/wal.hh"
#include "ptm/audit.hh"
#include "ptm/heatmap.hh"
#include "ptm/vts.hh"
#include "sim/chaos.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/flightrec.hh"
#include "sim/timeseries.hh"
#include "sim/trace.hh"
#include "tx/tx_manager.hh"
#include "vm/os_kernel.hh"

namespace ptm
{

/** Aggregated end-of-run statistics. */
struct RunStats
{
    Tick cycles = 0;
    bool hitTickLimit = false;

    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t abortsNonTx = 0;
    std::uint64_t abortsMultiWriter = 0;

    std::uint64_t memOps = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t busTransactions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t txEvictions = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t stalls = 0;

    std::uint64_t exceptions = 0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t pageFaults = 0;
    std::uint64_t swapIns = 0;
    std::uint64_t swapOuts = 0;

    std::uint64_t uniquePages = 0;
    std::uint64_t txWrittenPages = 0;

    /** PTM-specific (zero for other backends). */
    std::uint64_t shadowAllocs = 0;
    std::uint64_t shadowFrees = 0;
    std::uint64_t liveShadowPages = 0;
    double avgLiveDirtyPages = 0.0;
    std::uint64_t commitWalkNodes = 0;
    std::uint64_t abortWalkNodes = 0;
    std::uint64_t copyBackups = 0;
    std::uint64_t abortRestoreUnits = 0;
    std::uint64_t lazyMigrations = 0;
    std::uint64_t sptCacheHits = 0;
    std::uint64_t sptCacheMisses = 0;
    std::uint64_t tavCacheHits = 0;
    std::uint64_t tavCacheMisses = 0;

    /** VTM-specific (zero for other backends). */
    std::uint64_t xadtEntries = 0;
    std::uint64_t xadtCopybacks = 0;
    std::uint64_t xfFiltered = 0;
    std::uint64_t xadcHits = 0;
    std::uint64_t xadcMisses = 0;
    std::uint64_t victimCacheHits = 0;

    /** Memory operations per eviction (Table 1 "mop/evict"). */
    double
    mopPerEvict() const
    {
        return evictions ? double(memOps) / double(evictions) : 0.0;
    }

    /** Conservative shadow-page overhead bound (Table 1). */
    double
    conservativePct() const
    {
        return uniquePages
                   ? 100.0 * double(txWrittenPages) / double(uniquePages)
                   : 0.0;
    }

    /** Idealized shadow-page overhead (Table 1 "ideal"). */
    double
    idealPct() const
    {
        return uniquePages
                   ? 100.0 * avgLiveDirtyPages / double(uniquePages)
                   : 0.0;
    }
};

class System
{
  public:
    explicit System(const SystemParams &params);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** @name Workload construction */
    /// @{
    ProcId createProcess();
    void
    shareSegment(const std::vector<ProcId> &procs, Addr vbase,
                 unsigned pages)
    {
        os_.shareSegment(procs, vbase, pages);
    }
    void
    shareSegmentAt(const std::vector<std::pair<ProcId, Addr>> &views,
                   unsigned pages)
    {
        os_.shareSegmentAt(views, pages);
    }
    ThreadCtx &addThread(ProcId proc, std::vector<Step> steps,
                         std::string name = {});
    unsigned createBarrier(unsigned count)
    {
        return os_.createBarrier(count);
    }
    std::uint32_t createOrderedScope()
    {
        return txmgr_.createOrderedScope();
    }
    /// @}

    /**
     * Run until every thread finishes (or params.maxTicks).
     * @return the final simulated tick.
     */
    Tick run();

    /**
     * The statistics registry: every component's metrics, registered
     * under named groups ("sys", "tx", "mem", "os", "core<N>", and
     * "vts" / "vtm" for the TM backends). The registry references the
     * live components; use snapshot() for results that must outlive
     * this System.
     */
    const StatRegistry &registry() const { return registry_; }

    /** A by-value capture of every registered statistic. */
    StatSnapshot snapshot() const { return StatSnapshot(registry_); }

    /**
     * Aggregate statistics (valid after run()). Legacy flat view kept
     * for tests and examples; front ends use registry()/snapshot().
     */
    RunStats stats() const;

    /** Print a "group.stat value" dump of the whole registry. */
    void dumpStats(std::ostream &os) const;

    /**
     * The event tracer. Inactive (zero-cost recording) unless
     * params.trace.path was set; front ends capture its buffer after
     * run() via harness::captureTrace().
     */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    /**
     * The cycle-accounting profiler. Inactive (single-branch
     * recording) unless params.profile.enabled; after run() every
     * core's bucket totals sum to the final tick.
     */
    CycleProfiler &profiler() { return profiler_; }
    const CycleProfiler &profiler() const { return profiler_; }

    /**
     * The deterministic fault injector. Inactive (every hook is one
     * never-taken branch) unless params.chaos.enabled.
     */
    ChaosEngine &chaos() { return chaos_; }
    const ChaosEngine &chaos() const { return chaos_; }

    /**
     * The PTM invariant auditor. Detached (checkAll() returns without
     * walking anything) unless params.audit.enabled on a PTM backend.
     */
    PtmAuditor &auditor() { return auditor_; }
    const PtmAuditor &auditor() const { return auditor_; }

    /**
     * The per-page contention heatmap, or nullptr unless
     * params.heatmap.enabled (components then hold null hook pointers:
     * the default path costs one never-taken branch per event).
     */
    ContentionHeatmap *heatmap() { return heatmap_.get(); }
    const ContentionHeatmap *heatmap() const { return heatmap_.get(); }

    /**
     * The transaction flight recorder, or nullptr when
     * `--flightrec-depth 0` removed it (components then hold null hook
     * pointers; recording is otherwise always on, post-mortem capture
     * only when armed).
     */
    FlightRecorder *flightrec() { return flightrec_.get(); }
    const FlightRecorder *flightrec() const { return flightrec_.get(); }

    /**
     * The interval time-series sampler, or nullptr unless
     * params.timeseries streaming or capture was requested. Built
     * lazily at run() so it sees every registered stat group.
     */
    const TimeseriesSampler *timeseries() const
    {
        return timeseries_.get();
    }

    /**
     * The write-ahead log, or nullptr unless `--durability wal`
     * (volatile runs never construct it, keeping them bit-identical).
     */
    WalManager *wal() { return wal_.get(); }
    const WalManager *wal() const { return wal_.get(); }

    /** True if run() stopped at an injected crash cut. */
    bool crashed() const { return crashed_; }

    /**
     * The planned crash tick (explicit --crash-at-tick or the chaos
     * crash fault's seeded draw); 0 when no crash is planned.
     */
    Tick crashTick() const { return crash_tick_; }

    /** @name Component access (tests, benches) */
    /// @{
    EventQueue &eq() { return eq_; }
    PhysMem &phys() { return phys_; }
    TxManager &txmgr() { return txmgr_; }
    MemSystem &mem() { return mem_; }
    OsKernel &os() { return os_; }
    Core &core(CoreId c) { return *cores_[c]; }
    /** The PTM supervisor, or nullptr for non-PTM systems. */
    Vts *vts() { return vts_; }
    TmBackend *backend() { return backend_.get(); }
    const SystemParams &params() const { return params_; }
    ThreadCtx &thread(ThreadId t) { return *threads_[t]; }
    unsigned numThreads() const { return unsigned(threads_.size()); }
    /// @}

    /**
     * Functional read of committed memory at (proc, vaddr) — used by
     * workload result verification after the run.
     */
    std::uint32_t readWord32(ProcId proc, Addr vaddr);

  private:
    void wireHooks();
    void regStats();
    void unparkIfWaiting(ThreadCtx *t, ThreadState expected);
    void startSampler();
    void scheduleSample();
    void startTimeseries();
    void scheduleTimeseries();
    void startChaos();
    void scheduleChaos();
    void injectChaos();
    void startAudit();
    void scheduleAudit();
    /** Deterministic live-transaction victim pick (sorted ids). */
    TxId pickLiveTx();

    SystemParams params_;
    StatRegistry registry_;
    Tracer tracer_;
    CycleProfiler profiler_;
    ChaosEngine chaos_;
    PtmAuditor auditor_;
    /** Chaos cache-squeeze state: capacities currently shrunk. */
    bool squeezed_ = false;
    EventQueue eq_;
    PhysMem phys_;
    FrameAllocator frames_;
    TxManager txmgr_;
    MemSystem mem_;
    OsKernel os_;
    std::unique_ptr<ContentionHeatmap> heatmap_;
    std::unique_ptr<FlightRecorder> flightrec_;
    std::unique_ptr<TimeseriesSampler> timeseries_;
    /** Pending periodic sample; cancelled when the workload ends. */
    EventQueue::Handle timeseriesEvent_;
    std::unique_ptr<TmBackend> backend_;
    Vts *vts_ = nullptr; //!< non-owning view of backend_ when PTM
    std::unique_ptr<WalManager> wal_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<ThreadCtx>> threads_;
    bool hit_limit_ = false;
    bool crashed_ = false;
    /** Effective crash-cut tick; 0 = no crash planned. */
    Tick crash_tick_ = 0;
    /** (tracer series index, registered stat) pairs for the sampler. */
    std::vector<std::pair<unsigned, const StatRef *>> sampled_;
};

} // namespace ptm

#endif // PTM_HARNESS_SYSTEM_HH
