/**
 * @file
 * Profile presentation implementation.
 */

#include "harness/profile_io.hh"

#include <algorithm>
#include <string>
#include <vector>

namespace ptm
{

void
printProfileTable(std::FILE *out, const ProfSnapshot &prof)
{
    if (!prof.enabled)
        return;

    const unsigned cores = unsigned(prof.cores.size());
    const double elapsed = prof.elapsed ? double(prof.elapsed) : 1.0;

    std::fprintf(out,
                 "cycle accounting  (%% of %llu elapsed ticks per "
                 "core)\n",
                 (unsigned long long)prof.elapsed);
    std::fprintf(out, "  %-10s", "bucket");
    for (unsigned c = 0; c < cores; ++c)
        std::fprintf(out, "  core%-3u", c);
    std::fprintf(out, "      all\n");

    for (unsigned b = 0; b < profBuckets; ++b) {
        // Skip all-zero rows to keep small runs readable.
        if (!prof.bucketTotal(ProfBucket(b)))
            continue;
        std::fprintf(out, "  %-10s", profBucketName(ProfBucket(b)));
        for (unsigned c = 0; c < cores; ++c)
            std::fprintf(out, "  %6.2f%%",
                         100.0 * double(prof.cores[c][b]) / elapsed);
        std::fprintf(out, "  %6.2f%%\n",
                     100.0 * double(prof.bucketTotal(ProfBucket(b))) /
                         (elapsed * (cores ? cores : 1)));
    }

    std::fprintf(out, "  %-10s", "total");
    std::uint64_t all = 0;
    for (unsigned c = 0; c < cores; ++c) {
        std::uint64_t t = prof.coreTotal(c);
        all += t;
        std::fprintf(out, "  %6.2f%%", 100.0 * double(t) / elapsed);
    }
    std::fprintf(out, "  %6.2f%%\n",
                 100.0 * double(all) / (elapsed * (cores ? cores : 1)));

    std::fprintf(out, "supervisor charges  (overlay ticks; may overlap "
                      "stall buckets)\n");
    for (unsigned c = 0; c < profCharges; ++c) {
        if (!prof.charges[c])
            continue;
        std::fprintf(out, "  %-18s %llu\n",
                     profChargeName(ProfCharge(c)),
                     (unsigned long long)prof.charges[c]);
    }
}

void
printHostProfile(std::FILE *out, const HostProfile &host)
{
    if (!host.enabled)
        return;

    std::vector<HostProfile::Site> sites = host.sites;
    std::sort(sites.begin(), sites.end(),
              [&](const HostProfile::Site &a, const HostProfile::Site &b) {
                  return a.estimatedNs(host.sampleInterval) >
                         b.estimatedNs(host.sampleInterval);
              });

    std::fprintf(out,
                 "host event-loop profile  (every %u-th event timed)\n",
                 host.sampleInterval);
    std::fprintf(out, "  %-16s %12s %10s %12s\n", "site", "events",
                 "sampled", "est. ms");
    for (const auto &s : sites)
        std::fprintf(out, "  %-16s %12llu %10llu %12.3f\n",
                     s.name.c_str(), (unsigned long long)s.events,
                     (unsigned long long)s.sampled,
                     double(s.estimatedNs(host.sampleInterval)) / 1e6);
}

void
printRunProfile(std::FILE *out, const std::string &label,
                const ProfSnapshot &prof, const HostProfile &host)
{
    if (!prof.enabled)
        return;
    std::fprintf(out, "\n--- profile: %s ---\n", label.c_str());
    printProfileTable(out, prof);
    printHostProfile(out, host);
    std::fprintf(out, "\n");
}

void
addProfileFields(BenchRecorder &rec, const ProfSnapshot &prof)
{
    if (!prof.enabled)
        return;

    std::uint64_t all = 0;
    for (unsigned c = 0; c < prof.cores.size(); ++c)
        all += prof.coreTotal(c);
    rec.field("prof_total_ticks", all);
    for (unsigned b = 0; b < profBuckets; ++b)
        rec.field(std::string("prof_") +
                      profBucketName(ProfBucket(b)),
                  prof.bucketTotal(ProfBucket(b)));
}

} // namespace ptm
