/**
 * @file
 * Machine-readable statistics emission.
 *
 * Serializes a run manifest (workload, system parameters, seed, build
 * id, wall time) plus a StatSnapshot as JSON — the "ptm-stats-v1"
 * schema consumed by tools/check_stats_json.py and any downstream
 * analysis. Also provides:
 *
 *  - JsonWriter: a small streaming JSON writer (escaping, commas,
 *    indentation) usable by any front end;
 *  - minijson: a compact JSON parser used by the emitter round-trip
 *    tests (and available to tools that read their own output back);
 *  - BenchRecorder: row-oriented "ptm-bench-v1" result files for the
 *    bench_* binaries' --json flag (BENCH_*.json trajectories).
 *
 * Schema ptm-stats-v1 (one run):
 *
 *     { "schema": "ptm-stats-v1",
 *       "manifest": { "tool": ..., "workload": ..., "system": ...,
 *                     "granularity": ..., "threads": N, "scale": N,
 *                     "workload_options": { "<key>": "<value>", ... },
 *                     "seed": N, "cycles": N, "verified": bool,
 *                     "wall_seconds": x, "events_per_sec": x,
 *                     "sim_ticks_per_wall_sec": x, "git": "...",
 *                     "params": { ... SystemParams ... } },
 *       "groups": { "<group>": { "<stat>": { "kind": "counter",
 *                                            "value": N }, ... } } }
 *
 * When a contention heatmap ran, a top-level "hot_pages" section
 * carries the per-metric top-K attributions (see emitRunJson).
 *
 * Stat encodings by kind: counter {value}, average {mean, samples},
 * time_weighted {mean}, scalar {value}, distribution {samples, sum,
 * mean, min, max, bucket_lo, bucket_width, underflow, overflow,
 * counts[]}.
 */

#ifndef PTM_HARNESS_STATS_IO_HH
#define PTM_HARNESS_STATS_IO_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "ptm/heatmap.hh"
#include "sim/config.hh"
#include "sim/flightrec.hh"
#include "sim/profile.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ptm
{

/** Streaming JSON writer: handles escaping, commas and indentation. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    /** @name Structure */
    /// @{
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();
    /** Next member's key (inside an object). */
    void key(const std::string &k);
    /// @}

    /** @name Values */
    /// @{
    void value(const std::string &v);
    void value(const char *v) { value(std::string(v)); }
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(std::int64_t(v)); }
    void value(unsigned v) { value(std::uint64_t(v)); }
    void value(bool v);
    void null();
    /// @}

    /** key() + value() in one call. */
    template <typename T>
    void
    member(const std::string &k, T v)
    {
        key(k);
        value(v);
    }

  private:
    void separate();
    void indent();

    std::ostream &os_;
    /** Nesting stack: true = a value was already emitted at the level. */
    std::vector<bool> have_value_;
    bool pending_key_ = false;
};

/** Write @p s JSON-escaped (with quotes) to @p os. */
void jsonEscape(std::ostream &os, const std::string &s);

/** A compact JSON parser (objects, arrays, strings, numbers, bools). */
namespace minijson
{

struct Value
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    /** Object member lookup; nullptr if absent or not an object. */
    const Value *get(const std::string &k) const;

    bool isNumber() const { return type == Type::Number; }
    bool isObject() const { return type == Type::Object; }
};

/**
 * Parse @p text into @p out.
 * @return true on success; on failure @p err (if non-null) explains.
 */
bool parse(const std::string &text, Value &out, std::string *err);

} // namespace minijson

/** Identification of one simulator run for the JSON manifest. */
struct RunManifest
{
    std::string tool;        //!< emitting binary ("ptm_sim", ...)
    std::string workload;
    /**
     * The run's resolved workload options (defaults filled in), in
     * declaration order; emitted as the "workload_options" object.
     * Same shape as WorkloadOptList.
     */
    std::vector<std::pair<std::string, std::string>> workloadOptions;
    unsigned threads = 0;
    int scale = 0;
    Tick cycles = 0;
    bool verified = false;
    double wallSeconds = 0;
    /** Host throughput: simulated events executed per wall-second. */
    double eventsPerSec = 0;
    /**
     * Host throughput over the event loop only (sys.run() span,
     * excluding workload build/verify): the scaling regression metric.
     */
    double simEventsPerSec = 0;
    /** Host throughput: simulated ticks per wall-second. */
    double simTicksPerWallSec = 0;
    /** Full system configuration; emitted when non-null. */
    const SystemParams *params = nullptr;
};

/** Build id baked in at configure time ("unknown" outside git). */
const char *gitDescribe();

/**
 * Emit one run as ptm-stats-v1 JSON. When @p prof is non-null and
 * enabled a top-level "profile" section is added:
 *
 *     "profile": { "elapsed_ticks": N,
 *                  "cores": [ { "total": N,
 *                               "ticks": { "<bucket>": N, ... } }, ... ],
 *                  "supervisor": { "<charge>": N, ... },
 *                  "host": { "sample_interval": N,
 *                            "sites": [ { "name": ..., "events": N,
 *                                         "sampled": N, "sampled_ns": N,
 *                                         "estimated_ns": N }, ... ] } }
 *
 * Every core's bucket ticks sum to its "total", which equals
 * "elapsed_ticks". "host" appears only when @p host is non-null and
 * enabled.
 *
 * When @p heat is non-null and enabled a top-level "hot_pages"
 * section is added:
 *
 *     "hot_pages": { "k": N,
 *                    "conflicts": { "total": N, "pages": [ ... ],
 *                                   "blocks": [ ... ] },
 *                    "aborts": { "<cause>": { "total": N,
 *                                             "pages": [ ... ] } },
 *                    "spt_misses": { "total": N, "pages": [ ... ] },
 *                    "tav_misses": { "total": N, "pages": [ ... ] },
 *                    "shadow_allocs": { "total": N, "pages": [ ... ] } }
 *
 * where each list entry is { "page": N | -1, "count": N, "err": N }
 * (blocks use "block"; -1 is the unattributed sentinel) and every
 * list's counts sum to its "total" when the key set fit within k.
 *
 * When @p forensics is non-null and enabled (the flight recorder ran)
 * a top-level "forensics" section is added:
 *
 *     "forensics": { "depth": N, "generations": N, "armed": bool,
 *                    "live_records": N, "retired_records": N,
 *                    "dropped_records": N, "wasted_ticks_total": N,
 *                    "dropped_wasted_ticks": N, "max_wasted_ticks": N,
 *                    "max_wasted_tx": N | -1, "deepest_chain": N,
 *                    "postmortems": N, "dropped_reports": N,
 *                    "top_killers": [ { "tx": N, "kills": N,
 *                                       "wasted_ticks": N }, ... ] }
 *
 * wasted_ticks_total covers dropped records too, so on runs that
 * finish before the tick limit it reconciles exactly with the
 * profiler's tx_wasted bucket (tools/check_postmortem_json.py gates
 * this).
 */
void emitRunJson(std::ostream &os, const RunManifest &manifest,
                 const StatSnapshot &snap,
                 const ProfSnapshot *prof = nullptr,
                 const HostProfile *host = nullptr,
                 const HeatmapSnapshot *heat = nullptr,
                 const ForensicsSnapshot *forensics = nullptr);

/**
 * Write ptm-stats-v1 JSON to @p path ("-" = stdout).
 * @return true on success; on failure @p err (if non-null) explains.
 */
bool writeRunJson(const std::string &path, const RunManifest &manifest,
                  const StatSnapshot &snap, std::string *err = nullptr,
                  const ProfSnapshot *prof = nullptr,
                  const HostProfile *host = nullptr,
                  const HeatmapSnapshot *heat = nullptr,
                  const ForensicsSnapshot *forensics = nullptr);

/**
 * Row-oriented results of one bench binary, written as ptm-bench-v1:
 *
 *     { "schema": "ptm-bench-v1", "bench": "...", "git": "...",
 *       "rows": [ { "<field>": <value>, ... }, ... ] }
 */
class BenchRecorder
{
  public:
    explicit BenchRecorder(std::string bench) : bench_(std::move(bench))
    {}

    /** Start a new result row. */
    BenchRecorder &beginRow();

    /** @name Add a field to the current row */
    /// @{
    BenchRecorder &field(const std::string &k, const std::string &v);
    BenchRecorder &field(const std::string &k, const char *v);
    BenchRecorder &field(const std::string &k, double v);
    BenchRecorder &field(const std::string &k, std::uint64_t v);
    BenchRecorder &field(const std::string &k, unsigned v);
    BenchRecorder &field(const std::string &k, bool v);
    /// @}

    /**
     * Write the accumulated rows to @p path ("-" = stdout; empty =
     * no-op so call sites need no flag check).
     * @return true on success or empty path.
     */
    bool writeJson(const std::string &path) const;

  private:
    struct Field
    {
        enum class Kind { Str, Num, UInt, Bool };
        std::string key;
        Kind kind = Kind::Str;
        std::string s;
        double d = 0;
        std::uint64_t u = 0;
        bool b = false;
    };

    std::string bench_;
    std::vector<std::vector<Field>> rows_;
};

} // namespace ptm

#endif // PTM_HARNESS_STATS_IO_HH
