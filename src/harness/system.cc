/**
 * @file
 * System wiring and run loop.
 */

#include "harness/system.hh"

#include <algorithm>
#include <iostream>

#include "harness/forensics_io.hh"
#include "sim/logging.hh"
#include "vtm/vtm.hh"

namespace ptm
{

System::System(const SystemParams &params)
    : params_(params), phys_(), frames_(params.physFrames),
      txmgr_(), mem_(params, eq_, phys_, txmgr_),
      os_(params, eq_, phys_, frames_)
{
    // Front ends validate with a clean diagnostic; embedders (tests,
    // custom harnesses) get the same checks as a fatal here.
    if (std::string err = validateParams(params_); !err.empty())
        fatal("%s", err.c_str());

    switch (params_.tmKind) {
      case TmKind::SelectPtm:
      case TmKind::CopyPtm: {
          auto vts = std::make_unique<Vts>(params_, eq_, phys_, txmgr_,
                                           frames_, mem_.dram());
          vts_ = vts.get();
          backend_ = std::move(vts);
          break;
      }
      case TmKind::Vtm:
      case TmKind::VcVtm:
          backend_ = std::make_unique<VtmController>(
              params_, eq_, phys_, txmgr_, mem_.dram());
          break;
      case TmKind::Serial:
      case TmKind::Locks:
          backend_ = nullptr;
          break;
    }
    mem_.setBackend(backend_.get());

    if (!params_.trace.path.empty()) {
        tracer_.configure(params_.trace.categories,
                          params_.trace.bufferEvents);
        tracer_.setClock([this] { return eq_.curTick(); });
        tracer_.setWatchAddr(params_.trace.watchAddr);
        txmgr_.setTracer(&tracer_);
        mem_.setTracer(&tracer_);
        os_.setTracer(&tracer_);
        if (vts_)
            vts_->setTracer(&tracer_);
        else if (auto *vtm = dynamic_cast<VtmController *>(backend_.get()))
            vtm->setTracer(&tracer_);
    }

    if (params_.profile.enabled) {
        profiler_.configure(params_.numCores);
        profiler_.setClock([this] { return eq_.curTick(); });
        txmgr_.setProfiler(&profiler_);
        mem_.setProfiler(&profiler_);
        os_.setProfiler(&profiler_);
        if (vts_)
            vts_->setProfiler(&profiler_);
        else if (auto *vtm = dynamic_cast<VtmController *>(backend_.get()))
            vtm->setProfiler(&profiler_);
    }
    if (params_.profile.host)
        eq_.enableHostProfile(params_.profile.hostSampleInterval);

    std::vector<Core *> core_ptrs;
    for (unsigned c = 0; c < params_.numCores; ++c) {
        cores_.push_back(std::make_unique<Core>(CoreId(c), params_, eq_,
                                                mem_, txmgr_, os_));
        if (params_.profile.enabled)
            cores_.back()->setProfiler(profiler_);
        core_ptrs.push_back(cores_.back().get());
    }
    os_.attach(&mem_, backend_.get(), std::move(core_ptrs));

    txmgr_.setContention(params_.contention);
    // Always wired (unlike the profiler): the commit-latency
    // distribution must be populated in plain benchmark runs too.
    txmgr_.setClock([this] { return eq_.curTick(); });

    if (params_.heatmap.enabled) {
        heatmap_ =
            std::make_unique<ContentionHeatmap>(params_.heatmap.topK);
        txmgr_.setHeatmap(heatmap_.get());
        if (vts_)
            vts_->setHeatmap(heatmap_.get());
    }

    if (params_.chaos.enabled) {
        chaos_.configure(params_.chaos);
        if (vts_)
            vts_->setChaos(&chaos_);
    }
    if (params_.audit.enabled) {
        if (vts_) {
            auditor_.attach(vts_, &txmgr_);
            using ull = unsigned long long;
            std::string repro =
                strprintf("--seed %llu", (ull)params_.seed);
            if (params_.chaos.enabled)
                repro += strprintf(
                    " --chaos --chaos-seed %llu --chaos-plan %s "
                    "--chaos-interval %llu",
                    (ull)params_.chaos.seed,
                    chaosPlanString(params_.chaos.plan).c_str(),
                    (ull)params_.chaos.interval);
            auditor_.setRepro(repro);
        } else {
            warn("--audit requested but the %s backend has no PTM "
                 "structures to audit",
                 tmKindName(params_.tmKind));
        }
    }

    if (params_.forensics.enabled()) {
        flightrec_ =
            std::make_unique<FlightRecorder>(params_.forensics);
        txmgr_.setFlightRec(flightrec_.get());
        for (auto &c : cores_)
            c->setFlightRec(flightrec_.get());
        if (vts_)
            vts_->setFlightRec(flightrec_.get());
        using ull = unsigned long long;
        std::string repro = strprintf("--seed %llu", (ull)params_.seed);
        if (params_.chaos.enabled)
            repro += strprintf(
                " --chaos --chaos-seed %llu --chaos-plan %s "
                "--chaos-interval %llu",
                (ull)params_.chaos.seed,
                chaosPlanString(params_.chaos.plan).c_str(),
                (ull)params_.chaos.interval);
        flightrec_->setRepro(repro);
        if (auditor_.attached())
            auditor_.onViolation = [this](const AuditViolation &v) {
                if (flightrec_->armed())
                    flightrec_->trigger(
                        PostmortemTrigger::AuditViolation, pickLiveTx(),
                        v.tick,
                        v.check + " at " + v.where + ": " + v.detail);
            };
        if (flightrec_->armed())
            flightrec_->onReport = [this](const PostmortemReport &r) {
                const std::string &path =
                    params_.forensics.postmortemPath;
                if (!path.empty()) {
                    if (std::ostream *os = timeseriesSink(path)) {
                        emitPostmortemJson(*os, *flightrec_, r);
                        os->flush();
                    }
                }
                printPostmortem(std::cerr, *flightrec_, r);
            };
    }

    if (params_.persist.enabled()) {
        wal_ = std::make_unique<WalManager>(params_.persist,
                                            params_.tmKind);
        wal_->setTracer(&tracer_);
        if (params_.profile.enabled)
            wal_->setProfiler(&profiler_);
        for (auto &c : cores_)
            c->setWal(wal_.get());
    }

    // The crash cut: an explicit tick wins; otherwise the chaos crash
    // fault draws one from the injector's seeded stream, so a
    // (chaos seed, plan) pair replays the same power loss.
    crash_tick_ = params_.persist.crashAtTick;
    if (chaos_.planned(ChaosFault::Crash)) {
        if (!wal_) {
            warn("chaos crash fault needs --durability wal to have "
                 "anything to recover; skipping the cut");
        } else if (crash_tick_ == 0) {
            // Draw from a span short enough to land inside typical
            // runs (a draw past the natural end is a no-op cut).
            Tick span = params_.maxTicks ? params_.maxTicks
                                         : Tick(1) << 20;
            span = std::min<Tick>(span, 1u << 20);
            crash_tick_ = 1 + chaos_.rng().below(std::uint32_t(span));
        }
    }

    wireHooks();
    regStats();
}

void
System::regStats()
{
    // "sys": run-level gauges and the paper's derived Table 1 columns.
    StatGroup &sys = registry_.addGroup("sys");
    sys.addScalar("cycles", [this] {
        return double(os_.lastExitTick() ? os_.lastExitTick()
                                         : eq_.curTick());
    }, "simulated ticks until the last thread exited");
    sys.addScalar("hit_tick_limit",
                  [this] { return hit_limit_ ? 1.0 : 0.0; },
                  "1 if the run stopped at params.maxTicks");
    if (params_.persist.enabled())
        sys.addScalar("crashed",
                      [this] { return crashed_ ? 1.0 : 0.0; },
                      "1 if an injected crash cut the run short");
    sys.addScalar("mem_ops", [this] {
        std::uint64_t n = 0;
        for (const auto &c : cores_)
            n += c->memOps.value();
        return double(n);
    }, "memory operations summed over all cores");
    sys.addScalar("mop_per_evict", [this] {
        std::uint64_t evict = mem_.evictions.value();
        std::uint64_t ops = 0;
        for (const auto &c : cores_)
            ops += c->memOps.value();
        return evict ? double(ops) / double(evict) : 0.0;
    }, "memory ops per cache eviction (Table 1 'mop/evict')");
    sys.addScalar("conservative_pct", [this] {
        std::size_t pages = os_.uniquePages();
        return pages ? 100.0 * double(os_.txWrittenPages()) /
                           double(pages)
                     : 0.0;
    }, "conservative shadow-page overhead bound % (Table 1)");
    sys.addScalar("ideal_pct", [this] {
        std::size_t pages = os_.uniquePages();
        if (!pages || !vts_)
            return 0.0;
        return 100.0 * vts_->liveDirtyPagesStat().mean() /
               double(pages);
    }, "idealized shadow-page overhead % (Table 1 'ideal')");

    // "events": event-queue activity by priority (always collected).
    StatGroup &ev = registry_.addGroup("events");
    ev.addScalar("scheduled",
                 [this] { return double(eq_.scheduledEvents()); },
                 "events scheduled (including cancelled ones)");
    ev.addScalar("executed",
                 [this] { return double(eq_.executedEvents()); },
                 "events executed at any priority");
    for (unsigned p = 0; p < numEventPriorities; ++p) {
        ev.addScalar(
            std::string("executed_") +
                eventPriorityName(EventPriority(p)),
            [this, p] {
                return double(eq_.executedEvents(EventPriority(p)));
            },
            std::string("events executed at priority ") +
                eventPriorityName(EventPriority(p)));
    }

    txmgr_.regStats(registry_);
    mem_.regStats(registry_);
    os_.regStats(registry_);
    for (const auto &c : cores_)
        c->regStats(registry_);
    if (backend_)
        backend_->regStats(registry_);
    // Opt-in groups only — except the flight recorder, which is on by
    // default (its counters are part of the default stats JSON).
    if (params_.chaos.enabled)
        chaos_.regStats(registry_);
    if (auditor_.attached())
        auditor_.regStats(registry_);
    if (flightrec_)
        flightrec_->regStats(registry_);
    if (wal_)
        wal_->regStats(registry_);
}

System::~System() = default;

void
System::unparkIfWaiting(ThreadCtx *t, ThreadState expected)
{
    if (t->state != expected)
        return;
    if (t->core && t->core->current() == t) {
        t->core->kickParked();
    } else {
        os_.makeReady(t);
        os_.kickIdleCores();
    }
}

void
System::wireHooks()
{
    txmgr_.onLogicalCommit = [this](TxId tx) {
        mem_.commitClearTx(tx);
        if (auditor_.attached() && params_.audit.atBoundaries)
            auditor_.checkAll("commit", eq_.curTick());
    };
    txmgr_.onLogicalAbort = [this](TxId tx) {
        mem_.abortInvalidate(tx);
        if (auditor_.attached() && params_.audit.atBoundaries)
            auditor_.checkAll("abort", eq_.curTick());
    };
    os_.onThreadExit = [this](ThreadCtx *t) {
        if (vts_)
            vts_->drainThreadCleanups(t->id);
        // The pending sample event would otherwise keep the queue
        // running to the next interval boundary after the workload
        // ends, inflating the elapsed time the profiler closes
        // against (same hazard as the daemon timer). The final flush
        // in run() still covers the cancelled remainder.
        if (os_.liveThreads() == 1)
            timeseriesEvent_.cancel();
    };
    if (backend_) {
        txmgr_.backendCommit = [this](TxId tx) {
            backend_->commitTx(tx);
        };
        txmgr_.backendAbort = [this](TxId tx) {
            backend_->abortTx(tx);
        };
    }
    txmgr_.notifyAborted = [this](TxId, ThreadId th, AbortReason) {
        ThreadCtx *t = threads_.at(th).get();
        t->abortPending = true;
        unparkIfWaiting(t, ThreadState::WaitOrdered);
    };
    txmgr_.notifyAbortComplete = [this](TxId, ThreadId th) {
        ThreadCtx *t = threads_.at(th).get();
        t->abortCleanupDone = true;
        unparkIfWaiting(t, ThreadState::WaitAbort);
    };
    txmgr_.wakeOrderedCommit = [this](TxId, ThreadId th) {
        ThreadCtx *t = threads_.at(th).get();
        unparkIfWaiting(t, ThreadState::WaitOrdered);
    };
}

ProcId
System::createProcess()
{
    return os_.createProcess();
}

ThreadCtx &
System::addThread(ProcId proc, std::vector<Step> steps,
                  std::string name)
{
    ThreadId id = ThreadId(threads_.size());
    threads_.push_back(std::make_unique<ThreadCtx>(
        id, proc, std::move(steps), std::move(name)));
    os_.admit(threads_.back().get());
    return *threads_.back();
}

void
System::startSampler()
{
    if (!tracer_.active() || !tracer_.enabled(TraceCat::Sample) ||
        params_.trace.sampleInterval == 0)
        return;
    // Probe whichever of these registered stats exist in this system
    // (the backend groups are configuration dependent).
    static const char *const paths[] = {
        "tx.commits",          "tx.aborts",
        "mem.conflicts",       "mem.evictions",
        "os.context_switches", "os.page_faults",
        "vts.live_shadow_pages", "vts.shadow_allocs",
        "vtm.xadt_entries",
    };
    sampled_.clear();
    for (const char *path : paths) {
        std::string p(path);
        auto dot = p.find('.');
        const StatGroup *g = registry_.find(p.substr(0, dot));
        const StatRef *r = g ? g->find(p.substr(dot + 1)) : nullptr;
        if (r)
            sampled_.emplace_back(tracer_.sampleSeries(p), r);
    }
    if (!sampled_.empty())
        scheduleSample();
}

void
System::scheduleSample()
{
    eq_.scheduleIn(params_.trace.sampleInterval, EventPriority::Stats,
                   [this] {
                       for (const auto &[series, ref] : sampled_)
                           tracer_.record(TraceEventType::CounterSample,
                                          traceNoId, traceNoId,
                                          invalidTxId, invalidTxId,
                                          series, 0, ref->numeric());
                       // Stop once the workload drained so the event
                       // queue can run dry.
                       if (os_.liveThreads() > 0)
                           scheduleSample();
                   });
}

void
System::startTimeseries()
{
    if (!params_.timeseries.enabled())
        return;
    timeseries_ = std::make_unique<TimeseriesSampler>(
        params_.timeseries, registry_, eq_);
    timeseries_->setRunInfo(tmKindArg(params_.tmKind), params_.seed,
                            params_.numCores);
    if (heatmap_)
        timeseries_->setHotPages(
            [this] { return heatmap_->hotPagesJson(8); });
    // Baselines before the first event executes: interval delta sums
    // then reconcile exactly with the end-of-run totals.
    timeseries_->start();
    scheduleTimeseries();
}

void
System::scheduleTimeseries()
{
    timeseriesEvent_ =
        eq_.scheduleIn(params_.timeseries.interval,
                       EventPriority::Stats, [this] {
                           timeseries_->sample();
                           if (os_.liveThreads() > 0)
                               scheduleTimeseries();
                       });
}

void
System::startChaos()
{
    if (!chaos_.active())
        return;
    scheduleChaos();
}

void
System::scheduleChaos()
{
    eq_.scheduleIn(params_.chaos.interval, EventPriority::Stats,
                   [this] {
                       injectChaos();
                       if (os_.liveThreads() > 0)
                           scheduleChaos();
                   });
}

TxId
System::pickLiveTx()
{
    // Collect and sort: unordered_map iteration order must not leak
    // into the deterministic injection schedule.
    std::vector<TxId> live;
    for (const auto &[id, tx] : txmgr_.txTable())
        if (tx.state == TxState::Running)
            live.push_back(id);
    if (live.empty())
        return invalidTxId;
    std::sort(live.begin(), live.end());
    return live[chaos_.rng().below(std::uint32_t(live.size()))];
}

void
System::injectChaos()
{
    std::uint32_t f = chaos_.pickFault();
    if (!f)
        return;
    TxId victim = invalidTxId;
    switch (ChaosFault(f)) {
      case ChaosFault::ExplicitAbort:
        victim = pickLiveTx();
        if (victim == invalidTxId)
            return;
        ++chaos_.injectedAborts;
        tracer_.record(TraceEventType::ChaosInject, traceNoId,
                       traceNoId, victim, invalidTxId, f);
        txmgr_.abort(victim, AbortReason::Explicit);
        if (flightrec_ && flightrec_->armed())
            flightrec_->trigger(PostmortemTrigger::ChaosInject, victim,
                                eq_.curTick(),
                                "chaos-injected explicit abort");
        return;
      case ChaosFault::CacheSqueeze:
        if (!vts_)
            return;
        if (!squeezed_) {
            vts_->sptCache.setCapacity(params_.chaos.squeezeEntries);
            vts_->tavCache.setCapacity(params_.chaos.squeezeEntries);
        } else {
            vts_->sptCache.setCapacity(params_.sptCacheEntries);
            vts_->tavCache.setCapacity(params_.tavCacheEntries);
        }
        squeezed_ = !squeezed_;
        ++chaos_.cacheSqueezes;
        break;
      case ChaosFault::TxFlush:
        victim = pickLiveTx();
        if (victim == invalidTxId)
            return;
        ++chaos_.txFlushes;
        // Forces the victim's cached transactional state out through
        // the overflow path (spills into TAV/XADT structures).
        mem_.flushTxLines(victim);
        break;
      case ChaosFault::PageSwap:
        if (os_.forceSwapOut() == 0)
            return;
        ++chaos_.pageSwaps;
        break;
      case ChaosFault::Preempt: {
          CoreId c = CoreId(chaos_.rng().below(params_.numCores));
          cores_[c]->daemonPreempt(params_.daemonRunLength);
          ++chaos_.preempts;
          break;
      }
      case ChaosFault::CleanupDelay:
      case ChaosFault::Crash:
        return; // polled / drawn once at startup, never scheduled
    }
    tracer_.record(TraceEventType::ChaosInject, traceNoId, traceNoId,
                   victim, invalidTxId, f);
}

void
System::startAudit()
{
    if (!auditor_.attached() || params_.audit.interval == 0)
        return;
    scheduleAudit();
}

void
System::scheduleAudit()
{
    eq_.scheduleIn(params_.audit.interval, EventPriority::Stats,
                   [this] {
                       auditor_.checkAll("interval", eq_.curTick());
                       if (os_.liveThreads() > 0)
                           scheduleAudit();
                   });
}

Tick
System::run()
{
    startSampler();
    startTimeseries();
    startChaos();
    startAudit();
    os_.startTimers();
    os_.kickIdleCores();
    Tick limit = params_.maxTicks ? params_.maxTicks : maxTick;
    if (crash_tick_ != 0 && crash_tick_ < limit)
        limit = crash_tick_;
    bool drained = eq_.run(limit);
    crashed_ = !drained && crash_tick_ != 0 &&
               eq_.curTick() >= crash_tick_;
    hit_limit_ = !drained && !crashed_;
    if (crashed_) {
        // Injected power loss: the machine simply stops. Nothing is
        // drained, settled, or audited — the only state a recovery may
        // rely on is the durable log prefix at the cut.
        ++chaos_.crashCuts;
        tracer_.record(TraceEventType::CrashCut, traceNoId, traceNoId,
                       invalidTxId, invalidTxId, eq_.curTick(),
                       wal_ ? wal_->durableBytesAt(eq_.curTick()) : 0);
    } else if (hit_limit_) {
        warn("simulation hit the tick limit at %llu",
             (unsigned long long)eq_.curTick());
        // Chaos-delayed or still-walking cleanups would otherwise leave
        // the structures mid-flight; force them so the end-of-run audit
        // (and any Copy-PTM restore) sees a settled state.
        if (vts_)
            vts_->drainAllCleanups();
    }
    if (auditor_.attached() && !crashed_)
        auditor_.checkAll("end", eq_.curTick());
    for (const auto &t : threads_) {
        if (t->state != ThreadState::Done && drained)
            panic("thread %u stuck in state %d at end of simulation",
                  t->id, int(t->state));
    }
    if (vts_)
        vts_->finishStats(eq_.curTick());
    // Close every core's accounting at the final queue tick so bucket
    // totals sum to the elapsed simulated time.
    profiler_.finish(eq_.curTick());
    // Flush the final (partial) time-series interval after the last
    // event, before any front end snapshots the registry.
    if (timeseries_)
        timeseries_->finish();
    // Report workload completion time: the queue may drain later
    // (timer events, background cleanup walks).
    return os_.lastExitTick() ? os_.lastExitTick() : eq_.curTick();
}

std::uint32_t
System::readWord32(ProcId proc, Addr vaddr)
{
    XlatResult xr = os_.translate(0, proc, vaddr, false);
    return mem_.debugReadWord32(xr.paddr);
}

RunStats
System::stats() const
{
    RunStats s;
    s.cycles = os_.lastExitTick() ? os_.lastExitTick() : eq_.curTick();
    s.hitTickLimit = hit_limit_;

    s.commits = txmgr_.commits.value();
    s.aborts = txmgr_.aborts.value();
    s.abortsNonTx = txmgr_.abortsNonTx.value();
    s.abortsMultiWriter = txmgr_.abortsMultiWriter.value();

    for (const auto &c : cores_)
        s.memOps += c->memOps.value();
    s.l1Hits = mem_.l1Hits.value();
    s.l2Hits = mem_.l2Hits.value();
    s.evictions = mem_.evictions.value();
    s.txEvictions = mem_.txEvictions.value();
    s.conflicts = mem_.conflicts.value();
    s.stalls = mem_.falseStalls.value();

    auto &self = const_cast<System &>(*this);
    s.busTransactions = self.mem_.bus().transactions();
    s.dramAccesses = self.mem_.dram().accesses();

    s.exceptions = os_.exceptions.value();
    s.contextSwitches = os_.contextSwitches.value();
    s.pageFaults = os_.pageFaults.value();
    s.swapIns = os_.swapIns.value();
    s.swapOuts = os_.swapOuts.value();
    s.uniquePages = os_.uniquePages();
    s.txWrittenPages = os_.txWrittenPages();

    if (vts_) {
        s.shadowAllocs = vts_->shadowAllocs.value();
        s.shadowFrees = vts_->shadowFrees.value();
        s.liveShadowPages = vts_->liveShadowPages();
        s.avgLiveDirtyPages = vts_->liveDirtyPagesStat().mean();
        s.commitWalkNodes = vts_->commitWalkNodes.value();
        s.abortWalkNodes = vts_->abortWalkNodes.value();
        s.copyBackups = vts_->copyBackups.value();
        s.abortRestoreUnits = vts_->abortRestoreUnits.value();
        s.lazyMigrations = vts_->lazyMigrations.value();
        s.sptCacheHits = vts_->sptCache.hits.value();
        s.sptCacheMisses = vts_->sptCache.misses.value();
        s.tavCacheHits = vts_->tavCache.hits.value();
        s.tavCacheMisses = vts_->tavCache.misses.value();
    }
    if (auto *vtm = dynamic_cast<const VtmController *>(backend_.get())) {
        s.xadtEntries = vtm->xadtInserts.value();
        s.xadtCopybacks = vtm->copybacks.value();
        s.xfFiltered = vtm->xfFiltered.value();
        s.xadcHits = vtm->xadcHits.value();
        s.xadcMisses = vtm->xadcMisses.value();
        s.victimCacheHits = vtm->victimHits.value();
    }
    return s;
}

void
System::dumpStats(std::ostream &out) const
{
    registry_.dump(out);
}

} // namespace ptm
