#include "harness/forensics_io.hh"

#include <cinttypes>
#include <cstdint>
#include <cstdio>

#include "harness/stats_io.hh"
#include "ptm/heatmap.hh"

namespace ptm
{

namespace
{

void
emitAddr(JsonWriter &w, const char *key, Addr a)
{
    if (a == invalidAddr)
        w.member(key, std::int64_t(-1));
    else
        w.member(key, std::uint64_t(a));
}

void
emitTx(JsonWriter &w, const char *key, TxId tx)
{
    if (tx == invalidTxId)
        w.member(key, std::int64_t(-1));
    else
        w.member(key, std::uint64_t(tx));
}

void
emitAbortEvent(JsonWriter &w, const FlightAbortEvent &ev)
{
    w.beginObject();
    w.member("tick", std::uint64_t(ev.tick));
    w.member("attempt", ev.attempt);
    w.member("cause", heatAbortCauseName(ev.cause));
    emitAddr(w, "where", ev.where);
    emitTx(w, "winner", ev.winner);
    w.endObject();
}

void
emitRecord(JsonWriter &w, const FlightRecord &rec)
{
    w.beginObject();
    w.member("tx", std::uint64_t(rec.id));
    w.member("thread", std::uint64_t(rec.thread));
    w.member("proc", std::uint64_t(rec.proc));
    w.member("first_begin", std::uint64_t(rec.firstBegin));
    w.member("last_begin", std::uint64_t(rec.lastBegin));
    w.member("end_tick", std::uint64_t(rec.endTick));
    w.member("committed", rec.committed);
    w.member("attempts", rec.attempts);
    w.member("aborts", rec.abortCount);
    w.member("kills", rec.kills);
    w.member("spt_misses", rec.sptMisses);
    w.member("tav_misses", rec.tavMisses);
    w.member("shadow_allocs", rec.shadowAllocs);
    w.member("wasted_ticks", std::uint64_t(rec.wastedTicks));
    w.member("lost_ticks", std::uint64_t(rec.lostTicks));
    w.key("recent_aborts");
    w.beginArray();
    // Oldest-first so the array reads chronologically.
    for (unsigned i = rec.storedAborts(); i-- > 0;)
        emitAbortEvent(w, rec.recentAbort(i));
    w.endArray();
    w.endObject();
}

} // namespace

void
emitPostmortemJson(std::ostream &os, const FlightRecorder &rec,
                   const PostmortemReport &r)
{
    JsonWriter w(os);
    w.beginObject();
    w.member("schema", "ptm-postmortem-v1");

    w.key("trigger");
    w.beginObject();
    w.member("kind", postmortemTriggerName(r.trigger));
    w.member("tick", std::uint64_t(r.tick));
    emitTx(w, "tx", r.subject);
    w.member("detail", r.detail);
    w.endObject();

    w.member("repro", rec.repro());
    w.member("generations", rec.params().generations);
    w.member("chain_depth", r.chainDepth);

    w.key("nodes");
    w.beginArray();
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
        const PostmortemNode &n = r.nodes[i];
        w.beginObject();
        w.member("id", std::uint64_t(i));
        w.member("tx", std::uint64_t(n.tx));
        w.member("tick", std::uint64_t(n.tick));
        w.member("attempt", n.attempt);
        if (n.tick == 0)
            w.member("cause", "terminal");
        else
            w.member("cause", heatAbortCauseName(n.cause));
        emitAddr(w, "where", n.where);
        if (n.where == invalidAddr)
            w.member("page", std::int64_t(-1));
        else
            w.member("page", std::uint64_t(pageOf(n.where)));
        emitTx(w, "winner", n.winner);
        w.member("generation", n.generation);
        w.endObject();
    }
    w.endArray();

    w.key("edges");
    w.beginArray();
    for (const PostmortemEdge &e : r.edges) {
        w.beginObject();
        w.member("from", std::uint64_t(e.from));
        w.member("to", std::uint64_t(e.to));
        w.endObject();
    }
    w.endArray();

    w.key("records");
    w.beginArray();
    for (const FlightRecord &fr : r.records)
        emitRecord(w, fr);
    w.endArray();

    w.key("flightrec");
    w.beginObject();
    w.member("depth", rec.params().depth);
    w.member("live", std::uint64_t(rec.liveCount()));
    w.member("retired", rec.retiredRecords.value());
    w.member("dropped_records", rec.droppedRecords.value());
    w.member("dropped_wasted_ticks",
             std::uint64_t(rec.droppedWasted()));
    w.endObject();

    w.endObject();
    os << "\n";
}

void
printPostmortem(std::ostream &os, const FlightRecorder &rec,
                const PostmortemReport &r)
{
    char buf[256];

    std::snprintf(buf, sizeof(buf),
                  "=== ptm post-mortem: %s @ tick %" PRIu64
                  " (tx %" PRIu64 ") ===",
                  postmortemTriggerName(r.trigger), std::uint64_t(r.tick),
                  std::uint64_t(r.subject));
    os << buf << "\n";
    os << "  " << r.detail << "\n";
    if (!rec.repro().empty())
        os << "  repro: " << rec.repro() << "\n";

    std::snprintf(buf, sizeof(buf),
                  "  abort causality (%zu nodes, %zu edges, depth %u):",
                  r.nodes.size(), r.edges.size(), r.chainDepth);
    os << buf << "\n";
    for (const PostmortemNode &n : r.nodes) {
        if (n.tick == 0) {
            std::snprintf(buf, sizeof(buf),
                          "    gen %u: tx %" PRIu64
                          " no recorded abort (terminal)",
                          n.generation, std::uint64_t(n.tx));
            os << buf << "\n";
            continue;
        }
        std::snprintf(buf, sizeof(buf),
                      "    gen %u: tx %" PRIu64 " aborted @ %" PRIu64
                      " attempt %u cause %s",
                      n.generation, std::uint64_t(n.tx),
                      std::uint64_t(n.tick), n.attempt,
                      heatAbortCauseName(n.cause));
        os << buf;
        if (n.where != invalidAddr) {
            std::snprintf(buf, sizeof(buf), " page %" PRIu64,
                          std::uint64_t(pageOf(n.where)));
            os << buf;
        }
        if (n.winner != invalidTxId) {
            std::snprintf(buf, sizeof(buf), " winner tx %" PRIu64,
                          std::uint64_t(n.winner));
            os << buf;
        }
        os << "\n";
    }

    os << "  records:\n";
    for (const FlightRecord &fr : r.records) {
        std::snprintf(buf, sizeof(buf),
                      "    tx %" PRIu64 ": thread %" PRIu64
                      " attempts %u aborts %u kills %" PRIu64
                      " lost %" PRIu64 " wasted %" PRIu64
                      " spt-miss %" PRIu64
                      " tav-miss %" PRIu64 " shadow %" PRIu64 "%s",
                      std::uint64_t(fr.id), std::uint64_t(fr.thread),
                      fr.attempts, fr.abortCount, fr.kills,
                      std::uint64_t(fr.lostTicks),
                      std::uint64_t(fr.wastedTicks), fr.sptMisses,
                      fr.tavMisses, fr.shadowAllocs,
                      fr.committed ? " (committed)" : "");
        os << buf << "\n";
    }
    os << "=== end post-mortem ===\n";
}

} // namespace ptm
