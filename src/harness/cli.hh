/**
 * @file
 * Declarative command-line option tables, shared by ptm_sim and the
 * bench_* binaries.
 *
 * A front end declares its options once — name, value placeholder,
 * help text, and a handler (or a typed destination) — and OptionTable
 * handles parsing, `--opt value` / `--opt=value` forms, a generated
 * `--help`, and unknown-option / missing-value diagnostics:
 *
 * @code
 *     OptionTable opts("ptm_sim", "Run one workload on one system.");
 *     opts.optionString("workload", "NAME", "fft | lu | ...", workload);
 *     opts.flag("swap", "enable OS swapping",
 *               [&] { prm.swapEnabled = true; });
 *     opts.option("system", "KIND", "serial | locks | ...",
 *                 [&](const std::string &v) {
 *                     return parseTmKind(v, prm.tmKind);
 *                 });
 *     switch (opts.parse(argc, argv)) {
 *       case CliStatus::Ok: break;
 *       case CliStatus::Exit: return 0;   // --help
 *       case CliStatus::Error: return 2;  // message already printed
 *     }
 * @endcode
 */

#ifndef PTM_HARNESS_CLI_HH
#define PTM_HARNESS_CLI_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/profile.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "workloads/workload.hh"

namespace ptm
{

/** Outcome of OptionTable::parse. */
enum class CliStatus
{
    Ok,    //!< all options consumed; proceed
    Exit,  //!< informational option handled (--help); exit 0
    Error, //!< bad usage; diagnostic already printed; exit non-zero
};

class OptionTable
{
  public:
    /**
     * @param prog     program name for usage/help output
     * @param summary  one-line description printed atop --help
     */
    OptionTable(std::string prog, std::string summary);

    /**
     * A valueless option. @p on is invoked when the flag is seen.
     * Spelled `--name` on the command line.
     */
    void flag(const std::string &name, const std::string &help,
              std::function<void()> on);

    /**
     * A flag that requests exit after its action (e.g. --list).
     * parse() returns CliStatus::Exit once all arguments are consumed.
     */
    void exitFlag(const std::string &name, const std::string &help,
                  std::function<void()> on);

    /**
     * An option taking one value (`--name V` or `--name=V`).
     * @p on returns false to reject the value (a diagnostic naming the
     * option is then printed).
     */
    void option(const std::string &name, const std::string &metavar,
                const std::string &help,
                std::function<bool(const std::string &)> on);

    /**
     * A flag that also accepts an optional inline value: `--name`
     * invokes @p onFlag, `--name=V` invokes @p onValue. The separate
     * `--name V` form is NOT recognized — the next argument is never
     * consumed — so the bare flag stays unambiguous.
     */
    void flagOrValue(const std::string &name, const std::string &metavar,
                     const std::string &help, std::function<void()> onFlag,
                     std::function<bool(const std::string &)> onValue);

    /** @name Typed conveniences storing straight into a variable */
    /// @{
    void optionString(const std::string &name, const std::string &metavar,
                      const std::string &help, std::string &dest);
    void optionU64(const std::string &name, const std::string &metavar,
                   const std::string &help, std::uint64_t &dest);
    void optionUnsigned(const std::string &name,
                        const std::string &metavar,
                        const std::string &help, unsigned &dest);
    void optionInt(const std::string &name, const std::string &metavar,
                   const std::string &help, int &dest);
    /// @}

    /**
     * Parse @p argv. `--help` / `-h` print the generated help and
     * yield CliStatus::Exit. Unknown options, missing values, and
     * handler-rejected values print a diagnostic to stderr and yield
     * CliStatus::Error.
     */
    CliStatus parse(int argc, char **argv) const;

    /** Print the generated help text to stdout. */
    void printHelp() const;

  private:
    struct Opt
    {
        std::string name;
        std::string metavar; //!< empty for flags
        std::string help;
        bool exits = false;
        std::function<void()> onFlag;
        std::function<bool(const std::string &)> onValue;
    };

    const Opt *find(const std::string &name) const;

    std::string prog_;
    std::string summary_;
    std::vector<Opt> opts_;
};

/**
 * Register the shared event-tracing options (--trace, --trace-format,
 * --trace-categories, --trace-buffer-events, --trace-sample-interval,
 * --watch-addr) storing into @p dest. Used by ptm_sim and every
 * bench_* front end so the tracing surface is identical everywhere.
 */
void addTraceOptions(OptionTable &opts, TraceParams &dest);

/**
 * Register the shared profiling options (--profile, --host-profile,
 * --host-profile-interval) storing into @p dest. Used by ptm_sim and
 * every bench_* front end so the profiling surface is identical
 * everywhere. --host-profile implies --profile.
 */
void addProfileOptions(OptionTable &opts, ProfileParams &dest);

/**
 * The robustness-option bundle of a front end: fault injection,
 * invariant auditing, and contention knobs, collected once and applied
 * to every SystemParams the front end builds.
 */
struct RobustnessParams
{
    ChaosParams chaos;
    AuditParams audit;
    ContentionParams contention;

    void
    applyTo(SystemParams &prm) const
    {
        prm.chaos = chaos;
        prm.audit = audit;
        prm.contention = contention;
    }
};

/**
 * The observability-option bundle of a front end: time-series
 * telemetry, the per-page contention heatmap, and the transaction
 * flight recorder, collected once and applied to every SystemParams
 * the front end builds. The forensics member is filled by the
 * separate addForensicsOptions (front ends register both bundles).
 */
struct ObservabilityParams
{
    TimeseriesParams timeseries;
    HeatmapParams heatmap;
    ForensicsParams forensics;

    void
    applyTo(SystemParams &prm) const
    {
        prm.timeseries = timeseries;
        prm.heatmap = heatmap;
        prm.forensics = forensics;
    }
};

/**
 * The machine-scaling option bundle of a front end: interconnect
 * banking, host-loop fast-forward, and host-throughput metric
 * emission, collected once and applied to every SystemParams the
 * front end builds.
 */
struct MachineParams
{
    /** Interleaved interconnect banks (power of two; 1 = paper bus). */
    unsigned memBanks = 1;
    /** Max ops per direct-execution fast-forward batch (0 = off). */
    unsigned fastForwardOps = 0;
    /**
     * Emit host-derived throughput (sim_events_per_sec) in bench rows.
     * Off by default so checked-in baselines stay machine-independent.
     */
    bool hostMetrics = false;

    void
    applyTo(SystemParams &prm) const
    {
        prm.memBanks = memBanks;
        prm.fastForwardOps = fastForwardOps;
    }
};

/**
 * Register the shared machine-scaling options storing into @p dest:
 *
 *  - `--mem-banks N` splits the interconnect into N address-interleaved
 *    banks (power of two; default 1 reproduces the paper's single bus
 *    bit-exactly);
 *  - `--fast-forward[=K]` batches up to K non-transactional ops per
 *    host event in conflict-free stretches (bare flag: K=32; simulated
 *    results are unchanged, host throughput rises);
 *  - `--host-metrics` adds host-derived throughput to bench rows.
 *
 * Used by ptm_sim and every bench_* front end so the scaling surface
 * is identical everywhere.
 */
void addMachineOptions(OptionTable &opts, MachineParams &dest);

/**
 * Register the shared observability options storing into @p dest:
 *
 *  - `--live-stats[=TICKS]` streams ptm-timeseries-v1 interval
 *    records to stderr while the run is in flight, optionally setting
 *    the sampling period;
 *  - `--timeseries FILE` streams the same records to a JSONL file
 *    ('-' for stderr); `--timeseries-interval TICKS` sets the period;
 *  - `--heatmap` / `--heatmap-k N` enable and size the per-page
 *    contention heatmap (`hot_pages` section of the stats JSON).
 *
 * Streaming options imply --heatmap so live records carry hot_pages.
 * Used by ptm_sim and every bench_* front end so the observability
 * surface is identical everywhere.
 */
void addObservabilityOptions(OptionTable &opts,
                             ObservabilityParams &dest);

/**
 * Register the shared forensics options storing into @p dest:
 *
 *  - `--flightrec-depth N` sizes the retired-transaction ring of the
 *    always-on flight recorder (default 256; 0 removes the recorder
 *    and its hooks entirely);
 *  - `--postmortem FILE` arms post-mortem capture and writes each
 *    ptm-postmortem-v1 JSON document to FILE ('-' for stderr);
 *  - `--postmortem-on-abort N` arms capture and additionally triggers
 *    a post-mortem when any transaction reaches N aborts.
 *
 * Without either option the recorder still runs (cheap, always on)
 * but capture stays disarmed: starvation-watchdog trips, token
 * grants, auditor violations and chaos injections produce post-mortems
 * only on armed runs. An armed run always prints the human-readable
 * block to stderr; the JSON dump additionally needs a FILE. Used by
 * ptm_sim and every bench_* front end so the forensics surface is
 * identical everywhere.
 */
void addForensicsOptions(OptionTable &opts, ForensicsParams &dest);

/**
 * Register the shared robustness options storing into @p dest:
 *
 *  - fault injection: --chaos, --chaos-seed, --chaos-plan,
 *    --chaos-interval, --chaos-squeeze, --chaos-cleanup-delay (the
 *    value-taking chaos options imply --chaos);
 *  - invariant auditing: --audit, --audit-interval (which implies
 *    --audit);
 *  - contention robustness: --backoff, --watchdog, --retry-budget.
 *
 * Used by ptm_sim and every bench_* front end so the robustness
 * surface is identical everywhere.
 */
void addRobustnessOptions(OptionTable &opts, RobustnessParams &dest);

/**
 * Register the shared persistence options storing into @p dest:
 *
 *  - `--durability MODE` selects the commit-durability policy: `off`
 *    (volatile TM, bit-identical to builds without the flag) or `wal`
 *    (every commit appends a redo record to a modeled write-ahead log
 *    and stalls for the ordered flush);
 *  - `--wal-file FILE` serializes the surviving persistent image
 *    (workload checkpoint + durable log prefix) at end of run, the
 *    input of `ptm_sim --recover`;
 *  - `--crash-at-tick TICK` cuts the run at TICK with no drain or
 *    cleanup, leaving torn log tails (the chaos `crash` plan bit draws
 *    a seeded random tick instead);
 *  - `--wal-flush-latency TICKS` / `--wal-bytes-per-cycle N` set the
 *    ordered-flush base cost and log-device bandwidth.
 *
 * None of the value options imply `--durability wal`: validateParams
 * rejects a dump path or crash tick on a volatile run so a sweep
 * script cannot silently produce nothing. Used by ptm_sim and every
 * bench_* front end so the durability surface is identical everywhere.
 */
void addPersistOptions(OptionTable &opts, PersistParams &dest);

/**
 * One machine-readable output sink of a front end, for collision
 * checking. @ref path uses the post-parse spelling: "" when the sink
 * is unused, "-" for stdout (--stats-json / --trace / --json), the
 * literal "stderr" for streams that default there (--timeseries,
 * --postmortem), anything else a file path.
 */
struct OutputSink
{
    std::string flag; //!< option spelling for diagnostics ("--trace")
    std::string path; //!< "", "-", "stderr", or a file path
};

/**
 * Refuse colliding output sinks: at most one sink may own stdout, and
 * no two sinks may name the same file (paths are compared as strings —
 * the streams are written at different times, so a shared path would
 * silently clobber the earlier output). Any number of sinks may share
 * stderr: those streams are line-oriented and interleave safely.
 *
 * @return true when all sinks are distinct; otherwise prints one
 *         "PROG: FLAG1 and FLAG2 cannot both write to ..." diagnostic
 *         to stderr and returns false (callers exit 2 — bad usage).
 */
bool checkOutputSinks(const char *prog,
                      const std::vector<OutputSink> &sinks);

/**
 * Register the shared workload-plugin options storing into @p dest:
 *
 *  - `--wl-opt KEY=VALUE` (repeatable; later duplicates win) collects
 *    raw per-workload options, validated against the selected
 *    workload's option table at resolve time;
 *  - `--list-workloads` prints every registered workload with its
 *    option table and exits.
 *
 * Used by ptm_sim and the bench_* front ends so the workload-plugin
 * surface is identical everywhere.
 */
void addWorkloadOptions(OptionTable &opts, WorkloadOptList &dest);

/**
 * Print every registered workload — name, description, and option
 * table with defaults — to stdout (the --list-workloads body).
 */
void printWorkloadList();

/**
 * The reproducer argument string for @p prm ("--seed N --chaos
 * --chaos-seed M --chaos-plan ... --audit"): every robustness-relevant
 * option needed to replay a failing chaos run, including the
 * durability policy and crash cut when the persistence domain is on.
 * Printed alongside audit violations and workload-verification
 * failures.
 */
std::string chaosReproArgs(const SystemParams &prm);

/**
 * Print every statistic registered in @p reg as
 * "group.stat  kind  description" lines — the body of the shared
 * --list-stats flag. Listing reflects the *configured* system: TM
 * backends register different groups ("vts" vs "vtm").
 */
void printStatList(const StatRegistry &reg);

} // namespace ptm

#endif // PTM_HARNESS_CLI_HH
