/**
 * @file
 * Experiment runner: builds a (system-kind × workload) configuration,
 * runs it to completion, verifies the functional result, and returns
 * the statistics — the building block of every reproduced table and
 * figure.
 */

#ifndef PTM_HARNESS_EXPERIMENT_HH
#define PTM_HARNESS_EXPERIMENT_HH

#include <string>

#include "harness/system.hh"
#include "harness/trace_io.hh"
#include "workloads/workload.hh"

namespace ptm
{

/** Result of one experiment run. */
struct ExperimentResult
{
    /**
     * By-value capture of every registered statistic, addressed by
     * "group.stat" paths (e.g. "tx.commits", "vts.shadow_allocs").
     * This is what the front ends and the JSON emitter consume.
     */
    StatSnapshot snapshot;
    /** Legacy flat statistics view (tests and examples only). */
    RunStats stats;
    /** The workload's functional result matched the host reference. */
    bool verified = false;
    Tick cycles = 0;
    /**
     * The run's event-trace buffer (empty unless params.trace.path was
     * set). Front ends collect these and write them with writeTrace().
     */
    TraceCapture trace;
    /**
     * Cycle-accounting capture (enabled == false unless
     * params.profile.enabled): per-core tick buckets summing to
     * elapsed, plus the supervisor overlay charges.
     */
    ProfSnapshot profile;
    /** Host-side event-loop profile (params.profile.host). */
    HostProfile host;
    /**
     * Invariant violations the auditor detected (empty unless
     * params.audit.enabled on a PTM system). A clean chaos run is one
     * with verified == true AND auditViolations.empty().
     */
    std::vector<AuditViolation> auditViolations;
    /** Full audit passes executed (params.audit.enabled). */
    std::uint64_t auditChecks = 0;
    /**
     * The run's fully resolved workload options (defaults filled in),
     * in declaration order — what the manifest records.
     */
    WorkloadOptList resolvedOptions;
    /**
     * Per-page contention attribution (enabled == false unless
     * params.heatmap.enabled): the "hot_pages" JSON section.
     */
    HeatmapSnapshot heatmap;
    /**
     * The run's in-memory time series (enabled == false unless
     * params.timeseries.capture): per-interval counter deltas, the
     * source of bench_kv's steady-state throughput.
     */
    TimeseriesCapture timeseries;
    /**
     * Flight-recorder capture (enabled == false only when
     * --flightrec-depth 0 removed the recorder): record/drop totals,
     * wasted-tick reconciliation inputs, killer rankings, and any
     * post-mortem reports captured on an armed run — the "forensics"
     * JSON section.
     */
    ForensicsSnapshot forensics;
    /**
     * The run stopped at an injected crash cut (--crash-at-tick or the
     * chaos crash fault; requires --durability wal). A crashed run is
     * never verified in-process — recovery replays the dump instead.
     */
    bool crashed = false;
    /** The crash-cut tick (0 when the run completed). */
    Tick crashTick = 0;
    /** Durable log-byte prefix at the cut (full log when completed). */
    std::uint64_t walDurableBytes = 0;
    /**
     * Host wall-clock seconds spent inside the event loop (the
     * sys.run() span only — workload build and verification excluded)
     * and the events it executed. sim_events_per_sec =
     * eventsExecuted / wallSeconds is the host-throughput metric the
     * scaling benches record (machine-dependent; never compared
     * across machines).
     */
    double wallSeconds = 0;
    double eventsExecuted = 0;
};

/**
 * Run @p workload_name on a system of kind @p params.tmKind (the
 * synchronization mode is derived from it: Serial -> 1 thread plain,
 * Locks -> spinlocks, TM kinds -> transactions).
 *
 * @p scale is injected as the workload's "scale" option when it
 * declares one; @p wl_opts are further key=value options resolved
 * against the workload's option table (fatal when unknown/invalid —
 * front ends wanting a recoverable diagnostic use WorkloadRegistry).
 */
ExperimentResult runWorkload(const std::string &workload_name,
                             SystemParams params, int scale = 1,
                             unsigned threads = 4,
                             const WorkloadOptList &wl_opts = {});

/** Percent speedup of @p par over @p serial: (serial/par - 1) * 100. */
double speedupPct(Tick serial, Tick par);

/**
 * Print @p r's audit violations to stderr as machine-greppable
 * "audit-violation: CHECK @TICK (WHERE): DETAIL" lines followed by one
 * "repro:" line rebuilding the failing invocation from @p params
 * (tools/chaos_sweep.py parses both).
 *
 * @param tool      front-end name for the repro line
 * @param workload  workload argument of the run ("" if not applicable)
 * @return the number of violations printed
 */
std::size_t reportAuditViolations(const char *tool,
                                  const std::string &workload,
                                  const SystemParams &params,
                                  const ExperimentResult &r);

} // namespace ptm

#endif // PTM_HARNESS_EXPERIMENT_HH
