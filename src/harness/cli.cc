/**
 * @file
 * Option-table parsing implementation.
 */

#include "harness/cli.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace ptm
{

OptionTable::OptionTable(std::string prog, std::string summary)
    : prog_(std::move(prog)), summary_(std::move(summary))
{
}

void
OptionTable::flag(const std::string &name, const std::string &help,
                  std::function<void()> on)
{
    Opt o;
    o.name = name;
    o.help = help;
    o.onFlag = std::move(on);
    opts_.push_back(std::move(o));
}

void
OptionTable::exitFlag(const std::string &name, const std::string &help,
                      std::function<void()> on)
{
    Opt o;
    o.name = name;
    o.help = help;
    o.exits = true;
    o.onFlag = std::move(on);
    opts_.push_back(std::move(o));
}

void
OptionTable::option(const std::string &name, const std::string &metavar,
                    const std::string &help,
                    std::function<bool(const std::string &)> on)
{
    Opt o;
    o.name = name;
    o.metavar = metavar;
    o.help = help;
    o.onValue = std::move(on);
    opts_.push_back(std::move(o));
}

void
OptionTable::flagOrValue(const std::string &name,
                         const std::string &metavar,
                         const std::string &help,
                         std::function<void()> onFlag,
                         std::function<bool(const std::string &)> onValue)
{
    Opt o;
    o.name = name;
    o.metavar = metavar;
    o.help = help;
    o.onFlag = std::move(onFlag);
    o.onValue = std::move(onValue);
    opts_.push_back(std::move(o));
}

namespace
{

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        std::uint64_t d = std::uint64_t(c - '0');
        if (v > (UINT64_MAX - d) / 10)
            return false;
        v = v * 10 + d;
    }
    out = v;
    return true;
}

/** Decimal or 0x-prefixed hexadecimal address. */
bool
parseAddr(const std::string &s, std::uint64_t &out)
{
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
        std::uint64_t v = 0;
        for (std::size_t i = 2; i < s.size(); ++i) {
            char c = s[i];
            unsigned d;
            if (c >= '0' && c <= '9')
                d = unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                d = unsigned(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                d = unsigned(c - 'A') + 10;
            else
                return false;
            if (v > (UINT64_MAX - d) / 16)
                return false;
            v = v * 16 + d;
        }
        out = v;
        return true;
    }
    return parseU64(s, out);
}

} // namespace

void
OptionTable::optionString(const std::string &name,
                          const std::string &metavar,
                          const std::string &help, std::string &dest)
{
    option(name, metavar, help, [&dest](const std::string &v) {
        dest = v;
        return true;
    });
}

void
OptionTable::optionU64(const std::string &name,
                       const std::string &metavar,
                       const std::string &help, std::uint64_t &dest)
{
    option(name, metavar, help, [&dest](const std::string &v) {
        return parseU64(v, dest);
    });
}

void
OptionTable::optionUnsigned(const std::string &name,
                            const std::string &metavar,
                            const std::string &help, unsigned &dest)
{
    option(name, metavar, help, [&dest](const std::string &v) {
        std::uint64_t u;
        if (!parseU64(v, u) || u > 0xFFFFFFFFull)
            return false;
        dest = unsigned(u);
        return true;
    });
}

void
OptionTable::optionInt(const std::string &name,
                       const std::string &metavar,
                       const std::string &help, int &dest)
{
    option(name, metavar, help, [&dest](const std::string &v) {
        bool neg = !v.empty() && v[0] == '-';
        std::uint64_t u;
        if (!parseU64(neg ? v.substr(1) : v, u) || u > 0x7FFFFFFFull)
            return false;
        dest = neg ? -int(u) : int(u);
        return true;
    });
}

const OptionTable::Opt *
OptionTable::find(const std::string &name) const
{
    for (const auto &o : opts_)
        if (o.name == name)
            return &o;
    return nullptr;
}

void
OptionTable::printHelp() const
{
    std::printf("usage: %s [options]\n", prog_.c_str());
    if (!summary_.empty())
        std::printf("%s\n", summary_.c_str());
    std::printf("\noptions:\n");
    std::size_t width = 0;
    auto render = [](const Opt &o) {
        std::string left = "--" + o.name;
        if (!o.metavar.empty())
            left += (o.onFlag && o.onValue) ? "[=" + o.metavar + "]"
                                            : " " + o.metavar;
        return left;
    };
    for (const auto &o : opts_) {
        std::size_t w = render(o).size();
        if (w > width)
            width = w;
    }
    for (const auto &o : opts_)
        std::printf("  %-*s  %s\n", int(width), render(o).c_str(),
                    o.help.c_str());
    std::printf("  %-*s  %s\n", int(width), "--help",
                "show this help and exit");
}

void
addTraceOptions(OptionTable &opts, TraceParams &dest)
{
    opts.optionString("trace", "FILE",
                      "write an event trace to FILE ('-' for stdout)",
                      dest.path);
    opts.option("trace-format", "FMT",
                "trace format: jsonl (ptm-trace-v1) | chrome "
                "(Perfetto)",
                [&dest](const std::string &v) {
                    return parseTraceFormat(v, dest.format);
                });
    opts.option("trace-categories", "LIST",
                "comma-separated categories (tx,conflict,meta,page,"
                "cache,os,watch,sample) or 'all'",
                [&dest](const std::string &v) {
                    return parseTraceCategories(v, dest.categories);
                });
    opts.option("trace-buffer-events", "N",
                "per-run trace ring capacity in events (keeps the "
                "newest N)",
                [&dest](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n) || n == 0)
                        return false;
                    dest.bufferEvents = std::size_t(n);
                    return true;
                });
    opts.option("trace-sample-interval", "TICKS",
                "stat-sampler period in ticks (0 disables sampling)",
                [&dest](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n))
                        return false;
                    dest.sampleInterval = Tick(n);
                    return true;
                });
    opts.option("watch-addr", "ADDR",
                "emit watchpoint events for this physical word "
                "address (decimal or 0x hex)",
                [&dest](const std::string &v) {
                    std::uint64_t a;
                    if (!parseAddr(v, a))
                        return false;
                    dest.watchAddr = Addr(a);
                    return true;
                });
}

void
addProfileOptions(OptionTable &opts, ProfileParams &dest)
{
    opts.flag("profile",
              "enable cycle accounting; prints the per-core tick "
              "decomposition and adds a 'profile' JSON section",
              [&dest] { dest.enabled = true; });
    opts.flag("host-profile",
              "also profile the host event loop (per-site event "
              "counts and sampled wall time); implies --profile",
              [&dest] {
                  dest.enabled = true;
                  dest.host = true;
              });
    opts.option("host-profile-interval", "N",
                "measure host time of every N-th event (default 32)",
                [&dest](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n) || n == 0 || n > 0xFFFFFFFFull)
                        return false;
                    dest.hostSampleInterval = unsigned(n);
                    return true;
                });
}

void
addMachineOptions(OptionTable &opts, MachineParams &dest)
{
    opts.option("mem-banks", "N",
                "address-interleaved interconnect banks (power of "
                "two, max 256; default 1 = the paper's single bus)",
                [&dest](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n) || n == 0 || n > 256 ||
                        (n & (n - 1)) != 0)
                        return false;
                    dest.memBanks = unsigned(n);
                    return true;
                });
    opts.flagOrValue(
        "fast-forward", "K",
        "batch up to K non-transactional ops per host event in "
        "conflict-free stretches (bare flag: K=32; simulated "
        "results unchanged)",
        [&dest] { dest.fastForwardOps = 32; },
        [&dest](const std::string &v) {
            std::uint64_t n;
            if (!parseU64(v, n) || n == 0 || n > 0xFFFFFFFFull)
                return false;
            dest.fastForwardOps = unsigned(n);
            return true;
        });
    opts.flag("host-metrics",
              "emit host-derived throughput (sim_events_per_sec) in "
              "bench result rows (machine-dependent; off in "
              "checked-in baselines)",
              [&dest] { dest.hostMetrics = true; });
}

void
addRobustnessOptions(OptionTable &opts, RobustnessParams &prm)
{
    opts.flag("chaos",
              "enable deterministic fault injection (seeded; see "
              "--chaos-seed / --chaos-plan)",
              [&prm] { prm.chaos.enabled = true; });
    opts.option("chaos-seed", "N",
                "fault-injection RNG seed (default 1); implies --chaos",
                [&prm](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n))
                        return false;
                    prm.chaos.enabled = true;
                    prm.chaos.seed = n;
                    return true;
                });
    opts.option("chaos-plan", "LIST",
                "comma-separated fault kinds (abort,squeeze,flush,"
                "swap,preempt,delay) or 'all'; implies --chaos",
                [&prm](const std::string &v) {
                    if (!parseChaosPlan(v, prm.chaos.plan))
                        return false;
                    prm.chaos.enabled = true;
                    return true;
                });
    opts.option("chaos-interval", "TICKS",
                "ticks between injected faults (default 50000); "
                "implies --chaos",
                [&prm](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n) || n == 0)
                        return false;
                    prm.chaos.enabled = true;
                    prm.chaos.interval = Tick(n);
                    return true;
                });
    opts.option("chaos-squeeze", "N",
                "SPT/TAV cache capacity during a squeeze (default 4)",
                [&prm](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n) || n == 0 || n > 0xFFFFFFFFull)
                        return false;
                    prm.chaos.squeezeEntries = unsigned(n);
                    return true;
                });
    opts.option("chaos-cleanup-delay", "TICKS",
                "max extra delay before a commit/abort cleanup walk "
                "starts (default 2000)",
                [&prm](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n) || n == 0)
                        return false;
                    prm.chaos.cleanupDelay = Tick(n);
                    return true;
                });

    opts.flag("audit",
              "walk and cross-check the PTM structures (SPT/SIT/TAV/"
              "selection) at boundaries and intervals; PTM systems only",
              [&prm] { prm.audit.enabled = true; });
    opts.option("audit-interval", "TICKS",
                "ticks between periodic audits (default 100000, 0 = "
                "boundaries only); implies --audit",
                [&prm](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n))
                        return false;
                    prm.audit.enabled = true;
                    prm.audit.interval = Tick(n);
                    return true;
                });

    opts.flag("backoff",
              "randomize the exponential abort-restart backoff "
              "(seeded per core; deterministic)",
              [&prm] { prm.contention.randomBackoff = true; });
    opts.option("watchdog", "N",
                "starvation-watchdog threshold in consecutive aborts "
                "(default 16, 0 disables)",
                [&prm](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n) || n > 0xFFFFFFFFull)
                        return false;
                    prm.contention.watchdogThreshold = unsigned(n);
                    return true;
                });
    opts.option("retry-budget", "N",
                "consecutive aborts before a transaction claims the "
                "serialized starvation token (0 disables)",
                [&prm](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n) || n > 0xFFFFFFFFull)
                        return false;
                    prm.contention.retryBudget = unsigned(n);
                    return true;
                });
}

void
addForensicsOptions(OptionTable &opts, ForensicsParams &prm)
{
    opts.option("flightrec-depth", "N",
                "retired-transaction flight-recorder ring capacity "
                "(default 256, 0 removes the recorder)",
                [&prm](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n) || n > 0xFFFFFFFFull)
                        return false;
                    prm.depth = unsigned(n);
                    return true;
                });
    opts.option("postmortem", "FILE",
                "arm abort post-mortem capture and write each "
                "ptm-postmortem-v1 JSON document to FILE ('-' for "
                "stderr)",
                [&prm](const std::string &v) {
                    if (v.empty())
                        return false;
                    prm.postmortemPath = v == "-" ? "stderr" : v;
                    return true;
                });
    opts.option("postmortem-on-abort", "N",
                "arm capture and trigger a post-mortem when any "
                "transaction reaches N aborts (0 disables)",
                [&prm](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n) || n > 0xFFFFFFFFull)
                        return false;
                    prm.onAbortThreshold = unsigned(n);
                    return true;
                });
}

void
addObservabilityOptions(OptionTable &opts, ObservabilityParams &prm)
{
    opts.flagOrValue(
        "live-stats", "TICKS",
        "stream ptm-timeseries-v1 interval records to stderr while "
        "the run is in flight, optionally setting the sampling period "
        "(default 100000 ticks); implies --heatmap",
        [&prm] {
            if (prm.timeseries.path.empty())
                prm.timeseries.path = "stderr";
            prm.heatmap.enabled = true;
        },
        [&prm](const std::string &v) {
            std::uint64_t n;
            if (!parseU64(v, n) || n == 0)
                return false;
            if (prm.timeseries.path.empty())
                prm.timeseries.path = "stderr";
            prm.timeseries.interval = Tick(n);
            prm.heatmap.enabled = true;
            return true;
        });
    opts.option("timeseries", "FILE",
                "write ptm-timeseries-v1 JSONL records to FILE ('-' "
                "for stderr); implies --heatmap",
                [&prm](const std::string &v) {
                    if (v.empty())
                        return false;
                    prm.timeseries.path = v == "-" ? "stderr" : v;
                    prm.heatmap.enabled = true;
                    return true;
                });
    opts.option("timeseries-interval", "TICKS",
                "time-series sampling period in simulated ticks "
                "(default 100000)",
                [&prm](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n) || n == 0)
                        return false;
                    prm.timeseries.interval = Tick(n);
                    return true;
                });
    opts.flag("heatmap",
              "attribute conflicts, aborts and supervisor misses to "
              "the hottest pages (bounded top-K counters); adds a "
              "'hot_pages' JSON section",
              [&prm] { prm.heatmap.enabled = true; });
    opts.option("heatmap-k", "N",
                "keys tracked per heatmap metric (default 64); "
                "implies --heatmap",
                [&prm](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n) || n == 0 || n > 0xFFFFFFFFull)
                        return false;
                    prm.heatmap.enabled = true;
                    prm.heatmap.topK = unsigned(n);
                    return true;
                });
}

void
addPersistOptions(OptionTable &opts, PersistParams &dest)
{
    opts.option("durability", "MODE",
                "commit durability: off (volatile TM) | wal (redo-log "
                "every commit, stall for the ordered flush)",
                [&dest](const std::string &v) {
                    return parseDurability(v, dest.policy);
                });
    opts.option("wal-file", "FILE",
                "serialize the surviving persistent image (checkpoint "
                "+ durable log prefix) to FILE at end of run; the "
                "input of ptm_sim --recover",
                [&dest](const std::string &v) {
                    if (v.empty() || v == "-")
                        return false;
                    dest.walPath = v;
                    return true;
                });
    opts.option("crash-at-tick", "TICK",
                "cut the run at TICK with no drain or cleanup "
                "(0 = none); torn log tails survive into the dump",
                [&dest](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n))
                        return false;
                    dest.crashAtTick = Tick(n);
                    return true;
                });
    opts.option("wal-flush-latency", "TICKS",
                "ordered-flush base latency charged per durable "
                "commit (default 300)",
                [&dest](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n))
                        return false;
                    dest.flushLatency = Tick(n);
                    return true;
                });
    opts.option("wal-bytes-per-cycle", "N",
                "log-device write bandwidth in bytes per cycle "
                "(default 16)",
                [&dest](const std::string &v) {
                    std::uint64_t n;
                    if (!parseU64(v, n) || n == 0)
                        return false;
                    dest.logBytesPerCycle = n;
                    return true;
                });
}

bool
checkOutputSinks(const char *prog,
                 const std::vector<OutputSink> &sinks)
{
    for (std::size_t i = 0; i < sinks.size(); ++i) {
        const OutputSink &a = sinks[i];
        if (a.path.empty() || a.path == "stderr")
            continue;
        for (std::size_t j = i + 1; j < sinks.size(); ++j) {
            const OutputSink &b = sinks[j];
            if (a.path != b.path)
                continue;
            std::fprintf(stderr,
                         "%s: %s and %s cannot both write to %s\n",
                         prog, a.flag.c_str(), b.flag.c_str(),
                         a.path == "-" ? "stdout" : "the same file");
            return false;
        }
    }
    return true;
}

void
addWorkloadOptions(OptionTable &opts, WorkloadOptList &dest)
{
    opts.option("wl-opt", "KEY=VALUE",
                "per-workload option, repeatable "
                "(see --list-workloads)",
                [&dest](const std::string &v) {
                    std::size_t eq = v.find('=');
                    if (eq == std::string::npos || eq == 0)
                        return false;
                    dest.emplace_back(v.substr(0, eq),
                                      v.substr(eq + 1));
                    return true;
                });
    opts.exitFlag("list-workloads",
                  "list the registered workloads and their options",
                  [] { printWorkloadList(); });
}

void
printWorkloadList()
{
    for (const WorkloadInfo *info :
         WorkloadRegistry::instance().all()) {
        std::printf("%s — %s\n", info->name.c_str(),
                    info->description.c_str());
        std::size_t width = 0;
        for (const auto &o : info->options)
            width = std::max(width,
                             o.name.size() + 1 + o.defaultValue.size());
        for (const auto &o : info->options) {
            std::string kv = o.name + "=" + o.defaultValue;
            std::printf("    %-*s  %s\n", int(width), kv.c_str(),
                        o.help.c_str());
        }
    }
}

std::string
chaosReproArgs(const SystemParams &prm)
{
    using ull = unsigned long long;
    std::string s = strprintf("--seed %llu", (ull)prm.seed);
    if (prm.chaos.enabled)
        s += strprintf(" --chaos --chaos-seed %llu --chaos-plan %s "
                       "--chaos-interval %llu",
                       (ull)prm.chaos.seed,
                       chaosPlanString(prm.chaos.plan).c_str(),
                       (ull)prm.chaos.interval);
    if (prm.audit.enabled)
        s += strprintf(" --audit --audit-interval %llu",
                       (ull)prm.audit.interval);
    if (prm.persist.enabled()) {
        s += strprintf(" --durability %s --wal-flush-latency %llu "
                       "--wal-bytes-per-cycle %llu",
                       durabilityName(prm.persist.policy),
                       (ull)prm.persist.flushLatency,
                       (ull)prm.persist.logBytesPerCycle);
        // An explicit cut replays exactly; a chaos-drawn cut is
        // re-derived from the chaos seed already echoed above.
        if (prm.persist.crashAtTick)
            s += strprintf(" --crash-at-tick %llu",
                           (ull)prm.persist.crashAtTick);
    }
    if (prm.contention.randomBackoff)
        s += " --backoff";
    if (prm.contention.retryBudget)
        s += strprintf(" --retry-budget %u", prm.contention.retryBudget);
    // Re-arm post-mortem capture on replay (the dump path itself is
    // environment-specific; point the replay at stderr).
    if (prm.forensics.onAbortThreshold)
        s += strprintf(" --postmortem-on-abort %u",
                       prm.forensics.onAbortThreshold);
    else if (!prm.forensics.postmortemPath.empty())
        s += " --postmortem -";
    return s;
}

void
printStatList(const StatRegistry &reg)
{
    std::size_t width = 0;
    for (const auto &g : reg.groups())
        for (const auto &s : g->stats()) {
            std::size_t w = g->name().size() + 1 + s.name.size();
            if (w > width)
                width = w;
        }
    for (const auto &g : reg.groups())
        for (const auto &s : g->stats()) {
            std::string path = g->name() + "." + s.name;
            std::printf("%-*s  %-13s %s\n", int(width), path.c_str(),
                        statKindName(s.kind), s.desc.c_str());
        }
}

CliStatus
OptionTable::parse(int argc, char **argv) const
{
    bool exit_requested = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp();
            return CliStatus::Exit;
        }
        if (arg.size() < 3 || arg.compare(0, 2, "--") != 0) {
            std::fprintf(stderr,
                         "%s: unexpected argument '%s' "
                         "(try --help)\n",
                         prog_.c_str(), arg.c_str());
            return CliStatus::Error;
        }

        std::string name = arg.substr(2);
        std::string value;
        bool have_value = false;
        std::size_t eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            have_value = true;
        }

        const Opt *o = find(name);
        if (!o) {
            std::fprintf(stderr,
                         "%s: unknown option '--%s' (try --help)\n",
                         prog_.c_str(), name.c_str());
            return CliStatus::Error;
        }

        if (o->onFlag && o->onValue) {
            // Optional inline value: only the --name=V form carries
            // one; the next argument is never consumed.
            if (!have_value) {
                o->onFlag();
            } else if (!o->onValue(value)) {
                std::fprintf(stderr,
                             "%s: invalid value '%s' for option "
                             "'--%s' (%s: %s)\n",
                             prog_.c_str(), value.c_str(),
                             name.c_str(), o->metavar.c_str(),
                             o->help.c_str());
                return CliStatus::Error;
            }
        } else if (o->onValue) {
            if (!have_value) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "%s: option '--%s' requires a value "
                                 "%s\n",
                                 prog_.c_str(), name.c_str(),
                                 o->metavar.c_str());
                    return CliStatus::Error;
                }
                value = argv[++i];
            }
            if (!o->onValue(value)) {
                std::fprintf(stderr,
                             "%s: invalid value '%s' for option "
                             "'--%s' (%s: %s)\n",
                             prog_.c_str(), value.c_str(),
                             name.c_str(), o->metavar.c_str(),
                             o->help.c_str());
                return CliStatus::Error;
            }
        } else {
            if (have_value) {
                std::fprintf(stderr,
                             "%s: option '--%s' takes no value\n",
                             prog_.c_str(), name.c_str());
                return CliStatus::Error;
            }
            o->onFlag();
            if (o->exits)
                exit_requested = true;
        }
    }
    return exit_requested ? CliStatus::Exit : CliStatus::Ok;
}

} // namespace ptm
