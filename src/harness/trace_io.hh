/**
 * @file
 * Trace serialization: ptm-trace-v1 JSONL and Chrome trace-event JSON.
 *
 * A TraceCapture is the portable result of one traced run: the ring
 * buffer's surviving events plus the interned counter-series names and
 * the recorded/dropped totals. Front ends collect one capture per run
 * and write them all into a single file, so a bench sweep lands as one
 * Perfetto-loadable timeline with one process per run.
 *
 * Schema ptm-trace-v1 (JSONL, one JSON object per line):
 *
 *     {"schema":"ptm-trace-v1","captures":N}
 *     {"type":"capture","label":"fft/sel-ptm","recorded":N,
 *      "dropped":N,"series":["tx.commits",...]}
 *     {"type":"ev","t":TICK,"ev":"tx_begin","cat":"tx","core":C,
 *      "th":T,"tx":ID,"tx2":ID,"a":N,"b":N,"v":X}
 *     ...
 *
 * Event lines omit fields holding their default value (core/th when
 * unknown, tx/tx2 when 0, a/b when 0, v when 0.0) to keep the stream
 * compact; consumers default absent fields accordingly.
 *
 * The Chrome exporter renders each transaction attempt as a B/E
 * duration slice on its thread's track (threads, not cores: a
 * transaction survives preemption and core migration, so per-core
 * slices could interleave and break slice nesting), conflict edges as
 * s/f flow events from the winner's track to the loser's, sampled
 * StatRegistry values as "C" counter tracks, and the remaining event
 * kinds as instant events.
 */

#ifndef PTM_HARNESS_TRACE_IO_HH
#define PTM_HARNESS_TRACE_IO_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/trace.hh"

namespace ptm
{

/** The portable result of one traced run. */
struct TraceCapture
{
    /** Display label, conventionally "workload/system". */
    std::string label;
    /** Surviving ring-buffer events, oldest first. */
    std::vector<TraceEvent> events;
    /** Counter-series names, indexed by CounterSample a0. */
    std::vector<std::string> series;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
};

/** Snapshot @p t into a capture labelled @p label. */
TraceCapture captureTrace(const Tracer &t, std::string label);

/** Emit captures as ptm-trace-v1 JSONL. */
void emitTraceJsonl(std::ostream &os,
                    const std::vector<TraceCapture> &caps);

/** Emit captures as Chrome trace-event JSON. */
void emitTraceChrome(std::ostream &os,
                     const std::vector<TraceCapture> &caps);

/**
 * Write captures to @p path ("-" = stdout) in @p fmt.
 * @return true on success; on failure @p err (if non-null) explains.
 */
bool writeTrace(const std::string &path, TraceFormat fmt,
                const std::vector<TraceCapture> &caps,
                std::string *err = nullptr);

} // namespace ptm

#endif // PTM_HARNESS_TRACE_IO_HH
