/**
 * @file
 * JSON statistics emission implementation.
 */

#include "harness/stats_io.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

namespace ptm
{

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
JsonWriter::indent()
{
    os_ << '\n';
    for (std::size_t i = 0; i < have_value_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::separate()
{
    if (pending_key_) {
        pending_key_ = false;
        return;
    }
    if (!have_value_.empty()) {
        if (have_value_.back())
            os_ << ',';
        have_value_.back() = true;
        indent();
    }
}

void
JsonWriter::beginObject()
{
    separate();
    os_ << '{';
    have_value_.push_back(false);
}

void
JsonWriter::endObject()
{
    bool had = have_value_.back();
    have_value_.pop_back();
    if (had)
        indent();
    os_ << '}';
    if (have_value_.empty())
        os_ << '\n';
}

void
JsonWriter::beginArray()
{
    separate();
    os_ << '[';
    have_value_.push_back(false);
}

void
JsonWriter::endArray()
{
    have_value_.pop_back();
    os_ << ']';
}

void
JsonWriter::key(const std::string &k)
{
    separate();
    jsonEscape(os_, k);
    os_ << ": ";
    pending_key_ = true;
}

void
JsonWriter::value(const std::string &v)
{
    separate();
    jsonEscape(os_, v);
}

void
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        os_ << "null";
        return;
    }
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        os_ << (long long)v;
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os_ << buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::null()
{
    separate();
    os_ << "null";
}

namespace minijson
{

const Value *
Value::get(const std::string &k) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &m : object)
        if (m.first == k)
            return &m.second;
    return nullptr;
}

namespace
{

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty()) {
            err = what + " at offset " + std::to_string(pos);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("bad escape");
                char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                      if (pos + 4 > text.size())
                          return fail("bad \\u escape");
                      unsigned cp = 0;
                      for (int i = 0; i < 4; ++i) {
                          char h = text[pos++];
                          cp <<= 4;
                          if (h >= '0' && h <= '9')
                              cp |= unsigned(h - '0');
                          else if (h >= 'a' && h <= 'f')
                              cp |= unsigned(h - 'a' + 10);
                          else if (h >= 'A' && h <= 'F')
                              cp |= unsigned(h - 'A' + 10);
                          else
                              return fail("bad \\u escape");
                      }
                      // Our emitter only escapes control chars; encode
                      // the BMP code point as UTF-8.
                      if (cp < 0x80) {
                          out += char(cp);
                      } else if (cp < 0x800) {
                          out += char(0xC0 | (cp >> 6));
                          out += char(0x80 | (cp & 0x3F));
                      } else {
                          out += char(0xE0 | (cp >> 12));
                          out += char(0x80 | ((cp >> 6) & 0x3F));
                          out += char(0x80 | (cp & 0x3F));
                      }
                      break;
                  }
                  default:
                    return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            out.type = Value::Type::Object;
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                std::string k;
                skipWs();
                if (!parseString(k))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                Value v;
                if (!parseValue(v))
                    return false;
                out.object.emplace_back(std::move(k), std::move(v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out.type = Value::Type::Array;
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                Value v;
                if (!parseValue(v))
                    return false;
                out.array.push_back(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.type = Value::Type::String;
            return parseString(out.str);
        }
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            out.type = Value::Type::Bool;
            out.boolean = true;
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            out.type = Value::Type::Bool;
            out.boolean = false;
            return true;
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            out.type = Value::Type::Null;
            return true;
        }
        // Number.
        std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '-' ||
                text[pos] == '+'))
            ++pos;
        if (pos == start)
            return fail("unexpected character");
        try {
            out.number = std::stod(text.substr(start, pos - start));
        } catch (...) {
            return fail("bad number");
        }
        out.type = Value::Type::Number;
        return true;
    }
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string *err)
{
    Parser p{text, 0, {}};
    if (!p.parseValue(out)) {
        if (err)
            *err = p.err;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err)
            *err = "trailing garbage at offset " + std::to_string(p.pos);
        return false;
    }
    return true;
}

} // namespace minijson

const char *
gitDescribe()
{
#ifdef PTM_GIT_DESCRIBE
    return PTM_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

namespace
{

const char *
shadowFreeName(ShadowFreePolicy p)
{
    return p == ShadowFreePolicy::MergeOnSwap ? "merge-on-swap"
                                              : "lazy-migrate";
}

void
emitParams(JsonWriter &w, const SystemParams &p)
{
    w.key("params");
    w.beginObject();
    w.member("num_cores", p.numCores);
    w.member("l1_bytes", p.l1Bytes);
    w.member("l1_assoc", p.l1Assoc);
    w.member("l1_latency", std::uint64_t(p.l1Latency));
    w.member("l2_bytes", p.l2Bytes);
    w.member("l2_assoc", p.l2Assoc);
    w.member("l2_latency", std::uint64_t(p.l2Latency));
    w.member("bus_latency", std::uint64_t(p.busLatency));
    w.member("dram_latency", std::uint64_t(p.dramLatency));
    w.member("dram_pipeline", p.dramPipeline);
    w.member("tlb_entries", p.tlbEntries);
    w.member("phys_frames", p.physFrames);
    w.member("swap_enabled", p.swapEnabled);
    w.member("os_quantum", std::uint64_t(p.osQuantum));
    w.member("daemon_interval", std::uint64_t(p.daemonInterval));
    w.member("spt_cache_entries", p.sptCacheEntries);
    w.member("tav_cache_entries", p.tavCacheEntries);
    w.member("shadow_free", shadowFreeName(p.shadowFree));
    w.member("xf_entries", p.xfEntries);
    w.member("xadc_entries", p.xadcEntries);
    w.member("victim_cache_entries", p.victimCacheEntries);
    w.member("flush_on_context_switch", p.flushOnContextSwitch);
    w.member("max_ticks", std::uint64_t(p.maxTicks));
    // Durability params appear only when the persistence domain is
    // built, so volatile manifests stay byte-identical to the seed.
    if (p.persist.enabled()) {
        w.member("durability", "wal");
        w.member("wal_flush_latency",
                 std::uint64_t(p.persist.flushLatency));
        w.member("wal_bytes_per_cycle", p.persist.logBytesPerCycle);
        if (p.persist.crashAtTick)
            w.member("crash_at_tick",
                     std::uint64_t(p.persist.crashAtTick));
    }
    w.endObject();
}

void
emitStat(JsonWriter &w, const StatValue &v)
{
    w.beginObject();
    w.member("kind", statKindName(v.kind));
    switch (v.kind) {
      case StatKind::Counter:
      case StatKind::Scalar:
        w.member("value", v.value);
        break;
      case StatKind::Average:
        w.member("mean", v.value);
        w.member("samples", v.count);
        break;
      case StatKind::TimeWeighted:
        w.member("mean", v.value);
        break;
      case StatKind::Distribution:
        w.member("samples", v.dist.samples);
        w.member("sum", v.dist.sum);
        w.member("mean", v.dist.mean());
        w.member("min", v.dist.samples ? v.dist.min : 0.0);
        w.member("max", v.dist.samples ? v.dist.max : 0.0);
        w.member("p50", v.dist.percentile(50));
        w.member("p95", v.dist.percentile(95));
        w.member("p99", v.dist.percentile(99));
        w.member("bucket_lo", v.dist.lo);
        w.member("bucket_width", v.dist.width);
        w.member("underflow", v.dist.underflow);
        w.member("overflow", v.dist.overflow);
        w.key("counts");
        w.beginArray();
        for (std::uint64_t c : v.dist.counts)
            w.value(c);
        w.endArray();
        break;
    }
    w.endObject();
}

void
emitProfile(JsonWriter &w, const ProfSnapshot &prof,
            const HostProfile *host)
{
    w.key("profile");
    w.beginObject();
    w.member("elapsed_ticks", std::uint64_t(prof.elapsed));

    w.key("cores");
    w.beginArray();
    for (std::size_t c = 0; c < prof.cores.size(); ++c) {
        w.beginObject();
        w.member("total", prof.coreTotal(unsigned(c)));
        w.key("ticks");
        w.beginObject();
        for (std::size_t b = 0; b < profBuckets; ++b)
            w.member(profBucketName(ProfBucket(b)), prof.cores[c][b]);
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.key("supervisor");
    w.beginObject();
    for (std::size_t c = 0; c < profCharges; ++c)
        w.member(profChargeName(ProfCharge(c)), prof.charges[c]);
    w.endObject();

    if (host && host->enabled) {
        w.key("host");
        w.beginObject();
        w.member("sample_interval", host->sampleInterval);
        w.key("sites");
        w.beginArray();
        for (const auto &s : host->sites) {
            w.beginObject();
            w.member("name", s.name);
            w.member("events", s.events);
            w.member("sampled", s.sampled);
            w.member("sampled_ns", s.sampledNs);
            w.member("estimated_ns", s.estimatedNs(host->sampleInterval));
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    w.endObject();
}

/** One top-K list as [{"page":N|-1,"count":N,"err":N}, ...]. */
void
emitHeatList(JsonWriter &w, const char *keyname,
             const std::vector<SpaceSavingTopK::Entry> &entries)
{
    w.beginArray();
    for (const auto &e : entries) {
        w.beginObject();
        if (e.key == invalidPage || e.key == invalidAddr)
            w.member(keyname, std::int64_t(-1));
        else
            w.member(keyname, e.key);
        w.member("count", e.count);
        w.member("err", e.error);
        w.endObject();
    }
    w.endArray();
}

void
emitHotPages(JsonWriter &w, const HeatmapSnapshot &heat)
{
    w.key("hot_pages");
    w.beginObject();
    w.member("k", heat.k);

    w.key("conflicts");
    w.beginObject();
    w.member("total", heat.conflictsTotal);
    w.key("pages");
    emitHeatList(w, "page", heat.conflictPages);
    w.key("blocks");
    emitHeatList(w, "block", heat.conflictBlocks);
    w.endObject();

    w.key("aborts");
    w.beginObject();
    for (unsigned c = 0; c < heatAbortCauses; ++c) {
        w.key(heatAbortCauseName(c));
        w.beginObject();
        w.member("total", heat.abortsTotal[c]);
        w.key("pages");
        emitHeatList(w, "page", heat.abortPages[c]);
        w.endObject();
    }
    w.endObject();

    auto section = [&](const char *name, std::uint64_t total,
                       const std::vector<SpaceSavingTopK::Entry> &top) {
        w.key(name);
        w.beginObject();
        w.member("total", total);
        w.key("pages");
        emitHeatList(w, "page", top);
        w.endObject();
    };
    section("spt_misses", heat.sptMissTotal, heat.sptMissPages);
    section("tav_misses", heat.tavMissTotal, heat.tavMissPages);
    section("shadow_allocs", heat.shadowAllocTotal,
            heat.shadowAllocPages);

    w.endObject();
}

void
emitForensics(JsonWriter &w, const ForensicsSnapshot &f)
{
    w.key("forensics");
    w.beginObject();
    w.member("depth", f.depth);
    w.member("generations", f.generations);
    w.member("armed", f.armed);
    w.member("live_records", f.liveRecords);
    w.member("retired_records", f.retiredRecords);
    w.member("dropped_records", f.droppedRecords);
    w.member("wasted_ticks_total", std::uint64_t(f.wastedTicksTotal));
    w.member("dropped_wasted_ticks",
             std::uint64_t(f.droppedWastedTicks));
    w.member("max_wasted_ticks", std::uint64_t(f.maxWastedTicks));
    if (f.maxWastedTx == invalidTxId)
        w.member("max_wasted_tx", std::int64_t(-1));
    else
        w.member("max_wasted_tx", std::uint64_t(f.maxWastedTx));
    w.member("deepest_chain", f.deepestChain);
    w.member("postmortems", f.postmortems);
    w.member("dropped_reports", f.droppedReports);
    w.key("top_killers");
    w.beginArray();
    for (const auto &k : f.topKillers) {
        w.beginObject();
        w.member("tx", std::uint64_t(k.tx));
        w.member("kills", k.kills);
        w.member("wasted_ticks", std::uint64_t(k.wastedTicks));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

void
emitRunJson(std::ostream &os, const RunManifest &manifest,
            const StatSnapshot &snap, const ProfSnapshot *prof,
            const HostProfile *host, const HeatmapSnapshot *heat,
            const ForensicsSnapshot *forensics)
{
    JsonWriter w(os);
    w.beginObject();
    w.member("schema", "ptm-stats-v1");

    w.key("manifest");
    w.beginObject();
    w.member("tool", manifest.tool);
    w.member("workload", manifest.workload);
    if (manifest.params) {
        w.member("system", tmKindName(manifest.params->tmKind));
        w.member("granularity",
                 granularityName(manifest.params->granularity));
        w.member("seed", manifest.params->seed);
    }
    w.member("threads", manifest.threads);
    w.member("scale", std::int64_t(manifest.scale));
    w.key("workload_options");
    w.beginObject();
    for (const auto &[k, v] : manifest.workloadOptions)
        w.member(k, v);
    w.endObject();
    w.member("cycles", std::uint64_t(manifest.cycles));
    w.member("verified", manifest.verified);
    w.member("wall_seconds", manifest.wallSeconds);
    w.member("events_per_sec", manifest.eventsPerSec);
    w.member("sim_events_per_sec", manifest.simEventsPerSec);
    w.member("sim_ticks_per_wall_sec", manifest.simTicksPerWallSec);
    w.member("git", gitDescribe());
    if (manifest.params)
        emitParams(w, *manifest.params);
    w.endObject();

    w.key("groups");
    w.beginObject();
    for (const auto &g : snap.groups()) {
        w.key(g.name);
        w.beginObject();
        for (const auto &s : g.stats) {
            w.key(s.first);
            emitStat(w, s.second);
        }
        w.endObject();
    }
    w.endObject();

    if (prof && prof->enabled)
        emitProfile(w, *prof, host);

    if (heat && heat->enabled)
        emitHotPages(w, *heat);

    if (forensics && forensics->enabled)
        emitForensics(w, *forensics);

    w.endObject();
}

bool
writeRunJson(const std::string &path, const RunManifest &manifest,
             const StatSnapshot &snap, std::string *err,
             const ProfSnapshot *prof, const HostProfile *host,
             const HeatmapSnapshot *heat,
             const ForensicsSnapshot *forensics)
{
    if (path == "-") {
        emitRunJson(std::cout, manifest, snap, prof, host, heat,
                    forensics);
        return bool(std::cout);
    }
    std::ofstream f(path);
    if (!f) {
        if (err)
            *err = "cannot open " + path + " for writing";
        return false;
    }
    emitRunJson(f, manifest, snap, prof, host, heat, forensics);
    f.flush();
    if (!f) {
        if (err)
            *err = "write to " + path + " failed";
        return false;
    }
    return true;
}

BenchRecorder &
BenchRecorder::beginRow()
{
    rows_.emplace_back();
    return *this;
}

BenchRecorder &
BenchRecorder::field(const std::string &k, const std::string &v)
{
    Field f;
    f.key = k;
    f.kind = Field::Kind::Str;
    f.s = v;
    rows_.back().push_back(std::move(f));
    return *this;
}

BenchRecorder &
BenchRecorder::field(const std::string &k, const char *v)
{
    return field(k, std::string(v));
}

BenchRecorder &
BenchRecorder::field(const std::string &k, double v)
{
    Field f;
    f.key = k;
    f.kind = Field::Kind::Num;
    f.d = v;
    rows_.back().push_back(std::move(f));
    return *this;
}

BenchRecorder &
BenchRecorder::field(const std::string &k, std::uint64_t v)
{
    Field f;
    f.key = k;
    f.kind = Field::Kind::UInt;
    f.u = v;
    rows_.back().push_back(std::move(f));
    return *this;
}

BenchRecorder &
BenchRecorder::field(const std::string &k, unsigned v)
{
    return field(k, std::uint64_t(v));
}

BenchRecorder &
BenchRecorder::field(const std::string &k, bool v)
{
    Field f;
    f.key = k;
    f.kind = Field::Kind::Bool;
    f.b = v;
    rows_.back().push_back(std::move(f));
    return *this;
}

bool
BenchRecorder::writeJson(const std::string &path) const
{
    if (path.empty())
        return true;

    auto emit = [this](std::ostream &os) {
        JsonWriter w(os);
        w.beginObject();
        w.member("schema", "ptm-bench-v1");
        w.member("bench", bench_);
        w.member("git", gitDescribe());
        w.key("rows");
        w.beginArray();
        for (const auto &row : rows_) {
            w.beginObject();
            for (const auto &f : row) {
                switch (f.kind) {
                  case Field::Kind::Str: w.member(f.key, f.s); break;
                  case Field::Kind::Num: w.member(f.key, f.d); break;
                  case Field::Kind::UInt: w.member(f.key, f.u); break;
                  case Field::Kind::Bool: w.member(f.key, f.b); break;
                }
            }
            w.endObject();
        }
        w.endArray();
        w.endObject();
    };

    if (path == "-") {
        emit(std::cout);
        return bool(std::cout);
    }
    std::ofstream f(path);
    if (!f)
        return false;
    emit(f);
    f.flush();
    return bool(f);
}

} // namespace ptm
