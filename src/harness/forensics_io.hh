/**
 * @file
 * Post-mortem emission: ptm-postmortem-v1 JSON and the human block.
 *
 * The flight recorder (sim/flightrec) captures PostmortemReports; this
 * module serializes them. The System wires FlightRecorder::onReport to
 * these emitters at trigger time so dumps appear the moment the
 * starvation watchdog / auditor / chaos trigger fires, not at run end.
 *
 * Schema ptm-postmortem-v1 (one report per JSON document; a dump file
 * holds the run's reports as concatenated documents, like the
 * timeseries JSONL stream tools already parse with raw_decode):
 *
 *     { "schema": "ptm-postmortem-v1",
 *       "trigger": { "kind": "watchdog" | "starvation-grant" |
 *                            "audit-violation" | "chaos-inject" |
 *                            "abort-threshold",
 *                    "tick": N, "tx": N, "detail": "..." },
 *       "repro": "...",
 *       "generations": N, "chain_depth": N,
 *       "nodes": [ { "id": N, "tx": N, "tick": N, "attempt": N,
 *                    "cause": "conflict" | ..., "where": N | -1,
 *                    "page": N | -1, "winner": N | -1,
 *                    "generation": N }, ... ],
 *       "edges": [ { "from": N, "to": N }, ... ],
 *       "records": [ { "tx": N, "thread": N, "proc": N,
 *                      "first_begin": N, "last_begin": N,
 *                      "end_tick": N, "committed": bool,
 *                      "attempts": N, "aborts": N, "kills": N,
 *                      "spt_misses": N, "tav_misses": N,
 *                      "shadow_allocs": N, "wasted_ticks": N,
 *                      "lost_ticks": N,
 *                      "recent_aborts": [ { "tick": N, "attempt": N,
 *                                           "cause": "...",
 *                                           "where": N | -1,
 *                                           "winner": N | -1 },
 *                                         ... ] }, ... ],
 *       "flightrec": { "depth": N, "live": N, "retired": N,
 *                      "dropped_records": N,
 *                      "dropped_wasted_ticks": N } }
 *
 * Edges always point from a victim's abort node to an abort of its
 * killer at a strictly earlier tick (tick 0 = terminal node), so the
 * node list is already a reverse topological order; the checker
 * verifies acyclicity independently.
 */

#ifndef PTM_HARNESS_FORENSICS_IO_HH
#define PTM_HARNESS_FORENSICS_IO_HH

#include <ostream>

#include "sim/flightrec.hh"

namespace ptm
{

/** Emit @p r as one ptm-postmortem-v1 JSON document to @p os. */
void emitPostmortemJson(std::ostream &os, const FlightRecorder &rec,
                        const PostmortemReport &r);

/** Print the human-readable post-mortem block (repro line included). */
void printPostmortem(std::ostream &os, const FlightRecorder &rec,
                     const PostmortemReport &r);

} // namespace ptm

#endif // PTM_HARNESS_FORENSICS_IO_HH
