/**
 * @file
 * Experiment runner implementation.
 */

#include "harness/experiment.hh"

#include <chrono>
#include <cstdio>

#include "harness/cli.hh"
#include "sim/logging.hh"

namespace ptm
{

ExperimentResult
runWorkload(const std::string &workload_name, SystemParams params,
            int scale, unsigned threads, const WorkloadOptList &wl_opts)
{
    WorkloadConfig wcfg;
    wcfg.threads = threads;
    wcfg.mode = syncModeFor(params.tmKind);
    wcfg.seed = params.seed;
    if (wcfg.mode == SyncMode::Serial)
        params.numCores = 1;
    if (params.maxTicks == 0)
        params.maxTicks = 20ull * 1000 * 1000 * 1000;

    // The legacy scale argument becomes the "scale" option (where the
    // workload declares one); explicit --wl-opt pairs are appended
    // after it so they win.
    const WorkloadInfo *info =
        WorkloadRegistry::instance().find(workload_name);
    if (!info)
        fatal("unknown workload '%s' (known: %s)",
              workload_name.c_str(), workloadNameList().c_str());
    WorkloadOptList given;
    if (WorkloadRegistry::findOption(*info, "scale"))
        given.emplace_back("scale", std::to_string(scale));
    given.insert(given.end(), wl_opts.begin(), wl_opts.end());

    auto wl = makeWorkload(workload_name, wcfg, given);
    System sys(params);
    wl->build(sys);
    // Full reproducer (the System's default covers only seed/chaos):
    // echoed in every post-mortem dump so a trip is replayable.
    if (sys.flightrec())
        sys.flightrec()->setRepro("--workload " + workload_name +
                                  " --system " +
                                  tmKindArg(params.tmKind) + " " +
                                  chaosReproArgs(params));

    ExperimentResult r;
    auto t0 = std::chrono::steady_clock::now();
    r.cycles = sys.run();
    r.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    r.snapshot = sys.snapshot();
    r.eventsExecuted = r.snapshot.value("events.executed");
    r.stats = sys.stats();
    r.crashed = sys.crashed();
    if (r.crashed)
        r.crashTick = sys.crashTick();
    // A crashed run has no final state to verify in-process; recovery
    // replays the dump and verifies the committed prefix instead.
    r.verified = !r.crashed && wl->verify(sys);
    r.profile = sys.profiler().snapshot();
    r.host = sys.eq().hostProfile();
    r.auditViolations = sys.auditor().violations();
    r.auditChecks = sys.auditor().checksRun.value();
    r.resolvedOptions = wl->config().options.items();
    if (sys.heatmap())
        r.heatmap = sys.heatmap()->snapshot();
    if (sys.timeseries())
        r.timeseries = sys.timeseries()->capture();
    if (sys.flightrec())
        r.forensics = sys.flightrec()->snapshot();
    if (sys.tracer().active())
        r.trace = captureTrace(sys.tracer(),
                               workload_name + "/" +
                                   tmKindName(params.tmKind));

    if (const WalManager *wal = sys.wal()) {
        r.walDurableBytes =
            r.crashed ? wal->durableBytesAt(sys.crashTick())
                      : wal->log().size();
        if (!params.persist.walPath.empty()) {
            fatal_if(!wl->persistSupported(),
                     "--wal-file: workload %s cannot emit a durable "
                     "checkpoint (persistSupported() is false)",
                     workload_name.c_str());
            WalDump d;
            d.tmKind = std::uint32_t(params.tmKind);
            d.threads = wl->config().threads;
            d.seed = params.seed;
            d.crashTick = r.crashed ? sys.crashTick() : 0;
            d.endTick = r.cycles;
            d.workload = workload_name;
            d.options = wl->config().options.items();
            wl->persistCheckpoint(
                [&d](Addr vbase, const std::vector<std::uint32_t> &w) {
                    d.checkpoint.push_back({vbase, w});
                });
            d.logBytesTotal = wal->log().size();
            d.log.assign(wal->log().begin(),
                         wal->log().begin() + r.walDurableBytes);
            std::string err;
            if (!writeWalDump(params.persist.walPath, d, &err))
                fatal("--wal-file: %s", err.c_str());
        }
    }

    if (!r.verified && !r.crashed)
        warn("%s/%s produced a wrong result", workload_name.c_str(),
             tmKindName(params.tmKind));
    return r;
}

std::size_t
reportAuditViolations(const char *tool, const std::string &workload,
                      const SystemParams &params,
                      const ExperimentResult &r)
{
    for (const auto &v : r.auditViolations)
        std::fprintf(stderr, "audit-violation: %s @%llu (%s): %s\n",
                     v.check.c_str(), (unsigned long long)v.tick,
                     v.where.c_str(), v.detail.c_str());
    if (!r.auditViolations.empty()) {
        std::string repro = chaosReproArgs(params);
        std::fprintf(stderr, "repro: %s%s%s --system %s %s\n", tool,
                     workload.empty() ? "" : " --workload ",
                     workload.c_str(), tmKindArg(params.tmKind),
                     repro.c_str());
    }
    return r.auditViolations.size();
}

double
speedupPct(Tick serial, Tick par)
{
    if (par == 0)
        return 0.0;
    return (double(serial) / double(par) - 1.0) * 100.0;
}

} // namespace ptm
