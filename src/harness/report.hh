/**
 * @file
 * Plain-text table formatting for the reproduced tables and figures.
 */

#ifndef PTM_HARNESS_REPORT_HH
#define PTM_HARNESS_REPORT_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace ptm
{

/** A simple left-aligned text table. */
class Report
{
  public:
    explicit Report(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Append a row (must match the header arity). */
    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Print with column alignment. */
    void
    print(std::FILE *out = stdout) const
    {
        std::vector<std::size_t> width(header_.size(), 0);
        auto widen = [&](const std::vector<std::string> &r) {
            for (std::size_t i = 0; i < r.size() && i < width.size();
                 ++i)
                width[i] = std::max(width[i], r[i].size());
        };
        widen(header_);
        for (const auto &r : rows_)
            widen(r);

        auto line = [&](const std::vector<std::string> &r) {
            for (std::size_t i = 0; i < width.size(); ++i) {
                const std::string &c = i < r.size() ? r[i] : empty_;
                std::fprintf(out, "%-*s ", int(width[i]), c.c_str());
            }
            std::fprintf(out, "\n");
        };
        line(header_);
        std::string dash;
        for (std::size_t i = 0; i < width.size(); ++i)
            dash.append(width[i] + 1, '-');
        std::fprintf(out, "%s\n", dash.c_str());
        for (const auto &r : rows_)
            line(r);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::string empty_;
};

/** printf-style cell helper. */
inline std::string
cell(const char *fmt, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return buf;
}

inline std::string
cellU(unsigned long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", v);
    return buf;
}

/**
 * Build a table row straight from registry paths: the given label
 * @p cells followed by the integer value of each "group.stat" path in
 * @p snap (0 for absent paths, e.g. backend-specific groups).
 */
inline std::vector<std::string>
rowFromStats(std::vector<std::string> cells, const StatSnapshot &snap,
             const std::vector<std::string> &paths)
{
    for (const auto &p : paths)
        cells.push_back(cellU(snap.counter(p)));
    return cells;
}

} // namespace ptm

#endif // PTM_HARNESS_REPORT_HH
