/**
 * @file
 * Trace sinks: ptm-trace-v1 JSONL and the Chrome trace-event exporter.
 */

#include "harness/trace_io.hh"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "harness/stats_io.hh"

namespace ptm
{

TraceCapture
captureTrace(const Tracer &t, std::string label)
{
    TraceCapture c;
    c.label = std::move(label);
    c.events = t.snapshot();
    c.series = t.seriesNames();
    c.recorded = t.recorded();
    c.dropped = t.dropped();
    return c;
}

namespace
{

/** Format a double compactly; JSON has no NaN/Inf, map those to 0. */
std::string
num(double v)
{
    if (!(v == v) || v > 1e308 || v < -1e308)
        return "0";
    std::ostringstream ss;
    ss.precision(15);
    ss << v;
    return ss.str();
}

void
emitEventLine(std::ostream &os, const TraceEvent &e)
{
    os << "{\"type\":\"ev\",\"t\":" << e.tick << ",\"ev\":\""
       << traceEventTypeName(e.type) << "\",\"cat\":\""
       << traceCatName(traceEventCat(e.type)) << "\"";
    if (e.core != traceNoId)
        os << ",\"core\":" << e.core;
    if (e.thread != traceNoId)
        os << ",\"th\":" << e.thread;
    if (e.tx != invalidTxId)
        os << ",\"tx\":" << e.tx;
    if (e.tx2 != invalidTxId)
        os << ",\"tx2\":" << e.tx2;
    if (e.a0)
        os << ",\"a\":" << e.a0;
    if (e.a1)
        os << ",\"b\":" << e.a1;
    if (e.v != 0.0)
        os << ",\"v\":" << num(e.v);
    os << "}\n";
}

} // namespace

void
emitTraceJsonl(std::ostream &os, const std::vector<TraceCapture> &caps)
{
    os << "{\"schema\":\"ptm-trace-v1\",\"git\":";
    jsonEscape(os, gitDescribe());
    os << ",\"captures\":" << caps.size() << "}\n";
    for (const auto &c : caps) {
        os << "{\"type\":\"capture\",\"label\":";
        jsonEscape(os, c.label);
        os << ",\"recorded\":" << c.recorded << ",\"dropped\":"
           << c.dropped << ",\"series\":[";
        for (std::size_t i = 0; i < c.series.size(); ++i) {
            if (i)
                os << ",";
            jsonEscape(os, c.series[i]);
        }
        os << "]}\n";
        for (const auto &e : c.events)
            emitEventLine(os, e);
    }
}

namespace
{

/** One Chrome trace-event record, pre-rendered except for ts order. */
struct ChromeRec
{
    double ts = 0;
    int order = 0; //!< tie-break: B(0) before instants(1) before E(2)
    std::string json;
};

/** "pid":N,"tid":N fragment. */
std::string
ptid(unsigned pid, std::uint64_t tid)
{
    std::ostringstream ss;
    ss << "\"pid\":" << pid << ",\"tid\":" << tid;
    return ss.str();
}

/** Track id of an event without a thread: park it on a core lane. */
std::uint64_t
laneOf(const TraceEvent &e)
{
    if (e.thread != traceNoId)
        return e.thread;
    if (e.core != traceNoId)
        return 1000 + e.core;
    return 999;
}

void
emitChromeCapture(std::vector<ChromeRec> &recs, unsigned pid,
                  const TraceCapture &c, std::uint64_t &next_flow)
{
    // Process metadata: one "process" per capture, named by its label.
    {
        ChromeRec r;
        r.ts = 0;
        std::ostringstream ss;
        ss << "{\"ph\":\"M\",\"name\":\"process_name\"," << ptid(pid, 0)
           << ",\"args\":{\"name\":";
        jsonEscape(ss, c.label);
        ss << "}}";
        r.json = ss.str();
        recs.push_back(std::move(r));
    }

    // Transaction duration slices: pair TxBegin/TxRestart with the
    // TxCommit/TxAbort that closes the attempt. Attempts of one thread
    // never overlap, so B/E pairs nest trivially per track.
    struct Open
    {
        Tick tick = 0;
        std::uint64_t tid = 0;
        std::uint64_t attempt = 0;
    };
    std::map<TxId, Open> open;
    Tick last_tick = 0;

    auto slice = [&](TxId tx, const Open &o, Tick end,
                     const std::string &outcome, std::uint64_t cause) {
        ChromeRec b;
        b.ts = double(o.tick);
        b.order = 0;
        std::ostringstream sb;
        sb << "{\"ph\":\"B\",\"cat\":\"tx\",\"name\":\"tx " << tx
           << "\",\"ts\":" << num(double(o.tick)) << ","
           << ptid(pid, o.tid) << ",\"args\":{\"attempt\":" << o.attempt
           << "}}";
        b.json = sb.str();
        recs.push_back(std::move(b));

        ChromeRec e;
        e.ts = double(end);
        e.order = 2;
        std::ostringstream se;
        se << "{\"ph\":\"E\",\"cat\":\"tx\",\"ts\":" << num(double(end))
           << "," << ptid(pid, o.tid) << ",\"args\":{\"outcome\":\""
           << outcome << "\"";
        if (outcome == "abort")
            se << ",\"cause\":" << cause;
        se << "}}";
        e.json = se.str();
        recs.push_back(std::move(e));
    };

    for (const auto &e : c.events) {
        last_tick = std::max(last_tick, e.tick);
        switch (e.type) {
          case TraceEventType::TxBegin:
          case TraceEventType::TxRestart: {
            auto it = open.find(e.tx);
            // A stale open attempt (its close was never recorded)
            // is truncated here to keep the slices balanced.
            if (it != open.end()) {
                slice(e.tx, it->second, e.tick, "truncated", 0);
                open.erase(it);
            }
            Open o;
            o.tick = e.tick;
            o.tid = laneOf(e);
            o.attempt = e.a0;
            open.emplace(e.tx, o);
            break;
          }
          case TraceEventType::TxCommit:
          case TraceEventType::TxAbort: {
            auto it = open.find(e.tx);
            // No matching begin (it rotated out of the ring): skip,
            // an unmatched E would unbalance the track.
            if (it == open.end())
                break;
            bool commit = e.type == TraceEventType::TxCommit;
            slice(e.tx, it->second, e.tick,
                  commit ? "commit" : "abort", e.a0);
            open.erase(it);
            break;
          }
          case TraceEventType::ConflictEdge: {
            std::uint64_t id = next_flow++;
            ChromeRec s;
            s.ts = double(e.tick);
            s.order = 1;
            std::ostringstream ss;
            ss << "{\"ph\":\"s\",\"cat\":\"conflict\",\"name\":"
               << "\"conflict\",\"id\":" << id << ",\"ts\":"
               << num(double(e.tick)) << "," << ptid(pid, laneOf(e))
               << ",\"args\":{\"winner\":" << e.tx << ",\"loser\":"
               << e.tx2 << ",\"block\":" << e.a0 << "}}";
            s.json = ss.str();
            recs.push_back(std::move(s));

            ChromeRec f;
            f.ts = double(e.tick);
            f.order = 1;
            std::ostringstream sf;
            sf << "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"conflict\","
               << "\"name\":\"conflict\",\"id\":" << id << ",\"ts\":"
               << num(double(e.tick)) << "," << ptid(pid, e.a1)
               << "}";
            f.json = sf.str();
            recs.push_back(std::move(f));
            break;
          }
          case TraceEventType::CounterSample: {
            ChromeRec r;
            r.ts = double(e.tick);
            r.order = 1;
            std::string name = e.a0 < c.series.size()
                                   ? c.series[e.a0]
                                   : "series " + std::to_string(e.a0);
            std::ostringstream ss;
            ss << "{\"ph\":\"C\",\"name\":";
            jsonEscape(ss, name);
            ss << ",\"ts\":" << num(double(e.tick)) << ","
               << ptid(pid, 0) << ",\"args\":{\"value\":" << num(e.v)
               << "}}";
            r.json = ss.str();
            recs.push_back(std::move(r));
            break;
          }
          default: {
            // Everything else becomes a thread-scoped instant event.
            ChromeRec r;
            r.ts = double(e.tick);
            r.order = 1;
            std::ostringstream ss;
            ss << "{\"ph\":\"i\",\"s\":\"t\",\"cat\":\""
               << traceCatName(traceEventCat(e.type)) << "\","
               << "\"name\":\"" << traceEventTypeName(e.type)
               << "\",\"ts\":" << num(double(e.tick)) << ","
               << ptid(pid, laneOf(e)) << ",\"args\":{\"a\":" << e.a0
               << ",\"b\":" << e.a1 << "}}";
            r.json = ss.str();
            recs.push_back(std::move(r));
            break;
          }
        }
    }

    // Attempts still open at the end of the capture (the run was
    // truncated, or commit events were filtered out): close them at
    // the last tick so every B has its E.
    for (const auto &[tx, o] : open)
        slice(tx, o, std::max(last_tick, o.tick), "truncated", 0);
}

} // namespace

void
emitTraceChrome(std::ostream &os, const std::vector<TraceCapture> &caps)
{
    std::vector<ChromeRec> recs;
    std::uint64_t next_flow = 1;
    for (std::size_t i = 0; i < caps.size(); ++i)
        emitChromeCapture(recs, unsigned(i + 1), caps[i], next_flow);

    // Duration events must appear in nondecreasing ts order per track;
    // a stable sort with B-before-E tie-breaking keeps zero-length
    // slices balanced.
    std::stable_sort(recs.begin(), recs.end(),
                     [](const ChromeRec &a, const ChromeRec &b) {
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         return a.order < b.order;
                     });

    os << "{\"traceEvents\":[";
    for (std::size_t i = 0; i < recs.size(); ++i) {
        if (i)
            os << ",";
        os << "\n" << recs[i].json;
    }
    os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":"
       << "\"ptm-trace-chrome\",\"git\":";
    jsonEscape(os, gitDescribe());
    os << "}}\n";
}

bool
writeTrace(const std::string &path, TraceFormat fmt,
           const std::vector<TraceCapture> &caps, std::string *err)
{
    auto emit = [&](std::ostream &os) {
        if (fmt == TraceFormat::Chrome)
            emitTraceChrome(os, caps);
        else
            emitTraceJsonl(os, caps);
    };
    if (path == "-") {
        emit(std::cout);
        return bool(std::cout);
    }
    std::ofstream f(path);
    if (!f) {
        if (err)
            *err = "cannot open " + path;
        return false;
    }
    emit(f);
    f.flush();
    if (!f) {
        if (err)
            *err = "write error on " + path;
        return false;
    }
    return true;
}

} // namespace ptm
