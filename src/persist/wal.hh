/**
 * @file
 * The persistence domain: a write-ahead redo log under the TM.
 *
 * The paper's PTM makes transactions unbounded in space and time but
 * volatile: a power cut loses every commit still in the coherence
 * domain. Real deployments layer a persistence domain beneath the TM
 * (Giles et al., "Hardware Transactional Persistent Memory"; DUMBO's
 * durable transactions), and Select-PTM is unusually well suited to
 * it: a commit's effect on memory is a set of selection-bit flips
 * whose redo intent — the committed word values — is tiny. WalManager
 * models exactly that layer:
 *
 *  - While a transaction runs, its stores are captured as an absolute
 *    (vaddr, value) redo set (Select-PTM: the words whose selection
 *    bits will flip home; Copy-PTM: the shadow-to-home copy set).
 *  - At commit the redo set is serialized as one log record, appended
 *    to a modeled ordered log device, and the committing core stalls
 *    until the ordered flush drains (base fence latency plus record
 *    bytes over the device bandwidth) — redo-at-commit durability.
 *  - An abort discards the redo set; nothing aborted ever reaches the
 *    log, so the log byte order IS the commit serialization order.
 *
 * Crash semantics: a crash at tick T preserves every append whose
 * drain finished by T plus a proportional prefix of the in-flight
 * append — so the surviving log can end in a torn, partially-flushed
 * record. replayWal() discards such a tail with a diagnostic naming
 * the offset; a structurally complete record that fails its CRC is a
 * hard rejection, never a silent partial image.
 *
 * Serialized formats (all little-endian):
 *
 *  record := u32 magic 'CREC', u32 len (total record bytes),
 *            u64 seq (global commit order, from 1),
 *            u64 tx, u32 thread, u32 ordinal (per-thread order, from
 *            1), u32 kind (TmKind), u32 nwrites,
 *            nwrites x { u64 vaddr, u32 value },
 *            u32 crc32 (zlib polynomial, over all prior record bytes)
 *
 *  dump   := "PTMWAL1\n", u32 version, u32 tmKind, u32 threads,
 *            u64 seed, u64 crashTick (0 = completed), u64 endTick,
 *            str workload, u32 nopts x { str key, str value },
 *            u32 nregions x { u64 vbase, u32 nwords, words,
 *                             u32 crc32 },
 *            u64 logBytesTotal, u64 logBytesDurable,
 *            logBytesDurable raw log bytes
 *  (str := u32 len + bytes; region CRC covers the region's word
 *  bytes). tools/check_wal.py parses the same formats in Python.
 */

#ifndef PTM_PERSIST_WAL_HH
#define PTM_PERSIST_WAL_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace ptm
{

class CycleProfiler;

/** CRC32 (zlib polynomial 0xEDB88320; Python zlib.crc32 agrees). */
std::uint32_t crc32(const std::uint8_t *data, std::size_t n);

/** Log-record magic: "CREC" read as a little-endian u32. */
constexpr std::uint32_t walRecordMagic = 0x43455243u;

/** Crash-dump file magic. */
constexpr char walDumpMagic[9] = "PTMWAL1\n";

/** Crash-dump format version. */
constexpr std::uint32_t walDumpVersion = 1;

/** Fixed byte sizes of the record encoding. */
constexpr std::size_t walRecordHeaderBytes = 40;
constexpr std::size_t walRecordWriteBytes = 12;
constexpr std::size_t walRecordCrcBytes = 4;

/** One parsed commit record. */
struct WalRecord
{
    std::uint64_t seq = 0;
    std::uint64_t tx = 0;
    std::uint32_t thread = 0;
    /** 1-based commit index within the thread. */
    std::uint32_t ordinal = 0;
    /** TmKind of the producing system. */
    std::uint32_t kind = 0;
    std::vector<std::pair<Addr, std::uint32_t>> writes;
};

/** Result of replaying a (possibly torn) log byte stream. */
struct WalReplay
{
    /** Absolute word image the durable commits produce. */
    std::map<Addr, std::uint32_t> image;
    /** Complete records, in log (= commit serialization) order. */
    std::vector<WalRecord> records;
    /** Durable commit count per producing thread. */
    std::unordered_map<std::uint32_t, std::uint32_t> perThread;
    /** Bytes of an incomplete trailing record discarded as torn. */
    std::uint64_t tornBytes = 0;
    /** Byte offset where the torn tail starts. */
    std::uint64_t tornOffset = 0;
    /** Non-empty: hard rejection (corrupt record), naming the offset. */
    std::string error;

    bool ok() const { return error.empty(); }
};

/**
 * Parse and replay @p n log bytes at @p data. A truncated trailing
 * record is reported via tornBytes/tornOffset and discarded; a
 * complete record failing its magic/length/sequence/CRC checks sets
 * error (with the bad byte offset) and aborts the replay.
 */
WalReplay replayWal(const std::uint8_t *data, std::size_t n);

/** One checkpoint region of the pre-run baseline image. */
struct WalRegion
{
    Addr vbase = 0;
    std::vector<std::uint32_t> words;
};

/** In-memory form of a serialized crash dump. */
struct WalDump
{
    std::uint32_t version = walDumpVersion;
    std::uint32_t tmKind = 0;
    unsigned threads = 0;
    std::uint64_t seed = 0;
    /** Tick of the crash cut; 0 = the run completed. */
    Tick crashTick = 0;
    /** Simulated tick at serialization time. */
    Tick endTick = 0;
    std::string workload;
    /** Resolved workload options, declaration order. */
    std::vector<std::pair<std::string, std::string>> options;
    /** The pre-run baseline image (the store's on-disk state). */
    std::vector<WalRegion> checkpoint;
    /** Log bytes the run generated (durable or not). */
    std::uint64_t logBytesTotal = 0;
    /** The durable log prefix (may end in a torn record). */
    std::vector<std::uint8_t> log;
};

/**
 * Serialize @p dump to @p path.
 * @return true on success; on failure @p err (if non-null) explains.
 */
bool writeWalDump(const std::string &path, const WalDump &dump,
                  std::string *err);

/**
 * Load a dump from @p path into @p out, verifying magic, version and
 * every checkpoint region's CRC.
 * @return true on success; on failure @p err (if non-null) explains.
 */
bool readWalDump(const std::string &path, WalDump &out,
                 std::string *err);

/**
 * The modeled write-ahead log device plus per-transaction redo
 * capture. Built only under `--durability wal` (System holds a
 * nullable unique_ptr), so durability-off runs stay bit-identical.
 */
class WalManager
{
  public:
    WalManager(const PersistParams &prm, TmKind kind);

    /** Attach the event tracer (System wiring; defaults to nil). */
    void setTracer(Tracer *t) { tracer_ = t; }

    /** Attach the cycle profiler (System wiring; defaults to nil). */
    void setProfiler(CycleProfiler *p) { prof_ = p; }

    /** Capture one transactional store into @p tx's redo set. */
    void noteStore(TxId tx, Addr vaddr, std::uint32_t value);

    /** Abort of @p tx: drop its captured redo set. */
    void discard(TxId tx);

    /**
     * Commit of @p tx at tick @p now: assign the next global sequence
     * number and per-thread ordinal, serialize the record, and reserve
     * the ordered flush on the log-device timeline.
     * @return ticks the committing core must stall for durability.
     */
    Tick commitTx(TxId tx, std::uint32_t thread, Tick now);

    /**
     * Durable log prefix length had the power been cut at @p cut:
     * whole appends whose drain finished by then, plus the
     * proportionally-flushed prefix of an in-flight append.
     */
    std::uint64_t durableBytesAt(Tick cut) const;

    /** The full serialized log. */
    const std::vector<std::uint8_t> &log() const { return log_; }

    /** Durable commits so far. */
    std::uint64_t commits() const { return commits_.value(); }

    /** Register this component's statistics under "persist". */
    void regStats(StatRegistry &reg);

  private:
    /** One log append's byte span and device-drain window. */
    struct Append
    {
        std::uint64_t off0 = 0;
        std::uint64_t off1 = 0;
        Tick t0 = 0;
        Tick t1 = 0;
    };

    const PersistParams prm_;
    const TmKind kind_;
    Tracer *tracer_ = &Tracer::nil();
    CycleProfiler *prof_ = nullptr;

    /** Captured redo sets of live transactions. */
    std::unordered_map<TxId, std::vector<std::pair<Addr, std::uint32_t>>>
        pending_;
    /** The serialized log, records in commit-sequence order. */
    std::vector<std::uint8_t> log_;
    /** Append spans, in order (drain windows never overlap). */
    std::vector<Append> appends_;
    /** Tick the log device next falls idle. */
    Tick device_free_ = 0;
    std::uint64_t next_seq_ = 1;
    /** Per-thread commit ordinals (next to assign, 1-based). */
    std::unordered_map<std::uint32_t, std::uint32_t> ordinals_;

    /** @name Statistics */
    /// @{
    Counter commits_;        //!< durable commits logged
    Counter words_;          //!< redo words logged
    Counter bytes_;          //!< log bytes appended
    Counter emptyCommits_;   //!< read-only commits (no record needed)
    Counter stallTicks_;     //!< total durable-commit stall ticks
    Distribution commitWait_{0, 1u << 16, 256};
    /// @}
};

} // namespace ptm

#endif // PTM_PERSIST_WAL_HH
