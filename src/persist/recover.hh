/**
 * @file
 * Crash recovery: rebuild a run's committed state from a crash dump.
 *
 * The recovery path is the proof obligation of the persistence domain:
 * a crash dump (`--wal-file` + `--crash-at-tick` / the chaos crash
 * fault) holds the store's pre-run baseline image plus the durable
 * prefix of the redo log, possibly ending in a torn record. Recovery
 *
 *  1. parses the dump and replays the log (torn tails are discarded
 *     with a diagnostic; structurally complete but corrupt records are
 *     a hard rejection naming the bad byte offset);
 *  2. loads baseline + replayed image into a fresh simulated system of
 *     the dump's TM kind and runs the PTM invariant auditor over it;
 *  3. asks the workload for its committed-prefix oracle — the expected
 *     state after each thread committed exactly the transactions whose
 *     records survived — and compares the recovered image word by
 *     word, bit-exactly.
 *
 * A run is recovered iff the log replayed cleanly, the auditor found
 * no violations, and zero words mismatch. ptm_sim exposes this as
 * `--recover FILE`; tools/crash_sweep.py drives it across seeds.
 */

#ifndef PTM_PERSIST_RECOVER_HH
#define PTM_PERSIST_RECOVER_HH

#include <string>

namespace ptm
{

/**
 * Recover and verify the crash dump at @p path, printing
 * machine-greppable "recover: ..." lines to stdout, ending with
 * "recover: verified yes|no".
 *
 * @return 0 when the recovered image is fully verified, 1 on any
 *         replay rejection, audit violation or image mismatch.
 */
int recoverRun(const std::string &path);

} // namespace ptm

#endif // PTM_PERSIST_RECOVER_HH
