/**
 * @file
 * Write-ahead redo log: capture, serialization, the modeled ordered
 * log device, crash-dump I/O and replay.
 */

#include "persist/wal.hh"

#include <algorithm>
#include <cstdio>
#include <map>

#include "sim/logging.hh"
#include "sim/profile.hh"

namespace ptm
{

namespace
{

/** Append little-endian scalars to a byte buffer. */
void
put32(std::vector<std::uint8_t> &b, std::uint32_t v)
{
    b.push_back(std::uint8_t(v));
    b.push_back(std::uint8_t(v >> 8));
    b.push_back(std::uint8_t(v >> 16));
    b.push_back(std::uint8_t(v >> 24));
}

void
put64(std::vector<std::uint8_t> &b, std::uint64_t v)
{
    put32(b, std::uint32_t(v));
    put32(b, std::uint32_t(v >> 32));
}

void
putStr(std::vector<std::uint8_t> &b, const std::string &s)
{
    put32(b, std::uint32_t(s.size()));
    b.insert(b.end(), s.begin(), s.end());
}

/** Bounds-checked little-endian reader over a byte buffer. */
struct ByteReader
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t off = 0;
    bool fail = false;

    bool
    need(std::size_t n)
    {
        if (fail || size - off < n) {
            fail = true;
            return false;
        }
        return true;
    }

    std::uint32_t
    get32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = std::uint32_t(data[off]) |
                          std::uint32_t(data[off + 1]) << 8 |
                          std::uint32_t(data[off + 2]) << 16 |
                          std::uint32_t(data[off + 3]) << 24;
        off += 4;
        return v;
    }

    std::uint64_t
    get64()
    {
        std::uint64_t lo = get32();
        return lo | std::uint64_t(get32()) << 32;
    }

    std::string
    getStr()
    {
        std::uint32_t n = get32();
        if (!need(n))
            return "";
        std::string s(reinterpret_cast<const char *>(data + off), n);
        off += n;
        return s;
    }
};

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t n)
{
    static std::uint32_t table[256];
    static bool ready = false;
    if (!ready) {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        ready = true;
    }
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

// ------------------------------------------------------------ WalManager

WalManager::WalManager(const PersistParams &prm, TmKind kind)
    : prm_(prm), kind_(kind)
{}

void
WalManager::noteStore(TxId tx, Addr vaddr, std::uint32_t value)
{
    pending_[tx].emplace_back(vaddr, value);
}

void
WalManager::discard(TxId tx)
{
    pending_.erase(tx);
}

Tick
WalManager::commitTx(TxId tx, std::uint32_t thread, Tick now)
{
    // Reduce the captured store stream to its write set: absolute redo
    // values, last store per word, serialized in address order so the
    // record bytes are deterministic.
    std::map<Addr, std::uint32_t> writes;
    auto it = pending_.find(tx);
    if (it != pending_.end()) {
        for (const auto &[a, v] : it->second)
            writes[a] = v;
        pending_.erase(it);
    }
    if (writes.empty())
        ++emptyCommits_;

    // Every commit is logged — read-only ones as empty records — so a
    // record's per-thread ordinal is the thread's transaction index in
    // program order, which is what recovery's oracle prefix needs.
    const std::uint64_t seq = next_seq_++;
    const std::uint32_t ordinal = ++ordinals_[thread];
    const std::size_t off0 = log_.size();
    put32(log_, walRecordMagic);
    const std::uint32_t len =
        std::uint32_t(walRecordHeaderBytes +
                      writes.size() * walRecordWriteBytes +
                      walRecordCrcBytes);
    put32(log_, len);
    put64(log_, seq);
    put64(log_, tx);
    put32(log_, thread);
    put32(log_, ordinal);
    put32(log_, std::uint32_t(kind_));
    put32(log_, std::uint32_t(writes.size()));
    for (const auto &[a, v] : writes) {
        put64(log_, a);
        put32(log_, v);
    }
    put32(log_, crc32(log_.data() + off0, log_.size() - off0));
    const std::uint64_t bytes = log_.size() - off0;

    // Ordered flush: the record drains behind any still-draining
    // predecessor (the log device is strictly ordered), costing the
    // fence latency plus the record's bytes over the device bandwidth.
    const Tick start = std::max(now, device_free_);
    const Tick drain =
        prm_.flushLatency +
        Tick((bytes + prm_.logBytesPerCycle - 1) / prm_.logBytesPerCycle);
    const Tick end = start + drain;
    device_free_ = end;
    appends_.push_back({off0, log_.size(), start, end});
    const Tick stall = end - now;

    ++commits_;
    words_ += writes.size();
    bytes_ += bytes;
    stallTicks_ += stall;
    commitWait_.sample(double(stall));
    if (prof_)
        prof_->charge(ProfCharge::LogFlush, drain);
    tracer_->record(TraceEventType::WalAppend, traceNoId, thread, tx,
                    invalidTxId, bytes, off0, double(seq));
    tracer_->record(TraceEventType::WalFlush, traceNoId, thread, tx,
                    invalidTxId, stall, end);
    return stall;
}

std::uint64_t
WalManager::durableBytesAt(Tick cut) const
{
    std::uint64_t durable = 0;
    for (const Append &a : appends_) {
        if (a.t1 <= cut) {
            durable = a.off1;
            continue;
        }
        if (a.t0 < cut) {
            // In-flight at the cut: the device persisted a
            // proportional prefix — the torn tail.
            std::uint64_t bytes = a.off1 - a.off0;
            durable = a.off0 + bytes * (cut - a.t0) / (a.t1 - a.t0);
        }
        break;
    }
    return durable;
}

void
WalManager::regStats(StatRegistry &reg)
{
    StatGroup &g = reg.addGroup("persist");
    g.addCounter("commits_persisted", &commits_,
                 "commits made durable through the redo log");
    g.addCounter("log_words", &words_,
                 "redo words appended to the log");
    g.addCounter("log_bytes", &bytes_,
                 "bytes appended to the log device");
    g.addCounter("empty_commits", &emptyCommits_,
                 "read-only commits logged with an empty redo set");
    g.addCounter("flush_stall_ticks", &stallTicks_,
                 "total core ticks stalled on ordered log flushes");
    g.addDistribution("commit_persist_wait", &commitWait_,
                      "per-commit stall for the ordered WAL flush");
}

// ------------------------------------------------------------- replay

WalReplay
replayWal(const std::uint8_t *data, std::size_t n)
{
    WalReplay r;
    std::size_t off = 0;
    auto corrupt = [&](const std::string &what) {
        r.error = what + " at log offset " + std::to_string(off);
    };
    auto torn = [&] {
        r.tornOffset = off;
        r.tornBytes = n - off;
    };

    while (off < n) {
        if (n - off < 8) {
            // Not even magic + length survive: a torn tail.
            torn();
            return r;
        }
        ByteReader hdr{data + off, n - off};
        std::uint32_t magic = hdr.get32();
        if (magic != walRecordMagic) {
            // Truncation only ever shortens the tail, so a wrong magic
            // on a readable header is corruption, not a torn record.
            corrupt("bad record magic");
            return r;
        }
        std::uint32_t len = hdr.get32();
        if (len < walRecordHeaderBytes + walRecordCrcBytes ||
            (len - walRecordHeaderBytes - walRecordCrcBytes) %
                    walRecordWriteBytes !=
                0) {
            corrupt("bad record length");
            return r;
        }
        if (n - off < len) {
            torn();
            return r;
        }

        WalRecord rec;
        rec.seq = hdr.get64();
        rec.tx = hdr.get64();
        rec.thread = hdr.get32();
        rec.ordinal = hdr.get32();
        rec.kind = hdr.get32();
        std::uint32_t nwrites = hdr.get32();
        if (len != walRecordHeaderBytes +
                       std::uint64_t(nwrites) * walRecordWriteBytes +
                       walRecordCrcBytes) {
            corrupt("record length disagrees with write count");
            return r;
        }
        std::uint32_t want =
            crc32(data + off, len - walRecordCrcBytes);
        ByteReader tail{data + off + len - walRecordCrcBytes,
                        walRecordCrcBytes};
        if (tail.get32() != want) {
            corrupt("bad record crc");
            return r;
        }
        if (rec.seq != r.records.size() + 1) {
            corrupt("bad commit sequence number");
            return r;
        }
        std::uint32_t expect_ord = r.perThread[rec.thread] + 1;
        if (rec.ordinal != expect_ord) {
            corrupt("bad per-thread commit ordinal");
            return r;
        }

        rec.writes.reserve(nwrites);
        for (std::uint32_t i = 0; i < nwrites; ++i) {
            Addr a = hdr.get64();
            std::uint32_t v = hdr.get32();
            rec.writes.emplace_back(a, v);
            r.image[a] = v;
        }
        r.perThread[rec.thread] = rec.ordinal;
        r.records.push_back(std::move(rec));
        off += len;
    }
    return r;
}

// ------------------------------------------------------------- dump I/O

bool
writeWalDump(const std::string &path, const WalDump &dump,
             std::string *err)
{
    std::vector<std::uint8_t> buf;
    buf.insert(buf.end(), walDumpMagic, walDumpMagic + 8);
    put32(buf, dump.version);
    put32(buf, dump.tmKind);
    put32(buf, dump.threads);
    put64(buf, dump.seed);
    put64(buf, dump.crashTick);
    put64(buf, dump.endTick);
    putStr(buf, dump.workload);
    put32(buf, std::uint32_t(dump.options.size()));
    for (const auto &[k, v] : dump.options) {
        putStr(buf, k);
        putStr(buf, v);
    }
    put32(buf, std::uint32_t(dump.checkpoint.size()));
    for (const WalRegion &reg : dump.checkpoint) {
        put64(buf, reg.vbase);
        put32(buf, std::uint32_t(reg.words.size()));
        std::size_t w0 = buf.size();
        for (std::uint32_t w : reg.words)
            put32(buf, w);
        put32(buf, crc32(buf.data() + w0, buf.size() - w0));
    }
    put64(buf, dump.logBytesTotal);
    put64(buf, std::uint64_t(dump.log.size()));
    buf.insert(buf.end(), dump.log.begin(), dump.log.end());

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        if (err)
            *err = "cannot open " + path + " for writing";
        return false;
    }
    bool ok =
        std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok && err)
        *err = "short write to " + path;
    return ok;
}

bool
readWalDump(const std::string &path, WalDump &out, std::string *err)
{
    auto fail = [&](const std::string &what) {
        if (err)
            *err = path + ": " + what;
        return false;
    };

    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return fail("cannot open for reading");
    std::vector<std::uint8_t> buf;
    std::uint8_t chunk[1 << 16];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        buf.insert(buf.end(), chunk, chunk + got);
    std::fclose(f);

    ByteReader rd{buf.data(), buf.size()};
    if (!rd.need(8) ||
        !std::equal(walDumpMagic, walDumpMagic + 8, buf.data()))
        return fail("not a PTMWAL1 dump (bad magic)");
    rd.off = 8;
    out.version = rd.get32();
    if (out.version != walDumpVersion)
        return fail("unsupported dump version " +
                    std::to_string(out.version));
    out.tmKind = rd.get32();
    out.threads = rd.get32();
    out.seed = rd.get64();
    out.crashTick = rd.get64();
    out.endTick = rd.get64();
    out.workload = rd.getStr();
    std::uint32_t nopts = rd.get32();
    out.options.clear();
    for (std::uint32_t i = 0; i < nopts && !rd.fail; ++i) {
        std::string k = rd.getStr();
        std::string v = rd.getStr();
        out.options.emplace_back(std::move(k), std::move(v));
    }
    std::uint32_t nregions = rd.get32();
    out.checkpoint.clear();
    for (std::uint32_t i = 0; i < nregions && !rd.fail; ++i) {
        WalRegion reg;
        reg.vbase = rd.get64();
        std::uint32_t nwords = rd.get32();
        if (!rd.need(std::size_t(nwords) * 4 + 4))
            break;
        std::size_t w0 = rd.off;
        reg.words.reserve(nwords);
        for (std::uint32_t w = 0; w < nwords; ++w)
            reg.words.push_back(rd.get32());
        std::uint32_t want = crc32(buf.data() + w0, rd.off - w0);
        if (rd.get32() != want)
            return fail("checkpoint region " + std::to_string(i) +
                        " fails its crc");
        out.checkpoint.push_back(std::move(reg));
    }
    out.logBytesTotal = rd.get64();
    std::uint64_t durable = rd.get64();
    if (!rd.need(durable))
        return fail("truncated dump: log shorter than its header "
                    "claims");
    out.log.assign(buf.begin() + rd.off,
                   buf.begin() + rd.off + durable);
    rd.off += durable;
    if (rd.fail)
        return fail("truncated dump header");
    return true;
}

} // namespace ptm
