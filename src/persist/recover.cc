/**
 * @file
 * Crash-recovery driver implementation.
 */

#include "persist/recover.hh"

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "persist/wal.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace ptm
{

namespace
{

void
recLine(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::printf("recover: ");
    std::vprintf(fmt, ap);
    std::printf("\n");
    va_end(ap);
}

/** Print the failure reason and the final verdict line; returns 1. */
int
recReject(const std::string &why)
{
    recLine("error: %s", why.c_str());
    recLine("verified no");
    return 1;
}

/** The word-store program of the loader system. */
TxCoro
loadImage(MemCtx m,
          std::shared_ptr<
              const std::vector<std::pair<Addr, std::uint32_t>>>
              stores)
{
    for (const auto &av : *stores)
        co_await m.store(av.first, av.second);
}

} // namespace

int
recoverRun(const std::string &path)
{
    using ull = unsigned long long;

    WalDump dump;
    std::string err;
    if (!readWalDump(path, dump, &err))
        return recReject(err);
    if (dump.tmKind > std::uint32_t(TmKind::VcVtm))
        return recReject(strprintf("dump names unknown TM kind %u",
                                   dump.tmKind));
    const TmKind kind = TmKind(dump.tmKind);

    recLine("dump %s", path.c_str());
    recLine("workload %s  system %s  threads %u  seed %llu",
            dump.workload.c_str(), tmKindName(kind), dump.threads,
            (ull)dump.seed);
    if (dump.crashTick)
        recLine("crash cut at tick %llu (run end tick %llu)",
                (ull)dump.crashTick, (ull)dump.endTick);
    else
        recLine("run completed at tick %llu", (ull)dump.endTick);
    recLine("log %llu durable bytes of %llu generated",
            (ull)dump.log.size(), (ull)dump.logBytesTotal);

    // --- 1. Replay the durable log prefix. -------------------------
    WalReplay replay = replayWal(dump.log.data(), dump.log.size());
    if (!replay.ok())
        return recReject(replay.error);
    if (replay.tornBytes) {
        // A torn tail is expected on a crash dump — the in-flight
        // append's drain never finished — but a completed run flushed
        // everything, so a tear there means the file itself is bad.
        if (!dump.crashTick)
            return recReject(strprintf(
                "completed-run dump has a torn record: %llu bytes at "
                "log offset %llu",
                (ull)replay.tornBytes, (ull)replay.tornOffset));
        recLine("torn tail: %llu bytes at log offset %llu discarded",
                (ull)replay.tornBytes, (ull)replay.tornOffset);
    }
    for (const WalRecord &r : replay.records) {
        if (r.kind != dump.tmKind)
            return recReject(strprintf(
                "record seq %llu names TM kind %u, dump %u",
                (ull)r.seq, r.kind, dump.tmKind));
        if (r.thread >= dump.threads)
            return recReject(strprintf(
                "record seq %llu names thread %u of %u",
                (ull)r.seq, r.thread, dump.threads));
    }

    std::vector<std::uint64_t> counts(dump.threads, 0);
    for (const auto &tc : replay.perThread)
        counts[tc.first] = tc.second;
    std::string clist;
    for (unsigned t = 0; t < dump.threads; ++t)
        clist += (t ? "," : "") + std::to_string(counts[t]);
    recLine("replayed %zu durable commits (per thread: %s)",
            replay.records.size(), clist.c_str());

    // --- 2. Rebuild the workload for its oracle. -------------------
    const WorkloadInfo *info =
        WorkloadRegistry::instance().find(dump.workload);
    if (!info)
        return recReject(strprintf("dump names unknown workload '%s'",
                                   dump.workload.c_str()));
    WorkloadConfig cfg;
    cfg.threads = dump.threads;
    cfg.mode = syncModeFor(kind);
    cfg.seed = dump.seed;
    if (!WorkloadRegistry::instance().resolve(*info, dump.options,
                                              cfg.options, &err))
        return recReject("dump workload options: " + err);
    std::unique_ptr<Workload> wl = info->factory(cfg);
    if (!wl->persistSupported())
        return recReject(strprintf(
            "workload %s has no committed-prefix oracle",
            dump.workload.c_str()));

    // --- 3. Load baseline + replayed image into a fresh system. ----
    // Every checkpoint word is stored (zeros included) so each page
    // the comparison will read is mapped; the replayed redo image is
    // applied on top in address order.
    auto stores = std::make_shared<
        std::vector<std::pair<Addr, std::uint32_t>>>();
    wl->persistCheckpoint(
        [&](Addr vbase, const std::vector<std::uint32_t> &words) {
            for (std::size_t i = 0; i < words.size(); ++i)
                stores->emplace_back(vbase + Addr(i) * 4, words[i]);
        });
    const std::size_t baseWords = stores->size();
    for (const auto &av : replay.image)
        stores->emplace_back(av.first, av.second);
    recLine("loading %zu baseline + %zu replayed words", baseWords,
            replay.image.size());

    SystemParams lp;
    lp.tmKind = kind;
    lp.numCores = 1;
    lp.seed = dump.seed;
    lp.audit.enabled = true;
    lp.fastForwardOps = 32;
    lp.maxTicks = 20ull * 1000 * 1000 * 1000;
    System sys(lp);
    ProcId proc = sys.createProcess();
    std::vector<Step> steps;
    steps.push_back(PlainStep{[stores](MemCtx m) -> TxCoro {
        return loadImage(m, stores);
    }});
    sys.addThread(proc, std::move(steps), "recover-loader");
    sys.run();

    std::size_t violations = sys.auditor().violations().size();
    if (sys.auditor().attached())
        recLine("audit %llu passes, %zu violations",
                (ull)sys.auditor().checksRun.value(), violations);
    for (const auto &v : sys.auditor().violations())
        recLine("audit-violation: %s (%s): %s", v.check.c_str(),
                v.where.c_str(), v.detail.c_str());

    // --- 4. Bit-exact compare against the committed-prefix oracle. -
    std::uint64_t compared = 0, mismatched = 0;
    Addr firstAddr = 0;
    std::uint32_t firstGot = 0, firstWant = 0;
    wl->persistExpected(counts, [&](Addr a, std::uint32_t want) {
        std::uint32_t got = sys.readWord32(proc, a);
        ++compared;
        if (got != want) {
            if (!mismatched) {
                firstAddr = a;
                firstGot = got;
                firstWant = want;
            }
            ++mismatched;
        }
    });
    recLine("image compare: %llu words, %llu mismatches",
            (ull)compared, (ull)mismatched);
    if (mismatched)
        recLine("first mismatch: vaddr 0x%llx got 0x%08x want 0x%08x",
                (ull)firstAddr, firstGot, firstWant);

    bool ok = violations == 0 && mismatched == 0;
    recLine("verified %s", ok ? "yes" : "no");
    return ok ? 0 : 1;
}

} // namespace ptm
