/**
 * @file
 * Deterministic fault injection ("chaos") engine.
 *
 * PTM's bookkeeping — selection vectors, TAV lists, shadow-page
 * accounting, lazy cleanup walks — is exercised hardest by schedules
 * ordinary workloads rarely produce: aborts landing mid-overflow,
 * metadata caches thrashing, pages swapping under live transactional
 * state, cleanup walks racing thread exits. The ChaosEngine perturbs a
 * run at exactly those points, from a dedicated seeded PRNG stream, so
 * an adversarial schedule is (a) reachable on demand and (b) exactly
 * reproducible from `--chaos-seed` + plan.
 *
 * The engine itself only *decides* (which fault, which victim index,
 * how long a delay); the System owns the injection sites and applies
 * the decisions to components. Like Tracer/CycleProfiler, components
 * hold a ChaosEngine pointer defaulting to the never-active nil()
 * instance, so the disabled path costs one predictable branch per
 * hook and no null checks.
 */

#ifndef PTM_SIM_CHAOS_HH
#define PTM_SIM_CHAOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ptm
{

/** One injectable fault kind, used as a plan bitmask. */
enum class ChaosFault : std::uint32_t
{
    /** Explicitly abort a randomly chosen live transaction. */
    ExplicitAbort = 1u << 0,
    /** Shrink the SPT/TAV caches to a few entries (and restore). */
    CacheSqueeze  = 1u << 1,
    /** Flush a live transaction's cache lines (forced overflow). */
    TxFlush       = 1u << 2,
    /** Force the OS to swap out a page (shadow merges, SIT churn). */
    PageSwap      = 1u << 3,
    /** Preempt a random core with a surprise daemon run. */
    Preempt       = 1u << 4,
    /** Delay commit/abort cleanup walks (polled by the VTS). */
    CleanupDelay  = 1u << 5,
    /**
     * Cut the run at a seeded random tick (power loss): the event
     * queue stops mid-flight and only the persistent image survives.
     * Deliberately excluded from chaosPlanAll — a crash ends the run,
     * so the standing chaos sweeps would never see an end-of-run
     * verification; opt in with `--chaos-plan crash` (requires
     * --durability wal) or use --crash-at-tick directly.
     */
    Crash         = 1u << 6,
};

/** Bitmask with every *run-preserving* fault kind enabled. */
constexpr std::uint32_t chaosPlanAll = 0x3fu;

/** The raw bit of one fault kind. */
constexpr std::uint32_t
chaosFaultMask(ChaosFault f)
{
    return static_cast<std::uint32_t>(f);
}

/** Short name of a fault kind ("abort", "squeeze", ...). */
const char *chaosFaultName(ChaosFault f);

/**
 * Parse a comma-separated fault-plan list ("abort,squeeze", "all")
 * into a bitmask. @return false on an unknown name.
 */
bool parseChaosPlan(const std::string &s, std::uint32_t &mask);

/** Comma-separated plan list for a mask ("abort,delay", "all"). */
std::string chaosPlanString(std::uint32_t mask);

/** Fault-injection configuration, carried inside SystemParams. */
struct ChaosParams
{
    /** Master switch; everything below is inert while false. */
    bool enabled = false;
    /** Seed of the injector's private PRNG stream. */
    std::uint64_t seed = 1;
    /** Enabled fault kinds (chaosFaultMask() bits). */
    std::uint32_t plan = chaosPlanAll;
    /** Ticks between scheduled injections. */
    Tick interval = 50000;
    /** Extra ticks a delayed cleanup walk sits before starting. */
    Tick cleanupDelay = 2000;
    /** SPT/TAV cache capacity while squeezed. */
    unsigned squeezeEntries = 4;
};

/**
 * The decision engine: a seeded PRNG plus the plan. All randomness in
 * the robustness harness flows through rng() so a (chaos seed, plan,
 * workload seed) triple replays the exact same schedule.
 */
class ChaosEngine
{
  public:
    /** Arm the engine. A zero plan leaves it inactive. */
    void configure(const ChaosParams &p);

    /** True once configure() enabled at least one fault kind. */
    bool active() const { return active_; }

    /** True if fault @p f is part of the plan. */
    bool
    planned(ChaosFault f) const
    {
        return active_ && (prm_.plan & chaosFaultMask(f)) != 0;
    }

    const ChaosParams &params() const { return prm_; }

    /** The injector's PRNG (victim choices, jitter). */
    Pcg32 &rng() { return rng_; }

    /**
     * Pick the next scheduled fault among the planned, schedulable
     * kinds (CleanupDelay is polled at its hook instead). Must only be
     * called when active(); returns 0 if nothing is schedulable.
     */
    std::uint32_t pickFault();

    /**
     * Polled by the VTS when a cleanup walk is about to start: the
     * extra delay to impose on this walk (0 = start now). Counts the
     * injection when nonzero.
     */
    Tick cleanupDelay();

    /** @name Injection counters (registered under "chaos") */
    /// @{
    Counter injectedAborts;
    Counter cacheSqueezes;
    Counter txFlushes;
    Counter pageSwaps;
    Counter preempts;
    Counter cleanupDelays;
    Counter crashCuts;
    /// @}

    /** Register the injection counters under the "chaos" group. */
    void regStats(StatRegistry &reg);

    /** A process-wide never-active engine, for un-wired components. */
    static ChaosEngine &nil();

  private:
    bool active_ = false;
    ChaosParams prm_;
    Pcg32 rng_{1, 0x5eed};
    /** Planned schedulable faults, in enum order (deterministic). */
    std::vector<ChaosFault> schedulable_;
};

} // namespace ptm

#endif // PTM_SIM_CHAOS_HH
