/**
 * @file
 * Open-addressing hash map for the simulator's hot lookup paths.
 *
 * std::unordered_map pays one heap allocation per node and a pointer
 * chase per probe; the simulator's hottest indices (SPT entries, TAV
 * list heads, metadata-cache tags, physical frames) are all keyed by
 * small integers and live on paths executed once or more per simulated
 * memory access. FlatMap stores slots contiguously, probes linearly
 * from a mixed hash, and erases by backward shifting, so lookups touch
 * one or two cache lines and erase leaves no tombstones.
 *
 * Semantics intentionally mirror the std::unordered_map subset the
 * simulator uses (find / operator[] / at / erase / size / forEach),
 * with one sharper invalidation rule: *any* insertion may rehash and
 * any erase may backward-shift, so references and pointers into the
 * map are only stable while no other element is inserted or erased.
 * Call sites must not hold a mapped reference across a mutation.
 */

#ifndef PTM_SIM_FLAT_MAP_HH
#define PTM_SIM_FLAT_MAP_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace ptm
{

/**
 * The splitmix64 finalizer: a cheap invertible 64-bit mix with full
 * avalanche. Used by FlatMap for probe distribution and by callers
 * that need to fold two ids into one well-distributed key.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Open-addressing hash map from an integer-like key to T.
 *
 * Capacity is a power of two; load is kept at or below 7/8 before an
 * insertion, which with linear probing keeps expected probe chains
 * short. Keys and mapped values must be default-constructible and
 * movable (erased slots are reset to a default-constructed state).
 */
template <typename Key, typename T>
class FlatMap
{
  public:
    FlatMap() = default;

    /** Pre-size so @p n elements fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = minCapacity;
        while (cap * 7 / 8 < n)
            cap <<= 1;
        if (cap > slots_.size())
            rehash(cap);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Pointer to the mapped value of @p key, or nullptr. */
    T *
    find(const Key &key)
    {
        if (empty())
            return nullptr;
        std::size_t i = findSlot(key);
        return i == npos ? nullptr : &slots_[i].value;
    }

    const T *
    find(const Key &key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    bool contains(const Key &key) const { return find(key) != nullptr; }

    /** Mapped value of @p key; inserts a default-constructed T. */
    T &
    operator[](const Key &key)
    {
        if (T *v = find(key))
            return *v;
        growIfNeeded();
        std::size_t i = insertSlot(key);
        ++size_;
        return slots_[i].value;
    }

    /** Mapped value of @p key, which must be present. */
    T &
    at(const Key &key)
    {
        T *v = find(key);
        panic_if(!v, "FlatMap::at: key not present");
        return *v;
    }

    const T &
    at(const Key &key) const
    {
        return const_cast<FlatMap *>(this)->at(key);
    }

    /**
     * Remove @p key if present (backward-shift deletion: later slots
     * of the probe chain move up, so no tombstones accumulate).
     * @return true if an element was erased.
     */
    bool
    erase(const Key &key)
    {
        if (empty())
            return false;
        std::size_t i = findSlot(key);
        if (i == npos)
            return false;
        const std::size_t mask = slots_.size() - 1;
        slots_[i] = Slot{};
        used_[i] = 0;
        std::size_t j = i;
        while (true) {
            j = (j + 1) & mask;
            if (!used_[j])
                break;
            std::size_t home = idealSlot(slots_[j].key);
            // The entry at j may move up to the hole at i only if its
            // probe chain started at or before i (circular order).
            if (((j - home) & mask) >= ((j - i) & mask)) {
                slots_[i] = std::move(slots_[j]);
                used_[i] = 1;
                slots_[j] = Slot{};
                used_[j] = 0;
                i = j;
            }
        }
        --size_;
        return true;
    }

    /** Drop every element (keeps the current capacity). */
    void
    clear()
    {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            slots_[i] = Slot{};
            used_[i] = 0;
        }
        size_ = 0;
    }

    /**
     * Apply @p fn(key, value&) to every element, in unspecified order.
     * @p fn must not insert into or erase from this map.
     */
    template <typename F>
    void
    forEach(F &&fn)
    {
        for (std::size_t i = 0; i < slots_.size(); ++i)
            if (used_[i])
                fn(slots_[i].key, slots_[i].value);
    }

    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (std::size_t i = 0; i < slots_.size(); ++i)
            if (used_[i])
                fn(slots_[i].key, slots_[i].value);
    }

  private:
    static constexpr std::size_t minCapacity = 16;
    static constexpr std::size_t npos = ~std::size_t(0);

    struct Slot
    {
        Key key{};
        T value{};
    };

    std::size_t
    idealSlot(const Key &key) const
    {
        return std::size_t(mix64(std::uint64_t(key))) &
               (slots_.size() - 1);
    }

    /** Index of @p key's slot, or npos. Capacity must be nonzero. */
    std::size_t
    findSlot(const Key &key) const
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = idealSlot(key);
        while (used_[i]) {
            if (slots_[i].key == key)
                return i;
            i = (i + 1) & mask;
        }
        return npos;
    }

    /** Claim the insertion slot for absent @p key; returns its index. */
    std::size_t
    insertSlot(const Key &key)
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = idealSlot(key);
        while (used_[i])
            i = (i + 1) & mask;
        slots_[i].key = key;
        used_[i] = 1;
        return i;
    }

    void
    growIfNeeded()
    {
        if (slots_.empty())
            rehash(minCapacity);
        else if ((size_ + 1) * 8 > slots_.size() * 7)
            rehash(slots_.size() * 2);
    }

    void
    rehash(std::size_t cap)
    {
        std::vector<Slot> old_slots = std::move(slots_);
        std::vector<std::uint8_t> old_used = std::move(used_);
        // vector(n) default-constructs: keeps move-only mapped types
        // (e.g. unique_ptr frames) usable.
        slots_ = std::vector<Slot>(cap);
        used_.assign(cap, 0);
        for (std::size_t i = 0; i < old_slots.size(); ++i) {
            if (!old_used[i])
                continue;
            std::size_t j = insertSlot(old_slots[i].key);
            slots_[j].value = std::move(old_slots[i].value);
        }
    }

    std::vector<Slot> slots_;
    std::vector<std::uint8_t> used_;
    std::size_t size_ = 0;
};

/**
 * Open-addressing hash set over FlatMap (integer-like keys). Covers
 * the simulator's unordered_set uses: membership tally of page keys.
 */
template <typename Key>
class FlatSet
{
  public:
    /** Add @p key. @return true if it was not yet present. */
    bool
    insert(const Key &key)
    {
        std::size_t before = map_.size();
        map_[key];
        return map_.size() != before;
    }

    bool contains(const Key &key) const { return map_.contains(key); }
    bool erase(const Key &key) { return map_.erase(key); }
    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    void reserve(std::size_t n) { map_.reserve(n); }
    void clear() { map_.clear(); }

  private:
    struct Nothing
    {};
    FlatMap<Key, Nothing> map_;
};

} // namespace ptm

#endif // PTM_SIM_FLAT_MAP_HH
