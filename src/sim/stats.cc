/**
 * @file
 * StatGroup implementation.
 */

#include "sim/stats.hh"

namespace ptm
{

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[n, c] : counters_)
        os << name_ << "." << n << " " << c->value() << "\n";
    for (const auto &[n, a] : averages_)
        os << name_ << "." << n << " " << a->mean() << "\n";
}

std::uint64_t
StatGroup::counterValue(const std::string &stat_name) const
{
    auto it = counters_.find(stat_name);
    return it == counters_.end() ? 0 : it->second->value();
}

} // namespace ptm
