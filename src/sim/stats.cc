/**
 * @file
 * Distribution / StatGroup / StatRegistry / StatSnapshot implementation.
 */

#include "sim/stats.hh"

#include <cmath>

#include "sim/logging.hh"

namespace ptm
{

Distribution::Distribution(double lo, double hi, unsigned buckets)
    : lo_(lo), width_((hi - lo) / double(buckets ? buckets : 1)),
      counts_(buckets ? buckets : 1, 0)
{
    panic_if(hi <= lo, "Distribution bounds [%f, %f) are empty", lo, hi);
    panic_if(buckets == 0, "Distribution needs at least one bucket");
}

void
Distribution::sample(double v, std::uint64_t n)
{
    if (!n)
        return;
    if (!samples_) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    samples_ += n;
    sum_ += v * double(n);

    if (v < lo_) {
        underflow_ += n;
    } else {
        auto i = std::size_t((v - lo_) / width_);
        if (i >= counts_.size())
            overflow_ += n;
        else
            counts_[i] += n;
    }
}

void
Distribution::reset()
{
    for (auto &c : counts_)
        c = 0;
    underflow_ = overflow_ = samples_ = 0;
    sum_ = min_ = max_ = 0;
}

namespace
{

/**
 * Shared percentile estimate over a fixed-bucket histogram. The rank
 * is located in the cumulative counts and interpolated linearly
 * within its bucket; ranks landing in the underflow (overflow) bin
 * resolve to the exact min (max), and the result is clamped to
 * [min, max] so a sparse bucket cannot extrapolate past the data.
 */
double
histPercentile(double p, const std::vector<std::uint64_t> &counts,
               std::uint64_t underflow, std::uint64_t samples,
               double lo, double width, double mn, double mx)
{
    if (!samples)
        return 0.0;
    if (p <= 0.0)
        return mn;
    if (p >= 100.0)
        return mx;
    double rank = std::ceil(p / 100.0 * double(samples));
    if (rank < 1.0)
        rank = 1.0;
    if (rank <= double(underflow))
        return mn;
    double cum = double(underflow);
    for (std::size_t i = 0; i < counts.size(); ++i) {
        double c = double(counts[i]);
        if (c > 0 && rank <= cum + c) {
            double frac = (rank - cum) / c;
            double v = lo + (double(i) + frac) * width;
            return std::min(std::max(v, mn), mx);
        }
        cum += c;
    }
    return mx; // rank fell in the overflow bin
}

} // namespace

double
Distribution::percentile(double p) const
{
    return histPercentile(p, counts_, underflow_, samples_, lo_,
                          width_, min(), max());
}

double
DistSnapshot::percentile(double p) const
{
    return histPercentile(p, counts, underflow, samples, lo, width,
                          min, max);
}

const char *
statKindName(StatKind k)
{
    switch (k) {
      case StatKind::Counter: return "counter";
      case StatKind::Average: return "average";
      case StatKind::TimeWeighted: return "time_weighted";
      case StatKind::Distribution: return "distribution";
      case StatKind::Scalar: return "scalar";
    }
    return "unknown";
}

double
StatRef::numeric() const
{
    switch (kind) {
      case StatKind::Counter:
        return double(counter->value());
      case StatKind::Average:
        return average->mean();
      case StatKind::TimeWeighted:
        return timeWeighted->mean();
      case StatKind::Distribution:
        return distribution->mean();
      case StatKind::Scalar:
        return scalar();
    }
    return 0.0;
}

void
StatGroup::addRef(StatRef ref)
{
    auto [it, inserted] = index_.emplace(ref.name, stats_.size());
    (void)it;
    panic_if(!inserted, "duplicate stat '%s.%s' registered",
             name_.c_str(), ref.name.c_str());
    stats_.push_back(std::move(ref));
}

void
StatGroup::addCounter(const std::string &stat_name, const Counter *c,
                      const std::string &desc)
{
    StatRef r;
    r.name = stat_name;
    r.desc = desc;
    r.kind = StatKind::Counter;
    r.counter = c;
    addRef(std::move(r));
}

void
StatGroup::addAverage(const std::string &stat_name, const Average *a,
                      const std::string &desc)
{
    StatRef r;
    r.name = stat_name;
    r.desc = desc;
    r.kind = StatKind::Average;
    r.average = a;
    addRef(std::move(r));
}

void
StatGroup::addTimeWeighted(const std::string &stat_name,
                           const TimeWeighted *t,
                           const std::string &desc)
{
    StatRef r;
    r.name = stat_name;
    r.desc = desc;
    r.kind = StatKind::TimeWeighted;
    r.timeWeighted = t;
    addRef(std::move(r));
}

void
StatGroup::addDistribution(const std::string &stat_name,
                           const Distribution *d,
                           const std::string &desc)
{
    StatRef r;
    r.name = stat_name;
    r.desc = desc;
    r.kind = StatKind::Distribution;
    r.distribution = d;
    addRef(std::move(r));
}

void
StatGroup::addScalar(const std::string &stat_name,
                     std::function<double()> fn,
                     const std::string &desc)
{
    StatRef r;
    r.name = stat_name;
    r.desc = desc;
    r.kind = StatKind::Scalar;
    r.scalar = std::move(fn);
    addRef(std::move(r));
}

const StatRef *
StatGroup::find(const std::string &stat_name) const
{
    auto it = index_.find(stat_name);
    return it == index_.end() ? nullptr : &stats_[it->second];
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &s : stats_) {
        os << name_ << "." << s.name << " ";
        if (s.kind == StatKind::Counter)
            os << s.counter->value();
        else if (s.kind == StatKind::Distribution)
            os << s.distribution->mean() << " (n="
               << s.distribution->samples() << ")";
        else
            os << s.numeric();
        os << "\n";
    }
}

std::uint64_t
StatGroup::counterValue(const std::string &stat_name) const
{
    const StatRef *s = find(stat_name);
    if (!s || s->kind != StatKind::Counter)
        return 0;
    return s->counter->value();
}

StatGroup &
StatRegistry::addGroup(const std::string &name)
{
    auto [it, inserted] = index_.emplace(name, groups_.size());
    (void)it;
    panic_if(!inserted, "duplicate stat group '%s' registered",
             name.c_str());
    groups_.push_back(std::make_unique<StatGroup>(name));
    return *groups_.back();
}

const StatGroup *
StatRegistry::find(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : groups_[it->second].get();
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &g : groups_)
        g->dump(os);
}

std::uint64_t
StatRegistry::counterValue(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos)
        return 0;
    const StatGroup *g = find(path.substr(0, dot));
    return g ? g->counterValue(path.substr(dot + 1)) : 0;
}

StatSnapshot::StatSnapshot(const StatRegistry &reg)
{
    for (const auto &g : reg.groups()) {
        Group group;
        group.name = g->name();
        for (const StatRef &s : g->stats()) {
            StatValue v;
            v.kind = s.kind;
            switch (s.kind) {
              case StatKind::Counter:
                v.count = s.counter->value();
                v.value = double(v.count);
                break;
              case StatKind::Average:
                v.count = s.average->samples();
                v.value = s.average->mean();
                break;
              case StatKind::TimeWeighted:
                v.value = s.timeWeighted->mean();
                break;
              case StatKind::Scalar:
                v.value = s.scalar();
                // Counter-like reads of integral gauges must work too.
                v.count = v.value > 0 ? std::uint64_t(v.value) : 0;
                break;
              case StatKind::Distribution: {
                const Distribution &d = *s.distribution;
                v.count = d.samples();
                v.value = d.mean();
                v.dist.lo = d.bucketLo();
                v.dist.width = d.bucketWidth();
                v.dist.counts.resize(d.buckets());
                for (unsigned i = 0; i < d.buckets(); ++i)
                    v.dist.counts[i] = d.count(i);
                v.dist.underflow = d.underflow();
                v.dist.overflow = d.overflow();
                v.dist.samples = d.samples();
                v.dist.sum = d.sum();
                v.dist.min = d.min();
                v.dist.max = d.max();
                break;
              }
            }
            index_[group.name + "." + s.name] = v;
            group.stats.emplace_back(s.name, std::move(v));
        }
        groups_.push_back(std::move(group));
    }
}

const StatValue *
StatSnapshot::find(const std::string &path) const
{
    auto it = index_.find(path);
    return it == index_.end() ? nullptr : &it->second;
}

std::uint64_t
StatSnapshot::counter(const std::string &path) const
{
    const StatValue *v = find(path);
    return v ? v->count : 0;
}

double
StatSnapshot::value(const std::string &path) const
{
    const StatValue *v = find(path);
    return v ? v->value : 0.0;
}

} // namespace ptm
