/**
 * @file
 * Implementation of the logging helpers.
 */

#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace ptm
{

namespace
{

bool inform_to_stderr = false;

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        std::vector<char> buf(size_t(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
        out.assign(buf.data(), size_t(n));
    }
    va_end(ap2);
    return out;
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(inform_to_stderr ? stderr : stdout, "info: %s\n",
                 msg.c_str());
}

void
setInformToStderr(bool on)
{
    inform_to_stderr = on;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace ptm
