/**
 * @file
 * Tracer ring buffer and trace-enum name tables.
 */

#include "sim/trace.hh"

namespace ptm
{

const char *
traceEventTypeName(TraceEventType t)
{
    switch (t) {
      case TraceEventType::TxBegin: return "tx_begin";
      case TraceEventType::TxRestart: return "tx_restart";
      case TraceEventType::TxCommit: return "tx_commit";
      case TraceEventType::TxAbort: return "tx_abort";
      case TraceEventType::ConflictEdge: return "conflict_edge";
      case TraceEventType::SptHit: return "spt_hit";
      case TraceEventType::SptMiss: return "spt_miss";
      case TraceEventType::SptEvict: return "spt_evict";
      case TraceEventType::TavHit: return "tav_hit";
      case TraceEventType::TavMiss: return "tav_miss";
      case TraceEventType::TavEvict: return "tav_evict";
      case TraceEventType::WalkStart: return "walk_start";
      case TraceEventType::WalkEnd: return "walk_end";
      case TraceEventType::ShadowAlloc: return "shadow_alloc";
      case TraceEventType::ShadowFree: return "shadow_free";
      case TraceEventType::SelFlip: return "sel_flip";
      case TraceEventType::PageFault: return "page_fault";
      case TraceEventType::SwapOut: return "swap_out";
      case TraceEventType::SwapIn: return "swap_in";
      case TraceEventType::OverflowSpill: return "overflow_spill";
      case TraceEventType::LineEvict: return "line_evict";
      case TraceEventType::Writeback: return "writeback";
      case TraceEventType::CtxSwitch: return "ctx_switch";
      case TraceEventType::Watchpoint: return "watchpoint";
      case TraceEventType::CounterSample: return "counter_sample";
      case TraceEventType::ChaosInject: return "chaos_inject";
      case TraceEventType::WatchdogTrip: return "watchdog_trip";
      case TraceEventType::StarvationGrant: return "starvation_grant";
      case TraceEventType::WalAppend: return "wal_append";
      case TraceEventType::WalFlush: return "wal_flush";
      case TraceEventType::CrashCut: return "crash_cut";
    }
    return "unknown";
}

const char *
traceCatName(TraceCat c)
{
    switch (c) {
      case TraceCat::Tx: return "tx";
      case TraceCat::Conflict: return "conflict";
      case TraceCat::Meta: return "meta";
      case TraceCat::Page: return "page";
      case TraceCat::Cache: return "cache";
      case TraceCat::Os: return "os";
      case TraceCat::Watch: return "watch";
      case TraceCat::Sample: return "sample";
      case TraceCat::Chaos: return "chaos";
      case TraceCat::Persist: return "persist";
    }
    return "unknown";
}

const char *
watchKindName(WatchKind k)
{
    switch (k) {
      case WatchKind::Load: return "load";
      case WatchKind::Store: return "store";
      case WatchKind::Cas: return "cas";
      case WatchKind::Fill: return "fill";
      case WatchKind::SpecDeposit: return "spec-deposit";
      case WatchKind::Cwb: return "cwb";
      case WatchKind::Toggle: return "toggle";
      case WatchKind::Restore: return "restore";
      case WatchKind::Evict: return "evict";
    }
    return "unknown";
}

bool
parseTraceCategories(const std::string &s, std::uint32_t &mask)
{
    static const struct { const char *name; TraceCat cat; } kTable[] = {
        {"tx", TraceCat::Tx},         {"conflict", TraceCat::Conflict},
        {"meta", TraceCat::Meta},     {"page", TraceCat::Page},
        {"cache", TraceCat::Cache},   {"os", TraceCat::Os},
        {"watch", TraceCat::Watch},   {"sample", TraceCat::Sample},
        {"chaos", TraceCat::Chaos},   {"persist", TraceCat::Persist},
    };

    std::uint32_t out = 0;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        std::string tok = s.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        if (tok == "all") {
            out = traceCatAll;
            continue;
        }
        bool found = false;
        for (const auto &e : kTable) {
            if (tok == e.name) {
                out |= traceCatMask(e.cat);
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    mask = out;
    return true;
}

bool
parseTraceFormat(const std::string &s, TraceFormat &fmt)
{
    if (s == "jsonl") {
        fmt = TraceFormat::Jsonl;
        return true;
    }
    if (s == "chrome") {
        fmt = TraceFormat::Chrome;
        return true;
    }
    return false;
}

const char *
traceFormatName(TraceFormat fmt)
{
    return fmt == TraceFormat::Chrome ? "chrome" : "jsonl";
}

void
Tracer::configure(std::uint32_t mask, std::size_t capacity)
{
    mask_ = mask;
    capacity_ = capacity ? capacity : 1;
    buf_.clear();
    buf_.reserve(mask_ ? capacity_ : 0);
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
}

void
Tracer::push(const TraceEvent &e)
{
    ++recorded_;
    if (buf_.size() < capacity_) {
        buf_.push_back(e);
        return;
    }
    // Full: overwrite the oldest slot, keep the newest events.
    buf_[head_] = e;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(buf_.size());
    // head_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < buf_.size(); ++i)
        out.push_back(buf_[(head_ + i) % buf_.size()]);
    return out;
}

unsigned
Tracer::sampleSeries(const std::string &name)
{
    for (unsigned i = 0; i < series_.size(); ++i)
        if (series_[i] == name)
            return i;
    series_.push_back(name);
    return unsigned(series_.size() - 1);
}

Tracer &
Tracer::nil()
{
    static Tracer t;
    return t;
}

} // namespace ptm
