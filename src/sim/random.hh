/**
 * @file
 * Deterministic pseudo-random number generator for the simulator.
 *
 * All stochastic choices in the simulator (workload data, scheduler
 * perturbations) draw from explicitly seeded Pcg32 instances so that a
 * given configuration always produces bit-identical results. Wall-clock
 * time is never consulted anywhere in the code base.
 */

#ifndef PTM_SIM_RANDOM_HH
#define PTM_SIM_RANDOM_HH

#include <cstdint>

namespace ptm
{

/**
 * PCG32 generator (O'Neill, 2014): small state, good statistical
 * quality, and fully deterministic across platforms.
 */
class Pcg32
{
  public:
    /** Construct with a seed and an optional independent stream id. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1u;
        next();
        state_ += seed;
        next();
    }

    /** Next 32 uniformly distributed bits. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            std::uint32_t(((old >> 18) ^ old) >> 27);
        std::uint32_t rot = std::uint32_t(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Next 64 uniformly distributed bits. */
    std::uint64_t
    next64()
    {
        return (std::uint64_t(next()) << 32) | next();
    }

    /**
     * Uniform integer in [0, bound), bias-free via rejection sampling.
     * @param bound must be non-zero.
     */
    std::uint32_t
    below(std::uint32_t bound)
    {
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace ptm

#endif // PTM_SIM_RANDOM_HH
