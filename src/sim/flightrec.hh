/**
 * @file
 * Per-transaction flight recorder and abort post-mortem forensics.
 *
 * The recorder keeps one bounded FlightRecord per live transaction and
 * a fixed-capacity ring of recently-retired ones: begin/restart ticks,
 * the most recent abort events (cause, conflicting address, winner),
 * retry counts, SPT/TAV miss counts, shadow-page allocations, and the
 * wasted ticks the cycle profiler retired against the transaction.
 * Updates are O(1) hash-map bumps, cheap enough to stay always on;
 * `--flightrec-depth 0` removes the recorder entirely (components then
 * hold a null pointer, one never-taken branch per hook).
 *
 * On a trigger — starvation-watchdog trip, starvation-token grant,
 * auditor violation, chaos injection, or a transaction reaching
 * `--postmortem-on-abort=N` aborts — the recorder reconstructs the
 * transitive abort-causality DAG (who killed whom, back K generations)
 * into a bounded PostmortemReport. Nodes are *abort events* (tx,
 * tick), not transactions, and every edge points from a victim's abort
 * to an abort of its killer at a strictly earlier tick, so the graph
 * is acyclic by construction (tools/check_postmortem_json.py verifies
 * this on the emitted `ptm-postmortem-v1` dump).
 *
 * Reconciliation invariants (pinned by the checker and tests):
 *  - wasted-tick totals, including the ticks of records dropped from
 *    the ring, sum exactly to the profiler's tx_wasted bucket on runs
 *    that finish before the tick limit;
 *  - ring overflow is surfaced honestly: `flightrec.dropped_records`
 *    counts evicted records so truncated forensics never read as
 *    complete.
 *
 * The recorder is a pure observer: it never feeds back into simulated
 * timing, so same-seed runs are bit-identical with forensics on or
 * off.
 */

#ifndef PTM_SIM_FLIGHTREC_HH
#define PTM_SIM_FLIGHTREC_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ptm
{

/** What fired a post-mortem capture. */
enum class PostmortemTrigger : std::uint8_t
{
    Watchdog,        //!< starvation-watchdog trip
    StarvationGrant, //!< retry-budget escalation to the token
    AuditViolation,  //!< PTM invariant auditor violation
    ChaosInject,     //!< chaos-injected explicit abort
    AbortThreshold,  //!< a tx reached --postmortem-on-abort=N
};

/** Stable schema name of a trigger ("watchdog", ...). */
const char *postmortemTriggerName(PostmortemTrigger t);

/** One recorded abort of one transaction attempt. */
struct FlightAbortEvent
{
    Tick tick = 0;
    unsigned attempt = 0;         //!< attempt number that aborted
    std::uint8_t cause = 0;       //!< unsigned(AbortReason)
    Addr where = invalidAddr;     //!< conflicting address, if any
    TxId winner = invalidTxId;    //!< killer transaction, if any
};

/** Bounded per-transaction record (live table + retired ring). */
struct FlightRecord
{
    /** Most recent abort events retained per transaction. */
    static constexpr unsigned maxAborts = 4;

    TxId id = invalidTxId;
    ThreadId thread = 0;
    ProcId proc = 0;
    Tick firstBegin = 0;
    Tick lastBegin = 0;   //!< begin tick of the latest attempt
    Tick endTick = 0;     //!< logical-commit tick; 0 while live
    bool committed = false;
    unsigned attempts = 0;
    unsigned abortCount = 0;
    std::uint64_t kills = 0;        //!< conflicts won (others aborted)
    std::uint64_t sptMisses = 0;
    std::uint64_t tavMisses = 0;
    std::uint64_t shadowAllocs = 0;
    /** Profiler-retired wasted ticks attributed to this tx. */
    Tick wastedTicks = 0;
    /**
     * Wall ticks of aborted attempts (attempt begin to abort, summed).
     * Unlike wastedTicks this includes stall time, so it stays
     * meaningful for workloads whose in-transaction execution is pure
     * memory traffic.
     */
    Tick lostTicks = 0;

    /** Newest-last ring of the most recent aborts (by abortCount). */
    FlightAbortEvent recentAborts[maxAborts];

    /** Number of valid entries in recentAborts. */
    unsigned
    storedAborts() const
    {
        return abortCount < maxAborts ? abortCount : maxAborts;
    }

    /** The @p i-th most recent abort (0 = newest); i < storedAborts. */
    const FlightAbortEvent &
    recentAbort(unsigned i) const
    {
        return recentAborts[(abortCount - 1 - i) % maxAborts];
    }
};

/** One node of the abort-causality DAG: an abort event (or, for a
 *  transaction with no recorded abort, a terminal node with tick 0). */
struct PostmortemNode
{
    TxId tx = invalidTxId;
    Tick tick = 0;       //!< abort tick; 0 for a terminal node
    unsigned attempt = 0;
    std::uint8_t cause = 0;
    Addr where = invalidAddr;
    TxId winner = invalidTxId;
    unsigned generation = 0; //!< distance from the subject
};

/** Victim-abort -> killer-abort edge (indices into nodes). */
struct PostmortemEdge
{
    std::size_t from = 0;
    std::size_t to = 0;
};

/** One captured post-mortem: the DAG plus the involved records. */
struct PostmortemReport
{
    PostmortemTrigger trigger = PostmortemTrigger::Watchdog;
    Tick tick = 0;
    TxId subject = invalidTxId;
    std::string detail;
    std::vector<PostmortemNode> nodes; //!< subject's events first
    std::vector<PostmortemEdge> edges;
    /** Flight records of every transaction in nodes, sorted by id. */
    std::vector<FlightRecord> records;
    unsigned chainDepth = 0; //!< deepest generation reached
};

/** Per-transaction kill ranking entry (forensics stats section). */
struct KillerRank
{
    TxId tx = invalidTxId;
    std::uint64_t kills = 0;
    Tick wastedTicks = 0; //!< wasted ticks of the *killer* itself
};

/** By-value capture of the recorder for results / emission. */
struct ForensicsSnapshot
{
    bool enabled = false;
    bool armed = false;
    unsigned depth = 0;
    unsigned generations = 0;
    std::uint64_t liveRecords = 0;
    std::uint64_t retiredRecords = 0;
    std::uint64_t droppedRecords = 0;
    /** Wasted ticks across live + retired + dropped records; equals
     *  the profiler's tx_wasted bucket on runs that complete. */
    Tick wastedTicksTotal = 0;
    Tick droppedWastedTicks = 0;
    Tick maxWastedTicks = 0;
    TxId maxWastedTx = invalidTxId;
    /** Deepest abort-causality chain over all records and reports. */
    unsigned deepestChain = 0;
    std::uint64_t postmortems = 0;
    std::uint64_t droppedReports = 0;
    std::vector<KillerRank> topKillers; //!< kills desc, id asc; <= 5
    std::vector<PostmortemReport> reports;
};

/**
 * The flight recorder. Components hold a plain pointer (null when
 * depth is 0) and guard every hook with one branch, mirroring the
 * heatmap wiring; trigger call sites additionally check armed() so an
 * unarmed run never builds detail strings.
 */
class FlightRecorder
{
  public:
    explicit FlightRecorder(const ForensicsParams &params);

    /** @name Recording hooks (TxManager / Core / Vts) */
    /// @{
    void onBegin(TxId id, ThreadId thread, ProcId proc, Tick now);
    void onRestart(TxId id, Tick now, unsigned attempts);
    /** @p winner is the killer tx (invalidTxId when unattributable). */
    void onAbort(TxId id, Tick now, std::uint8_t cause, Addr where,
                 TxId winner);
    void onCommit(TxId id, Tick now);
    /** Profiler retired @p amount wasted ticks against @p id. */
    void onWasted(TxId id, Tick amount);
    void onSptMiss(TxId id);
    void onTavMiss(TxId id);
    void onShadowAlloc(TxId id);
    /// @}

    /** True when post-mortem capture is armed (triggers do work). */
    bool armed() const { return armed_; }

    /**
     * Capture a post-mortem for @p subject: reconstruct the causality
     * DAG and hand the report to onReport. Bounded per run; no-op
     * unless armed (call sites guard with armed() so the unarmed path
     * stays a single branch and never formats @p detail).
     */
    void trigger(PostmortemTrigger t, TxId subject, Tick now,
                 std::string detail);

    /** Emission sink for each captured report (System wiring). */
    std::function<void(const PostmortemReport &)> onReport;

    /** Replayable repro line echoed in every dump (front-end wiring). */
    void setRepro(std::string repro) { repro_ = std::move(repro); }
    const std::string &repro() const { return repro_; }

    const ForensicsParams &params() const { return params_; }

    /** Reports captured so far (bounded; see droppedReports). */
    const std::vector<PostmortemReport> &reports() const
    {
        return reports_;
    }

    /** Record of @p id (live table, then retired ring), or nullptr. */
    const FlightRecord *record(TxId id) const;

    /** Number of currently-live (unretired) records. */
    std::size_t liveCount() const { return live_.size(); }

    /** Wasted ticks of records evicted from the retired ring. */
    Tick droppedWasted() const { return dropped_wasted_; }

    ForensicsSnapshot snapshot() const;

    /** Register the recorder statistics under "flightrec". */
    void regStats(StatRegistry &reg);

    /** @name Statistics */
    /// @{
    Counter retiredRecords;  //!< records retired into the ring
    Counter droppedRecords;  //!< ring evictions (truncated history)
    Counter postmortems;     //!< post-mortem reports captured
    Counter droppedReports;  //!< triggers dropped at the report cap
    /// @}

  private:
    /** Reports retained per run; later triggers only count. */
    static constexpr std::size_t maxReports = 16;
    /** Node cap per report (maxAborts roots x generations chains). */
    static constexpr std::size_t maxNodes = 64;

    FlightRecord &liveRecord(TxId id);
    /** Most recent abort of @p id strictly before @p bound, or null. */
    const FlightAbortEvent *lastAbortBefore(TxId id, Tick bound) const;
    /** Depth of the latest-killer chain starting at @p rec. */
    unsigned chainDepthOf(const FlightRecord &rec) const;
    void buildDag(PostmortemReport &r, Tick now) const;

    ForensicsParams params_;
    bool armed_ = false;
    std::string repro_;

    FlatMap<TxId, FlightRecord> live_;
    std::vector<FlightRecord> ring_; //!< capacity params_.depth
    std::size_t ring_next_ = 0;
    Tick dropped_wasted_ = 0;

    std::vector<PostmortemReport> reports_;
};

} // namespace ptm

#endif // PTM_SIM_FLIGHTREC_HH
