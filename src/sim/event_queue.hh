/**
 * @file
 * Discrete-event simulation core.
 *
 * The whole simulator is driven by one EventQueue. Components schedule
 * callbacks at future ticks; the queue executes them in (tick, priority,
 * insertion order) order, which makes the simulation fully deterministic.
 */

#ifndef PTM_SIM_EVENT_QUEUE_HH
#define PTM_SIM_EVENT_QUEUE_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/profile.hh"
#include "sim/types.hh"

namespace ptm
{

/**
 * Relative ordering of events scheduled for the same tick. Lower values
 * execute first.
 */
enum class EventPriority : int
{
    /** Coherence/bus/memory completions. */
    Memory = 0,
    /** Supervisor (VTS/VTM) background work. */
    Supervisor = 1,
    /** CPU core execution steps. */
    Cpu = 2,
    /** OS scheduler decisions (timer interrupts, context switches). */
    Os = 3,
    /** Miscellaneous bookkeeping; always last in a tick. */
    Stats = 4,
};

/** Number of distinct EventPriority values. */
constexpr unsigned numEventPriorities = 5;

/** Short name of a priority ("memory", "cpu", ...). */
constexpr const char *
eventPriorityName(EventPriority p)
{
    switch (p) {
      case EventPriority::Memory:
        return "memory";
      case EventPriority::Supervisor:
        return "supervisor";
      case EventPriority::Cpu:
        return "cpu";
      case EventPriority::Os:
        return "os";
      case EventPriority::Stats:
        return "stats";
    }
    return "?";
}

/**
 * The global event queue. Callbacks are std::functions; cancellation is
 * handled by EventHandle tombstones so scheduling stays O(log n).
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Opaque handle to a scheduled event, usable to cancel it. */
    class Handle
    {
      public:
        Handle() = default;

        /** True if the handle refers to a still-pending event. */
        bool
        pending() const
        {
            return alive_ && *alive_;
        }

        /** Cancel the event if still pending. */
        void
        cancel()
        {
            if (alive_)
                *alive_ = false;
        }

      private:
        friend class EventQueue;
        explicit Handle(std::shared_ptr<bool> alive)
            : alive_(std::move(alive))
        {}
        std::shared_ptr<bool> alive_;
    };

    /** Current simulated time. */
    Tick
    curTick() const
    {
        return cur_tick_;
    }

    /** Sentinel site id: attribute to the priority's default site. */
    static constexpr std::uint16_t noSite = 0xffff;

    /**
     * Schedule @p fn to run at absolute tick @p when. @p site (from
     * siteId()) attributes the callback for host profiling; untagged
     * events fall back to their priority's default site.
     * @return a handle that can cancel the event.
     */
    Handle
    schedule(Tick when, EventPriority prio, std::function<void()> fn,
             std::uint16_t site = noSite)
    {
        panic_if(when < cur_tick_,
                 "scheduling event in the past (%llu < %llu)",
                 (unsigned long long)when,
                 (unsigned long long)cur_tick_);
        auto alive = std::make_shared<bool>(true);
        heap_.push(Entry{when, int(prio), site, seq_++, alive,
                         std::move(fn)});
        return Handle(alive);
    }

    /** Schedule @p fn to run @p delta ticks from now. */
    Handle
    scheduleIn(Tick delta, EventPriority prio, std::function<void()> fn,
               std::uint16_t site = noSite)
    {
        return schedule(cur_tick_ + delta, prio, std::move(fn), site);
    }

    /** True if no live events remain. */
    bool
    empty()
    {
        skipDead();
        return heap_.empty();
    }

    /**
     * Execute events until the queue drains or @p limit ticks elapse.
     * @return true if the queue drained, false if the limit was hit.
     */
    bool
    run(Tick limit = maxTick)
    {
        while (!empty()) {
            const Entry &top = heap_.top();
            if (top.when > limit) {
                cur_tick_ = limit;
                return false;
            }
            Entry e = top;
            heap_.pop();
            cur_tick_ = e.when;
            if (*e.alive) {
                *e.alive = false;
                ++executed_[std::size_t(e.prio)];
                if (host_profile_)
                    execProfiled(e);
                else
                    e.fn();
            }
        }
        return true;
    }

    /** Total number of events scheduled (for stats/testing). */
    std::uint64_t
    scheduledEvents() const
    {
        return seq_;
    }

    /** @name Executed-event accounting (always on) */
    /// @{
    /** Events executed at priority @p p. */
    std::uint64_t
    executedEvents(EventPriority p) const
    {
        return executed_[std::size_t(p)];
    }

    /** Events executed at any priority. */
    std::uint64_t
    executedEvents() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t v : executed_)
            n += v;
        return n;
    }
    /// @}

    /** @name Host-side event-loop profiling */
    /// @{
    /**
     * Intern a callback-site name for host profiling; components cache
     * the returned id and pass it to schedule(). Ids 0..4 are the
     * per-priority default sites.
     */
    std::uint16_t
    siteId(const std::string &name)
    {
        auto it = site_index_.find(name);
        if (it != site_index_.end())
            return it->second;
        panic_if(sites_.size() >= noSite, "too many profile sites");
        auto id = std::uint16_t(sites_.size());
        sites_.push_back(SiteCounters{name, 0, 0, 0});
        site_index_.emplace(name, id);
        return id;
    }

    /**
     * Turn on wall-clock profiling of the run loop: per-site event
     * counts, with the host time of every @p sample_interval-th event
     * measured so the overhead stays small.
     */
    void
    enableHostProfile(unsigned sample_interval)
    {
        host_profile_ = true;
        host_interval_ = sample_interval ? sample_interval : 1;
    }

    /** Captured per-site host profile (empty sites elided). */
    HostProfile
    hostProfile() const
    {
        HostProfile h;
        h.enabled = host_profile_;
        h.sampleInterval = host_interval_;
        for (const SiteCounters &s : sites_) {
            if (!s.events)
                continue;
            HostProfile::Site out;
            out.name = s.name;
            out.events = s.events;
            out.sampled = s.sampled;
            out.sampledNs = s.ns;
            h.sites.push_back(std::move(out));
        }
        return h;
    }
    /// @}

  private:
    struct Entry
    {
        Tick when;
        int prio;
        std::uint16_t site;
        std::uint64_t seq;
        std::shared_ptr<bool> alive;
        std::function<void()> fn;
    };

    struct SiteCounters
    {
        std::string name;
        std::uint64_t events = 0;
        std::uint64_t sampled = 0;
        std::uint64_t ns = 0;
    };

    void
    execProfiled(Entry &e)
    {
        std::size_t site = e.site == noSite ? std::size_t(e.prio)
                                            : std::size_t(e.site);
        SiteCounters &s = sites_[site];
        ++s.events;
        if (++host_count_ >= host_interval_) {
            host_count_ = 0;
            auto t0 = std::chrono::steady_clock::now();
            e.fn();
            auto dt = std::chrono::steady_clock::now() - t0;
            s.ns += std::uint64_t(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                    .count());
            ++s.sampled;
        } else {
            e.fn();
        }
    }

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    void
    skipDead()
    {
        while (!heap_.empty() && !*heap_.top().alive)
            heap_.pop();
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick cur_tick_ = 0;
    std::uint64_t seq_ = 0;

    /** Executed-event counters, indexed by priority (always on). */
    std::array<std::uint64_t, numEventPriorities> executed_{};

    /** Site table; slots 0..4 are the per-priority default sites. */
    std::vector<SiteCounters> sites_{
        SiteCounters{"memory", 0, 0, 0},
        SiteCounters{"supervisor", 0, 0, 0},
        SiteCounters{"cpu", 0, 0, 0},
        SiteCounters{"os", 0, 0, 0},
        SiteCounters{"stats", 0, 0, 0},
    };
    std::map<std::string, std::uint16_t> site_index_{
        {"memory", 0}, {"supervisor", 1}, {"cpu", 2},
        {"os", 3},     {"stats", 4},
    };
    bool host_profile_ = false;
    unsigned host_interval_ = 32;
    unsigned host_count_ = 0;
};

} // namespace ptm

#endif // PTM_SIM_EVENT_QUEUE_HH
