/**
 * @file
 * Discrete-event simulation core.
 *
 * The whole simulator is driven by one EventQueue. Components schedule
 * callbacks at future ticks; the queue executes them in (tick, priority,
 * insertion order) order, which makes the simulation fully deterministic.
 */

#ifndef PTM_SIM_EVENT_QUEUE_HH
#define PTM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace ptm
{

/**
 * Relative ordering of events scheduled for the same tick. Lower values
 * execute first.
 */
enum class EventPriority : int
{
    /** Coherence/bus/memory completions. */
    Memory = 0,
    /** Supervisor (VTS/VTM) background work. */
    Supervisor = 1,
    /** CPU core execution steps. */
    Cpu = 2,
    /** OS scheduler decisions (timer interrupts, context switches). */
    Os = 3,
    /** Miscellaneous bookkeeping; always last in a tick. */
    Stats = 4,
};

/**
 * The global event queue. Callbacks are std::functions; cancellation is
 * handled by EventHandle tombstones so scheduling stays O(log n).
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Opaque handle to a scheduled event, usable to cancel it. */
    class Handle
    {
      public:
        Handle() = default;

        /** True if the handle refers to a still-pending event. */
        bool
        pending() const
        {
            return alive_ && *alive_;
        }

        /** Cancel the event if still pending. */
        void
        cancel()
        {
            if (alive_)
                *alive_ = false;
        }

      private:
        friend class EventQueue;
        explicit Handle(std::shared_ptr<bool> alive)
            : alive_(std::move(alive))
        {}
        std::shared_ptr<bool> alive_;
    };

    /** Current simulated time. */
    Tick
    curTick() const
    {
        return cur_tick_;
    }

    /**
     * Schedule @p fn to run at absolute tick @p when.
     * @return a handle that can cancel the event.
     */
    Handle
    schedule(Tick when, EventPriority prio, std::function<void()> fn)
    {
        panic_if(when < cur_tick_,
                 "scheduling event in the past (%llu < %llu)",
                 (unsigned long long)when,
                 (unsigned long long)cur_tick_);
        auto alive = std::make_shared<bool>(true);
        heap_.push(Entry{when, int(prio), seq_++, alive,
                         std::move(fn)});
        return Handle(alive);
    }

    /** Schedule @p fn to run @p delta ticks from now. */
    Handle
    scheduleIn(Tick delta, EventPriority prio, std::function<void()> fn)
    {
        return schedule(cur_tick_ + delta, prio, std::move(fn));
    }

    /** True if no live events remain. */
    bool
    empty()
    {
        skipDead();
        return heap_.empty();
    }

    /**
     * Execute events until the queue drains or @p limit ticks elapse.
     * @return true if the queue drained, false if the limit was hit.
     */
    bool
    run(Tick limit = maxTick)
    {
        while (!empty()) {
            const Entry &top = heap_.top();
            if (top.when > limit) {
                cur_tick_ = limit;
                return false;
            }
            Entry e = top;
            heap_.pop();
            cur_tick_ = e.when;
            if (*e.alive) {
                *e.alive = false;
                e.fn();
            }
        }
        return true;
    }

    /** Total number of events executed (for stats/testing). */
    std::uint64_t
    executedEvents() const
    {
        return seq_;
    }

  private:
    struct Entry
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        std::shared_ptr<bool> alive;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    void
    skipDead()
    {
        while (!heap_.empty() && !*heap_.top().alive)
            heap_.pop();
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick cur_tick_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace ptm

#endif // PTM_SIM_EVENT_QUEUE_HH
