/**
 * @file
 * Discrete-event simulation core.
 *
 * The whole simulator is driven by one EventQueue. Components schedule
 * callbacks at future ticks; the queue executes them in (tick, priority,
 * insertion order) order, which makes the simulation fully deterministic.
 *
 * Host-speed design: event records live in a slab recycled through a
 * freelist, so the steady-state loop performs no heap allocation —
 * callbacks whose captures fit EventFn's inline buffer (statically
 * sized to cover every scheduling site in the simulator, including the
 * memory-system grant path) are stored in place, and cancellation is a
 * generation-counter check instead of a shared_ptr tombstone per
 * handle. The binary heap orders small POD references only.
 */

#ifndef PTM_SIM_EVENT_QUEUE_HH
#define PTM_SIM_EVENT_QUEUE_HH

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/profile.hh"
#include "sim/types.hh"

namespace ptm
{

/**
 * Relative ordering of events scheduled for the same tick. Lower values
 * execute first.
 */
enum class EventPriority : int
{
    /** Coherence/bus/memory completions. */
    Memory = 0,
    /** Supervisor (VTS/VTM) background work. */
    Supervisor = 1,
    /** CPU core execution steps. */
    Cpu = 2,
    /** OS scheduler decisions (timer interrupts, context switches). */
    Os = 3,
    /** Miscellaneous bookkeeping; always last in a tick. */
    Stats = 4,
};

/** Number of distinct EventPriority values. */
constexpr unsigned numEventPriorities = 5;

/** Short name of a priority ("memory", "cpu", ...). */
constexpr const char *
eventPriorityName(EventPriority p)
{
    switch (p) {
      case EventPriority::Memory:
        return "memory";
      case EventPriority::Supervisor:
        return "supervisor";
      case EventPriority::Cpu:
        return "cpu";
      case EventPriority::Os:
        return "os";
      case EventPriority::Stats:
        return "stats";
    }
    return "?";
}

/**
 * Move-only callable holding event callbacks without heap allocation:
 * callables whose size, alignment and nothrow-movability permit are
 * constructed directly in the inline buffer; anything bigger falls
 * back to one heap cell (rare — see the static_asserts below).
 */
class EventFn
{
  public:
    /**
     * Inline storage size. Sized so every scheduling site in the
     * simulator stays inline; the largest is the memory-system grant
     * path capturing [this, Access, std::function callback, Tick].
     */
    static constexpr std::size_t inlineBytes = 112;

    /** True if a callable of type @p F is stored inline (no heap). */
    template <typename F>
    static constexpr bool
    storesInline()
    {
        return sizeof(F) <= inlineBytes &&
               alignof(F) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<F>;
    }

    EventFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn>>>
    EventFn(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (storesInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            ops_ = &heapOps<Fn>;
        }
    }

    EventFn(EventFn &&o) noexcept { moveFrom(o); }

    EventFn &
    operator=(EventFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    /** Destroy the held callable (back to the empty state). */
    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*moveTo)(void *src, void *dst);
        void (*destroy)(void *);
    };

    template <typename F>
    static constexpr Ops inlineOps = {
        [](void *p) { (*static_cast<F *>(p))(); },
        [](void *src, void *dst) {
            F *s = static_cast<F *>(src);
            ::new (dst) F(std::move(*s));
            s->~F();
        },
        [](void *p) { static_cast<F *>(p)->~F(); },
    };

    template <typename F>
    static constexpr Ops heapOps = {
        [](void *p) { (**static_cast<F **>(p))(); },
        [](void *src, void *dst) {
            *static_cast<F **>(dst) = *static_cast<F **>(src);
        },
        [](void *p) { delete *static_cast<F **>(p); },
    };

    void
    moveFrom(EventFn &o) noexcept
    {
        if (o.ops_) {
            o.ops_->moveTo(o.buf_, buf_);
            ops_ = o.ops_;
            o.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[inlineBytes];
    const Ops *ops_ = nullptr;
};

// The common capture shapes must stay inline: a component pointer plus
// a handful of ids/ticks (core steps, supervisor walks), and the
// memory-system shape of [this, 40-byte Access, 32-byte std::function,
// Tick] with alignment padding.
static_assert(EventFn::storesInline<void (*)()>());
static_assert(EventFn::inlineBytes >= 13 * sizeof(void *),
              "inline buffer must hold the memory-grant capture shape");

/**
 * The global event queue. Callbacks live in pooled slab records;
 * cancellation compares a Handle's generation against the slot's, so
 * scheduling stays O(log n) with no per-event allocation.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Opaque handle to a scheduled event, usable to cancel it. */
    class Handle
    {
      public:
        Handle() = default;

        /** True if the handle refers to a still-pending event. */
        bool
        pending() const
        {
            return eq_ && eq_->slotLive(slot_, gen_);
        }

        /** Cancel the event if still pending. */
        void
        cancel()
        {
            if (eq_)
                eq_->cancelSlot(slot_, gen_);
        }

      private:
        friend class EventQueue;
        Handle(EventQueue *eq, std::uint32_t slot, std::uint32_t gen)
            : eq_(eq), slot_(slot), gen_(gen)
        {}
        EventQueue *eq_ = nullptr;
        std::uint32_t slot_ = 0;
        std::uint32_t gen_ = 0;
    };

    /** Current simulated time. */
    Tick
    curTick() const
    {
        return cur_tick_;
    }

    /** Sentinel site id: attribute to the priority's default site. */
    static constexpr std::uint16_t noSite = 0xffff;

    /**
     * Schedule @p fn to run at absolute tick @p when. @p site (from
     * siteId()) attributes the callback for host profiling; untagged
     * events fall back to their priority's default site.
     * @return a handle that can cancel the event.
     */
    template <typename F>
    Handle
    schedule(Tick when, EventPriority prio, F &&fn,
             std::uint16_t site = noSite)
    {
        panic_if(when < cur_tick_,
                 "scheduling event in the past (%llu < %llu)",
                 (unsigned long long)when,
                 (unsigned long long)cur_tick_);
        std::uint32_t slot = allocSlot();
        Record &r = records_[slot];
        r.fn = EventFn(std::forward<F>(fn));
        r.site = site;
        heap_.push(Ref{when, seq_++, slot, r.gen,
                       std::uint8_t(int(prio))});
        return Handle(this, slot, r.gen);
    }

    /** Schedule @p fn to run @p delta ticks from now. */
    template <typename F>
    Handle
    scheduleIn(Tick delta, EventPriority prio, F &&fn,
               std::uint16_t site = noSite)
    {
        return schedule(cur_tick_ + delta, prio, std::forward<F>(fn),
                        site);
    }

    /** True if no live events remain. */
    bool
    empty()
    {
        skipDead();
        return heap_.empty();
    }

    /**
     * Tick of the earliest pending live event, or maxTick if none.
     * During event execution this is the next event *after* the one
     * running — the conservative lookahead bound of the core's
     * direct-execution fast-forward: nothing else can execute before
     * this tick, so effects performed early but logically timestamped
     * strictly before it are unobservable.
     */
    Tick
    nextEventTick()
    {
        skipDead();
        return heap_.empty() ? maxTick : heap_.top().when;
    }

    /**
     * The tick limit of the innermost run() in progress (maxTick when
     * unlimited or idle). Fast-forward must not act past it: events
     * beyond the limit never execute, so neither may batched ops.
     */
    Tick
    runLimit() const
    {
        return run_limit_;
    }

    /**
     * Execute events until the queue drains or @p limit ticks elapse.
     * @return true if the queue drained, false if the limit was hit.
     */
    bool
    run(Tick limit = maxTick)
    {
        run_limit_ = limit;
        while (!empty()) {
            const Ref &top = heap_.top();
            if (top.when > limit) {
                cur_tick_ = limit;
                return false;
            }
            Ref ref = top;
            heap_.pop();
            cur_tick_ = ref.when;
            Record &r = records_[ref.slot];
            // empty() skipped dead refs, so this one is live. Move the
            // callback out and recycle the slot *before* invoking: the
            // callback may schedule (growing the slab) or cancel.
            EventFn fn = std::move(r.fn);
            std::uint16_t site = r.site;
            freeSlot(ref.slot);
            ++executed_[std::size_t(ref.prio)];
            if (host_profile_)
                execProfiled(fn, site, ref.prio);
            else
                fn();
        }
        return true;
    }

    /** Total number of events scheduled (for stats/testing). */
    std::uint64_t
    scheduledEvents() const
    {
        return seq_;
    }

    /** @name Executed-event accounting (always on) */
    /// @{
    /** Events executed at priority @p p. */
    std::uint64_t
    executedEvents(EventPriority p) const
    {
        return executed_[std::size_t(p)];
    }

    /** Events executed at any priority. */
    std::uint64_t
    executedEvents() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t v : executed_)
            n += v;
        return n;
    }
    /// @}

    /** @name Slab introspection (tests / diagnostics) */
    /// @{
    /** Event records ever allocated (high-water mark of in-flight). */
    std::size_t
    slabSlots() const
    {
        return records_.size();
    }

    /** Records currently on the freelist. */
    std::size_t
    freeSlots() const
    {
        return free_.size();
    }
    /// @}

    /** @name Host-side event-loop profiling */
    /// @{
    /**
     * Intern a callback-site name for host profiling; components cache
     * the returned id and pass it to schedule(). Ids 0..4 are the
     * per-priority default sites.
     */
    std::uint16_t
    siteId(const std::string &name)
    {
        auto it = site_index_.find(name);
        if (it != site_index_.end())
            return it->second;
        panic_if(sites_.size() >= noSite, "too many profile sites");
        auto id = std::uint16_t(sites_.size());
        sites_.push_back(SiteCounters{name, 0, 0, 0});
        site_index_.emplace(name, id);
        return id;
    }

    /**
     * Turn on wall-clock profiling of the run loop: per-site event
     * counts, with the host time of every @p sample_interval-th event
     * measured so the overhead stays small.
     */
    void
    enableHostProfile(unsigned sample_interval)
    {
        host_profile_ = true;
        host_interval_ = sample_interval ? sample_interval : 1;
    }

    /** Captured per-site host profile (empty sites elided). */
    HostProfile
    hostProfile() const
    {
        HostProfile h;
        h.enabled = host_profile_;
        h.sampleInterval = host_interval_;
        for (const SiteCounters &s : sites_) {
            if (!s.events)
                continue;
            HostProfile::Site out;
            out.name = s.name;
            out.events = s.events;
            out.sampled = s.sampled;
            out.sampledNs = s.ns;
            h.sites.push_back(std::move(out));
        }
        return h;
    }
    /// @}

  private:
    /** Pooled event record; the callback never leaves the slab until
     *  execution. gen counts reuses: a Ref or Handle whose gen does
     *  not match is stale (executed or cancelled). */
    struct Record
    {
        EventFn fn;
        std::uint32_t gen = 0;
        std::uint16_t site = noSite;
    };

    /** Heap element: ordering key plus the slab reference. POD. */
    struct Ref
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
        std::uint8_t prio;
    };

    struct SiteCounters
    {
        std::string name;
        std::uint64_t events = 0;
        std::uint64_t sampled = 0;
        std::uint64_t ns = 0;
    };

    struct Later
    {
        bool
        operator()(const Ref &a, const Ref &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    std::uint32_t
    allocSlot()
    {
        if (!free_.empty()) {
            std::uint32_t slot = free_.back();
            free_.pop_back();
            return slot;
        }
        panic_if(records_.size() >= 0xffffffffull,
                 "event slab exhausted");
        records_.emplace_back();
        return std::uint32_t(records_.size() - 1);
    }

    /** Retire a live slot: destroy its callback, bump the generation
     *  (invalidating outstanding Refs/Handles) and recycle it. */
    void
    freeSlot(std::uint32_t slot)
    {
        Record &r = records_[slot];
        r.fn.reset();
        ++r.gen;
        r.site = noSite;
        free_.push_back(slot);
    }

    bool
    slotLive(std::uint32_t slot, std::uint32_t gen) const
    {
        return slot < records_.size() && records_[slot].gen == gen;
    }

    void
    cancelSlot(std::uint32_t slot, std::uint32_t gen)
    {
        if (slotLive(slot, gen))
            freeSlot(slot); // the stale heap Ref is skipped on pop
    }

    void
    execProfiled(EventFn &fn, std::uint16_t site, std::uint8_t prio)
    {
        std::size_t idx = site == noSite ? std::size_t(prio)
                                         : std::size_t(site);
        SiteCounters &s = sites_[idx];
        ++s.events;
        if (++host_count_ >= host_interval_) {
            host_count_ = 0;
            auto t0 = std::chrono::steady_clock::now();
            fn();
            auto dt = std::chrono::steady_clock::now() - t0;
            s.ns += std::uint64_t(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                    .count());
            ++s.sampled;
        } else {
            fn();
        }
    }

    void
    skipDead()
    {
        while (!heap_.empty()) {
            const Ref &top = heap_.top();
            if (records_[top.slot].gen == top.gen)
                break;
            heap_.pop();
        }
    }

    std::priority_queue<Ref, std::vector<Ref>, Later> heap_;
    std::vector<Record> records_;
    std::vector<std::uint32_t> free_;
    Tick cur_tick_ = 0;
    Tick run_limit_ = maxTick;
    std::uint64_t seq_ = 0;

    /** Executed-event counters, indexed by priority (always on). */
    std::array<std::uint64_t, numEventPriorities> executed_{};

    /** Site table; slots 0..4 are the per-priority default sites. */
    std::vector<SiteCounters> sites_{
        SiteCounters{"memory", 0, 0, 0},
        SiteCounters{"supervisor", 0, 0, 0},
        SiteCounters{"cpu", 0, 0, 0},
        SiteCounters{"os", 0, 0, 0},
        SiteCounters{"stats", 0, 0, 0},
    };
    std::map<std::string, std::uint16_t> site_index_{
        {"memory", 0}, {"supervisor", 1}, {"cpu", 2},
        {"os", 3},     {"stats", 4},
    };
    bool host_profile_ = false;
    unsigned host_interval_ = 32;
    unsigned host_count_ = 0;
};

} // namespace ptm

#endif // PTM_SIM_EVENT_QUEUE_HH
