/**
 * @file
 * Central configuration for a simulated system.
 *
 * Defaults reproduce the machine evaluated in the PTM paper (section
 * 6.1): a 4-node CMP with private 16 KB direct-mapped L1 (1 cycle) and
 * 256 KB 4-way L2 (6 cycles), a snoopy MOESI bus with a 20-cycle minimum
 * round trip, 200-cycle main memory with 3 pipelined requests, a
 * 512-entry fully-associative TLB over 4 KB pages, a 512-entry SPT cache
 * and a 2048-entry TAV cache in the memory controller.
 */

#ifndef PTM_SIM_CONFIG_HH
#define PTM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/chaos.hh"
#include "sim/profile.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace ptm
{

/** Which unbounded-TM / synchronization system the machine runs. */
enum class TmKind
{
    /** No concurrency: single-threaded run (speedup baseline). */
    Serial,
    /** Lock-based multithreading through the coherence protocol. */
    Locks,
    /** PTM with copy-on-first-overflow versioning (fast commit). */
    CopyPtm,
    /** PTM with selection vectors (fast commit and abort). */
    SelectPtm,
    /** The VTM baseline (XF + XADT + XADC). */
    Vtm,
    /** VTM with a victim cache buffering evicted block data. */
    VcVtm,
};

/** Conflict-detection granularity (Figure 5 of the paper). */
enum class Granularity
{
    /** Default: detect conflicts per 64-byte cache block. */
    Block,
    /**
     * "wd:cache": word-granularity detection inside the caches, but the
     * overflowed PTM structures still track one writer per block, so an
     * eviction of a multi-writer block aborts the younger writers.
     */
    WordCache,
    /**
     * "wd:cache+mem": word granularity end to end; TAV / summary /
     * selection vectors all hold one bit per 4-byte word.
     */
    WordCacheMem,
};

/** How Select-PTM shadow pages are reclaimed (section 3.5.2). */
enum class ShadowFreePolicy
{
    /** Merge shadow into home when the OS swaps the home page out. */
    MergeOnSwap,
    /**
     * Lazily migrate committed blocks back to the home page on
     * non-speculative writebacks; free the shadow page once the
     * selection vector is fully clear.
     */
    LazyMigrate,
};

/** Commit-durability policy of the persistence domain (src/persist). */
enum class Durability
{
    /** Volatile TM: commits survive only in the coherence domain. */
    Off,
    /**
     * Write-ahead redo logging: every commit appends its redo set
     * (Select-PTM selection-bit flips / Copy-PTM shadow-to-home copy
     * sets, both carried as absolute word values) to an ordered log
     * device and stalls until the ordered flush drains.
     */
    Wal,
};

/** Returns a short human-readable label ("Sel-PTM", "VC-VTM", ...). */
const char *tmKindName(TmKind k);

/** Returns the --system argument spelling ("sel-ptm", "vc-vtm", ...):
 *  the inverse of parseTmKind, used by reproducer lines. */
const char *tmKindArg(TmKind k);

/** Returns the Figure 5 label for a granularity mode. */
const char *granularityName(Granularity g);

/**
 * Parse a CLI system-kind spelling ("serial", "locks", "copy-ptm",
 * "sel-ptm", "vtm", "vc-vtm") into @p out.
 * @return false if @p s names no kind (@p out untouched).
 */
bool parseTmKind(const std::string &s, TmKind &out);

/**
 * Parse a CLI granularity spelling ("blk", "wd:cache", "wd:cache+mem")
 * into @p out.
 * @return false if @p s names no mode (@p out untouched).
 */
bool parseGranularity(const std::string &s, Granularity &out);

/** Returns the --durability argument spelling ("off", "wal"). */
const char *durabilityName(Durability d);

/**
 * Parse a CLI durability spelling ("off", "wal") into @p out.
 * @return false if @p s names no policy (@p out untouched).
 */
bool parseDurability(const std::string &s, Durability &out);

/** Persistence-domain configuration (src/persist/wal.{hh,cc}). */
struct PersistParams
{
    /** Commit-durability policy; Off builds no WalManager at all. */
    Durability policy = Durability::Off;
    /**
     * Crash/recovery dump sink: when set, the surviving persistent
     * image (workload checkpoint + durable log prefix) is serialized
     * here at end of run — whether the run completed or was cut by a
     * crash. Consumed by `ptm_sim --recover` and tools/check_wal.py.
     */
    std::string walPath;
    /**
     * Crash injection: cut the run at this simulated tick (0 = none).
     * The cut is a pure run-limit truncation — no drain, no cleanup —
     * so partially-flushed log appends survive as torn tails.
     */
    Tick crashAtTick = 0;
    /**
     * Ordered-flush base latency charged per commit: the fence +
     * persist-barrier cost of draining the commit record to the log
     * device (HTPM-style ordered flush).
     */
    Tick flushLatency = 300;
    /** Log-device write bandwidth in bytes per cycle. */
    std::uint64_t logBytesPerCycle = 16;

    /** The persistence domain is built (WalManager constructed). */
    bool enabled() const { return policy != Durability::Off; }
};


/** PTM invariant-auditor configuration (ptm/audit.{hh,cc}). */
struct AuditParams
{
    /** Master switch; the auditor is never built while false. */
    bool enabled = false;
    /** Ticks between periodic full audits (0 = boundaries only). */
    Tick interval = 100000;
    /** Also audit at every logical commit/abort boundary. */
    bool atBoundaries = true;
};

/** Contention-robustness knobs (tx/tx_manager, cpu/core). */
struct ContentionParams
{
    /**
     * Randomize the exponential abort-restart backoff: the delay is
     * drawn uniformly from the upper half of the deterministic
     * exponential window (seeded per core, so still reproducible).
     * Off preserves the fixed schedule bit-for-bit.
     */
    bool randomBackoff = false;
    /**
     * Consecutive aborts of one transaction before the starvation
     * watchdog trips (stats + trace event). 0 disables the watchdog.
     */
    unsigned watchdogThreshold = 16;
    /**
     * Consecutive aborts after which a transaction may claim the
     * serialized "starvation mode" token, winning every subsequent
     * arbitration until it commits. 0 disables escalation.
     */
    unsigned retryBudget = 0;
};

/** Time-series telemetry configuration (sim/timeseries.{hh,cc}). */
struct TimeseriesParams
{
    /**
     * Stream sink: empty = no stream, "stderr" = live emission to
     * stderr (--live-stats), anything else = a JSONL file. Within one
     * process the first run truncates a file sink; later runs append,
     * each starting with its own header record.
     */
    std::string path;
    /** Sampling period in simulated ticks. */
    Tick interval = 100000;
    /** Keep the interval records in memory (bench post-processing). */
    bool capture = false;

    /** The sampler is built when streaming or capturing. */
    bool enabled() const { return capture || !path.empty(); }
};

/** Contention-heatmap configuration (ptm/heatmap.{hh,cc}). */
struct HeatmapParams
{
    /** Master switch; no hooks are attached while false. */
    bool enabled = false;
    /** Keys tracked per metric (space-saving summary capacity). */
    unsigned topK = 64;
};

/** Flight-recorder / post-mortem configuration (sim/flightrec). */
struct ForensicsParams
{
    /**
     * Retired-transaction records retained in the recorder ring.
     * 0 disables the recorder entirely (every hook becomes one
     * never-taken branch). The recorder is cheap enough to default on.
     */
    unsigned depth = 256;
    /** Generations of abort causality the post-mortem DAG walks. */
    unsigned generations = 8;
    /**
     * Post-mortem dump sink: empty = no dump, "-"/"stderr" = stderr,
     * anything else = a ptm-postmortem-v1 JSON file. Setting a path
     * arms every trigger (watchdog trip, starvation grant, auditor
     * violation, chaos injection).
     */
    std::string postmortemPath;
    /**
     * Also trigger a post-mortem when any single transaction reaches
     * this many aborts (0 = only the built-in triggers).
     */
    unsigned onAbortThreshold = 0;

    /** The recorder runs (always-on unless depth is zeroed). */
    bool enabled() const { return depth != 0; }
    /** Post-mortem capture is armed (triggers take reports). */
    bool armed() const
    {
        return enabled() &&
               (!postmortemPath.empty() || onAbortThreshold != 0);
    }
};

/** All tunables of one simulated system instance. */
struct SystemParams
{
    /** Number of CPU cores (paper: 4 nodes). */
    unsigned numCores = 4;

    /** @name L1 cache (16 KB direct-mapped, 1-cycle latency) */
    /// @{
    std::uint64_t l1Bytes = 16 * 1024;
    unsigned l1Assoc = 1;
    Tick l1Latency = 1;
    /// @}

    /** @name L2 cache (256 KB 4-way, 6-cycle latency) */
    /// @{
    std::uint64_t l2Bytes = 256 * 1024;
    unsigned l2Assoc = 4;
    Tick l2Latency = 6;
    /// @}

    /** Minimum round-trip latency of the on-chip snoopy bus. */
    Tick busLatency = 20;

    /**
     * Number of independently-arbitrated interconnect banks, selected
     * by block address (power of two). 1 reproduces the paper's single
     * snoopy bus bit-exactly; larger counts let coherence traffic to
     * disjoint banks proceed in parallel, which is what lets the
     * simulated machine scale to 16/32/64 cores. Coherence order
     * becomes per-bank grant order — sufficient because conflict
     * detection is per-block and a block maps to exactly one bank.
     */
    unsigned memBanks = 1;

    /**
     * Host-side direct-execution fast-forward: batch up to this many
     * non-transactional memory/compute ops per event-loop dispatch
     * when the core has no open transaction and the next pending event
     * is far enough away that the batch cannot be observed out of
     * order (conservative lookahead). 0 disables batching (the
     * default); simulated results are bit-exact either way — only the
     * host event count changes.
     */
    unsigned fastForwardOps = 0;

    /** Main-memory access latency (minimum). */
    Tick dramLatency = 200;
    /** Number of memory requests that can be pipelined. */
    unsigned dramPipeline = 3;
    /** Bank occupancy of a posted write (bandwidth, not latency). */
    Tick dramWriteOccupancy = 60;

    /** TLB entries (fully associative). */
    unsigned tlbEntries = 512;
    /** Latency of a hardware page-table walk on TLB miss. */
    Tick tlbWalkLatency = 40;
    /** Extra latency of the software exception path on a page fault. */
    Tick pageFaultLatency = 400;

    /** Physical memory size in 4 KB frames (64 MB default). */
    std::uint64_t physFrames = 16 * 1024;
    /** Whether the OS may swap pages to the swap device. */
    bool swapEnabled = false;
    /** Latency of swapping one page in or out. */
    Tick swapLatency = 4000;

    /** Scheduler time slice; 0 disables preemptive switches. */
    Tick osQuantum = 500 * 1000;
    /** Context-switch overhead charged to the core. */
    Tick contextSwitchLatency = 600;
    /** Mean interval between spontaneous OS daemon preemptions; 0 off. */
    Tick daemonInterval = 2 * 1000 * 1000;
    /** Length of a daemon preemption. */
    Tick daemonRunLength = 5000;

    /** @name PTM Virtual Transaction Supervisor */
    /// @{
    unsigned sptCacheEntries = 512;
    unsigned tavCacheEntries = 2048;
    /** Cycles for an SPT/TAV cache hit lookup. */
    Tick vtsCacheLatency = 2;
    ShadowFreePolicy shadowFree = ShadowFreePolicy::MergeOnSwap;
    /// @}

    /** @name VTM baseline */
    /// @{
    /** XF counting Bloom filter entries (paper: 1.6 million). */
    std::uint64_t xfEntries = 1600 * 1000;
    /**
     * XADC metadata-cache entries; paper sets the capacity equal to the
     * combined SPT + TAV cache capacity.
     */
    unsigned xadcEntries = 512 + 2048;
    /** Victim-cache entries for VC-VTM data buffering. */
    unsigned victimCacheEntries = 512 + 2048;
    /// @}

    /** Which TM/synchronization system to build. */
    TmKind tmKind = TmKind::SelectPtm;
    /** Conflict-detection granularity. */
    Granularity granularity = Granularity::Block;
    /**
     * Extra bus occupancy per coherence transaction in word-granularity
     * cache modes (the paper notes wd modes add coherence traffic).
     */
    Tick wordCoherenceOverhead = 2;

    /** Cycles to take/restore a register checkpoint. */
    Tick checkpointLatency = 4;
    /** Cycles for the logical commit (T-State flip + flash clear). */
    Tick commitLatency = 12;
    /** Fixed OS cost of a barrier arrival. */
    Tick barrierLatency = 20;
    /** Restart delay after an abort before re-executing. */
    Tick abortRestartLatency = 40;

    /**
     * Ablation: flush (overflow) a departing thread's transactional
     * cache lines on every context switch, as VTM requires, instead of
     * PTM's transaction-ID-tagged lines that stay put (section 4.7).
     */
    bool flushOnContextSwitch = false;

    /** Event tracing (off unless trace.path is set). */
    TraceParams trace;

    /** Cycle-accounting / host profiling (off by default). */
    ProfileParams profile;

    /** Deterministic fault injection (off by default). */
    ChaosParams chaos;

    /** PTM invariant auditing (off by default). */
    AuditParams audit;

    /** Contention-robustness knobs (watchdog on, escalation off). */
    ContentionParams contention;

    /** Time-series telemetry (off by default). */
    TimeseriesParams timeseries;

    /** Per-page contention heatmap (off by default). */
    HeatmapParams heatmap;

    /** Transaction flight recorder / post-mortem (recorder on). */
    ForensicsParams forensics;

    /** Commit durability / crash injection (off by default). */
    PersistParams persist;

    /** Master RNG seed. */
    std::uint64_t seed = 1;

    /** Hard cap on simulated ticks (0 = unlimited). */
    Tick maxTicks = 0;
};

/**
 * Validate the machine-scaling parameters of @p prm. Returns the empty
 * string when valid, otherwise a human-readable diagnostic naming the
 * offending option and the accepted range:
 *
 *  - numCores must be 1..64 (sharer-filter masks are one 64-bit word);
 *  - memBanks must be a non-zero power of two (block addresses are
 *    interleaved with a mask);
 *  - memBanks must not exceed 256 (beyond that every bank is idle).
 *
 * System's constructor calls this and aborts with the message; CLI
 * front ends call it first to exit with a clean diagnostic instead.
 */
std::string validateParams(const SystemParams &prm);

} // namespace ptm

#endif // PTM_SIM_CONFIG_HH
