/**
 * @file
 * Cycle-accounting profiler implementation.
 */

#include "sim/profile.hh"

#include "sim/logging.hh"

namespace ptm
{

const char *
profBucketName(ProfBucket b)
{
    switch (b) {
      case ProfBucket::Idle:
        return "idle";
      case ProfBucket::NonTx:
        return "non_tx";
      case ProfBucket::TxUseful:
        return "tx_useful";
      case ProfBucket::TxWasted:
        return "tx_wasted";
      case ProfBucket::StallL1:
        return "stall_l1";
      case ProfBucket::StallL2:
        return "stall_l2";
      case ProfBucket::StallMem:
        return "stall_mem";
      case ProfBucket::StallXlat:
        return "stall_xlat";
      case ProfBucket::FaultSwap:
        return "fault_swap";
      case ProfBucket::TxBegin:
        return "tx_begin";
      case ProfBucket::TxCommit:
        return "tx_commit";
      case ProfBucket::TxAbort:
        return "tx_abort";
      case ProfBucket::CtxSwitch:
        return "ctx_switch";
      case ProfBucket::Barrier:
        return "barrier";
      case ProfBucket::TxPersist:
        return "tx_persist";
      case ProfBucket::NumBuckets:
        break;
    }
    return "?";
}

const char *
profChargeName(ProfCharge c)
{
    switch (c) {
      case ProfCharge::MetaLookup:
        return "meta_lookup";
      case ProfCharge::TavLookup:
        return "tav_lookup";
      case ProfCharge::CommitCleanup:
        return "commit_cleanup";
      case ProfCharge::AbortCleanup:
        return "abort_cleanup";
      case ProfCharge::OverflowSpill:
        return "overflow_spill";
      case ProfCharge::FalseStall:
        return "false_stall";
      case ProfCharge::PageFault:
        return "page_fault";
      case ProfCharge::SwapIo:
        return "swap_io";
      case ProfCharge::CommittedTxTicks:
        return "committed_tx_ticks";
      case ProfCharge::AbortedTxTicks:
        return "aborted_tx_ticks";
      case ProfCharge::LogFlush:
        return "log_flush";
      case ProfCharge::NumCharges:
        break;
    }
    return "?";
}

void
CycleProfiler::configure(unsigned cores)
{
    panic_if(cores == 0, "profiling zero cores");
    lanes_.assign(cores, Lane{});
    for (Lane &l : lanes_)
        l.stack.push_back(std::uint8_t(ProfBucket::Idle));
    charges_.fill(0);
    end_ = 0;
    enabled_ = true;
}

CycleProfiler::Lane &
CycleProfiler::lane(unsigned core)
{
    panic_if(core >= lanes_.size(), "profiling unknown core %u", core);
    return lanes_[core];
}

void
CycleProfiler::accrue(Lane &l, Tick now)
{
    if (now > l.last) {
        std::uint8_t top = l.stack.back();
        if (top == kPending)
            l.pending += now - l.last;
        else
            l.buckets[top] += now - l.last;
        l.last = now;
    }
}

void
CycleProfiler::doSet(unsigned core, std::uint8_t b)
{
    Lane &l = lane(core);
    accrue(l, now());
    l.stack.back() = b;
}

void
CycleProfiler::doPush(unsigned core, std::uint8_t b)
{
    Lane &l = lane(core);
    accrue(l, now());
    l.stack.push_back(b);
}

void
CycleProfiler::doPop(unsigned core)
{
    Lane &l = lane(core);
    accrue(l, now());
    panic_if(l.stack.size() <= 1,
             "phase pop would empty core %u's stack", core);
    l.stack.pop_back();
}

Tick
CycleProfiler::doResolveTx(unsigned core, bool committed)
{
    Lane &l = lane(core);
    accrue(l, now());
    ProfBucket to =
        committed ? ProfBucket::TxUseful : ProfBucket::TxWasted;
    Tick retired = l.pending;
    l.buckets[unsigned(to)] += retired;
    l.pending = 0;
    return retired;
}

void
CycleProfiler::doCollapse(unsigned core, std::uint8_t b)
{
    Lane &l = lane(core);
    accrue(l, now());
    l.stack.resize(1);
    l.stack.back() = b;
}

void
CycleProfiler::finish(Tick end)
{
    if (!enabled_)
        return;
    end_ = end;
    for (Lane &l : lanes_) {
        accrue(l, end);
        // Attempts still unresolved at the end of a (tick-limited) run
        // never committed: their execution was wasted.
        l.buckets[unsigned(ProfBucket::TxWasted)] += l.pending;
        l.pending = 0;
    }
}

ProfSnapshot
CycleProfiler::snapshot() const
{
    ProfSnapshot s;
    s.enabled = enabled_;
    s.elapsed = end_;
    for (const Lane &l : lanes_)
        s.cores.push_back(l.buckets);
    s.charges = charges_;
    return s;
}

CycleProfiler &
CycleProfiler::nil()
{
    static CycleProfiler n;
    return n;
}

} // namespace ptm
