/**
 * @file
 * Name tables for configuration enums.
 */

#include "sim/config.hh"

namespace ptm
{

const char *
tmKindName(TmKind k)
{
    switch (k) {
      case TmKind::Serial:
        return "serial";
      case TmKind::Locks:
        return "locks";
      case TmKind::CopyPtm:
        return "Copy-PTM";
      case TmKind::SelectPtm:
        return "Sel-PTM";
      case TmKind::Vtm:
        return "VTM";
      case TmKind::VcVtm:
        return "VC-VTM";
    }
    return "?";
}

const char *
tmKindArg(TmKind k)
{
    switch (k) {
      case TmKind::Serial:
        return "serial";
      case TmKind::Locks:
        return "locks";
      case TmKind::CopyPtm:
        return "copy-ptm";
      case TmKind::SelectPtm:
        return "sel-ptm";
      case TmKind::Vtm:
        return "vtm";
      case TmKind::VcVtm:
        return "vc-vtm";
    }
    return "?";
}

const char *
granularityName(Granularity g)
{
    switch (g) {
      case Granularity::Block:
        return "blk-only";
      case Granularity::WordCache:
        return "wd:cache";
      case Granularity::WordCacheMem:
        return "wd:cache+mem";
    }
    return "?";
}

bool
parseTmKind(const std::string &s, TmKind &out)
{
    if (s == "serial")
        out = TmKind::Serial;
    else if (s == "locks")
        out = TmKind::Locks;
    else if (s == "copy-ptm")
        out = TmKind::CopyPtm;
    else if (s == "sel-ptm")
        out = TmKind::SelectPtm;
    else if (s == "vtm")
        out = TmKind::Vtm;
    else if (s == "vc-vtm")
        out = TmKind::VcVtm;
    else
        return false;
    return true;
}

bool
parseGranularity(const std::string &s, Granularity &out)
{
    if (s == "blk")
        out = Granularity::Block;
    else if (s == "wd:cache")
        out = Granularity::WordCache;
    else if (s == "wd:cache+mem")
        out = Granularity::WordCacheMem;
    else
        return false;
    return true;
}

} // namespace ptm
