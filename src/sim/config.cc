/**
 * @file
 * Name tables for configuration enums.
 */

#include "sim/config.hh"

namespace ptm
{

const char *
tmKindName(TmKind k)
{
    switch (k) {
      case TmKind::Serial:
        return "serial";
      case TmKind::Locks:
        return "locks";
      case TmKind::CopyPtm:
        return "Copy-PTM";
      case TmKind::SelectPtm:
        return "Sel-PTM";
      case TmKind::Vtm:
        return "VTM";
      case TmKind::VcVtm:
        return "VC-VTM";
    }
    return "?";
}

const char *
tmKindArg(TmKind k)
{
    switch (k) {
      case TmKind::Serial:
        return "serial";
      case TmKind::Locks:
        return "locks";
      case TmKind::CopyPtm:
        return "copy-ptm";
      case TmKind::SelectPtm:
        return "sel-ptm";
      case TmKind::Vtm:
        return "vtm";
      case TmKind::VcVtm:
        return "vc-vtm";
    }
    return "?";
}

const char *
granularityName(Granularity g)
{
    switch (g) {
      case Granularity::Block:
        return "blk-only";
      case Granularity::WordCache:
        return "wd:cache";
      case Granularity::WordCacheMem:
        return "wd:cache+mem";
    }
    return "?";
}

bool
parseTmKind(const std::string &s, TmKind &out)
{
    if (s == "serial")
        out = TmKind::Serial;
    else if (s == "locks")
        out = TmKind::Locks;
    else if (s == "copy-ptm")
        out = TmKind::CopyPtm;
    else if (s == "sel-ptm")
        out = TmKind::SelectPtm;
    else if (s == "vtm")
        out = TmKind::Vtm;
    else if (s == "vc-vtm")
        out = TmKind::VcVtm;
    else
        return false;
    return true;
}

bool
parseGranularity(const std::string &s, Granularity &out)
{
    if (s == "blk")
        out = Granularity::Block;
    else if (s == "wd:cache")
        out = Granularity::WordCache;
    else if (s == "wd:cache+mem")
        out = Granularity::WordCacheMem;
    else
        return false;
    return true;
}

const char *
durabilityName(Durability d)
{
    switch (d) {
      case Durability::Off:
        return "off";
      case Durability::Wal:
        return "wal";
    }
    return "?";
}

bool
parseDurability(const std::string &s, Durability &out)
{
    if (s == "off")
        out = Durability::Off;
    else if (s == "wal")
        out = Durability::Wal;
    else
        return false;
    return true;
}

std::string
validateParams(const SystemParams &prm)
{
    if (prm.numCores == 0)
        return "numCores must be at least 1 (got 0): pass --cores N "
               "with 1 <= N <= 64";
    if (prm.numCores > 64)
        return "numCores " + std::to_string(prm.numCores) +
               " exceeds the 64-core limit (sharer-filter masks are "
               "one 64-bit word): pass --cores N with N <= 64";
    if (prm.memBanks == 0)
        return "memBanks must be a non-zero power of two (got 0): "
               "pass --mem-banks N with N in {1,2,4,...,256}";
    if ((prm.memBanks & (prm.memBanks - 1)) != 0)
        return "memBanks must be a power of two (got " +
               std::to_string(prm.memBanks) +
               "): block addresses are interleaved with a mask, so "
               "pass --mem-banks N with N in {1,2,4,...,256}";
    if (prm.memBanks > 256)
        return "memBanks " + std::to_string(prm.memBanks) +
               " exceeds 256: more banks than in-flight requests "
               "only add idle arbiters; pass --mem-banks N <= 256";
    if (!prm.persist.enabled()) {
        if (!prm.persist.walPath.empty())
            return "--wal-file requires --durability wal (the dump "
                   "serializes the durable log, and there is none "
                   "with durability off)";
        if (prm.persist.crashAtTick != 0)
            return "--crash-at-tick requires --durability wal: a "
                   "crash cut is only meaningful when a persistent "
                   "image survives it";
    } else {
        if (prm.tmKind == TmKind::Serial || prm.tmKind == TmKind::Locks)
            return "--durability wal requires a transactional system "
                   "(the redo log records transaction commits); got "
                   "--system " + std::string(tmKindArg(prm.tmKind));
        if (prm.persist.logBytesPerCycle == 0)
            return "--wal-bytes-per-cycle must be at least 1 (the log "
                   "device needs non-zero bandwidth)";
    }
    return "";
}

} // namespace ptm
