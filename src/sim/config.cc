/**
 * @file
 * Name tables for configuration enums.
 */

#include "sim/config.hh"

namespace ptm
{

const char *
tmKindName(TmKind k)
{
    switch (k) {
      case TmKind::Serial:
        return "serial";
      case TmKind::Locks:
        return "locks";
      case TmKind::CopyPtm:
        return "Copy-PTM";
      case TmKind::SelectPtm:
        return "Sel-PTM";
      case TmKind::Vtm:
        return "VTM";
      case TmKind::VcVtm:
        return "VC-VTM";
    }
    return "?";
}

const char *
granularityName(Granularity g)
{
    switch (g) {
      case Granularity::Block:
        return "blk-only";
      case Granularity::WordCache:
        return "wd:cache";
      case Granularity::WordCacheMem:
        return "wd:cache+mem";
    }
    return "?";
}

} // namespace ptm
