/**
 * @file
 * Tick-stamped event tracing.
 *
 * A bounded ring buffer of typed, tick-stamped simulation events
 * (transaction lifecycle, conflict edges, metadata-cache activity,
 * shadow-page management, overflow spills, scheduling, page swaps),
 * filtered by a category bitmask so that a disabled category costs a
 * single branch at the call site. When the buffer fills, the oldest
 * events are overwritten ("keep newest") and the number of dropped
 * events is counted, so a trace of a long run always ends at the
 * interesting part: the end.
 *
 * The tracer itself is sink-agnostic; harness/trace_io.{hh,cc} turns a
 * captured buffer into the native ptm-trace-v1 JSONL stream or a
 * Chrome trace-event (Perfetto-loadable) file.
 */

#ifndef PTM_SIM_TRACE_HH
#define PTM_SIM_TRACE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace ptm
{

/**
 * Event categories, used as a bitmask filter. Each trace event type
 * belongs to exactly one category (traceEventCat()).
 */
enum class TraceCat : std::uint32_t
{
    Tx       = 1u << 0, //!< transaction begin / restart / commit / abort
    Conflict = 1u << 1, //!< conflict-arbitration edges (winner -> loser)
    Meta     = 1u << 2, //!< SPT/TAV metadata caches and cleanup walks
    Page     = 1u << 3, //!< shadow pages, selection vectors, faults, swaps
    Cache    = 1u << 4, //!< evictions, overflow spills, writebacks
    Os       = 1u << 5, //!< context switches
    Watch    = 1u << 6, //!< watchpoint hits (--watch-addr)
    Sample   = 1u << 7, //!< periodic counter samples
    Chaos    = 1u << 8, //!< fault injections, watchdog trips
    Persist  = 1u << 9, //!< WAL appends, ordered flushes, crash cuts
};

/** Bitmask with every category enabled. */
constexpr std::uint32_t traceCatAll = 0x3ffu;

/** The raw bit of one category. */
constexpr std::uint32_t
traceCatMask(TraceCat c)
{
    return static_cast<std::uint32_t>(c);
}

/** One typed event kind. Payload field use is per-type (see README). */
enum class TraceEventType : std::uint8_t
{
    TxBegin,        //!< tx: id; a0: attempt; a1: 1 if ordered
    TxRestart,      //!< tx: id; a0: attempt
    TxCommit,       //!< tx: id
    TxAbort,        //!< tx: id; a0: AbortReason
    ConflictEdge,   //!< tx: winner (0 = non-tx); tx2: loser; a0: block
    SptHit,         //!< a0: page
    SptMiss,        //!< a0: page
    SptEvict,       //!< a0: page (dirty entry written back)
    TavHit,         //!< a0: page
    TavMiss,        //!< a0: page
    TavEvict,       //!< a0: page (dirty entry written back)
    WalkStart,      //!< tx: id; a0: 1 commit walk, 0 abort walk
    WalkEnd,        //!< tx: id; a0: 1 commit, 0 abort; a1: walk length
    ShadowAlloc,    //!< tx: id; a0: home page
    ShadowFree,     //!< a0: home page
    SelFlip,        //!< tx: id; a0: page; a1: block-in-page
    PageFault,      //!< a0: virtual page; a1: process
    SwapOut,        //!< a0: frame; a1: swap slot
    SwapIn,         //!< a0: swap slot; a1: frame
    OverflowSpill,  //!< tx: id; a0: block address
    LineEvict,      //!< a0: block address; a1: live tx marks on the line
    Writeback,      //!< a0: block address
    CtxSwitch,      //!< a0: 1 preemption, 0 natural; thread: incoming
    Watchpoint,      //!< a0: address; a1: WatchKind; v: value
    CounterSample,   //!< a0: series index; v: sampled value
    ChaosInject,     //!< a0: ChaosFault bit; tx: victim (if any)
    WatchdogTrip,    //!< tx: id; a0: consecutive aborts
    StarvationGrant, //!< tx: id; a0: consecutive aborts
    WalAppend,       //!< tx: id; a0: record bytes; a1: log offset; v: seq
    WalFlush,        //!< tx: id; a0: stall ticks; a1: drain-end tick
    CrashCut,        //!< a0: crash tick; a1: durable log bytes
};

/** Number of distinct TraceEventType values. */
constexpr unsigned traceEventTypes =
    unsigned(TraceEventType::CrashCut) + 1;

/** What a watchpoint event observed (Watchpoint payload a1). */
enum class WatchKind : std::uint8_t
{
    Load,        //!< word read
    Store,       //!< word written
    Cas,         //!< compare-and-swap applied
    Fill,        //!< block filled from DRAM / shadow page
    SpecDeposit, //!< speculative words deposited on tx eviction
    Cwb,         //!< committed writeback to the home block
    Toggle,      //!< selection-vector toggle during a commit walk
    Restore,     //!< backup words restored on abort
    Evict,       //!< watched block chosen as eviction victim
};

/** Category of an event type (one category per type). */
constexpr TraceCat
traceEventCat(TraceEventType t)
{
    switch (t) {
      case TraceEventType::TxBegin:
      case TraceEventType::TxRestart:
      case TraceEventType::TxCommit:
      case TraceEventType::TxAbort:
        return TraceCat::Tx;
      case TraceEventType::ConflictEdge:
        return TraceCat::Conflict;
      case TraceEventType::SptHit:
      case TraceEventType::SptMiss:
      case TraceEventType::SptEvict:
      case TraceEventType::TavHit:
      case TraceEventType::TavMiss:
      case TraceEventType::TavEvict:
      case TraceEventType::WalkStart:
      case TraceEventType::WalkEnd:
        return TraceCat::Meta;
      case TraceEventType::ShadowAlloc:
      case TraceEventType::ShadowFree:
      case TraceEventType::SelFlip:
      case TraceEventType::PageFault:
      case TraceEventType::SwapOut:
      case TraceEventType::SwapIn:
        return TraceCat::Page;
      case TraceEventType::OverflowSpill:
      case TraceEventType::LineEvict:
      case TraceEventType::Writeback:
        return TraceCat::Cache;
      case TraceEventType::CtxSwitch:
        return TraceCat::Os;
      case TraceEventType::Watchpoint:
        return TraceCat::Watch;
      case TraceEventType::CounterSample:
        return TraceCat::Sample;
      case TraceEventType::ChaosInject:
      case TraceEventType::WatchdogTrip:
      case TraceEventType::StarvationGrant:
        return TraceCat::Chaos;
      case TraceEventType::WalAppend:
      case TraceEventType::WalFlush:
      case TraceEventType::CrashCut:
        return TraceCat::Persist;
    }
    return TraceCat::Tx;
}

/** Short snake_case name of an event type (JSONL "ev" field). */
const char *traceEventTypeName(TraceEventType t);

/** Lower-case name of a category ("tx", "conflict", ...). */
const char *traceCatName(TraceCat c);

/** Name of a watchpoint kind ("load", "spec-deposit", ...). */
const char *watchKindName(WatchKind k);

/**
 * Parse a comma-separated category list ("tx,conflict,meta", "all")
 * into a bitmask. @return false on an unknown name.
 */
bool parseTraceCategories(const std::string &s, std::uint32_t &mask);

/** Sentinel for "core / thread unknown" in a TraceEvent. */
constexpr std::uint32_t traceNoId = ~0u;

/** One recorded event. Plain data; field use is per-type. */
struct TraceEvent
{
    Tick tick = 0;
    TraceEventType type = TraceEventType::TxBegin;
    std::uint32_t core = traceNoId;
    std::uint32_t thread = traceNoId;
    TxId tx = invalidTxId;  //!< primary transaction (winner for edges)
    TxId tx2 = invalidTxId; //!< secondary transaction (loser for edges)
    std::uint64_t a0 = 0;   //!< payload (address / cause / index)
    std::uint64_t a1 = 0;   //!< payload (extra)
    double v = 0.0;         //!< payload (sampled value)
};

/** Trace output flavor. */
enum class TraceFormat
{
    Jsonl,  //!< native ptm-trace-v1, one JSON object per line
    Chrome, //!< Chrome trace-event JSON (Perfetto-loadable)
};

/** Parse "jsonl" / "chrome". @return false on an unknown name. */
bool parseTraceFormat(const std::string &s, TraceFormat &fmt);

/** Name of a trace format ("jsonl" / "chrome"). */
const char *traceFormatName(TraceFormat fmt);

/** Tracing configuration, carried inside SystemParams. */
struct TraceParams
{
    /** Output file ("-" = stdout); empty disables tracing. */
    std::string path;
    TraceFormat format = TraceFormat::Jsonl;
    /** Enabled-category bitmask (traceCatMask() bits). */
    std::uint32_t categories = traceCatAll;
    /** Ring-buffer capacity, in events. */
    std::size_t bufferEvents = std::size_t(1) << 16;
    /** Ticks between periodic counter samples. */
    Tick sampleInterval = 100000;
    /** Watched address (invalidAddr = no watchpoint). */
    Addr watchAddr = invalidAddr;
};

/**
 * The event recorder: a category mask plus a bounded keep-newest ring
 * buffer. Every instrumented component holds a Tracer pointer; the
 * never-enabled Tracer::nil() instance makes the un-wired case (unit
 * tests constructing components directly) a single mask test with no
 * null checks at call sites.
 */
class Tracer
{
  public:
    /**
     * Enable tracing with the given category @p mask and ring-buffer
     * @p capacity (events). A zero mask disables the tracer.
     */
    void configure(std::uint32_t mask, std::size_t capacity);

    /** True once configure() enabled at least one category. */
    bool active() const { return mask_ != 0; }

    /** True if events of category @p c are being recorded. */
    bool
    enabled(TraceCat c) const
    {
        return (mask_ & traceCatMask(c)) != 0;
    }

    /**
     * Tick source for record(); set by the owning System. Components
     * without an EventQueue reference (TxManager) still get correct
     * stamps. Unset, events are stamped 0.
     */
    void setClock(std::function<Tick()> clock) { clock_ = std::move(clock); }

    /** Current tick per the configured clock (0 if none). */
    Tick now() const { return clock_ ? clock_() : 0; }

    /** @name Watchpoint */
    /// @{
    void setWatchAddr(Addr a) { watch_ = a; }
    Addr watchAddr() const { return watch_; }
    /** True if @p block is the watched address's cache block. */
    bool
    watchingBlock(Addr block) const
    {
        return watch_ != invalidAddr && blockAlign(watch_) == block;
    }
    /** True if @p word is the watched address's word. */
    bool
    watchingWord(Addr word) const
    {
        return watch_ != invalidAddr && wordAlign(watch_) == word;
    }
    /// @}

    /** Record an event stamped with the clock's current tick. */
    void
    record(TraceEventType type, std::uint32_t core = traceNoId,
           std::uint32_t thread = traceNoId, TxId tx = invalidTxId,
           TxId tx2 = invalidTxId, std::uint64_t a0 = 0,
           std::uint64_t a1 = 0, double v = 0.0)
    {
        if (!(mask_ & traceCatMask(traceEventCat(type))))
            return;
        recordAt(now(), type, core, thread, tx, tx2, a0, a1, v);
    }

    /** Record an event with an explicit tick stamp. */
    void
    recordAt(Tick tick, TraceEventType type,
             std::uint32_t core = traceNoId,
             std::uint32_t thread = traceNoId, TxId tx = invalidTxId,
             TxId tx2 = invalidTxId, std::uint64_t a0 = 0,
             std::uint64_t a1 = 0, double v = 0.0)
    {
        if (!(mask_ & traceCatMask(traceEventCat(type))))
            return;
        TraceEvent e;
        e.tick = tick;
        e.type = type;
        e.core = core;
        e.thread = thread;
        e.tx = tx;
        e.tx2 = tx2;
        e.a0 = a0;
        e.a1 = a1;
        e.v = v;
        push(e);
    }

    /**
     * Record with a lazily-built payload: @p build (returning a
     * TraceEvent) runs only when @p c is enabled, so a disabled
     * category never constructs the payload.
     */
    template <typename Fn>
    void
    lazyRecord(TraceCat c, Fn &&build)
    {
        if (enabled(c))
            push(build());
    }

    /**
     * Intern a counter-sample series name ("tx.commits", ...);
     * returns the series index carried in CounterSample events.
     */
    unsigned sampleSeries(const std::string &name);

    /** Interned series names, indexed by CounterSample a0. */
    const std::vector<std::string> &seriesNames() const { return series_; }

    /** Events currently held, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /** Total events accepted by record() since configure(). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** A process-wide never-enabled tracer, for un-wired components. */
    static Tracer &nil();

  private:
    void push(const TraceEvent &e);

    std::uint32_t mask_ = 0;
    std::size_t capacity_ = 0;
    std::vector<TraceEvent> buf_;
    std::size_t head_ = 0; //!< next slot to overwrite once full
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    std::function<Tick()> clock_;
    Addr watch_ = invalidAddr;
    std::vector<std::string> series_;
};

} // namespace ptm

#endif // PTM_SIM_TRACE_HH
