/**
 * @file
 * Fundamental scalar types and address arithmetic helpers shared by every
 * module of the PTM simulator.
 *
 * The simulated machine uses 64-bit physical and virtual addresses, 4 KB
 * pages and 64-byte cache blocks, matching the configuration evaluated in
 * the PTM paper (ASPLOS 2006, section 6.1).
 */

#ifndef PTM_SIM_TYPES_HH
#define PTM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace ptm
{

/** Simulated time, in cycles of the core clock. */
using Tick = std::uint64_t;

/** A virtual or physical byte address in the simulated machine. */
using Addr = std::uint64_t;

/** Virtual or physical page number (address >> pageShift). */
using PageNum = std::uint64_t;

/** Identifier of a CPU core (0-based). */
using CoreId = std::uint32_t;

/** Identifier of a simulated software thread. */
using ThreadId = std::uint32_t;

/** Identifier of a simulated process (address space). */
using ProcId = std::uint32_t;

/**
 * Transaction identifier. Assigned sequentially at transaction begin, so
 * a smaller id means an older transaction; the conflict arbiter uses this
 * directly ("oldest transaction wins"). Id 0 is reserved for "no
 * transaction".
 */
using TxId = std::uint64_t;

/** The reserved "not a transaction" id. */
constexpr TxId invalidTxId = 0;

/** Sentinel for "no tick scheduled". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Sentinel invalid address / page number. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();
constexpr PageNum invalidPage = std::numeric_limits<PageNum>::max();

/** log2 of the page size: 4 KB pages. */
constexpr unsigned pageShift = 12;
/** Page size in bytes. */
constexpr Addr pageBytes = Addr(1) << pageShift;

/** log2 of the cache block size: 64-byte blocks. */
constexpr unsigned blockShift = 6;
/** Cache block size in bytes. */
constexpr Addr blockBytes = Addr(1) << blockShift;

/** log2 of the machine word size: 4-byte words (Fig 5 word granularity). */
constexpr unsigned wordShift = 2;
/** Word size in bytes. */
constexpr Addr wordBytes = Addr(1) << wordShift;

/** Number of cache blocks per page (64). */
constexpr unsigned blocksPerPage = unsigned(pageBytes / blockBytes);
/** Number of words per page (1024). */
constexpr unsigned wordsPerPage = unsigned(pageBytes / wordBytes);
/** Number of words per cache block (16). */
constexpr unsigned wordsPerBlock = unsigned(blockBytes / wordBytes);

/** Extract the page number of an address. */
constexpr PageNum
pageOf(Addr a)
{
    return a >> pageShift;
}

/** Byte offset of an address within its page. */
constexpr Addr
pageOffset(Addr a)
{
    return a & (pageBytes - 1);
}

/** First byte address of a page. */
constexpr Addr
pageBase(PageNum p)
{
    return p << pageShift;
}

/** Align an address down to its cache block. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~(blockBytes - 1);
}

/** Index of the cache block of @p a within its page (0..63). */
constexpr unsigned
blockInPage(Addr a)
{
    return unsigned(pageOffset(a) >> blockShift);
}

/** Index of the word of @p a within its page (0..1023). */
constexpr unsigned
wordInPage(Addr a)
{
    return unsigned(pageOffset(a) >> wordShift);
}

/** Align an address down to its word. */
constexpr Addr
wordAlign(Addr a)
{
    return a & ~(wordBytes - 1);
}

} // namespace ptm

#endif // PTM_SIM_TYPES_HH
