/**
 * @file
 * Time-series sampler implementation.
 */

#include "sim/timeseries.hh"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>

#include "sim/event_queue.hh"

namespace ptm
{

std::uint64_t
TimeseriesCapture::delta(const TimeseriesInterval &iv,
                         const std::string &path) const
{
    for (const auto &c : iv.counters)
        if (counterNames[c.ref] == path)
            return c.delta;
    return 0;
}

std::ostream *
timeseriesSink(const std::string &path)
{
    if (path.empty())
        return nullptr;
    if (path == "stderr")
        return &std::cerr;
    // One stream per file for the process lifetime: bench sweeps run
    // many Systems against one --timeseries file, and each run's
    // header record delimits its stream within the file.
    static std::map<std::string, std::unique_ptr<std::ofstream>> open;
    auto it = open.find(path);
    if (it == open.end()) {
        auto f = std::make_unique<std::ofstream>(path,
                                                 std::ios::trunc);
        it = open.emplace(path, std::move(f)).first;
    }
    return it->second.get();
}

namespace
{

/** Append @p v as a JSON number ("%.9g", integers undecorated). */
void
appendNum(std::string &out, double v)
{
    char buf[64];
    if (v == static_cast<std::uint64_t>(v) && v >= 0 && v < 1e15)
        std::snprintf(buf, sizeof(buf), "%llu",
                      (unsigned long long)v);
    else
        std::snprintf(buf, sizeof(buf), "%.9g", v);
    out += buf;
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
    out += buf;
}

/** Append @p s quoted; stat paths and kind labels need no escaping,
 *  but keep the writer safe for arbitrary strings anyway. */
void
appendStr(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) >= 0x20)
            out += c;
    }
    out += '"';
}

} // namespace

TimeseriesSampler::TimeseriesSampler(const TimeseriesParams &params,
                                     const StatRegistry &reg,
                                     const EventQueue &eq)
    : params_(params), reg_(reg), eq_(eq),
      sink_(timeseriesSink(params.path))
{
    capture_.enabled = params_.capture;
    capture_.interval = params_.interval;
}

void
TimeseriesSampler::setRunInfo(std::string system, std::uint64_t seed,
                              unsigned cores)
{
    system_ = std::move(system);
    seed_ = seed;
    cores_ = cores;
}

void
TimeseriesSampler::start()
{
    // Freeze the registry walk: every Counter and Distribution, in
    // registration order, addressed by "group.stat" paths.
    for (const auto &g : reg_.groups()) {
        for (const StatRef &s : g->stats()) {
            std::string path = g->name() + "." + s.name;
            if (s.kind == StatKind::Counter && s.counter) {
                counters_.push_back(s.counter);
                capture_.counterNames.push_back(std::move(path));
            } else if (s.kind == StatKind::Distribution &&
                       s.distribution) {
                dists_.push_back(s.distribution);
                capture_.distNames.push_back(std::move(path));
            }
        }
    }
    prev_counter_.assign(counters_.size(), 0);
    prev_dist_samples_.assign(dists_.size(), 0);
    prev_dist_sum_.assign(dists_.size(), 0.0);
    for (std::size_t i = 0; i < counters_.size(); ++i)
        prev_counter_[i] = counters_[i]->value();
    for (std::size_t i = 0; i < dists_.size(); ++i) {
        prev_dist_samples_[i] = dists_[i]->samples();
        prev_dist_sum_[i] = dists_[i]->sum();
    }
    last_tick_ = eq_.curTick();
    last_events_ = eq_.executedEvents();
    last_wall_ = std::chrono::steady_clock::now();
    started_ = true;

    if (sink_) {
        std::string line = "{\"schema\":\"ptm-timeseries-v1\","
                           "\"type\":\"header\",\"system\":";
        appendStr(line, system_);
        line += ",\"seed\":";
        appendU64(line, seed_);
        line += ",\"cores\":";
        appendU64(line, cores_);
        line += ",\"interval\":";
        appendU64(line, params_.interval);
        line += "}";
        *sink_ << line << '\n' << std::flush;
    }
}

void
TimeseriesSampler::takeSample(bool final_flush)
{
    if (!started_)
        return;

    TimeseriesInterval iv;
    iv.n = next_n_++;
    iv.t0 = last_tick_;
    iv.t1 = eq_.curTick();
    iv.final_ = final_flush;

    auto now = std::chrono::steady_clock::now();
    iv.wallSeconds =
        std::chrono::duration<double>(now - last_wall_).count();
    std::uint64_t events = eq_.executedEvents();
    iv.events = events - last_events_;

    for (std::size_t i = 0; i < counters_.size(); ++i) {
        std::uint64_t v = counters_[i]->value();
        if (v != prev_counter_[i]) {
            iv.counters.push_back({i, v - prev_counter_[i]});
            prev_counter_[i] = v;
        }
    }
    for (std::size_t i = 0; i < dists_.size(); ++i) {
        std::uint64_t n = dists_[i]->samples();
        double sum = dists_[i]->sum();
        if (n != prev_dist_samples_[i]) {
            iv.dists.push_back(
                {i, n - prev_dist_samples_[i], sum - prev_dist_sum_[i]});
            prev_dist_samples_[i] = n;
            prev_dist_sum_[i] = sum;
        }
    }

    last_tick_ = iv.t1;
    last_events_ = events;
    last_wall_ = now;

    if (sink_)
        emitInterval(iv);
    if (params_.capture)
        capture_.intervals.push_back(std::move(iv));
}

void
TimeseriesSampler::emitInterval(const TimeseriesInterval &iv)
{
    std::string line = "{\"type\":\"interval\",\"n\":";
    appendU64(line, iv.n);
    line += ",\"t0\":";
    appendU64(line, iv.t0);
    line += ",\"t1\":";
    appendU64(line, iv.t1);
    line += ",\"final\":";
    line += iv.final_ ? "true" : "false";
    line += ",\"wall_seconds\":";
    appendNum(line, iv.wallSeconds);
    line += ",\"events\":";
    appendU64(line, iv.events);

    // Host-throughput gauges for this interval.
    double ticks = double(iv.t1 - iv.t0);
    double eps = iv.wallSeconds > 0 ? double(iv.events) / iv.wallSeconds
                                    : 0.0;
    double tps = iv.wallSeconds > 0 ? ticks / iv.wallSeconds : 0.0;
    double ept = ticks > 0 ? double(iv.events) / ticks : 0.0;
    line += ",\"events_per_sec\":";
    appendNum(line, eps);
    line += ",\"ticks_per_wall_sec\":";
    appendNum(line, tps);
    line += ",\"events_per_tick\":";
    appendNum(line, ept);

    line += ",\"d\":{";
    for (std::size_t i = 0; i < iv.counters.size(); ++i) {
        if (i)
            line += ',';
        appendStr(line, capture_.counterNames[iv.counters[i].ref]);
        line += ':';
        appendU64(line, iv.counters[i].delta);
    }
    line += "},\"dist\":{";
    for (std::size_t i = 0; i < iv.dists.size(); ++i) {
        if (i)
            line += ',';
        appendStr(line, capture_.distNames[iv.dists[i].ref]);
        line += ":{\"samples\":";
        appendU64(line, iv.dists[i].samples);
        line += ",\"sum\":";
        appendNum(line, iv.dists[i].sum);
        line += '}';
    }
    line += '}';

    if (hot_pages_) {
        line += ",\"hot_pages\":";
        line += hot_pages_();
    }
    line += '}';
    *sink_ << line << '\n' << std::flush;
}

} // namespace ptm
