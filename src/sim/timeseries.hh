/**
 * @file
 * Interval time-series sampler over the statistics registry.
 *
 * At a configurable tick period the sampler reads every registered
 * Counter and Distribution and emits one **delta** record: how much
 * each monotonic statistic advanced during the interval, plus
 * host-throughput gauges computed from the event queue (simulated
 * events per wall-second, simulated ticks per wall-second, events per
 * tick). Scalars / averages are skipped — deltas of non-monotonic
 * values are meaningless.
 *
 * Records stream as "ptm-timeseries-v1" JSONL (one object per line)
 * so a long run is monitorable while in flight (`--live-stats`
 * streams to stderr, `--timeseries FILE` to a file), and/or are kept
 * in memory for post-processing (bench_kv's steady-state throughput).
 *
 * Schema ptm-timeseries-v1 (one line each):
 *
 *     {"schema":"ptm-timeseries-v1","type":"header","system":...,
 *      "seed":N,"cores":N,"interval":N}
 *     {"type":"interval","n":K,"t0":N,"t1":N,"final":bool,
 *      "wall_seconds":x,"events":N,"events_per_sec":x,
 *      "ticks_per_wall_sec":x,"events_per_tick":x,
 *      "d":{"<group.stat>":N,...},              // non-zero deltas
 *      "dist":{"<group.stat>":{"samples":N,"sum":x},...},
 *      "hot_pages":[{"page":N,"count":N,"err":N},...]}   // optional
 *
 * The delta sums reconcile exactly with the end-of-run ptm-stats-v1
 * totals: the baseline is taken before the first event executes and
 * the final record (final:true) is flushed after the last one, before
 * the front end snapshots the registry
 * (tools/check_timeseries_json.py gates this).
 *
 * Sampling runs at EventPriority::Stats — the lowest priority, pure
 * reads — so enabling it never perturbs simulated results.
 */

#ifndef PTM_SIM_TIMESERIES_HH
#define PTM_SIM_TIMESERIES_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ptm
{

class EventQueue;

/**
 * By-value record of one sampled interval (and the capture of a whole
 * run). Counter/distribution deltas are stored sparsely — only stats
 * that advanced — indexed into TimeseriesCapture::counterNames /
 * distNames.
 */
struct TimeseriesInterval
{
    std::uint64_t n = 0;  //!< record index within the run
    Tick t0 = 0;          //!< interval start tick
    Tick t1 = 0;          //!< interval end tick
    bool final_ = false;  //!< end-of-run flush record
    double wallSeconds = 0;
    std::uint64_t events = 0; //!< events executed in the interval

    struct CounterDelta
    {
        std::size_t ref;
        std::uint64_t delta;
    };
    struct DistDelta
    {
        std::size_t ref;
        std::uint64_t samples;
        double sum;
    };
    std::vector<CounterDelta> counters;
    std::vector<DistDelta> dists;
};

/** In-memory capture of a run's time series (ExperimentResult). */
struct TimeseriesCapture
{
    bool enabled = false;
    Tick interval = 0;
    std::vector<std::string> counterNames;
    std::vector<std::string> distNames;
    std::vector<TimeseriesInterval> intervals;

    /** Delta of counter @p path in @p iv; 0 if absent/unchanged. */
    std::uint64_t delta(const TimeseriesInterval &iv,
                        const std::string &path) const;
};

/**
 * Resolve a stream sink for @p path: nullptr when empty, std::cerr
 * for "stderr", otherwise a process-lifetime file stream. The first
 * open of a file truncates it; subsequent opens within the process
 * (bench sweeps running many Systems) append, so one file carries
 * every run's stream back to back.
 */
std::ostream *timeseriesSink(const std::string &path);

class TimeseriesSampler
{
  public:
    /**
     * @param params  period / sink / capture configuration
     * @param reg     registry to walk (Counter + Distribution refs)
     * @param eq      event queue (tick clock and event-count gauges)
     */
    TimeseriesSampler(const TimeseriesParams &params,
                      const StatRegistry &reg, const EventQueue &eq);

    /** Header-record context (System wiring; all optional). */
    void setRunInfo(std::string system, std::uint64_t seed,
                    unsigned cores);

    /**
     * Provider of the per-interval "hot_pages" JSON array fragment
     * (ContentionHeatmap::hotPagesJson); unset = field omitted.
     */
    void setHotPages(std::function<std::string()> fn)
    {
        hot_pages_ = std::move(fn);
    }

    /**
     * Take the baselines and emit the header record. Call before the
     * first event executes so delta sums reconcile with final totals.
     */
    void start();

    /** Sample one interval (the periodic Stats-priority event body). */
    void sample() { takeSample(false); }

    /**
     * Flush the final partial interval (final:true). Call after the
     * last event executed, before the registry is snapshotted.
     */
    void finish() { takeSample(true); }

    /** The capture (valid any time; grows as intervals complete). */
    const TimeseriesCapture &capture() const { return capture_; }

    Tick interval() const { return params_.interval; }

  private:
    void takeSample(bool final_flush);
    void emitInterval(const TimeseriesInterval &iv);

    TimeseriesParams params_;
    const StatRegistry &reg_;
    const EventQueue &eq_;
    std::ostream *sink_ = nullptr;

    std::string system_;
    std::uint64_t seed_ = 0;
    unsigned cores_ = 0;
    std::function<std::string()> hot_pages_;

    /** Registry walk results, frozen at start(). */
    std::vector<const Counter *> counters_;
    std::vector<const Distribution *> dists_;
    std::vector<std::uint64_t> prev_counter_;
    std::vector<std::uint64_t> prev_dist_samples_;
    std::vector<double> prev_dist_sum_;

    std::uint64_t next_n_ = 0;
    Tick last_tick_ = 0;
    std::uint64_t last_events_ = 0;
    std::chrono::steady_clock::time_point last_wall_;
    bool started_ = false;

    TimeseriesCapture capture_;
};

} // namespace ptm

#endif // PTM_SIM_TIMESERIES_HH
