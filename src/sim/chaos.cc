/**
 * @file
 * Chaos engine implementation.
 */

#include "sim/chaos.hh"

namespace ptm
{

namespace
{

struct FaultName
{
    const char *name;
    ChaosFault fault;
};

constexpr FaultName kFaults[] = {
    {"abort", ChaosFault::ExplicitAbort},
    {"squeeze", ChaosFault::CacheSqueeze},
    {"flush", ChaosFault::TxFlush},
    {"swap", ChaosFault::PageSwap},
    {"preempt", ChaosFault::Preempt},
    {"delay", ChaosFault::CleanupDelay},
    {"crash", ChaosFault::Crash},
};

} // namespace

const char *
chaosFaultName(ChaosFault f)
{
    for (const auto &e : kFaults)
        if (e.fault == f)
            return e.name;
    return "?";
}

bool
parseChaosPlan(const std::string &s, std::uint32_t &mask)
{
    std::uint32_t out = 0;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        std::string name = s.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (name == "all") {
            out |= chaosPlanAll;
            continue;
        }
        bool found = false;
        for (const auto &e : kFaults) {
            if (name == e.name) {
                out |= chaosFaultMask(e.fault);
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    mask = out;
    return true;
}

std::string
chaosPlanString(std::uint32_t mask)
{
    std::string out;
    if ((mask & chaosPlanAll) == chaosPlanAll) {
        // "all" never covers the run-ending crash fault; append it
        // explicitly so the repro string round-trips.
        out = "all";
        if (mask & chaosFaultMask(ChaosFault::Crash))
            out += ",crash";
        return out;
    }
    for (const auto &e : kFaults) {
        if (!(mask & chaosFaultMask(e.fault)))
            continue;
        if (!out.empty())
            out += ',';
        out += e.name;
    }
    return out;
}

void
ChaosEngine::configure(const ChaosParams &p)
{
    prm_ = p;
    active_ = p.enabled &&
              (p.plan & (chaosPlanAll |
                         chaosFaultMask(ChaosFault::Crash))) != 0;
    if (!active_)
        return;
    rng_ = Pcg32(p.seed, 0x5eed);
    schedulable_.clear();
    // CleanupDelay is polled at its hook; Crash is a one-shot run cut
    // drawn at startup. Neither enters the periodic injection draw.
    for (const auto &e : kFaults)
        if (e.fault != ChaosFault::CleanupDelay &&
            e.fault != ChaosFault::Crash &&
            (p.plan & chaosFaultMask(e.fault)))
            schedulable_.push_back(e.fault);
}

std::uint32_t
ChaosEngine::pickFault()
{
    if (schedulable_.empty())
        return 0;
    std::size_t i = rng_.below(std::uint32_t(schedulable_.size()));
    return chaosFaultMask(schedulable_[i]);
}

Tick
ChaosEngine::cleanupDelay()
{
    if (!planned(ChaosFault::CleanupDelay))
        return 0;
    // Half the walks start on time: mixing delayed and prompt walks
    // exercises both orders of cleanup-vs-restart arrival.
    if (!rng_.chance(0.5))
        return 0;
    ++cleanupDelays;
    // 1..cleanupDelay ticks, so a delayed walk is never a no-op.
    return 1 + Tick(rng_.below(std::uint32_t(prm_.cleanupDelay)));
}

void
ChaosEngine::regStats(StatRegistry &reg)
{
    StatGroup &g = reg.addGroup("chaos");
    g.addCounter("injected_aborts", &injectedAborts,
                 "explicit aborts injected into live transactions");
    g.addCounter("cache_squeezes", &cacheSqueezes,
                 "SPT/TAV cache capacity squeezes applied");
    g.addCounter("tx_flushes", &txFlushes,
                 "forced flushes of a live transaction's cache lines");
    g.addCounter("page_swaps", &pageSwaps, "forced page swap-outs");
    g.addCounter("preempts", &preempts,
                 "surprise daemon preemptions injected");
    g.addCounter("cleanup_delays", &cleanupDelays,
                 "commit/abort cleanup walks artificially delayed");
    g.addCounter("crash_cuts", &crashCuts,
                 "runs cut by an injected crash (power loss)");
}

ChaosEngine &
ChaosEngine::nil()
{
    static ChaosEngine inert;
    return inert;
}

} // namespace ptm
