/**
 * @file
 * Cycle accounting: tick-attribution profiling of the simulated cores.
 *
 * The paper's evaluation (Figure 6) is a cycle-accounting argument —
 * PTM wins because commit/abort overhead and VTS walks consume few
 * cycles relative to useful transactional work. This subsystem makes
 * that decomposition measurable: every tick of every simulated core is
 * attributed to exactly one bucket of a small closed set, so per-core
 * bucket totals always sum to the elapsed simulated time.
 *
 * Mechanism: each core owns a *phase stack* in the CycleProfiler.
 * Whenever the core schedules a delay it sets (or pushes) the bucket
 * that delay represents; every transition first accrues the span since
 * the previous transition into the outgoing top-of-stack bucket. Push/
 * pop pairs let a stall phase nest over the background execution phase
 * and restore it exactly (PhaseGuard is the RAII form for synchronous
 * scopes). Because attribution happens on transition — never by
 * re-deriving elapsed time — exactness holds by construction.
 *
 * Committed vs. wasted work: execution ticks inside a transaction
 * accrue into a per-core *pending pot* (the outcome is unknown while
 * the attempt runs) and are retired into TxUseful or TxWasted when the
 * attempt commits or aborts. A transactional thread that migrates off
 * a core mid-attempt has its pot retired optimistically at switch
 * time, keeping the pot core-local (per-core exactness) at the cost of
 * slight attribution optimism across migrations.
 *
 * Supervisor overlay: VTS/VTM metadata walks, cleanup walks, overflow
 * spills and OS fault/swap handling fold their latencies into bus
 * transactions and core stall spans, so they cannot be carved out of
 * the per-core buckets exactly. Components charge those cycle amounts
 * into a separate overlay (ProfCharge) that *overlaps* core stall
 * time; it answers "how many cycles did the supervisor structures
 * consume", not "which core ticks were those".
 *
 * Everything is disabled by default: each recording call is a single
 * branch when the profiler is off (Tracer-style), and un-wired
 * components point at the never-enabled CycleProfiler::nil().
 */

#ifndef PTM_SIM_PROFILE_HH
#define PTM_SIM_PROFILE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace ptm
{

/**
 * The closed set of per-core tick buckets. Every simulated tick of
 * every core lands in exactly one.
 */
enum class ProfBucket : std::uint8_t
{
    Idle,      //!< no runnable thread bound to the core
    NonTx,     //!< executing outside any transaction
    TxUseful,  //!< in-transaction execution that later committed
    TxWasted,  //!< in-transaction execution of an aborted attempt
    StallL1,   //!< memory stall satisfied by the L1 filter
    StallL2,   //!< memory stall satisfied by the local L2
    StallMem,  //!< bus / remote cache / DRAM / backend-check stall
    StallXlat, //!< TLB-miss hardware page-table walk
    FaultSwap, //!< page-fault exception path including swap I/O
    TxBegin,   //!< register-checkpoint cost at transaction begin
    TxCommit,  //!< logical-commit latency and ordered-commit waits
    TxAbort,   //!< abort cleanup waits and restart backoff
    CtxSwitch, //!< context-switch overhead and daemon occupancy
    Barrier,   //!< barrier arrival cost and barrier waits
    TxPersist, //!< durable-commit wait for the ordered WAL flush
    NumBuckets
};

/** Number of per-core buckets. */
constexpr unsigned profBuckets = unsigned(ProfBucket::NumBuckets);

/** Stable snake_case name of a bucket ("tx_useful", ...). */
const char *profBucketName(ProfBucket b);

/**
 * Supervisor-overlay charge classes: cycle amounts attributed by the
 * subsystems that *produce* latency (VTS, VTM, memory system, OS,
 * transaction manager). Overlay charges may overlap per-core stall
 * buckets and each other; they are a component-centric view, not a
 * partition of time.
 */
enum class ProfCharge : std::uint8_t
{
    MetaLookup,       //!< SPT / XADC metadata lookups and walks
    TavLookup,        //!< TAV / XADT per-transaction lookups
    CommitCleanup,    //!< background commit-walk busy cycles
    AbortCleanup,     //!< background abort-walk (and restore) cycles
    OverflowSpill,    //!< evicting transactional blocks to the backend
    FalseStall,       //!< retry delay behind cleanup-in-progress
    PageFault,        //!< OS fault-handler path (includes swap)
    SwapIo,           //!< page swap-in/swap-out device time
    CommittedTxTicks, //!< wall ticks of attempts that committed
    AbortedTxTicks,   //!< wall ticks of attempts that aborted
    LogFlush,         //!< WAL log-device busy cycles (ordered drains)
    NumCharges
};

/** Number of overlay charge classes. */
constexpr unsigned profCharges = unsigned(ProfCharge::NumCharges);

/** Stable snake_case name of a charge class ("meta_lookup", ...). */
const char *profChargeName(ProfCharge c);

/** Profiling configuration, carried inside SystemParams. */
struct ProfileParams
{
    /** Enable simulated-cycle accounting. */
    bool enabled = false;
    /** Enable host-side event-loop profiling (--host-profile). */
    bool host = false;
    /** Measure host time of every Nth executed event. */
    unsigned hostSampleInterval = 32;
};

/** By-value capture of a CycleProfiler for results/serialization. */
struct ProfSnapshot
{
    bool enabled = false;
    /** Simulated ticks covered: each core's buckets sum to this. */
    Tick elapsed = 0;
    /** Per-core bucket totals, indexed [core][bucket]. */
    std::vector<std::array<std::uint64_t, profBuckets>> cores;
    /** Supervisor-overlay charge totals. */
    std::array<std::uint64_t, profCharges> charges{};

    /** Sum of all buckets of @p core (== elapsed after finish()). */
    std::uint64_t
    coreTotal(unsigned core) const
    {
        std::uint64_t n = 0;
        for (std::uint64_t v : cores.at(core))
            n += v;
        return n;
    }

    /** Bucket total summed over every core. */
    std::uint64_t
    bucketTotal(ProfBucket b) const
    {
        std::uint64_t n = 0;
        for (const auto &c : cores)
            n += c[unsigned(b)];
        return n;
    }
};

/**
 * Host-side event-loop profile captured from the EventQueue: per
 * callback site, how many events executed and how much host time the
 * sampled subset consumed. estimatedNs() scales the sampled time by
 * the sampling interval.
 */
struct HostProfile
{
    struct Site
    {
        std::string name;
        std::uint64_t events = 0;    //!< executed events at this site
        std::uint64_t sampled = 0;   //!< events with host timing taken
        std::uint64_t sampledNs = 0; //!< host ns spent in sampled events

        /** Sampled time scaled to the full event count. */
        std::uint64_t
        estimatedNs(unsigned interval) const
        {
            return sampledNs * interval;
        }
    };

    bool enabled = false;
    unsigned sampleInterval = 0;
    std::vector<Site> sites;
};

/**
 * The cycle-accounting profiler. One instance per simulated System;
 * inactive (single-branch recording) until configure().
 */
class CycleProfiler
{
  public:
    /** Enable accounting for @p cores cores, all starting Idle. */
    void configure(unsigned cores);

    /** True once configure() ran. */
    bool active() const { return enabled_; }

    /** Tick source for transitions; set by the owning System. */
    void setClock(std::function<Tick()> clock)
    {
        clock_ = std::move(clock);
    }

    /** Current tick per the configured clock (0 if none). */
    Tick now() const { return clock_ ? clock_() : 0; }

    /** @name Per-core phase machine (single branch when disabled) */
    /// @{
    /** Replace the top-of-stack phase of @p core with @p b. */
    void
    set(unsigned core, ProfBucket b)
    {
        if (enabled_)
            doSet(core, std::uint8_t(b));
    }

    /** Nest phase @p b over the current phase of @p core. */
    void
    push(unsigned core, ProfBucket b)
    {
        if (enabled_)
            doPush(core, std::uint8_t(b));
    }

    /** End the nested phase, restoring the one underneath. */
    void
    pop(unsigned core)
    {
        if (enabled_)
            doPop(core);
    }

    /**
     * Enter in-transaction execution on @p core: subsequent ticks
     * accrue into the pending pot until resolveTx().
     */
    void
    txWork(unsigned core)
    {
        if (enabled_)
            doSet(core, kPending);
    }

    /**
     * Retire @p core's pending pot into TxUseful (@p committed) or
     * TxWasted. The current phase is unchanged; callers set() the next
     * phase immediately after.
     * @return the retired pot in ticks (0 when disabled) — the flight
     *         recorder attributes wasted amounts per transaction with
     *         it, so forensic sums reconcile with the tx_wasted bucket.
     */
    Tick
    resolveTx(unsigned core, bool committed)
    {
        if (enabled_)
            return doResolveTx(core, committed);
        return 0;
    }

    /**
     * Collapse @p core's phase stack to the single base phase @p b —
     * used on abort, which abandons any scheduled phase pops.
     */
    void
    collapse(unsigned core, ProfBucket b)
    {
        if (enabled_)
            doCollapse(core, std::uint8_t(b));
    }
    /// @}

    /** Add @p cycles to overlay class @p c. */
    void
    charge(ProfCharge c, Tick cycles)
    {
        if (enabled_)
            charges_[unsigned(c)] += cycles;
    }

    /**
     * Close every core's timeline at @p end and retire leftover
     * pending pots (tick-limit runs) into TxWasted. After finish(),
     * every core's bucket sum equals @p end.
     */
    void finish(Tick end);

    /** Value capture of the current accounting state. */
    ProfSnapshot snapshot() const;

    /** A process-wide never-enabled profiler, for un-wired components. */
    static CycleProfiler &nil();

  private:
    /** Internal sentinel phase: the unresolved in-transaction pot. */
    static constexpr std::uint8_t kPending = std::uint8_t(profBuckets);

    struct Lane
    {
        /** Phase stack; base is never popped. */
        std::vector<std::uint8_t> stack;
        Tick last = 0;
        std::array<std::uint64_t, profBuckets> buckets{};
        /** Unresolved in-transaction execution ticks. */
        std::uint64_t pending = 0;
    };

    void doSet(unsigned core, std::uint8_t b);
    void doPush(unsigned core, std::uint8_t b);
    void doPop(unsigned core);
    Tick doResolveTx(unsigned core, bool committed);
    void doCollapse(unsigned core, std::uint8_t b);
    void accrue(Lane &lane, Tick now);
    Lane &lane(unsigned core);

    bool enabled_ = false;
    Tick end_ = 0;
    std::function<Tick()> clock_;
    std::vector<Lane> lanes_;
    std::array<std::uint64_t, profCharges> charges_{};
};

/**
 * RAII phase guard: pushes @p b on @p core at construction, pops at
 * scope exit — for synchronous scopes whose work may advance the
 * profiler clock.
 */
class PhaseGuard
{
  public:
    PhaseGuard(CycleProfiler &prof, unsigned core, ProfBucket b)
        : prof_(prof), core_(core)
    {
        prof_.push(core_, b);
    }

    ~PhaseGuard() { prof_.pop(core_); }

    PhaseGuard(const PhaseGuard &) = delete;
    PhaseGuard &operator=(const PhaseGuard &) = delete;

  private:
    CycleProfiler &prof_;
    unsigned core_;
};

} // namespace ptm

#endif // PTM_SIM_PROFILE_HH
