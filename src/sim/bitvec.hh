/**
 * @file
 * Packed bit vector sized at runtime.
 *
 * PTM reduces per-block transactional state to booleans packed into
 * vectors: TAV read/write vectors, SPT selection vectors, and the VTS
 * read/write summary vectors. In block-granularity mode a page needs 64
 * bits (one per 64-byte block); in wd:cache+mem mode it needs 1024 bits
 * (one per 4-byte word). BitVec supports both through one code path.
 */

#ifndef PTM_SIM_BITVEC_HH
#define PTM_SIM_BITVEC_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace ptm
{

/** Fixed-capacity packed bit vector with word-wise bulk operations. */
class BitVec
{
  public:
    BitVec() = default;

    /** Construct with @p nbits bits, all clear. */
    explicit BitVec(unsigned nbits)
        : nbits_(nbits), words_((nbits + 63) / 64, 0)
    {}

    unsigned size() const { return nbits_; }

    bool
    test(unsigned i) const
    {
        panic_if(i >= nbits_, "BitVec index %u out of range %u", i,
                 nbits_);
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    void
    set(unsigned i)
    {
        panic_if(i >= nbits_, "BitVec index %u out of range %u", i,
                 nbits_);
        words_[i >> 6] |= std::uint64_t(1) << (i & 63);
    }

    void
    clear(unsigned i)
    {
        panic_if(i >= nbits_, "BitVec index %u out of range %u", i,
                 nbits_);
        words_[i >> 6] &= ~(std::uint64_t(1) << (i & 63));
    }

    void
    assign(unsigned i, bool v)
    {
        if (v)
            set(i);
        else
            clear(i);
    }

    /** Flip bit @p i. */
    void
    toggle(unsigned i)
    {
        panic_if(i >= nbits_, "BitVec index %u out of range %u", i,
                 nbits_);
        words_[i >> 6] ^= std::uint64_t(1) << (i & 63);
    }

    /** Clear every bit. */
    void
    reset()
    {
        for (auto &w : words_)
            w = 0;
    }

    /** True if no bit is set. */
    bool
    none() const
    {
        for (auto w : words_)
            if (w)
                return false;
        return true;
    }

    /** True if any bit is set. */
    bool any() const { return !none(); }

    /** Population count. */
    unsigned
    count() const
    {
        unsigned n = 0;
        for (auto w : words_)
            n += unsigned(__builtin_popcountll(w));
        return n;
    }

    /** this |= other. Sizes must match. */
    BitVec &
    operator|=(const BitVec &o)
    {
        panic_if(nbits_ != o.nbits_, "BitVec size mismatch");
        for (size_t i = 0; i < words_.size(); ++i)
            words_[i] |= o.words_[i];
        return *this;
    }

    /** this &= ~other (clear every bit set in @p o). Sizes must match. */
    BitVec &
    andNot(const BitVec &o)
    {
        panic_if(nbits_ != o.nbits_, "BitVec size mismatch");
        for (size_t i = 0; i < words_.size(); ++i)
            words_[i] &= ~o.words_[i];
        return *this;
    }

    /** this ^= other. Sizes must match. */
    BitVec &
    operator^=(const BitVec &o)
    {
        panic_if(nbits_ != o.nbits_, "BitVec size mismatch");
        for (size_t i = 0; i < words_.size(); ++i)
            words_[i] ^= o.words_[i];
        return *this;
    }

    /** True if this and @p o share any set bit. */
    bool
    intersects(const BitVec &o) const
    {
        panic_if(nbits_ != o.nbits_, "BitVec size mismatch");
        for (size_t i = 0; i < words_.size(); ++i)
            if (words_[i] & o.words_[i])
                return true;
        return false;
    }

    bool
    operator==(const BitVec &o) const
    {
        return nbits_ == o.nbits_ && words_ == o.words_;
    }

    /**
     * Iterate over set bits, invoking @p fn(index) for each. @p fn must
     * not modify this vector.
     */
    template <typename F>
    void
    forEachSet(F &&fn) const
    {
        for (size_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t w = words_[wi];
            while (w) {
                unsigned b = unsigned(__builtin_ctzll(w));
                fn(unsigned(wi * 64) + b);
                w &= w - 1;
            }
        }
    }

  private:
    unsigned nbits_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace ptm

#endif // PTM_SIM_BITVEC_HH
