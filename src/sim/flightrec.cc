/**
 * @file
 * FlightRecorder implementation.
 */

#include "sim/flightrec.hh"

#include <algorithm>

namespace ptm
{

const char *
postmortemTriggerName(PostmortemTrigger t)
{
    switch (t) {
      case PostmortemTrigger::Watchdog:
        return "watchdog";
      case PostmortemTrigger::StarvationGrant:
        return "starvation-grant";
      case PostmortemTrigger::AuditViolation:
        return "audit-violation";
      case PostmortemTrigger::ChaosInject:
        return "chaos-inject";
      case PostmortemTrigger::AbortThreshold:
        return "abort-threshold";
    }
    return "?";
}

FlightRecorder::FlightRecorder(const ForensicsParams &params)
    : params_(params), armed_(params.armed())
{
    live_.reserve(64);
    ring_.reserve(params_.depth);
}

void
FlightRecorder::regStats(StatRegistry &reg)
{
    StatGroup &g = reg.addGroup("flightrec");
    g.addCounter("retired", &retiredRecords,
                 "transaction records retired into the ring");
    g.addCounter("dropped_records", &droppedRecords,
                 "retired records evicted from the ring "
                 "(forensic history truncated)");
    g.addCounter("postmortems", &postmortems,
                 "post-mortem reports captured");
    g.addCounter("dropped_reports", &droppedReports,
                 "triggers dropped at the per-run report cap");
}

FlightRecord &
FlightRecorder::liveRecord(TxId id)
{
    FlightRecord &rec = live_[id];
    if (rec.id == invalidTxId)
        rec.id = id; // first sighting through a non-begin hook
    return rec;
}

void
FlightRecorder::onBegin(TxId id, ThreadId thread, ProcId proc, Tick now)
{
    FlightRecord &rec = live_[id];
    rec.id = id;
    rec.thread = thread;
    rec.proc = proc;
    rec.firstBegin = now;
    rec.lastBegin = now;
    rec.attempts = 1;
}

void
FlightRecorder::onRestart(TxId id, Tick now, unsigned attempts)
{
    FlightRecord &rec = liveRecord(id);
    rec.lastBegin = now;
    rec.attempts = attempts;
}

void
FlightRecorder::onAbort(TxId id, Tick now, std::uint8_t cause,
                        Addr where, TxId winner)
{
    FlightRecord &rec = liveRecord(id);
    FlightAbortEvent &ev =
        rec.recentAborts[rec.abortCount % FlightRecord::maxAborts];
    ev.tick = now;
    ev.attempt = rec.attempts;
    ev.cause = cause;
    ev.where = where;
    ev.winner = winner;
    ++rec.abortCount;
    if (now >= rec.lastBegin)
        rec.lostTicks += now - rec.lastBegin;
    // `rec` may dangle after the winner lookup below (FlatMap
    // insertion can rehash), so read what the trigger needs first.
    unsigned abort_count = rec.abortCount;
    if (winner != invalidTxId)
        ++liveRecord(winner).kills;
    if (armed_ && params_.onAbortThreshold &&
        abort_count == params_.onAbortThreshold) {
        trigger(PostmortemTrigger::AbortThreshold, id, now,
                "transaction reached --postmortem-on-abort=" +
                    std::to_string(params_.onAbortThreshold));
    }
}

void
FlightRecorder::onCommit(TxId id, Tick now)
{
    FlightRecord *rec = live_.find(id);
    if (!rec)
        return;
    rec->endTick = now;
    rec->committed = true;
    // Retire into the ring; evicting a valid record truncates history,
    // so count the drop and keep its wasted ticks for reconciliation.
    if (ring_.size() < params_.depth) {
        ring_.push_back(*rec);
    } else {
        FlightRecord &slot = ring_[ring_next_];
        ring_next_ = (ring_next_ + 1) % ring_.size();
        ++droppedRecords;
        dropped_wasted_ += slot.wastedTicks;
        slot = *rec;
    }
    ++retiredRecords;
    live_.erase(id);
}

void
FlightRecorder::onWasted(TxId id, Tick amount)
{
    liveRecord(id).wastedTicks += amount;
}

void
FlightRecorder::onSptMiss(TxId id)
{
    ++liveRecord(id).sptMisses;
}

void
FlightRecorder::onTavMiss(TxId id)
{
    ++liveRecord(id).tavMisses;
}

void
FlightRecorder::onShadowAlloc(TxId id)
{
    ++liveRecord(id).shadowAllocs;
}

const FlightRecord *
FlightRecorder::record(TxId id) const
{
    if (const FlightRecord *rec = live_.find(id))
        return rec;
    // Newest-to-oldest ring scan (bounded by depth; trigger/snapshot
    // paths only).
    for (std::size_t i = ring_.size(); i-- > 0;) {
        std::size_t at = (ring_next_ + i) % ring_.size();
        if (ring_[at].id == id)
            return &ring_[at];
    }
    return nullptr;
}

const FlightAbortEvent *
FlightRecorder::lastAbortBefore(TxId id, Tick bound) const
{
    const FlightRecord *rec = record(id);
    if (!rec)
        return nullptr;
    for (unsigned i = 0; i < rec->storedAborts(); ++i) {
        const FlightAbortEvent &ev = rec->recentAbort(i);
        if (ev.tick < bound)
            return &ev;
    }
    return nullptr;
}

unsigned
FlightRecorder::chainDepthOf(const FlightRecord &rec) const
{
    unsigned depth = 0;
    TxId tx = rec.id;
    Tick bound = ~Tick(0);
    while (depth < params_.generations) {
        const FlightAbortEvent *ev = lastAbortBefore(tx, bound);
        if (!ev || ev->winner == invalidTxId)
            break;
        ++depth;
        bound = ev->tick;
        tx = ev->winner;
    }
    return depth;
}

void
FlightRecorder::buildDag(PostmortemReport &r, Tick now) const
{
    // Roots: every retained abort event of the subject. Each root
    // expands along latest-killer-before links, so edge targets have
    // strictly earlier ticks than their sources (acyclic by
    // construction; killers whose own aborts are unrecorded become
    // terminal nodes).
    struct Work
    {
        TxId tx;
        Tick bound;    //!< only aborts strictly before this tick
        unsigned gen;
        std::size_t from; //!< parent node index; npos for roots
    };
    constexpr std::size_t npos = ~std::size_t(0);
    std::vector<Work> queue;
    const FlightRecord *subject = record(r.subject);
    if (subject) {
        Tick bound = now + 1;
        for (unsigned i = 0; i < subject->storedAborts(); ++i) {
            const FlightAbortEvent &ev = subject->recentAbort(i);
            if (ev.tick >= bound)
                continue;
            PostmortemNode n;
            n.tx = r.subject;
            n.tick = ev.tick;
            n.attempt = ev.attempt;
            n.cause = ev.cause;
            n.where = ev.where;
            n.winner = ev.winner;
            n.generation = 0;
            std::size_t idx = r.nodes.size();
            r.nodes.push_back(n);
            if (ev.winner != invalidTxId)
                queue.push_back({ev.winner, ev.tick, 1, idx});
            bound = ev.tick;
        }
    }
    if (r.nodes.empty()) {
        // Subject unknown or never aborted: a single terminal node.
        PostmortemNode n;
        n.tx = r.subject;
        r.nodes.push_back(n);
    }
    for (std::size_t qi = 0;
         qi < queue.size() && r.nodes.size() < maxNodes; ++qi) {
        Work w = queue[qi];
        const FlightAbortEvent *ev = lastAbortBefore(w.tx, w.bound);
        PostmortemNode n;
        n.tx = w.tx;
        n.generation = w.gen;
        if (ev) {
            n.tick = ev->tick;
            n.attempt = ev->attempt;
            n.cause = ev->cause;
            n.where = ev->where;
            n.winner = ev->winner;
        }
        // Dedup: the same (tx, tick) event reached along another path
        // just gains an edge.
        std::size_t idx = npos;
        for (std::size_t i = 0; i < r.nodes.size(); ++i) {
            if (r.nodes[i].tx == n.tx && r.nodes[i].tick == n.tick) {
                idx = i;
                break;
            }
        }
        bool fresh = idx == npos;
        if (fresh) {
            idx = r.nodes.size();
            r.nodes.push_back(n);
        }
        if (w.from != npos)
            r.edges.push_back({w.from, idx});
        r.chainDepth = std::max(r.chainDepth, w.gen);
        if (fresh && ev && ev->winner != invalidTxId &&
            w.gen < params_.generations)
            queue.push_back({ev->winner, ev->tick, w.gen + 1, idx});
    }

    // Attach the flight records of every involved transaction.
    std::vector<TxId> ids;
    for (const PostmortemNode &n : r.nodes)
        ids.push_back(n.tx);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (TxId id : ids)
        if (const FlightRecord *rec = record(id))
            r.records.push_back(*rec);
}

void
FlightRecorder::trigger(PostmortemTrigger t, TxId subject, Tick now,
                        std::string detail)
{
    if (!armed_)
        return;
    if (reports_.size() >= maxReports) {
        ++droppedReports;
        return;
    }
    PostmortemReport r;
    r.trigger = t;
    r.tick = now;
    r.subject = subject;
    r.detail = std::move(detail);
    buildDag(r, now);
    ++postmortems;
    reports_.push_back(std::move(r));
    if (onReport)
        onReport(reports_.back());
}

ForensicsSnapshot
FlightRecorder::snapshot() const
{
    ForensicsSnapshot s;
    s.enabled = true;
    s.armed = armed_;
    s.depth = params_.depth;
    s.generations = params_.generations;
    s.liveRecords = live_.size();
    s.retiredRecords = ring_.size();
    s.droppedRecords = droppedRecords.value();
    s.droppedWastedTicks = dropped_wasted_;
    s.postmortems = postmortems.value();
    s.droppedReports = droppedReports.value();
    s.reports = reports_;

    // Deterministic walk: collect all records and order by id (FlatMap
    // iteration order is unspecified).
    std::vector<const FlightRecord *> recs;
    live_.forEach([&](TxId, const FlightRecord &rec) {
        recs.push_back(&rec);
    });
    for (const FlightRecord &rec : ring_)
        recs.push_back(&rec);
    std::sort(recs.begin(), recs.end(),
              [](const FlightRecord *a, const FlightRecord *b) {
                  return a->id < b->id;
              });

    s.wastedTicksTotal = dropped_wasted_;
    for (const FlightRecord *rec : recs) {
        s.wastedTicksTotal += rec->wastedTicks;
        if (rec->wastedTicks > s.maxWastedTicks) {
            s.maxWastedTicks = rec->wastedTicks;
            s.maxWastedTx = rec->id;
        }
        if (rec->abortCount)
            s.deepestChain =
                std::max(s.deepestChain, chainDepthOf(*rec));
    }
    for (const PostmortemReport &r : reports_)
        s.deepestChain = std::max(s.deepestChain, r.chainDepth);

    std::vector<KillerRank> killers;
    for (const FlightRecord *rec : recs)
        if (rec->kills)
            killers.push_back({rec->id, rec->kills, rec->wastedTicks});
    std::sort(killers.begin(), killers.end(),
              [](const KillerRank &a, const KillerRank &b) {
                  if (a.kills != b.kills)
                      return a.kills > b.kills;
                  return a.tx < b.tx;
              });
    if (killers.size() > 5)
        killers.resize(5);
    s.topKillers = std::move(killers);
    return s;
}

} // namespace ptm
