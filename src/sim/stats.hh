/**
 * @file
 * Statistics package: self-describing, registry-backed metrics.
 *
 * Components keep natural member objects (Counter, Average,
 * TimeWeighted, Distribution) and register them, under stable names,
 * with the StatGroup that describes the component. All groups of one
 * simulated system live in its StatRegistry, which the harness can
 * enumerate formatter-agnostically: the plain-text dump, the JSON
 * emitter (harness/stats_io) and the report tables all render from the
 * same registration.
 *
 * Because the registry only *references* component-owned objects, a
 * StatSnapshot captures every registered value by copy so results can
 * outlive the System that produced them (harness::ExperimentResult).
 *
 * Duplicate registration — two stats with one name in a group, or two
 * groups with one name in a registry — is a hard error (panic), so a
 * refactor cannot silently alias two metrics onto one output line.
 */

#ifndef PTM_SIM_STATS_HH
#define PTM_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace ptm
{

/** A named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    Counter &
    operator+=(std::uint64_t n)
    {
        value_ += n;
        return *this;
    }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++n_;
    }

    double mean() const { return n_ ? sum_ / double(n_) : 0.0; }
    std::uint64_t samples() const { return n_; }
    double sum() const { return sum_; }
    void reset() { sum_ = 0; n_ = 0; }

  private:
    double sum_ = 0;
    std::uint64_t n_ = 0;
};

/**
 * A time-weighted average of a piecewise-constant quantity, used e.g.
 * for the "average live shadow pages at any instant" metric of Table 1.
 * Call set() whenever the quantity changes, finish() at end of sim.
 */
class TimeWeighted
{
  public:
    /** Record that the quantity becomes @p value at time @p now. */
    void
    set(std::uint64_t now, double value)
    {
        accumulate(now);
        value_ = value;
    }

    /** Close the measurement interval at time @p now. */
    void
    finish(std::uint64_t now)
    {
        accumulate(now);
    }

    /** Time-weighted mean over [first set, finish]. */
    double
    mean() const
    {
        return elapsed_ ? weighted_ / double(elapsed_) : value_;
    }

  private:
    void
    accumulate(std::uint64_t now)
    {
        if (started_ && now > last_) {
            weighted_ += value_ * double(now - last_);
            elapsed_ += now - last_;
        }
        last_ = now;
        started_ = true;
    }

    double value_ = 0;
    double weighted_ = 0;
    std::uint64_t elapsed_ = 0;
    std::uint64_t last_ = 0;
    bool started_ = false;
};

/**
 * Fixed-bucket histogram over [lo, hi): @p buckets equal-width bins
 * plus dedicated underflow/overflow bins. min/max/sum are tracked
 * exactly, so mean() is unaffected by the bucketing.
 */
class Distribution
{
  public:
    /**
     * @param lo       inclusive lower bound of the first bucket
     * @param hi       exclusive upper bound of the last bucket
     * @param buckets  number of equal-width buckets (>= 1)
     */
    Distribution(double lo, double hi, unsigned buckets);

    /** Record @p v occurring @p n times. */
    void sample(double v, std::uint64_t n = 1);

    std::uint64_t samples() const { return samples_; }
    double sum() const { return sum_; }
    double mean() const { return samples_ ? sum_ / double(samples_) : 0.0; }
    /** Smallest / largest sample seen (0 when empty). */
    double min() const { return samples_ ? min_ : 0.0; }
    double max() const { return samples_ ? max_ : 0.0; }

    unsigned buckets() const { return unsigned(counts_.size()); }
    double bucketLo() const { return lo_; }
    double bucketWidth() const { return width_; }
    /** Count of bucket @p i, covering [lo + i*w, lo + (i+1)*w). */
    std::uint64_t count(unsigned i) const { return counts_.at(i); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /**
     * Estimate the @p p-th percentile (0..100) by linear
     * interpolation within the bucket holding that rank, clamped to
     * [min(), max()]. Underflow ranks resolve to min(), overflow
     * ranks to max(); 0 when empty.
     */
    double percentile(double p) const;

    void reset();

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/** The statistic kinds a StatGroup can hold. */
enum class StatKind
{
    Counter,
    Average,
    TimeWeighted,
    Distribution,
    /** A derived value computed on demand (gauges, ratios). */
    Scalar,
};

/** Stable schema name of a kind ("counter", "distribution", ...). */
const char *statKindName(StatKind k);

/** One registered statistic: a name plus a typed reference. */
struct StatRef
{
    std::string name;
    /** Human-readable one-liner for --list-stats (may be empty). */
    std::string desc;
    StatKind kind = StatKind::Counter;
    const Counter *counter = nullptr;
    const Average *average = nullptr;
    const TimeWeighted *timeWeighted = nullptr;
    const Distribution *distribution = nullptr;
    std::function<double()> scalar;

    /** Best-effort numeric value (counter value / mean / scalar). */
    double numeric() const;
};

/**
 * The named statistics of one component. Registration order is
 * preserved for output; duplicate names are a hard error.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /**
     * @name Registration (panics on a duplicate @p stat_name)
     * The optional trailing @p desc is the human-readable description
     * surfaced by --list-stats.
     */
    /// @{
    void addCounter(const std::string &stat_name, const Counter *c,
                    const std::string &desc = "");
    void addAverage(const std::string &stat_name, const Average *a,
                    const std::string &desc = "");
    void addTimeWeighted(const std::string &stat_name,
                         const TimeWeighted *t,
                         const std::string &desc = "");
    void addDistribution(const std::string &stat_name,
                         const Distribution *d,
                         const std::string &desc = "");
    /** Register a derived value computed by @p fn at read time. */
    void addScalar(const std::string &stat_name,
                   std::function<double()> fn,
                   const std::string &desc = "");
    /// @}

    const std::string &name() const { return name_; }

    /** All registered statistics, in registration order. */
    const std::vector<StatRef> &stats() const { return stats_; }

    /** Find a registered statistic; nullptr if absent. */
    const StatRef *find(const std::string &stat_name) const;

    /** Dump all registered statistics as "group.stat value" lines. */
    void dump(std::ostream &os) const;

    /** Look up a registered counter's value; 0 if absent. */
    std::uint64_t counterValue(const std::string &stat_name) const;

  private:
    void addRef(StatRef ref);

    std::string name_;
    std::vector<StatRef> stats_;
    std::map<std::string, std::size_t> index_;
};

/**
 * All stat groups of one simulated system. Owns the groups; group
 * references stay valid for the registry's lifetime.
 */
class StatRegistry
{
  public:
    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** Create a group named @p name (panics on a duplicate). */
    StatGroup &addGroup(const std::string &name);

    /** Find a group by name; nullptr if absent. */
    const StatGroup *find(const std::string &name) const;

    /** All groups, in registration order. */
    const std::vector<std::unique_ptr<StatGroup>> &groups() const
    {
        return groups_;
    }

    /** Dump every group as "group.stat value" lines. */
    void dump(std::ostream &os) const;

    /** Value of "group.stat" counter; 0 if absent. */
    std::uint64_t counterValue(const std::string &path) const;

  private:
    std::vector<std::unique_ptr<StatGroup>> groups_;
    std::map<std::string, std::size_t> index_;
};

/** Value-copy of a Distribution for snapshots. */
struct DistSnapshot
{
    double lo = 0;
    double width = 0;
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t samples = 0;
    double sum = 0;
    double min = 0;
    double max = 0;

    double mean() const { return samples ? sum / double(samples) : 0.0; }

    /** Percentile estimate; see Distribution::percentile. */
    double percentile(double p) const;
};

/** Value-copy of one registered statistic. */
struct StatValue
{
    StatKind kind = StatKind::Counter;
    /** Counter value / Average-TimeWeighted mean / Scalar value. */
    double value = 0;
    /** Counter value (exact) or sample count. */
    std::uint64_t count = 0;
    DistSnapshot dist; //!< populated for StatKind::Distribution
};

/**
 * A by-value capture of every statistic in a registry, taken at one
 * instant. Snapshots survive the System they were taken from and are
 * what the front ends query and the JSON emitter serializes.
 *
 * Stats are addressed by "group.stat" paths.
 */
class StatSnapshot
{
  public:
    struct Group
    {
        std::string name;
        std::vector<std::pair<std::string, StatValue>> stats;
    };

    StatSnapshot() = default;
    explicit StatSnapshot(const StatRegistry &reg);

    const std::vector<Group> &groups() const { return groups_; }

    /** Find "group.stat"; nullptr if absent. */
    const StatValue *find(const std::string &path) const;

    bool has(const std::string &path) const { return find(path); }

    /** Integer value of a counter-like stat at @p path; 0 if absent. */
    std::uint64_t counter(const std::string &path) const;

    /** Best-effort numeric value of @p path; 0.0 if absent. */
    double value(const std::string &path) const;

  private:
    std::vector<Group> groups_;
    std::map<std::string, StatValue> index_;
};

} // namespace ptm

#endif // PTM_SIM_STATS_HH
