/**
 * @file
 * Lightweight statistics package.
 *
 * Components register named counters with a StatGroup; the harness can
 * enumerate, print, and diff them. Only the statistic kinds the PTM
 * evaluation needs are provided: scalar counters, averages, and
 * fixed-bucket distributions.
 */

#ifndef PTM_SIM_STATS_HH
#define PTM_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ptm
{

/** A named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    Counter &
    operator+=(std::uint64_t n)
    {
        value_ += n;
        return *this;
    }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++n_;
    }

    double mean() const { return n_ ? sum_ / double(n_) : 0.0; }
    std::uint64_t samples() const { return n_; }
    double sum() const { return sum_; }
    void reset() { sum_ = 0; n_ = 0; }

  private:
    double sum_ = 0;
    std::uint64_t n_ = 0;
};

/**
 * A time-weighted average of a piecewise-constant quantity, used e.g.
 * for the "average live shadow pages at any instant" metric of Table 1.
 * Call set() whenever the quantity changes, finish() at end of sim.
 */
class TimeWeighted
{
  public:
    /** Record that the quantity becomes @p value at time @p now. */
    void
    set(std::uint64_t now, double value)
    {
        accumulate(now);
        value_ = value;
    }

    /** Close the measurement interval at time @p now. */
    void
    finish(std::uint64_t now)
    {
        accumulate(now);
    }

    /** Time-weighted mean over [first set, finish]. */
    double
    mean() const
    {
        return elapsed_ ? weighted_ / double(elapsed_) : value_;
    }

  private:
    void
    accumulate(std::uint64_t now)
    {
        if (started_ && now > last_) {
            weighted_ += value_ * double(now - last_);
            elapsed_ += now - last_;
        }
        last_ = now;
        started_ = true;
    }

    double value_ = 0;
    double weighted_ = 0;
    std::uint64_t elapsed_ = 0;
    std::uint64_t last_ = 0;
    bool started_ = false;
};

/**
 * A registry of named statistics owned by one component. Values are
 * stored as name -> pointer so components keep natural member counters
 * while still being enumerable for reports.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name. */
    void
    addCounter(const std::string &stat_name, const Counter *c)
    {
        counters_[stat_name] = c;
    }

    void
    addAverage(const std::string &stat_name, const Average *a)
    {
        averages_[stat_name] = a;
    }

    const std::string &name() const { return name_; }

    /** Dump all registered statistics as "group.stat value" lines. */
    void dump(std::ostream &os) const;

    /** Look up a registered counter's value; 0 if absent. */
    std::uint64_t counterValue(const std::string &stat_name) const;

  private:
    std::string name_;
    std::map<std::string, const Counter *> counters_;
    std::map<std::string, const Average *> averages_;
};

} // namespace ptm

#endif // PTM_SIM_STATS_HH
