/**
 * @file
 * Error-reporting and status-message helpers, following the gem5
 * panic/fatal/warn/inform conventions:
 *
 *  - panic():  an internal simulator invariant was violated (a bug in
 *              this code base). Aborts.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, impossible parameters). Exits.
 *  - warn():   something works but is suspicious; execution continues.
 *  - inform(): purely informational status output.
 */

#ifndef PTM_SIM_LOGGING_HH
#define PTM_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace ptm
{

/** Internal invariant violation: print and abort(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Unrecoverable user/configuration error: print and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message (stdout unless redirected, see below). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Route inform() to stderr instead of stdout. Tools that stream
 * machine-readable rows on stdout (bench --json -) use this to keep
 * stdout strictly one-JSON-object-per-line.
 */
void setInformToStderr(bool on);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace ptm

#define panic(...) ::ptm::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::ptm::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** gem5-style assertion that panics with a message on failure. */
#define panic_if(cond, ...)                                              \
    do {                                                                 \
        if (cond)                                                        \
            panic(__VA_ARGS__);                                          \
    } while (0)

#define fatal_if(cond, ...)                                              \
    do {                                                                 \
        if (cond)                                                        \
            fatal(__VA_ARGS__);                                          \
    } while (0)

#endif // PTM_SIM_LOGGING_HH
