/**
 * @file
 * Public surface of the kv serving workload: request-stream
 * parameters, the deterministic op-program generator, and the B+-tree
 * page layout. Split from kv.cc so the unit tests can exercise
 * program generation, the Zipfian key mapping, and the node/page
 * layout without running the simulator.
 *
 * The store is a B+-tree over a dense power-of-two key space laid out
 * in simulated memory:
 *
 *  - a meta page (root pointer, depth, key count, magic);
 *  - inner nodes of 32 words (128 B): [level][15 separators]
 *    [16 child pointers], read-only after initialization;
 *  - leaves of 2 + 16*vwords words, 64-byte aligned: [occupancy]
 *    [next-leaf pointer][16 value slots]. Slot word 0 is the record
 *    tag (0 = absent, the insert path keeps tags odd), words 1..V-1
 *    are a payload derived from the tag.
 *
 * Every transaction walks root->leaf through loaded child pointers,
 * so hot inner pages are re-read by every operation while Zipfian
 * skew concentrates leaf traffic — the locality the SPT/TAV caches
 * are built for. Writes are key-partitioned by owner thread
 * (owner(k) = k mod threads), which keeps the final store contents
 * independent of commit interleaving: the host oracle replays each
 * thread's stream sequentially and compares the final memory image.
 */

#ifndef PTM_WORKLOADS_KV_HH
#define PTM_WORKLOADS_KV_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"
#include "workloads/workload.hh"

namespace ptm::kv
{

/** Request-stream and store-shape parameters. */
struct Params
{
    unsigned threads = 4;
    std::uint64_t seed = 1;
    /** Key-space size; power of two in [32, 4194304]. */
    std::uint64_t keys = 1u << 17;
    /** Zipfian skew theta in [0, 1); 0 = uniform. */
    double zipf = 0.99;
    /** Operations per thread. */
    std::uint64_t ops = 12000;
    /** Operations grouped into one transaction. */
    std::uint64_t txOps = 32;
    /** 32-bit value words per record (1..16). */
    std::uint64_t vwords = 2;
    /** Keys visited per range scan. */
    std::uint64_t scanLen = 512;
    /** Op mix in percent; must sum to 100. */
    std::uint64_t lookupPct = 60;
    std::uint64_t scanPct = 15;
    std::uint64_t insertPct = 15;
    std::uint64_t deletePct = 10;
    /** Percent of keys present before the run. */
    std::uint64_t preloadPct = 50;
    /**
     * Test hook: when non-zero, the simulated program of thread 0
     * silently drops one insert (the host oracle still applies it),
     * seeding a lost update that verify() must catch.
     */
    std::uint64_t dropWrite = 0;
};

/**
 * Read and validate the kv option table from @p cfg (fatal on invalid
 * combinations). scale=0 maps to the tiny preset (keys=2048,
 * ops=1500, scan-len=8) for any of those options not set explicitly.
 */
Params paramsFromConfig(const WorkloadConfig &cfg);

enum class OpType : std::uint8_t
{
    Lookup,
    Scan,
    Insert,
    Delete,
};

/** One generated request. */
struct Op
{
    OpType type = OpType::Lookup;
    std::uint32_t key = 0;
    /** Scan length (OpType::Scan only). */
    std::uint32_t len = 0;

    bool
    isWrite() const
    {
        return type == OpType::Insert || type == OpType::Delete;
    }

    bool
    operator==(const Op &o) const
    {
        return type == o.type && key == o.key && len == o.len;
    }
};

/**
 * Generate thread @p thread's op program: bit-exact for a given
 * (params, thread), independent of everything else. Keys are drawn
 * Zipfian-by-rank and scattered over the key space by a seeded
 * bijection; write ops are remapped to the thread's own key partition.
 */
std::vector<Op> generateProgram(const Params &p, unsigned thread);

/** The seeded rank -> key scatter bijection (power-of-two @p keys). */
std::uint32_t scatterKey(std::uint64_t rank, std::uint64_t keys,
                         std::uint64_t seed);

/** Record tag written by op @p opIndex of @p thread (odd, non-zero). */
std::uint32_t valueTag(std::uint64_t seed, unsigned thread,
                       std::uint64_t opIndex, std::uint32_t key);

/** Record tag of a preloaded key (odd, non-zero). */
std::uint32_t preloadTag(std::uint64_t seed, std::uint32_t key);

/** Whether @p key is present before the run starts. */
bool preloaded(const Params &p, std::uint32_t key);

/** Payload word @p w (1..vwords-1) of a record with @p tag. */
std::uint32_t payloadWord(std::uint32_t tag, unsigned w);

/**
 * The final store contents (index = key, value = tag, 0 = absent)
 * after every thread's program ran — the sequential oracle. Valid
 * because writes are key-partitioned per thread.
 */
std::vector<std::uint32_t> expectedFinal(const Params &p);

/**
 * The store contents after each thread committed exactly its first
 * counts[t] transactions (counts[t] * txOps ops, clamped to the
 * program length) — the committed-prefix oracle durable recovery
 * verifies against. Same shape as expectedFinal (index = key, value =
 * tag, 0 = absent); counts entries missing for a thread mean zero
 * commits. Valid for ANY per-thread prefix because writes are
 * key-partitioned per thread.
 */
std::vector<std::uint32_t>
expectedAfterCommits(const Params &p,
                     const std::vector<std::uint64_t> &counts);

/**
 * Walk every defined word of the store image implied by @p tags
 * (index = key, value = tag, 0 = absent): the meta page, every inner
 * node, and per leaf the occupancy counter, next pointer, slot tags
 * (including absent ones), and payload words of present records.
 * verify() and crash recovery both compare through this one walker,
 * so "bit-exact" means the same thing in both.
 */
void forEachWord(const Params &p,
                 const std::vector<std::uint32_t> &tags,
                 const std::function<void(Addr, std::uint32_t)> &emit);

/**
 * Index (into thread 0's program) of the insert the drop-write hook
 * suppresses: the last insert whose key thread 0 never writes again,
 * so the suppression is guaranteed to surface in the final image.
 * Falls back to the last insert; SIZE_MAX if there is none.
 */
std::size_t chooseDropIndex(const std::vector<Op> &program);

/** B+-tree page layout over simulated memory (see file comment). */
class Layout
{
  public:
    static constexpr unsigned kLeafKeys = 16; //!< key slots per leaf
    static constexpr unsigned kFanout = 16;   //!< inner-node fanout
    static constexpr unsigned kInnerWords = 2 * kFanout;
    static constexpr Addr kMetaBase = 0x40000000;
    static constexpr Addr kInnerBase = 0x48000000;
    static constexpr Addr kLeafBase = 0x60000000;
    static constexpr Addr kLockAddr = 0x7f000000;
    static constexpr std::uint32_t kMagic = 0x6B766B76; // "kvkv"

    Layout(std::uint64_t keys, std::uint64_t vwords);

    std::uint64_t keys() const { return keys_; }
    std::uint64_t vwords() const { return vwords_; }
    std::uint64_t leaves() const { return level_count_[0]; }
    /** Inner levels above the leaves (level 0); root is level depth(). */
    unsigned depth() const { return unsigned(level_count_.size() - 1); }
    /** Inner nodes at @p level (1..depth). */
    std::uint64_t innerCount(unsigned level) const;
    std::uint64_t innerTotal() const;

    /** Leaf stride in words (64-byte aligned). */
    unsigned leafStrideWords() const { return leaf_stride_words_; }

    Addr metaAddr() const { return kMetaBase; }
    Addr rootAddr() const { return innerAddr(depth(), 0); }
    Addr leafAddr(std::uint64_t leaf) const;
    Addr leafOccAddr(std::uint64_t leaf) const { return leafAddr(leaf); }
    Addr leafNextAddr(std::uint64_t l) const { return leafAddr(l) + 4; }
    Addr innerAddr(unsigned level, std::uint64_t idx) const;

    std::uint64_t leafOf(std::uint64_t key) const { return key / kLeafKeys; }
    /** Address of slot word 0 of @p key. */
    Addr slotAddr(std::uint64_t key) const;

    /** First key covered by node (@p level, @p idx). */
    std::uint64_t firstKey(unsigned level, std::uint64_t idx) const;
    /**
     * Separator @p s (0..kFanout-2) of an inner node: the first key of
     * child s+1, or the key count (sentinel) when that child is absent.
     */
    std::uint64_t sepValue(unsigned level, std::uint64_t idx,
                           unsigned s) const;
    /** Child pointer @p c of an inner node; 0 when absent. */
    Addr childAddr(unsigned level, std::uint64_t idx, unsigned c) const;

  private:
    std::uint64_t keys_;
    std::uint64_t vwords_;
    unsigned leaf_stride_words_;
    /** [0] = leaf count, [i] = inner-node count at level i. */
    std::vector<std::uint64_t> level_count_;
    /** Node-index offset of each inner level in the inner region. */
    std::vector<std::uint64_t> level_offset_;
};

} // namespace ptm::kv

#endif // PTM_WORKLOADS_KV_HH
