/**
 * @file
 * ocean kernel: in-place red-black relaxation on a large grid
 * (SPLASH-2 OCEAN's dominant loop), the big-footprint / high-eviction
 * benchmark of Table 1.
 *
 * In Tx mode the chunks of an iteration run as ORDERED transactions
 * (section 2.2): the programmer is unsure about the cross-row
 * dependencies, wraps each chunk in an ordered transaction, and the
 * hardware discovers the real boundary-row conflicts — the source of
 * ocean's high abort count. Locks mode is the classic data-race-free
 * structure: a barrier between the red and black half-sweeps.
 */

#include "workloads/workload.hh"

namespace ptm
{

class OceanWorkload : public Workload
{
  public:
    explicit OceanWorkload(const WorkloadConfig &cfg) : Workload(cfg)
    {
        if (cfg.options.u64("scale") == 0) {
            rows_ = 48;
            cols_ = 64;
            iters_ = 2;
            chunk_rows_ = 6;
        } else {
            // Band-sized transactions whose footprint (~chunk_rows *
            // cols * 4 B * ~1.2) exceeds the 256 KB L2: ocean is the
            // heavy-overflow benchmark (Table 1: mop/evict 15.8).
            rows_ = 226;
            cols_ = 1280;
            iters_ = 2;
            chunk_rows_ = 56;
        }
    }

    const char *name() const override { return "ocean"; }

    void
    build(System &sys) override
    {
        proc_ = sys.createProcess();
        barrier_ = sys.createBarrier(cfg_.threads);
        const unsigned T = cfg_.threads;

        std::vector<std::vector<Step>> steps(T);
        for (unsigned t = 0; t < T; ++t) {
            unsigned r0 = t * rows_ / T;
            unsigned r1 = (t + 1) * rows_ / T;
            steps[t].push_back(
                PlainStep{[this, r0, r1](MemCtx m) -> TxCoro {
                    for (unsigned i = r0; i < r1; ++i) {
                        for (unsigned j = 0; j < cols_; ++j) {
                            co_await m.store(
                                g(i, j),
                                mixHash(std::uint64_t(i) * cols_ + j +
                                        cfg_.seed * 31));
                            // Read-only coefficient grid (bathymetry):
                            // transactions read it but never write it.
                            co_await m.store(
                                coef(i, j),
                                mixHash(std::uint64_t(i) * cols_ + j +
                                        cfg_.seed * 13 + 7) &
                                    0xff);
                        }
                    }
                }});
            pushBarrier(steps[t], barrier_);
        }

        // Bands are separated by one static "ghost" row (the classic
        // SPLASH decomposition), so band transactions never falsely
        // share boundary-row blocks.
        unsigned stride = chunk_rows_ + 1;
        unsigned chunks = (rows_ - 2 + stride - 1) / stride;
        for (unsigned it = 0; it < iters_; ++it) {
            std::uint32_t scope = 0;
            if (cfg_.mode == SyncMode::Tx)
                scope = sys.createOrderedScope();
            std::uint64_t rank = 0;
            // Red half-sweep then black half-sweep; in Tx mode both
            // colours' chunks are issued back-to-back as one ordered
            // stream (no barrier between the colours).
            for (unsigned colour = 0; colour < 2; ++colour) {
                // Rank r runs the idx-th chunk of band r%T: commits
                // interleave across the bands, so the chunks running
                // concurrently are spatially far apart and only the
                // band-boundary rows conflict.
                unsigned per_band = (chunks + T - 1) / T;
                for (unsigned idx = 0; idx < per_band; ++idx) {
                    for (unsigned g = 0; g < T; ++g) {
                        unsigned c = g * per_band + idx;
                        if (c >= chunks)
                            continue;
                        unsigned i0 = 1 + c * stride;
                        unsigned i1 =
                            std::min(rows_ - 1, i0 + chunk_rows_);
                        steps[g].push_back(orderedWork(
                            scope, rank++,
                            [this, i0, i1,
                             colour](MemCtx m) -> TxCoro {
                                co_await sweep(m, i0, i1, colour);
                            }));
                    }
                }
                if (cfg_.mode != SyncMode::Tx) {
                    // Data-race freedom via a barrier per colour.
                    for (unsigned t = 0; t < T; ++t)
                        pushBarrier(steps[t], barrier_);
                }
            }
            // Iterations are separated by a barrier in all modes.
            for (unsigned t = 0; t < T; ++t)
                pushBarrier(steps[t], barrier_);
        }

        for (unsigned t = 0; t < T; ++t)
            sys.addThread(proc_, std::move(steps[t]), "ocean");
    }

    bool
    verify(System &sys) const override
    {
        std::vector<std::uint32_t> G(rows_ * cols_);
        for (unsigned i = 0; i < rows_; ++i)
            for (unsigned j = 0; j < cols_; ++j)
                G[i * cols_ + j] =
                    mixHash(std::uint64_t(i) * cols_ + j +
                            cfg_.seed * 31);
        unsigned stride = chunk_rows_ + 1;
        for (unsigned it = 0; it < iters_; ++it) {
            for (unsigned colour = 0; colour < 2; ++colour) {
                for (unsigned i = 1; i + 1 < rows_; ++i) {
                    if ((i - 1) % stride == chunk_rows_)
                        continue; // static ghost row
                    for (unsigned j = 1; j + 1 < cols_; ++j) {
                        if (((i + j) & 1) != colour)
                            continue;
                        std::uint32_t v = relax(
                            G[(i - 1) * cols_ + j],
                            G[(i + 1) * cols_ + j],
                            G[i * cols_ + j - 1],
                            G[i * cols_ + j + 1],
                            G[i * cols_ + j],
                            mixHash(std::uint64_t(i) * cols_ + j +
                                    cfg_.seed * 13 + 7) &
                                0xff);
                        G[i * cols_ + j] = v;
                    }
                }
            }
        }
        for (unsigned i = 0; i < rows_; ++i)
            for (unsigned j = 0; j < cols_; ++j)
                if (sys.readWord32(proc_, g(i, j)) != G[i * cols_ + j])
                    return false;
        return true;
    }

  private:
    Addr
    g(unsigned i, unsigned j) const
    {
        return 0x10000000 + (Addr(i) * cols_ + j) * 4;
    }

    Addr
    coef(unsigned i, unsigned j) const
    {
        return 0x20000000 + (Addr(i) * cols_ + j) * 4;
    }

    static std::uint32_t
    relax(std::uint32_t n, std::uint32_t s, std::uint32_t w,
          std::uint32_t e, std::uint32_t c, std::uint32_t k)
    {
        return (n + s + w + e) / 4 + (c >> 1) + 3 + k;
    }

    /** One colour's relaxation over rows [i0, i1). */
    TxCoro
    sweep(MemCtx m, unsigned i0, unsigned i1, unsigned colour)
    {
        for (unsigned i = i0; i < i1; ++i) {
            for (unsigned j = 1; j + 1 < cols_; ++j) {
                if (((i + j) & 1) != colour)
                    continue;
                std::uint32_t n = std::uint32_t(
                    co_await m.load(g(i - 1, j)));
                std::uint32_t s = std::uint32_t(
                    co_await m.load(g(i + 1, j)));
                std::uint32_t w = std::uint32_t(
                    co_await m.load(g(i, j - 1)));
                std::uint32_t e = std::uint32_t(
                    co_await m.load(g(i, j + 1)));
                std::uint32_t c = std::uint32_t(
                    co_await m.load(g(i, j)));
                std::uint32_t k = std::uint32_t(
                    co_await m.load(coef(i, j)));
                co_await m.store(g(i, j), relax(n, s, w, e, c, k));
            }
        }
    }

    unsigned rows_, cols_, iters_, chunk_rows_;
    ProcId proc_ = 0;
    unsigned barrier_ = 0;
};

void
registerOceanWorkload()
{
    static WorkloadRegistrar reg(
        {"ocean",
         "red-black grid relaxation (the suite's largest footprint)",
         {scaleOption()},
         [](const WorkloadConfig &cfg) -> std::unique_ptr<Workload> {
             return std::make_unique<OceanWorkload>(cfg);
         },
         /*order=*/3, /*paperKernel=*/true});
}

} // namespace ptm
