/**
 * @file
 * fft kernel: the transpose-heavy phase structure of SPLASH-2 FFT.
 *
 * R rounds of (row-local butterfly into B) -> (transpose back into A),
 * with barriers between half-phases. In Tx mode each thread's
 * half-phase is one large transaction — the few-large-transactions
 * profile of Table 1's fft row — plus a global checksum update at the
 * end of every transpose transaction, which provides the paper's small
 * abort count.
 */

#include "locks/spinlock.hh"
#include "workloads/workload.hh"

namespace ptm
{

class FftWorkload : public Workload
{
  public:
    explicit FftWorkload(const WorkloadConfig &cfg) : Workload(cfg)
    {
        // Default size makes one thread's half-phase footprint
        // (2 * n^2 / threads words) exceed the 256 KB L2, so fft
        // overflows like the paper's (Table 1: mop/evict 87).
        bool tiny = cfg.options.u64("scale") == 0;
        n_ = tiny ? 48 : 384;
        rounds_ = tiny ? 2 : 3;
    }

    const char *name() const override { return "fft"; }

    void
    build(System &sys) override
    {
        proc_ = sys.createProcess();
        barrier_ = sys.createBarrier(cfg_.threads);

        for (unsigned t = 0; t < cfg_.threads; ++t) {
            unsigned r0 = t * n_ / cfg_.threads;
            unsigned r1 = (t + 1) * n_ / cfg_.threads;
            std::vector<Step> steps;

            // Parallel initialization of the thread's rows, plus the
            // read-only input array (touched by transactions but never
            // transactionally written: it keeps Table 1's conservative
            // shadow-page bound below 100%).
            steps.push_back(PlainStep{[this, r0, r1](MemCtx m) -> TxCoro {
                for (unsigned i = r0; i < r1; ++i)
                    for (unsigned j = 0; j < n_; ++j) {
                        co_await m.store(
                            a(i, j),
                            mixHash(std::uint64_t(i) * n_ + j +
                                    cfg_.seed));
                        co_await m.store(
                            in(i, j),
                            mixHash(std::uint64_t(i) * n_ + j +
                                    cfg_.seed * 3 + 1));
                    }
            }});
            pushBarrier(steps, barrier_);

            for (unsigned r = 0; r < rounds_; ++r) {
                // Butterfly half-phase: row-local, conflict-free.
                steps.push_back(
                    work([this, r0, r1](MemCtx m) -> TxCoro {
                        for (unsigned i = r0; i < r1; ++i) {
                            for (unsigned j = 0; j < n_; ++j) {
                                std::uint32_t x =
                                    std::uint32_t(co_await m.load(
                                        a(i, j)));
                                std::uint32_t y =
                                    std::uint32_t(co_await m.load(
                                        a(i, j ^ 1)));
                                std::uint32_t w =
                                    std::uint32_t(co_await m.load(
                                        in(i, j)));
                                co_await m.store(
                                    b(i, j),
                                    x * 5 + (y ^ 0x9e37) + w);
                            }
                        }
                    }));
                pushBarrier(steps, barrier_);

                // Transpose half-phase: writes columns of A; the
                // final checksum store races with the other threads'
                // transposes (a short conflict window).
                steps.push_back(
                    work([this, r0, r1](MemCtx m) -> TxCoro {
                        std::uint32_t local = 0;
                        for (unsigned i = r0; i < r1; ++i) {
                            for (unsigned j = 0; j < n_; ++j) {
                                std::uint32_t x =
                                    std::uint32_t(co_await m.load(
                                        b(i, j)));
                                std::uint32_t v = x * 3 + 1;
                                co_await m.store(a(j, i), v);
                                local += v;
                            }
                        }
                        if (cfg_.mode == SyncMode::Locks)
                            co_await spinLock(m, ckLock());
                        std::uint64_t ck = co_await m.load(ckAddr());
                        co_await m.store(
                            ckAddr(), std::uint32_t(ck) + local);
                        if (cfg_.mode == SyncMode::Locks)
                            co_await spinUnlock(m, ckLock());
                    }));
                pushBarrier(steps, barrier_);
            }
            sys.addThread(proc_, std::move(steps), "fft");
        }
    }

    bool
    verify(System &sys) const override
    {
        // Host reference.
        std::vector<std::uint32_t> A(n_ * n_), B(n_ * n_), IN(n_ * n_);
        for (unsigned i = 0; i < n_; ++i) {
            for (unsigned j = 0; j < n_; ++j) {
                A[i * n_ + j] =
                    mixHash(std::uint64_t(i) * n_ + j + cfg_.seed);
                IN[i * n_ + j] = mixHash(std::uint64_t(i) * n_ + j +
                                         cfg_.seed * 3 + 1);
            }
        }
        std::uint32_t ck = 0;
        for (unsigned r = 0; r < rounds_; ++r) {
            for (unsigned i = 0; i < n_; ++i)
                for (unsigned j = 0; j < n_; ++j)
                    B[i * n_ + j] = A[i * n_ + j] * 5 +
                                    (A[i * n_ + (j ^ 1)] ^ 0x9e37) +
                                    IN[i * n_ + j];
            for (unsigned i = 0; i < n_; ++i) {
                for (unsigned j = 0; j < n_; ++j) {
                    std::uint32_t v = B[i * n_ + j] * 3 + 1;
                    A[j * n_ + i] = v;
                    ck += v;
                }
            }
        }

        for (unsigned i = 0; i < n_; ++i)
            for (unsigned j = 0; j < n_; ++j)
                if (sys.readWord32(proc_, a(i, j)) != A[i * n_ + j])
                    return false;
        return sys.readWord32(proc_, ckAddr()) == ck;
    }

  private:
    Addr
    a(unsigned i, unsigned j) const
    {
        return 0x10000000 + (Addr(i) * n_ + j) * 4;
    }

    Addr
    b(unsigned i, unsigned j) const
    {
        return 0x20000000 + (Addr(i) * n_ + j) * 4;
    }

    Addr
    in(unsigned i, unsigned j) const
    {
        return 0x28000000 + (Addr(i) * n_ + j) * 4;
    }

    Addr ckAddr() const { return 0x30000000; }
    Addr ckLock() const { return 0x30001000; }

    unsigned n_;
    unsigned rounds_;
    ProcId proc_ = 0;
    unsigned barrier_ = 0;
};

void
registerFftWorkload()
{
    static WorkloadRegistrar reg(
        {"fft",
         "1D FFT phases with all-to-all transposes (overflow-heavy)",
         {scaleOption()},
         [](const WorkloadConfig &cfg) -> std::unique_ptr<Workload> {
             return std::make_unique<FftWorkload>(cfg);
         },
         /*order=*/0, /*paperKernel=*/true});
}

} // namespace ptm
