/**
 * @file
 * Workload kernels for the evaluation — C++ re-creations of the five
 * SPLASH-2 loop-region benchmarks of the paper (fft, lu, radix, ocean,
 * water), each buildable in three synchronization modes:
 *
 *  - Serial: one thread, no synchronization (the speedup baseline);
 *  - Locks:  the original-style pthread synchronization (barriers and
 *            spinlocks through the coherence protocol);
 *  - Tx:     loop bodies wrapped in transactions, ordered transactions
 *            where the loop may carry dependencies (section 2.2).
 *
 * All kernels compute on wrapping 32-bit integers so every mode has a
 * bit-exact expected result; verify() recomputes it on the host and
 * compares the simulated memory. Footprints are scaled-down versions
 * of the paper's (Table 1) preserving the relative ordering:
 * ocean >> lu >= fft > radix > water, with water cache-resident.
 */

#ifndef PTM_WORKLOADS_WORKLOAD_HH
#define PTM_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "harness/system.hh"

namespace ptm
{

/** How a workload synchronizes. */
enum class SyncMode
{
    Serial,
    Locks,
    Tx,
};

/** Mode implied by a system kind (locks for Locks, tx for TM kinds). */
SyncMode syncModeFor(TmKind kind);

/** Workload construction parameters. */
struct WorkloadConfig
{
    unsigned threads = 4;
    SyncMode mode = SyncMode::Tx;
    std::uint64_t seed = 1;
    /**
     * Footprint scale: 1 = default (benchmark) size, 0 selects the
     * tiny test size.
     */
    int scale = 1;
};

/** Base class of the five kernels. */
class Workload
{
  public:
    explicit Workload(const WorkloadConfig &cfg) : cfg_(cfg)
    {
        if (cfg_.mode == SyncMode::Serial)
            cfg_.threads = 1;
    }

    virtual ~Workload() = default;

    virtual const char *name() const = 0;

    /** Create processes/threads/barriers in @p sys. Call once. */
    virtual void build(System &sys) = 0;

    /** Compare the simulated result with the host reference. */
    virtual bool verify(System &sys) const = 0;

    const WorkloadConfig &config() const { return cfg_; }

  protected:
    /** Wrap a loop body per the synchronization mode. */
    Step
    work(CoroFactory f) const
    {
        if (cfg_.mode == SyncMode::Tx) {
            TxStep s;
            s.body = std::move(f);
            return s;
        }
        PlainStep s;
        s.body = std::move(f);
        return s;
    }

    /** Wrap an order-sensitive loop body (ordered tx in Tx mode). */
    Step
    orderedWork(std::uint32_t scope, std::uint64_t rank,
                CoroFactory f) const
    {
        if (cfg_.mode == SyncMode::Tx) {
            TxStep s;
            s.body = std::move(f);
            s.ordered = true;
            s.scope = scope;
            s.rank = rank;
            return s;
        }
        PlainStep s;
        s.body = std::move(f);
        return s;
    }

    WorkloadConfig cfg_;
};

/**
 * Append a barrier step to @p steps. Out of line on purpose: pushing
 * the BarrierStep temporary straight into the Step variant vector
 * makes GCC 12 emit spurious -Wmaybe-uninitialized warnings about the
 * TxStep alternative's std::function storage.
 */
void pushBarrier(std::vector<Step> &steps, unsigned barrier_id);

/** Deterministic value hash used for workload initialization. */
inline std::uint32_t
mixHash(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 32;
    return std::uint32_t(x);
}

/**
 * Instantiate a kernel by name ("fft", "lu", "radix", "ocean",
 * "water"); fatal on unknown names.
 */
std::unique_ptr<Workload> makeWorkload(std::string_view name,
                                       const WorkloadConfig &cfg);

/** The five kernel names in the paper's Table 1 order. */
const std::vector<std::string> &workloadNames();

} // namespace ptm

#endif // PTM_WORKLOADS_WORKLOAD_HH
