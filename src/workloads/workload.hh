/**
 * @file
 * Workload kernels and the workload plugin registry.
 *
 * The evaluation suite holds C++ re-creations of the five SPLASH-2
 * loop-region benchmarks of the paper (fft, lu, radix, ocean, water)
 * plus serving-style kernels (kv), each buildable in three
 * synchronization modes:
 *
 *  - Serial: one thread, no synchronization (the speedup baseline);
 *  - Locks:  the original-style pthread synchronization (barriers and
 *            spinlocks through the coherence protocol);
 *  - Tx:     loop bodies wrapped in transactions, ordered transactions
 *            where the loop may carry dependencies (section 2.2).
 *
 * All kernels compute on wrapping 32-bit integers so every mode has a
 * bit-exact expected result; verify() recomputes it on the host and
 * compares the simulated memory. Footprints are scaled-down versions
 * of the paper's (Table 1) preserving the relative ordering:
 * ocean >> lu >= fft > radix > water, with water cache-resident.
 *
 * Workloads are constructed through WorkloadRegistry: each entry
 * carries a factory, a one-line description, and a table of validated
 * key=value options (surfaced as `--wl-opt key=value` and
 * `--list-workloads` in the front ends). Adding a workload means
 * implementing the kernel, registering a WorkloadInfo for it, and —
 * for kernels living in libptm — listing its register function in
 * registerBuiltinWorkloads() so the archive member is not dropped by
 * the linker (a pure static-registrar object in an otherwise
 * unreferenced static-library member never runs).
 */

#ifndef PTM_WORKLOADS_WORKLOAD_HH
#define PTM_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/system.hh"

namespace ptm
{

/** How a workload synchronizes. */
enum class SyncMode
{
    Serial,
    Locks,
    Tx,
};

/** Mode implied by a system kind (locks for Locks, tx for TM kinds). */
SyncMode syncModeFor(TmKind kind);

/** One key=value option a workload accepts, with validation kind. */
struct WorkloadOption
{
    enum class Kind
    {
        U64,  //!< unsigned integer value
        Real, //!< floating-point value
    };

    std::string name;
    Kind kind = Kind::U64;
    /** Default value (string form, validated at registration use). */
    std::string defaultValue;
    std::string help;
};

/** The "scale" option every Table 1 kernel accepts. */
inline WorkloadOption
scaleOption()
{
    return {"scale", WorkloadOption::Kind::U64, "1",
            "0 = tiny test size, 1 = benchmark size"};
}

/** Raw (name, value) pairs as collected from the command line. */
using WorkloadOptList = std::vector<std::pair<std::string, std::string>>;

/**
 * Resolved per-workload options: every declared option is present
 * (defaults filled in), values are pre-validated against the declared
 * kind, and declaration order is preserved for reproducible manifest
 * output. Produced by WorkloadRegistry::resolve().
 */
class WorkloadOptions
{
  public:
    bool has(const std::string &name) const;

    /** True if the value came from the user, not the default. */
    bool explicitlySet(const std::string &name) const;

    /** @name Typed getters (panic on an undeclared name / bad value) */
    /// @{
    std::uint64_t u64(const std::string &name) const;
    double real(const std::string &name) const;
    const std::string &str(const std::string &name) const;
    /// @}

    /** All options in declaration order (manifest emission). */
    const WorkloadOptList &items() const { return items_; }

    /** Insert or overwrite @p name (resolve() plumbing). */
    void set(const std::string &name, const std::string &value,
             bool is_explicit);

  private:
    WorkloadOptList items_;
    std::map<std::string, std::size_t> index_;
    std::set<std::string> explicit_;
};

/** Workload construction parameters. */
struct WorkloadConfig
{
    unsigned threads = 4;
    SyncMode mode = SyncMode::Tx;
    std::uint64_t seed = 1;
    /** Resolved options (see WorkloadRegistry::resolve). */
    WorkloadOptions options;
};

class Workload;

/** One registry entry: identity, documentation, options, factory. */
struct WorkloadInfo
{
    std::string name;
    /** One-line description for --list-workloads. */
    std::string description;
    /** The key=value options this workload accepts. */
    std::vector<WorkloadOption> options;
    std::function<std::unique_ptr<Workload>(const WorkloadConfig &)>
        factory;
    /** Stable enumeration order (independent of link order). */
    int order = 100;
    /** Member of the paper's Table 1 suite (bench enumeration). */
    bool paperKernel = false;
};

/**
 * The process-wide workload registry. Entries self-register through
 * WorkloadRegistrar; the libptm builtins are additionally anchored by
 * registerBuiltinWorkloads() so static linking cannot drop them.
 */
class WorkloadRegistry
{
  public:
    /** The registry, with the builtin workloads registered. */
    static WorkloadRegistry &instance();

    /** Register @p info (panics on a duplicate name). */
    void add(WorkloadInfo info);

    /** Find an entry by name; nullptr if unknown. */
    const WorkloadInfo *find(std::string_view name) const;

    /** Every entry, sorted by (order, name). */
    std::vector<const WorkloadInfo *> all() const;

    /** The declared option @p name of @p info; nullptr if absent. */
    static const WorkloadOption *findOption(const WorkloadInfo &info,
                                            std::string_view name);

    /**
     * Validate @p given against @p info's option table and produce the
     * resolved options (defaults filled, user values marked explicit;
     * later duplicates win).
     *
     * @return true on success; false with a diagnostic in @p err
     *         (unknown option names list the declared options, bad
     *         values name the expected kind).
     */
    bool resolve(const WorkloadInfo &info, const WorkloadOptList &given,
                 WorkloadOptions &out, std::string *err) const;

  private:
    friend struct WorkloadRegistrar;
    friend WorkloadRegistry &workloadRegistryRaw();

    std::vector<WorkloadInfo> entries_;
    std::map<std::string, std::size_t, std::less<>> index_;
};

/**
 * Self-registration handle: a static WorkloadRegistrar at namespace or
 * function scope adds its entry exactly once. Usable directly by
 * out-of-tree workloads (tests); libptm kernels wrap theirs in a
 * registerXxxWorkload() function listed in registerBuiltinWorkloads().
 */
struct WorkloadRegistrar
{
    explicit WorkloadRegistrar(WorkloadInfo info);
};

/** Base class of the workload kernels. */
class Workload
{
  public:
    explicit Workload(const WorkloadConfig &cfg) : cfg_(cfg)
    {
        if (cfg_.mode == SyncMode::Serial)
            cfg_.threads = 1;
    }

    virtual ~Workload() = default;

    virtual const char *name() const = 0;

    /** Create processes/threads/barriers in @p sys. Call once. */
    virtual void build(System &sys) = 0;

    /** Compare the simulated result with the host reference. */
    virtual bool verify(System &sys) const = 0;

    /** Sink for one contiguous checkpoint region (persistCheckpoint). */
    using PersistSink =
        std::function<void(Addr, const std::vector<std::uint32_t> &)>;

    /**
     * True if the workload can anchor the persistence domain: it can
     * emit its pre-run baseline image (the checkpoint a recovery
     * starts from) and its expected state is reconstructible from
     * per-thread committed-transaction counts. Workloads returning
     * false cannot produce `--durability wal` crash dumps.
     */
    virtual bool persistSupported() const { return false; }

    /**
     * Emit the pre-run baseline image as contiguous (vbase, words)
     * regions. Only called when persistSupported().
     */
    virtual void persistCheckpoint(const PersistSink &emit) const
    {
        (void)emit;
    }

    /**
     * Emit every (addr, expected word) of the store after each thread
     * committed exactly its first counts[t] transactions in program
     * order — the committed-prefix oracle recovery verifies a replayed
     * image against. Only called when persistSupported().
     */
    virtual void
    persistExpected(const std::vector<std::uint64_t> &counts,
                    const std::function<void(Addr, std::uint32_t)> &emit)
        const
    {
        (void)counts;
        (void)emit;
    }

    const WorkloadConfig &config() const { return cfg_; }

  protected:
    /** Wrap a loop body per the synchronization mode. */
    Step
    work(CoroFactory f) const
    {
        if (cfg_.mode == SyncMode::Tx) {
            TxStep s;
            s.body = std::move(f);
            return s;
        }
        PlainStep s;
        s.body = std::move(f);
        return s;
    }

    /** Wrap an order-sensitive loop body (ordered tx in Tx mode). */
    Step
    orderedWork(std::uint32_t scope, std::uint64_t rank,
                CoroFactory f) const
    {
        if (cfg_.mode == SyncMode::Tx) {
            TxStep s;
            s.body = std::move(f);
            s.ordered = true;
            s.scope = scope;
            s.rank = rank;
            return s;
        }
        PlainStep s;
        s.body = std::move(f);
        return s;
    }

    WorkloadConfig cfg_;
};

/**
 * Append a barrier step to @p steps. Out of line on purpose: pushing
 * the BarrierStep temporary straight into the Step variant vector
 * makes GCC 12 emit spurious -Wmaybe-uninitialized warnings about the
 * TxStep alternative's std::function storage.
 */
void pushBarrier(std::vector<Step> &steps, unsigned barrier_id);

/** Deterministic value hash used for workload initialization. */
inline std::uint32_t
mixHash(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 32;
    return std::uint32_t(x);
}

/**
 * Instantiate a registered workload by name, resolving @p given
 * against its option table into @p cfg.options first; fatal on
 * unknown names or invalid options (front ends wanting a recoverable
 * diagnostic resolve through WorkloadRegistry themselves).
 */
std::unique_ptr<Workload> makeWorkload(std::string_view name,
                                       WorkloadConfig cfg,
                                       const WorkloadOptList &given = {});

/** The Table 1 kernel names in the paper's order (registry-backed). */
std::vector<std::string> workloadNames();

/** Every registered workload name, " | "-separated (help strings). */
std::string workloadNameList();

} // namespace ptm

#endif // PTM_WORKLOADS_WORKLOAD_HH
