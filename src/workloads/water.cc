/**
 * @file
 * water kernel: n-body force accumulation with a neighbor cutoff
 * (SPLASH-2 WATER's inter-molecular loop) — the small, cache-resident
 * benchmark of Table 1 (rare evictions).
 *
 * Each timestep: threads compute pair forces for their molecule range
 * and accumulate into the shared force array (cross-partition
 * updates near range boundaries conflict occasionally), then update
 * positions. Locks mode takes a per-molecule spinlock around every
 * accumulation, like the original; Tx mode wraps chunk loops in
 * transactions and skips all locking.
 */

#include "locks/spinlock.hh"
#include "workloads/workload.hh"

namespace ptm
{

class WaterWorkload : public Workload
{
  public:
    explicit WaterWorkload(const WorkloadConfig &cfg) : Workload(cfg)
    {
        // 8192 molecules x (pos, force, 6 auxiliary state arrays, 3
        // read-only parameter tables) ~ 350 KB: mostly cache-resident
        // with occasional streaming evictions in the integrate phase,
        // like the paper's water (Table 1: mop/evict 4926).
        bool tiny = cfg.options.u64("scale") == 0;
        nmol_ = tiny ? 256 : 8192;
        cutoff_ = 12;
        timesteps_ = tiny ? 2 : 3;
        chunks_ = 2;
    }

    const char *name() const override { return "water"; }

    void
    build(System &sys) override
    {
        proc_ = sys.createProcess();
        barrier_ = sys.createBarrier(cfg_.threads);
        const unsigned T = cfg_.threads;

        std::vector<std::vector<Step>> steps(T);
        for (unsigned t = 0; t < T; ++t) {
            unsigned m0 = t * nmol_ / T;
            unsigned m1 = (t + 1) * nmol_ / T;
            steps[t].push_back(
                PlainStep{[this, m0, m1](MemCtx m) -> TxCoro {
                    for (unsigned i = m0; i < m1; ++i) {
                        co_await m.store(pos(i),
                                         mixHash(i + cfg_.seed * 101));
                        co_await m.store(force(i), 0);
                        co_await m.store(mass(i),
                                         (mixHash(i + 3) & 7) + 1);
                        for (unsigned a = 0; a < kAux; ++a)
                            co_await m.store(aux(a, i), 0);
                    }
                }});
            pushBarrier(steps[t], barrier_);
        }

        for (unsigned ts = 0; ts < timesteps_; ++ts) {
            for (unsigned t = 0; t < T; ++t) {
                unsigned m0 = t * nmol_ / T;
                unsigned m1 = (t + 1) * nmol_ / T;
                for (unsigned c = 0; c < chunks_; ++c) {
                    unsigned c0 = m0 + (m1 - m0) * c / chunks_;
                    unsigned c1 = m0 + (m1 - m0) * (c + 1) / chunks_;
                    if (cfg_.mode == SyncMode::Locks) {
                        steps[t].push_back(PlainStep{
                            [this, c0, c1](MemCtx m) -> TxCoro {
                                co_await forcesLocked(m, c0, c1);
                            }});
                    } else {
                        steps[t].push_back(
                            work([this, c0, c1](MemCtx m) -> TxCoro {
                                co_await forces(m, c0, c1);
                            }));
                    }
                }
                // Wait for all force contributions, then integrate.
                pushBarrier(steps[t], barrier_);
                steps[t].push_back(
                    work([this, m0, m1](MemCtx m) -> TxCoro {
                        for (unsigned i = m0; i < m1; ++i) {
                            std::uint32_t p = std::uint32_t(
                                co_await m.load(pos(i)));
                            std::uint32_t f = std::uint32_t(
                                co_await m.load(force(i)));
                            std::uint32_t w = std::uint32_t(
                                co_await m.load(mass(i)));
                            co_await m.store(pos(i),
                                             p + (f >> 3) / w + 1);
                            co_await m.store(force(i), 0);
                            // Velocity/acceleration history chain.
                            std::uint32_t acc = f;
                            for (unsigned a = 0; a < kAux; ++a) {
                                std::uint32_t prev = std::uint32_t(
                                    co_await m.load(aux(a, i)));
                                co_await m.store(aux(a, i),
                                                 prev + (acc >> a));
                            }
                        }
                    }));
                pushBarrier(steps[t], barrier_);
            }
        }

        for (unsigned t = 0; t < T; ++t)
            sys.addThread(proc_, std::move(steps[t]), "water");
    }

    bool
    verify(System &sys) const override
    {
        std::vector<std::uint32_t> P(nmol_), F(nmol_, 0);
        std::vector<std::vector<std::uint32_t>> AUX(
            kAux, std::vector<std::uint32_t>(nmol_, 0));
        for (unsigned i = 0; i < nmol_; ++i)
            P[i] = mixHash(i + cfg_.seed * 101);
        for (unsigned ts = 0; ts < timesteps_; ++ts) {
            for (unsigned i = 0; i < nmol_; ++i) {
                for (unsigned d = 1; d <= cutoff_; ++d) {
                    unsigned j = (i + d) % nmol_;
                    std::uint32_t f = pairForce(P[i], P[j]);
                    F[i] += f;
                    F[j] -= f;
                }
            }
            for (unsigned i = 0; i < nmol_; ++i) {
                std::uint32_t w = (mixHash(i + 3) & 7) + 1;
                P[i] += (F[i] >> 3) / w + 1;
                for (unsigned a = 0; a < kAux; ++a)
                    AUX[a][i] += F[i] >> a;
                F[i] = 0;
            }
        }
        for (unsigned i = 0; i < nmol_; ++i) {
            if (sys.readWord32(proc_, pos(i)) != P[i])
                return false;
            for (unsigned a = 0; a < kAux; ++a)
                if (sys.readWord32(proc_, aux(a, i)) != AUX[a][i])
                    return false;
        }
        return true;
    }

  private:
    static constexpr unsigned kAux = 6;

    Addr pos(unsigned i) const { return 0x10000000 + Addr(i) * 4; }
    Addr force(unsigned i) const { return 0x10040000 + Addr(i) * 4; }
    Addr lockOf(unsigned i) const { return 0x10080000 + Addr(i) * 4; }
    /** Read-only per-molecule mass table. */
    Addr mass(unsigned i) const { return 0x100c0000 + Addr(i) * 4; }
    /** Auxiliary per-molecule state arrays (velocity history etc.). */
    Addr
    aux(unsigned a, unsigned i) const
    {
        return 0x10100000 + Addr(a) * 0x40000 + Addr(i) * 4;
    }

    static std::uint32_t
    pairForce(std::uint32_t a, std::uint32_t b)
    {
        return (a ^ (b * 7)) >> 4;
    }

    /** Accumulate pair forces for molecules [c0, c1). */
    TxCoro
    forces(MemCtx m, unsigned c0, unsigned c1)
    {
        for (unsigned i = c0; i < c1; ++i) {
            std::uint32_t pi =
                std::uint32_t(co_await m.load(pos(i)));
            for (unsigned d = 1; d <= cutoff_; ++d) {
                unsigned j = (i + d) % nmol_;
                std::uint32_t pj =
                    std::uint32_t(co_await m.load(pos(j)));
                std::uint32_t f = pairForce(pi, pj);
                std::uint32_t fi =
                    std::uint32_t(co_await m.load(force(i)));
                co_await m.store(force(i), fi + f);
                std::uint32_t fj =
                    std::uint32_t(co_await m.load(force(j)));
                co_await m.store(force(j), fj - f);
            }
        }
    }

    /** Locks-mode version: per-molecule lock per accumulation. */
    TxCoro
    forcesLocked(MemCtx m, unsigned c0, unsigned c1)
    {
        for (unsigned i = c0; i < c1; ++i) {
            std::uint32_t pi =
                std::uint32_t(co_await m.load(pos(i)));
            for (unsigned d = 1; d <= cutoff_; ++d) {
                unsigned j = (i + d) % nmol_;
                std::uint32_t pj =
                    std::uint32_t(co_await m.load(pos(j)));
                std::uint32_t f = pairForce(pi, pj);
                co_await spinLock(m, lockOf(i));
                std::uint32_t fi =
                    std::uint32_t(co_await m.load(force(i)));
                co_await m.store(force(i), fi + f);
                co_await spinUnlock(m, lockOf(i));
                co_await spinLock(m, lockOf(j));
                std::uint32_t fj =
                    std::uint32_t(co_await m.load(force(j)));
                co_await m.store(force(j), fj - f);
                co_await spinUnlock(m, lockOf(j));
            }
        }
    }

    unsigned nmol_, cutoff_, timesteps_, chunks_;
    ProcId proc_ = 0;
    unsigned barrier_ = 0;
};

void
registerWaterWorkload()
{
    static WorkloadRegistrar reg(
        {"water",
         "molecular-dynamics force/integrate steps (cache-resident)",
         {scaleOption()},
         [](const WorkloadConfig &cfg) -> std::unique_ptr<Workload> {
             return std::make_unique<WaterWorkload>(cfg);
         },
         /*order=*/4, /*paperKernel=*/true});
}

} // namespace ptm
