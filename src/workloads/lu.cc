/**
 * @file
 * lu kernel: right-looking blocked dense factorization (SPLASH-2 LU's
 * loop structure) over wrapping 32-bit integers.
 *
 * Per step k: factor the diagonal block, update the perimeter blocks,
 * then update every interior block — each block update is one
 * transaction in Tx mode (many small, conflict-free transactions: the
 * high-commit / zero-abort profile of Table 1's lu row).
 */

#include "workloads/workload.hh"

namespace ptm
{

class LuWorkload : public Workload
{
  public:
    explicit LuWorkload(const WorkloadConfig &cfg) : Workload(cfg)
    {
        bsize_ = 16;
        // Benchmark size 256x256 (256 KB): the matrix exceeds one L2,
        // so lu streams and evicts like the paper's (mop/evict 95.3).
        nblocks_ = cfg.options.u64("scale") == 0 ? 4 : 16;
        n_ = bsize_ * nblocks_;
    }

    const char *name() const override { return "lu"; }

    void
    build(System &sys) override
    {
        proc_ = sys.createProcess();
        barrier_ = sys.createBarrier(cfg_.threads);

        // Build each thread's step list: the block updates of step k
        // are distributed round-robin.
        std::vector<std::vector<Step>> steps(cfg_.threads);

        for (unsigned t = 0; t < cfg_.threads; ++t) {
            unsigned r0 = t * n_ / cfg_.threads;
            unsigned r1 = (t + 1) * n_ / cfg_.threads;
            steps[t].push_back(
                PlainStep{[this, r0, r1](MemCtx m) -> TxCoro {
                    for (unsigned i = r0; i < r1; ++i)
                        for (unsigned j = 0; j < n_; ++j)
                            co_await m.store(
                                at(i, j),
                                mixHash(std::uint64_t(i) * n_ + j +
                                        cfg_.seed * 77));
                }});
            pushBarrier(steps[t], barrier_);
        }

        for (unsigned k = 0; k < nblocks_; ++k) {
            // Diagonal factorization: one transaction on one thread.
            steps[k % cfg_.threads].push_back(
                work([this, k](MemCtx m) -> TxCoro {
                    co_await factorDiag(m, k);
                }));
            for (unsigned t = 0; t < cfg_.threads; ++t)
                pushBarrier(steps[t], barrier_);

            // Perimeter updates.
            unsigned rr = 0;
            for (unsigned j = k + 1; j < nblocks_; ++j) {
                steps[rr++ % cfg_.threads].push_back(
                    work([this, k, j](MemCtx m) -> TxCoro {
                        co_await updateRow(m, k, j);
                    }));
                steps[rr++ % cfg_.threads].push_back(
                    work([this, k, j](MemCtx m) -> TxCoro {
                        co_await updateCol(m, k, j);
                    }));
            }
            for (unsigned t = 0; t < cfg_.threads; ++t)
                pushBarrier(steps[t], barrier_);

            // Interior updates (the bulk of the transactions).
            rr = 0;
            for (unsigned i = k + 1; i < nblocks_; ++i) {
                for (unsigned j = k + 1; j < nblocks_; ++j) {
                    steps[rr++ % cfg_.threads].push_back(
                        work([this, k, i, j](MemCtx m) -> TxCoro {
                            co_await updateInner(m, k, i, j);
                        }));
                }
            }
            for (unsigned t = 0; t < cfg_.threads; ++t)
                pushBarrier(steps[t], barrier_);
        }

        for (unsigned t = 0; t < cfg_.threads; ++t)
            sys.addThread(proc_, std::move(steps[t]), "lu");
    }

    bool
    verify(System &sys) const override
    {
        std::vector<std::uint32_t> A(n_ * n_);
        for (unsigned i = 0; i < n_; ++i)
            for (unsigned j = 0; j < n_; ++j)
                A[i * n_ + j] =
                    mixHash(std::uint64_t(i) * n_ + j + cfg_.seed * 77);
        auto el = [&](unsigned i, unsigned j) -> std::uint32_t & {
            return A[i * n_ + j];
        };
        for (unsigned k = 0; k < nblocks_; ++k) {
            unsigned base = k * bsize_;
            for (unsigned kk = 0; kk < bsize_; ++kk)
                for (unsigned i = kk + 1; i < bsize_; ++i)
                    for (unsigned j = kk + 1; j < bsize_; ++j)
                        el(base + i, base + j) -=
                            el(base + i, base + kk) *
                            el(base + kk, base + j);
            for (unsigned b = k + 1; b < nblocks_; ++b) {
                for (unsigned kk = 0; kk < bsize_; ++kk) {
                    for (unsigned i = 0; i < bsize_; ++i) {
                        for (unsigned j = kk + 1; j < bsize_; ++j) {
                            // row block (k, b)
                            el(base + j, b * bsize_ + i) -=
                                el(base + j, base + kk) *
                                el(base + kk, b * bsize_ + i);
                            // col block (b, k)
                            el(b * bsize_ + i, base + j) -=
                                el(b * bsize_ + i, base + kk) *
                                el(base + kk, base + j);
                        }
                    }
                }
            }
            for (unsigned bi = k + 1; bi < nblocks_; ++bi)
                for (unsigned bj = k + 1; bj < nblocks_; ++bj)
                    for (unsigned kk = 0; kk < bsize_; ++kk)
                        for (unsigned i = 0; i < bsize_; ++i)
                            for (unsigned j = 0; j < bsize_; ++j)
                                el(bi * bsize_ + i, bj * bsize_ + j) -=
                                    el(bi * bsize_ + i, base + kk) *
                                    el(base + kk, bj * bsize_ + j);
        }
        for (unsigned i = 0; i < n_; ++i)
            for (unsigned j = 0; j < n_; ++j)
                if (sys.readWord32(proc_, at(i, j)) != A[i * n_ + j])
                    return false;
        return true;
    }

  private:
    Addr
    at(unsigned i, unsigned j) const
    {
        return 0x10000000 + (Addr(i) * n_ + j) * 4;
    }

    /** In-block Gaussian elimination of diagonal block k. */
    TxCoro
    factorDiag(MemCtx m, unsigned k)
    {
        unsigned base = k * bsize_;
        for (unsigned kk = 0; kk < bsize_; ++kk) {
            for (unsigned i = kk + 1; i < bsize_; ++i) {
                std::uint32_t lik = std::uint32_t(
                    co_await m.load(at(base + i, base + kk)));
                for (unsigned j = kk + 1; j < bsize_; ++j) {
                    std::uint32_t ukj = std::uint32_t(
                        co_await m.load(at(base + kk, base + j)));
                    std::uint32_t v = std::uint32_t(
                        co_await m.load(at(base + i, base + j)));
                    co_await m.store(at(base + i, base + j),
                                     v - lik * ukj);
                }
            }
        }
    }

    /** Update row block (k, b) with the factored diagonal. */
    TxCoro
    updateRow(MemCtx m, unsigned k, unsigned b)
    {
        unsigned base = k * bsize_;
        for (unsigned kk = 0; kk < bsize_; ++kk) {
            for (unsigned j = kk + 1; j < bsize_; ++j) {
                std::uint32_t l = std::uint32_t(
                    co_await m.load(at(base + j, base + kk)));
                for (unsigned i = 0; i < bsize_; ++i) {
                    std::uint32_t u = std::uint32_t(co_await m.load(
                        at(base + kk, b * bsize_ + i)));
                    std::uint32_t v = std::uint32_t(co_await m.load(
                        at(base + j, b * bsize_ + i)));
                    co_await m.store(at(base + j, b * bsize_ + i),
                                     v - l * u);
                }
            }
        }
    }

    /** Update column block (b, k). */
    TxCoro
    updateCol(MemCtx m, unsigned k, unsigned b)
    {
        unsigned base = k * bsize_;
        for (unsigned kk = 0; kk < bsize_; ++kk) {
            for (unsigned j = kk + 1; j < bsize_; ++j) {
                std::uint32_t u = std::uint32_t(
                    co_await m.load(at(base + kk, base + j)));
                for (unsigned i = 0; i < bsize_; ++i) {
                    std::uint32_t l = std::uint32_t(co_await m.load(
                        at(b * bsize_ + i, base + kk)));
                    std::uint32_t v = std::uint32_t(co_await m.load(
                        at(b * bsize_ + i, base + j)));
                    co_await m.store(at(b * bsize_ + i, base + j),
                                     v - l * u);
                }
            }
        }
    }

    /** Interior block (bi, bj) -= col(bi,k) * row(k,bj). */
    TxCoro
    updateInner(MemCtx m, unsigned k, unsigned bi, unsigned bj)
    {
        unsigned base = k * bsize_;
        for (unsigned kk = 0; kk < bsize_; ++kk) {
            for (unsigned i = 0; i < bsize_; ++i) {
                std::uint32_t l = std::uint32_t(co_await m.load(
                    at(bi * bsize_ + i, base + kk)));
                for (unsigned j = 0; j < bsize_; ++j) {
                    std::uint32_t u = std::uint32_t(co_await m.load(
                        at(base + kk, bj * bsize_ + j)));
                    std::uint32_t v = std::uint32_t(co_await m.load(
                        at(bi * bsize_ + i, bj * bsize_ + j)));
                    co_await m.store(
                        at(bi * bsize_ + i, bj * bsize_ + j),
                        v - l * u);
                }
            }
        }
    }

    unsigned bsize_;
    unsigned nblocks_;
    unsigned n_;
    ProcId proc_ = 0;
    unsigned barrier_ = 0;
};

void
registerLuWorkload()
{
    static WorkloadRegistrar reg(
        {"lu",
         "blocked dense LU factorization (streaming matrix updates)",
         {scaleOption()},
         [](const WorkloadConfig &cfg) -> std::unique_ptr<Workload> {
             return std::make_unique<LuWorkload>(cfg);
         },
         /*order=*/1, /*paperKernel=*/true});
}

} // namespace ptm
