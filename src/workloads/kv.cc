/**
 * @file
 * kv serving workload: a transactional B+-tree keyed store driven by
 * pre-generated Zipfian request streams (see kv.hh for the layout and
 * determinism contract).
 *
 * Each thread replays its own deterministic op program — point
 * lookups, range scans, upserting inserts, and deletes — grouped
 * tx-ops operations per transaction. Every operation walks the tree
 * from the root through loaded child pointers (a genuine pointer
 * chase over simulated memory), so the handful of top-level inner
 * pages is read by every transaction in the system while the Zipfian
 * skew concentrates leaf and occupancy-counter writes on a hot set —
 * the access pattern the paper's SPT/TAV metadata caches target.
 *
 * Locks mode serializes each op group behind one global spinlock
 * (the coarse-grained baseline a serving tree would need without
 * fine-grained latching); Serial mode is the speedup baseline.
 */

#include <algorithm>
#include <set>

#include "locks/spinlock.hh"
#include "sim/logging.hh"
#include "workloads/kv.hh"
#include "workloads/zipfian.hh"

namespace ptm::kv
{

// ---------------------------------------------------------------- Layout

Layout::Layout(std::uint64_t keys, std::uint64_t vwords)
    : keys_(keys), vwords_(vwords)
{
    // These reach back to --wl-opt values, so fail like a CLI error.
    fatal_if(keys < 2 * kLeafKeys || keys > (1ull << 22) ||
                 (keys & (keys - 1)) != 0,
             "kv keys %llu must be a power of two in [32, 4194304]",
             (unsigned long long)keys);
    fatal_if(vwords < 1 || vwords > 16,
             "kv vwords %llu outside [1, 16]", (unsigned long long)vwords);
    unsigned words = 2 + kLeafKeys * unsigned(vwords);
    // Round leaves up to a 64-byte multiple so leaves never share a
    // cache block (any false sharing is then *within* one leaf).
    leaf_stride_words_ = (words + 15u) & ~15u;
    level_count_.push_back(keys / kLeafKeys);
    while (level_count_.back() > 1)
        level_count_.push_back(
            (level_count_.back() + kFanout - 1) / kFanout);
    level_offset_.assign(level_count_.size(), 0);
    std::uint64_t off = 0;
    for (std::size_t lvl = 1; lvl < level_count_.size(); ++lvl) {
        level_offset_[lvl] = off;
        off += level_count_[lvl];
    }
}

std::uint64_t
Layout::innerCount(unsigned level) const
{
    panic_if(level < 1 || level > depth(),
             "kv inner level %u outside [1, %u]", level, depth());
    return level_count_[level];
}

std::uint64_t
Layout::innerTotal() const
{
    return level_offset_.back() + level_count_.back();
}

Addr
Layout::leafAddr(std::uint64_t leaf) const
{
    return kLeafBase + leaf * leaf_stride_words_ * 4;
}

Addr
Layout::innerAddr(unsigned level, std::uint64_t idx) const
{
    return kInnerBase +
           (level_offset_[level] + idx) * kInnerWords * 4;
}

Addr
Layout::slotAddr(std::uint64_t key) const
{
    return leafAddr(key / kLeafKeys) +
           (2 + (key % kLeafKeys) * vwords_) * 4;
}

std::uint64_t
Layout::firstKey(unsigned level, std::uint64_t idx) const
{
    // A level-i node spans kLeafKeys * kFanout^i keys (kFanout = 2^4).
    return idx * (std::uint64_t(kLeafKeys) << (4 * level));
}

std::uint64_t
Layout::sepValue(unsigned level, std::uint64_t idx, unsigned s) const
{
    std::uint64_t child = idx * kFanout + s + 1;
    if (child >= level_count_[level - 1])
        return keys_; // sentinel: larger than every key
    return firstKey(level - 1, child);
}

Addr
Layout::childAddr(unsigned level, std::uint64_t idx, unsigned c) const
{
    std::uint64_t child = idx * kFanout + c;
    if (child >= level_count_[level - 1])
        return 0;
    return level == 1 ? leafAddr(child) : innerAddr(level - 1, child);
}

// ------------------------------------------------- deterministic streams

std::uint32_t
scatterKey(std::uint64_t rank, std::uint64_t keys, std::uint64_t seed)
{
    // Odd multiplier + seeded offset: a bijection on [0, 2^k).
    return std::uint32_t((rank * 0x9E3779B1ull +
                          mixHash(seed * 0x5851F42Dull)) &
                         (keys - 1));
}

std::uint32_t
valueTag(std::uint64_t seed, unsigned thread, std::uint64_t opIndex,
         std::uint32_t key)
{
    return mixHash(seed * 0x9E3779B97F4A7C15ull +
                   std::uint64_t(thread) * 0x100000001ull +
                   opIndex * 0x10001ull + key) |
           1u;
}

std::uint32_t
preloadTag(std::uint64_t seed, std::uint32_t key)
{
    return mixHash(std::uint64_t(key) * 0x517CC1B7ull ^
                   (seed + 0x2545F4914F6CDD1Dull)) |
           1u;
}

bool
preloaded(const Params &p, std::uint32_t key)
{
    return mixHash(key + p.seed * 0x9E3779B9ull) % 100 < p.preloadPct;
}

std::uint32_t
payloadWord(std::uint32_t tag, unsigned w)
{
    return mixHash(std::uint64_t(tag) ^
                   (std::uint64_t(w) * 2654435761ull));
}

std::vector<Op>
generateProgram(const Params &p, unsigned thread)
{
    Zipfian zipf(p.keys, p.zipf);
    Pcg32 rng(p.seed + std::uint64_t(thread) * 1000003,
              0xC0FFEEull + thread);
    std::vector<Op> ops;
    ops.reserve(p.ops);
    for (std::uint64_t i = 0; i < p.ops; ++i) {
        Op op;
        unsigned roll = rng.below(100);
        if (roll < p.lookupPct) {
            op.type = OpType::Lookup;
        } else if (roll < p.lookupPct + p.scanPct) {
            op.type = OpType::Scan;
            op.len = std::uint32_t(p.scanLen);
        } else if (roll < p.lookupPct + p.scanPct + p.insertPct) {
            op.type = OpType::Insert;
        } else {
            op.type = OpType::Delete;
        }
        std::uint64_t rank = zipf.sample(rng);
        std::uint32_t key = scatterKey(rank, p.keys, p.seed);
        if (op.isWrite()) {
            // Remap to this thread's own partition (owner = key mod
            // threads): reads stay unrestricted, writes never race
            // another thread on the same key, so the final contents
            // are interleaving-independent.
            key = key - key % p.threads + thread;
            if (key >= p.keys)
                key -= p.threads;
        }
        op.key = key;
        ops.push_back(op);
    }
    return ops;
}

std::vector<std::uint32_t>
expectedFinal(const Params &p)
{
    std::vector<std::uint32_t> tags(p.keys, 0);
    for (std::uint32_t k = 0; k < p.keys; ++k)
        if (preloaded(p, k))
            tags[k] = preloadTag(p.seed, k);
    for (unsigned t = 0; t < p.threads; ++t) {
        auto prog = generateProgram(p, t);
        for (std::size_t i = 0; i < prog.size(); ++i) {
            const Op &op = prog[i];
            if (op.type == OpType::Insert)
                tags[op.key] = valueTag(p.seed, t, i, op.key);
            else if (op.type == OpType::Delete)
                tags[op.key] = 0;
        }
    }
    return tags;
}

std::vector<std::uint32_t>
expectedAfterCommits(const Params &p,
                     const std::vector<std::uint64_t> &counts)
{
    std::vector<std::uint32_t> tags(p.keys, 0);
    for (std::uint32_t k = 0; k < p.keys; ++k)
        if (preloaded(p, k))
            tags[k] = preloadTag(p.seed, k);
    for (unsigned t = 0; t < p.threads; ++t) {
        auto prog = generateProgram(p, t);
        std::uint64_t committed = t < counts.size() ? counts[t] : 0;
        std::uint64_t nops =
            std::min<std::uint64_t>(prog.size(), committed * p.txOps);
        for (std::size_t i = 0; i < nops; ++i) {
            const Op &op = prog[i];
            if (op.type == OpType::Insert)
                tags[op.key] = valueTag(p.seed, t, i, op.key);
            else if (op.type == OpType::Delete)
                tags[op.key] = 0;
        }
    }
    return tags;
}

void
forEachWord(const Params &p, const std::vector<std::uint32_t> &tags,
            const std::function<void(Addr, std::uint32_t)> &emit)
{
    Layout lay(p.keys, p.vwords);
    Addr meta = lay.metaAddr();
    emit(meta, std::uint32_t(lay.rootAddr()));
    emit(meta + 4, lay.depth());
    emit(meta + 8, std::uint32_t(p.keys));
    emit(meta + 12, Layout::kMagic);
    for (unsigned lvl = 1; lvl <= lay.depth(); ++lvl) {
        for (std::uint64_t j = 0; j < lay.innerCount(lvl); ++j) {
            Addr a = lay.innerAddr(lvl, j);
            emit(a, lvl);
            for (unsigned s = 0; s + 1 < Layout::kFanout; ++s)
                emit(a + (1 + s) * 4,
                     std::uint32_t(lay.sepValue(lvl, j, s)));
            for (unsigned c = 0; c < Layout::kFanout; ++c)
                emit(a + (Layout::kFanout + c) * 4,
                     std::uint32_t(lay.childAddr(lvl, j, c)));
        }
    }
    for (std::uint64_t l = 0; l < lay.leaves(); ++l) {
        std::uint32_t occ = 0;
        for (unsigned s = 0; s < Layout::kLeafKeys; ++s) {
            std::uint64_t k = l * Layout::kLeafKeys + s;
            std::uint32_t tag = tags[k];
            emit(lay.slotAddr(k), tag);
            if (tag == 0)
                continue;
            ++occ;
            for (unsigned w = 1; w < p.vwords; ++w)
                emit(lay.slotAddr(k) + w * 4, payloadWord(tag, w));
        }
        emit(lay.leafOccAddr(l), occ);
        emit(lay.leafNextAddr(l),
             std::uint32_t(l + 1 < lay.leaves() ? lay.leafAddr(l + 1)
                                                : 0));
    }
}

std::size_t
chooseDropIndex(const std::vector<Op> &program)
{
    std::size_t fallback = SIZE_MAX;
    std::set<std::uint32_t> written_later;
    for (std::size_t i = program.size(); i-- > 0;) {
        const Op &op = program[i];
        if (op.type == OpType::Insert) {
            if (fallback == SIZE_MAX)
                fallback = i;
            if (!written_later.count(op.key))
                return i;
        }
        if (op.isWrite())
            written_later.insert(op.key);
    }
    return fallback;
}

Params
paramsFromConfig(const WorkloadConfig &cfg)
{
    const WorkloadOptions &o = cfg.options;
    Params p;
    p.threads = cfg.threads;
    p.seed = cfg.seed;
    bool tiny = o.u64("scale") == 0;
    // scale=0 shrinks the store/stream for tests unless the user set
    // the sizes explicitly.
    p.keys = tiny && !o.explicitlySet("keys") ? 2048 : o.u64("keys");
    p.ops = tiny && !o.explicitlySet("ops") ? 1500 : o.u64("ops");
    p.scanLen =
        tiny && !o.explicitlySet("scan-len") ? 8 : o.u64("scan-len");
    p.zipf = o.real("zipf");
    p.txOps = o.u64("tx-ops");
    p.vwords = o.u64("vwords");
    p.lookupPct = o.u64("lookup-pct");
    p.scanPct = o.u64("scan-pct");
    p.insertPct = o.u64("insert-pct");
    p.deletePct = o.u64("delete-pct");
    p.preloadPct = o.u64("preload-pct");
    p.dropWrite = o.u64("drop-write");

    fatal_if(p.zipf < 0.0 || p.zipf >= 1.0,
             "kv zipf %f outside [0, 1)", p.zipf);
    fatal_if(p.ops == 0, "kv ops must be positive");
    fatal_if(p.txOps == 0, "kv tx-ops must be positive");
    fatal_if(p.scanLen == 0, "kv scan-len must be positive");
    fatal_if(p.lookupPct + p.scanPct + p.insertPct + p.deletePct != 100,
             "kv op mix %llu+%llu+%llu+%llu does not sum to 100",
             (unsigned long long)p.lookupPct,
             (unsigned long long)p.scanPct,
             (unsigned long long)p.insertPct,
             (unsigned long long)p.deletePct);
    fatal_if(p.preloadPct > 100, "kv preload-pct %llu exceeds 100",
             (unsigned long long)p.preloadPct);
    fatal_if(p.dropWrite != 0 && p.insertPct == 0,
             "kv drop-write needs a non-zero insert-pct");
    // Layout's constructor validates keys and vwords; check the
    // thread/partition fit here.
    fatal_if(p.threads == 0 ||
                 std::uint64_t(p.threads) > p.keys / Layout::kLeafKeys,
             "kv threads %u exceeds the leaf count of %llu keys",
             p.threads, (unsigned long long)p.keys);
    return p;
}

} // namespace ptm::kv

namespace ptm
{

using kv::Layout;
using kv::Op;
using kv::OpType;

class KvWorkload : public Workload
{
  public:
    explicit KvWorkload(const WorkloadConfig &cfg)
        : Workload(cfg), params_(kv::paramsFromConfig(cfg_)),
          layout_(params_.keys, params_.vwords)
    {
        programs_.reserve(cfg_.threads);
        for (unsigned t = 0; t < cfg_.threads; ++t)
            programs_.push_back(kv::generateProgram(params_, t));
        if (params_.dropWrite != 0)
            drop_idx_ = kv::chooseDropIndex(programs_[0]);
        // The scale=0 preset shrinks some non-explicit options; write
        // the effective values back so the stats manifest records the
        // configuration that actually ran, not the declared defaults.
        cfg_.options.set("keys", std::to_string(params_.keys), false);
        cfg_.options.set("ops", std::to_string(params_.ops), false);
        cfg_.options.set("scan-len", std::to_string(params_.scanLen),
                         false);
    }

    const char *name() const override { return "kv"; }

    void
    build(System &sys) override
    {
        proc_ = sys.createProcess();
        barrier_ = sys.createBarrier(cfg_.threads);
        const unsigned T = cfg_.threads;

        std::vector<std::vector<Step>> steps(T);
        for (unsigned t = 0; t < T; ++t) {
            steps[t].push_back(PlainStep{[this, t](MemCtx m) -> TxCoro {
                co_await init(m, t);
            }});
            pushBarrier(steps[t], barrier_);
        }

        for (unsigned t = 0; t < T; ++t) {
            const std::uint64_t n = programs_[t].size();
            for (std::uint64_t o0 = 0; o0 < n; o0 += params_.txOps) {
                std::uint64_t o1 = std::min(n, o0 + params_.txOps);
                auto body = [this, t, o0, o1](MemCtx m) -> TxCoro {
                    co_await runOps(m, t, o0, o1);
                };
                if (cfg_.mode == SyncMode::Locks) {
                    // Coarse global lock: the baseline a serving tree
                    // needs without fine-grained latching.
                    steps[t].push_back(PlainStep{
                        [this, body](MemCtx m) -> TxCoro {
                            co_await spinLock(m, Layout::kLockAddr);
                            co_await body(m);
                            co_await spinUnlock(m, Layout::kLockAddr);
                        }});
                } else {
                    steps[t].push_back(work(body));
                }
            }
        }

        for (unsigned t = 0; t < T; ++t)
            sys.addThread(proc_, std::move(steps[t]), "kv");
    }

    bool
    verify(System &sys) const override
    {
        // Meta page, inner nodes (static after initialization), leaf
        // slots/payloads, occupancy counters and the leaf chain — all
        // through the same walker crash recovery compares with.
        bool ok = true;
        kv::forEachWord(params_, kv::expectedFinal(params_),
                        [&](Addr a, std::uint32_t want) {
                            if (ok && sys.readWord32(proc_, a) != want)
                                ok = false;
                        });
        return ok;
    }

    bool persistSupported() const override { return true; }

    void
    persistCheckpoint(const PersistSink &emit) const override
    {
        // The pre-run baseline: exactly the image init() stores, as
        // three dense regions (structure padding words are zero, like
        // untouched simulated memory).
        std::vector<std::uint32_t> tags(params_.keys, 0);
        for (std::uint32_t k = 0; k < params_.keys; ++k)
            if (kv::preloaded(params_, k))
                tags[k] = kv::preloadTag(params_.seed, k);

        emit(layout_.metaAddr(),
             {std::uint32_t(layout_.rootAddr()), layout_.depth(),
              std::uint32_t(params_.keys), Layout::kMagic});

        std::vector<std::uint32_t> inner(
            layout_.innerTotal() * Layout::kInnerWords, 0);
        for (unsigned lvl = 1; lvl <= layout_.depth(); ++lvl)
            for (std::uint64_t j = 0; j < layout_.innerCount(lvl);
                 ++j) {
                std::size_t base =
                    std::size_t(layout_.innerAddr(lvl, j) -
                                Layout::kInnerBase) /
                    4;
                inner[base] = lvl;
                for (unsigned s = 0; s + 1 < Layout::kFanout; ++s)
                    inner[base + 1 + s] =
                        std::uint32_t(layout_.sepValue(lvl, j, s));
                for (unsigned c = 0; c < Layout::kFanout; ++c)
                    inner[base + Layout::kFanout + c] =
                        std::uint32_t(layout_.childAddr(lvl, j, c));
            }
        emit(Layout::kInnerBase, inner);

        const unsigned stride = layout_.leafStrideWords();
        const std::uint64_t V = params_.vwords;
        std::vector<std::uint32_t> leaves(layout_.leaves() * stride, 0);
        for (std::uint64_t l = 0; l < layout_.leaves(); ++l) {
            std::size_t base = std::size_t(l) * stride;
            std::uint32_t occ = 0;
            for (unsigned s = 0; s < Layout::kLeafKeys; ++s) {
                std::uint64_t k = l * Layout::kLeafKeys + s;
                if (tags[k] == 0)
                    continue;
                ++occ;
                leaves[base + 2 + s * V] = tags[k];
                for (unsigned w = 1; w < V; ++w)
                    leaves[base + 2 + s * V + w] =
                        kv::payloadWord(tags[k], w);
            }
            leaves[base] = occ;
            leaves[base + 1] = std::uint32_t(
                l + 1 < layout_.leaves() ? layout_.leafAddr(l + 1)
                                         : 0);
        }
        emit(Layout::kLeafBase, leaves);
    }

    void
    persistExpected(const std::vector<std::uint64_t> &counts,
                    const std::function<void(Addr, std::uint32_t)>
                        &emit) const override
    {
        kv::forEachWord(params_, kv::expectedAfterCommits(params_, counts),
                        emit);
    }

  private:
    /** Initialize this thread's stripe of the store (plain step). */
    TxCoro
    init(MemCtx m, unsigned t)
    {
        const unsigned T = cfg_.threads;
        if (t == 0) {
            Addr meta = layout_.metaAddr();
            co_await m.store(meta, std::uint32_t(layout_.rootAddr()));
            co_await m.store(meta + 4, layout_.depth());
            co_await m.store(meta + 8, std::uint32_t(params_.keys));
            co_await m.store(meta + 12, Layout::kMagic);
        }
        // Inner nodes, striped by global node index.
        std::uint64_t g = 0;
        for (unsigned lvl = 1; lvl <= layout_.depth(); ++lvl) {
            for (std::uint64_t j = 0; j < layout_.innerCount(lvl);
                 ++j, ++g) {
                if (g % T != t)
                    continue;
                Addr a = layout_.innerAddr(lvl, j);
                co_await m.store(a, lvl);
                for (unsigned s = 0; s + 1 < Layout::kFanout; ++s)
                    co_await m.store(
                        a + (1 + s) * 4,
                        std::uint32_t(layout_.sepValue(lvl, j, s)));
                for (unsigned c = 0; c < Layout::kFanout; ++c)
                    co_await m.store(
                        a + (Layout::kFanout + c) * 4,
                        std::uint32_t(layout_.childAddr(lvl, j, c)));
            }
        }
        // Leaves: occupancy, next pointer, preloaded records.
        for (std::uint64_t l = t; l < layout_.leaves(); l += T) {
            std::uint32_t occ = 0;
            for (unsigned s = 0; s < Layout::kLeafKeys; ++s) {
                std::uint32_t k =
                    std::uint32_t(l * Layout::kLeafKeys + s);
                if (!kv::preloaded(params_, k))
                    continue;
                ++occ;
                std::uint32_t tag = kv::preloadTag(params_.seed, k);
                Addr slot = layout_.slotAddr(k);
                co_await m.store(slot, tag);
                for (unsigned w = 1; w < params_.vwords; ++w)
                    co_await m.store(slot + w * 4,
                                     kv::payloadWord(tag, w));
            }
            co_await m.store(layout_.leafOccAddr(l), occ);
            co_await m.store(
                layout_.leafNextAddr(l),
                std::uint32_t(l + 1 < layout_.leaves()
                                  ? layout_.leafAddr(l + 1)
                                  : 0));
        }
    }

    /** Execute ops [o0, o1) of thread @p t (one transaction body). */
    TxCoro
    runOps(MemCtx m, unsigned t, std::uint64_t o0, std::uint64_t o1)
    {
        const std::uint64_t V = params_.vwords;
        for (std::uint64_t i = o0; i < o1; ++i) {
            const Op &op = programs_[t][i];
            const bool drop = t == 0 && i == drop_idx_;

            // Root-to-leaf walk through loaded child pointers: a
            // binary search over the 15 separators, then the chase.
            std::uint32_t root =
                std::uint32_t(co_await m.load(layout_.metaAddr()));
            std::uint32_t depth = std::uint32_t(
                co_await m.load(layout_.metaAddr() + 4));
            Addr node = root;
            const std::uint32_t key = op.key;
            for (std::uint32_t lvl = depth; lvl >= 1; --lvl) {
                unsigned lo = 0, hi = Layout::kFanout - 1;
                while (lo < hi) {
                    unsigned mid = (lo + hi) / 2;
                    std::uint32_t sep = std::uint32_t(
                        co_await m.load(node + (1 + mid) * 4));
                    if (key < sep)
                        hi = mid;
                    else
                        lo = mid + 1;
                }
                node = std::uint32_t(co_await m.load(
                    node + (Layout::kFanout + lo) * 4));
            }
            Addr slot =
                node + (2 + (key % Layout::kLeafKeys) * V) * 4;

            switch (op.type) {
              case OpType::Lookup: {
                std::uint32_t tag =
                    std::uint32_t(co_await m.load(slot));
                if (tag != 0)
                    for (unsigned w = 1; w < V; ++w)
                        co_await m.load(slot + w * 4);
                break;
              }
              case OpType::Scan: {
                // Read slot word 0 of op.len consecutive keys,
                // hopping leaves through the next pointers.
                Addr leaf = node;
                std::uint64_t k = key;
                for (std::uint32_t j = 0;
                     j < op.len && k < params_.keys; ++j, ++k) {
                    if (j != 0 && k % Layout::kLeafKeys == 0) {
                        leaf = std::uint32_t(
                            co_await m.load(leaf + 4));
                        if (leaf == 0)
                            break;
                    }
                    co_await m.load(
                        leaf +
                        (2 + (k % Layout::kLeafKeys) * V) * 4);
                }
                break;
              }
              case OpType::Insert: {
                std::uint32_t old =
                    std::uint32_t(co_await m.load(slot));
                if (drop)
                    break; // lost-update hook: reads done, writes gone
                std::uint32_t tag =
                    kv::valueTag(params_.seed, t, i, key);
                co_await m.store(slot, tag);
                for (unsigned w = 1; w < V; ++w)
                    co_await m.store(slot + w * 4,
                                     kv::payloadWord(tag, w));
                if (old == 0) {
                    std::uint32_t occ =
                        std::uint32_t(co_await m.load(node));
                    co_await m.store(node, occ + 1);
                }
                break;
              }
              case OpType::Delete: {
                std::uint32_t old =
                    std::uint32_t(co_await m.load(slot));
                if (old == 0 || drop)
                    break;
                co_await m.store(slot, 0);
                std::uint32_t occ =
                    std::uint32_t(co_await m.load(node));
                co_await m.store(node, occ - 1);
                break;
              }
            }
        }
    }

    kv::Params params_;
    Layout layout_;
    std::vector<std::vector<Op>> programs_;
    std::size_t drop_idx_ = SIZE_MAX;
    ProcId proc_ = 0;
    unsigned barrier_ = 0;
};

void
registerKvWorkload()
{
    static WorkloadRegistrar reg(
        {"kv",
         "transactional B+-tree KV store under Zipfian request streams",
         {scaleOption(),
          {"keys", WorkloadOption::Kind::U64, "131072",
           "key-space size (power of two, 32..4194304)"},
          {"zipf", WorkloadOption::Kind::Real, "0.99",
           "Zipfian skew theta in [0, 1); 0 = uniform"},
          {"ops", WorkloadOption::Kind::U64, "12000",
           "operations per thread"},
          {"tx-ops", WorkloadOption::Kind::U64, "32",
           "operations per transaction"},
          {"vwords", WorkloadOption::Kind::U64, "2",
           "32-bit value words per record (1..16)"},
          {"scan-len", WorkloadOption::Kind::U64, "512",
           "keys visited per range scan"},
          {"lookup-pct", WorkloadOption::Kind::U64, "60",
           "percent of ops that are point lookups"},
          {"scan-pct", WorkloadOption::Kind::U64, "15",
           "percent of ops that are range scans"},
          {"insert-pct", WorkloadOption::Kind::U64, "15",
           "percent of ops that are upserting inserts"},
          {"delete-pct", WorkloadOption::Kind::U64, "10",
           "percent of ops that are deletes"},
          {"preload-pct", WorkloadOption::Kind::U64, "50",
           "percent of keys present before the run"},
          {"drop-write", WorkloadOption::Kind::U64, "0",
           "test hook: drop one insert of thread 0 (lost update)"}},
         [](const WorkloadConfig &cfg) -> std::unique_ptr<Workload> {
             return std::make_unique<KvWorkload>(cfg);
         },
         /*order=*/10, /*paperKernel=*/false});
}

} // namespace ptm
