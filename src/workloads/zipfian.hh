/**
 * @file
 * Zipfian rank sampler for the serving workloads.
 *
 * Implements the constant-time bounded-Zipfian sampler of Gray et al.
 * ("Quickly generating billion-record synthetic databases", SIGMOD'94),
 * the same formulation YCSB popularized: ranks r in [0, n) are drawn
 * with probability proportional to 1 / (r+1)^theta. theta = 0
 * degenerates to the uniform distribution; theta -> 1 approaches the
 * classic Zipf law (theta must stay below 1 for the closed form).
 *
 * Construction is O(n) (the generalized harmonic number is summed
 * once); sampling is O(1) and consumes exactly one Pcg32 draw, so
 * streams are bit-exactly reproducible from the generator seed.
 */

#ifndef PTM_WORKLOADS_ZIPFIAN_HH
#define PTM_WORKLOADS_ZIPFIAN_HH

#include <cmath>
#include <cstdint>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace ptm
{

class Zipfian
{
  public:
    /**
     * @param n      number of ranks (> 0)
     * @param theta  skew in [0, 1): 0 = uniform, 0.99 = heavy skew
     */
    Zipfian(std::uint64_t n, double theta) : n_(n), theta_(theta)
    {
        panic_if(n == 0, "Zipfian over an empty rank set");
        panic_if(theta < 0.0 || theta >= 1.0,
                 "Zipfian skew %f outside [0, 1)", theta);
        if (theta_ == 0.0)
            return;
        double zetan = 0.0;
        for (std::uint64_t i = 1; i <= n_; ++i)
            zetan += 1.0 / std::pow(double(i), theta_);
        zetan_ = zetan;
        double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
        alpha_ = 1.0 / (1.0 - theta_);
        eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
               (1.0 - zeta2 / zetan_);
        half_pow_ = 1.0 + std::pow(0.5, theta_);
    }

    /** Draw one rank in [0, n); rank 0 is the most popular. */
    std::uint64_t
    sample(Pcg32 &rng) const
    {
        if (theta_ == 0.0)
            return rng.below(std::uint32_t(n_));
        double u = rng.uniform();
        double uz = u * zetan_;
        if (uz < 1.0)
            return 0;
        if (uz < half_pow_)
            return 1;
        auto r = std::uint64_t(double(n_) *
                               std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return r >= n_ ? n_ - 1 : r;
    }

    std::uint64_t n() const { return n_; }
    double theta() const { return theta_; }

  private:
    std::uint64_t n_;
    double theta_;
    double zetan_ = 0.0;
    double alpha_ = 0.0;
    double eta_ = 0.0;
    double half_pow_ = 0.0;
};

} // namespace ptm

#endif // PTM_WORKLOADS_ZIPFIAN_HH
