/**
 * @file
 * radix kernel: LSD radix sort (SPLASH-2 RADIX's phase structure).
 *
 * Per digit pass: per-thread histogram, a serialized global rank
 * computation, then a scattered permutation whose writes from
 * different threads interleave *within* cache blocks — unique words,
 * shared blocks. That makes radix the paper's showcase for
 * false-conflict sensitivity: block-granularity conflict detection
 * aborts permute transactions; wd:cache+mem eliminates them (Fig 5).
 *
 * Locks mode serializes the rank merge behind one global lock, as the
 * original does.
 */

#include <algorithm>

#include "locks/spinlock.hh"
#include "workloads/workload.hh"

namespace ptm
{

class RadixWorkload : public Workload
{
  public:
    explicit RadixWorkload(const WorkloadConfig &cfg) : Workload(cfg)
    {
        // Two key arrays of 256 KB each at benchmark size: radix
        // streams through the caches (Table 1: mop/evict 246).
        nkeys_ = cfg.options.u64("scale") == 0 ? 2048 : 65536;
        digit_bits_ = 8;
        passes_ = 3;
        radix_ = 1u << digit_bits_;
    }

    const char *name() const override { return "radix"; }

    void
    build(System &sys) override
    {
        proc_ = sys.createProcess();
        barrier_ = sys.createBarrier(cfg_.threads);
        const unsigned T = cfg_.threads;

        std::vector<std::vector<Step>> steps(T);
        for (unsigned t = 0; t < T; ++t) {
            unsigned k0 = t * nkeys_ / T;
            unsigned k1 = (t + 1) * nkeys_ / T;
            steps[t].push_back(
                PlainStep{[this, k0, k1](MemCtx m) -> TxCoro {
                    for (unsigned i = k0; i < k1; ++i)
                        co_await m.store(src(i), key(i));
                }});
            pushBarrier(steps[t], barrier_);
        }

        for (unsigned pass = 0; pass < passes_; ++pass) {
            unsigned shift = pass * digit_bits_;
            for (unsigned t = 0; t < T; ++t) {
                unsigned k0 = t * nkeys_ / T;
                unsigned k1 = (t + 1) * nkeys_ / T;

                // Per-thread histogram of this pass's digit.
                steps[t].push_back(work([this, t, k0, k1, pass,
                                         shift](MemCtx m) -> TxCoro {
                    for (unsigned b = 0; b < radix_; ++b)
                        co_await m.store(hist(t, b), 0);
                    for (unsigned i = k0; i < k1; ++i) {
                        std::uint32_t k = std::uint32_t(
                            co_await m.load(cur(pass, i)));
                        unsigned d = (k >> shift) & (radix_ - 1);
                        std::uint64_t c =
                            co_await m.load(hist(t, d));
                        co_await m.store(hist(t, d),
                                         std::uint32_t(c + 1));
                    }
                }));
                pushBarrier(steps[t], barrier_);

                // Global rank computation: serialized on thread 0
                // (locked in Locks mode, one transaction in Tx mode).
                if (t == 0) {
                    auto rank_body = [this](MemCtx m) -> TxCoro {
                        std::uint32_t off = 0;
                        for (unsigned b = 0; b < radix_; ++b) {
                            for (unsigned th = 0; th < cfg_.threads;
                                 ++th) {
                                std::uint32_t c = std::uint32_t(
                                    co_await m.load(hist(th, b)));
                                co_await m.store(rank(th, b), off);
                                off += c;
                            }
                        }
                    };
                    if (cfg_.mode == SyncMode::Locks) {
                        steps[t].push_back(PlainStep{
                            [this, rank_body](MemCtx m) -> TxCoro {
                                co_await spinLock(m, lockAddr());
                                co_await rank_body(m);
                                co_await spinUnlock(m, lockAddr());
                            }});
                    } else {
                        steps[t].push_back(work(rank_body));
                    }
                }
                pushBarrier(steps[t], barrier_);

                // Permutation: one transaction per thread and pass;
                // their scattered writes interleave with the other
                // threads' within cache blocks (the false-conflict
                // source of Figure 5).
                constexpr unsigned kChunks = 1;
                for (unsigned half = 0; half < kChunks; ++half) {
                    unsigned c0 = k0 + (k1 - k0) * half / kChunks;
                    unsigned c1 =
                        k0 + (k1 - k0) * (half + 1) / kChunks;
                    steps[t].push_back(work([this, t, c0, c1, k0,
                                             pass, shift](
                                                MemCtx m) -> TxCoro {
                        // Cursor per bucket, advanced from the ranks
                        // plus the number of this thread's earlier
                        // keys per bucket (recomputed locally so the
                        // chunks are independent transactions).
                        std::vector<std::uint32_t> cursor(radix_, 0);
                        for (unsigned b = 0; b < radix_; ++b)
                            cursor[b] = std::uint32_t(
                                co_await m.load(rank(t, b)));
                        for (unsigned i = k0; i < c0; ++i) {
                            std::uint32_t k = std::uint32_t(
                                co_await m.load(cur(pass, i)));
                            ++cursor[(k >> shift) & (radix_ - 1)];
                        }
                        for (unsigned i = c0; i < c1; ++i) {
                            std::uint32_t k = std::uint32_t(
                                co_await m.load(cur(pass, i)));
                            unsigned d = (k >> shift) & (radix_ - 1);
                            co_await m.store(
                                cur(pass + 1, cursor[d]++), k);
                        }
                    }));
                }
                pushBarrier(steps[t], barrier_);
            }
        }

        for (unsigned t = 0; t < T; ++t)
            sys.addThread(proc_, std::move(steps[t]), "radix");
    }

    bool
    verify(System &sys) const override
    {
        std::vector<std::uint32_t> keys(nkeys_);
        for (unsigned i = 0; i < nkeys_; ++i)
            keys[i] = key(i);
        std::stable_sort(keys.begin(), keys.end(),
                         [this](std::uint32_t a, std::uint32_t b) {
                             unsigned bits = passes_ * digit_bits_;
                             std::uint32_t mask =
                                 bits >= 32 ? 0xffffffffu
                                            : ((1u << bits) - 1);
                             return (a & mask) < (b & mask);
                         });
        for (unsigned i = 0; i < nkeys_; ++i)
            if (sys.readWord32(proc_, cur(passes_, i)) != keys[i])
                return false;
        return true;
    }

  private:
    /** Deterministic input keys, bounded by the sorted bit width. */
    std::uint32_t
    key(unsigned i) const
    {
        unsigned bits = passes_ * digit_bits_;
        std::uint32_t mask =
            bits >= 32 ? 0xffffffffu : ((1u << bits) - 1);
        return mixHash(i * 2654435761u + cfg_.seed * 13) & mask;
    }

    /** Source/destination arrays alternate per pass. */
    Addr
    cur(unsigned pass, unsigned i) const
    {
        Addr base = (pass % 2) ? 0x20000000 : 0x10000000;
        return base + Addr(i) * 4;
    }

    Addr src(unsigned i) const { return cur(0, i); }

    Addr
    hist(unsigned t, unsigned b) const
    {
        return 0x30000000 + (Addr(t) * radix_ + b) * 4;
    }

    Addr
    rank(unsigned t, unsigned b) const
    {
        return 0x38000000 + (Addr(t) * radix_ + b) * 4;
    }

    Addr lockAddr() const { return 0x3f000000; }

    unsigned nkeys_;
    unsigned digit_bits_;
    unsigned passes_;
    unsigned radix_;
    ProcId proc_ = 0;
    unsigned barrier_ = 0;
};

void
registerRadixWorkload()
{
    static WorkloadRegistrar reg(
        {"radix",
         "LSD radix sort (permute writes share blocks: false conflicts)",
         {scaleOption()},
         [](const WorkloadConfig &cfg) -> std::unique_ptr<Workload> {
             return std::make_unique<RadixWorkload>(cfg);
         },
         /*order=*/2, /*paperKernel=*/true});
}

} // namespace ptm
