/**
 * @file
 * Workload registry.
 */

#include "workloads/workload.hh"

#include "sim/logging.hh"

namespace ptm
{

std::unique_ptr<Workload> makeFft(const WorkloadConfig &cfg);
std::unique_ptr<Workload> makeLu(const WorkloadConfig &cfg);
std::unique_ptr<Workload> makeRadix(const WorkloadConfig &cfg);
std::unique_ptr<Workload> makeOcean(const WorkloadConfig &cfg);
std::unique_ptr<Workload> makeWater(const WorkloadConfig &cfg);

// GCC 12's -Wmaybe-uninitialized fires spuriously on the std::function
// inside the Step variant whenever vector growth relocates elements
// (the moved-from storage is value-initialized by the variant move
// constructor; see GCC PR 105562). Funnelling every barrier push
// through this helper confines the suppression to one function.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
void
pushBarrier(std::vector<Step> &steps, unsigned barrier_id)
{
    steps.push_back(BarrierStep{barrier_id});
}
#pragma GCC diagnostic pop

SyncMode
syncModeFor(TmKind kind)
{
    switch (kind) {
      case TmKind::Serial:
        return SyncMode::Serial;
      case TmKind::Locks:
        return SyncMode::Locks;
      default:
        return SyncMode::Tx;
    }
}

std::unique_ptr<Workload>
makeWorkload(std::string_view name, const WorkloadConfig &cfg)
{
    if (name == "fft")
        return makeFft(cfg);
    if (name == "lu")
        return makeLu(cfg);
    if (name == "radix")
        return makeRadix(cfg);
    if (name == "ocean")
        return makeOcean(cfg);
    if (name == "water")
        return makeWater(cfg);
    fatal("unknown workload '%.*s'", int(name.size()), name.data());
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names{"fft", "lu", "radix",
                                                "ocean", "water"};
    return names;
}

} // namespace ptm
