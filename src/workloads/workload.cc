/**
 * @file
 * Workload registry implementation: entry storage, option
 * resolution/validation, and the builtin-anchoring hooks.
 */

#include "workloads/workload.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "sim/logging.hh"

namespace ptm
{

// Builtin register functions, one per kernel translation unit. The
// kernels live in a static library: without these calls nothing
// references their object files and the linker silently drops them,
// registrar statics and all. Each function is idempotent.
void registerFftWorkload();
void registerLuWorkload();
void registerRadixWorkload();
void registerOceanWorkload();
void registerWaterWorkload();
void registerKvWorkload();

/** The registry object without the builtin-registration side effect
 *  (the registrars run *inside* instance()'s first call). */
WorkloadRegistry &
workloadRegistryRaw()
{
    static WorkloadRegistry reg;
    return reg;
}

namespace
{

void
registerBuiltinWorkloads()
{
    registerFftWorkload();
    registerLuWorkload();
    registerRadixWorkload();
    registerOceanWorkload();
    registerWaterWorkload();
    registerKvWorkload();
}

const char *
optionKindName(WorkloadOption::Kind k)
{
    switch (k) {
      case WorkloadOption::Kind::U64:
        return "unsigned integer";
      case WorkloadOption::Kind::Real:
        return "real number";
    }
    return "?";
}

bool
validValue(const WorkloadOption &opt, const std::string &v)
{
    if (v.empty())
        return false;
    errno = 0;
    const char *begin = v.c_str();
    char *end = nullptr;
    if (opt.kind == WorkloadOption::Kind::U64) {
        if (v[0] == '-')
            return false;
        (void)std::strtoull(begin, &end, 0);
    } else {
        (void)std::strtod(begin, &end);
    }
    return errno == 0 && end && *end == '\0';
}

} // namespace

// GCC 12's -Wmaybe-uninitialized fires spuriously on the std::function
// inside the Step variant whenever vector growth relocates elements
// (the moved-from storage is value-initialized by the variant move
// constructor; see GCC PR 105562). Funnelling every barrier push
// through this helper confines the suppression to one function.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
void
pushBarrier(std::vector<Step> &steps, unsigned barrier_id)
{
    steps.push_back(BarrierStep{barrier_id});
}
#pragma GCC diagnostic pop

SyncMode
syncModeFor(TmKind kind)
{
    switch (kind) {
      case TmKind::Serial:
        return SyncMode::Serial;
      case TmKind::Locks:
        return SyncMode::Locks;
      default:
        return SyncMode::Tx;
    }
}

bool
WorkloadOptions::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

bool
WorkloadOptions::explicitlySet(const std::string &name) const
{
    return explicit_.count(name) != 0;
}

const std::string &
WorkloadOptions::str(const std::string &name) const
{
    auto it = index_.find(name);
    panic_if(it == index_.end(), "workload option '%s' was not resolved",
             name.c_str());
    return items_[it->second].second;
}

std::uint64_t
WorkloadOptions::u64(const std::string &name) const
{
    const std::string &v = str(name);
    errno = 0;
    char *end = nullptr;
    std::uint64_t out = std::strtoull(v.c_str(), &end, 0);
    panic_if(errno != 0 || !end || *end != '\0',
             "workload option '%s=%s' is not an unsigned integer",
             name.c_str(), v.c_str());
    return out;
}

double
WorkloadOptions::real(const std::string &name) const
{
    const std::string &v = str(name);
    errno = 0;
    char *end = nullptr;
    double out = std::strtod(v.c_str(), &end);
    panic_if(errno != 0 || !end || *end != '\0',
             "workload option '%s=%s' is not a number", name.c_str(),
             v.c_str());
    return out;
}

void
WorkloadOptions::set(const std::string &name, const std::string &value,
                     bool is_explicit)
{
    auto it = index_.find(name);
    if (it == index_.end()) {
        index_[name] = items_.size();
        items_.emplace_back(name, value);
    } else {
        items_[it->second].second = value;
    }
    if (is_explicit)
        explicit_.insert(name);
}

WorkloadRegistry &
WorkloadRegistry::instance()
{
    WorkloadRegistry &reg = workloadRegistryRaw();
    static bool builtins_done = (registerBuiltinWorkloads(), true);
    (void)builtins_done;
    return reg;
}

void
WorkloadRegistry::add(WorkloadInfo info)
{
    panic_if(info.name.empty(), "registering a nameless workload");
    panic_if(!info.factory, "workload '%s' registered without a factory",
             info.name.c_str());
    panic_if(index_.count(info.name),
             "duplicate workload registration '%s'", info.name.c_str());
    for (const auto &opt : info.options)
        panic_if(!validValue(opt, opt.defaultValue),
                 "workload '%s' option '%s' has invalid default '%s'",
                 info.name.c_str(), opt.name.c_str(),
                 opt.defaultValue.c_str());
    index_[info.name] = entries_.size();
    entries_.push_back(std::move(info));
}

const WorkloadInfo *
WorkloadRegistry::find(std::string_view name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : &entries_[it->second];
}

std::vector<const WorkloadInfo *>
WorkloadRegistry::all() const
{
    std::vector<const WorkloadInfo *> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.push_back(&e);
    std::sort(out.begin(), out.end(),
              [](const WorkloadInfo *a, const WorkloadInfo *b) {
                  return a->order != b->order ? a->order < b->order
                                              : a->name < b->name;
              });
    return out;
}

const WorkloadOption *
WorkloadRegistry::findOption(const WorkloadInfo &info,
                             std::string_view name)
{
    for (const auto &opt : info.options)
        if (opt.name == name)
            return &opt;
    return nullptr;
}

bool
WorkloadRegistry::resolve(const WorkloadInfo &info,
                          const WorkloadOptList &given,
                          WorkloadOptions &out, std::string *err) const
{
    out = WorkloadOptions();
    for (const auto &opt : info.options)
        out.set(opt.name, opt.defaultValue, false);
    for (const auto &[name, value] : given) {
        const WorkloadOption *opt = findOption(info, name);
        if (!opt) {
            if (err) {
                *err = "workload '" + info.name + "' has no option '" +
                       name + "'";
                if (info.options.empty()) {
                    *err += " (it takes none)";
                } else {
                    *err += "; known options:";
                    for (const auto &o : info.options)
                        *err += " " + o.name;
                }
            }
            return false;
        }
        if (!validValue(*opt, value)) {
            if (err)
                *err = "workload option '" + name + "=" + value +
                       "' is not a valid " +
                       optionKindName(opt->kind);
            return false;
        }
        out.set(name, value, true);
    }
    return true;
}

WorkloadRegistrar::WorkloadRegistrar(WorkloadInfo info)
{
    workloadRegistryRaw().add(std::move(info));
}

std::unique_ptr<Workload>
makeWorkload(std::string_view name, WorkloadConfig cfg,
             const WorkloadOptList &given)
{
    const WorkloadInfo *info = WorkloadRegistry::instance().find(name);
    if (!info)
        fatal("unknown workload '%.*s' (known: %s)", int(name.size()),
              name.data(), workloadNameList().c_str());
    std::string err;
    if (!WorkloadRegistry::instance().resolve(*info, given, cfg.options,
                                              &err))
        fatal("%s", err.c_str());
    return info->factory(cfg);
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const WorkloadInfo *info : WorkloadRegistry::instance().all())
        if (info->paperKernel)
            names.push_back(info->name);
    return names;
}

std::string
workloadNameList()
{
    std::string out;
    for (const WorkloadInfo *info : WorkloadRegistry::instance().all()) {
        if (!out.empty())
            out += " | ";
        out += info->name;
    }
    return out;
}

} // namespace ptm
