/**
 * @file
 * OsKernel implementation.
 */

#include "vm/os_kernel.hh"

#include <algorithm>

#include "cpu/core.hh"
#include "sim/logging.hh"
#include "tx/tm_backend.hh"

namespace ptm
{

OsKernel::OsKernel(const SystemParams &params, EventQueue &eq,
                   PhysMem &phys, FrameAllocator &frames)
    : params_(params), eq_(eq), phys_(phys), frames_(frames),
      rng_(params.seed, 0x05)
{
    for (unsigned c = 0; c < params.numCores; ++c)
        tlbs_.push_back(std::make_unique<Tlb>(params.tlbEntries));
}

void
OsKernel::attach(MemSystem *mem, TmBackend *backend,
                 std::vector<Core *> cores)
{
    mem_ = mem;
    backend_ = backend;
    cores_ = std::move(cores);
}

void
OsKernel::regStats(StatRegistry &reg)
{
    StatGroup &g = reg.addGroup("os");
    g.addCounter("exceptions", &exceptions,
                 "software exceptions taken (Table 1)");
    g.addCounter("page_faults", &pageFaults,
                 "page faults handled by the OS");
    g.addCounter("swap_ins", &swapIns, "pages swapped in from disk");
    g.addCounter("swap_outs", &swapOuts, "pages swapped out to disk");
    g.addCounter("context_switches", &contextSwitches,
                 "thread context switches (Table 1)");
    g.addCounter("tlb_shootdowns", &tlbShootdowns,
                 "TLB shootdowns after unmapping a page");
    g.addScalar("pages", [this] { return double(uniquePages()); },
                "unique virtual pages touched (Table 1 'pages')");
    g.addScalar("pg_x_wr", [this] { return double(txWrittenPages()); },
                "pages transactionally written (Table 1 'pg-x-wr')");
    g.addScalar("tlb_hits", [this] {
        std::uint64_t n = 0;
        for (const auto &t : tlbs_)
            n += t->hits.value();
        return double(n);
    }, "TLB hits summed over all cores");
    g.addScalar("tlb_misses", [this] {
        std::uint64_t n = 0;
        for (const auto &t : tlbs_)
            n += t->misses.value();
        return double(n);
    }, "TLB misses summed over all cores");
}

ProcId
OsKernel::createProcess()
{
    ProcId id = ProcId(procs_.size());
    procs_.push_back(Process{id, {}});
    return id;
}

void
OsKernel::shareSegment(const std::vector<ProcId> &procs, Addr vbase,
                       unsigned pages)
{
    std::vector<std::pair<ProcId, Addr>> views;
    for (ProcId p : procs)
        views.emplace_back(p, vbase);
    shareSegmentAt(views, pages);
}

void
OsKernel::shareSegmentAt(
    const std::vector<std::pair<ProcId, Addr>> &views, unsigned pages)
{
    std::uint32_t seg_id = std::uint32_t(shared_.size());
    shared_.push_back(SharedSeg{});
    shared_.back().pages.resize(pages);
    for (const auto &[p, vbase] : views) {
        fatal_if(pageOffset(vbase) != 0,
                 "shared segment view must be page aligned");
        for (unsigned i = 0; i < pages; ++i) {
            PageMapping m;
            m.shareId = seg_id;
            m.sharePage = i;
            procs_.at(p).pageTable[pageOf(vbase) + i] = m;
        }
    }
}

XlatResult
OsKernel::translate(CoreId core, ProcId proc, Addr vaddr, bool write)
{
    (void)write;
    XlatResult r;
    PageNum vpage = pageOf(vaddr);
    touched_pages_.insert(pageKey(proc, vaddr));

    PageNum frame = tlbs_[core]->lookup(proc, vpage);
    if (frame != invalidPage) {
        r.paddr = pageBase(frame) + pageOffset(vaddr);
        return r;
    }

    // Hardware page-table walk.
    r.latency += params_.tlbWalkLatency;
    PageMapping &pte = procs_.at(proc).pageTable[vpage];
    PageMapping &m = resolve(pte);

    if (m.state != PageMapping::State::Resident) {
        Tick fault_lat = handleFault(proc, vpage, m);
        prof_->charge(ProfCharge::PageFault, fault_lat);
        r.latency += fault_lat;
        r.faulted = true;
    }

    tlbs_[core]->insert(proc, vpage, m.frame);
    r.paddr = pageBase(m.frame) + pageOffset(vaddr);
    return r;
}

std::optional<Addr>
OsKernel::translateFast(CoreId core, ProcId proc, Addr vaddr)
{
    PageNum vpage = pageOf(vaddr);
    if (!tlbs_[core]->contains(proc, vpage))
        return std::nullopt;
    touched_pages_.insert(pageKey(proc, vaddr));
    PageNum frame = tlbs_[core]->lookup(proc, vpage);
    return pageBase(frame) + pageOffset(vaddr);
}

Tick
OsKernel::handleFault(ProcId proc, PageNum vpage, PageMapping &m)
{
    ++exceptions;
    ++pageFaults;
    tracer_->record(TraceEventType::PageFault, traceNoId, traceNoId,
                    invalidTxId, invalidTxId, vpage, proc);
    Tick lat = params_.pageFaultLatency;
    lat += reclaimFrames();

    if (m.state == PageMapping::State::Swapped) {
        // Swap the page (and, via the backend, its shadow) back in.
        ++swapIns;
        prof_->charge(ProfCharge::SwapIo, params_.swapLatency);
        lat += params_.swapLatency;
        m.frame = frames_.alloc();
        tracer_->record(TraceEventType::SwapIn, traceNoId, traceNoId,
                        invalidTxId, invalidTxId, m.swapSlot, m.frame);
        std::vector<std::uint8_t> *bytes = swap_data_.find(m.swapSlot);
        panic_if(!bytes, "missing swap data");
        for (unsigned b = 0; b < blocksPerPage; ++b)
            phys_.writeBlock(pageBase(m.frame) + b * blockBytes,
                             bytes->data() + b * blockBytes);
        if (backend_)
            backend_->pageSwapIn(m.swapSlot, m.frame);
        swap_data_.erase(m.swapSlot);
        m.state = PageMapping::State::Resident;
    } else {
        // First touch: allocate a zero frame.
        m.frame = frames_.alloc();
        m.state = PageMapping::State::Resident;
    }
    resident_fifo_.emplace_back(proc, vpage);
    return lat;
}

Tick
OsKernel::reclaimFrames()
{
    if (!params_.swapEnabled)
        return 0;
    Tick lat = 0;
    // Keep a small pool of free frames (shadow allocations draw from
    // the same pool and must not fail).
    while (frames_.available() < 16) {
        Tick one = swapOutOne();
        if (one == 0)
            break;
        lat += one;
    }
    return lat;
}

Tick
OsKernel::forceSwapOut()
{
    if (!params_.swapEnabled)
        return 0;
    return swapOutOne();
}

Tick
OsKernel::swapOutOne()
{
    // FIFO scan for a swappable victim: resident, not pinned by live
    // TAV state (the paper's OS also only chooses home pages; shadow
    // pages are never independent victims, section 3.5.1).
    for (std::size_t scan = 0; scan < resident_fifo_.size(); ++scan) {
        auto [proc, vpage] = resident_fifo_.front();
        resident_fifo_.pop_front();
        // at(): a FIFO entry's page was inserted when it faulted in, so
        // this lookup can never insert (see the pageTable invariant).
        PageMapping &m = resolve(procs_.at(proc).pageTable.at(vpage));
        if (m.state != PageMapping::State::Resident) {
            continue; // stale entry
        }
        if (backend_ && !backend_->swappable(m.frame)) {
            resident_fifo_.emplace_back(proc, vpage);
            continue;
        }

        // Flush cached blocks (may create overflow state for live
        // transactions -> re-check swappability afterwards).
        Tick lat = mem_ ? mem_->flushPage(m.frame) : 0;
        if (backend_ && !backend_->swappable(m.frame)) {
            resident_fifo_.emplace_back(proc, vpage);
            continue;
        }

        ++swapOuts;
        prof_->charge(ProfCharge::SwapIo, params_.swapLatency);
        lat += params_.swapLatency;
        std::uint64_t slot = next_swap_slot_++;
        tracer_->record(TraceEventType::SwapOut, traceNoId, traceNoId,
                        invalidTxId, invalidTxId, m.frame, slot);
        if (backend_)
            backend_->pageSwapOut(m.frame, slot);

        std::vector<std::uint8_t> bytes(pageBytes);
        for (unsigned b = 0; b < blocksPerPage; ++b)
            phys_.readBlock(pageBase(m.frame) + b * blockBytes,
                            bytes.data() + b * blockBytes);
        swap_data_[slot] = std::move(bytes);
        phys_.releaseFrame(m.frame);
        frames_.free(m.frame);

        m.state = PageMapping::State::Swapped;
        m.swapSlot = slot;
        m.frame = invalidPage;
        shootdown(proc, vpage);
        return lat;
    }
    return 0;
}

void
OsKernel::shootdown(ProcId proc, PageNum vpage)
{
    ++tlbShootdowns;
    for (auto &tlb : tlbs_)
        tlb->invalidate(proc, vpage);
    // Shared segments: every process maps the same frame; invalidate
    // their translations too (conservative: flush by (proc,vpage) of
    // the faulting process only — private pages; shared pages are not
    // swapped because their FIFO entry carries one owner).
    (void)proc;
}

void
OsKernel::admit(ThreadCtx *t)
{
    ++live_threads_;
    t->state = ThreadState::Ready;
    ready_.push_back(t);
}

void
OsKernel::makeReady(ThreadCtx *t)
{
    t->state = ThreadState::Ready;
    ready_.push_back(t);
}

ThreadCtx *
OsKernel::pickReady()
{
    if (ready_.empty())
        return nullptr;
    ThreadCtx *t = ready_.front();
    ready_.pop_front();
    return t;
}

void
OsKernel::threadExited(ThreadCtx *t)
{
    if (onThreadExit)
        onThreadExit(t);
    panic_if(live_threads_ == 0, "thread exit underflow");
    --live_threads_;
    last_exit_ = eq_.curTick();
    // A daemon preemption scheduled up to 1.5 daemonIntervals out
    // would otherwise keep advancing the queue clock long after the
    // workload ends, inflating the elapsed time the profiler (and any
    // time-weighted stat) closes against.
    if (live_threads_ == 0)
        daemon_timer_.cancel();
}

unsigned
OsKernel::createBarrier(unsigned count)
{
    barriers_.push_back(Barrier{count, {}});
    return unsigned(barriers_.size() - 1);
}

bool
OsKernel::barrierArrive(unsigned id, ThreadCtx *t,
                        std::vector<ThreadCtx *> &released)
{
    Barrier &b = barriers_.at(id);
    b.waiting.push_back(t);
    if (b.waiting.size() < b.count)
        return false;
    released = std::move(b.waiting);
    b.waiting.clear();
    return true;
}

void
OsKernel::kickIdleCores()
{
    for (Core *c : cores_)
        c->kick();
}

void
OsKernel::startTimers()
{
    if (params_.daemonInterval == 0 || cores_.empty())
        return;
    // Daemon preemptions model the background OS activity that makes
    // context-switch virtualization necessary (Table 1): a random core
    // is borrowed for daemonRunLength cycles at roughly
    // daemonInterval-cycle intervals.
    Tick jitter = params_.daemonInterval / 2 +
                  rng_.below(std::uint32_t(params_.daemonInterval));
    daemon_timer_ = eq_.scheduleIn(jitter, EventPriority::Os, [this] {
        if (live_threads_ == 0)
            return; // workload done: let the queue drain
        Core *victim = cores_[rng_.below(unsigned(cores_.size()))];
        victim->daemonPreempt(params_.daemonRunLength);
        ++exceptions; // the timer interrupt itself
        startTimers();
    });
}

} // namespace ptm
