/**
 * @file
 * Operating-system model: per-process page tables, demand paging with
 * a swap device, thread scheduling with timer quanta and daemon
 * preemptions, barriers, and shared-memory segments.
 *
 * PTM integrates with the OS at three points (section 3.5): the page
 * tables translate to *home* physical pages only; swap-out migrates a
 * page's SPT entry into the Swap Index Table (and merges or swaps the
 * shadow page); and context switches do *not* flush transactional
 * cache state — transaction IDs tagged in the cache lines keep
 * conflict detection working while a transaction's thread is
 * descheduled or migrates between cores (section 4.7).
 */

#ifndef PTM_VM_OS_KERNEL_HH
#define PTM_VM_OS_KERNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "cache/tlb.hh"
#include "mem/frame_alloc.hh"
#include "mem/mem_system.hh"
#include "mem/phys_mem.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ptm
{

class ThreadCtx;
class Core;

/** Result of a virtual-to-physical translation. */
struct XlatResult
{
    /** Home physical address. */
    Addr paddr = 0;
    /** Latency of TLB miss handling / fault handling. */
    Tick latency = 0;
    /** A software exception (page fault) was taken. */
    bool faulted = false;
};

/** The OS kernel model. */
class OsKernel
{
  public:
    OsKernel(const SystemParams &params, EventQueue &eq, PhysMem &phys,
             FrameAllocator &frames);

    /** Late wiring (System construction order). */
    void attach(MemSystem *mem, TmBackend *backend,
                std::vector<Core *> cores);

    /** Create an address space. @return its process id. */
    ProcId createProcess();

    /**
     * Map a shared-memory segment: the virtual range
     * [@p vbase, @p vbase + pages) of every process in @p procs
     * resolves to the same physical frames (allocated on first touch
     * by any of them). Used to exercise PTM's physically-indexed
     * conflict detection across address spaces (section 3.5.3).
     */
    void shareSegment(const std::vector<ProcId> &procs, Addr vbase,
                      unsigned pages);

    /**
     * Same, but each process maps the segment at its own virtual base
     * (the general mmap case): PTM's physically-indexed structures
     * make conflict detection work regardless of the virtual views.
     */
    void shareSegmentAt(
        const std::vector<std::pair<ProcId, Addr>> &views,
        unsigned pages);

    /**
     * Translate @p vaddr for @p proc on @p core, handling TLB misses,
     * first-touch allocation and swap-ins.
     */
    XlatResult translate(CoreId core, ProcId proc, Addr vaddr,
                         bool write);

    /**
     * Zero-latency translation for the direct-execution fast-forward:
     * performs exactly the TLB-hit path of translate() (same counters,
     * same LRU motion) and returns the home physical address, or
     * std::nullopt on a TLB miss *without touching any state*, so the
     * deferred full translate() replays the miss identically.
     */
    std::optional<Addr> translateFast(CoreId core, ProcId proc,
                                      Addr vaddr);

    /** @name Scheduling */
    /// @{
    /** Register a runnable thread. */
    void admit(ThreadCtx *t);
    /** Put a preempted/unblocked thread back on the run queue. */
    void makeReady(ThreadCtx *t);
    /** Pick the next thread for an idle core (nullptr if none). */
    ThreadCtx *pickReady();
    /** True if a thread is waiting for a core. */
    bool hasReady() const { return !ready_.empty(); }
    /** A thread finished its program. */
    void threadExited(ThreadCtx *t);
    /**
     * Invoked at the top of threadExited(). The System drains the
     * exiting thread's in-flight abort cleanups here so a stale
     * Copy-PTM restore can never run after the thread is gone.
     */
    std::function<void(ThreadCtx *)> onThreadExit;
    /** Tick at which the last thread finished. */
    Tick lastExitTick() const { return last_exit_; }
    /** Threads admitted and not yet exited. */
    unsigned liveThreads() const { return live_threads_; }
    /// @}

    /** @name Barriers */
    /// @{
    /** Create a barrier for @p count participants; returns its id. */
    unsigned createBarrier(unsigned count);
    /**
     * Thread @p t arrives at barrier @p id.
     * @return true if the barrier released (all arrived); the caller
     *         re-kicks the waiting threads via makeReady.
     */
    bool barrierArrive(unsigned id, ThreadCtx *t,
                       std::vector<ThreadCtx *> &released);
    /// @}

    /** Kick the scheduler: wake any idle core if work is ready. */
    void kickIdleCores();

    /** Start the periodic timer/daemon machinery (call once). */
    void startTimers();

    /**
     * Swap one resident, swappable page out right now (chaos PageSwap
     * fault). @return the modeled latency, 0 if no victim was found or
     * swapping is disabled.
     */
    Tick forceSwapOut();

    /** Record a transactional write for Table 1's "pg-x-wr". */
    void
    noteTxWrite(ProcId proc, Addr vaddr)
    {
        tx_written_pages_.insert(pageKey(proc, vaddr));
    }

    /** Unique virtual pages touched (Table 1 "pages"). */
    std::size_t uniquePages() const { return touched_pages_.size(); }
    /** Unique virtual pages written transactionally ("pg-x-wr"). */
    std::size_t
    txWrittenPages() const
    {
        return tx_written_pages_.size();
    }

    Tlb &tlb(CoreId c) { return *tlbs_[c]; }

    /** Register this component's statistics under "os". */
    void regStats(StatRegistry &reg);

    /** Attach the event tracer (System wiring; defaults to nil). */
    void setTracer(Tracer *t) { tracer_ = t; }

    /** The attached tracer (Core records its scheduling events). */
    Tracer &tracer() { return *tracer_; }

    /** Attach the cycle profiler (System wiring; defaults to nil). */
    void setProfiler(CycleProfiler *p) { prof_ = p; }

    /** @name Statistics */
    /// @{
    Counter exceptions;      //!< software faults taken (Table 1)
    Counter pageFaults;
    Counter swapIns;
    Counter swapOuts;
    Counter contextSwitches; //!< Table 1 "context-switch"
    Counter tlbShootdowns;
    /// @}

  private:
    struct PageMapping
    {
        enum class State { Unmapped, Resident, Swapped };
        State state = State::Unmapped;
        PageNum frame = invalidPage;   // while Resident
        std::uint64_t swapSlot = 0;    // while Swapped
        /** Shared-segment identity (~0u if private). */
        std::uint32_t shareId = ~0u;
        /** Page index within the shared segment. */
        std::uint32_t sharePage = 0;
    };

    struct Process
    {
        ProcId id;
        /**
         * Invariant for reference stability: while translate() holds a
         * PageMapping reference, the only other lookup that can run is
         * swapOutOne()'s, which uses at() on keys that are always
         * present (the resident FIFO only lists faulted-in pages), so
         * no insertion can rehash under the held reference.
         */
        FlatMap<PageNum, PageMapping> pageTable;
    };

    /** Shared segment: one authoritative mapping per segment page. */
    struct SharedSeg
    {
        std::vector<PageMapping> pages;
    };

    /** Resolve to the authoritative mapping (shared or private). */
    PageMapping &
    resolve(PageMapping &m)
    {
        if (m.shareId == ~0u)
            return m;
        return shared_[m.shareId].pages[m.sharePage];
    }

    static std::uint64_t
    pageKey(ProcId proc, Addr vaddr)
    {
        return (std::uint64_t(proc) << 48) | pageOf(vaddr);
    }

    /** Take a page fault on (proc, vpage). @return latency. */
    Tick handleFault(ProcId proc, PageNum vpage, PageMapping &m);

    /** Ensure a free frame exists, swapping out LRU-ish victims. */
    Tick reclaimFrames();

    /** Swap one resident page out. @return latency (0 if none found). */
    Tick swapOutOne();

    /** Invalidate a translation in every TLB. */
    void shootdown(ProcId proc, PageNum vpage);

    const SystemParams params_;
    EventQueue &eq_;
    PhysMem &phys_;
    FrameAllocator &frames_;
    MemSystem *mem_ = nullptr;
    TmBackend *backend_ = nullptr;
    Tracer *tracer_ = &Tracer::nil();
    CycleProfiler *prof_ = &CycleProfiler::nil();
    std::vector<Core *> cores_;
    std::vector<std::unique_ptr<Tlb>> tlbs_;

    std::vector<Process> procs_;
    std::vector<SharedSeg> shared_;
    /** FIFO of resident (proc, vpage) pairs for swap victim choice. */
    std::deque<std::pair<ProcId, PageNum>> resident_fifo_;
    FlatMap<std::uint64_t, std::vector<std::uint8_t>> swap_data_;
    std::uint64_t next_swap_slot_ = 1;

    std::deque<ThreadCtx *> ready_;
    unsigned live_threads_ = 0;
    Tick last_exit_ = 0;
    /** Pending daemon preemption; cancelled once the workload ends. */
    EventQueue::Handle daemon_timer_;

    struct Barrier
    {
        unsigned count = 0;
        std::vector<ThreadCtx *> waiting;
    };
    std::vector<Barrier> barriers_;

    FlatSet<std::uint64_t> touched_pages_;
    FlatSet<std::uint64_t> tx_written_pages_;

    Pcg32 rng_;
};

} // namespace ptm

#endif // PTM_VM_OS_KERNEL_HH
