/**
 * @file
 * Bounded top-K contention attribution: *where* conflicts, aborts and
 * supervisor misses happen, not just how often.
 *
 * The heatmap keys every contention-related event by the page (and,
 * for conflicts, also the 64-byte block) it touched, and keeps the
 * hottest K keys per metric in space-saving counters (Metwally et
 * al.): a fixed-size summary whose stored counts always sum to the
 * exact number of recorded events, with a per-key overcount bound of
 * at most the smallest stored count at replacement time. That sum
 * preservation is what lets the per-page abort attribution reconcile
 * *exactly* against the tx manager's per-cause abort counters.
 *
 * Events with no attributable address (chaos-injected explicit
 * aborts) are recorded under the invalidPage sentinel so the totals
 * still balance.
 *
 * All hooks are a single never-taken branch when the heatmap is
 * disabled (components hold a null pointer), keeping the default
 * path within benchmark noise.
 */

#ifndef PTM_PTM_HEATMAP_HH
#define PTM_PTM_HEATMAP_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace ptm
{

/**
 * A space-saving top-K frequency summary over uint64 keys.
 *
 * Invariants (pinned by tests/test_heatmap.cc):
 *  - the stored counts always sum to total() (every record() lands in
 *    exactly one stored entry);
 *  - below capacity every count is exact (error == 0);
 *  - over capacity, each entry overestimates its key's true frequency
 *    by at most its error field, which is bounded by total()/capacity;
 *  - eviction is deterministic: the victim is the entry with the
 *    smallest count, ties broken by the smallest key.
 */
class SpaceSavingTopK
{
  public:
    struct Entry
    {
        std::uint64_t key = 0;
        std::uint64_t count = 0;
        /** Overcount bound: count - error <= true frequency <= count. */
        std::uint64_t error = 0;
    };

    explicit SpaceSavingTopK(unsigned capacity);

    /** Record @p n occurrences of @p key. */
    void record(std::uint64_t key, std::uint64_t n = 1);

    /** Exact number of recorded occurrences (== sum of counts). */
    std::uint64_t total() const { return total_; }

    unsigned capacity() const { return capacity_; }

    /** Number of keys currently tracked (<= capacity). */
    std::size_t size() const { return entries_.size(); }

    /** Entries sorted by descending count, ascending key on ties. */
    std::vector<Entry> top() const;

  private:
    unsigned capacity_;
    std::vector<Entry> entries_;
    /** key -> index into entries_. */
    std::unordered_map<std::uint64_t, std::size_t> index_;
    std::uint64_t total_ = 0;
};

/** Number of AbortReason causes the heatmap attributes separately. */
constexpr unsigned heatAbortCauses = 4;

/** Stable schema name of abort cause @p cause ("conflict", ...). */
const char *heatAbortCauseName(unsigned cause);

/** By-value capture of a ContentionHeatmap for results / emission. */
struct HeatmapSnapshot
{
    bool enabled = false;
    unsigned k = 0;
    std::vector<SpaceSavingTopK::Entry> conflictPages;
    std::vector<SpaceSavingTopK::Entry> conflictBlocks;
    std::vector<SpaceSavingTopK::Entry> abortPages[heatAbortCauses];
    std::vector<SpaceSavingTopK::Entry> sptMissPages;
    std::vector<SpaceSavingTopK::Entry> tavMissPages;
    std::vector<SpaceSavingTopK::Entry> shadowAllocPages;
    std::uint64_t conflictsTotal = 0;
    std::uint64_t abortsTotal[heatAbortCauses] = {};
    std::uint64_t sptMissTotal = 0;
    std::uint64_t tavMissTotal = 0;
    std::uint64_t shadowAllocTotal = 0;
};

/**
 * The per-run contention heatmap. Hooked (via plain pointers, so the
 * tx/ and mem/ layers need no ptm/ headers) from:
 *
 *  - TxManager::resolveConflicts — one recordConflict per
 *    winner->loser edge, keyed by the conflicting block address;
 *  - TxManager::abort — one recordAbort per abort, next to the
 *    per-cause counters, so per-page sums match them exactly;
 *  - Vts::sptLookupCost / tavLookupCost miss paths and ensureShadow.
 */
class ContentionHeatmap
{
  public:
    explicit ContentionHeatmap(unsigned top_k);

    /** A winner->loser conflict edge at block address @p where. */
    void recordConflict(Addr where);

    /**
     * An abort of cause @p cause (unsigned(AbortReason)) attributed to
     * @p where; invalidAddr records under the invalidPage sentinel.
     */
    void recordAbort(unsigned cause, Addr where);

    void recordSptMiss(PageNum home) { sptMiss_.record(home); }
    void recordTavMiss(PageNum home) { tavMiss_.record(home); }
    void recordShadowAlloc(PageNum home) { shadowAlloc_.record(home); }

    unsigned topK() const { return k_; }

    HeatmapSnapshot snapshot() const;

    /**
     * The @p n hottest conflict pages as a compact JSON array
     * fragment, e.g. `[{"page":12,"count":34,"err":0}]` — the
     * per-interval "hot_pages" series of the time-series sampler
     * (invalidPage renders as page -1: unattributed).
     */
    std::string hotPagesJson(unsigned n) const;

    /** @name Per-metric summaries (tests / analysis) */
    /// @{
    const SpaceSavingTopK &conflictPages() const { return conflictPages_; }
    const SpaceSavingTopK &conflictBlocks() const
    {
        return conflictBlocks_;
    }
    const SpaceSavingTopK &abortPages(unsigned cause) const
    {
        return abortPages_[cause];
    }
    /// @}

  private:
    unsigned k_;
    SpaceSavingTopK conflictPages_;
    SpaceSavingTopK conflictBlocks_;
    SpaceSavingTopK abortPages_[heatAbortCauses];
    SpaceSavingTopK sptMiss_;
    SpaceSavingTopK tavMiss_;
    SpaceSavingTopK shadowAlloc_;
};

} // namespace ptm

#endif // PTM_PTM_HEATMAP_HH
