/**
 * @file
 * Transaction Access Vector (TAV) lists and the Shadow Page Table —
 * the memory-resident PTM structures of Figure 1.
 *
 * Each TAV node records, for one (transaction, page) pair, the blocks
 * (or words, in wd:cache+mem mode) the transaction read or wrote after
 * they overflowed the caches. Nodes are linked two ways:
 *
 *  - horizontally: all transactions that overflowed state on a page
 *    (rooted at the page's SPT entry), used for conflict detection;
 *  - vertically: all pages a transaction overflowed on (rooted at the
 *    T-State table), walked on commit and abort.
 */

#ifndef PTM_PTM_TAV_HH
#define PTM_PTM_TAV_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/bitvec.hh"
#include "sim/types.hh"

namespace ptm
{

/** One TAV node: the overflow access vectors of one tx on one page. */
struct TavNode
{
    TxId tx = invalidTxId;
    /** Home physical page the vectors describe. */
    PageNum home = invalidPage;

    BitVec read;
    BitVec write;

    /** Horizontal link: next transaction's node for the same page. */
    TavNode *nextOnPage = nullptr;
    /** Vertical link: next page node of the same transaction. */
    TavNode *nextOfTx = nullptr;
};

/**
 * Slab allocator for TAV nodes.
 *
 * The simulator creates and frees a TAV node per (transaction, page)
 * overflow; at paper scale that is millions of nodes whose `new` /
 * `delete` churn dominates the overflow paths. The arena hands out
 * nodes from fixed-size chunks and recycles freed nodes through an
 * intrusive freelist (threaded through `nextOnPage`). Recycled nodes
 * keep their BitVec buffers, so steady-state allocation touches no
 * heap at all. Chunks are only released when the arena dies.
 */
class TavArena
{
  public:
    /** Pop a recycled node (fields reset, vectors cleared) or carve a
     *  fresh one from the current chunk. */
    TavNode *
    alloc()
    {
        if (!free_) {
            chunks_.push_back(
                std::make_unique<std::array<TavNode, chunkNodes>>());
            for (TavNode &n : *chunks_.back()) {
                n.nextOnPage = free_;
                free_ = &n;
            }
        }
        TavNode *n = free_;
        free_ = n->nextOnPage;
        n->nextOnPage = nullptr;
        ++live_;
        return n;
    }

    /** Return @p n to the freelist. The node's links must already be
     *  unhooked from its page and transaction lists. */
    void
    free(TavNode *n)
    {
        n->tx = invalidTxId;
        n->home = invalidPage;
        n->read.reset();  // keeps capacity for reuse
        n->write.reset();
        n->nextOfTx = nullptr;
        n->nextOnPage = free_;
        free_ = n;
        --live_;
    }

    /** Nodes currently handed out (tests/inspection). */
    std::size_t liveNodes() const { return live_; }
    /** Total nodes ever carved from chunks (tests/inspection). */
    std::size_t slabNodes() const { return chunks_.size() * chunkNodes; }

  private:
    static constexpr std::size_t chunkNodes = 64;

    std::vector<std::unique_ptr<std::array<TavNode, chunkNodes>>>
        chunks_;
    TavNode *free_ = nullptr;
    std::size_t live_ = 0;
};

/**
 * One Shadow Page Table entry (also the payload of a Swap Index Table
 * entry while the page is swapped out).
 *
 * The read/write summary vectors are the OR of the TAV vectors on the
 * page; hardware caches them in the SPT cache (section 4.2.2), and we
 * maintain them incrementally here as the single source of truth.
 */
struct SptEntry
{
    /** Home physical page (or swap slot while swapped out). */
    PageNum home = invalidPage;
    /** Allocated shadow page; invalidPage if none. */
    PageNum shadow = invalidPage;

    /**
     * Selection vector (Select-PTM): a set bit means the committed
     * version of the unit lives in the *shadow* page.
     */
    BitVec selection;
    /** OR of all TAV write vectors on the page. */
    BitVec writeSummary;
    /** OR of all TAV read vectors on the page. */
    BitVec readSummary;

    /** Head of the horizontal TAV list. */
    TavNode *tavHead = nullptr;

    /** Gauge bookkeeping: the page currently holds speculative
     *  overflow of a live (Running) transaction. */
    bool liveDirty = false;

    bool hasShadow() const { return shadow != invalidPage; }

    /** Number of TAV nodes on the page. */
    unsigned
    tavCount() const
    {
        unsigned n = 0;
        for (TavNode *t = tavHead; t; t = t->nextOnPage)
            ++n;
        return n;
    }

    /** Find the TAV node of @p tx, or nullptr. */
    TavNode *
    findTav(TxId tx) const
    {
        for (TavNode *t = tavHead; t; t = t->nextOnPage)
            if (t->tx == tx)
                return t;
        return nullptr;
    }
};

} // namespace ptm

#endif // PTM_PTM_TAV_HH
