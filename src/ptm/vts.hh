/**
 * @file
 * The Virtual Transaction Supervisor (VTS) — PTM's memory-controller
 * engine (section 4 of the paper).
 *
 * The VTS owns the memory-resident PTM structures (Shadow Page Table,
 * Swap Index Table, TAV lists) and two hardware caches over them:
 *
 *  - the SPT cache (512 fully-associative entries): shadow pointer,
 *    selection vector and read/write summary vectors per page;
 *  - the TAV cache (2048 fully-associative entries, tagged by
 *    (page, transaction)): per-transaction access vectors.
 *
 * It implements both versioning policies:
 *
 *  - Copy-PTM: the speculative block always goes to the home page; the
 *    committed block is copied to the shadow page on the first dirty
 *    overflow. Commit frees TAVs only; abort restores home blocks from
 *    the shadow page.
 *  - Select-PTM: a per-page selection vector says which of home/shadow
 *    holds the committed unit. Evicted speculative data goes to the
 *    non-committed location; commit toggles selection bits; abort does
 *    no data movement at all.
 *
 * Commit/abort processing is lazy: the T-State flip happens instantly
 * (TxManager), then a supervisor walk frees one TAV node per memory
 * access; accesses touching not-yet-cleaned pages stall (section 4.5).
 */

#ifndef PTM_PTM_VTS_HH
#define PTM_PTM_VTS_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/frame_alloc.hh"
#include "mem/phys_mem.hh"
#include "mem/timing.hh"
#include "ptm/granularity.hh"
#include "ptm/tav.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"
#include "tx/tm_backend.hh"
#include "tx/tx_manager.hh"

namespace ptm
{

class PtmAuditor;
struct AuditTestAccess;

/**
 * Timing model of a fully-associative, LRU, write-back metadata cache
 * in the memory controller (the SPT cache and the TAV cache). The
 * simulator keeps the *functional* PTM structures always current; these
 * caches only decide whether a lookup pays cache latency or a memory
 * walk.
 *
 * Hit, miss and eviction are all O(1): entries live in a slab indexed
 * by an open-addressing map, threaded on an intrusive doubly-linked
 * list in recency order, so the LRU victim is the list tail (the exact
 * entry the previous implementation found by scanning every entry for
 * the minimum use stamp — use stamps are unique, so victim choice and
 * therefore every simulated statistic is unchanged).
 */
class VtsMetaCache
{
  public:
    explicit VtsMetaCache(unsigned entries) : capacity_(entries)
    {
        nodes_.reserve(entries);
        index_.reserve(entries);
    }

    /**
     * Look up @p key; inserts it on a miss (possibly evicting LRU).
     * @param mark_dirty the entry is being updated in place
     * @param[out] evicted_dirty an LRU victim needed a write-back
     * @return true on hit
     */
    bool access(std::uint64_t key, bool mark_dirty, bool &evicted_dirty);

    /** Drop @p key (structure freed). */
    void remove(std::uint64_t key);

    /**
     * Change the capacity at runtime (chaos cache squeezes), evicting
     * LRU entries — with normal write-back accounting — until the new
     * capacity holds. A zero @p entries is clamped to 1.
     */
    void setCapacity(unsigned entries);

    unsigned capacity() const { return capacity_; }

    Counter hits;
    Counter misses;
    Counter dirtyEvictions;

  private:
    static constexpr std::uint32_t nil = ~std::uint32_t(0);

    struct Node
    {
        std::uint64_t key = 0;
        std::uint32_t prev = nil;
        std::uint32_t next = nil;
        bool dirty = false;
    };

    /** Detach node @p i from the recency list. */
    void unlink(std::uint32_t i);
    /** Attach node @p i at the most-recently-used end. */
    void pushFront(std::uint32_t i);

    unsigned capacity_;
    std::vector<Node> nodes_;           //!< slab; index_ maps into it
    std::vector<std::uint32_t> free_;   //!< recycled slab slots
    std::uint32_t head_ = nil;          //!< most recently used
    std::uint32_t tail_ = nil;          //!< LRU victim
    FlatMap<std::uint64_t, std::uint32_t> index_;
};

/**
 * A VTS metadata cache partitioned by interconnect bank: one
 * VtsMetaCache per bank, routed by the home page number, with the
 * total capacity divided evenly across partitions. With one bank (the
 * paper configuration) this is a single full-capacity partition and
 * behaves bit-identically to the unpartitioned cache; with more banks,
 * each bank's controller slice arbitrates its own metadata cache, so
 * SPT/TAV lookups to disjoint banks never contend for the same LRU
 * state. The aggregate hit/miss/dirty-eviction counters live here so
 * stats wiring is independent of the partition count.
 */
class BankedVtsCache
{
  public:
    BankedVtsCache(unsigned entries, unsigned banks)
        : route_mask_(std::max(1u, banks) - 1)
    {
        unsigned n = std::max(1u, banks);
        unsigned per = std::max(1u, (entries + n - 1) / n);
        parts_.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            parts_.emplace_back(per);
    }

    /**
     * Look up @p key in the partition serving home page @p route;
     * inserts it on a miss (possibly evicting that partition's LRU).
     * @return true on hit
     */
    bool
    access(PageNum route, std::uint64_t key, bool mark_dirty,
           bool &evicted_dirty)
    {
        bool hit = part(route).access(key, mark_dirty, evicted_dirty);
        if (hit)
            ++hits;
        else
            ++misses;
        if (evicted_dirty)
            ++dirtyEvictions;
        return hit;
    }

    /** Drop @p key from the partition serving @p route. */
    void remove(PageNum route, std::uint64_t key)
    {
        part(route).remove(key);
    }

    /**
     * Change the *total* capacity at runtime (chaos cache squeezes),
     * divided evenly across partitions with normal write-back
     * accounting for the evictions.
     */
    void
    setCapacity(unsigned entries)
    {
        unsigned n = unsigned(parts_.size());
        unsigned per = std::max(1u, (entries + n - 1) / n);
        for (VtsMetaCache &p : parts_)
            p.setCapacity(per);
    }

    /** Total capacity over all partitions. */
    unsigned
    capacity() const
    {
        unsigned n = 0;
        for (const VtsMetaCache &p : parts_)
            n += p.capacity();
        return n;
    }

    /** Number of partitions (= interconnect banks). */
    unsigned numPartitions() const { return unsigned(parts_.size()); }

    Counter hits;
    Counter misses;
    Counter dirtyEvictions;

  private:
    VtsMetaCache &part(PageNum route)
    {
        return parts_[route & route_mask_];
    }

    PageNum route_mask_;
    std::vector<VtsMetaCache> parts_;
};

/** The PTM backend. */
class Vts : public TmBackend
{
  public:
    /**
     * @param params    system configuration (selects Copy vs Select
     *                  via params.tmKind and the vector granularity)
     * @param eq        global event queue (background walks)
     * @param phys      functional physical memory
     * @param txmgr     transaction manager (arbitration, T-State)
     * @param frames    physical frame allocator (shadow pages)
     * @param dram      memory controller timing (walks share bandwidth
     *                  with demand traffic)
     */
    Vts(const SystemParams &params, EventQueue &eq, PhysMem &phys,
        TxManager &txmgr, FrameAllocator &frames, DramModel &dram);

    ~Vts() override;

    /** Register the VTS statistics under the "vts" group. */
    void regStats(StatRegistry &reg) override;

    /** Attach the event tracer (System wiring; defaults to nil). */
    void setTracer(Tracer *t) { tracer_ = t; }

    /** Attach the cycle profiler (System wiring; defaults to nil). */
    void setProfiler(CycleProfiler *p) { prof_ = p; }

    /** Attach the fault injector (System wiring; defaults to nil). */
    void setChaos(ChaosEngine *c) { chaos_ = c; }

    /** Attach the contention heatmap (System wiring; off = nullptr). */
    void setHeatmap(ContentionHeatmap *h) { heat_ = h; }

    /** Attach the flight recorder (System wiring; off = nullptr). */
    void setFlightRec(FlightRecorder *f) { fr_ = f; }

    /** @name TmBackend interface */
    /// @{
    bool anyOverflow() const override { return overflowed_live_ > 0; }
    CheckResult checkAccess(const BlockAccess &acc) override;
    Tick fillBlock(Addr block_addr, TxId requester, std::uint8_t *dst,
                   std::uint16_t &spec_words,
                   std::vector<TxMark> &foreign) override;
    bool mayGrantExclusive(Addr block_addr, TxId requester) override;
    Tick evictTxBlock(Addr block_addr, TxId tx, bool dirty_spec,
                      const std::uint8_t *data, std::uint16_t read_words,
                      std::uint16_t write_words) override;
    Tick writebackBlock(Addr block_addr, const std::uint8_t *data,
                        std::uint16_t word_mask) override;
    std::uint32_t readCommittedWord32(Addr word_addr) override;
    void commitTx(TxId tx) override;
    void abortTx(TxId tx) override;
    void pageSwapOut(PageNum home, std::uint64_t slot) override;
    void pageSwapIn(std::uint64_t slot, PageNum new_home) override;
    /// @}

    /** True if Select-PTM (vs Copy-PTM). */
    bool isSelect() const { return select_; }

    /**
     * Composite key for the TAV cache. Mixes the full (page, tx) pair
     * through the splitmix64 finalizer; the old `(home << 22) ^ tx`
     * fold aliased distinct pairs once tx ids exceeded 22 bits (or
     * pages shared low bits after the shift), silently merging cache
     * entries. Public so tests can pin the no-collision property.
     */
    static std::uint64_t
    tavKey(PageNum home, TxId tx)
    {
        return mix64(std::uint64_t(home) * 0x9e3779b97f4a7c15ull +
                     std::uint64_t(tx));
    }


    /** Whether the OS may pick @p home as a swap victim (we keep the
     *  model simple by not swapping pages with live TAV state). */
    bool swappable(PageNum home) const override;

    /** The SPT entry of @p home, nullptr if none (tests/inspection). */
    const SptEntry *sptEntry(PageNum home) const;

    /**
     * Force @p tx's cleanup to completion right now: starts a
     * chaos-delayed walk that has not begun and synchronously
     * processes every remaining node of its job. No-op if @p tx has
     * no cleanup in flight. Used when simulated time is up and by
     * drainThreadCleanups().
     */
    void finishCleanupNow(TxId tx);

    /**
     * Flush the in-flight *abort* cleanups of every transaction owned
     * by @p thread. Called at thread exit so a stale Copy-PTM restore
     * can never run after the thread is gone (and, transitively, can
     * never race a later reuse of its pages). Commit cleanups are
     * side-effect-free for restarts and keep draining lazily.
     */
    void drainThreadCleanups(ThreadId thread);

    /** Flush every in-flight cleanup (end of run under --max-ticks). */
    void drainAllCleanups();

    /** Number of shadow pages currently allocated. */
    std::uint64_t liveShadowPages() const { return shadow_pages_; }

    /** Time-weighted "pages with live speculative overflow" gauge for
     *  Table 1's "ideal" column. Call finishStats() at end of sim. */
    const TimeWeighted &liveDirtyPagesStat() const { return live_dirty_; }
    void finishStats(Tick now) { live_dirty_.finish(now); }

    /** @name Statistics */
    /// @{
    Counter shadowAllocs;
    Counter shadowFrees;
    Counter tavNodesCreated;
    Counter commitWalkNodes;
    Counter abortWalkNodes;
    Counter abortRestoreUnits; //!< Copy-PTM block restores on abort
    Counter copyBackups;       //!< Copy-PTM home->shadow backups
    Counter stallsSignalled;
    Counter lazyMigrations;    //!< Select-PTM lazy shadow merges
    BankedVtsCache sptCache;
    BankedVtsCache tavCache;
    /** Supervisor latency of each lazy commit walk (overflowed txs). */
    Distribution commitCleanupLatency{0, 512 * 1000, 32};
    /** Supervisor latency of each lazy abort walk (overflowed txs). */
    Distribution abortCleanupLatency{0, 512 * 1000, 32};
    /** TAV nodes met rebuilding a page's summary on an SPT-cache miss. */
    Distribution sptWalkLen{0, 64, 16};
    /** TAV nodes freed per commit/abort cleanup walk. */
    Distribution tavWalkLen{0, 512, 32};
    /** Pages with overflowed state per finished transaction (all txs,
     *  including the never-overflowed ones, which sample as 0). */
    Distribution overflowPagesPerTx{0, 256, 32};
    /// @}

  private:
    friend class PtmAuditor;
    friend struct AuditTestAccess;

    struct CleanupJob
    {
        bool isCommit = false;
        std::vector<TavNode *> nodes;
        std::size_t next = 0;
        Tick startTick = 0; //!< cleanup-latency distributions
        unsigned shard = 0; //!< supervisor cleanup-queue shard
    };

    /** Get-or-create the SPT entry of @p home. */
    SptEntry &entryFor(PageNum home);
    SptEntry *findEntry(PageNum home);
    const SptEntry *findEntry(PageNum home) const;

    /**
     * Charge an SPT-cache lookup (hit latency or memory walk). @p tx
     * is the transaction on whose behalf the lookup runs — flight-
     * recorder miss attribution only; invalidTxId when the lookup is
     * not transactional (non-speculative writebacks).
     */
    Tick sptLookupCost(PageNum home, TxId tx = invalidTxId);
    /** Charge a TAV-cache lookup for (page, tx). */
    Tick tavLookupCost(PageNum home, TxId tx, bool mark_dirty);

    /** Allocate the shadow page of @p e if not present, attributed to
     *  @p tx (the overflowing transaction). */
    void ensureShadow(SptEntry &e, TxId tx);
    /** Free @p e's shadow page. */
    void freeShadow(SptEntry &e);
    /** Free the shadow if the policy allows it right now. */
    void maybeFreeShadow(SptEntry &e);

    /**
     * Selection bit of unit @p i with the pending toggles of
     * Committing transactions' lazy walks applied (see the commit-walk
     * race note in committedUnitAddr's implementation).
     */
    bool effSelection(const SptEntry &e, unsigned i) const;

    /** Physical address of the *committed* unit covering bit @p i. */
    Addr committedUnitAddr(const SptEntry &e, unsigned i) const;
    /** Physical address of the *speculative* unit covering bit @p i. */
    Addr specUnitAddr(const SptEntry &e, unsigned i) const;

    /** Recompute a page's summary vectors and live-dirty gauge. */
    void refreshPage(SptEntry &e);

    /** Mark @p tx as having overflowed (global flag bookkeeping). */
    void noteOverflow(TxId tx);

    /** Background walk machinery. */
    void scheduleCleanup(TxId tx, bool is_commit);
    void startCleanup(TxId tx, bool is_commit);
    void cleanupStep(TxId tx);
    void processNode(CleanupJob &job, TavNode *node);

    const SystemParams params_;
    EventQueue &eq_;
    PhysMem &phys_;
    TxManager &txmgr_;
    FrameAllocator &frames_;
    DramModel &dram_;
    Tracer *tracer_ = &Tracer::nil();
    CycleProfiler *prof_ = &CycleProfiler::nil();
    ChaosEngine *chaos_ = &ChaosEngine::nil();
    ContentionHeatmap *heat_ = nullptr;
    FlightRecorder *fr_ = nullptr;
    PageGran gran_;
    bool select_;

    FlatMap<PageNum, SptEntry> spt_;
    /** Swap Index Table: entries of swapped-out pages, by swap slot. */
    FlatMap<std::uint64_t, SptEntry> sit_;
    /** Shadow page bytes of swapped-out pages, by swap slot. */
    FlatMap<std::uint64_t, std::vector<std::uint8_t>>
        swapped_shadow_data_;

    /** Vertical TAV list heads (T-State links). */
    FlatMap<TxId, TavNode *> tx_head_;
    FlatMap<TxId, CleanupJob> jobs_;
    /** Cleanups whose start a chaos delay is holding (value: commit). */
    FlatMap<TxId, bool> pending_delayed_;

    /** Slab allocator for every TAV node this backend creates. */
    TavArena tav_arena_;

    /** Cleanup-queue shard of @p tx (its owning thread, modulo the
     *  shard count; 0 when running the single paper-config queue). */
    unsigned cleanupShardOf(TxId tx) const;

    unsigned overflowed_live_ = 0;
    std::uint64_t shadow_pages_ = 0;
    /**
     * Per-shard supervisor timelines. With --mem-banks 1 (the paper
     * configuration) a single timeline serializes every cleanup walk,
     * bit-exactly as before; with a banked interconnect each core's
     * cleanup queue drains independently, keyed by the transaction's
     * owning thread.
     */
    std::vector<Tick> supervisor_free_;
    std::uint64_t live_dirty_count_ = 0;
    TimeWeighted live_dirty_;
};

} // namespace ptm

#endif // PTM_PTM_VTS_HH
