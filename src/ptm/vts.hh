/**
 * @file
 * The Virtual Transaction Supervisor (VTS) — PTM's memory-controller
 * engine (section 4 of the paper).
 *
 * The VTS owns the memory-resident PTM structures (Shadow Page Table,
 * Swap Index Table, TAV lists) and two hardware caches over them:
 *
 *  - the SPT cache (512 fully-associative entries): shadow pointer,
 *    selection vector and read/write summary vectors per page;
 *  - the TAV cache (2048 fully-associative entries, tagged by
 *    (page, transaction)): per-transaction access vectors.
 *
 * It implements both versioning policies:
 *
 *  - Copy-PTM: the speculative block always goes to the home page; the
 *    committed block is copied to the shadow page on the first dirty
 *    overflow. Commit frees TAVs only; abort restores home blocks from
 *    the shadow page.
 *  - Select-PTM: a per-page selection vector says which of home/shadow
 *    holds the committed unit. Evicted speculative data goes to the
 *    non-committed location; commit toggles selection bits; abort does
 *    no data movement at all.
 *
 * Commit/abort processing is lazy: the T-State flip happens instantly
 * (TxManager), then a supervisor walk frees one TAV node per memory
 * access; accesses touching not-yet-cleaned pages stall (section 4.5).
 */

#ifndef PTM_PTM_VTS_HH
#define PTM_PTM_VTS_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/frame_alloc.hh"
#include "mem/phys_mem.hh"
#include "mem/timing.hh"
#include "ptm/granularity.hh"
#include "ptm/tav.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "tx/tm_backend.hh"
#include "tx/tx_manager.hh"

namespace ptm
{

/**
 * Timing model of a fully-associative, LRU, write-back metadata cache
 * in the memory controller (the SPT cache and the TAV cache). The
 * simulator keeps the *functional* PTM structures always current; these
 * caches only decide whether a lookup pays cache latency or a memory
 * walk.
 */
class VtsMetaCache
{
  public:
    explicit VtsMetaCache(unsigned entries) : capacity_(entries) {}

    /**
     * Look up @p key; inserts it on a miss (possibly evicting LRU).
     * @param mark_dirty the entry is being updated in place
     * @param[out] evicted_dirty an LRU victim needed a write-back
     * @return true on hit
     */
    bool access(std::uint64_t key, bool mark_dirty, bool &evicted_dirty);

    /** Drop @p key (structure freed). */
    void remove(std::uint64_t key);

    Counter hits;
    Counter misses;
    Counter dirtyEvictions;

  private:
    struct Entry
    {
        std::uint64_t lastUse = 0;
        bool dirty = false;
    };

    unsigned capacity_;
    std::uint64_t clock_ = 0;
    std::unordered_map<std::uint64_t, Entry> map_;
};

/** The PTM backend. */
class Vts : public TmBackend
{
  public:
    /**
     * @param params    system configuration (selects Copy vs Select
     *                  via params.tmKind and the vector granularity)
     * @param eq        global event queue (background walks)
     * @param phys      functional physical memory
     * @param txmgr     transaction manager (arbitration, T-State)
     * @param frames    physical frame allocator (shadow pages)
     * @param dram      memory controller timing (walks share bandwidth
     *                  with demand traffic)
     */
    Vts(const SystemParams &params, EventQueue &eq, PhysMem &phys,
        TxManager &txmgr, FrameAllocator &frames, DramModel &dram);

    ~Vts() override;

    /** Register the VTS statistics under the "vts" group. */
    void regStats(StatRegistry &reg) override;

    /** Attach the event tracer (System wiring; defaults to nil). */
    void setTracer(Tracer *t) { tracer_ = t; }

    /** Attach the cycle profiler (System wiring; defaults to nil). */
    void setProfiler(CycleProfiler *p) { prof_ = p; }

    /** @name TmBackend interface */
    /// @{
    bool anyOverflow() const override { return overflowed_live_ > 0; }
    CheckResult checkAccess(const BlockAccess &acc) override;
    Tick fillBlock(Addr block_addr, TxId requester, std::uint8_t *dst,
                   std::uint16_t &spec_words,
                   std::vector<TxMark> &foreign) override;
    bool mayGrantExclusive(Addr block_addr, TxId requester) override;
    Tick evictTxBlock(Addr block_addr, TxId tx, bool dirty_spec,
                      const std::uint8_t *data, std::uint16_t read_words,
                      std::uint16_t write_words) override;
    Tick writebackBlock(Addr block_addr, const std::uint8_t *data,
                        std::uint16_t word_mask) override;
    std::uint32_t readCommittedWord32(Addr word_addr) override;
    void commitTx(TxId tx) override;
    void abortTx(TxId tx) override;
    void pageSwapOut(PageNum home, std::uint64_t slot) override;
    void pageSwapIn(std::uint64_t slot, PageNum new_home) override;
    /// @}

    /** True if Select-PTM (vs Copy-PTM). */
    bool isSelect() const { return select_; }


    /** Whether the OS may pick @p home as a swap victim (we keep the
     *  model simple by not swapping pages with live TAV state). */
    bool swappable(PageNum home) const override;

    /** The SPT entry of @p home, nullptr if none (tests/inspection). */
    const SptEntry *sptEntry(PageNum home) const;

    /** Number of shadow pages currently allocated. */
    std::uint64_t liveShadowPages() const { return shadow_pages_; }

    /** Time-weighted "pages with live speculative overflow" gauge for
     *  Table 1's "ideal" column. Call finishStats() at end of sim. */
    const TimeWeighted &liveDirtyPagesStat() const { return live_dirty_; }
    void finishStats(Tick now) { live_dirty_.finish(now); }

    /** @name Statistics */
    /// @{
    Counter shadowAllocs;
    Counter shadowFrees;
    Counter tavNodesCreated;
    Counter commitWalkNodes;
    Counter abortWalkNodes;
    Counter abortRestoreUnits; //!< Copy-PTM block restores on abort
    Counter copyBackups;       //!< Copy-PTM home->shadow backups
    Counter stallsSignalled;
    Counter lazyMigrations;    //!< Select-PTM lazy shadow merges
    VtsMetaCache sptCache;
    VtsMetaCache tavCache;
    /** Supervisor latency of each lazy commit walk (overflowed txs). */
    Distribution commitCleanupLatency{0, 512 * 1000, 32};
    /** Supervisor latency of each lazy abort walk (overflowed txs). */
    Distribution abortCleanupLatency{0, 512 * 1000, 32};
    /** TAV nodes met rebuilding a page's summary on an SPT-cache miss. */
    Distribution sptWalkLen{0, 64, 16};
    /** TAV nodes freed per commit/abort cleanup walk. */
    Distribution tavWalkLen{0, 512, 32};
    /** Pages with overflowed state per finished transaction (all txs,
     *  including the never-overflowed ones, which sample as 0). */
    Distribution overflowPagesPerTx{0, 256, 32};
    /// @}

  private:
    struct CleanupJob
    {
        bool isCommit = false;
        std::vector<TavNode *> nodes;
        std::size_t next = 0;
        Tick startTick = 0; //!< cleanup-latency distributions
    };

    /** Get-or-create the SPT entry of @p home. */
    SptEntry &entryFor(PageNum home);
    SptEntry *findEntry(PageNum home);
    const SptEntry *findEntry(PageNum home) const;

    /** Charge an SPT-cache lookup (hit latency or memory walk). */
    Tick sptLookupCost(PageNum home);
    /** Charge a TAV-cache lookup for (page, tx). */
    Tick tavLookupCost(PageNum home, TxId tx, bool mark_dirty);

    /** Allocate the shadow page of @p e if not present. */
    void ensureShadow(SptEntry &e);
    /** Free @p e's shadow page. */
    void freeShadow(SptEntry &e);
    /** Free the shadow if the policy allows it right now. */
    void maybeFreeShadow(SptEntry &e);

    /**
     * Selection bit of unit @p i with the pending toggles of
     * Committing transactions' lazy walks applied (see the commit-walk
     * race note in committedUnitAddr's implementation).
     */
    bool effSelection(const SptEntry &e, unsigned i) const;

    /** Physical address of the *committed* unit covering bit @p i. */
    Addr committedUnitAddr(const SptEntry &e, unsigned i) const;
    /** Physical address of the *speculative* unit covering bit @p i. */
    Addr specUnitAddr(const SptEntry &e, unsigned i) const;

    /** Recompute a page's summary vectors and live-dirty gauge. */
    void refreshPage(SptEntry &e);

    /** Mark @p tx as having overflowed (global flag bookkeeping). */
    void noteOverflow(TxId tx);

    /** Background walk machinery. */
    void startCleanup(TxId tx, bool is_commit);
    void cleanupStep(TxId tx);
    void processNode(CleanupJob &job, TavNode *node);

    /** Composite key for the TAV cache. */
    static std::uint64_t
    tavKey(PageNum home, TxId tx)
    {
        return (home << 22) ^ tx;
    }

    const SystemParams params_;
    EventQueue &eq_;
    PhysMem &phys_;
    TxManager &txmgr_;
    FrameAllocator &frames_;
    DramModel &dram_;
    Tracer *tracer_ = &Tracer::nil();
    CycleProfiler *prof_ = &CycleProfiler::nil();
    PageGran gran_;
    bool select_;

    std::unordered_map<PageNum, SptEntry> spt_;
    /** Swap Index Table: entries of swapped-out pages, by swap slot. */
    std::unordered_map<std::uint64_t, SptEntry> sit_;
    /** Shadow page bytes of swapped-out pages, by swap slot. */
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
        swapped_shadow_data_;

    /** Vertical TAV list heads (T-State links). */
    std::unordered_map<TxId, TavNode *> tx_head_;
    std::unordered_map<TxId, CleanupJob> jobs_;

    unsigned overflowed_live_ = 0;
    std::uint64_t shadow_pages_ = 0;
    Tick supervisor_free_ = 0;
    std::uint64_t live_dirty_count_ = 0;
    TimeWeighted live_dirty_;
};

} // namespace ptm

#endif // PTM_PTM_VTS_HH
