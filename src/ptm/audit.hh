/**
 * @file
 * PTM invariant auditor.
 *
 * The paper states the structural invariants PTM's correctness rests
 * on but the simulator otherwise only exercises implicitly: selection
 * vectors must name the committed copy and imply a shadow page (§3.3,
 * §4.3), the SPT summary vectors must be the OR of the page's TAV
 * vectors (§4.2.2), TAV nodes must be doubly reachable — horizontally
 * from their page and vertically from their transaction (§4.2), shadow
 * pages must neither leak nor double-free (§3.5.2), and Swap Index
 * Table entries must describe fully quiesced pages (§3.5.1). The
 * PtmAuditor walks every structure and cross-checks them against each
 * other and the T-State table, at configurable intervals and at every
 * commit/abort boundary, so a chaos run that corrupts bookkeeping
 * fails loudly at the first inconsistent instant instead of silently
 * producing wrong memory images.
 *
 * The commit-atomicity oracle is the workload verifier that already
 * gates every run: workloads replay on a host sequential reference
 * model and diff final memory images (harness/experiment). The
 * auditor's structural checks make the *intermediate* states
 * observable; chaos sweeps require both to pass.
 *
 * Every violation carries the check name, the tick, and the reproducer
 * line (seed / chaos seed / plan) handed in by the System.
 */

#ifndef PTM_PTM_AUDIT_HH
#define PTM_PTM_AUDIT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace ptm
{

class Vts;
class TxManager;
struct TavNode;

/** One detected invariant violation. */
struct AuditViolation
{
    /** Stable check identifier ("summary-agree", "arena-live", ...). */
    std::string check;
    /** Where the audit ran ("commit", "abort", "interval", "end"). */
    std::string where;
    Tick tick = 0;
    /** Human-readable specifics (page, transaction, counts). */
    std::string detail;
};

/**
 * Walks the VTS structures and verifies the invariant catalog. Attach
 * once after construction; checkAll() is re-entrant per event (it runs
 * between simulation events, so it observes quiescent states only).
 */
class PtmAuditor
{
  public:
    /** Wire the auditor to the backend it audits. */
    void
    attach(Vts *vts, TxManager *txmgr)
    {
        vts_ = vts;
        txmgr_ = txmgr;
    }

    /** True once attach() ran with a PTM backend. */
    bool attached() const { return vts_ != nullptr; }

    /**
     * Reproducer line prefix ("--seed N --chaos-seed M ...") echoed
     * with every violation so a failing sweep run is replayable.
     */
    void setRepro(std::string repro) { repro_ = std::move(repro); }

    /**
     * Run the full invariant catalog.
     * @param where boundary label recorded in violations
     * @param now   current tick
     * @return number of *new* violations found by this pass
     */
    std::size_t checkAll(const char *where, Tick now);

    /** All violations found so far, in detection order. */
    const std::vector<AuditViolation> &violations() const
    {
        return violations_;
    }

    /**
     * Invoked on every *recorded* violation (System wires this to the
     * flight recorder's post-mortem trigger). Violations past the
     * recording cap only count; they do not re-fire the hook.
     */
    std::function<void(const AuditViolation &)> onViolation;

    /** @name Statistics (registered under "audit") */
    /// @{
    Counter checksRun;       //!< checkAll() passes executed
    Counter violationsFound; //!< total violations detected
    /// @}

    /** Register the audit statistics under the "audit" group. */
    void regStats(StatRegistry &reg);

  private:
    void report(const char *check, const char *where, Tick now,
                std::string detail);

    Vts *vts_ = nullptr;
    TxManager *txmgr_ = nullptr;
    std::string repro_;
    std::vector<AuditViolation> violations_;
};

/**
 * Test-only corruption helpers: each seeds the one inconsistency its
 * negative test expects the matching auditor check to catch. Friend
 * of Vts and TxManager; never linked into the front ends' logic.
 */
struct AuditTestAccess
{
    /** Corrupt an SPT entry's home field ("spt-home"). */
    static void corruptHome(Vts &v, PageNum page);
    /** Alias an entry's shadow onto its home frame ("shadow-self"). */
    static void aliasShadow(Vts &v, PageNum page);
    /** Leak one shadow page in the count ("shadow-count"). */
    static void leakShadowCount(Vts &v);
    /** Point page @p b's shadow at page @p a's frame ("shadow-dup"). */
    static void dupShadow(Vts &v, PageNum a, PageNum b);
    /** Flip a spurious write-summary bit ("summary-agree"). */
    static void corruptSummary(Vts &v, PageNum page);
    /** Set a selection bit with no shadow page ("selection-shadow"
     *  under Select-PTM, "selection-copy" under Copy-PTM). */
    static void corruptSelection(Vts &v, PageNum page);
    /** Point a TAV node at the wrong home page ("node-home"). */
    static void corruptNodeHome(Vts &v, PageNum page);
    /** Retag a TAV node to a finished transaction ("node-state"). */
    static void corruptNodeTx(Vts &v, PageNum page, TxId bogus);
    /** Duplicate a transaction's node on one page ("node-dup"). */
    static void dupNode(Vts &v, PageNum page);
    /** Shrink a TAV node's vectors to zero bits ("node-vec"). */
    static void shrinkNodeVec(Vts &v, PageNum page);
    /** Drop the head of a vertical list ("vertical-agree"). */
    static void breakVerticalLink(Vts &v, TxId tx);
    /** Allocate an arena node linked nowhere ("arena-live"). */
    static void leakArenaNode(Vts &v);
    /** Skew the live-dirty gauge ("live-dirty"). */
    static void bumpLiveDirty(Vts &v);
    /** Skew the overflowed-transaction count ("overflow-live"). */
    static void bumpOverflowCount(Vts &v);
    /** Plant a non-quiesced Swap Index Table entry ("sit-clean"). */
    static void corruptSit(Vts &v, std::uint64_t slot);
    /** Orphan stashed swap shadow bytes ("swap-data"). */
    static void orphanSwapData(Vts &v, std::uint64_t slot);
    /** Skew the manager's live-transaction count ("live-count"). */
    static void bumpLiveCount(TxManager &m);
};

} // namespace ptm

#endif // PTM_PTM_AUDIT_HH
