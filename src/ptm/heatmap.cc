/**
 * @file
 * Space-saving top-K counters and the contention heatmap.
 */

#include "ptm/heatmap.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ptm
{

SpaceSavingTopK::SpaceSavingTopK(unsigned capacity)
    : capacity_(capacity ? capacity : 1)
{
    entries_.reserve(capacity_);
    index_.reserve(capacity_);
}

void
SpaceSavingTopK::record(std::uint64_t key, std::uint64_t n)
{
    total_ += n;
    auto it = index_.find(key);
    if (it != index_.end()) {
        entries_[it->second].count += n;
        return;
    }
    if (entries_.size() < capacity_) {
        index_[key] = entries_.size();
        entries_.push_back({key, n, 0});
        return;
    }
    // Replace the minimum-count entry (smallest key on ties, so the
    // choice never depends on insertion history beyond the counts).
    std::size_t victim = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
        if (entries_[i].count < entries_[victim].count ||
            (entries_[i].count == entries_[victim].count &&
             entries_[i].key < entries_[victim].key))
            victim = i;
    }
    Entry &e = entries_[victim];
    index_.erase(e.key);
    e.error = e.count; // the new key inherits the victim's count
    e.count += n;
    e.key = key;
    index_[key] = victim;
}

std::vector<SpaceSavingTopK::Entry>
SpaceSavingTopK::top() const
{
    std::vector<Entry> out = entries_;
    std::sort(out.begin(), out.end(), [](const Entry &a, const Entry &b) {
        if (a.count != b.count)
            return a.count > b.count;
        return a.key < b.key;
    });
    return out;
}

const char *
heatAbortCauseName(unsigned cause)
{
    // Mirrors AbortReason's enumerator order (tx/tx_manager.hh).
    switch (cause) {
      case 0: return "conflict";
      case 1: return "nontx";
      case 2: return "multiwriter";
      case 3: return "explicit";
    }
    panic("bad abort cause %u", cause);
}

ContentionHeatmap::ContentionHeatmap(unsigned top_k)
    : k_(top_k ? top_k : 1), conflictPages_(k_), conflictBlocks_(k_),
      abortPages_{SpaceSavingTopK(k_), SpaceSavingTopK(k_),
                  SpaceSavingTopK(k_), SpaceSavingTopK(k_)},
      sptMiss_(k_), tavMiss_(k_), shadowAlloc_(k_)
{
    static_assert(heatAbortCauses == 4,
                  "abortPages_ initializer must match heatAbortCauses");
}

void
ContentionHeatmap::recordConflict(Addr where)
{
    if (where == invalidAddr) {
        conflictPages_.record(invalidPage);
        conflictBlocks_.record(invalidAddr);
        return;
    }
    conflictPages_.record(pageOf(where));
    conflictBlocks_.record(blockAlign(where));
}

void
ContentionHeatmap::recordAbort(unsigned cause, Addr where)
{
    panic_if(cause >= heatAbortCauses, "bad abort cause %u", cause);
    abortPages_[cause].record(where == invalidAddr ? invalidPage
                                                   : pageOf(where));
}

HeatmapSnapshot
ContentionHeatmap::snapshot() const
{
    HeatmapSnapshot s;
    s.enabled = true;
    s.k = k_;
    s.conflictPages = conflictPages_.top();
    s.conflictBlocks = conflictBlocks_.top();
    for (unsigned c = 0; c < heatAbortCauses; ++c) {
        s.abortPages[c] = abortPages_[c].top();
        s.abortsTotal[c] = abortPages_[c].total();
    }
    s.sptMissPages = sptMiss_.top();
    s.tavMissPages = tavMiss_.top();
    s.shadowAllocPages = shadowAlloc_.top();
    s.conflictsTotal = conflictPages_.total();
    s.sptMissTotal = sptMiss_.total();
    s.tavMissTotal = tavMiss_.total();
    s.shadowAllocTotal = shadowAlloc_.total();
    return s;
}

std::string
ContentionHeatmap::hotPagesJson(unsigned n) const
{
    std::vector<SpaceSavingTopK::Entry> pages = conflictPages_.top();
    if (pages.size() > n)
        pages.resize(n);
    std::string out = "[";
    for (std::size_t i = 0; i < pages.size(); ++i) {
        if (i)
            out += ",";
        if (pages[i].key == invalidPage)
            out += strprintf("{\"page\":-1,\"count\":%llu,\"err\":%llu}",
                             (unsigned long long)pages[i].count,
                             (unsigned long long)pages[i].error);
        else
            out += strprintf("{\"page\":%llu,\"count\":%llu,"
                             "\"err\":%llu}",
                             (unsigned long long)pages[i].key,
                             (unsigned long long)pages[i].count,
                             (unsigned long long)pages[i].error);
    }
    out += "]";
    return out;
}

} // namespace ptm
